package sdem_test

import (
	"fmt"

	"sdem"
)

// ExampleSolve schedules a common-release task set optimally and reports
// where the energy goes.
func ExampleSolve() {
	sys := sdem.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0

	tasks := sdem.TaskSet{
		{ID: 1, Release: 0, Deadline: sdem.Milliseconds(50), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: sdem.Milliseconds(100), Workload: 5e6},
	}
	sol, err := sdem.Solve(tasks, sys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("scheme %s on a %v set\n", sol.Scheme, sol.Model)
	b := sdem.Audit(sol.Schedule, sys)
	fmt.Printf("memory sleeps %.0f%% of the horizon\n",
		100*b.MemorySleep/(sol.Schedule.End-sol.Schedule.Start))
	// Output:
	// scheme §4.2 on a common-release set
	// memory sleeps 97% of the horizon
}

// ExampleScheduleOnline runs the SDEM-ON heuristic on a general task set
// that no offline scheme covers.
func ExampleScheduleOnline() {
	sys := sdem.DefaultSystem()
	tasks := sdem.TaskSet{
		{ID: 1, Release: 0, Deadline: sdem.Milliseconds(200), Workload: 4e6},
		{ID: 2, Release: sdem.Milliseconds(20), Deadline: sdem.Milliseconds(90), Workload: 3e6}, // nested: general model
	}
	res, err := sdem.ScheduleOnline(tasks, sys, sdem.OnlineOptions{Cores: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("misses: %d\n", len(res.Misses))
	// Output:
	// misses: 0
}

// ExampleLowerBound certifies that no schedule can beat the bound.
func ExampleLowerBound() {
	sys := sdem.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := sdem.TaskSet{{ID: 1, Release: 0, Deadline: sdem.Milliseconds(100), Workload: 5e6}}
	lb := sdem.LowerBound(tasks, sys)
	sol, _ := sdem.Solve(tasks, sys)
	fmt.Printf("bound holds: %v\n", sol.Energy >= lb)
	// Output:
	// bound holds: true
}

// ExampleQuantize maps a continuous-speed optimum onto the Cortex-A57
// frequency ladder.
func ExampleQuantize() {
	sys := sdem.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := sdem.TaskSet{{ID: 1, Release: 0, Deadline: sdem.Milliseconds(60), Workload: 4e6}}
	sol, _ := sdem.Solve(tasks, sys)
	q, err := sdem.Quantize(sol.Schedule, sdem.CortexA57Ladder())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("feasible on the ladder: %v\n", sdem.Validate(q, tasks, sdem.MHz(1900)) == nil)
	// Output:
	// feasible on the ladder: true
}

// ExampleExpandStreams turns periodic streams into a schedulable job set.
func ExampleExpandStreams() {
	streams := sdem.PeriodicSystem{
		{ID: 1, Name: "ctrl", Period: sdem.Milliseconds(100), Window: sdem.Milliseconds(40), Workload: 2e6},
	}
	jobs, err := sdem.ExpandStreams(streams, 0.35, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d jobs released in 350 ms\n", len(jobs))
	// Output:
	// 4 jobs released in 350 ms
}
