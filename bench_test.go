// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each figure bench runs a reduced-scale sweep per
// iteration and reports the headline reproduction metric as a custom
// benchmark metric:
//
//	improve%   average SDEM-ON energy-saving improvement over MBKPS
//	sdemon%    average SDEM-ON saving versus MBKP
//	mbkps%     average MBKPS saving versus MBKP
//
// Full-scale sweeps (10 seeds, the complete Table 4 grid) are produced by
// cmd/experiments; these benches keep the per-iteration cost tractable
// while exercising the identical code paths.
package sdem

import (
	"testing"

	"sdem/internal/dsp"
	"sdem/internal/experiments"
	"sdem/internal/partition"
)

// benchCfg is the reduced per-iteration experiment scale.
func benchCfg() experiments.Config {
	return experiments.Config{Seeds: 2, Tasks: 30}
}

func reportSeries(b *testing.B, series []experiments.Series) {
	b.ReportMetric(100*experiments.AvgImprovement(series), "improve%")
	b.ReportMetric(100*experiments.AvgSaving(series, true), "sdemon%")
	b.ReportMetric(100*experiments.AvgSaving(series, false), "mbkps%")
}

// BenchmarkFig6a regenerates Fig. 6a: memory static energy saving over
// utilization U for the FFT and matrix-multiply benchmarks.
func BenchmarkFig6a(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		s, err := benchCfg().Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportSeries(b, last)
}

// BenchmarkFig6b regenerates Fig. 6b: system-wide energy saving over U.
func BenchmarkFig6b(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		s, err := benchCfg().Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportSeries(b, last)
}

// BenchmarkFig7a regenerates Fig. 7a: system saving over α_m × x.
func BenchmarkFig7a(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		s, err := cfg.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportSeries(b, last)
}

// BenchmarkFig7b regenerates Fig. 7b: system saving over ξ_m × x.
func BenchmarkFig7b(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		s, err := cfg.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportSeries(b, last)
}

// BenchmarkTable3 regenerates the Table 3 overhead-case demonstration.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := (experiments.Config{}).Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSequential regenerates the reduced-scale Fig. 6b sweep on
// the historical one-worker path — the baseline BenchmarkSweepParallel's
// speedup is measured against. Both run the identical grid and produce
// identical output; only the pool width differs.
func BenchmarkSweepSequential(b *testing.B) {
	cfg := experiments.Config{Seeds: 2, Tasks: 25, Workers: 1}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same reduced grid on a 4-worker pool.
// On a multi-core machine the sweep is embarrassingly parallel per grid
// point, so ns/op should approach a quarter of BenchmarkSweepSequential;
// the ratio of the two is the repo's recorded sweep-engine speedup.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiments.Config{Seeds: 2, Tasks: 25, Workers: 4}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRaceToIdle runs the A1 ablation (race-to-idle vs
// critical-speed vs SDEM-ON) and reports SDEM-ON's margin over the better
// pole.
func BenchmarkAblationRaceToIdle(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		p, err := cfg.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	var margin float64
	for _, p := range pts {
		best := p.RaceToIdle.Mean
		if p.CriticalSpeed.Mean > best {
			best = p.CriticalSpeed.Mean
		}
		margin += p.SDEMON.Mean - best
	}
	b.ReportMetric(100*margin/float64(len(pts)), "margin%")
}

// BenchmarkAblationProcrastination runs the A2 ablation and reports the
// average gain of postponement.
func BenchmarkAblationProcrastination(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		p, err := cfg.AblationProcrastination()
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	var gain float64
	for _, p := range pts {
		gain += p.Improvement.Mean
	}
	b.ReportMetric(100*gain/float64(len(pts)), "gain%")
}

// --- Micro-benchmarks of the solvers and substrates. ---

// BenchmarkSolveCommonRelease times the §4.2 optimal scheme on 100 tasks.
func BenchmarkSolveCommonRelease(b *testing.B) {
	sys := DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 100, MaxInterArrival: 1e-12}, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := range tasks {
		tasks[i].Release = 0
		tasks[i].Deadline = Milliseconds(10) + tasks[i].Deadline/10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(tasks, sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveAgreeableDP times the §5.2 dynamic program on 12 tasks
// (the DP is O(n⁵)-ish with the numeric local solver).
func BenchmarkSolveAgreeableDP(b *testing.B) {
	sys := DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := make(TaskSet, 12)
	var rel float64
	for i := range tasks {
		rel += Milliseconds(15)
		tasks[i] = Task{ID: i, Release: rel, Deadline: rel + Milliseconds(60), Workload: 3e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(tasks, sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleOnline times SDEM-ON over 200 sporadic tasks.
func BenchmarkScheduleOnline(b *testing.B) {
	sys := DefaultSystem()
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 200}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleOnline(tasks, sys, OnlineOptions{Cores: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMBKPBaseline times the MBKP baseline over the same workload.
func BenchmarkMBKPBaseline(b *testing.B) {
	sys := DefaultSystem()
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 200}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MBKP(tasks, sys, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudit times the independent energy auditor.
func BenchmarkAudit(b *testing.B) {
	sys := DefaultSystem()
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 200}, 4)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ScheduleOnline(tasks, sys, OnlineOptions{Cores: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Audit(res.Schedule, sys)
	}
}

// BenchmarkFFT1024 times the DSP substrate's 1024-point FFT (the
// benchmark kernel of §8.1.1).
func BenchmarkFFT1024(b *testing.B) {
	cm := dsp.DefaultCostModel()
	sig := make([]complex128, 1024)
	for i := range sig {
		sig[i] = complex(float64(i%7), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.FFT(sig, cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionExact times the exact bounded-core partitioner on a
// 12-task PARTITION instance (Theorem 1's oracle).
func BenchmarkPartitionExact(b *testing.B) {
	ws := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := partition.Exact(ws, 2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSwitchOverhead runs the A3 ablation (DVS switch cost
// sweep).
func BenchmarkAblationSwitchOverhead(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationSwitchOverhead(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDiscrete runs the A4 ablation (continuous vs discrete
// DVS levels) and reports the A57 ladder's penalty.
func BenchmarkAblationDiscrete(b *testing.B) {
	cfg := experiments.Config{Seeds: 1, Tasks: 25}
	var pts []experiments.DiscretePoint
	for i := 0; i < b.N; i++ {
		p, err := cfg.AblationDiscrete()
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	b.ReportMetric(100*pts[0].Penalty.Mean, "a57penalty%")
}

// BenchmarkSolveHeterogeneous times the heterogeneous-core §4.2 solver.
func BenchmarkSolveHeterogeneous(b *testing.B) {
	tasks := make(TaskSet, 50)
	cores := make([]Core, 50)
	for i := range tasks {
		tasks[i] = Task{ID: i, Release: 0, Deadline: Milliseconds(100), Workload: 2e6 + float64(i)*5e4}
		c := CortexA57()
		c.Static *= 1 + float64(i%5)*0.2
		cores[i] = c
	}
	mem := Memory{Static: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveHeterogeneous(tasks, cores, mem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantize times the Ishihara–Yasuura ladder transform on a
// 200-task online schedule.
func BenchmarkQuantize(b *testing.B) {
	sys := DefaultSystem()
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 200}, 4)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ScheduleOnline(tasks, sys, OnlineOptions{Cores: 8})
	if err != nil {
		b.Fatal(err)
	}
	ladder := CortexA57Ladder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(res.Schedule, ladder); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound times the certified bound on 500 tasks.
func BenchmarkLowerBound(b *testing.B) {
	sys := DefaultSystem()
	tasks, err := SyntheticWorkload(SyntheticConfig{N: 500}, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LowerBound(tasks, sys)
	}
}
