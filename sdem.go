// Package sdem is a library for Sleep- and DVS-aware system-wide Energy
// Minimization (SDEM) on multi-core processors with a shared main memory,
// reproducing Fu, Chau, Li and Xue, "Race to idle or not: balancing the
// memory sleep time with DVS for energy minimization" (DATE 2015 /
// journal version 2017).
//
// The model: homogeneous DVS cores with power α + β·s^λ share one memory
// with static power α_m; the memory can sleep only during the common idle
// time of all cores; mode transitions cost energy expressed as break-even
// times ξ and ξ_m. The library provides:
//
//   - the paper's optimal offline schedulers for common-release (§4) and
//     agreeable-deadline (§5) task sets, with and without core static
//     power and transition overhead (§7), unified behind Solve;
//   - the SDEM-ON online heuristic for general task sets (§6) and the
//     MBKP/MBKPS baselines of the evaluation, behind ScheduleOnline and
//     the baseline constructors;
//   - the bounded-core NP-hard variant's exact and heuristic partitioners;
//   - an independent schedule auditor, workload generators (synthetic and
//     DSPstone-style benchmark instances), and the full experiment
//     harness regenerating every figure of the paper's evaluation.
//
// All quantities are SI: seconds, hertz, watts, joules.
package sdem

import (
	"context"
	"io"

	"sdem/internal/baseline"
	"sdem/internal/commonrelease"
	"sdem/internal/core"
	"sdem/internal/discrete"
	"sdem/internal/faults"
	"sdem/internal/online"
	"sdem/internal/partition"
	"sdem/internal/periodic"
	"sdem/internal/power"
	"sdem/internal/resilient"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
	"sdem/internal/telemetry/export"
	"sdem/internal/trace"
	"sdem/internal/workload"
)

// Core model re-exports.
type (
	// Task is one real-time job: release, deadline, workload in cycles.
	Task = task.Task
	// TaskSet is an ordered collection of tasks.
	TaskSet = task.Set
	// TaskModel classifies a task set (common release / agreeable /
	// general).
	TaskModel = task.Model
	// Core is the DVS core power model α + β·s^λ.
	Core = power.Core
	// Memory is the shared-memory power model.
	Memory = power.Memory
	// System bundles cores and memory.
	System = power.System
	// Schedule is the per-core segment schedule every solver produces.
	Schedule = schedule.Schedule
	// Segment is one constant-speed execution of a task on a core.
	Segment = schedule.Segment
	// EnergyBreakdown itemizes audited energy.
	EnergyBreakdown = schedule.Breakdown
	// SleepPolicy states how idle gaps are treated by the audit.
	SleepPolicy = schedule.SleepPolicy
	// OnlineResult is the outcome of an online scheduling run.
	OnlineResult = sim.Result
	// OnlineOptions tunes SDEM-ON.
	OnlineOptions = online.Options
	// SyntheticConfig parameterizes the §8.1.2 workload generator.
	SyntheticConfig = workload.SyntheticConfig
	// BenchmarkConfig parameterizes the §8.1.1 benchmark generator.
	BenchmarkConfig = workload.BenchmarkConfig
	// BoundedResult is a bounded-core (NP-hard variant) solution.
	BoundedResult = partition.Result
)

// Sleep policy constants.
const (
	SleepNever     = schedule.SleepNever
	SleepAlways    = schedule.SleepAlways
	SleepBreakEven = schedule.SleepBreakEven
)

// Task model constants.
const (
	ModelCommonDeadline = task.ModelCommonDeadline
	ModelCommonRelease  = task.ModelCommonRelease
	ModelAgreeable      = task.ModelAgreeable
	ModelGeneral        = task.ModelGeneral
)

// Benchmark kernels.
const (
	KernelFFT    = workload.KernelFFT
	KernelMatMul = workload.KernelMatMul
	KernelMixed  = workload.KernelMixed
)

// CortexA57 returns the ARM Cortex-A57 core model of the paper's
// evaluation (§8.1.3).
func CortexA57() Core { return power.CortexA57() }

// DefaultSystem returns the paper's default platform: eight Cortex-A57
// cores, α_m = 4 W, ξ_m = 40 ms.
func DefaultSystem() System { return power.DefaultSystem() }

// MHz converts MHz to Hz; Milliseconds converts ms to seconds.
func MHz(f float64) float64          { return power.MHz(f) }
func Milliseconds(t float64) float64 { return power.Milliseconds(t) }

// Solution is an offline scheduling solution; Scheme names the paper
// section whose algorithm produced it.
type Solution = core.Solution

// Solve computes an optimal offline schedule for the task set on the
// unbounded-core platform, dispatching per Table 1 of the paper: the §4
// schemes for common-release sets and the §5 dynamic programs for
// agreeable-deadline sets, each in its α = 0 / α ≠ 0 / transition-overhead
// variant according to sys. General task sets have no offline optimal
// algorithm in the paper; use ScheduleOnline for them.
func Solve(tasks TaskSet, sys System) (*Solution, error) {
	return core.Solve(tasks, sys)
}

// Telemetry is the module's metrics/trace recorder. A nil *Telemetry is
// the valid disabled state: every recording method on it is a no-op, so
// instrumented code needs no conditionals and pays nothing when
// observability is off.
type Telemetry = telemetry.Recorder

// NewTelemetry returns an enabled recorder to pass to the Tel solver
// variants, OnlineOptions.Telemetry, RecoveryPolicy.Telemetry, or the
// experiment harness.
func NewTelemetry() *Telemetry { return telemetry.New() }

// WriteOpenMetrics renders a recorder's current metric state as
// Prometheus/OpenMetrics text exposition — the format served at GET
// /metrics by cmd/sdemd. The snapshot is taken atomically and rendered
// in sorted (name, labels) order, so the exposition is byte-identical
// for a fixed computation; samples carry no timestamps (the scraper
// assigns wall time), so virtual schedule/sim time never leaks out. A
// nil recorder writes an empty exposition ("# EOF" only).
func WriteOpenMetrics(w io.Writer, tel *Telemetry) error {
	return export.WriteOpenMetrics(w, tel.Snapshot())
}

// SolveTel is Solve with telemetry: solver counters and timings are
// recorded under sdem.solver.* and sim activity under sdem.sim.*. A nil
// recorder makes it identical to Solve.
func SolveTel(tasks TaskSet, sys System, tel *Telemetry) (*Solution, error) {
	return core.SolveTel(tasks, sys, tel)
}

// SolveCtx is SolveTel under a cooperative-cancellation context: the
// solvers poll ctx at iteration boundaries (the agreeable DP per memo
// row) and abandon the solve with an error wrapping ctx's error once the
// context is done. Use it to bound solve latency with a deadline budget
// — cmd/sdemd threads every request's budget through here. A nil ctx
// never cancels; runs that complete are bit-identical to SolveTel's.
func SolveCtx(ctx context.Context, tasks TaskSet, sys System, tel *Telemetry) (*Solution, error) {
	return core.SolveCtx(ctx, tasks, sys, tel)
}

// ComponentEnergy attributes an online run's audited energy to the four
// components of the paper's model: core dynamic, core static, memory
// static, and transition overhead. Obtain one from
// OnlineResult.EnergyBreakdown or ComponentBreakdown.
type ComponentEnergy = sim.EnergyBreakdown

// ComponentBreakdown folds an audited EnergyBreakdown into the
// four-component attribution; the components sum to the audit total.
func ComponentBreakdown(b EnergyBreakdown) ComponentEnergy {
	return sim.ComponentBreakdown(b)
}

// ScheduleOnline runs the SDEM-ON heuristic of §6 (with the §7
// transition-overhead handling when sys carries break-even times).
func ScheduleOnline(tasks TaskSet, sys System, opts OnlineOptions) (*OnlineResult, error) {
	return online.Schedule(tasks, sys, opts)
}

// MBKP runs the memory-oblivious multi-core DVS baseline of the
// evaluation.
func MBKP(tasks TaskSet, sys System, cores int) (*OnlineResult, error) {
	return baseline.MBKP(tasks, sys, cores)
}

// MBKPS runs MBKP with the naive sleep-whenever-idle memory scheme.
func MBKPS(tasks TaskSet, sys System, cores int) (*OnlineResult, error) {
	return baseline.MBKPS(tasks, sys, cores)
}

// RaceToIdle runs every task at maximum speed and sleeps — one pole of
// the title question.
func RaceToIdle(tasks TaskSet, sys System, cores int) (*OnlineResult, error) {
	return baseline.RaceToIdle(tasks, sys, cores)
}

// CriticalSpeedPolicy runs every task at the per-core optimal critical
// speed — the other pole.
func CriticalSpeedPolicy(tasks TaskSet, sys System, cores int) (*OnlineResult, error) {
	return baseline.CriticalSpeed(tasks, sys, cores)
}

// SolveBounded schedules a common-release, common-deadline set on the
// bounded number of cores declared by sys.Cores (the NP-hard variant of
// Theorem 1): an exact partition for small sets, the LPT heuristic
// otherwise.
func SolveBounded(tasks TaskSet, sys System, exact bool) (*BoundedResult, error) {
	return partition.Solve(tasks, sys, exact)
}

// SolveBoundedGeneral schedules a common-release set with individual
// deadlines on the bounded core count of sys.Cores — the practical
// variant between Theorem 1's common-deadline case and the unbounded §4
// schemes (EDF worst-fit assignment + shared busy-length optimization).
func SolveBoundedGeneral(tasks TaskSet, sys System) (*BoundedResult, error) {
	return partition.SolveGeneralDeadlines(tasks, sys)
}

// Audit independently derives the energy breakdown of a schedule under
// the system model — the same accounting every solver in this module is
// tested against.
func Audit(s *Schedule, sys System) EnergyBreakdown {
	return schedule.Audit(s, sys)
}

// Validate checks a schedule for real-time feasibility against its task
// set (deadlines, workloads, non-migration, optional speed cap).
func Validate(s *Schedule, tasks TaskSet, speedMax float64) error {
	return s.Validate(tasks, schedule.ValidateOptions{SpeedMax: speedMax})
}

// Gantt renders the schedule as a text Gantt chart with a memory row.
func Gantt(s *Schedule) string {
	return trace.Render(s, trace.Options{})
}

// GanttSVG renders the schedule as a self-contained SVG document with
// speed-coloured segments and a memory lane.
func GanttSVG(s *Schedule, title string) string {
	return trace.SVG(s, trace.SVGOptions{Title: title})
}

// CortexA7 returns the LITTLE-core companion preset for heterogeneous
// (big.LITTLE) experiments.
func CortexA7() Core { return power.CortexA7() }

// Stream is one periodic (or sporadic, via Jitter) real-time task
// stream; PeriodicSystem is a set of streams.
type (
	Stream         = periodic.Stream
	PeriodicSystem = periodic.System
)

// ExpandStreams instantiates every job the streams release in
// [0, horizon) as a task set (deterministic in the seed).
func ExpandStreams(streams PeriodicSystem, horizon float64, seed int64) (TaskSet, error) {
	return streams.Expand(horizon, seed)
}

// LowerBound returns a certified lower bound on the energy of any
// feasible schedule of the task set — core per-cycle minima plus the
// memory's weighted-disjoint-window occupancy bound.
func LowerBound(tasks TaskSet, sys System) float64 {
	return core.LowerBound(tasks, sys)
}

// Ladder is a finite set of DVS operating frequencies.
type Ladder = discrete.Ladder

// CortexA57Ladder returns the 200 MHz-step A57 operating points.
func CortexA57Ladder() Ladder { return discrete.CortexA57Ladder() }

// Quantize maps a continuous-speed schedule onto a frequency ladder via
// the Ishihara–Yasuura two-level split (§3's continuous-to-discrete
// transform): same work, same windows, minimum-energy realization on the
// ladder.
func Quantize(s *Schedule, ladder Ladder) (*Schedule, error) {
	return discrete.Quantize(s, ladder)
}

// SolveHeterogeneous solves the §4.2 common-release problem when each
// task's core has its own power model (the heterogeneous-core extension
// noted at the end of §4). cores[i] is task i's core; all must share λ.
func SolveHeterogeneous(tasks TaskSet, cores []Core, mem Memory) (*Solution, error) { //lint:allow auditcheck: wraps the hetero solver's already-normalized schedule
	sol, err := commonrelease.SolveHetero(tasks, cores, mem)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: sol.Schedule,
		Energy:   sol.Energy,
		Model:    tasks.Classify(),
		Scheme:   "§4.2-hetero",
	}, nil
}

// AuditPerCore audits a schedule on heterogeneous cores: cores[i] is the
// model of core i.
func AuditPerCore(s *Schedule, cores []Core, mem Memory) EnergyBreakdown {
	return schedule.AuditPerCore(s, cores, mem)
}

// Sentinel errors shared across the solvers and the resilient runtime.
// Branch on them with errors.Is; the original messages are preserved as
// wrapping context.
var (
	// ErrInfeasible marks instances no schedule can satisfy (or
	// structurally broken inputs).
	ErrInfeasible = schedule.ErrInfeasible
	// ErrDeadlineMiss marks schedules that run work past its deadline.
	ErrDeadlineMiss = schedule.ErrDeadlineMiss
	// ErrSpeedCap marks schedules commanding speeds beyond s_up.
	ErrSpeedCap = schedule.ErrSpeedCap
)

// Fault injection and graceful degradation.
type (
	// Fault is one typed deviation from the plan (overrun, wake latency,
	// speed cap, spurious wake, late release).
	Fault = faults.Fault
	// FaultKind classifies a Fault.
	FaultKind = faults.Kind
	// FaultPlan is a replayable set of faults.
	FaultPlan = faults.Plan
	// FaultConfig tunes GenerateFaults.
	FaultConfig = faults.Config
	// RecoveryPolicy selects the recovery actions the resilient runtime
	// may take.
	RecoveryPolicy = resilient.Policy
	// RecoveryAction names one recovery chain step.
	RecoveryAction = resilient.Action
	// Recovery is one logged recovery attempt.
	Recovery = resilient.Recovery
	// RecoveryLog is the recovery audit trail of a run.
	RecoveryLog = resilient.RecoveryLog
	// ExecuteResult is the outcome of a fault-perturbed replay.
	ExecuteResult = resilient.Result
	// Miss describes one deadline miss (who, by how much, and why).
	Miss = schedule.Miss
	// MissClass attributes a miss (planned / fault-induced / averted).
	MissClass = schedule.MissClass
)

// Fault kind constants.
const (
	FaultOverrun      = faults.Overrun
	FaultWakeLatency  = faults.WakeLatency
	FaultSpeedCap     = faults.SpeedCap
	FaultSpuriousWake = faults.SpuriousWake
	FaultLateRelease  = faults.LateRelease
)

// Recovery action constants.
const (
	RecoveryBoost  = resilient.ActionBoost
	RecoveryReplan = resilient.ActionReplan
	RecoveryRace   = resilient.ActionRace
)

// Miss classification constants.
const (
	MissPlanned      = schedule.MissPlanned
	MissFaultInduced = schedule.MissFaultInduced
	MissAverted      = schedule.MissAverted
)

// DefaultRecovery enables the full recovery chain (boost, re-plan, race);
// NoRecovery disables all recovery for baseline fault replays.
func DefaultRecovery() RecoveryPolicy { return resilient.DefaultPolicy() }
func NoRecovery() RecoveryPolicy      { return resilient.NoRecovery() }

// GenerateFaults draws a fault plan for the task set, deterministic in
// the seed (the replayability guarantee Execute builds on).
func GenerateFaults(cfg FaultConfig, tasks TaskSet, sys System, seed int64) FaultPlan {
	return faults.Generate(cfg, tasks, sys, seed)
}

// Execute replays a schedule through a fault-perturbed execution with
// graceful degradation: impending misses are detected at checkpoint
// boundaries and countered by the recovery chain the policy enables
// (local speed boost, §4 re-plan, race to idle), every action logged.
// With an empty fault plan the replay reproduces the input schedule
// exactly.
func Execute(sched *Schedule, tasks TaskSet, sys System, plan FaultPlan, pol RecoveryPolicy) (*ExecuteResult, error) {
	return resilient.Execute(sched, tasks, sys, plan, pol)
}

// SyntheticWorkload draws the paper's §8.1.2 random task set.
func SyntheticWorkload(cfg SyntheticConfig, seed int64) (TaskSet, error) {
	return workload.Synthetic(cfg, seed)
}

// BenchmarkWorkload draws the paper's §8.1.1 DSPstone-style benchmark
// task set.
func BenchmarkWorkload(cfg BenchmarkConfig, seed int64) (TaskSet, error) {
	return workload.Benchmark(cfg, seed)
}
