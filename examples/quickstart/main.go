// Quickstart: define a platform and a handful of real-time tasks, compute
// the offline optimal SDEM schedule, and inspect the audited energy and
// the schedule itself.
package main

import (
	"fmt"
	"log"

	"sdem"
)

func main() {
	// The paper's evaluation platform: eight ARM Cortex-A57 cores
	// (P = 0.31 W + 2.53e-28·s³), a DRAM leaking α_m = 4 W with a 40 ms
	// sleep break-even time.
	sys := sdem.DefaultSystem()

	// Three jobs released together (a common-release set, §4 of the
	// paper): workloads in CPU cycles, deadlines in seconds.
	tasks := sdem.TaskSet{
		{ID: 1, Release: 0, Deadline: sdem.Milliseconds(40), Workload: 3e6, Name: "sensor-fusion"},
		{ID: 2, Release: 0, Deadline: sdem.Milliseconds(80), Workload: 5e6, Name: "video-frame"},
		{ID: 3, Release: 0, Deadline: sdem.Milliseconds(120), Workload: 2e6, Name: "telemetry"},
	}

	// Solve dispatches to the optimal scheme for the task model — here
	// §4.2 with the §7 transition-overhead handling, since the platform
	// has core static power and non-zero break-even times.
	sol, err := sdem.Solve(tasks, sys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task model: %v\n", sol.Model)
	fmt.Printf("optimal system energy: %.6f J\n\n", sol.Energy)

	// The audit itemizes where the energy goes.
	b := sdem.Audit(sol.Schedule, sys)
	fmt.Printf("core dynamic  %.6f J\n", b.CoreDynamic)
	fmt.Printf("core static   %.6f J (+%.6f J transitions)\n", b.CoreStatic, b.CoreTransition)
	fmt.Printf("memory static %.6f J (+%.6f J transitions)\n", b.MemoryStatic, b.MemoryTransition)
	fmt.Printf("memory asleep %.4f s of %.4f s\n\n", b.MemorySleep, sol.Schedule.End-sol.Schedule.Start)

	// And the schedule is a plain data structure you can render or
	// post-process.
	fmt.Print(sdem.Gantt(sol.Schedule))

	// Compare against naive alternatives: racing every task at 1.9 GHz,
	// or running everything at the core-optimal critical speed.
	race, err := sdem.RaceToIdle(tasks, sys, sys.Cores)
	if err != nil {
		log.Fatal(err)
	}
	crit, err := sdem.CriticalSpeedPolicy(tasks, sys, sys.Cores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrace-to-idle:   %.6f J\n", race.Energy)
	fmt.Printf("critical-speed: %.6f J\n", crit.Energy)
	fmt.Printf("SDEM optimal:   %.6f J  (the balanced answer to \"race to idle or not\")\n", sol.Energy)
}
