// Discrete-DVFS: real processors expose a finite frequency ladder, not
// the continuous speeds the theory assumes. This example solves a
// common-release instance optimally in the continuous model, then maps
// the schedule onto the Cortex-A57's 200 MHz-step ladder with the
// Ishihara–Yasuura two-level split (§3's justification for the
// continuous assumption), and measures the energy gap as the ladder
// densifies.
package main

import (
	"fmt"
	"log"

	"sdem"
)

func main() {
	sys := sdem.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0

	tasks := sdem.TaskSet{
		{ID: 1, Release: 0, Deadline: sdem.Milliseconds(50), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: sdem.Milliseconds(80), Workload: 4.4e6},
		{ID: 3, Release: 0, Deadline: sdem.Milliseconds(120), Workload: 2.7e6},
	}

	sol, err := sdem.Solve(tasks, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous optimum (%s): %.6f J\n", sol.Scheme, sol.Energy)
	for _, segs := range sol.Schedule.Cores {
		for _, sg := range segs {
			fmt.Printf("  task %d @ %.1f MHz\n", sg.TaskID, sg.Speed/1e6)
		}
	}

	// Map onto the real A57 ladder: each continuous speed becomes a
	// two-level split between adjacent operating points.
	ladder := sdem.CortexA57Ladder()
	q, err := sdem.Quantize(sol.Schedule, ladder)
	if err != nil {
		log.Fatal(err)
	}
	if err := sdem.Validate(q, tasks, ladder.MaxLevel()); err != nil {
		log.Fatal("quantized schedule infeasible: ", err)
	}
	eq := sdem.Audit(q, sys).Total()
	fmt.Printf("\nA57 7-level ladder: %.6f J (+%.3f%%)\n", eq, 100*(eq-sol.Energy)/sol.Energy)
	for _, segs := range q.Cores {
		for _, sg := range segs {
			fmt.Printf("  task %d @ %.0f MHz for %.2f ms\n",
				sg.TaskID, sg.Speed/1e6, (sg.End-sg.Start)*1e3)
		}
	}

	// The gap shrinks as ladders densify — the paper's argument for the
	// continuous model.
	fmt.Println("\nladder density sweep:")
	for _, n := range []int{2, 3, 5, 9, 17, 33} {
		l := uniform(1e8, 1.9e9, n)
		qq, err := sdem.Quantize(sol.Schedule, l)
		if err != nil {
			log.Fatal(err)
		}
		e := sdem.Audit(qq, sys).Total()
		fmt.Printf("  %2d levels: +%.4f%%\n", n, 100*(e-sol.Energy)/sol.Energy)
	}
}

// uniform builds an evenly spaced ladder.
func uniform(lo, hi float64, n int) sdem.Ladder {
	out := make(sdem.Ladder, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
