// Server-burst: a server-style workload where requests arrive in bursts
// separated by quiet periods — the regime where coordinating DVS with the
// memory sleep state pays most. Demonstrates the agreeable-deadline
// offline optimum (§5) against the online heuristic and the baselines,
// and shows the block structure the dynamic program discovers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sdem"
)

// burstyWorkload builds bursts of simultaneous requests: each burst is a
// common-release group, bursts are spaced far apart. The set is
// agreeable, so the §5 DP applies.
func burstyWorkload(r *rand.Rand, bursts, perBurst int, gap float64) sdem.TaskSet {
	var tasks sdem.TaskSet
	var t float64
	id := 0
	for b := 0; b < bursts; b++ {
		window := sdem.Milliseconds(60 + r.Float64()*60)
		for i := 0; i < perBurst; i++ {
			tasks = append(tasks, sdem.Task{
				ID:       id,
				Release:  t,
				Deadline: t + window,
				Workload: 2e6 + r.Float64()*3e6,
				Name:     fmt.Sprintf("req-%d-%d", b, i),
			})
			id++
		}
		t += gap * (0.75 + 0.5*r.Float64())
	}
	return tasks
}

func main() {
	sys := sdem.DefaultSystem()
	r := rand.New(rand.NewSource(11)) //lint:allow randsource: fixed demo seed, not a sweep grid point
	tasks := burstyWorkload(r, 4, 5, sdem.Milliseconds(300))
	fmt.Printf("bursty workload: %d requests in 4 bursts, model %v\n\n", len(tasks), tasks.Classify())

	// Offline optimum: the §5 dynamic program finds one scheduling block
	// per burst so the memory sleeps through every quiet period.
	sol, err := sdem.Solve(tasks, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimal (§5 DP): %.4f J\n", sol.Energy)
	fmt.Print(sdem.Gantt(sol.Schedule))

	// Online SDEM-ON sees the bursts only as they arrive yet lands close
	// to the offline optimum.
	on, err := sdem.ScheduleOnline(tasks, sys, sdem.OnlineOptions{Cores: 8})
	if err != nil {
		log.Fatal(err)
	}
	mbkps, err := sdem.MBKPS(tasks, sys, 8)
	if err != nil {
		log.Fatal(err)
	}
	mbkp, err := sdem.MBKP(tasks, sys, 8)
	if err != nil {
		log.Fatal(err)
	}
	if len(on.Misses)+len(mbkps.Misses)+len(mbkp.Misses) > 0 {
		log.Fatal("unexpected deadline misses")
	}

	fmt.Printf("\n%-24s %12s %16s\n", "scheduler", "energy (J)", "vs offline opt")
	for _, e := range []struct {
		name   string
		energy float64
	}{
		{"offline optimal (§5)", sol.Energy},
		{"SDEM-ON (online §6)", on.Energy},
		{"MBKPS", mbkps.Energy},
		{"MBKP", mbkp.Energy},
	} {
		fmt.Printf("%-24s %12.4f %15.2f%%\n", e.name, e.energy, 100*(e.energy-sol.Energy)/sol.Energy)
	}
	fmt.Printf("\nSDEM-ON memory sleep: %.3f s; MBKPS: %.3f s; MBKP: %.3f s\n",
		on.Breakdown.MemorySleep, mbkps.Breakdown.MemorySleep, mbkp.Breakdown.MemorySleep)
}
