// Periodic-control: a realistic embedded control system modelled as
// periodic streams — a fast control loop, a sensor-fusion stage and a
// sporadic telemetry uplink — expanded into jobs, scheduled online by
// SDEM-ON, and reported with response-time metrics alongside the energy
// comparison. Shows the full pipeline: streams → jobs → schedule →
// audit → metrics.
package main

import (
	"fmt"
	"log"

	"sdem"
)

func main() {
	streams := sdem.PeriodicSystem{
		{ID: 1, Name: "ctrl", Period: sdem.Milliseconds(20), Window: sdem.Milliseconds(8), Workload: 1.5e6},
		{ID: 2, Name: "fusion", Period: sdem.Milliseconds(60), Window: sdem.Milliseconds(40), Workload: 4e6},
		{ID: 3, Name: "telemetry", Period: sdem.Milliseconds(250), Window: sdem.Milliseconds(200), Workload: 5e6, Jitter: 0.4},
	}
	fmt.Printf("streams: utilization %.1f%% of one core at 1.9 GHz\n",
		100*streams.Utilization(sdem.MHz(1900)))
	fmt.Printf("hyperperiod (periodic part): %.0f ms\n\n", 1e3*streams.Hyperperiod(1e-3))

	jobs, err := sdem.ExpandStreams(streams, 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs over 1 s\n\n", len(jobs))

	sys := sdem.DefaultSystem()
	sys.Cores = 4

	type row struct {
		name string
		res  *sdem.OnlineResult
	}
	var rows []row
	for _, e := range []struct {
		name string
		run  func() (*sdem.OnlineResult, error)
	}{
		{"MBKP", func() (*sdem.OnlineResult, error) { return sdem.MBKP(jobs, sys, 4) }},
		{"MBKPS", func() (*sdem.OnlineResult, error) { return sdem.MBKPS(jobs, sys, 4) }},
		{"SDEM-ON", func() (*sdem.OnlineResult, error) {
			return sdem.ScheduleOnline(jobs, sys, sdem.OnlineOptions{Cores: 4})
		}},
	} {
		res, err := e.run()
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Misses) > 0 {
			log.Fatalf("%s missed %d deadlines", e.name, len(res.Misses))
		}
		rows = append(rows, row{e.name, res})
	}

	base := rows[0].res.Energy
	fmt.Printf("%-10s %10s %9s %14s %14s %12s\n",
		"scheduler", "energy (J)", "saving", "mean resp (ms)", "mean laxity", "mem asleep")
	for _, rw := range rows {
		m := rw.res.Metrics
		fmt.Printf("%-10s %10.4f %8.2f%% %14.2f %13.2fms %11.3fs\n",
			rw.name, rw.res.Energy, 100*(base-rw.res.Energy)/base,
			1e3*m.MeanResponse, 1e3*m.MeanLaxity, rw.res.Breakdown.MemorySleep)
	}

	fmt.Println(`
Two things happen at once: SDEM-ON procrastinates each batch to its
latest safe start (laxity shrinks from the window toward zero far less
than MBKP's, whose stretched executions hug the deadlines), yet its
critical-speed execution finishes each job quickly — so it delivers
lower energy AND lower mean response than the OA baselines, with zero
misses.`)
}
