// Race-to-idle: the title question in isolation. For a single task and a
// sweep of memory static powers, compares racing at s_up (maximizing
// sleep), stretching to the deadline (minimizing dynamic power), running
// at the core-critical speed s_0, and the paper's optimum — showing how
// the balance point moves with α_m and where each naive strategy loses.
package main

import (
	"fmt"
	"log"

	"sdem"
)

func main() {
	base := sdem.DefaultSystem()
	base.Core.BreakEven = 0
	base.Memory.BreakEven = 0

	w := 4e6                    // cycles
	d := sdem.Milliseconds(100) // deadline
	task := sdem.Task{ID: 1, Deadline: d, Workload: w}
	tasks := sdem.TaskSet{task}

	fmt.Println("single task: 4e6 cycles, 100 ms window, Cortex-A57 core")
	fmt.Printf("core critical speed s_0 = %.0f MHz (per-core optimum, independent of the memory)\n\n",
		base.Core.CriticalSpeedRaw()/1e6)

	fmt.Printf("%-10s %-14s %-14s %-14s %-14s %-12s\n",
		"α_m (W)", "race@s_up (J)", "stretch (J)", "critical (J)", "optimal (J)", "opt speed")
	for _, alphaM := range []float64{0.5, 1, 2, 4, 8, 16} {
		sys := base
		sys.Memory.Static = alphaM

		race := energyAtSpeed(sys, w, d, sys.Core.SpeedMax)
		stretch := energyAtSpeed(sys, w, d, w/d)
		critical := energyAtSpeed(sys, w, d, sys.Core.CriticalSpeedRaw())

		sol, err := sdem.Solve(tasks, sys)
		if err != nil {
			log.Fatal(err)
		}
		optSpeed := speedOf(sol.Schedule)
		fmt.Printf("%-10.1f %-14.5f %-14.5f %-14.5f %-14.5f %.0f MHz\n",
			alphaM, race, stretch, critical, sol.Energy, optSpeed/1e6)
	}

	fmt.Println(`
Reading the table: with little memory leakage the per-core critical speed
is optimal ("don't race"); as α_m grows the optimum accelerates towards
s_up because every second of memory activity costs more than the extra
dynamic energy ("race to idle"). The paper's scheme lands on the exact
balance point — the memory-associated critical speed of §5.2, capped at
s_up.`)
}

// energyAtSpeed audits the single-task schedule at a fixed speed.
func energyAtSpeed(sys sdem.System, w, d, speed float64) float64 {
	s := &sdem.Schedule{}
	*s = *newSchedule(1, 0, d)
	s.Add(0, sdem.Segment{TaskID: 1, Start: 0, End: w / speed, Speed: speed})
	s.Normalize()
	return sdem.Audit(s, sys).Total()
}

func newSchedule(cores int, start, end float64) *sdem.Schedule {
	s := &sdem.Schedule{NumCores: cores, Start: start, End: end,
		CorePolicy: sdem.SleepBreakEven, MemoryPolicy: sdem.SleepBreakEven}
	return s
}

func speedOf(s *sdem.Schedule) float64 {
	for _, segs := range s.Cores {
		for _, sg := range segs {
			return sg.Speed
		}
	}
	return 0
}
