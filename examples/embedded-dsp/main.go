// Embedded-DSP: the paper's §8.1.1 scenario end to end. Real DSP kernels
// (a 1024-point FFT and a matrix multiply) run through the cycle-cost
// model to derive task parameters; the resulting sporadic instance stream
// is scheduled online by SDEM-ON and by the MBKP/MBKPS baselines, and the
// energy comparison of Fig. 6 is reproduced for one utilization point.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sdem"
	"sdem/internal/dsp"
)

func main() {
	// First, run the kernels for real: this is what the cycle model is
	// calibrated against (the stand-in for the xsim2101 DSP simulator).
	cm := dsp.DefaultCostModel()
	r := rand.New(rand.NewSource(42)) //lint:allow randsource: fixed demo seed, not a sweep grid point

	signal := make([]complex128, 1024)
	for i := range signal {
		signal[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	fft, err := dsp.FFT(signal, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT-1024: %d bins, %.0f modelled DSP cycles (%.2f ms at 16.5 MHz)\n",
		len(fft.Output), fft.Cycles, 1e3*fft.Cycles/dsp.DSPClockHz)

	a, b := dsp.NewMatrix(32, 32), dsp.NewMatrix(32, 32)
	for i := range a.Data {
		a.Data[i], b.Data[i] = r.NormFloat64(), r.NormFloat64()
	}
	mm, err := dsp.MatMul(a, b, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MatMul 32³: checksum %.3f, %.0f modelled cycles (%.2f ms at 16.5 MHz)\n\n",
		mm.Product.At(0, 0), mm.Cycles, 1e3*mm.Cycles/dsp.DSPClockHz)

	// Now the Fig. 6 scenario at U = 4: a stream of mixed FFT/matmul
	// instances whose deadlines derive from those cycle counts.
	sys := sdem.DefaultSystem()
	tasks, err := sdem.BenchmarkWorkload(sdem.BenchmarkConfig{N: 40, Kernel: sdem.KernelMixed, U: 4}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d benchmark instances over %.2f s\n", len(tasks), spanOf(tasks))

	type row struct {
		name string
		res  *sdem.OnlineResult
	}
	var rows []row
	for _, e := range []struct {
		name string
		run  func() (*sdem.OnlineResult, error)
	}{
		{"MBKP   (no sleep)", func() (*sdem.OnlineResult, error) { return sdem.MBKP(tasks, sys, 8) }},
		{"MBKPS  (naive sleep)", func() (*sdem.OnlineResult, error) { return sdem.MBKPS(tasks, sys, 8) }},
		{"SDEM-ON (this paper)", func() (*sdem.OnlineResult, error) {
			return sdem.ScheduleOnline(tasks, sys, sdem.OnlineOptions{Cores: 8})
		}},
	} {
		res, err := e.run()
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Misses) > 0 {
			log.Fatalf("%s missed deadlines: %v", e.name, res.Misses)
		}
		rows = append(rows, row{e.name, res})
	}

	base := rows[0].res.Energy
	fmt.Printf("\n%-22s %12s %12s %14s\n", "scheduler", "energy (J)", "saving", "memory asleep")
	for _, rw := range rows {
		fmt.Printf("%-22s %12.4f %11.2f%% %12.4fs\n",
			rw.name, rw.res.Energy, 100*(base-rw.res.Energy)/base, rw.res.Breakdown.MemorySleep)
	}
}

func spanOf(tasks sdem.TaskSet) float64 {
	start, end := tasks.Span()
	return end - start
}
