GO ?= go

.PHONY: check build vet test lint fmt fuzz trace-demo bench

# check chains the same steps CI runs (.github/workflows/ci.yml).
check: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/sdemlint ./...

# fuzz is a short smoke run of the resilient-runtime fuzz target; CI runs
# it on every push, longer campaigns are manual (-fuzztime 10m etc.).
fuzz:
	$(GO) test ./internal/resilient -run '^$$' -fuzz FuzzExecute -fuzztime 10s

# trace-demo writes a small sweep's metrics and a Chrome trace you can
# open in ui.perfetto.dev or chrome://tracing (see README "Observability").
trace-demo:
	$(GO) run ./cmd/experiments -run fig6a -seeds 2 -tasks 12 \
		-telemetry -metrics-out=trace-demo.metrics -trace-out=trace-demo.json
	@echo "wrote trace-demo.metrics and trace-demo.json (load the .json in ui.perfetto.dev)"

# bench runs the fast micro-benchmarks and snapshots them to
# BENCH_5.json via cmd/benchreport, so baselines can be diffed in review.
# The figure-scale sweeps (Fig6*/Fig7*/Table3/Sweep*) are excluded: they
# take minutes and are run manually when sweep performance is the topic.
bench:
	$(GO) test -run '^$$' \
		-bench 'SolveCommonRelease|SolveAgreeableDP|SolveHeterogeneous|ScheduleOnline|MBKPBaseline|Audit|FFT1024|PartitionExact|Quantize|LowerBound|Telemetry|Uninstrumented|SnapshotDisabled' \
		-benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchreport -out BENCH_5.json
	@echo "wrote BENCH_5.json"

fmt:
	gofmt -l -w .
