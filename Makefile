GO ?= go

.PHONY: check build vet test lint fmt fuzz

# check chains the same steps CI runs (.github/workflows/ci.yml).
check: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/sdemlint ./...

# fuzz is a short smoke run of the resilient-runtime fuzz target; CI runs
# it on every push, longer campaigns are manual (-fuzztime 10m etc.).
fuzz:
	$(GO) test ./internal/resilient -run '^$$' -fuzz FuzzExecute -fuzztime 10s

fmt:
	gofmt -l -w .
