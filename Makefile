GO ?= go

.PHONY: check build vet test lint fmt

# check chains the same steps CI runs (.github/workflows/ci.yml).
check: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/sdemlint ./...

fmt:
	gofmt -l -w .
