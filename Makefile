GO ?= go

.PHONY: check build vet test lint fmt fuzz trace-demo bench bench-gate bench-stream soak-smoke overload-smoke trace-smoke watch-smoke campaign

# check chains the same steps CI runs (.github/workflows/ci.yml).
check: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/sdemlint ./...

# fuzz is a short smoke run of the resilient-runtime fuzz target; CI runs
# it on every push, longer campaigns are manual (-fuzztime 10m etc.).
fuzz:
	$(GO) test ./internal/resilient -run '^$$' -fuzz FuzzExecute -fuzztime 10s

# trace-demo writes a small sweep's metrics and a Chrome trace you can
# open in ui.perfetto.dev or chrome://tracing (see README "Observability").
trace-demo:
	$(GO) run ./cmd/experiments -run fig6a -seeds 2 -tasks 12 \
		-telemetry -metrics-out=trace-demo.metrics -trace-out=trace-demo.json
	@echo "wrote trace-demo.metrics and trace-demo.json (load the .json in ui.perfetto.dev)"

# bench runs the fast micro-benchmarks and snapshots them to
# BENCH_10.json via cmd/benchreport, comparing allocs/op against the
# committed BENCH_8.json baseline (fails on >5% growth) and enforcing
# the zero-alloc phase-3 improvement floor (ScheduleStream10k at least
# 3x fewer allocs/op than the pre-free-list baseline — the job slab plus
# the typed arrival heap bought ~3.9x), so baselines can be diffed in
# review and regressions gate. The stale ScheduleOnline floor from the
# BENCH_7 era is retired: it demanded improvement vs a pre-streaming
# baseline that BENCH_8 already banked. The figure-scale sweeps
# (Fig6*/Fig7*/Table3/Sweep*) are excluded: they take minutes and are run
# manually when sweep performance is the topic. ScheduleStreamMillion
# runs at a single iteration (one million-arrival pass is the statement)
# and lands in the snapshot alongside the pattern benchmarks; the 10k
# sibling rides in the alloc gate too.
BENCH_PATTERN = SolveCommonRelease|SolveAgreeableDP|SolveHeterogeneous|ScheduleOnline|ScheduleStream10k|MBKPBaseline|Audit|FFT1024|PartitionExact|Quantize|LowerBound|Telemetry|Uninstrumented|SnapshotDisabled|CanonicalKey

bench:
	( $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem ./... && \
	  $(GO) test ./internal/online -run '^$$' -bench ScheduleStreamMillion -benchmem -benchtime 1x ) \
		| tee /dev/stderr | $(GO) run ./cmd/benchreport -out BENCH_10.json -compare BENCH_8.json \
		-require 'BenchmarkScheduleStream10k:allocs=3'
	@echo "wrote BENCH_10.json"

# bench-gate re-runs the micro-benchmarks without touching the committed
# snapshot and fails if any allocs/op regressed >5% vs the BENCH_10.json
# baseline. This is the CI alloc-regression gate; allocs/op (unlike ns/op)
# is deterministic for a fixed binary, so it never flakes under load.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 100x \
		-benchmem ./... | $(GO) run ./cmd/benchreport -compare BENCH_10.json > /dev/null

# bench-stream pushes one million sporadic arrivals through the streaming
# engine in a single pass: allocations must track the active set (the
# reported max_active), not the arrival count, and any unexplained miss
# fails the benchmark itself.
bench-stream:
	$(GO) test ./internal/online -run '^$$' -bench ScheduleStreamMillion -benchmem -benchtime 1x

# soak-smoke runs the streaming engine for ten virtual minutes under
# fault injection; sdemsoak exits nonzero on any unexplained miss.
soak-smoke:
	$(GO) run ./cmd/sdemsoak -virtual 600 -fault-intensity 0.6 -q

# overload-smoke reproduces the CI overload drill locally: a low-capacity
# sdemd under 2x-plus load must shed (429 + Retry-After) without a single
# 5xx, and repeated hot task sets must land in the schedule cache.
overload-smoke:
	$(GO) build -o sdemd.smoke ./cmd/sdemd && $(GO) build -o sdemload.smoke ./cmd/sdemload
	./sdemd.smoke -addr 127.0.0.1:0 -addr-file sdemd.smoke.addr \
		-admit-concurrency 2 -admit-queue 2 \
		-chaos-rate 0.8 -chaos-max-delay 200ms & \
	PID=$$!; \
	for i in $$(seq 1 50); do [ -s sdemd.smoke.addr ] && break; sleep 0.1; done; \
	ADDR=$$(cat sdemd.smoke.addr); \
	./sdemload.smoke -addr "$$ADDR" -op simulate -duration 5s -concurrency 24 \
		-tasks 30 -hot 0.7 -slow 1 -require-shed -max-5xx 0 -out loadreport.json; \
	STATUS=$$?; kill $$PID 2>/dev/null; wait $$PID 2>/dev/null; \
	rm -f sdemd.smoke sdemload.smoke sdemd.smoke.addr; exit $$STATUS

# watch-smoke drives the long-haul observability loop on the PR path:
# a fault-free windowed soak must pass its SLOs with byte-identical
# series dumps across repeat runs, sdemwatch must render byte-identical
# reports and verdicts from those dumps, and a fault-heavy soak must
# breach the miss-rate SLO and exit nonzero — the alarm is tested, not
# assumed. All windows are virtual-time; nothing here depends on wall
# clocks, so the diffs never flake.
watch-smoke:
	$(GO) build -race -o sdemsoak.smoke ./cmd/sdemsoak && $(GO) build -race -o sdemwatch.smoke ./cmd/sdemwatch
	./sdemsoak.smoke -virtual 600 -fault-intensity 0.6 -q -window 60 \
		-series-out soak1.jsonl -slo-miss-rate 0.05 -slo-p99 2 -slo-drift 0.5
	./sdemsoak.smoke -virtual 600 -fault-intensity 0.6 -q -window 60 \
		-series-out soak2.jsonl -slo-miss-rate 0.05 -slo-p99 2 -slo-drift 0.5
	cmp soak1.jsonl soak2.jsonl
	./sdemwatch.smoke -series soak1.jsonl -profile soak -verdict-out verdict1.json > watch1.txt
	./sdemwatch.smoke -series soak2.jsonl -profile soak -verdict-out verdict2.json > watch2.txt
	cmp watch1.txt watch2.txt
	cmp verdict1.json verdict2.json
	! ./sdemsoak.smoke -virtual 600 -fault-intensity 0.9 -q -window 60 -slo-miss-rate 0.01 2> breach.txt
	grep -q "SLO breach" breach.txt
	rm -f sdemsoak.smoke sdemwatch.smoke soak1.jsonl soak2.jsonl watch1.txt watch2.txt \
		verdict1.json verdict2.json breach.txt

# campaign replays the seeded million-request mixed hot/cold simulate
# campaign against a local sdemd and merges the benchreport-compatible
# summary line into the committed BENCH_10.json baseline. Minutes-long
# by design; run manually when serve throughput is the topic.
campaign:
	$(GO) build -o sdemd.smoke ./cmd/sdemd && $(GO) build -o sdemload.smoke ./cmd/sdemload
	./sdemd.smoke -addr 127.0.0.1:0 -addr-file sdemd.smoke.addr & \
	PID=$$!; \
	for i in $$(seq 1 50); do [ -s sdemd.smoke.addr ] && break; sleep 0.1; done; \
	ADDR=$$(cat sdemd.smoke.addr); \
	./sdemload.smoke -addr "$$ADDR" -campaign -out campaign.json > campaign.txt; \
	STATUS=$$?; cat campaign.txt; kill $$PID 2>/dev/null; wait $$PID 2>/dev/null; \
	if [ $$STATUS -eq 0 ]; then \
		$(GO) run ./cmd/benchreport -merge BENCH_10.json -out BENCH_10.json < campaign.txt || STATUS=1; \
	fi; \
	rm -f sdemd.smoke sdemload.smoke sdemd.smoke.addr campaign.txt; exit $$STATUS

# trace-smoke reproduces the CI request-tracing drill locally: sdemload
# -trace pulls every admitted request's wall span tree back out, sdemtrace
# -verify gates tree well-formedness, /metrics must carry trace_id
# exemplars, and a solve body must be byte-identical with tracing off.
trace-smoke:
	$(GO) build -o sdemd.smoke ./cmd/sdemd && $(GO) build -o sdemload.smoke ./cmd/sdemload \
		&& $(GO) build -o sdemtrace.smoke ./cmd/sdemtrace
	./sdemd.smoke -addr 127.0.0.1:0 -addr-file sdemd.smoke.addr & \
	PID=$$!; \
	for i in $$(seq 1 50); do [ -s sdemd.smoke.addr ] && break; sleep 0.1; done; \
	ADDR=$$(cat sdemd.smoke.addr); \
	./sdemload.smoke -addr "$$ADDR" -op simulate -requests 40 -duration 30s \
		-concurrency 4 -tasks 10 -max-5xx 0 -trace-out traces.jsonl; \
	STATUS=$$?; \
	[ $$STATUS -eq 0 ] && ./sdemtrace.smoke -verify traces.jsonl && ./sdemtrace.smoke traces.jsonl \
		&& curl -sf "http://$$ADDR/metrics" | grep -q '# {trace_id=' || STATUS=1; \
	kill $$PID 2>/dev/null; wait $$PID 2>/dev/null; \
	rm -f sdemd.smoke sdemload.smoke sdemtrace.smoke sdemd.smoke.addr; exit $$STATUS

fmt:
	gofmt -l -w .
