package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 0} {
		got, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("point-%03d", i), nil
	}
	seq, err := Map(context.Background(), 1, 64, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), 8, 64, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel output diverged from sequential:\n%v\n%v", seq, par)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", p, workers)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	_, err := Map(context.Background(), 4, 1000, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("point %d: %w", i, boom)
		}
		if i > 500 {
			// The tail should have been suppressed by cancellation long
			// before the dispenser reaches it.
			after.Add(1)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := after.Load(); n > 100 {
		t.Errorf("%d tail tasks ran after the failure; cancellation is not propagating", n)
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("sequential path ran %d tasks after error at index 2, want exactly 3", n)
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 8, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", workers, err)
		}
		if pe.Index != 5 || pe.Value != "kaboom" || pe.Stack == "" {
			t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
		}
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
			return i, nil
		})
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after parent cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 10 {
		t.Errorf("%d tasks started after cancellation", n)
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) { return i, nil }); err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	if _, err := Map(context.Background(), 4, -1, func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Fatal("n=-1: expected error")
	}
	if d := DefaultWorkers(); d < 1 {
		t.Fatalf("DefaultWorkers() = %d", d)
	}
}
