// Package parallel provides the deterministic bounded worker pool behind
// the experiment sweep engine: fan independent grid points out over a
// fixed number of goroutines, collect the results in index order, cancel
// everything on the first failure, and convert worker panics into
// ordinary errors instead of crashing the process.
//
// Determinism contract: on success, Map's result slice depends only on
// (n, fn) — never on the worker count or on goroutine interleaving —
// provided fn(i) is itself a pure function of i. The experiment harness
// guarantees that purity by deriving every grid point's RNG seed from its
// coordinates (stats.DeriveSeed) rather than from execution order, so a
// 16-worker sweep and the workers == 1 sequential path produce
// byte-identical figures.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Hooks observes pool execution for profiling. All fields are optional;
// the hooks must not influence results (they run outside the determinism
// contract — the sweep engine feeds them to wall-clock profilers only).
type Hooks struct {
	// PoolStart is called once, before any task, with the effective worker
	// count and the task count.
	PoolStart func(workers, n int)
	// TaskStart is called in the worker's goroutine as each task begins;
	// the function it returns (which may be nil) is called when the task
	// ends. Tasks that never start (cancelled or after a failure) call
	// neither.
	TaskStart func() func()
}

// Option configures a Map call.
type Option func(*config)

type config struct {
	hooks Hooks
}

// WithHooks attaches execution-observation hooks to the pool.
func WithHooks(h Hooks) Option {
	return func(c *config) { c.hooks = h }
}

func (c *config) taskStart() func() {
	if c.hooks.TaskStart == nil {
		return nil
	}
	return c.hooks.TaskStart()
}

// PanicError wraps a panic recovered inside a pool worker, carrying the
// index whose task panicked and the stack captured at recovery so the
// failure is debuggable after it has crossed goroutines.
type PanicError struct {
	Index int    // task index whose fn panicked
	Value any    // recovered panic value
	Stack string // stack trace captured at the recovery site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map evaluates fn(ctx, i) for every i in [0, n) using at most workers
// concurrent goroutines and returns the n results in index order.
//
// workers <= 0 selects DefaultWorkers; workers == 1 (or n < 2) runs the
// plain sequential loop in the caller's goroutine — no pool, identical to
// the historical serial sweep. The first failure — an error returned by
// fn, a panic recovered from fn, or cancellation of the parent context —
// cancels the context observed by in-flight calls and prevents unstarted
// indices from running; Map then returns the failure with the smallest
// index among those that executed, so the reported error is stable under
// scheduling for deterministic fn.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative task count %d", n)
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.hooks.PoolStart != nil {
		cfg.hooks.PoolStart(workers, n)
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			done := cfg.taskStart()
			v, err := protect(ctx, i, fn)
			if done != nil {
				done()
			}
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64 // index dispenser
		mu       sync.Mutex
		firstErr error
		firstIdx = n // smallest failed index seen so far
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				done := cfg.taskStart()
				v, err := protect(ctx, i, fn)
				if done != nil {
					done()
				}
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v // each worker owns distinct indices
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err // parent cancelled with no fn failure
	}
	return out, nil
}

// protect runs one task with panic capture.
func protect[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(ctx, i)
}
