package discrete

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func TestLadderValidate(t *testing.T) {
	if err := CortexA57Ladder().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Ladder{{}, {0, 1}, {2, 1}, {1, 1}}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("ladder %d should be invalid: %v", i, l)
		}
	}
}

func TestBracket(t *testing.T) {
	l := Ladder{1e9, 2e9, 3e9}
	cases := []struct {
		s      float64
		lo, hi float64
		ok     bool
	}{
		{0.5e9, 1e9, 1e9, true}, // below bottom: clamp pair
		{1e9, 1e9, 1e9, true},   // exact bottom
		{1.5e9, 1e9, 2e9, true}, // interior
		{2e9, 2e9, 2e9, true},   // exact middle
		{2.7e9, 2e9, 3e9, true}, // interior upper
		{3e9, 3e9, 3e9, true},   // exact top
		{3.5e9, 0, 0, false},    // above top
	}
	for _, tc := range cases {
		lo, hi, ok := l.Bracket(tc.s)
		if ok != tc.ok || (ok && (lo != tc.lo || hi != tc.hi)) {
			t.Errorf("Bracket(%g) = (%g, %g, %v), want (%g, %g, %v)", tc.s, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

func mkSchedule(speed float64) (*schedule.Schedule, task.Set) {
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: speed * 0.5}}
	s := schedule.New(1, 0, 1)
	s.Add(0, schedule.Segment{TaskID: 1, Start: 0.1, End: 0.6, Speed: speed})
	s.Normalize()
	return s, tasks
}

func TestQuantizePreservesWorkAndFeasibility(t *testing.T) {
	ladder := CortexA57Ladder()
	for _, speed := range []float64{7.3e8, 1.0e9, 1.3e9, 1.85e9, 1.9e9, 5e8} {
		s, tasks := mkSchedule(speed)
		q, err := Quantize(s, ladder)
		if err != nil {
			t.Fatalf("speed %g: %v", speed, err)
		}
		if err := q.Validate(tasks, schedule.ValidateOptions{SpeedMax: ladder.MaxLevel()}); err != nil {
			t.Errorf("speed %g: quantized schedule invalid: %v", speed, err)
		}
		// Every emitted speed is a ladder level.
		for _, segs := range q.Cores {
			for _, sg := range segs {
				onLadder := false
				for _, f := range ladder {
					if math.Abs(sg.Speed-f) < 1 {
						onLadder = true
					}
				}
				if !onLadder {
					t.Errorf("speed %g: emitted off-ladder speed %g", speed, sg.Speed)
				}
			}
		}
	}
}

func TestQuantizeRejectsOverTop(t *testing.T) {
	s, _ := mkSchedule(2.5e9)
	if _, err := Quantize(s, CortexA57Ladder()); err == nil {
		t.Error("speeds above the top level must be rejected")
	}
}

func TestTwoLevelSplitIsEnergyOptimal(t *testing.T) {
	// For a convex power function, the two-level split beats running the
	// whole segment at the upper level and matches the theoretical
	// θ·P(h) + (1−θ)·P(l) average power.
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	sys.Memory.Static = 0 // isolate the core term
	ladder := CortexA57Ladder()
	s, _ := mkSchedule(1.2e9) // between 1.1 and 1.3 GHz
	q, err := Quantize(s, ladder)
	if err != nil {
		t.Fatal(err)
	}
	eCont := schedule.Audit(s, sys).Total()
	eQuant := schedule.Audit(q, sys).Total()
	if eQuant < eCont {
		t.Errorf("discrete (%g) cannot beat continuous (%g)", eQuant, eCont)
	}
	// Upper-level-only realization: same work at 1.3 GHz, shorter busy.
	sUp := schedule.New(1, 0, 1)
	sUp.Add(0, schedule.Segment{TaskID: 1, Start: 0.1, End: 0.1 + 1.2e9*0.5/1.3e9, Speed: 1.3e9})
	sUp.Normalize()
	eUp := schedule.Audit(sUp, sys).Total()
	if eQuant >= eUp {
		t.Errorf("two-level split (%g) should beat single upper level (%g)", eQuant, eUp)
	}
	// Exact expected energy: θ·dur at h plus (1−θ)·dur at l.
	theta := (1.2e9 - 1.1e9) / (1.3e9 - 1.1e9)
	want := (sys.Core.Power(1.3e9)*theta + sys.Core.Power(1.1e9)*(1-theta)) * 0.5
	if math.Abs(eQuant-want) > 1e-9*want {
		t.Errorf("split energy %g, want %g", eQuant, want)
	}
}

func TestEnergyPenaltyShrinksWithDenserLadder(t *testing.T) {
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(60), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: power.Milliseconds(90), Workload: 4.4e6},
		{ID: 3, Release: 0, Deadline: power.Milliseconds(120), Workload: 2.7e6},
	}
	sol, err := commonrelease.Solve(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	audit := func(s *schedule.Schedule) float64 { return schedule.Audit(s, sys).Total() }
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 8, 32} {
		ladder, err := UniformLadder(1e8, 1.9e9, n)
		if err != nil {
			t.Fatal(err)
		}
		pen, err := EnergyPenalty(sol.Schedule, ladder, audit)
		if err != nil {
			t.Fatal(err)
		}
		if pen < -1e-9 {
			t.Errorf("n=%d: negative penalty %g", n, pen)
		}
		if pen > prev+1e-9 {
			t.Errorf("n=%d: penalty %g grew from %g", n, pen, prev)
		}
		prev = pen
	}
	if prev > 0.02 {
		t.Errorf("32-level ladder penalty %g should be under 2%%", prev)
	}
}

func TestUniformLadder(t *testing.T) {
	l, err := UniformLadder(1e8, 1e9, 10)
	if err != nil || len(l) != 10 || l[0] != 1e8 || l[9] != 1e9 {
		t.Errorf("UniformLadder = %v, %v", l, err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := UniformLadder(1e9, 1e8, 3); err == nil {
		t.Error("inverted range must be rejected")
	}
	if _, err := UniformLadder(0, 1e9, 3); err == nil {
		t.Error("zero lo must be rejected")
	}
	one, err := UniformLadder(1e8, 1e9, 1)
	if err != nil || len(one) != 1 || one[0] != 1e9 {
		t.Errorf("single-level ladder = %v, %v", one, err)
	}
}

func TestNearest(t *testing.T) {
	l := Ladder{1e9, 2e9}
	if l.Nearest(1.5e9) != 2e9 || l.Nearest(0.5e9) != 1e9 || l.Nearest(3e9) != 2e9 {
		t.Error("Nearest misbehaves")
	}
}

func TestPropertyQuantizePreservesWork(t *testing.T) {
	ladder := CortexA57Ladder()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := schedule.New(2, 0, 2)
		var want float64
		for i := 0; i < 6; i++ {
			start := r.Float64() * 1.5
			dur := 0.05 + r.Float64()*0.3
			speed := 2e8 + r.Float64()*1.7e9
			s.Add(i%2, schedule.Segment{TaskID: i, Start: start, End: start + dur, Speed: speed})
			want += speed * dur
		}
		s.Normalize()
		q, err := Quantize(s, ladder)
		if err != nil {
			return false
		}
		var got float64
		for _, segs := range q.Cores {
			for _, sg := range segs {
				got += sg.Cycles()
			}
		}
		return math.Abs(got-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
