// Package discrete transforms the continuous-speed schedules of the SDEM
// solvers onto a processor with a finite DVS frequency ladder, using the
// classic Ishihara–Yasuura two-level split the paper's §3 invokes to
// justify the continuous-speed assumption: a task planned at speed s
// between adjacent levels l ≤ s ≤ h runs the fraction
// θ = (s − l)/(h − l) of its window at h and the rest at l — the same
// work in the same window, and provably the minimum-energy realization
// of that work on the ladder for any convex power function.
package discrete

import (
	"errors"
	"fmt"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/schedule"
)

// relTol is the package's relative speed tolerance for ladder clamping;
// it matches schedule.Tol (1e-9) by value.
const relTol = 1e-9

// Ladder is a sorted set of available DVS frequencies in Hz.
type Ladder []float64

// CortexA57Ladder returns the 200 MHz-step operating points of the
// paper's evaluation platform (700–1900 MHz).
func CortexA57Ladder() Ladder {
	return Ladder{7e8, 9e8, 1.1e9, 1.3e9, 1.5e9, 1.7e9, 1.9e9}
}

// Validate checks that the ladder is sorted, positive and non-empty.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return errors.New("discrete: empty frequency ladder")
	}
	for i, f := range l {
		if f <= 0 {
			return fmt.Errorf("discrete: non-positive frequency %g", f)
		}
		if i > 0 && f <= l[i-1] {
			return fmt.Errorf("discrete: ladder not strictly increasing at %d", i)
		}
	}
	return nil
}

// Bracket returns the adjacent ladder levels lo ≤ s ≤ hi. For s below
// the bottom level both return the bottom level; exact hits return the
// level twice. ok is false when s exceeds the top level.
func (l Ladder) Bracket(s float64) (lo, hi float64, ok bool) {
	n := len(l)
	if s > l[n-1]*(1+relTol) {
		return 0, 0, false
	}
	if s >= l[n-1] {
		return l[n-1], l[n-1], true
	}
	if s <= l[0] {
		return l[0], l[0], true
	}
	i := sort.SearchFloat64s(l, s) // first level ≥ s
	if l[i] == s {                 //lint:allow floatcmp: ladder levels are exact catalogue values; an exact hit needs no rounding slack
		return s, s, true
	}
	return l[i-1], l[i], true
}

// Quantize maps every segment of a continuous-speed schedule onto the
// ladder: a segment at speed s between levels (lo, hi) is split into a
// hi-speed prefix and a lo-speed suffix delivering the same work in the
// same interval; a segment below the bottom level runs at the bottom
// level and finishes early (the remainder of the interval idles). The
// result preserves per-task work and never extends any segment, so
// feasibility is preserved. It fails if any speed exceeds the top level.
func Quantize(s *schedule.Schedule, ladder Ladder) (*schedule.Schedule, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	out := schedule.New(s.NumCores, s.Start, s.End)
	out.CorePolicy, out.MemoryPolicy = s.CorePolicy, s.MemoryPolicy
	for c, segs := range s.Cores {
		for _, sg := range segs {
			lo, hi, ok := ladder.Bracket(sg.Speed)
			if !ok {
				return nil, fmt.Errorf("discrete: segment speed %.4g MHz exceeds top level %.4g MHz",
					sg.Speed/1e6, ladder[len(ladder)-1]/1e6)
			}
			dur := sg.End - sg.Start
			work := sg.Speed * dur
			switch {
			case lo == hi && sg.Speed >= lo: //lint:allow floatcmp: Bracket returns identical float values on exact hits
				// Exact hit or top clamp: run as-is at the level.
				out.Add(c, schedule.Segment{TaskID: sg.TaskID, Start: sg.Start, End: sg.End, Speed: sg.Speed})
				if sg.Speed != lo { //lint:allow floatcmp: defensive bit-exactness check against Bracket's contract
					// Defensive: Bracket guarantees sg.Speed == lo here.
					out.Cores[c][len(out.Cores[c])-1].Speed = lo
				}
			case sg.Speed < ladder[0]:
				// Below the bottom level: run at the bottom level for
				// work/l₀ seconds and idle the rest ("race" within the
				// segment).
				out.Add(c, schedule.Segment{
					TaskID: sg.TaskID,
					Start:  sg.Start,
					End:    sg.Start + work/ladder[0],
					Speed:  ladder[0],
				})
			default:
				// Two-level split: θ·dur at hi then (1−θ)·dur at lo.
				theta := (sg.Speed - lo) / (hi - lo)
				cut := sg.Start + theta*dur
				if cut > sg.Start+schedule.Tol {
					out.Add(c, schedule.Segment{TaskID: sg.TaskID, Start: sg.Start, End: cut, Speed: hi})
				}
				if sg.End > cut+schedule.Tol {
					out.Add(c, schedule.Segment{TaskID: sg.TaskID, Start: cut, End: sg.End, Speed: lo})
				}
			}
		}
	}
	out.Normalize()
	return out, nil
}

// EnergyPenalty quantizes the schedule and returns the relative increase
// of audited energy, (E_discrete − E_continuous)/E_continuous — the gap
// §3 argues shrinks as ladders densify.
func EnergyPenalty(s *schedule.Schedule, ladder Ladder, audit func(*schedule.Schedule) float64) (float64, error) {
	q, err := Quantize(s, ladder)
	if err != nil {
		return 0, err
	}
	base := audit(s)
	if numeric.IsZero(base, 0) {
		return 0, nil
	}
	return (audit(q) - base) / base, nil
}

// UniformLadder builds an n-level ladder evenly spaced over [lo, hi] —
// useful for studying the continuous-vs-discrete gap as n grows.
func UniformLadder(lo, hi float64, n int) (Ladder, error) {
	if n < 1 || lo <= 0 || hi < lo {
		return nil, fmt.Errorf("discrete: bad uniform ladder (%g, %g, %d)", lo, hi, n)
	}
	if n == 1 {
		return Ladder{hi}, nil
	}
	out := make(Ladder, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out, nil
}

// MaxLevel returns the ladder's top frequency.
func (l Ladder) MaxLevel() float64 { return l[len(l)-1] }

// Nearest returns the smallest ladder level that is at least s (clamped
// to the top level); useful for conservative single-level rounding.
func (l Ladder) Nearest(s float64) float64 {
	i := sort.SearchFloat64s(l, s)
	if i >= len(l) {
		return l[len(l)-1]
	}
	return l[i]
}
