// Package resilient is the closed-loop runtime of the SDEM reproduction:
// it replays any offline or online schedule through a fault-perturbed
// execution, detects impending deadline misses from slack accounting at
// checkpoint boundaries, and degrades gracefully through an explicit,
// auditable recovery chain.
//
// Every solver in this module produces a plan that assumes the model is
// exact: workloads match WCET, the memory wakes in ξ_m, cores reach their
// commanded speeds. The paper's procrastination makes those plans
// maximally fragile — sleep is stretched right up to each task's latest
// execution point d_j − p_j. This package is the layer that keeps
// deadlines when the model is wrong:
//
//	plan → inject (internal/faults) → detect → recover → audit
//
// The recovery chain, attempted in order at each detection:
//
//  1. Local speed boost: the affected task alone accelerates to the
//     minimum speed that still meets its deadline, up to s_up. Cheapest
//     action; preserves the rest of the plan (and its memory sleep).
//  2. Global re-plan: all released unfinished work is treated as a
//     common-release instance at the current instant and re-solved with
//     the §4 optimum (the same planning path SDEM-ON uses on arrivals) —
//     restores an energy-optimal aligned busy block after the plan has
//     drifted too far for a local fix.
//  3. Race to idle: the affected task runs at s_up immediately. The last
//     resort; if even racing misses, the miss is recorded (never silently
//     dropped) and execution continues so the audit covers the late
//     completion.
//
// Every attempt is recorded in a RecoveryLog with its estimated energy
// cost, so degradation under faults is fully auditable. A run is
// deterministic in (schedule, tasks, system, fault plan, policy); with an
// empty fault plan the replay reproduces the input schedule bit-for-bit.
package resilient

import (
	"errors"
	"fmt"
	"math"

	"sdem/internal/faults"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// Policy selects which recovery actions the runtime may take and tunes
// detection granularity. The zero value disables all recovery (pure
// fault replay — the "no runtime" baseline).
type Policy struct {
	// SpeedBoost enables recovery step 1 (local acceleration to s_up).
	SpeedBoost bool
	// Replan enables recovery step 2 (global §4 re-plan at the instant).
	Replan bool
	// Race enables recovery step 3 (race-to-idle fallback).
	Race bool
	// Checkpoints is the number of detection slices each planned segment
	// is split into while faults are active (default 4). Detection
	// latency is one slice; more checkpoints detect overruns earlier at
	// the cost of simulation work. With an empty fault plan segments are
	// never split, so the replay is bit-identical to the plan.
	Checkpoints int
	// MaxRecoveries bounds recovery attempts per job (default 8), so a
	// persistent fault (e.g. a long thermal cap) cannot loop forever.
	MaxRecoveries int
	// PlanAlphaZero forwards to the §4 re-planner (see
	// online.Options.PlanAlphaZero).
	PlanAlphaZero bool
	// Telemetry, when non-nil, records detection/recovery metrics and
	// trace events (sdem.resilient.* plus the pool's sdem.sim.* series).
	Telemetry *telemetry.Recorder
}

// DefaultPolicy enables the full recovery chain with default detection.
func DefaultPolicy() Policy {
	return Policy{SpeedBoost: true, Replan: true, Race: true}
}

// NoRecovery disables every recovery action: faults are injected and
// their misses reported, but nothing fights back. This is the baseline
// the recovery chain is measured against.
func NoRecovery() Policy { return Policy{} }

func (p Policy) withDefaults() Policy {
	if p.Checkpoints <= 0 {
		p.Checkpoints = 4
	}
	if p.MaxRecoveries <= 0 {
		p.MaxRecoveries = 8
	}
	return p
}

func (p Policy) anyRecovery() bool { return p.SpeedBoost || p.Replan || p.Race }

// Action names one recovery step.
type Action int

const (
	// ActionBoost is the local speed boost (chain step 1).
	ActionBoost Action = iota
	// ActionReplan is the global §4 re-plan (chain step 2).
	ActionReplan
	// ActionRace is the race-to-idle fallback (chain step 3).
	ActionRace
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionBoost:
		return "boost"
	case ActionReplan:
		return "replan"
	case ActionRace:
		return "race"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Recovery is one attempted recovery action.
type Recovery struct {
	// Time is the detection instant the action was taken at.
	Time float64
	// TaskID is the job whose impending miss triggered the action.
	TaskID int
	// Action is the chain step taken.
	Action Action
	// Reason describes the detected threat.
	Reason string
	// EnergyDelta estimates the core energy of the recovery segments
	// minus the cancelled planned segments (joules; negative when the
	// recovery shortens busy time, e.g. racing).
	EnergyDelta float64
	// Succeeded reports whether the action's projection met the deadline
	// at the time it was taken.
	Succeeded bool
}

// String implements fmt.Stringer.
func (r Recovery) String() string {
	outcome := "projected miss"
	if r.Succeeded {
		outcome = "ok"
	}
	return fmt.Sprintf("t=%.6gs task %d %s (%s): %s, ΔE≈%+.4g J",
		r.Time, r.TaskID, r.Action, r.Reason, outcome, r.EnergyDelta)
}

// RecoveryLog records every recovery attempt of a run, in time order.
type RecoveryLog []Recovery

// Count returns the number of logged attempts of one action.
func (l RecoveryLog) Count(a Action) int {
	n := 0
	for _, r := range l {
		if r.Action == a {
			n++
		}
	}
	return n
}

// Result is the outcome of a fault-perturbed replay.
type Result struct {
	// Sim carries the executed schedule, its audit, response metrics and
	// raw miss list, exactly as a plain online run would.
	Sim *sim.Result
	// Recoveries is the full recovery audit trail.
	Recoveries RecoveryLog
	// PlannedMisses are misses already present in the unperturbed input
	// schedule (class MissPlanned).
	PlannedMisses []schedule.Miss
	// FaultMisses are misses the injected faults caused and the recovery
	// chain could not absorb (class MissFaultInduced).
	FaultMisses []schedule.Miss
	// Averted are fault-threatened deadlines the recovery chain met
	// (class MissAverted): recorded so degradation is auditable even when
	// nothing was lost.
	Averted []schedule.Miss
	// SpuriousWakeEnergy is the extra memory energy of spurious wakeups
	// that interrupted actual sleep (α_m·duration + one transition each).
	SpuriousWakeEnergy float64
	// WakeStallEnergy is the extra memory energy of prolonged wake
	// transitions (α_m · extra latency per triggered wake fault).
	WakeStallEnergy float64
	// Energy is the total audited energy including the fault extras.
	Energy float64
}

// Execute replays the schedule for the task set on the platform through
// the fault plan under the recovery policy. The input schedule must be
// normalized and consistent with the task set up to planned misses: a
// late or incomplete task in the input is tolerated and classified as a
// planned miss, but structural violations (overlaps, migration, unknown
// tasks) are errors.
//
// With an empty fault plan and any policy, the replay reproduces the
// input schedule exactly — same segments, same audited energy.
func Execute(sched *schedule.Schedule, tasks task.Set, sys power.System, plan faults.Plan, pol Policy) (*Result, error) {
	if sched == nil {
		return nil, fmt.Errorf("resilient: nil schedule: %w", schedule.ErrInfeasible)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	if err := structuralCheck(sched, tasks, sys); err != nil {
		return nil, err
	}
	e, err := newExecutor(sched, tasks, sys, plan, pol.withDefaults())
	if err != nil {
		return nil, err
	}
	return e.run()
}

// structuralCheck validates the input schedule, tolerating deadline and
// delivery shortfalls (those become planned misses) but rejecting
// structural violations.
func structuralCheck(sched *schedule.Schedule, tasks task.Set, sys power.System) error {
	err := sched.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax})
	switch {
	case err == nil:
		return nil
	case errorsIsAny(err, schedule.ErrDeadlineMiss, schedule.ErrInfeasible):
		// Late or undelivered work in the plan itself: replayable; the
		// run classifies the outcome as a planned miss.
		return nil
	default:
		return fmt.Errorf("resilient: input schedule: %w", err)
	}
}

// plannedMisses derives the miss set of the unperturbed input schedule:
// tasks whose planned segments end past their deadline or deliver less
// than their workload.
func plannedMisses(sched *schedule.Schedule, tasks task.Set) map[int]bool {
	delivered := make(map[int]float64, len(tasks))
	latest := make(map[int]float64, len(tasks))
	for _, segs := range sched.Cores {
		for _, sg := range segs {
			delivered[sg.TaskID] += sg.Cycles()
			latest[sg.TaskID] = math.Max(latest[sg.TaskID], sg.End)
		}
	}
	out := make(map[int]bool)
	for _, t := range tasks {
		tol := schedule.Tol * math.Max(1, t.Workload) * 10
		if delivered[t.ID] < t.Workload-tol || latest[t.ID] > t.Deadline+schedule.Tol {
			out[t.ID] = true
		}
	}
	return out
}

func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
