package resilient

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"sdem/internal/core"
	"sdem/internal/faults"
	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/workload"
)

// benchTasks draws the §8.1.1 FFT benchmark set used across the tests:
// identical instances, hence agreeable deadlines.
func benchTasks(t *testing.T, n int, seed int64) task.Set {
	t.Helper()
	set, err := workload.Benchmark(workload.BenchmarkConfig{N: n, Kernel: workload.KernelFFT, U: 4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func offline(t *testing.T, tasks task.Set, sys power.System) (*schedule.Schedule, float64) {
	t.Helper()
	sol, err := core.Solve(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	return sol.Schedule, sol.Energy
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// A fault-free replay must reproduce the input schedule exactly: same
// segments, same audited energy — for both an offline optimum and an
// online run. This is the identity the whole subsystem is anchored on.
func TestZeroFaultReplayIdentical(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 8, 3)
	sched, energy := offline(t, tasks, sys)

	for _, pol := range []Policy{DefaultPolicy(), NoRecovery()} {
		res, err := Execute(sched, tasks, sys, faults.Plan{}, pol)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Sim.Schedule.Cores, sched.Cores) {
			t.Fatalf("policy %+v: replay altered the schedule:\nwant %v\ngot  %v", pol, sched.Cores, res.Sim.Schedule.Cores)
		}
		if !almostEq(res.Energy, energy, 1e-12) {
			t.Fatalf("policy %+v: replay energy %.15g, input audit %.15g", pol, res.Energy, energy)
		}
		if len(res.FaultMisses) != 0 || len(res.Recoveries) != 0 || len(res.Averted) != 0 {
			t.Fatalf("policy %+v: fault-free replay reported activity: %+v", pol, res)
		}
	}

	onl, err := online.Schedule(tasks, sys, online.Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(onl.Schedule, tasks, sys, faults.Plan{}, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sim.Schedule.Cores, onl.Schedule.Cores) {
		t.Fatalf("online replay altered the schedule")
	}
	if !almostEq(res.Energy, onl.Energy, 1e-12) {
		t.Fatalf("online replay energy %.15g, input %.15g", res.Energy, onl.Energy)
	}
}

// A moderate overrun on a schedule with speed headroom must be absorbed
// by the first chain step alone: one (or more) boosts, no racing, no
// fault-induced miss — while the no-recovery replay of the same plan
// misses the same deadline.
func TestOverrunAbsorbedByBoost(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 8, 3)
	sched, base := offline(t, tasks, sys)
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.Overrun, TaskID: tasks[0].ID, Core: -1, Factor: 1.4},
	}}

	res, err := Execute(sched, tasks, sys, plan, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultMisses) != 0 {
		t.Fatalf("recovery failed to absorb a 1.4x overrun: %v", res.FaultMisses)
	}
	if res.Recoveries.Count(ActionBoost) == 0 {
		t.Fatalf("no boost logged; log: %v", res.Recoveries)
	}
	if res.Recoveries.Count(ActionRace) != 0 {
		t.Fatalf("race used where boost suffices; log: %v", res.Recoveries)
	}
	found := false
	for _, m := range res.Averted {
		if m.TaskID == tasks[0].ID {
			found = true
			if m.Class != schedule.MissAverted {
				t.Fatalf("averted miss classified %v", m.Class)
			}
		}
	}
	if !found {
		t.Fatalf("averted miss of task %d not reported: %v", tasks[0].ID, res.Averted)
	}
	if res.Energy < base {
		t.Fatalf("absorbing extra work cost no energy: %.6g < %.6g", res.Energy, base)
	}

	// The same fault with no recovery: the task runs out of planned
	// capacity and the miss is reported as fault-induced.
	bare, err := Execute(sched, tasks, sys, plan, NoRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.FaultMisses) != 1 || bare.FaultMisses[0].TaskID != tasks[0].ID {
		t.Fatalf("no-recovery replay misses = %v, want task %d", bare.FaultMisses, tasks[0].ID)
	}
	if bare.FaultMisses[0].Class != schedule.MissFaultInduced {
		t.Fatalf("miss classified %v, want fault-induced", bare.FaultMisses[0].Class)
	}
	if len(bare.Recoveries) != 0 {
		t.Fatalf("NoRecovery logged recoveries: %v", bare.Recoveries)
	}
}

// With the boost step disabled the chain must escalate to the §4
// re-plan and still save the deadline.
func TestReplanRecovery(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 8, 3)
	sched, _ := offline(t, tasks, sys)
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.Overrun, TaskID: tasks[0].ID, Core: -1, Factor: 1.4},
	}}

	res, err := Execute(sched, tasks, sys, plan, Policy{Replan: true, Race: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultMisses) != 0 {
		t.Fatalf("re-plan failed to absorb the overrun: %v", res.FaultMisses)
	}
	if res.Recoveries.Count(ActionReplan) == 0 {
		t.Fatalf("no re-plan logged; log: %v", res.Recoveries)
	}
	if res.Recoveries.Count(ActionBoost) != 0 {
		t.Fatalf("boost logged despite being disabled; log: %v", res.Recoveries)
	}
}

// An overrun so large that even racing at s_up cannot meet the deadline
// must walk the whole chain, race anyway, and report the late completion
// as a fault-induced miss — never silently drop it.
func TestUnrecoverableOverrunReported(t *testing.T) {
	sys := power.DefaultSystem()
	// Workload fills 79% of the window at s_up; a 1.4x overrun needs
	// 110% of the window even at s_up — unrecoverable by construction.
	tasks := task.Set{{ID: 0, Release: 0, Deadline: 0.1, Workload: 1.5e8}}
	sched, _ := offline(t, tasks, sys)

	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.Overrun, TaskID: 0, Core: -1, Factor: 1.4},
	}}
	res, err := Execute(sched, tasks, sys, plan, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultMisses) != 1 {
		t.Fatalf("fault misses = %v, want exactly the unrecoverable task", res.FaultMisses)
	}
	m := res.FaultMisses[0]
	if m.TaskID != 0 || m.Class != schedule.MissFaultInduced {
		t.Fatalf("miss = %+v, want task 0 fault-induced", m)
	}
	if m.Lateness <= 0 && m.Remaining <= 0 {
		t.Fatalf("miss reports neither lateness nor undelivered work: %+v", m)
	}
	if n := res.Recoveries.Count(ActionRace); n == 0 {
		t.Fatalf("race never attempted; log: %v", res.Recoveries)
	}
	raced := false
	for _, r := range res.Recoveries {
		if r.Action == ActionRace && !r.Succeeded {
			raced = true
		}
	}
	if !raced {
		t.Fatalf("race logged as succeeding on an unrecoverable job; log: %v", res.Recoveries)
	}
}

// The headline acceptance property: over a seeded suite of
// moderate-intensity fault plans on agreeable-deadline benchmark
// workloads, the full recovery chain induces zero fault misses while the
// no-recovery replay of the same plans misses at least once.
func TestRecoverySuiteZeroFaultMisses(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 10, 3)
	sched, _ := offline(t, tasks, sys)
	// WakeDelayMax is scaled down: a full-xi_m wake stall on a
	// sub-millisecond procrastinated execution is unrecoverable by
	// physics (the memory is simply not awake), which is a property of
	// the platform, not of the recovery chain under test.
	cfg := faults.Config{Intensity: 0.5, WakeDelayMax: 0.01}

	bareMisses := 0
	for seed := int64(1); seed <= 10; seed++ {
		plan := faults.Generate(cfg, tasks, sys, seed)
		res, err := Execute(sched, tasks, sys, plan, DefaultPolicy())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.FaultMisses) != 0 {
			t.Errorf("seed %d: recovery left %d fault-induced misses: %v", seed, len(res.FaultMisses), res.FaultMisses)
		}
		bare, err := Execute(sched, tasks, sys, plan, NoRecovery())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bareMisses += len(bare.FaultMisses)
		if len(bare.Recoveries) != 0 {
			t.Errorf("seed %d: no-recovery replay recovered", seed)
		}
	}
	if bareMisses == 0 {
		t.Fatalf("the fault suite is vacuous: no-recovery replay never missed")
	}
}

// Spurious wakes are pure energy faults: no timing change, no misses,
// but a strictly positive memory-energy surcharge when they interrupt
// actual sleep.
func TestSpuriousWakeEnergyOnly(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 8, 3)
	sched, base := offline(t, tasks, sys)
	// The schedule sleeps between the well-separated instances; a wake in
	// the middle of the horizon lands in a sleep gap.
	mid := (sched.Start + sched.End) / 2
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.SpuriousWake, TaskID: -1, Core: -1, At: mid, Delay: 0.005},
	}}
	res, err := Execute(sched, tasks, sys, plan, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sim.Schedule.Cores, sched.Cores) {
		t.Fatalf("a spurious wake changed the executed schedule")
	}
	if res.SpuriousWakeEnergy <= 0 {
		t.Fatalf("spurious wake in a sleep gap charged no energy")
	}
	want := sys.Memory.Static*0.005 + sys.Memory.TransitionEnergy()
	if !almostEq(res.SpuriousWakeEnergy, want, 1e-12) {
		t.Fatalf("spurious energy %.6g, want %.6g", res.SpuriousWakeEnergy, want)
	}
	if !almostEq(res.Energy, base+want, 1e-9) {
		t.Fatalf("total %.9g, want base %.9g + %.6g", res.Energy, base, want)
	}
}

// A late release within the procrastination slack is absorbed for free:
// the planned start already postpones past the delayed arrival, or the
// boost step re-times the execution; either way no miss.
func TestLateReleaseRecovered(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 8, 3)
	sched, _ := offline(t, tasks, sys)
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LateRelease, TaskID: tasks[1].ID, Core: -1, Delay: 0.004},
	}}
	res, err := Execute(sched, tasks, sys, plan, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultMisses) != 0 {
		t.Fatalf("late release caused misses: %v", res.FaultMisses)
	}
	bare, err := Execute(sched, tasks, sys, plan, NoRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.FaultMisses) == 0 {
		t.Skipf("plan start postponed past the delayed arrival; fault vacuous for this schedule")
	}
}

// Planned misses in the input must stay classified as planned, not be
// blamed on the faults.
func TestPlannedMissClassification(t *testing.T) {
	sys := power.DefaultSystem()
	// Two tasks forced onto one core with overlapping windows: the online
	// scheduler completes one late.
	tasks := task.Set{
		{ID: 0, Release: 0, Deadline: 0.010, Workload: 1.5e7},
		{ID: 1, Release: 0, Deadline: 0.011, Workload: 1.5e7},
	}
	onl, err := online.Schedule(tasks, sys, online.Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(onl.Misses) == 0 {
		t.Skip("workload no longer produces a planned miss")
	}
	res, err := Execute(onl.Schedule, tasks, sys, faults.Plan{}, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PlannedMisses) != len(onl.Misses) {
		t.Fatalf("planned misses %v, input had %v", res.PlannedMisses, onl.Misses)
	}
	if len(res.FaultMisses) != 0 {
		t.Fatalf("fault-free replay classified misses as fault-induced: %v", res.FaultMisses)
	}
	for _, m := range res.PlannedMisses {
		if m.Class != schedule.MissPlanned {
			t.Fatalf("planned miss classified %v", m.Class)
		}
	}
}

// Sentinel errors must be branchable through the public entry point.
func TestExecuteSentinelErrors(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := benchTasks(t, 4, 3)
	if _, err := Execute(nil, tasks, sys, faults.Plan{}, DefaultPolicy()); !errors.Is(err, schedule.ErrInfeasible) {
		t.Fatalf("nil schedule error = %v, want ErrInfeasible", err)
	}
	sched, _ := offline(t, tasks, sys)
	bad := faults.Plan{Faults: []faults.Fault{{Kind: faults.Overrun, TaskID: 0, Core: -1, Factor: -1}}}
	if _, err := Execute(sched, tasks, sys, bad, DefaultPolicy()); err == nil {
		t.Fatalf("invalid fault plan accepted")
	}
}
