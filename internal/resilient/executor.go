package resilient

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/faults"
	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// workTol is the relative remaining-workload tolerance of the detector;
// it matches sim's completion tolerance (1e-9) by value.
const workTol = 1e-9

// event is one pending execution: run taskID on core over [start, end] at
// speed. quantum is the detection slice length the event is executed in
// (0 = whole event at once).
type event struct {
	taskID, core      int
	start, end, speed float64
	quantum           float64
}

func (ev event) work() float64 { return ev.speed * (ev.end - ev.start) }

// wakeStall is one prolonged memory wake: events starting in
// [wake, wake+delay) are pushed to wake+delay.
type wakeStall struct {
	wake, delay float64
}

// executor drives one fault-perturbed replay.
type executor struct {
	input   *schedule.Schedule
	tasks   task.Set
	pool    *sim.Pool
	pol     Policy
	plan    faults.Plan
	events  []event // pending, sorted by (start, core, taskID)
	coreNow []float64
	stalls  []wakeStall
	caps    []faults.Fault

	recoveries map[int]int // per-job recovery attempts
	threatened map[int]bool
	log        RecoveryLog
	planned    map[int]bool // planned-miss task IDs

	executed int // total slices run, runaway guard
}

// maxSlicesPerJob bounds the simulation against pathological fault plans;
// generous compared to any legitimate run (a job's plan yields at most
// a few dozen slices even with recoveries).
const maxSlicesPerJob = 4096

func newExecutor(sched *schedule.Schedule, tasks task.Set, sys power.System, plan faults.Plan, pol Policy) (*executor, error) {
	cores := sched.NumCores
	if len(sched.Cores) > cores {
		cores = len(sched.Cores)
	}
	if cores == 0 && len(tasks) > 0 {
		cores = len(tasks)
	}
	pool, err := sim.NewPool(tasks, sys, cores)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	pool.SetHorizon(sched.Start, sched.End)
	pool.SetPolicies(sched.CorePolicy, sched.MemoryPolicy)
	pool.SetTelemetry(pol.Telemetry, "resilient")
	e := &executor{
		input:      sched,
		tasks:      tasks,
		pool:       pool,
		pol:        pol,
		plan:       plan,
		coreNow:    make([]float64, pool.Cores()),
		recoveries: make(map[int]int),
		threatened: make(map[int]bool),
		planned:    plannedMisses(sched, tasks),
	}
	for i := range e.coreNow {
		e.coreNow[i] = sched.Start
	}

	// Apply the pre-run faults and install the execution-time ones.
	for _, f := range plan.ByKind(faults.Overrun) {
		if pool.Job(f.TaskID) == nil {
			continue // targeting a task absent from this set is a no-op
		}
		if err := pool.ScaleWorkload(f.TaskID, f.Factor); err != nil {
			return nil, fmt.Errorf("resilient: %w", err)
		}
	}
	for _, f := range plan.ByKind(faults.LateRelease) {
		if pool.Job(f.TaskID) == nil {
			continue
		}
		if err := pool.DelayRelease(f.TaskID, f.Delay); err != nil {
			return nil, fmt.Errorf("resilient: %w", err)
		}
	}
	e.caps = plan.ByKind(faults.SpeedCap)
	if len(e.caps) > 0 {
		smax := sys.Core.SpeedMax
		caps := e.caps
		pool.SetSpeedLimiter(func(core int, t0, t1, speed float64) float64 {
			s := speed
			for _, c := range caps {
				if c.Core == core && t0 < c.Until-schedule.Tol && t1 > c.At+schedule.Tol {
					s = math.Min(s, c.Factor*smax)
				}
			}
			return s
		})
	}
	e.stalls = matchWakeStalls(sched, sys, plan)

	// Seed the event queue with the planned segments. With an empty fault
	// plan every event executes whole (quantum 0), so the replay emits the
	// planned segments verbatim.
	for c, segs := range sched.Cores {
		for _, sg := range segs {
			ev := event{taskID: sg.TaskID, core: c, start: sg.Start, end: sg.End, speed: sg.Speed}
			if !plan.Empty() {
				ev.quantum = (sg.End - sg.Start) / float64(pol.Checkpoints)
			}
			e.events = append(e.events, ev)
		}
	}
	e.sortEvents()
	return e, nil
}

// matchWakeStalls maps each WakeLatency fault onto the planned memory
// wake it delays: the end of the first sleep-eligible common idle gap
// (length ≥ ξ_m) at or after the fault's anchor time. Faults that match
// no wake are inert. Multiple faults on one wake accumulate.
func matchWakeStalls(sched *schedule.Schedule, sys power.System, plan faults.Plan) []wakeStall {
	wl := plan.ByKind(faults.WakeLatency)
	if len(wl) == 0 {
		return nil
	}
	var wakes []float64
	for _, g := range sleepGaps(sched, sys.Memory.BreakEven) {
		if g.End < sched.End {
			wakes = append(wakes, g.End)
		}
	}
	byWake := make(map[float64]float64)
	for _, f := range wl {
		for _, w := range wakes {
			if w >= f.At-schedule.Tol {
				byWake[w] += f.Delay
				break
			}
		}
	}
	out := make([]wakeStall, 0, len(byWake))
	for w, d := range byWake {
		if d > 0 {
			out = append(out, wakeStall{wake: w, delay: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].wake < out[j].wake })
	return out
}

// stallAdjust pushes a start time out of any prolonged-wake window.
func (e *executor) stallAdjust(t float64) float64 {
	for _, s := range e.stalls {
		if t >= s.wake-schedule.Tol && t < s.wake+s.delay {
			t = s.wake + s.delay
		}
	}
	return t
}

func (e *executor) sortEvents() {
	sort.SliceStable(e.events, func(i, j int) bool {
		a, b := e.events[i], e.events[j]
		//lint:allow floatcmp: queue ordering must be exact to keep the comparator transitive
		if a.start != b.start {
			return a.start < b.start
		}
		if a.core != b.core {
			return a.core < b.core
		}
		return a.taskID < b.taskID
	})
}

// push inserts an event keeping the queue sorted.
func (e *executor) push(ev event) {
	e.events = append(e.events, ev)
	e.sortEvents()
}

// cancelFuture removes all pending events of the job and returns the core
// energy their execution would have cost (for the recovery audit).
func (e *executor) cancelFuture(taskID int) float64 {
	core := e.pool.System().Core
	var cost float64
	out := e.events[:0]
	for _, ev := range e.events {
		if ev.taskID == taskID {
			cost += core.EnergyFor(ev.work(), ev.speed)
			continue
		}
		out = append(out, ev)
	}
	e.events = out
	return cost
}

// futureCapacity sums the work the pending events still deliver for a job.
func (e *executor) futureCapacity(taskID int) float64 {
	var cap float64
	for _, ev := range e.events {
		if ev.taskID == taskID {
			cap += ev.work()
		}
	}
	return cap
}

// effectiveMax mirrors online.effectiveMax: s_up, or effectively unbounded.
func (e *executor) effectiveMax() float64 {
	if s := e.pool.System().Core.SpeedMax; s > 0 {
		return s
	}
	return 1e12
}

// run executes the event queue to completion and assembles the result.
func (e *executor) run() (*Result, error) {
	budget := maxSlicesPerJob * (len(e.tasks) + 1)
	for len(e.events) > 0 {
		ev := e.events[0]
		e.events = e.events[1:]
		j := e.pool.Job(ev.taskID)
		if j == nil {
			return nil, fmt.Errorf("resilient: schedule references unknown task %d: %w", ev.taskID, schedule.ErrInfeasible)
		}
		if j.Done {
			continue
		}
		if e.executed++; e.executed > budget {
			return nil, fmt.Errorf("resilient: runaway replay aborted after %d slices", e.executed)
		}

		start := math.Max(ev.start, j.Task.Release)
		start = math.Max(start, e.coreNow[ev.core])
		start = e.stallAdjust(start)
		if start >= ev.end-schedule.Tol/10 {
			// The event was squeezed out (pushed past its window by
			// recoveries, stalls or late release): its work is lost;
			// the detector decides what happens to the job.
			e.check(j, math.Max(start, e.coreNow[ev.core]))
			continue
		}

		sliceEnd := ev.end
		if ev.quantum > 0 {
			sliceEnd = math.Min(sliceEnd, start+ev.quantum)
		}
		sliceEnd = math.Min(sliceEnd, e.nextCapBoundary(ev.core, start))
		if sliceEnd <= start || sliceEnd > ev.end-schedule.Tol {
			// Snap a full or dust-short final quantum to the event end so
			// slicing never leaves sub-tolerance tails.
			sliceEnd = ev.end
		}

		actual, err := e.pool.Run(ev.taskID, ev.core, start, sliceEnd, ev.speed)
		if err != nil {
			return nil, fmt.Errorf("resilient: replay: %w", err)
		}
		if actual > e.coreNow[ev.core] {
			e.coreNow[ev.core] = actual
		}
		if !j.Done && sliceEnd < ev.end-schedule.Tol/10 {
			rest := ev
			rest.start = sliceEnd
			e.push(rest)
		}
		if !j.Done {
			e.check(j, actual)
		}
	}
	return e.finish()
}

// nextCapBoundary returns the earliest speed-cap interval edge on the
// core strictly after t, so slices never straddle a throttling change.
func (e *executor) nextCapBoundary(core int, t float64) float64 {
	next := math.Inf(1)
	for _, c := range e.caps {
		if c.Core != core {
			continue
		}
		for _, b := range [2]float64{c.At, c.Until} {
			if b > t+schedule.Tol && b < next {
				next = b
			}
		}
	}
	return next
}

// check is the detector: after every executed slice (and for squeezed
// events) it compares the job's actual remaining workload against the
// capacity the rest of the plan still delivers. A shortfall means the
// plan no longer completes the job — recover.
func (e *executor) check(j *sim.Job, now float64) {
	id := j.Task.ID
	tol := workTol * math.Max(1, j.Task.Workload)
	if j.Remaining <= e.futureCapacity(id)+tol {
		return
	}
	e.pol.Telemetry.Count("sdem.resilient.detections", 1)
	e.threatened[id] = true
	if !e.pol.anyRecovery() {
		// Pure replay: the shortfall plays out and the miss is recorded
		// by the pool at Finish.
		return
	}
	if e.recoveries[id] >= e.pol.MaxRecoveries {
		return // budget exhausted; outcome recorded as a miss
	}
	e.recoveries[id]++
	e.recover(j, now)
}

// logRecovery appends to the audit trail and mirrors the attempt into
// telemetry, labeled by action.
func (e *executor) logRecovery(r Recovery) {
	e.log = append(e.log, r)
	tel := e.pol.Telemetry
	if tel == nil {
		return
	}
	labels := "action=" + r.Action.String()
	tel.CountL("sdem.resilient.recoveries", labels, 1)
	tel.AddL("sdem.resilient.recovery_delta_j", labels, r.EnergyDelta)
	if !r.Succeeded {
		tel.CountL("sdem.resilient.recovery_failures", labels, 1)
	}
	tel.Instant("recover "+r.Action.String(), "resilient", r.Time, 0,
		telemetry.Int("task", int64(r.TaskID)),
		telemetry.Num("delta_j", r.EnergyDelta),
		telemetry.Str("reason", r.Reason))
}

// recover walks the chain: boost, re-plan, race.
func (e *executor) recover(j *sim.Job, now float64) {
	id := j.Task.ID
	sys := e.pool.System()
	smax := e.effectiveMax()
	reason := fmt.Sprintf("%.4g cycles beyond plan capacity", j.Remaining-e.futureCapacity(id))

	// Step 1: local speed boost — run the remainder at the larger of the
	// planned speed and the minimum speed that still meets the deadline.
	// Never below the planned speed: the plan already ran at the
	// (memory-aware) optimum, and stretching the remainder across the
	// window would keep the core and the shared memory awake for the
	// whole slack instead of the execution.
	if e.pol.SpeedBoost {
		var planned float64
		for _, pe := range e.events {
			if pe.taskID == id && pe.speed > planned {
				planned = pe.speed
			}
		}
		core, start := e.placement(j, now)
		avail := j.Task.Deadline - start
		if avail > 0 {
			needed := j.Remaining / avail
			if needed <= smax*(1+workTol) {
				speed := math.Min(math.Max(needed, planned), smax)
				cancelled := e.cancelFuture(id)
				ev := event{taskID: id, core: core, start: start, end: start + j.Remaining/speed, speed: speed}
				ev.quantum = (ev.end - ev.start) / float64(e.pol.Checkpoints)
				e.push(ev)
				e.logRecovery(Recovery{
					Time: now, TaskID: id, Action: ActionBoost, Reason: reason,
					EnergyDelta: sys.Core.EnergyFor(j.Remaining, speed) - cancelled,
					Succeeded:   true,
				})
				return
			}
		}
	}

	// Step 2: global re-plan of all released unfinished work as a
	// common-release instance at this instant, via SDEM-ON's planning
	// path. Infeasibility (ErrInfeasible) falls through to racing.
	if e.pol.Replan {
		if ok := e.replan(j, now, reason); ok {
			return
		}
	}

	// Step 3: race to idle.
	if e.pol.Race {
		core, start := e.placement(j, now)
		speed := smax
		cancelled := e.cancelFuture(id)
		ev := event{taskID: id, core: core, start: start, end: start + j.Remaining/speed, speed: speed}
		ev.quantum = (ev.end - ev.start) / float64(e.pol.Checkpoints)
		e.push(ev)
		e.logRecovery(Recovery{
			Time: now, TaskID: id, Action: ActionRace, Reason: reason,
			EnergyDelta: sys.Core.EnergyFor(j.Remaining, speed) - cancelled,
			Succeeded:   ev.end <= j.Task.Deadline+schedule.Tol,
		})
	}
}

// placement returns the core and earliest start for new work of the job:
// its pinned core, or the least-loaded one if it never ran.
func (e *executor) placement(j *sim.Job, now float64) (int, float64) {
	core := j.Core
	if core < 0 {
		core = 0
		for c := range e.coreNow {
			if e.coreNow[c] < e.coreNow[core] {
				core = c
			}
		}
	}
	start := math.Max(now, e.coreNow[core])
	start = math.Max(start, j.Task.Release)
	return core, e.stallAdjust(start)
}

// replan re-solves all released unfinished work at now and swaps the
// affected jobs' pending events for the new plan. Returns false when the
// re-plan is infeasible or does not save the triggering job.
func (e *executor) replan(trigger *sim.Job, now float64, reason string) bool {
	active := e.pool.Released(now)
	if len(active) == 0 {
		return false
	}
	opts := online.Options{Cores: e.pool.Cores(), PlanAlphaZero: e.pol.PlanAlphaZero, Telemetry: e.pol.Telemetry}
	plans, _, err := online.PlanAt(e.pool, active, now, opts)
	if err != nil {
		return false // wraps schedule.ErrInfeasible: no schedule can help
	}
	for _, pl := range plans {
		if pl.TaskID == trigger.Task.ID && pl.Urgent {
			// The trigger is beyond any stretched-speed plan; do not
			// disturb the other jobs — racing is the only option left.
			return false
		}
	}
	sys := e.pool.System()

	// EDF layout of the new plans onto the cores, respecting pins.
	byID := make(map[int]*sim.Job, len(active))
	for _, j := range active {
		byID[j.Task.ID] = j
	}
	sort.SliceStable(plans, func(a, b int) bool {
		da, db := byID[plans[a].TaskID].Task.Deadline, byID[plans[b].TaskID].Task.Deadline
		//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
		if da != db {
			return da < db
		}
		return plans[a].TaskID < plans[b].TaskID
	})
	var cancelled, newCost float64
	for _, pl := range plans {
		cancelled += e.cancelFuture(pl.TaskID)
	}
	busy := make([]float64, len(e.coreNow))
	copy(busy, e.coreNow)
	triggerOK := false
	for _, pl := range plans {
		j := byID[pl.TaskID]
		core := j.Core
		if core < 0 {
			core = 0
			for c := range busy {
				if busy[c] < busy[core] {
					core = c
				}
			}
		}
		start := math.Max(now, busy[core])
		start = math.Max(start, j.Task.Release)
		start = e.stallAdjust(start)
		ev := event{taskID: pl.TaskID, core: core, start: start, end: start + pl.P, speed: pl.Speed}
		ev.quantum = (ev.end - ev.start) / float64(e.pol.Checkpoints)
		e.push(ev)
		busy[core] = ev.end
		newCost += sys.Core.EnergyFor(j.Remaining, pl.Speed)
		if pl.TaskID == trigger.Task.ID {
			triggerOK = ev.end <= j.Task.Deadline+schedule.Tol
		}
	}
	e.logRecovery(Recovery{
		Time: now, TaskID: trigger.Task.ID, Action: ActionReplan, Reason: reason,
		EnergyDelta: newCost - cancelled,
		Succeeded:   triggerOK,
	})
	return triggerOK
}

// finish wraps up: audit, miss classification, fault energy extras.
func (e *executor) finish() (*Result, error) {
	simRes, err := e.pool.Finish()
	if err != nil {
		return nil, err
	}
	if !e.plan.Empty() {
		// Recombine the checkpoint slices; never touch a fault-free
		// replay, which must reproduce the input segments verbatim.
		simRes.Schedule.Coalesce()
	}

	res := &Result{Sim: simRes, Recoveries: e.log}

	missed := make(map[int]bool, len(simRes.Misses))
	for i := range simRes.MissDetails {
		m := &simRes.MissDetails[i]
		missed[m.TaskID] = true
		if e.planned[m.TaskID] {
			m.Class = schedule.MissPlanned
			res.PlannedMisses = append(res.PlannedMisses, *m)
		} else {
			m.Class = schedule.MissFaultInduced
			res.FaultMisses = append(res.FaultMisses, *m)
		}
	}
	// Threatened jobs that met their deadline: averted misses.
	var averted []int
	for id := range e.threatened {
		if !missed[id] {
			averted = append(averted, id)
		}
	}
	sort.Ints(averted)
	for _, id := range averted {
		j := e.pool.Job(id)
		res.Averted = append(res.Averted, schedule.Miss{
			TaskID:      id,
			Deadline:    j.Task.Deadline,
			CompletedAt: j.Completed,
			Lateness:    j.Completed - j.Task.Deadline,
			Class:       schedule.MissAverted,
		})
	}

	mem := e.pool.System().Memory
	for _, s := range e.stalls {
		res.WakeStallEnergy += mem.Static * s.delay
	}
	res.SpuriousWakeEnergy = e.spuriousEnergy(simRes.Schedule)
	res.Energy = simRes.Energy + res.WakeStallEnergy + res.SpuriousWakeEnergy
	tel := e.pol.Telemetry
	tel.Count("sdem.resilient.planned_misses", int64(len(res.PlannedMisses)))
	tel.Count("sdem.resilient.fault_misses", int64(len(res.FaultMisses)))
	tel.Count("sdem.resilient.averted", int64(len(res.Averted)))
	tel.Add("sdem.resilient.wake_stall_j", res.WakeStallEnergy)
	tel.Add("sdem.resilient.spurious_wake_j", res.SpuriousWakeEnergy)
	return res, nil
}

// spuriousEnergy charges each spurious wake that lands in a gap the final
// schedule actually sleeps through: the memory pays its static power for
// the spurious active time plus one extra transition cycle. Wakes during
// busy or unslept-idle time are absorbed (the memory was active anyway).
func (e *executor) spuriousEnergy(s *schedule.Schedule) float64 {
	sw := e.plan.ByKind(faults.SpuriousWake)
	if len(sw) == 0 {
		return 0
	}
	mem := e.pool.System().Memory
	sleeps := sleepGaps(s, mem.BreakEven)
	var total float64
	for _, f := range sw {
		for _, g := range sleeps {
			if f.At >= g.Start && f.At < g.End {
				active := math.Min(f.Delay, g.End-f.At)
				total += mem.Static*active + mem.TransitionEnergy()
				break
			}
		}
	}
	return total
}

// sleepGaps returns the common idle gaps the schedule's memory policy
// sleeps through: none under SleepNever, every positive gap under
// SleepAlways, gaps of at least the break-even time otherwise.
func sleepGaps(s *schedule.Schedule, breakEven float64) []schedule.Interval {
	switch s.MemoryPolicy {
	case schedule.SleepNever:
		return nil
	case schedule.SleepAlways:
		breakEven = 0
	}
	busy := s.MemoryBusy()
	var out []schedule.Interval
	cur := s.Start
	for _, iv := range busy {
		if iv.Start-cur >= breakEven && iv.Start > cur {
			out = append(out, schedule.Interval{Start: cur, End: iv.Start})
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if s.End-cur >= breakEven && s.End > cur {
		out = append(out, schedule.Interval{Start: cur, End: s.End})
	}
	return out
}
