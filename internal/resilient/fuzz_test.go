package resilient

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sdem/internal/faults"
	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// fuzzTasks derives a valid task set deterministically from a seed:
// sporadic releases, windows and workloads well inside the feasible
// range of the default platform.
func fuzzTasks(seed int64, n int) task.Set {
	r := rand.New(rand.NewSource(seed))
	set := make(task.Set, n)
	var rel float64
	for i := range set {
		rel += r.Float64() * 0.05
		window := 0.01 + r.Float64()*0.1
		set[i] = task.Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + window,
			Workload: 1e5 + r.Float64()*5e6,
		}
	}
	return set
}

// FuzzExecute round-trips random schedules through random fault plans and
// checks the executor's invariants: no panic, a finite non-negative
// audited energy, every miss reported exactly once with a class, a
// structurally valid output schedule, and bit-identical replay under the
// empty plan.
func FuzzExecute(f *testing.F) {
	f.Add(int64(1), uint8(3), 0.5, uint8(7))
	f.Add(int64(42), uint8(1), 1.0, uint8(0))
	f.Add(int64(7), uint8(6), 0.0, uint8(5))
	f.Add(int64(99), uint8(8), 0.9, uint8(2))

	f.Fuzz(func(t *testing.T, seed int64, n uint8, intensity float64, polBits uint8) {
		if math.IsNaN(intensity) || math.IsInf(intensity, 0) {
			intensity = 0
		}
		tasks := fuzzTasks(seed, int(n%8)+1)
		sys := power.DefaultSystem()
		onl, err := online.Schedule(tasks, sys, online.Options{Cores: 2})
		if err != nil {
			t.Skip("online scheduler rejected the instance")
		}
		plan := faults.Generate(faults.Config{Intensity: intensity}, tasks, sys, seed)
		pol := Policy{
			SpeedBoost: polBits&1 != 0,
			Replan:     polBits&2 != 0,
			Race:       polBits&4 != 0,
		}
		res, err := Execute(onl.Schedule, tasks, sys, plan, pol)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}

		if math.IsNaN(res.Energy) || math.IsInf(res.Energy, 0) || res.Energy < 0 {
			t.Fatalf("bad audited energy %g", res.Energy)
		}
		if res.SpuriousWakeEnergy < 0 || res.WakeStallEnergy < 0 {
			t.Fatalf("negative fault energy: spurious %g stall %g", res.SpuriousWakeEnergy, res.WakeStallEnergy)
		}

		// Every miss the pool recorded is classified exactly once.
		if got, want := len(res.PlannedMisses)+len(res.FaultMisses), len(res.Sim.Misses); got != want {
			t.Fatalf("%d misses classified, pool recorded %d", got, want)
		}
		for _, m := range append(append([]schedule.Miss{}, res.PlannedMisses...), res.FaultMisses...) {
			if m.Lateness <= 0 && m.Remaining <= 0 {
				t.Fatalf("miss %+v reports neither lateness nor undelivered work", m)
			}
		}

		// The output schedule must stay structurally sound: only
		// deadline/delivery violations (the reported misses) are
		// tolerable; overlap or migration would be executor bugs.
		err = res.Sim.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax})
		if err != nil && !errorsIsAny(err, schedule.ErrDeadlineMiss, schedule.ErrInfeasible) {
			t.Fatalf("structurally invalid output: %v", err)
		}

		// The empty plan must reproduce the input exactly, whatever the
		// policy.
		clean, err := Execute(onl.Schedule, tasks, sys, faults.Plan{}, pol)
		if err != nil {
			t.Fatalf("fault-free Execute: %v", err)
		}
		if !reflect.DeepEqual(clean.Sim.Schedule.Cores, onl.Schedule.Cores) {
			t.Fatalf("fault-free replay altered the schedule")
		}
	})
}
