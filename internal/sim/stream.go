package sim

import (
	"fmt"
	"math"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// missSampleCap bounds the per-run sample of miss details kept by a
// Stream; counts past the cap are still accumulated.
const missSampleCap = 64

// Stream is the O(active)-memory counterpart of Pool for unbounded runs:
// jobs are admitted as they arrive, executed through the same segment
// machinery (runSegment), and retired as soon as they complete, with
// energy accounted incrementally by a schedule.Meter instead of an
// assembled schedule. Days of virtual time run in memory proportional to
// the peak active set, not to the total jobs or segments.
//
// The zero value is not usable; call NewStream. A Stream is not safe for
// concurrent use.
type Stream struct {
	sys     power.System
	cores   int
	jobs    map[int]*Job // active jobs only
	free    []*Job       // retired job recycling
	meter   *schedule.Meter
	limiter SpeedLimiter
	now     float64
	started bool
	start   float64

	tel      *telemetry.Recorder
	telLabel string

	// classify, when non-nil, reports whether a missed job's miss is
	// explained by an injected perturbation (the soak harness installs a
	// fault-sampler closure); unexplained misses indicate engine bugs.
	classify func(*Job) bool

	// onRetire, when non-nil, observes every completed job as it retires
	// (the windowed-series wiring feeds response-time sketches through
	// it). The *Job is recycled immediately after the call returns and
	// must not be retained.
	onRetire func(j *Job, response float64)

	// lastMetered tracks the high-water Running() energy already flushed
	// to the sdem.sim.metered_j series at Seal boundaries.
	lastMetered float64

	admitted, completed     int64
	missed, explainedMisses int64
	maxActive               int
	missSample              []schedule.Miss
	sumResp, maxResp        float64
	sumLax                  float64
}

// StreamSummary is the outcome of a streaming run: the Pool Result's
// aggregates without the O(jobs) schedule and per-miss slices.
type StreamSummary struct {
	// Admitted and Completed count jobs with non-zero workload.
	Admitted, Completed int64
	// Misses counts late or unfinished jobs; ExplainedMisses of those
	// were attributed to injected faults by the classifier (equal to
	// Misses when no classifier is installed and misses are expected).
	Misses, ExplainedMisses int64
	// MissSample holds details of the first missSampleCap misses.
	MissSample []schedule.Miss
	// Energy is the metered total; Breakdown itemizes it.
	Energy    float64
	Breakdown schedule.Breakdown
	// Metrics summarizes response times over completed jobs.
	Metrics Metrics
	// Start and End delimit the metered virtual-time horizon.
	Start, End float64
	// MaxActive is the peak concurrently-active job count.
	MaxActive int
}

// UnexplainedMisses returns the misses the classifier could not
// attribute to an injected perturbation.
func (s *StreamSummary) UnexplainedMisses() int64 { return s.Misses - s.ExplainedMisses }

// NewStream prepares a streaming run on cores physical cores. Energy is
// metered under the SleepBreakEven policies (the SDEM convention).
func NewStream(sys power.System, cores int) (*Stream, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("sim: streaming run needs an explicit core count, got %d", cores)
	}
	return &Stream{
		sys:   sys,
		cores: cores,
		jobs:  make(map[int]*Job, 64),
	}, nil
}

// System returns the platform model.
func (s *Stream) System() power.System { return s.sys }

// Cores returns the physical core count of the run.
func (s *Stream) Cores() int { return s.cores }

// Now returns the latest time any segment has been emitted up to.
func (s *Stream) Now() float64 { return s.now }

// Active returns the number of admitted, unfinished jobs.
func (s *Stream) Active() int { return len(s.jobs) }

// Job returns the active job of the given task ID, or nil once it has
// been retired (completed jobs are not retained).
func (s *Stream) Job(id int) *Job { return s.jobs[id] }

// SetTelemetry attaches a telemetry recorder; who names the policy
// driving the stream (the "sched" label on every sdem.sim.* metric).
func (s *Stream) SetTelemetry(tel *telemetry.Recorder, who string) {
	s.tel = tel
	s.telLabel = ""
	if who != "" {
		s.telLabel = "sched=" + who
	}
}

// SetSpeedLimiter installs an execution-time speed perturbation applied
// to every subsequent Run. A nil limiter removes it.
func (s *Stream) SetSpeedLimiter(f SpeedLimiter) { s.limiter = f }

// SetMissClassifier installs the explained-miss predicate (see the
// classify field). It must be set before the first miss retires.
func (s *Stream) SetMissClassifier(f func(*Job) bool) { s.classify = f }

// SetRetireHook installs the per-completion observer (see the onRetire
// field). A nil hook removes it.
func (s *Stream) SetRetireHook(f func(j *Job, response float64)) { s.onRetire = f }

// Completed returns the number of jobs retired so far.
func (s *Stream) Completed() int64 { return s.completed }

// EnergySoFar returns the meter's running energy total — monotone
// non-decreasing across Seal boundaries, 0 before the first admission.
func (s *Stream) EnergySoFar() float64 {
	if s.meter == nil {
		return 0
	}
	return s.meter.Running()
}

// Admit registers a newly arrived task instance. The meter's horizon
// opens at the first admitted release. A zero-workload task completes
// (and retires) immediately, like Pool's construction does.
func (s *Stream) Admit(t task.Task) (*Job, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, dup := s.jobs[t.ID]; dup {
		return nil, fmt.Errorf("sim: duplicate active task ID %d", t.ID)
	}
	if !s.started {
		s.started = true
		s.start = t.Release
		s.now = t.Release
		s.meter = schedule.NewMeter(s.cores, t.Release, s.sys, schedule.SleepBreakEven, schedule.SleepBreakEven)
	}
	var j *Job
	if n := len(s.free); n > 0 {
		j = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		//lint:allow hotalloc: jobs are recycled; allocation happens only while the active set grows to its high-water size
		j = &Job{}
	}
	*j = Job{Task: t, Remaining: t.Workload, Core: -1, Done: numeric.IsZero(t.Workload, 0)}
	if j.Done {
		s.free = append(s.free, j)
		return j, nil
	}
	s.jobs[t.ID] = j
	s.admitted++
	s.tel.CountL("sdem.sim.admitted", s.telLabel, 1)
	if len(s.jobs) > s.maxActive {
		s.maxActive = len(s.jobs)
	}
	return j, nil
}

// Run executes the job on the given core from t0 to t1 at the given
// speed — the same semantics and validations as Pool.Run, with the
// segment metered instead of recorded, and completed jobs retired.
//
//sdem:hotpath
func (s *Stream) Run(taskID, core int, t0, t1, speed float64) (float64, error) {
	j, ok := s.jobs[taskID]
	switch {
	case !ok:
		return 0, fmt.Errorf("sim: unknown or already complete task %d", taskID)
	case t1 <= t0 || speed <= 0:
		return 0, fmt.Errorf("sim: bad segment [%g,%g] speed %g for task %d", t0, t1, speed, taskID)
	case t0 < j.Task.Release-schedule.Tol:
		return 0, fmt.Errorf("sim: task %d started at %g before release %g", taskID, t0, j.Task.Release)
	case core < 0 || core >= s.cores:
		return 0, fmt.Errorf("sim: core %d out of range", core)
	case j.Core >= 0 && j.Core != core:
		return 0, fmt.Errorf("sim: task %d would migrate from core %d to %d", taskID, j.Core, core)
	}
	t1, speed, capped, throttled := runSegment(j, s.sys, s.limiter, core, t0, t1, speed)
	if capped {
		s.tel.CountL("sdem.sim.speed_caps", s.telLabel, 1)
	}
	if throttled {
		s.tel.CountL("sdem.sim.throttles", s.telLabel, 1)
	}
	if err := s.meter.Add(core, schedule.Segment{TaskID: taskID, Start: t0, End: t1, Speed: speed}); err != nil {
		return 0, err
	}
	s.tel.CountL("sdem.sim.segments", s.telLabel, 1)
	s.tel.ObserveL("sdem.sim.segment_s", s.telLabel, t1-t0)
	if t1 > s.now {
		s.now = t1
	}
	if j.Done {
		s.retire(j)
	}
	return t1, nil
}

// Seal forwards a planning-batch boundary to the meter: no future
// segment will start before next, and the energy finalized by the seal
// is flushed to the sdem.sim.metered_j float series so windowed
// telemetry sees energy accrue during the run instead of only at Finish.
func (s *Stream) Seal(next float64) {
	if s.meter == nil {
		return
	}
	s.meter.Seal(next)
	if s.tel != nil {
		if cur := s.meter.Running(); cur > s.lastMetered {
			s.tel.AddL("sdem.sim.metered_j", s.telLabel, cur-s.lastMetered)
			s.lastMetered = cur
		}
	}
}

// retire accumulates a finished job's metrics and recycles it.
func (s *Stream) retire(j *Job) {
	delete(s.jobs, j.Task.ID)
	s.completed++
	s.tel.CountL("sdem.sim.completions", s.telLabel, 1)
	resp := j.Completed - j.Task.Release
	if s.onRetire != nil {
		s.onRetire(j, resp)
	}
	s.sumResp += resp
	s.maxResp = math.Max(s.maxResp, resp)
	s.sumLax += j.Task.Deadline - j.Completed
	if j.missed {
		s.recordMiss(j, schedule.Miss{
			TaskID:      j.Task.ID,
			Deadline:    j.Task.Deadline,
			CompletedAt: j.Completed,
			Lateness:    j.Completed - j.Task.Deadline,
		})
	}
	s.free = append(s.free, j)
}

func (s *Stream) recordMiss(j *Job, m schedule.Miss) {
	s.missed++
	if s.classify != nil {
		if s.classify(j) {
			s.explainedMisses++
		} else {
			s.tel.CountL("sdem.sim.unexplained_misses", s.telLabel, 1)
		}
	}
	if len(s.missSample) < missSampleCap {
		s.missSample = append(s.missSample, m)
	}
	s.tel.CountL("sdem.sim.misses", s.telLabel, 1)
}

// Finish closes the run: every still-active job is retired as an
// unfinished miss, the meter's horizon is closed at max(end, latest
// execution), and the summary is returned.
func (s *Stream) Finish(end float64) *StreamSummary {
	for _, j := range s.jobs {
		s.recordMiss(j, schedule.Miss{TaskID: j.Task.ID, Deadline: j.Task.Deadline, Remaining: j.Remaining})
	}
	for id := range s.jobs {
		delete(s.jobs, id)
	}
	var b schedule.Breakdown
	if s.meter != nil {
		b = s.meter.Finish(end)
	}
	if end < s.now {
		end = s.now
	}
	m := Metrics{Completed: int(s.completed)}
	if s.completed > 0 {
		m.MeanResponse = s.sumResp / float64(s.completed)
		m.MaxResponse = s.maxResp
		m.MeanLaxity = s.sumLax / float64(s.completed)
	}
	return &StreamSummary{
		Admitted:        s.admitted,
		Completed:       s.completed,
		Misses:          s.missed,
		ExplainedMisses: s.explainedMisses,
		MissSample:      s.missSample,
		Energy:          b.Total(),
		Breakdown:       b,
		Metrics:         m,
		Start:           s.start,
		End:             end,
		MaxActive:       s.maxActive,
	}
}
