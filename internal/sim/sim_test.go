package sim

import (
	"math"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func testSystem() power.System {
	return power.DefaultSystem()
}

func TestPoolLifecycle(t *testing.T) {
	tasks := task.Set{
		{ID: 2, Release: 0.1, Deadline: 0.3, Workload: 1e8},
		{ID: 1, Release: 0, Deadline: 0.2, Workload: 1e8},
	}
	pool, err := NewPool(tasks, testSystem(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.ArrivalTimes(); len(got) != 2 || got[0] != 0 || got[1] != 0.1 {
		t.Errorf("ArrivalTimes = %v", got)
	}
	if got := pool.Released(0.05); len(got) != 1 || got[0].Task.ID != 1 {
		t.Errorf("Released(0.05) = %v", got)
	}
	if got := pool.Released(0.5); len(got) != 2 || got[0].Task.ID != 1 {
		t.Errorf("Released(0.5) should be EDF ordered, got %v", got)
	}

	// Execute task 1 fully, task 2 partially then fully.
	end, err := pool.Run(1, 0, 0, 0.2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(end, 0.1, 1e-9) { // 1e8 cycles at 1e9 Hz = 0.1 s
		t.Errorf("task 1 end = %g, want 0.1", end)
	}
	if j := pool.Job(1); !j.Done || j.Remaining != 0 {
		t.Errorf("task 1 not complete: %+v", j)
	}
	if _, err := pool.Run(2, 1, 0.1, 0.15, 1e9); err != nil {
		t.Fatal(err)
	}
	if j := pool.Job(2); j.Done || !almostEq(j.Remaining, 0.5e8, 1e-9) {
		t.Errorf("task 2 remaining = %g, want 5e7", j.Remaining)
	}
	if _, err := pool.Run(2, 1, 0.2, 0.3, 1e9); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("unexpected misses: %v", res.Misses)
	}
	if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: testSystem().Core.SpeedMax}); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if res.Energy <= 0 {
		t.Error("energy must be positive")
	}
}

func TestPoolRejectsBadRuns(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0.1, Deadline: 1, Workload: 1e8}}
	pool, _ := NewPool(tasks, testSystem(), 2)
	cases := []struct {
		name          string
		id, core      int
		t0, t1, speed float64
	}{
		{"unknown task", 9, 0, 0.1, 0.2, 1e9},
		{"before release", 1, 0, 0, 0.2, 1e9},
		{"bad interval", 1, 0, 0.3, 0.2, 1e9},
		{"zero speed", 1, 0, 0.1, 0.2, 0},
		{"core out of range", 1, 5, 0.1, 0.2, 1e9},
	}
	for _, tc := range cases {
		if _, err := pool.Run(tc.id, tc.core, tc.t0, tc.t1, tc.speed); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Migration.
	if _, err := pool.Run(1, 0, 0.1, 0.11, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(1, 1, 0.2, 0.21, 1e9); err == nil {
		t.Error("migration must be rejected")
	}
	// Double completion.
	if _, err := pool.Run(1, 0, 0.3, 1, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(1, 0, 0.9, 1, 1e9); err == nil {
		t.Error("running a completed task must be rejected")
	}
}

func TestMissDetection(t *testing.T) {
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: 0.1, Workload: 1e8},
		{ID: 2, Release: 0, Deadline: 0.1, Workload: 1e8},
	}
	pool, _ := NewPool(tasks, testSystem(), 2)
	// Task 1 completes late; task 2 never completes.
	if _, err := pool.Run(1, 0, 0.05, 0.2, 1e9); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 2 {
		t.Errorf("misses = %v, want both tasks", res.Misses)
	}
	// Horizon must stretch to cover the late segment.
	if res.Schedule.End < 0.15 {
		t.Errorf("horizon end = %g, want ≥ 0.15", res.Schedule.End)
	}
}

func TestSpeedCapSilentClamp(t *testing.T) {
	sys := testSystem()
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 1e8}}
	pool, _ := NewPool(tasks, sys, 1)
	// Ask for an impossible speed; the pool caps it at s_up, so less work
	// is done than requested.
	if _, err := pool.Run(1, 0, 0, 0.01, 1e10); err != nil {
		t.Fatal(err)
	}
	want := sys.Core.SpeedMax * 0.01
	if j := pool.Job(1); !almostEq(j.Remaining, 1e8-want, 1e-9) {
		t.Errorf("remaining = %g, want %g", j.Remaining, 1e8-want)
	}
}

func TestReaudit(t *testing.T) {
	sys := testSystem()
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 1e8}}
	pool, _ := NewPool(tasks, sys, 1)
	if _, err := pool.Run(1, 0, 0, 1, 1e8); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	never := res.Reaudit(sys, schedule.SleepNever, schedule.SleepNever)
	if never.Energy < res.Energy {
		t.Errorf("never-sleep (%g) should not beat break-even (%g)", never.Energy, res.Energy)
	}
	if res.Schedule.MemoryPolicy == never.Schedule.MemoryPolicy {
		t.Error("Reaudit must not mutate the original schedule")
	}
}

func TestZeroWorkloadTasksAreBorn_Done(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 0}}
	pool, _ := NewPool(tasks, testSystem(), 1)
	if j := pool.Job(1); !j.Done {
		t.Error("zero-workload job must be born complete")
	}
	res, err := pool.Finish()
	if err != nil || len(res.Misses) != 0 {
		t.Errorf("zero-workload run: %v, misses %v", err, res.Misses)
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMetrics(t *testing.T) {
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: 0.5, Workload: 1e8},
		{ID: 2, Release: 0.1, Deadline: 0.6, Workload: 1e8},
	}
	pool, _ := NewPool(tasks, testSystem(), 2)
	if _, err := pool.Run(1, 0, 0.1, 0.3, 1e9); err != nil { // completes at 0.2
		t.Fatal(err)
	}
	if _, err := pool.Run(2, 1, 0.2, 0.5, 1e9); err != nil { // completes at 0.3
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Completed != 2 {
		t.Fatalf("completed = %d", m.Completed)
	}
	if !almostEq(m.MeanResponse, 0.2, 1e-9) { // (0.2 + 0.2)/2
		t.Errorf("mean response = %g, want 0.2", m.MeanResponse)
	}
	if !almostEq(m.MaxResponse, 0.2, 1e-9) {
		t.Errorf("max response = %g, want 0.2", m.MaxResponse)
	}
	if !almostEq(m.MeanLaxity, 0.3, 1e-9) { // (0.3 + 0.3)/2
		t.Errorf("mean laxity = %g, want 0.3", m.MeanLaxity)
	}
	// Reaudit preserves metrics.
	if re := res.Reaudit(testSystem(), schedule.SleepNever, schedule.SleepNever); re.Metrics != m {
		t.Error("Reaudit must carry metrics through")
	}
}
