// Package sim provides the online-scheduling substrate shared by the
// SDEM-ON heuristic and the baseline policies: a job pool that tracks
// remaining workloads as segments are emitted, detects completions and
// deadline misses, and assembles the final schedule for auditing.
//
// Policies drive the pool through Run calls; the pool owns all
// bookkeeping so that every policy's output is validated by the same
// machinery.
package sim

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// workTol is the relative remaining-workload tolerance below which a job
// counts as complete.
const workTol = 1e-9

// gridTol, scaled by speed·|t|, is the work the float time lattice cannot
// resolve at coordinate t (a few ULPs, ≈ 4.5 × 2.2e-16): runSegment folds
// it into the completion tolerance so rounded segment arithmetic at large
// virtual times cannot strand a job with an unschedulable leftover.
const gridTol = 1e-15

// Job is a task instance being executed online.
type Job struct {
	Task task.Task
	// Remaining is the workload (cycles) not yet executed.
	Remaining float64
	// Core is the core the job is pinned to, or -1 before first
	// execution (§3 forbids migration, so the first Run fixes it).
	Core int
	// Done marks completion.
	Done bool
	// Completed is the completion time (meaningful once Done).
	Completed float64
	// Squeezed records that queueing delay forced the executor to defer
	// this job past a re-plan or compress/race it after a late start: a
	// subsequent miss is queueing-induced (cores full), not a planning
	// error. The soak harness uses it to classify misses.
	Squeezed bool
	// missed marks that some segment finished past the deadline or the
	// job could not complete at all.
	missed bool
}

// SpeedLimiter models an execution-time speed perturbation (e.g. thermal
// throttling): given the commanded segment it returns the speed the core
// actually achieves. The limiter may assume the commanded speed is
// constant over [t0, t1]; callers that need sub-segment resolution split
// segments at perturbation boundaries before calling Run.
type SpeedLimiter func(core int, t0, t1, speed float64) float64

// Pool tracks all jobs of an online run.
type Pool struct {
	sys     power.System
	tasks   task.Set
	jobs    map[int]*Job
	order   []int // task IDs sorted by (release, deadline, ID)
	sched   *schedule.Schedule
	now     float64
	limiter SpeedLimiter

	tel      *telemetry.Recorder
	telLabel string
}

// NewPool prepares an online run over the task set. cores is the number
// of physical cores (0 means one per task). The schedule horizon is
// [earliest release, latest deadline].
func NewPool(tasks task.Set, sys power.System, cores int) (*Pool, error) {
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		cores = len(tasks)
	}
	start, end := tasks.Span()
	p := &Pool{
		sys:   sys,
		tasks: tasks.Clone(),
		jobs:  make(map[int]*Job, len(tasks)),
		sched: schedule.New(cores, start, end),
		now:   start,
	}
	p.tasks.SortByRelease()
	// One slab for every job of the run instead of a per-task allocation:
	// the serve path builds a Pool per request, so construction cost is
	// user-visible. The slab lives exactly as long as the jobs map.
	slab := make([]Job, len(p.tasks))
	p.order = make([]int, 0, len(p.tasks))
	for i, t := range p.tasks {
		slab[i] = Job{Task: t, Remaining: t.Workload, Core: -1, Done: numeric.IsZero(t.Workload, 0)}
		p.jobs[t.ID] = &slab[i]
		p.order = append(p.order, t.ID)
	}
	return p, nil
}

// Tasks returns the release-sorted task set of the run.
func (p *Pool) Tasks() task.Set { return p.tasks }

// System returns the platform model.
func (p *Pool) System() power.System { return p.sys }

// Cores returns the physical core count of the run.
func (p *Pool) Cores() int { return p.sched.NumCores }

// Now returns the latest time any segment has been emitted up to.
func (p *Pool) Now() float64 { return p.now }

// Job returns the job of the given task ID, or nil.
func (p *Pool) Job(id int) *Job { return p.jobs[id] }

// Unfinished returns the jobs not yet complete, in release order.
func (p *Pool) Unfinished() []*Job {
	var out []*Job
	for _, id := range p.order {
		if j := p.jobs[id]; !j.Done {
			out = append(out, j)
		}
	}
	return out
}

// Slack returns the laxity of the job at time t: the time to its deadline
// minus the time needed to finish the remaining workload at the platform's
// maximum speed. Negative slack means the deadline is no longer reachable
// even by racing. An unbounded platform (SpeedMax = 0) has no workload
// term. Unknown or completed jobs have +Inf slack.
func (p *Pool) Slack(id int, t float64) float64 {
	j, ok := p.jobs[id]
	if !ok || j.Done {
		return math.Inf(1)
	}
	slack := j.Task.Deadline - t
	if p.sys.Core.SpeedMax > 0 {
		slack -= j.Remaining / p.sys.Core.SpeedMax
	}
	return slack
}

// ScaleWorkload multiplies the job's remaining workload by factor — the
// fault-injection hook for WCET misestimation (overrun for factor > 1,
// underrun below). It must be applied before the job executes.
func (p *Pool) ScaleWorkload(id int, factor float64) error {
	j, ok := p.jobs[id]
	switch {
	case !ok:
		return fmt.Errorf("sim: unknown task %d", id)
	case factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0):
		return fmt.Errorf("sim: bad workload factor %g for task %d", factor, id)
	}
	j.Remaining *= factor
	j.Done = numeric.IsZero(j.Remaining, 0)
	return nil
}

// DelayRelease postpones the job's effective release by dt ≥ 0 — the
// fault-injection hook for late arrivals. The deadline is unchanged;
// Released and Run honour the delayed release.
func (p *Pool) DelayRelease(id int, dt float64) error {
	j, ok := p.jobs[id]
	switch {
	case !ok:
		return fmt.Errorf("sim: unknown task %d", id)
	case dt < 0 || math.IsNaN(dt) || math.IsInf(dt, 0):
		return fmt.Errorf("sim: bad release delay %g for task %d", dt, id)
	}
	j.Task.Release += dt
	for i := range p.tasks {
		if p.tasks[i].ID == id {
			p.tasks[i].Release = j.Task.Release
		}
	}
	return nil
}

// SetTelemetry attaches a telemetry recorder; who names the policy
// driving the pool and becomes the "sched" label on every sdem.sim.*
// metric (empty for unlabeled). A nil recorder disables instrumentation.
func (p *Pool) SetTelemetry(tel *telemetry.Recorder, who string) {
	p.tel = tel
	p.telLabel = ""
	if who != "" {
		p.telLabel = "sched=" + who
	}
}

// SetSpeedLimiter installs an execution-time speed perturbation applied to
// every subsequent Run. A nil limiter removes it.
func (p *Pool) SetSpeedLimiter(f SpeedLimiter) { p.limiter = f }

// SetHorizon overrides the audit horizon of the assembled schedule. A
// replay of an existing schedule uses this so idle and sleep intervals are
// accounted over the same span as the input. End may still grow if
// execution runs past it.
func (p *Pool) SetHorizon(start, end float64) {
	if end > start {
		p.sched.Start, p.sched.End = start, end
		if start > p.now {
			p.now = start
		}
	}
}

// SetPolicies sets the sleep policies the final audit uses, so a replay
// is accounted under the same conventions as the schedule it replays.
func (p *Pool) SetPolicies(core, mem schedule.SleepPolicy) {
	p.sched.CorePolicy = core
	p.sched.MemoryPolicy = mem
}

// ArrivalTimes returns the distinct release times in increasing order.
func (p *Pool) ArrivalTimes() []float64 {
	var out []float64
	for _, t := range p.tasks {
		if len(out) == 0 || t.Release > out[len(out)-1] {
			out = append(out, t.Release)
		}
	}
	return out
}

// jobsEDF sorts jobs by deadline then task ID. The pointer receiver
// avoids boxing a fresh slice header into sort.Interface on every
// Released call (once per arrival on the online hot path).
type jobsEDF []*Job

func (s *jobsEDF) Len() int { return len(*s) }
func (s *jobsEDF) Less(a, b int) bool {
	js := *s
	//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
	if js[a].Task.Deadline != js[b].Task.Deadline {
		return js[a].Task.Deadline < js[b].Task.Deadline
	}
	return js[a].Task.ID < js[b].Task.ID
}
func (s *jobsEDF) Swap(a, b int) { (*s)[a], (*s)[b] = (*s)[b], (*s)[a] }

// JobsByRelease appends the run's jobs in (release, deadline, ID) order —
// the order Released scans — to buf and returns it. The incremental
// online engine walks this once with a release cursor instead of
// rescanning the pool on every arrival. The order reflects the releases
// at pool creation; DelayRelease does not re-sort it.
func (p *Pool) JobsByRelease(buf []*Job) []*Job {
	for _, id := range p.order {
		buf = append(buf, p.jobs[id])
	}
	return buf
}

// Released returns the unfinished jobs with release ≤ t, by deadline
// order (EDF). The result is freshly allocated — callers hold it across
// a planning step — but sized up front so the append loop never regrows.
func (p *Pool) Released(t float64) []*Job {
	out := make([]*Job, 0, len(p.order))
	for _, id := range p.order {
		j := p.jobs[id]
		if !j.Done && j.Task.Release <= t+schedule.Tol {
			out = append(out, j)
		}
	}
	sort.Stable((*jobsEDF)(&out))
	return out
}

// Run executes the job on the given core from t0 to t1 at the given
// speed, emitting a segment and decrementing the remaining workload. The
// executed work is capped at the job's remaining amount (the segment is
// shortened accordingly). It returns the actual segment end time. Every
// planned segment of every online run lands here.
//
//sdem:hotpath
func (p *Pool) Run(taskID, core int, t0, t1, speed float64) (float64, error) {
	j, ok := p.jobs[taskID]
	switch {
	case !ok:
		return 0, fmt.Errorf("sim: unknown task %d", taskID)
	case j.Done:
		return 0, fmt.Errorf("sim: task %d already complete", taskID)
	case t1 <= t0 || speed <= 0:
		return 0, fmt.Errorf("sim: bad segment [%g,%g] speed %g for task %d", t0, t1, speed, taskID)
	case t0 < j.Task.Release-schedule.Tol:
		return 0, fmt.Errorf("sim: task %d started at %g before release %g", taskID, t0, j.Task.Release)
	case core < 0 || core >= p.sched.NumCores:
		return 0, fmt.Errorf("sim: core %d out of range", core)
	case j.Core >= 0 && j.Core != core:
		return 0, fmt.Errorf("sim: task %d would migrate from core %d to %d", taskID, j.Core, core)
	}
	t1, speed, capped, throttled := runSegment(j, p.sys, p.limiter, core, t0, t1, speed)
	if capped {
		p.tel.CountL("sdem.sim.speed_caps", p.telLabel, 1)
	}
	if throttled {
		p.tel.CountL("sdem.sim.throttles", p.telLabel, 1)
	}
	p.sched.Add(core, schedule.Segment{TaskID: taskID, Start: t0, End: t1, Speed: speed})
	p.tel.CountL("sdem.sim.segments", p.telLabel, 1)
	p.tel.ObserveL("sdem.sim.segment_s", p.telLabel, t1-t0)
	if t1 > p.now {
		p.now = t1
	}
	return t1, nil
}

// runSegment is the execution core shared by Pool.Run and Stream.Run:
// it caps the commanded speed at s_up, applies the limiter, executes
// work, detects completion — preserving the caller's end time when it is
// the exact completion point up to Tol, so replaying a planned segment
// reproduces it bit-for-bit — and flags deadline misses. It returns the
// actual segment end and speed plus whether the speed was capped or
// throttled (for telemetry).
//
//sdem:hotpath
func runSegment(j *Job, sys power.System, limiter SpeedLimiter, core int, t0, t1, speed float64) (end, actual float64, capped, throttled bool) {
	if sys.Core.SpeedMax > 0 && speed > sys.Core.SpeedMax {
		speed = sys.Core.SpeedMax // silently cap: the miss detector judges the result
		capped = true
	}
	if limiter != nil {
		if eff := limiter(core, t0, t1, speed); eff > 0 && eff < speed {
			speed = eff // the achieved speed is what the audit charges
			throttled = true
		}
	}
	j.Core = core
	work := speed * (t1 - t0)
	// The float time lattice cannot represent durations below one ULP of
	// the coordinate, so at large virtual times a truncated segment can
	// strand a leftover of up to a few ULPs' worth of work (speed·ulp(t1)):
	// any follow-up segment short enough to carry it rounds to zero length
	// and is never executable. Fold that grid quantum into the completion
	// tolerance so the leftover completes here, on the segment that made it.
	gridSlack := speed * math.Abs(t1) * gridTol
	if work >= j.Remaining-workTol*math.Max(1, j.Task.Workload)-gridSlack {
		if exact := t0 + j.Remaining/speed; math.Abs(exact-t1) > schedule.Tol {
			t1 = exact
		}
		work = j.Remaining
		j.Done = true
		j.Completed = t1
	}
	j.Remaining -= work
	if j.Done && t1 > j.Task.Deadline+schedule.Tol {
		j.missed = true
	}
	return t1, speed, capped, throttled
}

// Metrics summarizes the timeliness of an online run.
type Metrics struct {
	// MeanResponse and MaxResponse are completion − release statistics
	// over completed jobs (seconds).
	MeanResponse, MaxResponse float64
	// MeanLaxity is the average deadline − completion slack of completed
	// jobs; negative contributions come from late completions.
	MeanLaxity float64
	// Completed counts finished jobs.
	Completed int
}

// Result is the outcome of an online run.
type Result struct {
	// Schedule is the assembled schedule; its policies default to
	// SleepBreakEven and callers adjust them per baseline semantics.
	Schedule *schedule.Schedule
	// Misses lists task IDs that completed late or never completed.
	Misses []int
	// MissDetails describes each miss: lateness for late completions,
	// undelivered cycles for jobs that never finished. The executor that
	// produced the run classifies them (planned vs fault-induced).
	MissDetails []schedule.Miss
	// Energy is the audited total under the schedule's sleep policies.
	Energy float64
	// Breakdown itemizes the audit.
	Breakdown schedule.Breakdown
	// Metrics summarizes response times.
	Metrics Metrics
}

// Finish validates completion, audits and wraps the schedule. Policies on
// the schedule may be adjusted before calling Audit again via Reaudit.
func (p *Pool) Finish() (*Result, error) {
	p.sched.Normalize()
	var misses []int
	var details []schedule.Miss
	for _, id := range p.order {
		j := p.jobs[id]
		if !j.Done || j.missed {
			misses = append(misses, id)
			m := schedule.Miss{TaskID: id, Deadline: j.Task.Deadline}
			if j.Done {
				m.CompletedAt = j.Completed
				m.Lateness = j.Completed - j.Task.Deadline
			} else {
				m.Remaining = j.Remaining
			}
			details = append(details, m)
		}
	}
	// Extend the horizon if execution ran past the last deadline (only
	// possible for missed schedules).
	if p.now > p.sched.End {
		p.sched.End = p.now
	}
	var m Metrics
	for _, id := range p.order {
		j := p.jobs[id]
		if !j.Done || numeric.IsZero(j.Task.Workload, 0) {
			continue
		}
		resp := j.Completed - j.Task.Release
		m.MeanResponse += resp
		m.MaxResponse = math.Max(m.MaxResponse, resp)
		m.MeanLaxity += j.Task.Deadline - j.Completed
		m.Completed++
	}
	if m.Completed > 0 {
		m.MeanResponse /= float64(m.Completed)
		m.MeanLaxity /= float64(m.Completed)
	}
	b := schedule.Audit(p.sched, p.sys)
	if p.tel != nil {
		p.recordFinish(b, misses, m)
	}
	return &Result{
		Schedule:    p.sched,
		Misses:      misses,
		MissDetails: details,
		Energy:      b.Total(),
		Breakdown:   b,
		Metrics:     m,
	}, nil
}

// Reaudit recomputes a result's energy under different sleep policies,
// returning a copy. Use it to account one schedule under the MBKP
// (never-sleep) and MBKPS (always-sleep) conventions.
func (r *Result) Reaudit(sys power.System, corePolicy, memPolicy schedule.SleepPolicy) *Result { //lint:allow auditcheck: clones an already-normalized schedule for reaccounting
	clone := *r.Schedule
	clone.CorePolicy = corePolicy
	clone.MemoryPolicy = memPolicy
	b := schedule.Audit(&clone, sys)
	return &Result{
		Schedule:    &clone,
		Misses:      r.Misses,
		MissDetails: r.MissDetails,
		Energy:      b.Total(),
		Breakdown:   b,
		Metrics:     r.Metrics,
	}
}
