// Telemetry instrumentation of the pool: per-component energy
// attribution, sleep/wake accounting, and trace emission of the as-run
// schedule on virtual time.
package sim

import (
	"strconv"

	"sdem/internal/schedule"
	"sdem/internal/telemetry"
)

// EnergyBreakdown is the public per-component energy attribution of a
// run: the four ledgers the paper's trade-off argument is made of.
// Components always sum to the audited total (asserted in tests within
// numeric tolerance).
type EnergyBreakdown struct {
	// Dynamic is the speed-dependent core execution energy (Σ β·s^λ·t).
	Dynamic float64
	// CoreStatic is core leakage over execution and unslept idle.
	CoreStatic float64
	// MemoryStatic is memory leakage over busy and unslept idle time.
	MemoryStatic float64
	// Transition aggregates all mode-change overheads: core and memory
	// sleep transitions plus DVS switch energy.
	Transition float64
}

// Total returns the sum of the components.
func (e EnergyBreakdown) Total() float64 {
	return e.Dynamic + e.CoreStatic + e.MemoryStatic + e.Transition
}

// ComponentBreakdown folds the audit's itemized ledger into the
// four-way public attribution.
func ComponentBreakdown(b schedule.Breakdown) EnergyBreakdown {
	return EnergyBreakdown{
		Dynamic:      b.CoreDynamic,
		CoreStatic:   b.CoreStatic,
		MemoryStatic: b.MemoryStatic,
		Transition:   b.CoreTransition + b.MemoryTransition + b.CoreSwitch,
	}
}

// EnergyBreakdown returns the run's per-component energy attribution
// under the schedule's audited sleep policies.
func (r *Result) EnergyBreakdown() EnergyBreakdown {
	return ComponentBreakdown(r.Breakdown)
}

// label joins the pool's scheduler label with an extra "k=v" pair,
// keeping keys in alphabetical order (component < sched).
func (p *Pool) label(extra string) string {
	if p.telLabel == "" {
		return extra
	}
	if extra == "" {
		return p.telLabel
	}
	return extra + "," + p.telLabel
}

// recordFinish charges the audited run into the recorder and emits the
// as-run schedule as a trace. Called from Finish only when telemetry is
// attached, so the disabled path pays nothing beyond one nil check.
func (p *Pool) recordFinish(b schedule.Breakdown, misses []int, m Metrics) {
	tel, l := p.tel, p.telLabel

	// Per-component energy attribution (satellite of the audit ledger).
	e := ComponentBreakdown(b)
	tel.AddL("sdem.sim.energy_j", p.label("component=dynamic"), e.Dynamic)
	tel.AddL("sdem.sim.energy_j", p.label("component=core_static"), e.CoreStatic)
	tel.AddL("sdem.sim.energy_j", p.label("component=memory_static"), e.MemoryStatic)
	tel.AddL("sdem.sim.energy_j", p.label("component=transition"), e.Transition)

	// Sleep/wake and switching event counts, straight from the audit.
	tel.CountL("sdem.sim.core_sleeps", l, int64(b.CoreSleeps))
	tel.CountL("sdem.sim.memory_sleeps", l, int64(b.MemorySleeps))
	tel.CountL("sdem.sim.speed_switches", l, int64(b.SpeedSwitches))
	tel.AddL("sdem.sim.memory_sleep_s", l, b.MemorySleep)
	tel.CountL("sdem.sim.misses", l, int64(len(misses)))
	tel.CountL("sdem.sim.runs", l, 1)
	if m.Completed > 0 {
		tel.ObserveL("sdem.sim.response_s", l, m.MeanResponse)
	}

	p.emitTrace(misses)
}

// emitTrace renders the normalized schedule as trace spans on virtual
// time. Lane convention: tid 0 is the memory, tid k+1 is core k. Idle
// gaps are classified exactly as the audit charges them (sleep vs.
// idle-active) via the schedule's policies.
func (p *Pool) emitTrace(misses []int) {
	s := p.sched
	for c, segs := range s.Cores {
		tid := c + 1
		for _, sg := range segs {
			p.tel.Span("task "+strconv.Itoa(sg.TaskID), "sim", sg.Start, sg.End, tid,
				telemetry.Int("task", int64(sg.TaskID)),
				telemetry.Num("speed", sg.Speed))
		}
		if len(segs) == 0 {
			continue
		}
		for _, g := range schedule.Gaps(schedule.BusyIntervals(segs), s.Start, s.End) {
			name := "core idle"
			if s.CorePolicy.Sleeps(g.Len(), p.sys.Core.Static, p.sys.Core.BreakEven) {
				name = "core sleep"
			}
			p.tel.Span(name, "sim", g.Start, g.End, tid)
		}
	}
	busy := s.MemoryBusy()
	for _, iv := range busy {
		p.tel.Span("memory active", "sim", iv.Start, iv.End, 0)
	}
	for _, g := range schedule.Gaps(busy, s.Start, s.End) {
		name := "memory idle"
		if s.MemoryPolicy.Sleeps(g.Len(), p.sys.Memory.Static, p.sys.Memory.BreakEven) {
			name = "memory sleep"
		}
		p.tel.Span(name, "sim", g.Start, g.End, 0)
	}
	for _, id := range misses {
		j := p.jobs[id]
		tid := 0
		if j != nil && j.Core >= 0 {
			tid = j.Core + 1
		}
		p.tel.Instant("deadline miss", "sim", p.missTime(j), tid, telemetry.Int("task", int64(id)))
	}
}

// missTime picks the trace timestamp of a miss: the late completion, or
// the deadline for jobs that never finished.
func (p *Pool) missTime(j *Job) float64 {
	if j == nil {
		return p.sched.End
	}
	if j.Done {
		return j.Completed
	}
	return j.Task.Deadline
}
