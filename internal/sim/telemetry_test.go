package sim

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// runInstrumented drives a small two-core run with the given recorder
// attached and returns the result.
func runInstrumented(t *testing.T, tel *telemetry.Recorder) *Result {
	t.Helper()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: 0.2, Workload: 1e8},
		{ID: 2, Release: 0.1, Deadline: 0.6, Workload: 1e8},
	}
	pool, err := NewPool(tasks, testSystem(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetTelemetry(tel, "test")
	if _, err := pool.Run(1, 0, 0, 0.2, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(2, 1, 0.1, 0.3, 1e9); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEnergyBreakdownSumsToTotal is the satellite invariant: the public
// four-component attribution reproduces the audited total.
func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	res := runInstrumented(t, nil)
	e := res.EnergyBreakdown()
	if !almostEq(e.Total(), res.Energy, 1e-9*math.Max(1, res.Energy)) {
		t.Errorf("components sum to %g, audited total %g", e.Total(), res.Energy)
	}
	if e.Dynamic <= 0 || e.CoreStatic <= 0 {
		t.Errorf("expected positive dynamic/core-static energy, got %+v", e)
	}
	// Reaudited results must preserve the invariant under other policies.
	for _, pol := range []schedule.SleepPolicy{schedule.SleepNever, schedule.SleepAlways} {
		r2 := res.Reaudit(testSystem(), pol, pol)
		e2 := r2.EnergyBreakdown()
		if !almostEq(e2.Total(), r2.Energy, 1e-9*math.Max(1, r2.Energy)) {
			t.Errorf("reaudit %v: components sum to %g, total %g", pol, e2.Total(), r2.Energy)
		}
	}
}

func TestPoolTelemetryMetricsAndTrace(t *testing.T) {
	tel := telemetry.New()
	res := runInstrumented(t, tel)

	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter sdem.sim.segments{sched=test} 2",
		"counter sdem.sim.runs{sched=test} 1",
		"counter sdem.sim.misses{sched=test} 0",
		"float sdem.sim.energy_j{component=dynamic,sched=test}",
		"float sdem.sim.energy_j{component=core_static,sched=test}",
		"float sdem.sim.energy_j{component=memory_static,sched=test}",
		"float sdem.sim.energy_j{component=transition,sched=test}",
		"hist sdem.sim.segment_s{sched=test} count=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}

	// The recorded component sums must equal the result's attribution.
	e := res.EnergyBreakdown()
	wantDyn := strconv.FormatFloat(e.Dynamic, 'g', -1, 64)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "float sdem.sim.energy_j{component=dynamic,") {
			if !strings.HasSuffix(line, " "+wantDyn) {
				t.Errorf("dynamic energy metric %q != breakdown %g", line, e.Dynamic)
			}
		}
	}

	events := tel.Events()
	var names []string
	for _, ev := range events {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"task 1", "task 2", "memory active"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q span: %v", want, names)
		}
	}
}

func TestPoolTelemetryMissInstant(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 0.1, Workload: 1e8}}
	pool, err := NewPool(tasks, testSystem(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	pool.SetTelemetry(tel, "")
	if _, err := pool.Run(1, 0, 0, 0.2, 0.5e9); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 1 {
		t.Fatalf("misses = %v, want 1", res.Misses)
	}
	found := false
	for _, ev := range tel.Events() {
		if ev.Name == "deadline miss" && ev.Phase == 'i' {
			found = true
		}
	}
	if !found {
		t.Error("no deadline-miss instant in trace")
	}
}
