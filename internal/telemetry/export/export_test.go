package export

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdem/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden exposition")

// golden builds the recorder whose exposition testdata/golden.om pins:
// every metric kind, multi-series families, escaped label values, and a
// histogram with explicit buckets.
func golden() *telemetry.Recorder {
	r := telemetry.New()
	r.CountL("sdem.serve.requests", "code=200,route=/v1/solve", 3)
	r.CountL("sdem.serve.requests", "code=400,route=/v1/solve", 1)
	r.Count("sdem.sim.runs", 4)
	r.AddL("sdem.sim.energy_j", "component=dynamic,sched=sdem-on", 0.125)
	r.AddL("sdem.sim.energy_j", "component=memory_static,sched=sdem-on", 2.5)
	r.Gauge("sdem.serve.inflight", 2)
	r.GaugeL("sdem.serve.info", `version="v1"\weird`+"\n", 1)
	r.RegisterHistogram("sdem.serve.latency_s", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0004, 0.002, 0.003, 0.05, 3} {
		r.ObserveL("sdem.serve.latency_s", "route=/v1/solve", v)
	}
	return r
}

// TestWriteOpenMetricsGolden pins the full exposition byte-for-byte:
// family grouping and order, _total suffixes, cumulative _bucket lines
// with _sum/_count, label escaping, and the # EOF terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, golden().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.om")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (run with -update to rewrite):\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// TestWriteOpenMetricsDeterministic renders the same state twice and from
// a merged clone; all three expositions must be byte-identical.
func TestWriteOpenMetricsDeterministic(t *testing.T) {
	render := func(r *telemetry.Recorder) string {
		var buf bytes.Buffer
		if err := WriteOpenMetrics(&buf, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(golden()), render(golden())
	if a != b {
		t.Errorf("two renders of the same state differ:\n%s\n---\n%s", a, b)
	}
	merged := telemetry.New()
	merged.MergeMetrics(golden())
	if c := render(merged); c != a {
		t.Errorf("merged clone renders differently:\n%s\n---\n%s", c, a)
	}
}

// TestWriteOpenMetricsEmpty checks the nil-recorder path end to end: the
// empty snapshot produces the empty exposition, just the EOF marker.
func TestWriteOpenMetricsEmpty(t *testing.T) {
	var r *telemetry.Recorder
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Errorf("empty exposition = %q, want %q", got, "# EOF\n")
	}
}

// TestExpositionShape spot-checks structural invariants a scraper relies
// on rather than exact bytes: one TYPE line per family, +Inf bucket equal
// to _count, and escaped values.
func TestExpositionShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, golden().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE sdem_serve_requests counter",
		`sdem_serve_requests_total{code="200",route="/v1/solve"} 3`,
		"# TYPE sdem_sim_energy_j counter",
		`sdem_sim_energy_j_total{component="dynamic",sched="sdem-on"} 0.125`,
		"# TYPE sdem_serve_latency_s histogram",
		`sdem_serve_latency_s_bucket{route="/v1/solve",le="0.001"} 1`,
		`sdem_serve_latency_s_bucket{route="/v1/solve",le="+Inf"} 5`,
		`sdem_serve_latency_s_count{route="/v1/solve"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE sdem_serve_requests counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

// TestExemplarRendering checks the OpenMetrics exemplar suffix: a bucket
// that captured an exemplar carries ` # {trace_id="…"} value` after its
// sample value, buckets without one are untouched, and the suffix never
// leaks onto _sum/_count lines.
func TestExemplarRendering(t *testing.T) {
	r := telemetry.New()
	r.RegisterHistogram("sdem.serve.latency_s", []float64{0.001, 0.01, 0.1})
	r.ObserveExL("sdem.serve.latency_s", "route=solve", 0.002, "trace_id=4bf92f3577b34da6")
	r.ObserveL("sdem.serve.latency_s", "route=solve", 0.05)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `sdem_serve_latency_s_bucket{route="solve",le="0.01"} 1 # {trace_id="4bf92f3577b34da6"} 0.002`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if !strings.Contains(out, `sdem_serve_latency_s_bucket{route="solve",le="0.1"} 2`+"\n") {
		t.Errorf("exemplar-free bucket perturbed:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "_sum") || strings.Contains(line, "_count") {
			if strings.Contains(line, "#") {
				t.Errorf("exemplar leaked onto summary line %q", line)
			}
		}
	}
}
