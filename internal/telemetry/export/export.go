// Package export bridges the module's telemetry recorder to the
// Prometheus / OpenMetrics text exposition format, so a long-running
// process (sdemd) can be scraped live instead of dumping metrics
// post-hoc.
//
// The bridge is snapshot-driven: callers take telemetry.Recorder.Snapshot
// (a consistent, lock-free copy) and render it here. Rendering is a pure
// function of the snapshot — families sorted by exposed name, series in
// the snapshot's (name, labels) order, label values escaped, floats
// formatted with round-trip precision — so the exposition of a fixed
// metric state is byte-deterministic. Samples carry no timestamps: the
// module's metric values live on virtual schedule/sim time, which must
// never be confused with scrape (wall) time, so the scraper assigns its
// own timestamps (see DESIGN.md §7).
//
// Mapping:
//
//	counter  name{...} v  →  # TYPE name counter;  name_total{...} v
//	float    name{...} v  →  # TYPE name counter;  name_total{...} v   (monotone sums, e.g. joules)
//	gauge    name{...} v  →  # TYPE name gauge;    name{...} v
//	hist     name{...}    →  # TYPE name histogram; name_bucket{...,le="e"} cum …
//	                          name_bucket{...,le="+Inf"} n; name_sum; name_count
//
// Histogram buckets that captured an exemplar (Snapshot's sparse
// HistPoint.Exemplars, by convention `trace_id=<hex>`) carry the
// OpenMetrics exemplar suffix ` # {trace_id="…"} value` after the
// bucket's sample value; exemplars are timestampless, matching the
// samples.
//
// Dots in metric names become underscores ("sdem.sim.energy_j" →
// "sdem_sim_energy_j"). A metric name must be used as only one kind
// (counter, float, gauge or histogram) — the recorder API makes mixing a
// bug, and the exposition would be invalid.
package export

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sdem/internal/telemetry"
)

// WriteOpenMetrics renders the snapshot as OpenMetrics text exposition
// (also parseable by any Prometheus scraper) and terminates it with the
// required "# EOF". An empty snapshot — in particular the one a nil
// recorder produces — yields the empty exposition: just the EOF marker.
func WriteOpenMetrics(w io.Writer, s telemetry.Snapshot) error {
	var b strings.Builder
	writeCounterish(&b, countersAsFloats(s.Counters))
	writeCounterish(&b, s.Floats)
	writeFamilies(&b, s.Gauges, "gauge", func(b *strings.Builder, p telemetry.FloatPoint) {
		sample(b, sanitize(p.Name), p.Labels, "", ftoa(p.Value))
	})
	writeHistograms(&b, s.Hists)
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// countersAsFloats widens integer counters to the float sample type so
// counters and float sums share one rendering path. int64 counters in
// this module are event counts far below 2^53, so the widening is exact.
func countersAsFloats(cs []telemetry.CounterPoint) []telemetry.FloatPoint {
	if len(cs) == 0 {
		return nil
	}
	out := make([]telemetry.FloatPoint, len(cs))
	for i, c := range cs {
		out[i] = telemetry.FloatPoint{Name: c.Name, Labels: c.Labels, Value: float64(c.Value)}
	}
	return out
}

func writeCounterish(b *strings.Builder, ps []telemetry.FloatPoint) {
	writeFamilies(b, ps, "counter", func(b *strings.Builder, p telemetry.FloatPoint) {
		sample(b, sanitize(p.Name)+"_total", p.Labels, "", ftoa(p.Value))
	})
}

// writeFamilies emits one # TYPE header per distinct metric name and the
// series under it. Points arrive sorted by (name, labels), so series of
// a family are contiguous and the family order is the sorted name order.
func writeFamilies(b *strings.Builder, ps []telemetry.FloatPoint, kind string, emit func(*strings.Builder, telemetry.FloatPoint)) {
	prev := ""
	for _, p := range ps {
		if p.Name != prev {
			fmt.Fprintf(b, "# TYPE %s %s\n", sanitize(p.Name), kind)
			prev = p.Name
		}
		emit(b, p)
	}
}

func writeHistograms(b *strings.Builder, hs []telemetry.HistPoint) {
	prev := ""
	for _, h := range hs {
		name := sanitize(h.Name)
		if h.Name != prev {
			fmt.Fprintf(b, "# TYPE %s histogram\n", name)
			prev = h.Name
		}
		ex, cum := h.Exemplars, uint64(0)
		for i, e := range h.Edges {
			cum += h.Counts[i]
			sample(b, name+"_bucket", h.Labels, `le="`+ftoa(e)+`"`, strconv.FormatUint(cum, 10)+exemplarFor(&ex, i))
		}
		sample(b, name+"_bucket", h.Labels, `le="+Inf"`, strconv.FormatUint(h.Count, 10)+exemplarFor(&ex, len(h.Edges)))
		sample(b, name+"_sum", h.Labels, "", ftoa(h.Sum))
		sample(b, name+"_count", h.Labels, "", strconv.FormatUint(h.Count, 10))
	}
}

// exemplarFor renders the OpenMetrics exemplar suffix for bucket i —
// ` # {trace_id="..."} value`, appended after the bucket's sample value —
// consuming the head of the sorted sparse exemplar list as buckets are
// walked in order. Timestampless exemplars are valid OpenMetrics and keep
// the exposition free of wall-clock reads.
func exemplarFor(ex *[]telemetry.ExemplarPoint, i int) string {
	if len(*ex) == 0 || (*ex)[0].Bucket != i {
		return ""
	}
	e := (*ex)[0]
	*ex = (*ex)[1:]
	var b strings.Builder
	b.WriteString(" # {")
	writeLabels(&b, e.Labels)
	b.WriteString("} ")
	b.WriteString(ftoa(e.Value))
	return b.String()
}

// sample writes one exposition line: name{rendered labels[,extra]} value.
// extra is a pre-rendered label pair (the histogram "le") appended last,
// after the canonical labels.
func sample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		writeLabels(b, labels)
		if extra != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// writeLabels renders a canonical "k1=v1,k2=v2" label string as
// k1="v1",k2="v2" with exposition escaping of the values. The canonical
// form cannot carry commas or '=' inside values (the recorder's label
// convention), so the split is unambiguous.
func writeLabels(b *strings.Builder, labels string) {
	if labels == "" {
		return
	}
	for i, pair := range strings.Split(labels, ",") {
		if i > 0 {
			b.WriteByte(',')
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			// A bare token is exposed as a value under the "label" key
			// rather than dropped, keeping the exposition well-formed.
			k, v = "label", pair
		}
		b.WriteString(sanitize(k))
		b.WriteString(`="`)
		escapeLabelValue(b, v)
		b.WriteString(`"`)
	}
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote and line feed.
func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// sanitize maps a dotted telemetry name onto the exposition's
// [a-zA-Z_:][a-zA-Z0-9_:]* charset: dots (and any other invalid byte)
// become underscores.
func sanitize(name string) string {
	valid := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	for i := 0; i < len(name); i++ {
		if !valid(i, name[i]) {
			out := []byte(name)
			for j := range out {
				if !valid(j, out[j]) {
					out[j] = '_'
				}
			}
			return string(out)
		}
	}
	return name
}

// ftoa matches the recorder's dump formatting: shortest round-trip
// representation, so equal expositions imply bit-equal values. +Inf and
// -Inf use the exposition spellings.
func ftoa(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
