// Command-line plumbing shared by the module's binaries: flag
// registration and output routing for the telemetry recorder and the
// pprof profiles.
//
// Deterministic telemetry (metrics, traces) is written to the configured
// files — stderr for "-" — never to stdout, so experiment stdout stays
// byte-identical with telemetry on or off.
package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// CLI bundles the standard telemetry and profiling options of the SDEM
// commands. Register it on a FlagSet, call Recorder for the (possibly
// nil) recorder to thread through the run, and Finish once at exit.
type CLI struct {
	// Enabled turns collection on even when no output path is given (the
	// metrics dump then defaults to stderr).
	Enabled bool
	// TraceOut is the trace destination ("-" = stderr). Paths ending in
	// .jsonl get the line-delimited format; everything else gets a Chrome
	// trace_event JSON array loadable in Perfetto or chrome://tracing.
	TraceOut string
	// MetricsOut is the metrics-dump destination ("-" = stderr).
	MetricsOut string
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile string
	MemProfile string

	rec        *Recorder
	cpuStarted bool
}

// Register declares the telemetry flags on the flag set.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enabled, "telemetry", false, "collect metrics and traces (deterministic; stdout is unchanged)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write the event trace to this file ('-' = stderr; .jsonl = line format, otherwise Chrome trace_event); implies -telemetry")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write the metrics dump to this file ('-' = stderr); implies -telemetry")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Recorder returns the recorder to thread through the run: nil (the
// zero-cost disabled state) unless -telemetry, -trace-out or -metrics-out
// was given. Repeated calls return the same recorder.
func (c *CLI) Recorder() *Recorder {
	if !c.Enabled && c.TraceOut == "" && c.MetricsOut == "" {
		return nil
	}
	if c.rec == nil {
		c.rec = New()
	}
	return c.rec
}

// Start begins CPU profiling when requested. Call before the measured
// work; Finish stops it.
func (c *CLI) Start() error {
	if c.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(c.CPUProfile)
	if err != nil {
		return fmt.Errorf("telemetry: -cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: -cpuprofile: %w", err)
	}
	c.cpuStarted = true
	return nil
}

// openOut resolves an output spec: "-" is stderr (close is a no-op).
func openOut(spec string) (io.Writer, func() error, error) {
	if spec == "-" {
		return os.Stderr, func() error { return nil }, nil
	}
	f, err := os.Create(spec)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Finish stops profiling and writes every requested output: the metrics
// dump, the trace, the heap profile, and — whenever collection was on —
// the wall-clock profile report to stderr.
func (c *CLI) Finish() error {
	if c.cpuStarted {
		pprof.StopCPUProfile()
		c.cpuStarted = false
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return fmt.Errorf("telemetry: -memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: -memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	tel := c.Recorder()
	if tel == nil {
		return nil
	}
	metricsOut := c.MetricsOut
	if metricsOut == "" {
		metricsOut = "-"
	}
	w, closeW, err := openOut(metricsOut)
	if err != nil {
		return fmt.Errorf("telemetry: -metrics-out: %w", err)
	}
	if err := tel.WriteMetrics(w); err != nil {
		closeW()
		return err
	}
	if err := closeW(); err != nil {
		return err
	}
	if c.TraceOut != "" {
		w, closeW, err := openOut(c.TraceOut)
		if err != nil {
			return fmt.Errorf("telemetry: -trace-out: %w", err)
		}
		write := tel.WriteChromeTrace
		if strings.HasSuffix(c.TraceOut, ".jsonl") {
			write = tel.WriteTraceJSONL
		}
		if err := write(w); err != nil {
			closeW()
			return err
		}
		if err := closeW(); err != nil {
			return err
		}
	}
	return tel.Prof.Report(os.Stderr)
}
