// Point-in-time snapshots of a live Recorder.
//
// A long-running process (the sdemd serve daemon) exposes its recorder
// while work is still in flight, so exporters must never walk the live
// maps. Snapshot copies the full metric state under the recorder's lock
// into plain sorted slices; exporters then format the copy without
// holding any lock and without racing in-flight instrumentation. The
// ordering is the same (name, labels) order WriteMetrics uses, so any
// exporter that walks a Snapshot front-to-back is byte-deterministic for
// a fixed metric state.
package telemetry

// CounterPoint is one counter sample of a snapshot.
type CounterPoint struct {
	Name   string
	Labels string // canonical "k1=v1,k2=v2", empty for none
	Value  int64
}

// FloatPoint is one float-sum or gauge sample of a snapshot.
type FloatPoint struct {
	Name   string
	Labels string
	Value  float64
}

// ExemplarPoint links one histogram bucket to the labeled event (by
// convention a trace_id) whose observation most recently landed there.
type ExemplarPoint struct {
	Bucket int    // index into Counts; len(Edges) is the +Inf bucket
	Labels string // canonical "k=v,k=v" form, e.g. `trace_id=abc123`
	Value  float64
}

// HistPoint is one histogram instance of a snapshot. Counts holds the
// per-bucket (non-cumulative) observation counts; Counts[len(Edges)] is
// the +Inf overflow bucket. Edges is shared with the recorder's layout
// and must be treated as immutable. Exemplars is sparse (only buckets
// that captured one appear) and sorted by bucket index; nil when the
// histogram never recorded an exemplar.
type HistPoint struct {
	Name      string
	Labels    string
	Edges     []float64
	Counts    []uint64
	Count     uint64
	Sum       float64
	Min       float64 // 0 when Count == 0
	Max       float64 // 0 when Count == 0
	Exemplars []ExemplarPoint
}

// Snapshot is a consistent copy of a Recorder's metric state. Every
// slice is sorted by (Name, Labels). The zero Snapshot is the empty
// state a nil recorder produces.
type Snapshot struct {
	Counters []CounterPoint
	Floats   []FloatPoint
	Gauges   []FloatPoint
	Hists    []HistPoint
}

// Empty reports whether the snapshot carries no samples at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Floats) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Snapshot copies the recorder's metric state (counters, float sums,
// gauges, histograms — not trace events) under the lock. On a nil
// recorder it returns the zero Snapshot without allocating, so the
// disabled path of a snapshot-driven exporter stays free.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make([]CounterPoint, 0, len(r.counters))
		for _, k := range sortedKeys(r.counters) {
			s.Counters = append(s.Counters, CounterPoint{Name: k.name, Labels: k.labels, Value: r.counters[k]})
		}
	}
	if len(r.floats) > 0 {
		s.Floats = make([]FloatPoint, 0, len(r.floats))
		for _, k := range sortedKeys(r.floats) {
			s.Floats = append(s.Floats, FloatPoint{Name: k.name, Labels: k.labels, Value: r.floats[k]})
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make([]FloatPoint, 0, len(r.gauges))
		for _, k := range sortedKeys(r.gauges) {
			s.Gauges = append(s.Gauges, FloatPoint{Name: k.name, Labels: k.labels, Value: r.gauges[k]})
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make([]HistPoint, 0, len(r.hists))
		for _, k := range sortedKeys(r.hists) {
			h := r.hists[k]
			counts := make([]uint64, len(h.counts))
			copy(counts, h.counts)
			mn, mx := h.min, h.max
			if h.count == 0 {
				mn, mx = 0, 0
			}
			var ex []ExemplarPoint
			for i, e := range h.exemplars {
				if e.set {
					ex = append(ex, ExemplarPoint{Bucket: i, Labels: e.labels, Value: e.value})
				}
			}
			s.Hists = append(s.Hists, HistPoint{
				Name: k.name, Labels: k.labels,
				Edges: h.edges, Counts: counts,
				Count: h.count, Sum: h.sum, Min: mn, Max: mx,
				Exemplars: ex,
			})
		}
	}
	return s
}
