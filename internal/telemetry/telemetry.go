// Package telemetry is the observability layer of the SDEM module: a
// zero-dependency metrics registry, span-style structured event tracing
// on virtual (schedule/sim) time, and wall-clock profiling hooks.
//
// Three properties are load-bearing and tested:
//
//   - Zero cost when disabled. Every Recorder method is safe on a nil
//     receiver and returns immediately, so instrumented hot paths carry a
//     single nil check and no allocation (BenchmarkTelemetryDisabled
//     guards this).
//   - Replay determinism. Metric values and trace timestamps derive only
//     from deterministic inputs: counters and histograms record event
//     counts and virtual-time quantities, never wall-clock reads, and the
//     trace clock is schedule/sim time. Running the same experiment twice
//     — or with telemetry on versus off — yields identical computation
//     and identical telemetry.
//   - Worker-count independence. A sweep gives every grid point its own
//     child Recorder and merges them into the parent in grid-index order
//     (Merge iterates metrics in sorted key order), so even
//     floating-point accumulation order is fixed and the merged output is
//     byte-identical at any worker-pool width.
//
// Wall-clock time is deliberately quarantined: only the Profiler (and
// PoolProfile) read it, their output is segregated from the deterministic
// metrics dump, and the telemetrycheck lint analyzer forbids time.Now in
// every other package of the module.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Standard histogram bucket layouts. Layouts are fixed at registration so
// dumps are deterministic; all layouts use "v ≤ edge" bucket semantics
// with an implicit +Inf overflow bucket.
var (
	// BucketsSeconds spans virtual durations from microseconds to
	// minutes in decades.
	BucketsSeconds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} //lint:allow tolconst: decade bucket edges in seconds, not tolerances
	// BucketsCount is a 1-2-5 ladder for small cardinalities (queue
	// lengths, active jobs, iterations).
	BucketsCount = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	// BucketsRatio covers signed relative quantities such as energy
	// saving ratios.
	BucketsRatio = []float64{-0.5, -0.2, -0.1, -0.05, -0.02, 0, 0.02, 0.05, 0.1, 0.2, 0.5}
	// BucketsJoules spans per-run energy magnitudes.
	BucketsJoules = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} //lint:allow tolconst: decade bucket edges in joules, not tolerances
)

// DefaultLayouts maps the module's well-known histogram names to their
// bucket layouts; New registers them so every child inherits the layout
// and merges stay well-formed. Unlisted histograms use BucketsSeconds.
var DefaultLayouts = map[string][]float64{
	"sdem.solver.online.active_jobs": BucketsCount,
	"sdem.sweep.saving":              BucketsRatio,
	"sdem.sweep.point_energy_j":      BucketsJoules,
}

// key identifies one metric instance: dotted name plus a canonical label
// string ("k1=v1,k2=v2", empty for no labels).
type key struct {
	name, labels string
}

func (k key) String() string { return k.name + "{" + k.labels + "}" }

// exemplar pins one recent observation in a histogram bucket to a label
// set (canonical "k=v,k=v" form, typically a trace_id). Last write wins:
// exemplars are a sampling aid, not an accumulator.
type exemplar struct {
	labels string
	value  float64
	set    bool
}

// histogram is a fixed-layout distribution. counts[i] holds observations
// in (edges[i-1], edges[i]] (the first bucket is (-Inf, edges[0]]);
// counts[len(edges)] is the +Inf overflow bucket. exemplars, when
// non-nil, has one slot per bucket and is allocated lazily on the first
// exemplar-carrying observation, so plain histograms pay nothing.
type histogram struct {
	edges     []float64
	counts    []uint64
	count     uint64
	sum       float64
	min       float64
	max       float64
	exemplars []exemplar
}

func newHistogram(edges []float64) *histogram {
	return &histogram{
		edges:  edges,
		counts: make([]uint64, len(edges)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) {
		return // NaN carries no information; dropping keeps dumps finite
	}
	i := sort.SearchFloat64s(h.edges, v) // first edge ≥ v, i.e. v ≤ edges[i]
	h.counts[i]++
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
}

// observeEx records v and pins it as the bucket's exemplar. An empty
// exemplar label set degenerates to a plain observation.
func (h *histogram) observeEx(v float64, exLabels string) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
	if exLabels == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.edges)+1)
	}
	h.exemplars[i] = exemplar{labels: exLabels, value: v, set: true}
}

func (h *histogram) merge(o *histogram) {
	if len(o.edges) != len(h.edges) {
		return // layout mismatch: drop rather than corrupt (children copy layouts, so this cannot happen in-module)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	h.min = math.Min(h.min, o.min)
	h.max = math.Max(h.max, o.max)
	if o.exemplars != nil {
		if h.exemplars == nil {
			h.exemplars = make([]exemplar, len(h.counts))
		}
		for i, e := range o.exemplars {
			if e.set {
				h.exemplars[i] = e // child wins: the merge order is the arrival order
			}
		}
	}
}

// Recorder collects metrics and trace events for one unit of work. A nil
// *Recorder is the disabled state: every method no-ops. A Recorder is
// safe for concurrent use, but determinism of float sums requires each
// Recorder to be fed by one goroutine — parallel work uses one child
// Recorder per work item, merged in index order (see Merge).
type Recorder struct {
	mu       sync.Mutex
	pid      int
	counters map[key]int64
	floats   map[key]float64
	gauges   map[key]float64
	hists    map[key]*histogram
	layouts  map[string][]float64
	// ownLayouts marks the layouts map as private to this recorder.
	// Child shares the parent's map by reference (and clears the flag on
	// both sides), so spawning a per-request child costs one struct
	// allocation and zero maps; the first RegisterHistogram after
	// sharing clones copy-on-write. A shared layouts map is never
	// mutated, so lock-free reads from many children are safe.
	ownLayouts bool
	events     []Event

	// Prof is the wall-clock profiler attached to the root recorder by
	// New. Its measurements are explicitly outside the determinism
	// contract and are reported separately from the metrics dump.
	Prof *Profiler
}

// New returns an enabled root Recorder with an attached Profiler and the
// module's DefaultLayouts registered.
func New() *Recorder {
	r := &Recorder{Prof: NewProfiler(), ownLayouts: true}
	for name, edges := range DefaultLayouts {
		r.RegisterHistogram(name, edges)
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Child returns a new Recorder that inherits the parent's histogram
// layouts and records under the given trace process ID. Sweeps give each
// grid point a child (pid = grid index) and Merge the children back in
// index order. The metric maps are created lazily on first write, so a
// child on a request path that records nothing allocates one struct and
// nothing else. Register all layouts before spawning children: sharing
// freezes the parent's layout map (later registrations clone it and are
// not seen by existing children, which then fall back to BucketsSeconds
// for the new name).
func (r *Recorder) Child(pid int) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.ownLayouts = false
	layouts := r.layouts
	r.mu.Unlock()
	return &Recorder{pid: pid, layouts: layouts}
}

// RegisterHistogram fixes the bucket layout of every histogram named
// name. Edges must be strictly increasing; observations above the last
// edge land in an implicit +Inf bucket. Unregistered histograms use
// BucketsSeconds.
func (r *Recorder) RegisterHistogram(name string, edges []float64) {
	if r == nil {
		return
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %s edges not strictly increasing", name))
		}
	}
	r.mu.Lock()
	if !r.ownLayouts {
		clone := make(map[string][]float64, len(r.layouts)+1)
		for n, e := range r.layouts {
			clone[n] = e
		}
		r.layouts = clone
		r.ownLayouts = true
	}
	if r.layouts == nil {
		r.layouts = make(map[string][]float64)
	}
	r.layouts[name] = edges
	r.mu.Unlock()
}

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) { r.CountL(name, "", delta) }

// CountL adds delta to the named counter with the given label string
// (canonical "k=v,k=v" form).
func (r *Recorder) CountL(name, labels string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[key]int64) //lint:allow hotalloc: one-time lazy init on the recorder's first counter, not per call
	}
	r.counters[key{name, labels}] += delta
	r.mu.Unlock()
}

// CounterValue returns the current value of the named, labeled counter,
// or 0 if it has never been incremented (or the recorder is disabled).
func (r *Recorder) CounterValue(name, labels string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	v := r.counters[key{name, labels}]
	r.mu.Unlock()
	return v
}

// Add accumulates v into the named float sum (e.g. joules).
func (r *Recorder) Add(name string, v float64) { r.AddL(name, "", v) }

// AddL accumulates v into the named, labeled float sum.
func (r *Recorder) AddL(name, labels string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.floats == nil {
		r.floats = make(map[key]float64)
	}
	r.floats[key{name, labels}] += v
	r.mu.Unlock()
}

// Gauge sets the named gauge. Gauges are last-write-wins; set them only
// from sequential code (merging overwrites parent values in merge order).
func (r *Recorder) Gauge(name string, v float64) { r.GaugeL(name, "", v) }

// GaugeL sets the named, labeled gauge.
func (r *Recorder) GaugeL(name, labels string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[key]float64)
	}
	r.gauges[key{name, labels}] = v
	r.mu.Unlock()
}

// Observe records v into the named histogram.
func (r *Recorder) Observe(name string, v float64) { r.ObserveL(name, "", v) }

// ObserveL records v into the named, labeled histogram.
func (r *Recorder) ObserveL(name, labels string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hist(key{name, labels})
	h.observe(v)
	r.mu.Unlock()
}

// ObserveEx records v into the named histogram and pins it as the
// exemplar of the bucket it lands in. exLabels is a canonical
// "k=v,k=v" label set identifying the originating event — by convention
// `trace_id=<hex>` — and is surfaced by Snapshot and the OpenMetrics
// export, never by the deterministic WriteMetrics dump (trace IDs are
// wall-clock-seeded and would break byte-stable dumps). An empty
// exLabels degenerates to Observe.
func (r *Recorder) ObserveEx(name string, v float64, exLabels string) {
	r.ObserveExL(name, "", v, exLabels)
}

// ObserveExL is ObserveEx for a labeled histogram instance.
func (r *Recorder) ObserveExL(name, labels string, v float64, exLabels string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hist(key{name, labels})
	h.observeEx(v, exLabels)
	r.mu.Unlock()
}

// hist returns the histogram for k, creating it from the registered
// layout (default BucketsSeconds) on first use. Callers hold r.mu.
func (r *Recorder) hist(k key) *histogram {
	h := r.hists[k]
	if h == nil {
		edges := r.layouts[k.name]
		if edges == nil {
			edges = BucketsSeconds
		}
		h = newHistogram(edges)
		if r.hists == nil {
			r.hists = make(map[key]*histogram) //lint:allow hotalloc: one-time lazy init on the recorder's first histogram, not per call
		}
		r.hists[k] = h
	}
	return h
}

// Merge folds a child recorder into r: counters and float sums add,
// histograms add bucket-wise, gauges overwrite, trace events append.
// Metrics are iterated in sorted key order so repeated merges of the same
// children in the same order produce bit-identical float sums regardless
// of how the children were computed (the worker-count independence
// guarantee).
func (r *Recorder) Merge(c *Recorder) { r.merge(c, true) }

// MergeMetrics folds only the child's metric state into r, leaving the
// child's trace events behind. A long-running server merges per-request
// children this way: the root recorder's memory stays bounded by the
// metric cardinality while the request's trace lives (and dies) with the
// bounded replay ring that owns the child.
func (r *Recorder) MergeMetrics(c *Recorder) { r.merge(c, false) }

func (r *Recorder) merge(c *Recorder, events bool) {
	if r == nil || c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(c.counters) > 0 && r.counters == nil {
		r.counters = make(map[key]int64, len(c.counters))
	}
	for _, k := range sortedKeys(c.counters) {
		r.counters[k] += c.counters[k]
	}
	if len(c.floats) > 0 && r.floats == nil {
		r.floats = make(map[key]float64, len(c.floats))
	}
	for _, k := range sortedKeys(c.floats) {
		r.floats[k] += c.floats[k]
	}
	if len(c.gauges) > 0 && r.gauges == nil {
		r.gauges = make(map[key]float64, len(c.gauges))
	}
	for _, k := range sortedKeys(c.gauges) {
		r.gauges[k] = c.gauges[k]
	}
	if len(c.hists) > 0 && r.hists == nil {
		r.hists = make(map[key]*histogram, len(c.hists))
	}
	hk := make([]key, 0, len(c.hists))
	for k := range c.hists {
		hk = append(hk, k)
	}
	sortKeys(hk)
	for _, k := range hk {
		ch := c.hists[k]
		h := r.hists[k]
		if h == nil {
			h = newHistogram(ch.edges)
			r.hists[k] = h
		}
		h.merge(ch)
	}
	if events {
		r.events = append(r.events, c.events...)
	}
}

func sortedKeys[V any](m map[key]V) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []key) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].labels < ks[j].labels
	})
}

// ftoa formats floats for dumps with full round-trip precision, so equal
// dumps imply bit-equal values.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteMetrics dumps every metric in a stable text format, sorted by
// (name, labels): one line per counter/float/gauge, a summary line plus
// cumulative "le=" bucket lines per histogram. The dump of a given
// computation is byte-identical across runs and worker counts.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	b.WriteString("# sdem telemetry metrics v1\n")
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, r.counters[k])
	}
	for _, k := range sortedKeys(r.floats) {
		fmt.Fprintf(&b, "float %s %s\n", k, ftoa(r.floats[k]))
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "gauge %s %s\n", k, ftoa(r.gauges[k]))
	}
	hk := make([]key, 0, len(r.hists))
	for k := range r.hists {
		hk = append(hk, k)
	}
	sortKeys(hk)
	for _, k := range hk {
		h := r.hists[k]
		mn, mx := h.min, h.max
		if h.count == 0 {
			mn, mx = 0, 0
		}
		fmt.Fprintf(&b, "hist %s count=%d sum=%s min=%s max=%s\n", k, h.count, ftoa(h.sum), ftoa(mn), ftoa(mx))
		var cum uint64
		for i, e := range h.edges {
			cum += h.counts[i]
			fmt.Fprintf(&b, "hist %s le=%s %d\n", k, ftoa(e), cum)
		}
		cum += h.counts[len(h.edges)]
		fmt.Fprintf(&b, "hist %s le=+Inf %d\n", k, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
