// Package series provides deterministic windowed time series over a
// telemetry.Recorder: counter/float deltas, gauge samples, and quantile
// sketches captured per window of a campaign clock.
//
// The window clock is never wall time. Soak and experiment campaigns key
// windows on virtual time; the serve path keys them on the monotone
// completion ordinal. That rule is what keeps series dumps byte-identical
// across repeat runs and `-workers` counts at a fixed seed, and it keeps
// the telemetrycheck wall-clock quarantine intact (this package imports
// no clock at all). See DESIGN.md §12.
package series

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DefaultAlpha is the relative accuracy of sketches built by NewSketch:
// every reported quantile is within ±1% (relative) of an exact value at
// that rank.
const DefaultAlpha = 0.01

// sketchZeroMin is the smallest magnitude tracked by log buckets; values
// in [0, sketchZeroMin) land in the exact zero bucket. Anything this
// small is below every tolerance in the module, so collapsing it to zero
// loses nothing.
const sketchZeroMin = 1e-12

// Sketch is a mergeable log-bucket quantile sketch (DDSketch-shaped)
// with deterministic bucket edges: bucket i covers (gamma^(i-1),
// gamma^i], gamma = (1+alpha)/(1-alpha), so two sketches built with the
// same alpha — on one machine or many workers — always agree bucket for
// bucket and merge by adding counts. Quantiles are answered to relative
// rank error alpha. Negative observations are rejected (the module's
// sketched series — latencies, energies — are non-negative by
// construction).
//
// The zero Sketch is not usable; call NewSketch. A Sketch is not safe
// for concurrent use.
type Sketch struct {
	alpha      float64
	gamma      float64
	invLnGamma float64

	counts map[int]uint64 // log bucket index -> count
	zero   uint64         // observations in [0, sketchZeroMin)
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewSketch returns an empty sketch with the given relative accuracy
// (0 < alpha < 1). Pass DefaultAlpha unless a test needs another bound.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("series: sketch alpha %g out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:      alpha,
		gamma:      gamma,
		invLnGamma: 1 / math.Log(gamma),
		counts:     make(map[int]uint64),
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Sum returns the sum of all observations.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	return s.sum
}

// bucketOf maps a value (>= sketchZeroMin) to its log bucket index, the
// smallest i with gamma^i >= v.
func (s *Sketch) bucketOf(v float64) int {
	i := int(math.Ceil(math.Log(v) * s.invLnGamma))
	// Guard the float rounding at exact bucket edges: the representative
	// of bucket i must cover v within the alpha bound, which holds as
	// long as gamma^(i-1) < v <= gamma^i.
	if math.Pow(s.gamma, float64(i-1)) >= v {
		i--
	} else if math.Pow(s.gamma, float64(i)) < v {
		i++
	}
	return i
}

// representative returns the value reported for bucket i: the midpoint
// 2*gamma^i/(gamma+1), which is within relative alpha of every value in
// the bucket's range (gamma^(i-1), gamma^i].
func (s *Sketch) representative(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Observe adds one observation. Negative values are clamped to zero
// (they cannot occur in the series this module sketches; clamping keeps
// a stray -0.0 or tiny negative rounding residue from poisoning state).
func (s *Sketch) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	s.count++
	s.sum += v
	s.min = math.Min(s.min, v)
	s.max = math.Max(s.max, v)
	if v < sketchZeroMin {
		s.zero++
		return
	}
	s.counts[s.bucketOf(v)]++
}

// Merge folds other into s. Both sketches must share the same alpha
// (bucket layouts are incompatible otherwise).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if !sameAlpha(s.alpha, other.alpha) {
		return fmt.Errorf("series: merging sketches with alpha %g and %g", s.alpha, other.alpha)
	}
	if other.count == 0 {
		return nil
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.zero += other.zero
	s.count += other.count
	s.sum += other.sum
	s.min = math.Min(s.min, other.min)
	s.max = math.Max(s.max, other.max)
	return nil
}

// sameAlpha compares sketch accuracies for merge compatibility. Alphas
// come from the same literal constant in practice, so exact equality is
// the right test — a loose compare would merge incompatible layouts.
func sameAlpha(a, b float64) bool {
	//lint:allow floatcmp: bucket layouts are only compatible at the exact same alpha
	return a == b
}

// Quantile returns the value at quantile q in [0, 1] using the
// nearest-rank rule (rank ceil(q*n), rank 1 for q=0). The answer is a
// bucket representative clamped to the observed [min, max], so it is
// within relative error alpha of the exact order statistic. An empty
// sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zero {
		return s.clamp(0)
	}
	cum := s.zero
	for _, i := range s.sortedBuckets() {
		cum += s.counts[i]
		if cum >= rank {
			return s.clamp(s.representative(i))
		}
	}
	return s.clamp(s.max)
}

// Min returns the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.max
}

// clamp pins a representative inside the observed range, which both
// tightens the estimate and makes q=0 / q=1 exact.
func (s *Sketch) clamp(v float64) float64 {
	return math.Min(math.Max(v, s.min), s.max)
}

// sortedBuckets returns the populated bucket indices in ascending order.
func (s *Sketch) sortedBuckets() []int {
	idx := make([]int, 0, len(s.counts))
	for i := range s.counts {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Clone returns an independent deep copy (nil for a nil sketch).
func (s *Sketch) Clone() *Sketch {
	if s == nil {
		return nil
	}
	c := *s
	c.counts = make(map[int]uint64, len(s.counts))
	for i, n := range s.counts {
		c.counts[i] = n
	}
	return &c
}

// MarshalJSON encodes the sketch as a fixed-field object with buckets as
// a numerically sorted [index, count] pair list — byte-deterministic for
// a fixed state, unlike a JSON map keyed by stringified indices (which
// encoding/json would sort lexically).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString(`{"alpha":`)
	b.WriteString(ftoa(s.alpha))
	b.WriteString(`,"count":`)
	b.WriteString(strconv.FormatUint(s.count, 10))
	b.WriteString(`,"sum":`)
	b.WriteString(ftoa(s.sum))
	if s.count > 0 {
		b.WriteString(`,"min":`)
		b.WriteString(ftoa(s.min))
		b.WriteString(`,"max":`)
		b.WriteString(ftoa(s.max))
	}
	if s.zero > 0 {
		b.WriteString(`,"zero":`)
		b.WriteString(strconv.FormatUint(s.zero, 10))
	}
	b.WriteString(`,"buckets":[`)
	for n, i := range s.sortedBuckets() {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(s.counts[i], 10))
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
	return []byte(b.String()), nil
}

// sketchWire is the decode shape of MarshalJSON's output.
type sketchWire struct {
	Alpha   float64    `json:"alpha"`
	Count   uint64     `json:"count"`
	Sum     float64    `json:"sum"`
	Min     float64    `json:"min"`
	Max     float64    `json:"max"`
	Zero    uint64     `json:"zero"`
	Buckets [][2]int64 `json:"buckets"`
}

// UnmarshalJSON decodes a sketch previously encoded by MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var w sketchWire
	if err := unmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("series: decoding sketch: %w", err)
	}
	if !(w.Alpha > 0 && w.Alpha < 1) {
		return fmt.Errorf("series: decoded sketch alpha %g out of (0,1)", w.Alpha)
	}
	n := NewSketch(w.Alpha)
	n.count = w.Count
	n.sum = w.Sum
	n.zero = w.Zero
	if w.Count > 0 {
		n.min, n.max = w.Min, w.Max
	}
	for _, p := range w.Buckets {
		if p[1] < 0 {
			return fmt.Errorf("series: decoded sketch bucket %d has negative count %d", p[0], p[1])
		}
		n.counts[int(p[0])] += uint64(p[1])
	}
	*s = *n
	return nil
}

// ftoa formats a float in the module's canonical round-trip form (the
// same formatting telemetry.WriteMetrics uses).
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
