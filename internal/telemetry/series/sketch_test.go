package series

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSketchRankErrorBound is the satellite property test: every
// reported quantile must be within the configured relative rank error of
// the exact order statistic, across distributions that stress both dense
// and many-decade value ranges.
func TestSketchRankErrorBound(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	dists := map[string]func(*rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() * 1e-3 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 3) },
		"heavy":     func(r *rand.Rand) float64 { return math.Pow(r.Float64(), -2) - 1 },
		"mixture": func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 0 // exact-zero bucket traffic
			}
			return 1e-6 + r.Float64()*1e6
		},
	}
	for _, alpha := range []float64{0.01, 0.05} {
		for name, gen := range dists {
			r := rand.New(rand.NewSource(42))
			sk := NewSketch(alpha)
			vals := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := gen(r)
				vals = append(vals, v)
				sk.Observe(v)
			}
			sort.Float64s(vals)
			for _, q := range quantiles {
				got := sk.Quantile(q)
				rank := int(math.Ceil(q * float64(len(vals))))
				if rank < 1 {
					rank = 1
				}
				exact := vals[rank-1]
				if math.Abs(got-exact) > alpha*exact+sketchZeroMin {
					t.Errorf("%s alpha=%g q=%g: sketch %g vs exact %g exceeds relative bound",
						name, alpha, q, got, exact)
				}
			}
		}
	}
}

// TestSketchMergeEqualsUnion: merging shards must reproduce the sketch
// of the union stream exactly, bucket for bucket.
func TestSketchMergeEqualsUnion(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	whole := NewSketch(DefaultAlpha)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSketch(DefaultAlpha)
	}
	for i := 0; i < 10000; i++ {
		v := math.Exp(r.NormFloat64() * 2)
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	merged := NewSketch(DefaultAlpha)
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	// The sum accumulates in shard order, so it matches only to float
	// addition-reordering tolerance; buckets, counts, and extrema must be
	// exact. Normalize the sum before the byte comparison.
	if math.Abs(merged.sum-whole.sum) > 1e-9*math.Max(1, math.Abs(whole.sum)) {
		t.Fatalf("merged sum %g vs union sum %g beyond 1e-9", merged.sum, whole.sum)
	}
	merged.sum = whole.sum
	wb, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(mb) {
		t.Fatalf("merged sketch differs from union sketch:\n%s\n%s", mb, wb)
	}
	if err := merged.Merge(NewSketch(0.5)); err == nil {
		t.Fatal("merging mismatched alphas must fail")
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sk := NewSketch(DefaultAlpha)
	for i := 0; i < 5000; i++ {
		sk.Observe(r.ExpFloat64())
	}
	sk.Observe(0)
	b1, err := json.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("sketch JSON round trip not byte-identical:\n%s\n%s", b1, b2)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got, want := back.Quantile(q), sk.Quantile(q); got != want {
			t.Fatalf("q%g after round trip: %g != %g", q, got, want)
		}
	}
}

func TestSketchEmptyAndEdgeCases(t *testing.T) {
	var nilSk *Sketch
	if nilSk.Count() != 0 || nilSk.Quantile(0.5) != 0 || nilSk.Min() != 0 || nilSk.Max() != 0 {
		t.Fatal("nil sketch accessors must be zero")
	}
	sk := NewSketch(DefaultAlpha)
	if sk.Quantile(0.99) != 0 {
		t.Fatal("empty sketch quantile must be 0")
	}
	sk.Observe(5)
	if got := sk.Quantile(0.5); math.Abs(got-5) > 5*DefaultAlpha {
		t.Fatalf("single observation p50 = %g, want ~5", got)
	}
	if sk.Quantile(0) != sk.Quantile(1) {
		t.Fatal("single observation: p0 and p100 must agree")
	}
	sk.Observe(-3) // clamped to zero, not an error
	if sk.Min() != 0 {
		t.Fatalf("negative observation must clamp to 0, min=%g", sk.Min())
	}
	// Exact bucket-edge values stay within their bound.
	edge := NewSketch(DefaultAlpha)
	g := (1 + DefaultAlpha) / (1 - DefaultAlpha)
	for i := -3; i <= 3; i++ {
		edge.Observe(math.Pow(g, float64(i)))
	}
	for q := 0.0; q <= 1.0; q += 0.125 {
		got := edge.Quantile(q)
		if got < edge.Min() || got > edge.Max() {
			t.Fatalf("edge-value quantile %g out of observed range", got)
		}
	}
}
