package series

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sdem/internal/telemetry"
)

// event is one synthetic recorder mutation at a virtual-time clock.
type event struct {
	clock   float64
	counter string
	n       int64
	float   string
	fv      float64
	gauge   string
	gv      float64
	obs     string
	ov      float64
	hist    string
	hv      float64
}

// genEvents builds a deterministic mixed workload of recorder traffic.
func genEvents(seed int64, n int) []event {
	r := rand.New(rand.NewSource(seed))
	evs := make([]event, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += r.ExpFloat64() * 0.5
		ev := event{clock: clock}
		switch r.Intn(5) {
		case 0:
			ev.counter, ev.n = fmt.Sprintf("c%d", r.Intn(3)), int64(1+r.Intn(4))
		case 1:
			ev.float, ev.fv = fmt.Sprintf("f%d", r.Intn(3)), r.Float64()
		case 2:
			ev.gauge, ev.gv = "depth", r.Float64()*10
		case 3:
			ev.obs, ev.ov = "resp", r.ExpFloat64()*0.01
		case 4:
			ev.hist, ev.hv = "lat", r.ExpFloat64()*0.1
		}
		evs = append(evs, ev)
	}
	return evs
}

// replay drives the events through a fresh recorder + collector at the
// given window interval, advancing the clock at every event.
func replay(t *testing.T, evs []event, interval float64) *Series {
	t.Helper()
	rec := telemetry.New()
	rec.RegisterHistogram("lat", telemetry.BucketsSeconds)
	col, err := NewCollector(rec, ClockVirtual, interval)
	if err != nil {
		t.Fatal(err)
	}
	col.Advance(0)
	end := 0.0
	for _, ev := range evs {
		col.Advance(ev.clock)
		switch {
		case ev.counter != "":
			rec.Count(ev.counter, ev.n)
		case ev.float != "":
			rec.Add(ev.float, ev.fv)
		case ev.gauge != "":
			rec.Gauge(ev.gauge, ev.gv)
		case ev.obs != "":
			col.Observe(ev.obs, ev.ov)
		case ev.hist != "":
			rec.Observe(ev.hist, ev.hv)
		}
		end = ev.clock
	}
	return col.Finish(end)
}

// TestCoalesceEqualsRecompute is satellite property (a): capturing fine
// windows and coalescing them must equal capturing coarse windows
// directly — exactly for counts, sketches, and gauges, and to 1e-9 for
// float accumulations.
func TestCoalesceEqualsRecompute(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		evs := genEvents(seed, 4000)
		fine := replay(t, evs, 5)
		coarse := replay(t, evs, 10)
		co, err := fine.Coalesce(2)
		if err != nil {
			t.Fatal(err)
		}
		if co.Interval != coarse.Interval {
			t.Fatalf("coalesced interval %g != coarse %g", co.Interval, coarse.Interval)
		}
		if len(co.Windows) != len(coarse.Windows) {
			t.Fatalf("seed %d: coalesced %d windows, coarse %d", seed, len(co.Windows), len(coarse.Windows))
		}
		for i := range co.Windows {
			a, b := co.Windows[i], coarse.Windows[i]
			if len(a.Counters) != len(b.Counters) {
				t.Fatalf("window %d: counter keys differ: %v vs %v", i, a.Counters, b.Counters)
			}
			for k, av := range a.Counters {
				if av != b.Counters[k] {
					t.Fatalf("window %d counter %s: %d != %d", i, k, av, b.Counters[k])
				}
			}
			for k, av := range a.Floats {
				if math.Abs(av-b.Floats[k]) > 1e-9*math.Max(1, math.Abs(av)) {
					t.Fatalf("window %d float %s: %g != %g beyond 1e-9", i, k, av, b.Floats[k])
				}
			}
			for k, av := range a.Gauges {
				if av != b.Gauges[k] {
					t.Fatalf("window %d gauge %s: %g != %g", i, k, av, b.Gauges[k])
				}
			}
			for k, av := range a.Hists {
				bv := b.Hists[k]
				if av.Count != bv.Count || math.Abs(av.Sum-bv.Sum) > 1e-9*math.Max(1, math.Abs(av.Sum)) {
					t.Fatalf("window %d hist %s: %+v != %+v", i, k, av, bv)
				}
			}
			for k, av := range a.Sketches {
				bv := b.Sketches[k]
				if av.Count() != bv.Count() {
					t.Fatalf("window %d sketch %s: count %d != %d", i, k, av.Count(), bv.Count())
				}
				for _, q := range []float64{0.5, 0.99} {
					if av.Quantile(q) != bv.Quantile(q) {
						t.Fatalf("window %d sketch %s q%g differs", i, k, q)
					}
				}
			}
		}
	}
}

// TestJSONLRoundTripByteIdentical: dump -> read -> dump must be
// byte-identical, and repeat replays of the same events must produce
// byte-identical dumps (the repeat-run determinism contract).
func TestJSONLRoundTripByteIdentical(t *testing.T) {
	evs := genEvents(9, 3000)
	s1 := replay(t, evs, 7)
	s2 := replay(t, evs, 7)
	var b1, b2 bytes.Buffer
	if err := s1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("repeat replays produced different dumps")
	}
	back, err := ReadJSONL(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := back.WriteJSONL(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatalf("JSONL round trip not byte-identical:\nfirst: %d bytes\nagain: %d bytes", b1.Len(), b3.Len())
	}
}

func TestReadJSONLRejectsCorruption(t *testing.T) {
	evs := genEvents(4, 500)
	s := replay(t, evs, 5)
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	// Truncated dump: header window count no longer matches.
	lines := bytes.Split([]byte(full), []byte("\n"))
	if len(lines) > 3 {
		trunc := bytes.Join(lines[:len(lines)-2], []byte("\n"))
		if _, err := ReadJSONL(bytes.NewReader(trunc)); err == nil {
			t.Fatal("truncated dump must fail")
		}
	}
	if _, err := ReadJSONL(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty dump must fail")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"series":"bogus.v9","clock":"virtual_s","interval":1,"origin":0,"alpha":0.01,"windows":0}`))); err == nil {
		t.Fatal("wrong version must fail")
	}
}

func TestCollectorWindowing(t *testing.T) {
	rec := telemetry.New()
	col, err := NewCollector(rec, ClockVirtual, 10)
	if err != nil {
		t.Fatal(err)
	}
	col.Advance(0)
	rec.Count("jobs", 3)
	col.Advance(5) // still window 0
	rec.Count("jobs", 2)
	col.Advance(25) // crosses into window 2: window 0 captures, window 1 empty
	rec.Count("jobs", 1)
	s := col.Finish(29)
	if len(s.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(s.Windows))
	}
	if got := s.Windows[0].Counters["jobs"]; got != 5 {
		t.Fatalf("window 0 jobs delta = %d, want 5", got)
	}
	if !s.Windows[1].Empty() {
		t.Fatalf("gap window 1 not empty: %+v", s.Windows[1])
	}
	if got := s.Windows[2].Counters["jobs"]; got != 1 {
		t.Fatalf("window 2 jobs delta = %d, want 1", got)
	}
	if s.WindowStart(2) != 20 {
		t.Fatalf("window 2 start = %g, want 20", s.WindowStart(2))
	}
	// Finished collectors ignore further traffic.
	col.Advance(100)
	col.Observe("late", 1)
	if again := col.Snapshot(); len(again.Windows) != 3 {
		t.Fatal("finished collector must stop capturing")
	}
}

func TestCollectorOrdinalTick(t *testing.T) {
	rec := telemetry.New()
	col, err := NewCollector(rec, ClockOrdinal, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec.Count("req", 1)
		col.TickWith("lat", float64(i))
	}
	s := col.Snapshot()
	if len(s.Windows) != 2 {
		t.Fatalf("10 ticks at interval 4: got %d complete windows, want 2", len(s.Windows))
	}
	for i, w := range s.Windows {
		if got := w.Counters["req"]; got != 4 {
			t.Fatalf("window %d req delta = %d, want 4", i, got)
		}
		if got := w.Sketches["lat"].Count(); got != 4 {
			t.Fatalf("window %d lat observations = %d, want 4", i, got)
		}
	}
	fin := col.Finish(10)
	if len(fin.Windows) != 3 {
		t.Fatalf("finish must flush the partial window: got %d", len(fin.Windows))
	}
	if got := fin.Windows[2].Counters["req"]; got != 2 {
		t.Fatalf("partial window req delta = %d, want 2", got)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Advance(1)
	c.Observe("x", 1)
	c.Tick()
	c.TickWith("x", 1)
	if c.Snapshot() != nil || c.Finish(2) != nil {
		t.Fatal("nil collector must return nil series")
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil, ClockVirtual, 0); err == nil {
		t.Fatal("zero interval must fail")
	}
	if _, err := NewCollector(nil, "wall_s", 1); err == nil {
		t.Fatal("unknown clock must fail")
	}
}
