package series

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"sdem/internal/telemetry"
)

// Window clocks. The clock names what one unit of the window axis means;
// wall time is deliberately not an option (DESIGN.md §12).
const (
	// ClockVirtual keys windows on simulated seconds (soak, experiments).
	ClockVirtual = "virtual_s"
	// ClockOrdinal keys windows on the monotone completion ordinal (serve).
	ClockOrdinal = "ordinal"
)

// Version identifies the JSONL dump layout.
const Version = "sdem.series.v1"

// HistDelta is the per-window change of one recorder histogram: the
// observation count and sum added during the window, and the sparse
// per-bucket count deltas as [bucket index, delta] pairs in ascending
// bucket order (the index len(edges) is the +Inf overflow bucket, as in
// telemetry.HistPoint).
type HistDelta struct {
	Count   uint64     `json:"count"`
	Sum     float64    `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Window is one aggregation interval of a campaign. Index is the window
// ordinal; the window covers clock values [Origin+Index*Interval,
// Origin+(Index+1)*Interval) of the owning Series. Counters and Floats
// hold deltas over the window (only keys that changed appear), Gauges
// holds the last sampled value of every gauge at the window's capture,
// Hists holds histogram deltas, and Sketches holds the quantile sketches
// of values observed during the window. Keys are "name" or
// "name{labels}" with the recorder's canonical label form. A captured
// Window and everything it references is immutable.
type Window struct {
	Index    int64                `json:"w"`
	Counters map[string]int64     `json:"counters,omitempty"`
	Floats   map[string]float64   `json:"floats,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Hists    map[string]HistDelta `json:"hists,omitempty"`
	Sketches map[string]*Sketch   `json:"sketches,omitempty"`
}

// Empty reports whether the window recorded no change at all (gauge
// samples alone do not count: they are carried state, not activity).
func (w Window) Empty() bool {
	return len(w.Counters) == 0 && len(w.Floats) == 0 && len(w.Hists) == 0 && len(w.Sketches) == 0
}

// Series is a complete windowed campaign: contiguous windows (indices
// 0..n-1, gap windows present but empty) over one clock.
type Series struct {
	Clock    string   `json:"clock"`
	Interval float64  `json:"interval"`
	Origin   float64  `json:"origin"`
	Alpha    float64  `json:"alpha"`
	Windows  []Window `json:"-"`
}

// WindowStart returns the clock value at which window idx opens.
func (s *Series) WindowStart(idx int64) float64 { return s.Origin + float64(idx)*s.Interval }

// header is the first JSONL record of a dump.
type header struct {
	Series   string  `json:"series"`
	Clock    string  `json:"clock"`
	Interval float64 `json:"interval"`
	Origin   float64 `json:"origin"`
	Alpha    float64 `json:"alpha"`
	Windows  int     `json:"windows"`
}

// WriteJSONL writes the dump: one header line, then one line per window
// in index order. The output is byte-deterministic for a fixed series
// (encoding/json sorts map keys; sketches marshal sorted buckets).
func (s *Series) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Series: Version, Clock: s.Clock, Interval: s.Interval,
		Origin: s.Origin, Alpha: s.Alpha, Windows: len(s.Windows),
	}); err != nil {
		return err
	}
	for i := range s.Windows {
		if err := enc.Encode(&s.Windows[i]); err != nil {
			return fmt.Errorf("series: encoding window %d: %w", s.Windows[i].Index, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a dump written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("series: empty dump")
	}
	var h header
	if err := unmarshalStrict(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("series: decoding header: %w", err)
	}
	if h.Series != Version {
		return nil, fmt.Errorf("series: dump version %q, want %q", h.Series, Version)
	}
	if h.Interval <= 0 {
		return nil, fmt.Errorf("series: dump interval %g must be positive", h.Interval)
	}
	out := &Series{Clock: h.Clock, Interval: h.Interval, Origin: h.Origin, Alpha: h.Alpha}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var w Window
		if err := unmarshalStrict(line, &w); err != nil {
			return nil, fmt.Errorf("series: decoding window %d: %w", len(out.Windows), err)
		}
		if w.Index != int64(len(out.Windows)) {
			return nil, fmt.Errorf("series: window %d out of order (expected index %d)", w.Index, len(out.Windows))
		}
		out.Windows = append(out.Windows, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if h.Windows != len(out.Windows) {
		return nil, fmt.Errorf("series: dump truncated: header says %d windows, read %d", h.Windows, len(out.Windows))
	}
	return out, nil
}

// unmarshalStrict decodes JSON rejecting unknown fields, so a corrupted
// or mislabeled dump fails loudly instead of silently dropping data.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Coalesce merges every run of k consecutive windows into one, returning
// a new series with interval k times coarser. Counter, float, histogram,
// and sketch deltas add across the run; gauges take the last captured
// sample in the run (the same value a coarser collector would have
// sampled at its boundary). Merging is exact for counts and sketch
// buckets and associative-order-stable for floats (windows fold in index
// order over sorted keys), which is what makes per-window capture plus
// Coalesce equal a whole-window recompute to float tolerance.
func (s *Series) Coalesce(k int) (*Series, error) {
	if k <= 0 {
		return nil, fmt.Errorf("series: coalesce factor %d must be positive", k)
	}
	out := &Series{Clock: s.Clock, Interval: s.Interval * float64(k), Origin: s.Origin, Alpha: s.Alpha}
	for i := 0; i < len(s.Windows); i += k {
		j := i + k
		if j > len(s.Windows) {
			j = len(s.Windows)
		}
		m, err := MergeWindows(s.Windows[i:j])
		if err != nil {
			return nil, err
		}
		m.Index = int64(i / k)
		out.Windows = append(out.Windows, m)
	}
	return out, nil
}

// MergeWindows folds consecutive windows into one (the first window's
// index is kept). Deltas add in window order; gauges take the last
// window's sample.
func MergeWindows(ws []Window) (Window, error) {
	if len(ws) == 0 {
		return Window{}, fmt.Errorf("series: merging zero windows")
	}
	out := Window{Index: ws[0].Index}
	for _, w := range ws {
		for _, k := range sortedKeys(w.Counters) {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] += w.Counters[k]
		}
		for _, k := range sortedKeys(w.Floats) {
			if out.Floats == nil {
				out.Floats = make(map[string]float64)
			}
			out.Floats[k] += w.Floats[k]
		}
		if len(w.Gauges) > 0 {
			g := make(map[string]float64, len(w.Gauges))
			for _, k := range sortedKeys(w.Gauges) {
				g[k] = w.Gauges[k]
			}
			out.Gauges = g
		}
		for _, k := range sortedKeys(w.Hists) {
			if out.Hists == nil {
				out.Hists = make(map[string]HistDelta)
			}
			out.Hists[k] = mergeHistDelta(out.Hists[k], w.Hists[k])
		}
		for _, k := range sortedKeys(w.Sketches) {
			if out.Sketches == nil {
				out.Sketches = make(map[string]*Sketch)
			}
			cur, ok := out.Sketches[k]
			if !ok {
				out.Sketches[k] = w.Sketches[k].Clone()
				continue
			}
			if err := cur.Merge(w.Sketches[k]); err != nil {
				return Window{}, fmt.Errorf("series: window %d sketch %q: %w", w.Index, k, err)
			}
		}
	}
	return out, nil
}

func mergeHistDelta(a, b HistDelta) HistDelta {
	out := HistDelta{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	sums := make(map[int64]int64)
	for _, p := range a.Buckets {
		sums[p[0]] += p[1]
	}
	for _, p := range b.Buckets {
		sums[p[0]] += p[1]
	}
	idx := make([]int64, 0, len(sums))
	for i := range sums {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	for _, i := range idx {
		out.Buckets = append(out.Buckets, [2]int64{i, sums[i]})
	}
	return out
}

// sortedKeys returns the map's keys in ascending order; folding maps
// through it keeps every float accumulation order-deterministic.
func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Collector captures windows from a live Recorder. Attach it to a
// campaign clock by calling Advance(clock) at event boundaries (virtual
// time) or Tick/TickWith per completion (ordinal); each boundary
// crossing snapshots the recorder and stores the delta against the
// previous capture as one Window. Feed quantile sketches with Observe —
// observations land in the window open at observation time.
//
// Windows attribute a delta to the window that was current when the
// recording happened (within one Advance stride), so the clock should be
// advanced at least once per window interval for sharp attribution.
//
// A nil *Collector is a no-op on every method, so call sites can thread
// an optional collector without branching. Collector methods are safe
// for concurrent use.
type Collector struct {
	mu       sync.Mutex
	rec      *telemetry.Recorder
	clock    string
	interval float64
	alpha    float64

	started  bool
	finished bool
	origin   float64
	cur      int64 // index of the open window
	ordinal  int64 // Tick clock
	prev     telemetry.Snapshot
	live     map[string]*Sketch
	windows  []Window
}

// NewCollector starts a collector over rec with the given clock label
// (ClockVirtual or ClockOrdinal) and window interval in clock units.
// Sketches use DefaultAlpha.
func NewCollector(rec *telemetry.Recorder, clock string, interval float64) (*Collector, error) {
	if interval <= 0 || math.IsInf(interval, 0) || math.IsNaN(interval) {
		return nil, fmt.Errorf("series: window interval %g must be positive and finite", interval)
	}
	c := &Collector{rec: rec, clock: clock, interval: interval, alpha: DefaultAlpha}
	switch clock {
	case ClockVirtual:
		// Origin pins lazily to the first Advance (virtual time may open
		// anywhere, e.g. at the first release).
	case ClockOrdinal:
		// The ordinal clock always opens at 0, and the baseline snapshot
		// must predate the first completion's metrics, so start now.
		c.started = true
		c.prev = rec.Snapshot()
	default:
		return nil, fmt.Errorf("series: unknown window clock %q", clock)
	}
	return c, nil
}

// Observe feeds one value into the named sketch of the current window.
func (c *Collector) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(name, v)
}

func (c *Collector) observeLocked(name string, v float64) {
	if c.finished {
		return
	}
	if c.live == nil {
		c.live = make(map[string]*Sketch)
	}
	sk, ok := c.live[name]
	if !ok {
		sk = NewSketch(c.alpha)
		c.live[name] = sk
	}
	sk.Observe(v)
}

// Advance moves the window clock to clock, capturing every window whose
// end has been passed. The first call pins the series origin to the
// enclosing interval boundary.
func (c *Collector) Advance(clock float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(clock)
}

func (c *Collector) advanceLocked(clock float64) {
	if c.finished || math.IsNaN(clock) || math.IsInf(clock, 0) {
		return
	}
	if !c.started {
		c.started = true
		c.origin = math.Floor(clock/c.interval) * c.interval
		c.cur = 0
		c.prev = c.rec.Snapshot()
		return
	}
	idx := int64(math.Floor((clock - c.origin) / c.interval))
	if idx <= c.cur {
		return
	}
	c.captureLocked(idx)
}

// captureLocked closes the current window (attributing all recorder
// change since the previous capture to it), emits empty windows up to
// next, and opens window next.
func (c *Collector) captureLocked(next int64) {
	snap := c.rec.Snapshot()
	w := diffWindow(c.cur, c.prev, snap)
	w.Sketches = c.live
	if len(w.Sketches) == 0 {
		w.Sketches = nil
	}
	c.live = nil
	c.prev = snap
	c.windows = append(c.windows, w)
	for i := c.cur + 1; i < next; i++ {
		c.windows = append(c.windows, Window{Index: i})
	}
	c.cur = next
}

// Tick advances an ordinal-clock collector by one completion.
func (c *Collector) Tick() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ordinal++
	c.advanceLocked(float64(c.ordinal))
}

// TickWith records one sketch observation and advances the ordinal clock
// by one completion, atomically, so the observation always lands in the
// completing request's own window.
func (c *Collector) TickWith(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(name, v)
	c.ordinal++
	c.advanceLocked(float64(c.ordinal))
}

// Finish advances to clock, captures the final (possibly partial)
// window, and returns the completed series. The collector ignores all
// further calls.
func (c *Collector) Finish(clock float64) *Series {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(clock)
	if c.started && !c.finished {
		c.captureLocked(c.cur + 1)
	}
	c.finished = true
	return c.snapshotLocked()
}

// Snapshot returns the series captured so far (completed windows only;
// the open window is not included until its boundary passes). The
// returned series and its windows are immutable.
func (c *Collector) Snapshot() *Series {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Collector) snapshotLocked() *Series {
	return &Series{
		Clock:    c.clock,
		Interval: c.interval,
		Origin:   c.origin,
		Alpha:    c.alpha,
		Windows:  append([]Window(nil), c.windows...),
	}
}

// diffWindow computes one window from two consecutive snapshots. Both
// snapshots are sorted by (Name, Labels), so every diff is a linear
// merge walk — no map iteration anywhere on this path.
func diffWindow(idx int64, prev, cur telemetry.Snapshot) Window {
	w := Window{Index: idx}
	// Counters: monotone, so a key missing from prev starts at 0.
	pi := 0
	for _, cp := range cur.Counters {
		for pi < len(prev.Counters) && pointLess(prev.Counters[pi].Name, prev.Counters[pi].Labels, cp.Name, cp.Labels) {
			pi++
		}
		base := int64(0)
		if pi < len(prev.Counters) && prev.Counters[pi].Name == cp.Name && prev.Counters[pi].Labels == cp.Labels {
			base = prev.Counters[pi].Value
		}
		if d := cp.Value - base; d != 0 {
			if w.Counters == nil {
				w.Counters = make(map[string]int64)
			}
			w.Counters[pointKey(cp.Name, cp.Labels)] = d
		}
	}
	pi = 0
	for _, fp := range cur.Floats {
		for pi < len(prev.Floats) && pointLess(prev.Floats[pi].Name, prev.Floats[pi].Labels, fp.Name, fp.Labels) {
			pi++
		}
		base := 0.0
		if pi < len(prev.Floats) && prev.Floats[pi].Name == fp.Name && prev.Floats[pi].Labels == fp.Labels {
			base = prev.Floats[pi].Value
		}
		//lint:allow floatcmp: presence filter — an exactly unchanged float sum is omitted from the window
		if d := fp.Value - base; d != 0 {
			if w.Floats == nil {
				w.Floats = make(map[string]float64)
			}
			w.Floats[pointKey(fp.Name, fp.Labels)] = d
		}
	}
	if len(cur.Gauges) > 0 {
		w.Gauges = make(map[string]float64, len(cur.Gauges))
		for _, gp := range cur.Gauges {
			w.Gauges[pointKey(gp.Name, gp.Labels)] = gp.Value
		}
	}
	pi = 0
	for _, hp := range cur.Hists {
		for pi < len(prev.Hists) && pointLess(prev.Hists[pi].Name, prev.Hists[pi].Labels, hp.Name, hp.Labels) {
			pi++
		}
		var base *telemetry.HistPoint
		if pi < len(prev.Hists) && prev.Hists[pi].Name == hp.Name && prev.Hists[pi].Labels == hp.Labels {
			base = &prev.Hists[pi]
		}
		d, changed := diffHist(base, hp)
		if changed {
			if w.Hists == nil {
				w.Hists = make(map[string]HistDelta)
			}
			w.Hists[pointKey(hp.Name, hp.Labels)] = d
		}
	}
	return w
}

func diffHist(prev *telemetry.HistPoint, cur telemetry.HistPoint) (HistDelta, bool) {
	var baseCount uint64
	var baseSum float64
	if prev != nil {
		baseCount, baseSum = prev.Count, prev.Sum
	}
	if cur.Count == baseCount {
		return HistDelta{}, false
	}
	d := HistDelta{Count: cur.Count - baseCount, Sum: cur.Sum - baseSum}
	for i, n := range cur.Counts {
		base := uint64(0)
		if prev != nil && i < len(prev.Counts) {
			base = prev.Counts[i]
		}
		if n != base {
			d.Buckets = append(d.Buckets, [2]int64{int64(i), int64(n - base)})
		}
	}
	return d, true
}

func pointKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func pointLess(an, al, bn, bl string) bool {
	if an != bn {
		return an < bn
	}
	return al < bl
}
