package wspan

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if got := tr.TraceID(); got != "" {
		t.Errorf("nil TraceID = %q", got)
	}
	if got := tr.Traceparent(); got != "" {
		t.Errorf("nil Traceparent = %q", got)
	}
	if got := tr.ServerTiming(); got != "" {
		t.Errorf("nil ServerTiming = %q", got)
	}
	if got := tr.Finish(); got != 0 {
		t.Errorf("nil Finish = %v", got)
	}
	s := tr.Root()
	s2 := s.Start("child") // must not panic
	s2.Note("k", "v")
	s2.NoteInt("n", 7)
	s2.End()
	s.End()
	if got := string(tr.AppendJSON(nil)); got != "null" {
		t.Errorf("nil AppendJSON = %q", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	orig := New("client")
	header := orig.Traceparent()
	if len(header) != 55 || !strings.HasPrefix(header, "00-") {
		t.Fatalf("traceparent %q malformed", header)
	}
	adopted, ok := ParseTraceparent(header, "request")
	if !ok {
		t.Fatalf("ParseTraceparent rejected own header %q", header)
	}
	if adopted.TraceID() != orig.TraceID() {
		t.Errorf("trace ID not adopted: %q != %q", adopted.TraceID(), orig.TraceID())
	}
	doc := string(adopted.AppendJSON(nil))
	if !strings.Contains(doc, `"remote_parent":"`+header[36:52]+`"`) {
		t.Errorf("remote parent %q missing from doc %s", header[36:52], doc)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-abc",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e473Z-00f067aa0ba902b7-01", // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
	}
	for _, h := range cases {
		tr, ok := ParseTraceparent(h, "request")
		if ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
		if tr == nil || tr.TraceID() == "" {
			t.Errorf("ParseTraceparent(%q) did not fall back to a fresh trace", h)
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := New("r").TraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

// decodedDoc mirrors the AppendJSON layout for test decoding.
type decodedDoc struct {
	TraceID string `json:"trace_id"`
	Spans   []struct {
		Name    string            `json:"name"`
		Parent  int32             `json:"parent"`
		SpanID  string            `json:"span_id"`
		StartNS int64             `json:"start_ns"`
		DurNS   int64             `json:"dur_ns"`
		Notes   map[string]string `json:"notes"`
	} `json:"spans"`
}

func TestSpanTreeJSON(t *testing.T) {
	tr := New("request")
	adm := tr.Root().Start("admission")
	adm.End()
	solve := tr.Root().Start("solve")
	solve.Note("cache", "miss")
	solve.NoteInt("gaps", 3)
	inner := solve.Start("audit")
	inner.End()
	solve.End()
	tr.Finish()

	var doc decodedDoc
	if err := json.Unmarshal(tr.AppendJSON(nil), &doc); err != nil {
		t.Fatalf("AppendJSON not valid JSON: %v\n%s", err, tr.AppendJSON(nil))
	}
	if len(doc.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(doc.Spans))
	}
	if doc.Spans[0].Name != "request" || doc.Spans[0].Parent != -1 {
		t.Errorf("root span wrong: %+v", doc.Spans[0])
	}
	for i, sp := range doc.Spans {
		if i > 0 && (sp.Parent < 0 || int(sp.Parent) >= i) {
			t.Errorf("span %d (%s) has invalid parent %d", i, sp.Name, sp.Parent)
		}
		if sp.DurNS < 0 {
			t.Errorf("span %d (%s) never ended", i, sp.Name)
		}
		if sp.StartNS < doc.Spans[0].StartNS {
			t.Errorf("span %d starts before root", i)
		}
	}
	if doc.Spans[2].Notes["cache"] != "miss" || doc.Spans[2].Notes["gaps"] != "3" {
		t.Errorf("solve notes wrong: %v", doc.Spans[2].Notes)
	}
	if doc.Spans[3].Parent != 2 {
		t.Errorf("audit parent = %d, want 2 (solve)", doc.Spans[3].Parent)
	}
}

func TestServerTiming(t *testing.T) {
	tr := New("request")
	tr.Root().Start("admission").End()
	s := tr.Root().Start("solve")
	s.Start("audit").End() // grandchild: must not appear
	s.End()
	open := tr.Root().Start("write") // never ended: must not appear
	_ = open
	tr.Finish()
	st := tr.ServerTiming()
	if !strings.Contains(st, "admission;dur=") || !strings.Contains(st, "solve;dur=") {
		t.Errorf("ServerTiming missing stages: %q", st)
	}
	if strings.Contains(st, "audit") || strings.Contains(st, "write") {
		t.Errorf("ServerTiming has non-stage entries: %q", st)
	}
	if strings.Contains(st, "request") {
		t.Errorf("ServerTiming includes the root: %q", st)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("request")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := root.Start("item")
				s.NoteInt("j", int64(j))
				s.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	var doc decodedDoc
	if err := json.Unmarshal(tr.AppendJSON(nil), &doc); err != nil {
		t.Fatalf("doc invalid after concurrent spans: %v", err)
	}
	if len(doc.Spans) != 1+16*50 {
		t.Errorf("got %d spans, want %d", len(doc.Spans), 1+16*50)
	}
}

func TestJSONStringEscaping(t *testing.T) {
	tr := New("request")
	s := tr.Root().Start("odd")
	s.Note("k", "a\"b\\c\nd\te\x01f")
	s.End()
	tr.Finish()
	var doc decodedDoc
	if err := json.Unmarshal(tr.AppendJSON(nil), &doc); err != nil {
		t.Fatalf("escaped doc invalid: %v", err)
	}
	if got := doc.Spans[1].Notes["k"]; got != "a\"b\\c\nd\te\x01f" {
		t.Errorf("note round-trip = %q", got)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Root().Start("solve")
		s.Note("cache", "hit")
		s.End()
	}
}
