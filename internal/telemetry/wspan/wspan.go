// Package wspan is the wall-clock half of the module's tracing story: a
// request-scoped span tree for the serve path, where latency is real
// (queue wait, lock contention, encode, socket writes) and virtual time
// does not exist. It complements — never replaces — the virtual-time
// trace in package telemetry: solver decisions stay on virtual time, and
// nothing in this package feeds the deterministic metrics dump, so
// stdout stays byte-identical with tracing on or off.
//
// wspan is, with its parent package, the entire sanctioned wall-clock
// quarantine: the telemetrycheck analyzer forbids time.Now/Since/Until
// everywhere else in the module. Code outside the quarantine handles
// only opaque *Trace / Span values and formatted strings.
//
// The tree is append-only and mutex-guarded, so concurrent handler
// stages (parallel batch items) may open spans on one trace. A nil
// *Trace is the not-sampled state: every method, including on the Span
// handles it returns, no-ops — the disabled path carries one nil check
// and no allocation.
//
// Interop surfaces:
//
//   - W3C trace context: ParseTraceparent accepts an incoming
//     `traceparent` header (adopting the caller's trace ID and parent
//     span), Traceparent renders the outgoing one.
//   - Server-Timing: ServerTiming renders the ended direct children of
//     the root as `name;dur=ms` entries for the response header.
//   - JSON: AppendJSON renders the whole tree as a single-line JSON
//     object (nanosecond offsets from the trace start) consumed by
//     /debug/trace/{id} and aggregated by cmd/sdemtrace.
package wspan

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// procNonce is the random high half of every trace ID minted by this
// process; the low half is a SplitMix64 sequence, so IDs are unique per
// process and collision-resistant across a fleet without per-request
// entropy reads.
var (
	procNonce [8]byte
	traceSeq  atomic.Uint64
)

func init() {
	if _, err := rand.Read(procNonce[:]); err != nil {
		// Fall back to a fixed nonce: trace IDs stay unique in-process,
		// which is all local ring lookup needs.
		copy(procNonce[:], "sdemwspn")
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		traceSeq.Store(binary.LittleEndian.Uint64(seed[:]))
	}
}

// splitmix64 is the module's standard cheap mixer (same constants as
// stats.DeriveSeed); it whitens the sequential counter into span IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Note is one key/value annotation on a span (decision provenance:
// cache outcome, plan reuse counts, shed reason, ...).
type Note struct {
	Key string
	Val string
}

// span is one node of the tree. start/dur are offsets from the trace
// epoch on the monotonic clock; dur < 0 marks a still-open span.
type span struct {
	name   string
	parent int32 // index into Trace.spans; -1 for the root
	id     uint64
	start  time.Duration
	dur    time.Duration
	notes  []Note
}

// Trace is one request's wall-clock span tree. The zero value is not
// usable; construct with New. A nil *Trace is the not-sampled state.
type Trace struct {
	mu      sync.Mutex
	traceID [16]byte
	remote  uint64 // parent span ID adopted from an incoming traceparent (0 = locally rooted)
	epoch   time.Time
	spans   []span
}

// Span addresses one node of a Trace. The zero Span (and any Span from a
// nil Trace) is inert: Start returns another inert Span, End and Note
// no-op.
type Span struct {
	t *Trace
	i int32
}

// New starts a trace whose root span has the given name. The trace ID is
// minted from the process nonce and a whitened sequence counter.
func New(name string) *Trace {
	t := &Trace{epoch: time.Now()}
	copy(t.traceID[:8], procNonce[:])
	binary.BigEndian.PutUint64(t.traceID[8:], splitmix64(traceSeq.Add(1)))
	t.spans = append(t.spans, span{name: name, parent: -1, id: splitmix64(traceSeq.Add(1)), dur: -1})
	return t
}

// ParseTraceparent starts a trace adopting the trace ID and parent span
// of a W3C `traceparent` header value (version-00 form:
// 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>). ok reports
// whether the header was well-formed; on any malformation the returned
// trace is freshly rooted, exactly as New, so a garbled header degrades
// to a local trace rather than an error.
func ParseTraceparent(header, name string) (t *Trace, ok bool) {
	t = New(name)
	if len(header) < 55 || header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return t, false
	}
	if header[:2] == "ff" { // forbidden version
		return t, false
	}
	var traceID [16]byte
	if _, err := hex.Decode(traceID[:], []byte(header[3:35])); err != nil {
		return t, false
	}
	var parent [8]byte
	if _, err := hex.Decode(parent[:], []byte(header[36:52])); err != nil {
		return t, false
	}
	if traceID == ([16]byte{}) || parent == ([8]byte{}) {
		return t, false
	}
	t.traceID = traceID
	t.remote = binary.BigEndian.Uint64(parent[:])
	return t, true
}

// TraceID returns the 32-hex-digit trace ID, or "" on a nil trace.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return hex.EncodeToString(t.traceID[:])
}

// Traceparent renders the outgoing W3C header value for this trace, with
// the root span as parent and the sampled flag set; "" on a nil trace.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t.traceID[:])
	b[35] = '-'
	var id [8]byte
	t.mu.Lock()
	binary.BigEndian.PutUint64(id[:], t.spans[0].id)
	t.mu.Unlock()
	hex.Encode(b[36:52], id[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// Root returns the root span handle.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, i: 0}
}

// Start opens a child span under s. Safe from concurrent goroutines of
// one request (batch items); inert on the zero Span.
func (s Span) Start(name string) Span {
	t := s.t
	if t == nil {
		return Span{}
	}
	since := time.Since(t.epoch)
	t.mu.Lock()
	i := int32(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: s.i, id: splitmix64(traceSeq.Add(1)), start: since, dur: -1})
	t.mu.Unlock()
	return Span{t: t, i: i}
}

// End closes the span. Ending twice keeps the first duration.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	since := time.Since(t.epoch)
	t.mu.Lock()
	if sp := &t.spans[s.i]; sp.dur < 0 {
		sp.dur = since - sp.start
	}
	t.mu.Unlock()
}

// Note annotates the span with a key/value pair.
func (s Span) Note(key, val string) {
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	sp := &t.spans[s.i]
	sp.notes = append(sp.notes, Note{Key: key, Val: val})
	t.mu.Unlock()
}

// NoteInt annotates the span with an integer value.
func (s Span) NoteInt(key string, v int64) {
	if s.t == nil {
		return
	}
	s.Note(key, strconv.FormatInt(v, 10))
}

// Finish ends the root span (open descendants, a bug in stage
// bracketing, are left open and flagged by sdemtrace -verify) and
// returns the root's total duration.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.Root().End()
	t.mu.Lock()
	d := t.spans[0].dur
	t.mu.Unlock()
	return d
}

// ServerTiming renders the ended direct children of the root in start
// order as a Server-Timing header value: `name;dur=1.234, ...` with
// millisecond durations. Repeated stage names (retried stages, batch
// items) accumulate. Returns "" on a nil trace or when no stage ended.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	type agg struct {
		name string
		dur  time.Duration
	}
	var stages []agg
	idx := make(map[string]int, 8)
	for _, sp := range t.spans {
		if sp.parent != 0 || sp.dur < 0 {
			continue
		}
		if j, ok := idx[sp.name]; ok {
			stages[j].dur += sp.dur
			continue
		}
		idx[sp.name] = len(stages)
		stages = append(stages, agg{sp.name, sp.dur})
	}
	t.mu.Unlock()
	if len(stages) == 0 {
		return ""
	}
	var b []byte
	for i, st := range stages {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, st.name...)
		b = append(b, ";dur="...)
		b = strconv.AppendFloat(b, float64(st.dur)/1e6, 'f', 3, 64)
	}
	return string(b)
}

// AppendJSON appends the trace as a single-line JSON object:
//
//	{"trace_id":"…","spans":[{"name":"request","parent":-1,
//	  "span_id":"…","start_ns":0,"dur_ns":123,"notes":{"k":"v"}},…]}
//
// Span order is creation order, so a span's parent index always precedes
// it; dur_ns is -1 for spans never ended. Nil traces append "null".
func (t *Trace) AppendJSON(dst []byte) []byte {
	if t == nil {
		return append(dst, "null"...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dst = append(dst, `{"trace_id":"`...)
	dst = appendHex(dst, t.traceID[:])
	if t.remote != 0 {
		dst = append(dst, `","remote_parent":"`...)
		var p [8]byte
		binary.BigEndian.PutUint64(p[:], t.remote)
		dst = appendHex(dst, p[:])
	}
	dst = append(dst, `","spans":[`...)
	for i, sp := range t.spans {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"name":`...)
		dst = appendJSONString(dst, sp.name)
		dst = append(dst, `,"parent":`...)
		dst = strconv.AppendInt(dst, int64(sp.parent), 10)
		dst = append(dst, `,"span_id":"`...)
		var id [8]byte
		binary.BigEndian.PutUint64(id[:], sp.id)
		dst = appendHex(dst, id[:])
		dst = append(dst, `","start_ns":`...)
		dst = strconv.AppendInt(dst, int64(sp.start), 10)
		dst = append(dst, `,"dur_ns":`...)
		dst = strconv.AppendInt(dst, int64(sp.dur), 10)
		if len(sp.notes) > 0 {
			dst = append(dst, `,"notes":{`...)
			for j, n := range sp.notes {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = appendJSONString(dst, n.Key)
				dst = append(dst, ':')
				dst = appendJSONString(dst, n.Val)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, '}')
	}
	return append(dst, `]}`...)
}

// WriteJSON writes AppendJSON's document followed by a newline — one
// JSONL record.
func (t *Trace) WriteJSON(w io.Writer) error {
	_, err := w.Write(append(t.AppendJSON(nil), '\n'))
	return err
}

const hexdigits = "0123456789abcdef"

func appendHex(dst, src []byte) []byte {
	for _, c := range src {
		dst = append(dst, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return dst
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters that cannot appear raw. Span names and note values are
// ASCII identifiers in practice; anything else passes through as UTF-8.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
