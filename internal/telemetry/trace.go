// Structured event tracing on virtual time.
//
// Trace events carry timestamps in schedule/sim seconds — never
// wall-clock — so a trace is a pure function of the experiment inputs and
// replays identically. Events are emitted either as JSONL (one
// hand-marshaled object per line, fixed field order) or as Chrome
// trace_event JSON loadable in chrome://tracing and ui.perfetto.dev,
// with seconds scaled to the microseconds that format expects.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Arg is one key/value annotation on a trace event. Values are stored as
// strings so marshaling is allocation-free and field order is fixed.
type Arg struct {
	Key string
	Val string
}

// Str builds a string-valued trace argument.
func Str(key, val string) Arg { return Arg{key, val} }

// Num builds a numeric trace argument with full round-trip precision.
func Num(key string, v float64) Arg { return Arg{key, ftoa(v)} }

// Int builds an integer-valued trace argument.
func Int(key string, v int64) Arg { return Arg{key, strconv.FormatInt(v, 10)} }

// Event is one trace record. Phase 'X' is a complete span with duration;
// phase 'i' is an instant. TS and Dur are virtual seconds; PID groups
// events by work item (e.g. sweep grid point) and TID by lane within it
// (tid 0 = memory, tid k+1 = core k, by convention in the sim).
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    float64
	Dur   float64
	PID   int
	TID   int
	Args  []Arg
}

// Span records a completed interval [start, end] in virtual seconds on
// lane tid. Degenerate spans (end ≤ start) are recorded with zero
// duration rather than dropped, so counts stay exact.
func (r *Recorder) Span(name, cat string, start, end float64, tid int, args ...Arg) {
	if r == nil {
		return
	}
	d := end - start
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Cat: cat, Phase: 'X', TS: start, Dur: d, PID: r.pid, TID: tid, Args: args})
	r.mu.Unlock()
}

// Instant records a point event at virtual time ts on lane tid.
func (r *Recorder) Instant(name, cat string, ts float64, tid int, args ...Arg) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Cat: cat, Phase: 'i', TS: ts, PID: r.pid, TID: tid, Args: args})
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in stable sorted order:
// by (PID, TS, TID, Name). Sorting is stable so equal-key events keep
// their recording order, which is itself deterministic.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	return out
}

// jsonString escapes s as a JSON string literal. Hand-rolled so both
// writers share one deterministic escaper with no reflection.
func jsonString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 0x20:
			fmt.Fprintf(b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

func writeArgs(b *strings.Builder, args []Arg) {
	b.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		jsonString(b, a.Key)
		b.WriteByte(':')
		jsonString(b, a.Val)
	}
	b.WriteByte('}')
}

// WriteTraceJSONL emits one JSON object per event with fixed field order
// (name, cat, ph, ts, dur, pid, tid, args), timestamps in virtual
// seconds. Output is byte-stable for a given computation.
func (r *Recorder) WriteTraceJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(`{"name":`)
		jsonString(&b, e.Name)
		b.WriteString(`,"cat":`)
		jsonString(&b, e.Cat)
		b.WriteString(`,"ph":"`)
		b.WriteByte(e.Phase)
		b.WriteString(`","ts":`)
		b.WriteString(ftoa(e.TS))
		if e.Phase == 'X' {
			b.WriteString(`,"dur":`)
			b.WriteString(ftoa(e.Dur))
		}
		b.WriteString(`,"pid":`)
		b.WriteString(strconv.Itoa(e.PID))
		b.WriteString(`,"tid":`)
		b.WriteString(strconv.Itoa(e.TID))
		if len(e.Args) > 0 {
			b.WriteString(`,"args":`)
			writeArgs(&b, e.Args)
		}
		b.WriteString("}\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteChromeTrace emits the Chrome trace_event JSON array format.
// Virtual seconds are scaled to the format's microseconds; metadata
// events name each pid "grid point <pid>" and each tid lane ("memory" /
// "core <k>") so Perfetto renders sim traces legibly. Output is
// byte-stable for a given computation.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Events()
	pids := map[int]bool{}
	type lane struct{ pid, tid int }
	lanes := map[lane]bool{}
	for _, e := range events {
		pids[e.PID] = true
		lanes[lane{e.PID, e.TID}] = true
	}
	pidList := make([]int, 0, len(pids))
	for p := range pids {
		pidList = append(pidList, p)
	}
	sort.Ints(pidList)
	laneList := make([]lane, 0, len(lanes))
	for l := range lanes {
		laneList = append(laneList, l)
	}
	sort.Slice(laneList, func(i, j int) bool {
		if laneList[i].pid != laneList[j].pid {
			return laneList[i].pid < laneList[j].pid
		}
		return laneList[i].tid < laneList[j].tid
	})

	var b strings.Builder
	b.WriteString("[")
	first := true
	meta := func(name string, pid, tid int, argKey, argVal string) {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString("\n")
		fmt.Fprintf(&b, `{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{%q:%q}}`, name, pid, tid, argKey, argVal)
	}
	for _, p := range pidList {
		meta("process_name", p, 0, "name", fmt.Sprintf("grid point %d", p))
	}
	for _, l := range laneList {
		name := "memory"
		if l.tid > 0 {
			name = fmt.Sprintf("core %d", l.tid-1)
		}
		meta("thread_name", l.pid, l.tid, "name", name)
	}
	for _, e := range events {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString("\n")
		b.WriteString(`{"name":`)
		jsonString(&b, e.Name)
		b.WriteString(`,"cat":`)
		jsonString(&b, e.Cat)
		b.WriteString(`,"ph":"`)
		b.WriteByte(e.Phase)
		b.WriteString(`","ts":`)
		b.WriteString(ftoa(e.TS * 1e6))
		if e.Phase == 'X' {
			b.WriteString(`,"dur":`)
			b.WriteString(ftoa(e.Dur * 1e6))
		}
		if e.Phase == 'i' {
			b.WriteString(`,"s":"t"`)
		}
		b.WriteString(`,"pid":`)
		b.WriteString(strconv.Itoa(e.PID))
		b.WriteString(`,"tid":`)
		b.WriteString(strconv.Itoa(e.TID))
		b.WriteString(`,"args":`)
		writeArgs(&b, e.Args)
		b.WriteString(`}`)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
