package telemetry

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotNil guards the disabled-telemetry invariant for snapshots:
// a nil recorder snapshots to the empty state without allocating, so the
// nil path of a snapshot-driven exporter is a true no-op. The companion
// BenchmarkSnapshotDisabled (alongside BenchmarkTelemetryDisabled) keeps
// the same guarantee visible in bench output.
func TestSnapshotNil(t *testing.T) {
	var r *Recorder
	s := r.Snapshot()
	if !s.Empty() {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		snapSink = r.Snapshot()
	}); allocs != 0 {
		t.Fatalf("nil Snapshot allocates %v allocs/op, want 0", allocs)
	}
}

// TestSnapshotCopies checks that a snapshot is a stable copy: mutating
// the recorder after Snapshot must not change the snapshot, and the
// slices come out in sorted (name, labels) order.
func TestSnapshotCopies(t *testing.T) {
	r := New()
	r.Count("b.counter", 2)
	r.CountL("a.counter", "k=v", 1)
	r.Add("a.float", 1.5)
	r.Gauge("a.gauge", 7)
	r.RegisterHistogram("a.hist", []float64{1, 2})
	r.Observe("a.hist", 1.5)

	s := r.Snapshot()
	r.Count("b.counter", 40)
	r.Observe("a.hist", 0.5)

	wantCounters := []CounterPoint{
		{Name: "a.counter", Labels: "k=v", Value: 1},
		{Name: "b.counter", Value: 2},
	}
	if !reflect.DeepEqual(s.Counters, wantCounters) {
		t.Errorf("counters = %+v, want %+v", s.Counters, wantCounters)
	}
	if len(s.Hists) != 1 {
		t.Fatalf("hists = %+v, want one", s.Hists)
	}
	h := s.Hists[0]
	if h.Count != 1 || h.Sum != 1.5 || h.Min != 1.5 || h.Max != 1.5 {
		t.Errorf("hist summary = %+v, want count 1 sum/min/max 1.5", h)
	}
	if want := []uint64{0, 1, 0}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("hist counts = %v, want %v (snapshot must not see later observations)", h.Counts, want)
	}
}

// TestSnapshotEmptyHistMinMax checks the zeroed min/max convention for
// histograms that exist but saw no (finite) observations — the same
// convention WriteMetrics uses, so exporters never see ±Inf sentinels.
func TestSnapshotEmptyHistMinMax(t *testing.T) {
	r := New()
	r.Observe("h", math.NaN()) // creates the histogram, records nothing
	s := r.Snapshot()
	if len(s.Hists) != 1 {
		t.Fatalf("unexpected hists %+v", s.Hists)
	}
	h := s.Hists[0]
	if h.Count != 0 || h.Min != 0 || h.Max != 0 {
		t.Errorf("empty hist = %+v, want count 0 and zeroed min/max", h)
	}
}

// TestMergeMetrics checks that MergeMetrics folds every metric kind but
// drops the child's trace events.
func TestMergeMetrics(t *testing.T) {
	r := New()
	c := r.Child(3)
	c.Count("n", 1)
	c.Add("f", 2.5)
	c.Gauge("g", 4)
	c.Observe("h", 0.01)
	c.Span("work", "test", 0, 1, 0)

	r.MergeMetrics(c)
	if got := len(r.Events()); got != 0 {
		t.Errorf("MergeMetrics copied %d events, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 1 {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Floats) != 1 || s.Floats[0].Value != 2.5 {
		t.Errorf("floats = %+v", s.Floats)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 4 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != 1 {
		t.Errorf("hists = %+v", s.Hists)
	}
	// The child still owns its trace.
	if got := len(c.Events()); got != 1 {
		t.Errorf("child lost its events: %d, want 1", got)
	}
}

// TestExemplarFlow checks the exemplar pipeline end to end inside the
// recorder: ObserveExL pins per-bucket exemplars, merge propagates them
// child-wins, and Snapshot surfaces them sparse and bucket-sorted.
func TestExemplarFlow(t *testing.T) {
	r := New()
	r.RegisterHistogram("lat", []float64{0.1, 1, 10})
	c1 := r.Child(1)
	c1.ObserveExL("lat", "route=solve", 0.05, "trace_id=aaa")
	c1.ObserveExL("lat", "route=solve", 5, "trace_id=bbb")
	c1.ObserveL("lat", "route=solve", 0.5) // no exemplar for this bucket
	r.MergeMetrics(c1)
	c2 := r.Child(2)
	c2.ObserveExL("lat", "route=solve", 0.07, "trace_id=ccc") // overwrites bucket 0
	r.MergeMetrics(c2)

	s := r.Snapshot()
	if len(s.Hists) != 1 {
		t.Fatalf("hists = %+v", s.Hists)
	}
	want := []ExemplarPoint{
		{Bucket: 0, Labels: "trace_id=ccc", Value: 0.07},
		{Bucket: 2, Labels: "trace_id=bbb", Value: 5},
	}
	if !reflect.DeepEqual(s.Hists[0].Exemplars, want) {
		t.Errorf("exemplars = %+v, want %+v", s.Hists[0].Exemplars, want)
	}
	if got := s.Hists[0].Count; got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
}

// TestExemplarsAbsentFromMetricsDump pins the determinism boundary:
// exemplars carry wall-clock-seeded trace IDs, so they must never leak
// into the byte-stable WriteMetrics dump.
func TestExemplarsAbsentFromMetricsDump(t *testing.T) {
	with := New()
	with.ObserveEx("h", 0.5, "trace_id=deadbeef")
	without := New()
	without.Observe("h", 0.5)
	var a, b strings.Builder
	if err := with.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := without.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("exemplars perturb the metrics dump:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestConcurrentSnapshotMergeExemplars hammers the server-shaped
// lifecycle — many writers each spawning a child, recording labeled
// metrics with exemplars, and merging back, while a scraper snapshots
// concurrently — under -race, then checks the final dump and snapshot
// are complete and byte-stable.
func TestConcurrentSnapshotMergeExemplars(t *testing.T) {
	root := New()
	root.RegisterHistogram("lat", []float64{0.001, 0.01, 0.1, 1})
	const writers, perWriter = 8, 200

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				snapSink = root.Snapshot()
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				c := root.Child(w)
				c.CountL("req", "route=solve", 1)
				c.ObserveExL("lat", "route=solve", float64(i%7)*0.005, "trace_id=w"+strconv.Itoa(w))
				root.MergeMetrics(c)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	<-scraperDone

	s := root.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != writers*perWriter {
		t.Fatalf("counters = %+v, want one req counter at %d", s.Counters, writers*perWriter)
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != writers*perWriter {
		t.Fatalf("hists = %+v, want one lat hist at %d", s.Hists, writers*perWriter)
	}
	if len(s.Hists[0].Exemplars) == 0 {
		t.Error("no exemplars survived the merges")
	}
	// Byte-stability: repeated dumps of the now-quiescent state match.
	var d1, d2 strings.Builder
	if err := root.WriteMetrics(&d1); err != nil {
		t.Fatal(err)
	}
	if err := root.WriteMetrics(&d2); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Error("metrics dump not byte-stable across repeated writes")
	}
}

var snapSink Snapshot

// BenchmarkSnapshotDisabled proves the nil-recorder snapshot path costs
// nothing: 0 allocs/op, like every other disabled-telemetry operation.
func BenchmarkSnapshotDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snapSink = r.Snapshot()
	}
}
