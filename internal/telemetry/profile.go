// Wall-clock profiling hooks.
//
// This file is the ONLY place in the module allowed to read wall-clock
// time (enforced by the telemetrycheck lint analyzer). Profiler output is
// inherently nondeterministic, so it is reported in its own section —
// never mixed into the deterministic metrics dump — and is written to
// stderr by the CLIs so experiment stdout stays byte-identical.
package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Family accumulates wall-time, allocation, and worker-pool statistics
// for one sweep family (or any named unit of work).
type Family struct {
	Name string

	// Set by Profiler.Start/stop.
	Runs       int
	Wall       time.Duration
	AllocBytes uint64 // process-global TotalAlloc delta: approximate under concurrency
	Allocs     uint64 // process-global Mallocs delta: approximate under concurrency

	// Set by PoolProfile hooks.
	Workers     int
	Tasks       int
	Busy        time.Duration // summed task execution time across workers
	QueueWait   time.Duration // summed dispatch-to-start latency
	PeakWorkers int
}

// Profiler owns the per-family wall-clock accounting. A nil Profiler
// no-ops everywhere.
type Profiler struct {
	mu       sync.Mutex
	families []*Family
	byName   map[string]*Family
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{byName: make(map[string]*Family)}
}

func (p *Profiler) family(name string) *Family {
	f := p.byName[name]
	if f == nil {
		f = &Family{Name: name}
		p.byName[name] = f
		p.families = append(p.families, f)
	}
	return f
}

// Start begins a wall-time + allocation measurement for the named family
// and returns the function that stops it. Allocation deltas come from
// runtime.MemStats and are process-global, so they are attributable only
// when families run one at a time (which the sweep driver does).
func (p *Profiler) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	alloc0, mallocs0 := ms.TotalAlloc, ms.Mallocs
	t0 := time.Now()
	return func() {
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms)
		p.mu.Lock()
		f := p.family(name)
		f.Runs++
		f.Wall += wall
		f.AllocBytes += ms.TotalAlloc - alloc0
		f.Allocs += ms.Mallocs - mallocs0
		p.mu.Unlock()
	}
}

// Pool returns the worker-pool profile hooked to the named family.
func (p *Profiler) Pool(name string) *PoolProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	f := p.family(name)
	p.mu.Unlock()
	return &PoolProfile{prof: p, fam: f}
}

// PoolProfile adapts a Family to the hook points internal/parallel
// exposes: pool start, per-task start/done. It measures worker occupancy
// (busy time vs. wall), queue wait (dispatch-to-start), and peak
// concurrency. A nil PoolProfile no-ops.
type PoolProfile struct {
	prof    *Profiler
	fam     *Family
	mu      sync.Mutex
	started time.Time
	running int
}

// PoolStart marks the pool launch; queue wait for each task is measured
// from this instant.
func (pp *PoolProfile) PoolStart(workers, n int) {
	if pp == nil {
		return
	}
	pp.mu.Lock()
	pp.started = time.Now()
	pp.mu.Unlock()
	pp.prof.mu.Lock()
	pp.fam.Workers = workers
	pp.prof.mu.Unlock()
}

// TaskStart marks one task beginning execution and returns the function
// that marks it done.
func (pp *PoolProfile) TaskStart() func() {
	if pp == nil {
		return func() {}
	}
	t0 := time.Now()
	pp.mu.Lock()
	wait := t0.Sub(pp.started)
	pp.running++
	running := pp.running
	pp.mu.Unlock()
	pp.prof.mu.Lock()
	pp.fam.Tasks++
	pp.fam.QueueWait += wait
	if running > pp.fam.PeakWorkers {
		pp.fam.PeakWorkers = running
	}
	pp.prof.mu.Unlock()
	return func() {
		busy := time.Since(t0)
		pp.mu.Lock()
		pp.running--
		pp.mu.Unlock()
		pp.prof.mu.Lock()
		pp.fam.Busy += busy
		pp.prof.mu.Unlock()
	}
}

// Report writes the per-family profile in first-start order. The output
// is wall-clock derived and intentionally not part of the deterministic
// metrics contract.
func (p *Profiler) Report(w io.Writer) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	fams := make([]*Family, len(p.families))
	copy(fams, p.families)
	p.mu.Unlock()
	if len(fams) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "# sdem telemetry profile (wall-clock; nondeterministic)"); err != nil {
		return err
	}
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "family %s runs=%d wall=%s alloc_bytes=%d allocs=%d",
			f.Name, f.Runs, f.Wall.Round(time.Microsecond), f.AllocBytes, f.Allocs); err != nil {
			return err
		}
		if f.Tasks > 0 {
			occ := 0.0
			if f.Wall > 0 && f.Workers > 0 {
				occ = float64(f.Busy) / (float64(f.Wall) * float64(f.Workers))
			}
			if _, err := fmt.Fprintf(w, " workers=%d tasks=%d busy=%s queue_wait=%s peak=%d occupancy=%.2f",
				f.Workers, f.Tasks, f.Busy.Round(time.Microsecond), f.QueueWait.Round(time.Microsecond), f.PeakWorkers, occ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Families returns the profiled families sorted by name (for tests).
func (p *Profiler) Families() []*Family {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]*Family, len(p.families))
	copy(out, p.families)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
