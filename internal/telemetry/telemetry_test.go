package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sample builds a recorder with a fixed, representative set of metrics
// and events — the fixture behind the golden tests.
func sample() *Recorder {
	r := New()
	r.RegisterHistogram("sdem.test.saving", BucketsRatio)
	r.Count("sdem.test.events", 3)
	r.CountL("sdem.test.events", "kind=wake", 2)
	r.Add("sdem.test.energy_j", 1.25)
	r.AddL("sdem.test.energy_j", "component=static", 0.75)
	r.Gauge("sdem.test.speed", 0.6)
	r.Observe("sdem.test.saving", 0.05)
	r.Observe("sdem.test.saving", -0.3)
	r.Observe("sdem.test.saving", 0.7)
	r.Span("run", "sim", 0.5, 1.75, 1, Str("task", "t3"), Num("speed", 0.8))
	r.Span("memory sleep", "sim", 2, 2.5, 0)
	r.Instant("recovery", "resilient", 1.9, 2, Str("action", "boost"))
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden", buf.Bytes())
}

func TestGoldenTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.jsonl.golden", buf.Bytes())
}

func TestGoldenChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.chrome.golden", buf.Bytes())
}

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Count("x", 1)
	r.CountL("x", "a=b", 1)
	r.Add("x", 1)
	r.Gauge("x", 1)
	r.Observe("x", 1)
	r.RegisterHistogram("x", BucketsCount)
	r.Span("s", "c", 0, 1, 0)
	r.Instant("i", "c", 0, 0)
	r.Merge(New())
	if c := r.Child(3); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil.Events = %v, want nil", ev)
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil.WriteMetrics wrote %q, err %v", buf.String(), err)
	}
	if err := r.WriteTraceJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil.WriteTraceJSONL wrote %q, err %v", buf.String(), err)
	}
	if err := r.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil.WriteChromeTrace wrote %q, err %v", buf.String(), err)
	}
	var p *Profiler
	p.Start("f")()
	if pp := p.Pool("f"); pp != nil {
		t.Fatal("nil profiler returned non-nil pool")
	}
	var pp *PoolProfile
	pp.PoolStart(4, 10)
	pp.TaskStart()()
	if err := p.Report(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil profiler Report wrote %q, err %v", buf.String(), err)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	r.RegisterHistogram("h", []float64{1, 2, 5})
	// Exactly-on-edge goes into that bucket (v ≤ edge semantics).
	for _, v := range []float64{1, 2, 5} {
		r.Observe("h", v)
	}
	r.Observe("h", 0.5)          // below first edge
	r.Observe("h", 5.0000001)    // just past last edge → +Inf
	r.Observe("h", math.Inf(1))  // +Inf → overflow
	r.Observe("h", math.Inf(-1)) // -Inf → first bucket
	r.Observe("h", math.NaN())   // dropped
	h := r.hists[key{"h", ""}]
	wantCounts := []uint64{3, 1, 1, 2} // (-Inf,1]=1,0.5,-Inf; (1,2]=2; (2,5]=5; +Inf=2
	if !reflect.DeepEqual(h.counts, wantCounts) {
		t.Errorf("counts = %v, want %v", h.counts, wantCounts)
	}
	if h.count != 7 {
		t.Errorf("count = %d, want 7 (NaN dropped)", h.count)
	}
	if h.min != math.Inf(-1) || h.max != math.Inf(1) {
		t.Errorf("min/max = %v/%v", h.min, h.max)
	}
}

func TestHistogramBadLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing edges did not panic")
		}
	}()
	New().RegisterHistogram("bad", []float64{1, 1})
}

func TestEmptyHistogramDump(t *testing.T) {
	r := New()
	r.RegisterHistogram("empty", []float64{1, 2})
	r.ObserveL("empty", "", 1.5) // create, then rebuild empty via merge path
	r2 := New()
	r2.RegisterHistogram("empty", []float64{1, 2})
	// Force an empty histogram instance via the lazy accessor.
	r2.mu.Lock()
	r2.hist(key{"empty", ""})
	r2.mu.Unlock()
	var buf bytes.Buffer
	if err := r2.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hist empty{} count=0 sum=0 min=0 max=0") {
		t.Errorf("empty histogram summary malformed:\n%s", out)
	}
}

// TestMergeOrderIndependentOfComputationOrder is the core of the
// worker-count determinism contract: children produced in any execution
// order, merged in index order, give byte-identical dumps.
func TestMergeOrderIndependentOfComputationOrder(t *testing.T) {
	build := func(pid int) *Recorder {
		c := New().Child(pid)
		c.Count("n", int64(pid)+1)
		c.Add("sum", 0.1*float64(pid+1))
		c.Observe("sdem.test", float64(pid))
		c.Gauge("last", float64(pid))
		c.Instant("point", "sweep", float64(pid), 0, Int("i", int64(pid)))
		return c
	}
	dump := func(children []*Recorder) string {
		root := New()
		for _, c := range children {
			root.Merge(c)
		}
		var buf bytes.Buffer
		if err := root.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		var tr bytes.Buffer
		if err := root.WriteTraceJSONL(&tr); err != nil {
			t.Fatal(err)
		}
		return buf.String() + tr.String()
	}
	// "Sequential" children vs. children built in scrambled order: the
	// merge order (index order) is what matters, not build order.
	seq := []*Recorder{build(0), build(1), build(2), build(3)}
	scrambled := make([]*Recorder, 4)
	for _, i := range []int{2, 0, 3, 1} {
		scrambled[i] = build(i)
	}
	if a, b := dump(seq), dump(scrambled); a != b {
		t.Errorf("merged dumps differ:\n%s\nvs\n%s", a, b)
	}
}

func TestChildInheritsLayouts(t *testing.T) {
	r := New()
	r.RegisterHistogram("h", []float64{10, 20})
	c := r.Child(1)
	c.Observe("h", 15)
	r.Merge(c)
	h := r.hists[key{"h", ""}]
	if h == nil || len(h.edges) != 2 {
		t.Fatalf("child did not inherit layout: %+v", h)
	}
	if h.counts[1] != 1 {
		t.Errorf("counts = %v, want observation in (10,20]", h.counts)
	}
}

func TestEventsSorted(t *testing.T) {
	r := New()
	r.Instant("b", "c", 2, 1)
	r.Instant("a", "c", 1, 0)
	c := r.Child(0) // pid 0 child events must interleave by ts with root pid-0 events
	c.Instant("mid", "c", 1.5, 0)
	r.Merge(c)
	ev := r.Events()
	var names []string
	for _, e := range ev {
		names = append(names, e.Name)
	}
	want := []string{"a", "mid", "b"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("event order = %v, want %v", names, want)
	}
}

func TestNegativeSpanClamped(t *testing.T) {
	r := New()
	r.Span("s", "c", 2, 1, 0)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Dur != 0 {
		t.Errorf("events = %+v, want single zero-duration span", ev)
	}
}

func TestProfilerReport(t *testing.T) {
	p := NewProfiler()
	stop := p.Start("fam")
	stop()
	pp := p.Pool("fam")
	pp.PoolStart(2, 4)
	done := pp.TaskStart()
	done()
	var buf bytes.Buffer
	if err := p.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"family fam", "runs=1", "workers=2", "tasks=1", "peak=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	fams := p.Families()
	if len(fams) != 1 || fams[0].Name != "fam" {
		t.Errorf("Families() = %+v", fams)
	}
}
