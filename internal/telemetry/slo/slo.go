// Package slo evaluates declarative service-level objectives over
// windowed telemetry series, producing a deterministic verdict document.
//
// A Spec names a per-window value — a ratio of two series, a sketch
// quantile, or the relative drift of a value against its own trailing
// baseline — and bounds it by Max. The spec is judged with multi-window
// burn rates: a window is "burning" when both its short and long
// trailing aggregate violate the bound (the classic fast-burn/slow-burn
// pairing, collapsed to plain per-window violation at the default
// 1-window ranges). The error budget then caps what fraction of
// eligible windows may burn before the objective fails.
//
// Everything here is arithmetic over a series.Series: no clocks, no
// maps ranged in nondeterministic order, so a verdict is byte-identical
// for byte-identical input series.
package slo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"sdem/internal/telemetry/series"
)

// Kind selects how a spec's per-window value is computed.
type Kind string

const (
	// KindRatio bounds sum(Num)/sum(Den) over the burn range.
	KindRatio Kind = "ratio"
	// KindQuantile bounds quantile Q of the Sketch merged over the burn
	// range.
	KindQuantile Kind = "quantile"
	// KindDrift bounds the relative deviation of the window's ratio from
	// the mean of its trailing Baseline windows.
	KindDrift Kind = "drift"
)

// Spec is one declarative objective. Series keys (Num, Den, Sketch)
// name a window entry either exactly ("name{labels}") or by bare metric
// name, which sums every labeled instance of the metric.
type Spec struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Num and Den are counter or float-delta keys; ratio and drift use
	// Num/Den per window. An empty Den divides by 1.
	Num string `json:"num,omitempty"`
	Den string `json:"den,omitempty"`
	// Sketch and Q select a quantile objective's input.
	Sketch string  `json:"sketch,omitempty"`
	Q      float64 `json:"q,omitempty"`
	// Max is the bound the per-window value must not exceed (for drift,
	// the relative deviation bound, e.g. 0.2 = ±20%).
	Max float64 `json:"max"`
	// BurnShort and BurnLong are trailing window counts; both aggregates
	// must violate Max for a window to burn. 0 defaults to 1 (and
	// BurnLong to BurnShort), making violation purely per-window.
	BurnShort int `json:"burn_short,omitempty"`
	BurnLong  int `json:"burn_long,omitempty"`
	// Baseline is the drift kind's trailing-mean width (default 5).
	Baseline int `json:"baseline,omitempty"`
	// Budget is the allowed burning fraction of eligible windows in
	// [0, 1]. 0 means a single burning window fails the objective.
	Budget float64 `json:"budget"`
}

// Validate reports a malformed spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("slo: spec with empty name")
	}
	switch s.Kind {
	case KindRatio, KindDrift:
		if s.Num == "" {
			return fmt.Errorf("slo: spec %q (%s) needs a num series", s.Name, s.Kind)
		}
	case KindQuantile:
		if s.Sketch == "" {
			return fmt.Errorf("slo: spec %q (quantile) needs a sketch key", s.Name)
		}
		if s.Q < 0 || s.Q > 1 {
			return fmt.Errorf("slo: spec %q quantile %g out of [0,1]", s.Name, s.Q)
		}
	default:
		return fmt.Errorf("slo: spec %q has unknown kind %q", s.Name, s.Kind)
	}
	if s.Max < 0 || math.IsNaN(s.Max) || math.IsInf(s.Max, 0) {
		return fmt.Errorf("slo: spec %q max %g must be finite and non-negative", s.Name, s.Max)
	}
	if s.Budget < 0 || s.Budget > 1 || math.IsNaN(s.Budget) {
		return fmt.Errorf("slo: spec %q budget %g out of [0,1]", s.Name, s.Budget)
	}
	if s.BurnShort < 0 || s.BurnLong < 0 || s.Baseline < 0 {
		return fmt.Errorf("slo: spec %q has a negative window count", s.Name)
	}
	return nil
}

func (s Spec) burnShort() int {
	if s.BurnShort <= 0 {
		return 1
	}
	return s.BurnShort
}

func (s Spec) burnLong() int {
	if s.BurnLong <= 0 {
		return s.burnShort()
	}
	return s.BurnLong
}

func (s Spec) baseline() int {
	if s.Baseline <= 0 {
		return 5
	}
	return s.Baseline
}

// Run is one maximal streak of consecutive burning windows, inclusive.
type Run struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Result is the verdict of one spec.
type Result struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Max and Budget echo the spec's bounds.
	Max    float64 `json:"max"`
	Budget float64 `json:"budget"`
	// Windows counts eligible windows (those where the value is
	// defined); Burning counts how many of them burned.
	Windows int `json:"windows"`
	Burning int `json:"burning"`
	// Consumed is the burning fraction Burning/Windows.
	Consumed float64 `json:"consumed"`
	// Last and Worst are the final and worst defined per-window values
	// (for drift, the relative deviation).
	Last  float64 `json:"last"`
	Worst float64 `json:"worst"`
	// Timeline lists the breach runs in window order.
	Timeline []Run `json:"timeline,omitempty"`
	Pass     bool  `json:"pass"`
}

// Verdict is the full evaluation document.
type Verdict struct {
	Series struct {
		Clock    string  `json:"clock"`
		Interval float64 `json:"interval"`
		Origin   float64 `json:"origin"`
		Windows  int     `json:"windows"`
	} `json:"series"`
	Results []Result `json:"results"`
	Pass    bool     `json:"pass"`
}

// Failing returns the names of failed objectives.
func (v *Verdict) Failing() []string {
	var out []string
	for _, r := range v.Results {
		if !r.Pass {
			out = append(out, r.Name)
		}
	}
	return out
}

// WriteJSON writes the verdict as indented JSON, byte-deterministic for
// a fixed verdict.
func (v *Verdict) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSpecs decodes a JSON spec list (the `-slo specs.json` file format
// of sdemwatch).
func ReadSpecs(r io.Reader) ([]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var specs []Spec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("slo: decoding specs: %w", err)
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// Evaluate judges every spec against the series and assembles the
// verdict.
func Evaluate(s *series.Series, specs []Spec) (*Verdict, error) {
	v := &Verdict{Pass: true}
	v.Series.Clock = s.Clock
	v.Series.Interval = s.Interval
	v.Series.Origin = s.Origin
	v.Series.Windows = len(s.Windows)
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		r, err := evaluateSpec(s, spec)
		if err != nil {
			return nil, err
		}
		if !r.Pass {
			v.Pass = false
		}
		v.Results = append(v.Results, r)
	}
	return v, nil
}

func evaluateSpec(s *series.Series, spec Spec) (Result, error) {
	res := Result{Name: spec.Name, Kind: spec.Kind, Max: spec.Max, Budget: spec.Budget}
	short, long := spec.burnShort(), spec.burnLong()
	var haveWorst bool
	var prevBurn bool
	for w := range s.Windows {
		val, ok, err := windowValue(s, spec, w)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			prevBurn = false
			continue
		}
		res.Windows++
		res.Last = val
		if !haveWorst || val > res.Worst {
			res.Worst = val
			haveWorst = true
		}
		burning := false
		if val > spec.Max {
			sv, sok, err := rangeValue(s, spec, w-short+1, w)
			if err != nil {
				return Result{}, err
			}
			lv, lok, err := rangeValue(s, spec, w-long+1, w)
			if err != nil {
				return Result{}, err
			}
			burning = sok && lok && sv > spec.Max && lv > spec.Max
		}
		if burning {
			res.Burning++
			idx := s.Windows[w].Index
			if prevBurn && len(res.Timeline) > 0 {
				res.Timeline[len(res.Timeline)-1].To = idx
			} else {
				res.Timeline = append(res.Timeline, Run{From: idx, To: idx})
			}
		}
		prevBurn = burning
	}
	if res.Windows > 0 {
		res.Consumed = float64(res.Burning) / float64(res.Windows)
	}
	res.Pass = res.Consumed <= spec.Budget
	return res, nil
}

// windowValue computes the spec's pointwise value at window w; ok is
// false when the value is undefined there (no traffic).
func windowValue(s *series.Series, spec Spec, w int) (val float64, ok bool, err error) {
	switch spec.Kind {
	case KindRatio:
		return ratioOver(s, spec, w, w)
	case KindQuantile:
		return quantileOver(s, spec, w, w)
	case KindDrift:
		cur, ok, err := ratioOver(s, spec, w, w)
		if err != nil || !ok {
			return 0, false, err
		}
		base, bok, err := trailingMean(s, spec, w)
		if err != nil {
			return 0, false, err
		}
		if !bok {
			return 0, false, nil
		}
		denom := math.Max(math.Abs(base), driftFloor)
		return math.Abs(cur-base) / denom, true, nil
	}
	return 0, false, fmt.Errorf("slo: unknown kind %q", spec.Kind)
}

// driftFloor keeps the drift denominator away from zero when a baseline
// value is legitimately ~0 (e.g. energy per job on an idle series).
const driftFloor = 1e-12

// rangeValue is the burn-range aggregate of the spec over windows
// [lo, hi] (clamped to the series).
func rangeValue(s *series.Series, spec Spec, lo, hi int) (float64, bool, error) {
	if lo < 0 {
		lo = 0
	}
	switch spec.Kind {
	case KindRatio:
		return ratioOver(s, spec, lo, hi)
	case KindQuantile:
		return quantileOver(s, spec, lo, hi)
	case KindDrift:
		// Drift is judged pointwise: the burn machinery only re-checks
		// the window itself.
		return windowValue(s, spec, hi)
	}
	return 0, false, fmt.Errorf("slo: unknown kind %q", spec.Kind)
}

// trailingMean averages the pointwise ratio over the Baseline windows
// preceding w (defined ones only); ok is false when none are defined.
func trailingMean(s *series.Series, spec Spec, w int) (float64, bool, error) {
	lo := w - spec.baseline()
	if lo < 0 {
		lo = 0
	}
	sum, n := 0.0, 0
	for i := lo; i < w; i++ {
		v, ok, err := ratioOver(s, spec, i, i)
		if err != nil {
			return 0, false, err
		}
		if ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false, nil
	}
	return sum / float64(n), true, nil
}

func ratioOver(s *series.Series, spec Spec, lo, hi int) (float64, bool, error) {
	num := 0.0
	den := 0.0
	for w := lo; w <= hi && w < len(s.Windows); w++ {
		num += seriesValue(&s.Windows[w], spec.Num)
		if spec.Den != "" {
			den += seriesValue(&s.Windows[w], spec.Den)
		}
	}
	if spec.Den == "" {
		den = 1
	}
	if den <= 0 {
		return 0, false, nil
	}
	return num / den, true, nil
}

func quantileOver(s *series.Series, spec Spec, lo, hi int) (float64, bool, error) {
	var merged *series.Sketch
	for w := lo; w <= hi && w < len(s.Windows); w++ {
		for _, key := range matchKeys(sketchKeys(&s.Windows[w]), spec.Sketch) {
			sk := s.Windows[w].Sketches[key]
			if merged == nil {
				merged = sk.Clone()
				continue
			}
			if err := merged.Merge(sk); err != nil {
				return 0, false, fmt.Errorf("slo: spec %q: %w", spec.Name, err)
			}
		}
	}
	if merged.Count() == 0 {
		return 0, false, nil
	}
	return merged.Quantile(spec.Q), true, nil
}

// seriesValue resolves a spec key against one window, summing counters
// and float deltas whose key matches exactly or by bare metric name.
func seriesValue(w *series.Window, key string) float64 {
	if key == "" {
		return 0
	}
	total := 0.0
	for _, k := range matchKeys(counterKeys(w), key) {
		total += float64(w.Counters[k])
	}
	for _, k := range matchKeys(floatKeys(w), key) {
		total += w.Floats[k]
	}
	return total
}

// matchKeys filters sorted window keys down to those naming the spec
// key: an exact match, or any labeled instance "key{...}" of the bare
// metric name.
func matchKeys(keys []string, key string) []string {
	var out []string
	for _, k := range keys {
		if k == key || (strings.HasPrefix(k, key) && len(k) > len(key) && k[len(key)] == '{') {
			out = append(out, k)
		}
	}
	return out
}

func counterKeys(w *series.Window) []string { return sortedKeys(w.Counters) }
func floatKeys(w *series.Window) []string   { return sortedKeys(w.Floats) }
func sketchKeys(w *series.Window) []string  { return sortedKeys(w.Sketches) }

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
