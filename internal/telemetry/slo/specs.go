package slo

// Canonical objective constructors over the metric names the module's
// engines emit. Commands compose these from flags instead of each
// inventing its own key strings; a threshold <= 0 disables the optional
// objectives (the constructors return nil for them).

// UnexplainedMissSpec is the non-negotiable soak objective: an
// unexplained deadline miss is an engine bug, so the budget is zero and
// a single miss in any window fails the campaign.
func UnexplainedMissSpec() Spec {
	return Spec{
		Name: "unexplained-miss-rate",
		Kind: KindRatio,
		Num:  "sdem.sim.unexplained_misses",
		Den:  "sdem.sim.completions",
	}
}

// MissRateSpec bounds the total per-window deadline-miss rate (explained
// misses included — this is the service-quality view, not the bug view).
// Burn pairing 2/6 windows with a 5% budget: a transient one-window
// spike is tolerated, sustained missing is not.
func MissRateSpec(max float64) *Spec {
	if max <= 0 {
		return nil
	}
	return &Spec{
		Name:      "miss-rate",
		Kind:      KindRatio,
		Num:       "sdem.sim.misses",
		Den:       "sdem.sim.completions",
		Max:       max,
		BurnShort: 2,
		BurnLong:  6,
		Budget:    0.05,
	}
}

// P99ResponseSpec bounds the p99 of the virtual-time response sketch the
// streaming engine feeds per retirement.
func P99ResponseSpec(max float64) *Spec {
	if max <= 0 {
		return nil
	}
	return &Spec{
		Name:      "p99-response",
		Kind:      KindQuantile,
		Sketch:    "sdem.stream.response_s",
		Q:         0.99,
		Max:       max,
		BurnShort: 2,
		BurnLong:  6,
		Budget:    0.05,
	}
}

// EnergyDriftSpec bounds the relative drift of metered energy per
// completed job against its own trailing 5-window baseline — the
// long-haul regression detector for the paper's core quantity.
func EnergyDriftSpec(max float64) *Spec {
	if max <= 0 {
		return nil
	}
	return &Spec{
		Name:   "energy-per-job-drift",
		Kind:   KindDrift,
		Num:    "sdem.sim.metered_j",
		Den:    "sdem.sim.completions",
		Max:    max,
		Budget: 0.1,
	}
}

// SoakSpecs assembles the default soak objective set. The unexplained
// miss objective is always present; the others activate when their
// threshold is positive.
func SoakSpecs(missRate, p99Resp, energyDrift float64) []Spec {
	specs := []Spec{UnexplainedMissSpec()}
	for _, s := range []*Spec{MissRateSpec(missRate), P99ResponseSpec(p99Resp), EnergyDriftSpec(energyDrift)} {
		if s != nil {
			specs = append(specs, *s)
		}
	}
	return specs
}

// ShedRateSpec bounds the serve layer's shed fraction per window of the
// request ordinal clock.
func ShedRateSpec(max float64) *Spec {
	if max <= 0 {
		return nil
	}
	return &Spec{
		Name:      "shed-rate",
		Kind:      KindRatio,
		Num:       "sdem.serve.shed",
		Den:       "sdem.serve.requests",
		Max:       max,
		BurnShort: 2,
		BurnLong:  6,
		Budget:    0.1,
	}
}

// P99LatencySpec bounds the serve path's wall-latency sketch p99 in
// milliseconds. (The values are wall measurements — inherently noisy —
// but the windowing clock is still the request ordinal, so the series
// layout stays deterministic even though the sketched values are not.)
func P99LatencySpec(maxMS float64) *Spec {
	if maxMS <= 0 {
		return nil
	}
	return &Spec{
		Name:      "p99-latency-ms",
		Kind:      KindQuantile,
		Sketch:    "sdem.serve.latency_ms",
		Q:         0.99,
		Max:       maxMS,
		BurnShort: 2,
		BurnLong:  6,
		Budget:    0.1,
	}
}

// ServeSpecs assembles the default serve-campaign objective set.
func ServeSpecs(shedRate, p99ms float64) []Spec {
	var specs []Spec
	for _, s := range []*Spec{ShedRateSpec(shedRate), P99LatencySpec(p99ms)} {
		if s != nil {
			specs = append(specs, *s)
		}
	}
	return specs
}
