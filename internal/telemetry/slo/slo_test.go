package slo

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"sdem/internal/parallel"
	"sdem/internal/stats"
	"sdem/internal/telemetry/series"

	"math/rand"
)

func mkSeries(ws ...series.Window) *series.Series {
	for i := range ws {
		ws[i].Index = int64(i)
	}
	return &series.Series{Clock: series.ClockVirtual, Interval: 60, Alpha: series.DefaultAlpha, Windows: ws}
}

func ratioWindow(misses, completions int64) series.Window {
	return series.Window{Counters: map[string]int64{
		"sdem.sim.misses{sched=sdem-on}":      misses,
		"sdem.sim.completions{sched=sdem-on}": completions,
	}}
}

func TestRatioBudgetAndTimeline(t *testing.T) {
	// 10 windows, 100 completions each; windows 3,4,5 miss heavily.
	var ws []series.Window
	for i := 0; i < 10; i++ {
		m := int64(0)
		if i >= 3 && i <= 5 {
			m = 50
		}
		ws = append(ws, ratioWindow(m, 100))
	}
	spec := Spec{Name: "miss", Kind: KindRatio, Num: "sdem.sim.misses", Den: "sdem.sim.completions", Max: 0.1, Budget: 0.2}
	v, err := Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	r := v.Results[0]
	if r.Windows != 10 || r.Burning != 3 {
		t.Fatalf("windows=%d burning=%d, want 10/3", r.Windows, r.Burning)
	}
	if len(r.Timeline) != 1 || r.Timeline[0] != (Run{From: 3, To: 5}) {
		t.Fatalf("timeline %+v, want one run [3,5]", r.Timeline)
	}
	if r.Pass {
		t.Fatal("consumed 0.3 > budget 0.2 must fail")
	}
	if v.Pass {
		t.Fatal("verdict must fail when a result fails")
	}
	// The same series under a looser budget passes.
	spec.Budget = 0.3
	v, err = Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Results[0].Pass {
		t.Fatal("consumed 0.3 <= budget 0.3 must pass")
	}
	// Bare-name matching summed the labeled instances: Worst is 0.5.
	if math.Abs(v.Results[0].Worst-0.5) > 1e-12 {
		t.Fatalf("worst = %g, want 0.5", v.Results[0].Worst)
	}
}

func TestBurnRangeSuppressesSpikes(t *testing.T) {
	// One 1-window spike; the 3-window burn range dilutes it below Max.
	ws := []series.Window{
		ratioWindow(0, 100), ratioWindow(0, 100), ratioWindow(30, 100),
		ratioWindow(0, 100), ratioWindow(0, 100),
	}
	spec := Spec{
		Name: "miss", Kind: KindRatio,
		Num: "sdem.sim.misses", Den: "sdem.sim.completions",
		Max: 0.15, BurnShort: 3, Budget: 0,
	}
	v, err := Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if v.Results[0].Burning != 0 {
		t.Fatalf("diluted spike must not burn, got %d burning", v.Results[0].Burning)
	}
	if !v.Pass {
		t.Fatal("verdict must pass")
	}
	// Pointwise (default burn 1) the same spike fails a zero budget.
	spec.BurnShort = 0
	v, err = Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("pointwise spike must fail a zero budget")
	}
}

func TestUndefinedWindowsAreIneligible(t *testing.T) {
	ws := []series.Window{ratioWindow(0, 100), {}, ratioWindow(10, 100)}
	spec := Spec{Name: "miss", Kind: KindRatio, Num: "sdem.sim.misses", Den: "sdem.sim.completions", Max: 0.5, Budget: 0}
	v, err := Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if v.Results[0].Windows != 2 {
		t.Fatalf("idle window must not count: eligible=%d, want 2", v.Results[0].Windows)
	}
}

func TestDriftSpec(t *testing.T) {
	// Energy per job stays at 2.0 for 6 windows, then jumps to 3.0.
	var ws []series.Window
	for i := 0; i < 8; i++ {
		e := 200.0
		if i >= 6 {
			e = 300.0
		}
		ws = append(ws, series.Window{
			Counters: map[string]int64{"sdem.sim.completions": 100},
			Floats:   map[string]float64{"sdem.sim.metered_j": e},
		})
	}
	spec := *EnergyDriftSpec(0.2)
	spec.Budget = 0
	v, err := Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	r := v.Results[0]
	if r.Burning == 0 || r.Pass {
		t.Fatalf("50%% energy jump must burn a 20%% drift bound: %+v", r)
	}
	if r.Timeline[0].From != 6 {
		t.Fatalf("drift breach must start at the jump window, got %+v", r.Timeline)
	}
	// A stable series passes.
	stable := mkSeries(ws[:6]...)
	v, err = Evaluate(stable, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatal("stable energy series must pass the drift bound")
	}
}

func TestQuantileSpec(t *testing.T) {
	mk := func(scale float64) series.Window {
		sk := series.NewSketch(series.DefaultAlpha)
		for i := 1; i <= 100; i++ {
			sk.Observe(scale * float64(i) / 100)
		}
		return series.Window{Sketches: map[string]*series.Sketch{"sdem.stream.response_s": sk}}
	}
	ws := []series.Window{mk(0.1), mk(0.1), mk(5), mk(5), mk(5)}
	spec := *P99ResponseSpec(1.0)
	spec.BurnShort, spec.BurnLong, spec.Budget = 1, 1, 0
	v, err := Evaluate(mkSeries(ws...), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	r := v.Results[0]
	if r.Burning != 3 || r.Pass {
		t.Fatalf("slow windows must burn: %+v", r)
	}
	if r.Worst < 4 || r.Worst > 5.1 {
		t.Fatalf("worst p99 = %g, want ~4.95", r.Worst)
	}
}

func TestReadSpecsValidates(t *testing.T) {
	good := `[{"name":"x","kind":"ratio","num":"a","den":"b","max":0.5,"budget":0}]`
	specs, err := ReadSpecs(strings.NewReader(good))
	if err != nil || len(specs) != 1 {
		t.Fatalf("good specs: %v %v", specs, err)
	}
	for _, bad := range []string{
		`[{"name":"","kind":"ratio","num":"a","max":1,"budget":0}]`,
		`[{"name":"x","kind":"bogus","num":"a","max":1,"budget":0}]`,
		`[{"name":"x","kind":"quantile","sketch":"s","q":1.5,"max":1,"budget":0}]`,
		`[{"name":"x","kind":"ratio","num":"a","max":1,"budget":2}]`,
		`[{"name":"x","kind":"ratio","num":"a","max":1,"budget":0,"bogus":1}]`,
	} {
		if _, err := ReadSpecs(strings.NewReader(bad)); err == nil {
			t.Fatalf("spec %s must be rejected", bad)
		}
	}
}

// TestVerdictWorkerDeterminism is satellite property (c): building the
// per-window data through parallel.Map at any worker count, then
// evaluating, must produce byte-identical series dumps and verdicts at a
// fixed seed — including across repeat runs.
func TestVerdictWorkerDeterminism(t *testing.T) {
	const windows = 64
	build := func(workers int) ([]byte, []byte) {
		t.Helper()
		ws, err := parallel.Map(context.Background(), workers, windows, func(_ context.Context, i int) (series.Window, error) {
			r := rand.New(rand.NewSource(stats.DeriveSeed(1234, uint64(i))))
			sk := series.NewSketch(series.DefaultAlpha)
			n := 50 + r.Intn(100)
			misses := int64(0)
			energy := 0.0
			for j := 0; j < n; j++ {
				sk.Observe(r.ExpFloat64() * 0.02)
				if r.Intn(20) == 0 {
					misses++
				}
				energy += 1.5 + r.Float64()
			}
			return series.Window{
				Index:    int64(i),
				Counters: map[string]int64{"sdem.sim.completions": int64(n), "sdem.sim.misses": misses},
				Floats:   map[string]float64{"sdem.sim.metered_j": energy},
				Sketches: map[string]*series.Sketch{"sdem.stream.response_s": sk},
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		s := &series.Series{Clock: series.ClockVirtual, Interval: 60, Alpha: series.DefaultAlpha, Windows: ws}
		var dump bytes.Buffer
		if err := s.WriteJSONL(&dump); err != nil {
			t.Fatal(err)
		}
		v, err := Evaluate(s, SoakSpecs(0.2, 1.0, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		var vb bytes.Buffer
		if err := v.WriteJSON(&vb); err != nil {
			t.Fatal(err)
		}
		return dump.Bytes(), vb.Bytes()
	}
	refDump, refVerdict := build(1)
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			dump, verdict := build(workers)
			if !bytes.Equal(dump, refDump) {
				t.Fatalf("series dump differs at workers=%d rep=%d", workers, rep)
			}
			if !bytes.Equal(verdict, refVerdict) {
				t.Fatalf("verdict differs at workers=%d rep=%d", workers, rep)
			}
		}
	}
	if !bytes.Contains(refVerdict, []byte(`"unexplained-miss-rate"`)) {
		t.Fatal("soak spec set must include the unexplained-miss objective")
	}
}

func TestSpecConstructorsDisable(t *testing.T) {
	if MissRateSpec(0) != nil || P99ResponseSpec(-1) != nil || EnergyDriftSpec(0) != nil ||
		ShedRateSpec(0) != nil || P99LatencySpec(0) != nil {
		t.Fatal("non-positive thresholds must disable optional specs")
	}
	if got := len(SoakSpecs(0, 0, 0)); got != 1 {
		t.Fatalf("disabled soak set must keep only the unexplained objective, got %d", got)
	}
	if got := len(ServeSpecs(0.1, 50)); got != 2 {
		t.Fatalf("serve set: got %d specs, want 2", got)
	}
	for _, s := range append(SoakSpecs(0.1, 1, 0.2), ServeSpecs(0.1, 50)...) {
		if err := s.Validate(); err != nil {
			t.Fatalf("constructor emitted invalid spec: %v", err)
		}
	}
	var errSpec error
	_, errSpec = Evaluate(mkSeries(), []Spec{{Name: "x", Kind: "bogus"}})
	if errSpec == nil {
		t.Fatal("Evaluate must reject invalid specs")
	}
}

func TestFailingNames(t *testing.T) {
	v := &Verdict{Results: []Result{{Name: "a", Pass: true}, {Name: "b"}, {Name: "c"}}}
	got := v.Failing()
	if fmt.Sprint(got) != "[b c]" {
		t.Fatalf("failing = %v", got)
	}
}
