package telemetry

import "testing"

// workload is the arithmetic body shared by the benchmark variants, so
// the only difference between them is the instrumentation itself.
func workload(i int) float64 {
	x := float64(i%97) * 0.013
	return x*x + 1
}

// BenchmarkUninstrumented is the baseline: the workload with no
// telemetry calls at all.
func BenchmarkUninstrumented(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += workload(i)
	}
	sink = acc
}

// BenchmarkTelemetryDisabled guards the zero-cost-when-disabled
// guarantee: the same workload with nil-recorder instrumentation on
// every iteration must sit within noise of BenchmarkUninstrumented and
// allocate nothing.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		v := workload(i)
		r.Count("sdem.bench.iters", 1)
		r.Add("sdem.bench.sum", v)
		r.Observe("sdem.bench.value", v)
		acc += v
	}
	sink = acc
}

// BenchmarkTelemetryEnabled documents the enabled-path cost for scale
// planning; it is not part of the overhead guarantee.
func BenchmarkTelemetryEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		v := workload(i)
		r.Count("sdem.bench.iters", 1)
		r.Add("sdem.bench.sum", v)
		r.Observe("sdem.bench.value", v)
		acc += v
	}
	sink = acc
}

// BenchmarkChildSpawn documents the per-request recorder cost on the
// serve path: spawning a child that records nothing must cost exactly
// one allocation (the Recorder struct — no metric maps, no layout copy),
// which is what made lazy map initialization worth it.
func BenchmarkChildSpawn(b *testing.B) {
	root := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := root.Child(i)
		if c == nil {
			b.Fatal("nil child")
		}
	}
}

// BenchmarkChildRequest is the serve-path shape end to end: child spawn,
// a labeled counter + latency observation with an exemplar, and a
// metrics-only merge back into the root.
func BenchmarkChildRequest(b *testing.B) {
	root := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := root.Child(i)
		c.CountL("sdem.bench.requests", "code=200,route=solve", 1)
		c.ObserveExL("sdem.bench.latency_s", "route=solve", workload(i)*1e-3, "trace_id=00f067aa0ba902b7")
		root.MergeMetrics(c)
	}
}

var sink float64
