package telemetry

import "testing"

// workload is the arithmetic body shared by the benchmark variants, so
// the only difference between them is the instrumentation itself.
func workload(i int) float64 {
	x := float64(i%97) * 0.013
	return x*x + 1
}

// BenchmarkUninstrumented is the baseline: the workload with no
// telemetry calls at all.
func BenchmarkUninstrumented(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += workload(i)
	}
	sink = acc
}

// BenchmarkTelemetryDisabled guards the zero-cost-when-disabled
// guarantee: the same workload with nil-recorder instrumentation on
// every iteration must sit within noise of BenchmarkUninstrumented and
// allocate nothing.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		v := workload(i)
		r.Count("sdem.bench.iters", 1)
		r.Add("sdem.bench.sum", v)
		r.Observe("sdem.bench.value", v)
		acc += v
	}
	sink = acc
}

// BenchmarkTelemetryEnabled documents the enabled-path cost for scale
// planning; it is not part of the overhead guarantee.
func BenchmarkTelemetryEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		v := workload(i)
		r.Count("sdem.bench.iters", 1)
		r.Add("sdem.bench.sum", v)
		r.Observe("sdem.bench.value", v)
		acc += v
	}
	sink = acc
}

var sink float64
