// Package cacti is a stand-in for the CACTI memory modelling tool the
// paper uses to derive DRAM static power (§8.1.3): a parametric leakage
// model mapping technology node and capacity to the memory static power
// α_m and break-even time ξ_m.
//
// The model is calibrated so that a 50 nm DRAM sweeps α_m across the
// paper's Table 4 grid (1–8 W) as capacity grows from 512 MB to 4 GiB,
// following the first-order physics CACTI encodes: leakage scales
// linearly with the number of cells and grows as feature size shrinks
// (sub-threshold leakage rises steeply below ~70 nm).
package cacti

import (
	"fmt"
	"math"

	"sdem/internal/numeric"
)

// DRAM describes one main-memory configuration.
type DRAM struct {
	// TechNM is the process feature size in nanometres (e.g. 50).
	TechNM float64
	// CapacityMB is the total capacity in mebibytes.
	CapacityMB float64
	// TransitionJ is the energy of one full sleep/wake transition pair in
	// joules. Zero selects the model's default, which scales with
	// capacity (more banks to drain and restore).
	TransitionJ float64
}

// refTech and refLeakWPerMB calibrate the model: at 50 nm, leakage is
// about 2 mW per MB, putting a 2 GiB part at ≈4 W — the paper's default
// α_m.
const (
	refTech       = 50.0
	refLeakWPerMB = 2.0e-3
)

// Validate reports whether the configuration is physically meaningful.
func (d DRAM) Validate() error {
	if d.TechNM < 10 || d.TechNM > 250 {
		return fmt.Errorf("cacti: technology node %g nm outside the modelled 10–250 nm range", d.TechNM)
	}
	if d.CapacityMB <= 0 {
		return fmt.Errorf("cacti: capacity %g MB must be positive", d.CapacityMB)
	}
	if d.TransitionJ < 0 {
		return fmt.Errorf("cacti: negative transition energy %g", d.TransitionJ)
	}
	return nil
}

// StaticPower returns the leakage power α_m in watts: linear in cell
// count, scaled by a sub-threshold factor that grows quadratically as the
// node shrinks below the 50 nm reference (Wilton–Jouppi-style first-order
// scaling).
func (d DRAM) StaticPower() float64 {
	scale := refTech / d.TechNM
	return refLeakWPerMB * d.CapacityMB * scale * scale
}

// TransitionEnergy returns the energy of one sleep/wake cycle in joules.
// The default charges 60 µJ per MB — dominated by restoring bank state —
// which puts a 2 GiB part at ≈0.123 J, i.e. a ≈31 ms break-even at its
// own leakage, inside the paper's 15–70 ms grid.
func (d DRAM) TransitionEnergy() float64 {
	if d.TransitionJ > 0 {
		return d.TransitionJ
	}
	return 60e-6 * d.CapacityMB
}

// BreakEven returns ξ_m = transition energy / α_m in seconds.
func (d DRAM) BreakEven() float64 {
	am := d.StaticPower()
	if numeric.IsZero(am, 0) {
		return 0
	}
	return d.TransitionEnergy() / am
}

// ForStaticPower returns the 50 nm capacity whose leakage equals the
// requested α_m — the inverse used to realize the Table 4 sweep points.
func ForStaticPower(alphaM float64) (DRAM, error) {
	if alphaM <= 0 {
		return DRAM{}, fmt.Errorf("cacti: α_m %g must be positive", alphaM)
	}
	return DRAM{TechNM: refTech, CapacityMB: alphaM / refLeakWPerMB}, nil
}

// Table4Grid returns the DRAM configurations realizing the paper's
// α_m ∈ {1..8} W sweep at 50 nm.
func Table4Grid() []DRAM {
	out := make([]DRAM, 8)
	for i := range out {
		d, _ := ForStaticPower(float64(i + 1))
		out[i] = d
	}
	return out
}

// ScaleBreakEven returns a copy whose transition energy is adjusted so
// that the break-even time equals xi seconds — how the experiments pin
// ξ_m to the Table 4 grid independently of α_m.
func (d DRAM) ScaleBreakEven(xi float64) DRAM {
	if xi < 0 {
		xi = 0
	}
	d.TransitionJ = math.Max(xi*d.StaticPower(), 1e-18)
	return d
}
