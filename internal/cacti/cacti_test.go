package cacti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultPointMatchesPaper(t *testing.T) {
	// A 2 GiB 50 nm part should leak ≈4 W (the paper's default α_m) with
	// a break-even inside the 15–70 ms Table 4 range.
	d := DRAM{TechNM: 50, CapacityMB: 2048}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if am := d.StaticPower(); math.Abs(am-4.096) > 0.01 {
		t.Errorf("α_m = %g W, want ≈4.1", am)
	}
	be := d.BreakEven()
	if be < 0.015 || be > 0.070 {
		t.Errorf("ξ_m = %g s, want within [15,70] ms", be)
	}
}

func TestLeakageScaling(t *testing.T) {
	big := DRAM{TechNM: 50, CapacityMB: 4096}
	small := DRAM{TechNM: 50, CapacityMB: 1024}
	if big.StaticPower() <= small.StaticPower() {
		t.Error("leakage must grow with capacity")
	}
	if ratio := big.StaticPower() / small.StaticPower(); math.Abs(ratio-4) > 1e-9 {
		t.Errorf("leakage should be linear in capacity, ratio = %g", ratio)
	}
	older := DRAM{TechNM: 90, CapacityMB: 2048}
	newer := DRAM{TechNM: 45, CapacityMB: 2048}
	if newer.StaticPower() <= older.StaticPower() {
		t.Error("leakage must grow as the node shrinks")
	}
	if ratio := newer.StaticPower() / older.StaticPower(); math.Abs(ratio-4) > 1e-9 {
		t.Errorf("quadratic node scaling expected, ratio = %g", ratio)
	}
}

func TestForStaticPowerInverts(t *testing.T) {
	for _, am := range []float64{1, 2, 3.5, 8} {
		d, err := ForStaticPower(am)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.StaticPower(); math.Abs(got-am) > 1e-9 {
			t.Errorf("ForStaticPower(%g) leaks %g", am, got)
		}
	}
	if _, err := ForStaticPower(0); err == nil {
		t.Error("zero α_m must be rejected")
	}
}

func TestTable4GridSpansPaperRange(t *testing.T) {
	grid := Table4Grid()
	if len(grid) != 8 {
		t.Fatalf("grid size = %d, want 8", len(grid))
	}
	for i, d := range grid {
		want := float64(i + 1)
		if got := d.StaticPower(); math.Abs(got-want) > 1e-9 {
			t.Errorf("grid[%d] α_m = %g, want %g", i, got, want)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("grid[%d] invalid: %v", i, err)
		}
	}
}

func TestScaleBreakEven(t *testing.T) {
	d, _ := ForStaticPower(4)
	for _, xi := range []float64{0.015, 0.030, 0.070} {
		scaled := d.ScaleBreakEven(xi)
		if got := scaled.BreakEven(); math.Abs(got-xi) > 1e-12 {
			t.Errorf("ScaleBreakEven(%g) gives ξ_m = %g", xi, got)
		}
	}
	if got := d.ScaleBreakEven(-1).BreakEven(); got < 0 {
		t.Errorf("negative ξ_m clamped, got %g", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []DRAM{
		{TechNM: 5, CapacityMB: 1024},
		{TechNM: 500, CapacityMB: 1024},
		{TechNM: 50, CapacityMB: 0},
		{TechNM: 50, CapacityMB: 1024, TransitionJ: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, d)
		}
	}
}

func TestPropertyBreakEvenDimensionallyConsistent(t *testing.T) {
	// ξ_m·α_m must always reproduce the transition energy.
	f := func(capRaw, techRaw uint16) bool {
		d := DRAM{
			TechNM:     20 + float64(techRaw%180),
			CapacityMB: 128 + float64(capRaw%8192),
		}
		return math.Abs(d.BreakEven()*d.StaticPower()-d.TransitionEnergy()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
