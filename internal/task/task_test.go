package task

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilledSpeed(t *testing.T) {
	tk := Task{Release: 0.1, Deadline: 0.3, Workload: 4e6}
	if got, want := tk.FilledSpeed(), 2e7; math.Abs(got-want) > 1 {
		t.Errorf("filled speed = %g, want %g", got, want)
	}
	empty := Task{Release: 1, Deadline: 1, Workload: 5}
	if !math.IsInf(empty.FilledSpeed(), 1) {
		t.Error("positive work in empty window must have infinite filled speed")
	}
	zero := Task{Release: 1, Deadline: 1, Workload: 0}
	if zero.FilledSpeed() != 0 {
		t.Error("zero work must have zero filled speed")
	}
}

func TestValidate(t *testing.T) {
	good := Task{ID: 1, Release: 0, Deadline: 1, Workload: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good task rejected: %v", err)
	}
	bad := []Task{
		{ID: 2, Release: 1, Deadline: 0, Workload: 1},
		{ID: 3, Release: 0, Deadline: 1, Workload: -1},
		{ID: 4, Release: 0, Deadline: 0, Workload: 1},
		{ID: 5, Release: math.NaN(), Deadline: 1, Workload: 1},
	}
	for _, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("task %d should be invalid", tk.ID)
		}
	}
	dup := Set{{ID: 1, Deadline: 1, Workload: 1}, {ID: 1, Deadline: 2, Workload: 1}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs should be rejected")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		set  Set
		want Model
	}{
		{"empty", Set{}, ModelEmpty},
		{"single", Set{{ID: 1, Deadline: 1, Workload: 1}}, ModelCommonDeadline},
		{
			"common both",
			Set{{ID: 1, Deadline: 2, Workload: 1}, {ID: 2, Deadline: 2, Workload: 3}},
			ModelCommonDeadline,
		},
		{
			"common release",
			Set{{ID: 1, Deadline: 2, Workload: 1}, {ID: 2, Deadline: 5, Workload: 3}},
			ModelCommonRelease,
		},
		{
			"agreeable",
			Set{
				{ID: 1, Release: 0, Deadline: 2, Workload: 1},
				{ID: 2, Release: 1, Deadline: 4, Workload: 3},
				{ID: 3, Release: 3, Deadline: 4, Workload: 1},
			},
			ModelAgreeable,
		},
		{
			"general (nested)",
			Set{
				{ID: 1, Release: 0, Deadline: 10, Workload: 1},
				{ID: 2, Release: 2, Deadline: 5, Workload: 3},
			},
			ModelGeneral,
		},
	}
	for _, tc := range cases {
		if got := tc.set.Classify(); got != tc.want {
			t.Errorf("%s: Classify() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{
		ModelEmpty:          "empty",
		ModelCommonDeadline: "common-release-and-deadline",
		ModelCommonRelease:  "common-release",
		ModelAgreeable:      "agreeable-deadline",
		ModelGeneral:        "general",
		Model(42):           "Model(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Model(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestSortStability(t *testing.T) {
	s := Set{
		{ID: 3, Release: 0, Deadline: 5, Workload: 1},
		{ID: 1, Release: 0, Deadline: 2, Workload: 1},
		{ID: 2, Release: 1, Deadline: 2, Workload: 1},
	}
	s.SortByDeadline()
	if s[0].ID != 1 || s[1].ID != 2 || s[2].ID != 3 {
		t.Errorf("SortByDeadline order = %d,%d,%d", s[0].ID, s[1].ID, s[2].ID)
	}
	s.SortByRelease()
	if s[0].Release > s[1].Release || s[1].Release > s[2].Release {
		t.Error("SortByRelease not sorted")
	}
}

func TestSpanAndTotals(t *testing.T) {
	s := Set{
		{ID: 1, Release: 2, Deadline: 9, Workload: 5},
		{ID: 2, Release: 1, Deadline: 4, Workload: 3},
	}
	start, end := s.Span()
	if start != 1 || end != 9 {
		t.Errorf("Span = (%g, %g), want (1, 9)", start, end)
	}
	if s.TotalWorkload() != 8 {
		t.Errorf("TotalWorkload = %g, want 8", s.TotalWorkload())
	}
	ws := s.Workloads()
	if len(ws) != 2 || ws[0] != 5 || ws[1] != 3 {
		t.Errorf("Workloads = %v", ws)
	}
	if a, b := (Set{}).Span(); a != 0 || b != 0 {
		t.Error("empty span must be (0,0)")
	}
}

func TestFeasible(t *testing.T) {
	s := Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 100}, // filled 100
		{ID: 2, Release: 0, Deadline: 2, Workload: 100}, // filled 50
	}
	if !s.Feasible(100) {
		t.Error("set should be feasible at s_up = 100")
	}
	if s.Feasible(99) {
		t.Error("set should be infeasible at s_up = 99")
	}
	if !s.Feasible(0) {
		t.Error("zero speedMax means unbounded")
	}
	if got := s.MaxFilledSpeed(); got != 100 {
		t.Errorf("MaxFilledSpeed = %g, want 100", got)
	}
}

func TestShifted(t *testing.T) {
	s := Set{{ID: 1, Release: 1, Deadline: 2, Workload: 7}}
	sh := s.Shifted(-1)
	if sh[0].Release != 0 || sh[0].Deadline != 1 {
		t.Errorf("Shifted = %+v", sh[0])
	}
	if s[0].Release != 1 {
		t.Error("Shifted must not mutate the receiver")
	}
}

func TestByID(t *testing.T) {
	s := Set{{ID: 7, Workload: 1, Deadline: 1}}
	if tk, ok := s.ByID(7); !ok || tk.Workload != 1 {
		t.Error("ByID(7) failed")
	}
	if _, ok := s.ByID(8); ok {
		t.Error("ByID(8) should miss")
	}
}

func randomSet(r *rand.Rand, n int) Set {
	s := make(Set, n)
	for i := range s {
		rel := r.Float64() * 10
		s[i] = Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + 0.1 + r.Float64()*10,
			Workload: 1 + r.Float64()*100,
		}
	}
	return s
}

func TestPropertyAgreeableDetection(t *testing.T) {
	// Property: a set constructed with sorted (release, deadline) pairs is
	// agreeable; swapping deadlines of two tasks with strictly ordered
	// releases and strictly reversed deadlines breaks it.
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%8)
		rels := make([]float64, n)
		dls := make([]float64, n)
		for i := range rels {
			rels[i] = float64(i) + r.Float64()*0.5
			dls[i] = rels[i] + 1 + float64(i)*0.1
		}
		s := make(Set, n)
		for i := range s {
			s[i] = Task{ID: i, Release: rels[i], Deadline: dls[i], Workload: 1}
		}
		if !s.IsAgreeable() {
			return false
		}
		// Break the property: give the earliest-released task a deadline
		// strictly after everyone else's.
		s[0].Deadline = dls[n-1] + 5
		return !s.IsAgreeable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySortByDeadlineIsSorted(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, int(nRaw%20)+1)
		s.SortByDeadline()
		for i := 1; i < len(s); i++ {
			if s[i].Deadline < s[i-1].Deadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneIsIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 5)
		c := s.Clone()
		c[0].Workload = -999
		return s[0].Workload != -999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
