// Package task defines the real-time task model of the SDEM problem: tasks
// with release time, deadline and cycle workload, plus the task-set
// classification (common release / agreeable deadline / general) that
// selects which scheduling algorithm of the paper applies.
package task

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
)

// speedTol is the package's relative speed-feasibility tolerance. It
// matches schedule.Tol (1e-9) by value; the schedule package imports task,
// so the constant is restated here rather than imported.
const speedTol = 1e-9

// Task is one real-time job instance. Times are seconds, workload is CPU
// cycles. A task accesses memory throughout its whole execution (§3).
type Task struct {
	// ID identifies the task within its set; algorithms preserve it so
	// schedules can be traced back to inputs.
	ID int
	// Release is the earliest time r_i the task may start.
	Release float64
	// Deadline is the time d_i by which the task must complete.
	Deadline float64
	// Workload is the number of CPU cycles w_i the task requires.
	Workload float64
	// Name optionally labels the task (e.g. "fft#3") for traces.
	Name string
}

// Window returns the length of the feasible region |I_i| = d_i − r_i.
func (t Task) Window() float64 { return t.Deadline - t.Release }

// FilledSpeed returns s_fi = w_i/(d_i − r_i), the slowest speed that
// completes the task inside its feasible region. It is +Inf for an empty
// window with positive work.
func (t Task) FilledSpeed() float64 {
	w := t.Window()
	if w <= 0 {
		if numeric.IsZero(t.Workload, 0) {
			return 0
		}
		return math.Inf(1)
	}
	return t.Workload / w
}

// Validate reports whether the task is well-formed.
func (t Task) Validate() error {
	switch {
	case math.IsNaN(t.Release) || math.IsNaN(t.Deadline) || math.IsNaN(t.Workload):
		return fmt.Errorf("task %d: NaN field", t.ID)
	case t.Workload < 0:
		return fmt.Errorf("task %d: negative workload %g", t.ID, t.Workload)
	case t.Deadline < t.Release:
		return fmt.Errorf("task %d: deadline %g precedes release %g", t.ID, t.Deadline, t.Release)
	case t.Workload > 0 && numeric.IsZero(t.Window(), 0):
		return fmt.Errorf("task %d: positive workload in empty window", t.ID)
	}
	return nil
}

// Set is an ordered collection of tasks.
type Set []Task

// Validate checks every task and that IDs are unique.
func (s Set) Validate() error {
	//lint:allow hotalloc: one size-hinted map per validation, which runs once per solve entry, not per evaluation
	seen := make(map[int]bool, len(s))
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// TotalWorkload returns Σ w_i.
func (s Set) TotalWorkload() float64 {
	var sum float64
	for _, t := range s {
		sum += t.Workload
	}
	return sum
}

// Workloads returns the slice of workloads in set order.
func (s Set) Workloads() []float64 {
	out := make([]float64, len(s))
	for i, t := range s {
		out[i] = t.Workload
	}
	return out
}

// Span returns the earliest release and the latest deadline of the set.
// For an empty set both are zero.
func (s Set) Span() (start, end float64) {
	if len(s) == 0 {
		return 0, 0
	}
	start, end = s[0].Release, s[0].Deadline
	for _, t := range s[1:] {
		start = math.Min(start, t.Release)
		end = math.Max(end, t.Deadline)
	}
	return start, end
}

// MaxFilledSpeed returns the largest filled speed in the set; this is the
// minimum s_up for which the instance is feasible at all.
func (s Set) MaxFilledSpeed() float64 {
	var m float64
	for _, t := range s {
		m = math.Max(m, t.FilledSpeed())
	}
	return m
}

// SortByDeadline sorts the set in place by (deadline, release, ID).
func (s Set) SortByDeadline() {
	sort.SliceStable(s, func(i, j int) bool {
		//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
		if s[i].Deadline != s[j].Deadline {
			return s[i].Deadline < s[j].Deadline
		}
		if s[i].Release != s[j].Release { //lint:allow floatcmp: exact tie-break, see above
			return s[i].Release < s[j].Release
		}
		return s[i].ID < s[j].ID
	})
}

// SortByRelease sorts the set in place by (release, deadline, ID).
func (s Set) SortByRelease() {
	sort.SliceStable(s, func(i, j int) bool {
		//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
		if s[i].Release != s[j].Release {
			return s[i].Release < s[j].Release
		}
		if s[i].Deadline != s[j].Deadline { //lint:allow floatcmp: exact tie-break, see above
			return s[i].Deadline < s[j].Deadline
		}
		return s[i].ID < s[j].ID
	})
}

// Model classifies a task set into the task models of Table 1.
type Model int

const (
	// ModelEmpty is an empty set (trivially every model).
	ModelEmpty Model = iota
	// ModelCommonDeadline means common release AND common deadline.
	ModelCommonDeadline
	// ModelCommonRelease means all tasks share one release time (§4).
	ModelCommonRelease
	// ModelAgreeable means later release implies later-or-equal deadline
	// (§5); common-release sets are agreeable too, but classification
	// returns the most specific model.
	ModelAgreeable
	// ModelGeneral is everything else (§6).
	ModelGeneral
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelEmpty:
		return "empty"
	case ModelCommonDeadline:
		return "common-release-and-deadline"
	case ModelCommonRelease:
		return "common-release"
	case ModelAgreeable:
		return "agreeable-deadline"
	case ModelGeneral:
		return "general"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Classify returns the most specific model the set satisfies.
func (s Set) Classify() Model {
	if len(s) == 0 {
		return ModelEmpty
	}
	commonRelease, commonDeadline := true, true
	for _, t := range s[1:] {
		//lint:allow floatcmp: the task models of Table 1 are defined on exact input times
		if t.Release != s[0].Release {
			commonRelease = false
		}
		if t.Deadline != s[0].Deadline { //lint:allow floatcmp: exact model classification, see above
			commonDeadline = false
		}
	}
	switch {
	case commonRelease && commonDeadline:
		return ModelCommonDeadline
	case commonRelease:
		return ModelCommonRelease
	case s.IsAgreeable():
		return ModelAgreeable
	default:
		return ModelGeneral
	}
}

// IsAgreeable reports whether the set satisfies the agreeable-deadline
// property: for any two tasks, r_i ≥ r_j implies d_i ≥ d_j (equivalently,
// sorting by release also sorts by deadline).
func (s Set) IsAgreeable() bool {
	sorted := s.Clone()
	sorted.SortByRelease()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Deadline < sorted[i-1].Deadline {
			return false
		}
	}
	return true
}

// IsCommonRelease reports whether every task shares one release time.
func (s Set) IsCommonRelease() bool {
	for _, t := range s[min(1, len(s)):] {
		//lint:allow floatcmp: common release is defined on exact input times
		if t.Release != s[0].Release {
			return false
		}
	}
	return true
}

// Feasible reports whether every task can individually meet its deadline
// at the given maximum speed (s_up ≥ s_fi for all i, the paper's standing
// assumption). A zero speedMax means unbounded.
func (s Set) Feasible(speedMax float64) bool {
	if speedMax <= 0 {
		return true
	}
	for _, t := range s {
		if t.FilledSpeed() > speedMax*(1+speedTol) {
			return false
		}
	}
	return true
}

// Shifted returns a copy of the set with all times translated by dt.
func (s Set) Shifted(dt float64) Set {
	out := s.Clone()
	for i := range out {
		out[i].Release += dt
		out[i].Deadline += dt
	}
	return out
}

// ByID returns the task with the given ID and whether it exists.
func (s Set) ByID(id int) (Task, bool) {
	for _, t := range s {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
