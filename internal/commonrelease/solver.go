package commonrelease

import (
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// Solver is a retained common-release solver: it owns one instance whose
// scratch buffers (normalization, overhead scan, candidate schedule,
// auditor) persist across solves, so repeated planning — SDEM-ON
// re-planning every arrival, sdemd serving request streams — runs
// allocation-free once the buffers reach the high-water instance size.
//
// A Solver is not safe for concurrent use; retain one per goroutine (or
// pool them, as internal/serve does).
type Solver struct {
	in   instance
	ends []float64
}

// PlanEndsRel solves the common-release instance with the same scheme
// dispatch as SolveTel and returns only the per-task completion ends,
// relative to the common release: ends[i] is the busy-aligned completion
// of input task i (its natural completion c_i, or the busy length L when
// aligned), or 0 for a zero-workload task scheduled nowhere.
//
// The returned slice aliases the Solver's scratch and is valid until the
// next PlanEndsRel call.
//
// Bit-compatibility contract, enforced by the online equivalence tests:
// normalization subtracts the release before any arithmetic, so ends
// depends only on the (deadline − release, workload) bit pattern of each
// task plus sys — two instances that agree on those produce identical
// bits at any release. The segment that task i receives in the
// corresponding SolveTel solution schedule spans exactly
// [release, release + ends[i]] — unless that float interval is no longer
// than schedule.Tol/10, in which case Normalize drops it and the task
// has no segment. Callers recover the absolute picture by replaying that
// shift-and-filter; PlanEndsRel itself skips building and auditing the
// final schedule, which is what makes it cheaper than SolveTel — the
// busy-length search is shared code.
func (sv *Solver) PlanEndsRel(tasks task.Set, sys power.System, tel *telemetry.Recorder) ([]float64, error) {
	in := &sv.in
	var L float64
	var scheme string
	switch {
	case sys.Core.BreakEven > 0 || sys.Memory.BreakEven > 0:
		scheme = "overhead"
		if err := in.normalizeInto(tasks, sys, overheadMode(sys), overheadHorizon(tasks), tel); err != nil {
			return nil, err
		}
		if len(in.tasks) > 0 {
			L, _ = in.overheadScan()
		}
	case sys.Core.Static > 0:
		scheme = "with_static"
		if err := in.normalizeInto(tasks, sys, naturalCritical, 0, tel); err != nil {
			return nil, err
		}
		L, _ = in.withStaticPlan()
	default:
		scheme = "alpha_zero"
		if err := in.normalizeInto(tasks, sys, naturalFilled, 0, tel); err != nil {
			return nil, err
		}
		L, _ = in.alphaZeroPlan()
	}
	if tel != nil {
		tel.CountL("sdem.solver.cr.solves", "scheme="+scheme, 1)
		tel.Count("sdem.solver.cr.tasks", int64(len(in.tasks)))
	}

	if cap(sv.ends) < len(tasks) {
		//lint:allow hotalloc: the ends backing grows to the high-water instance size once
		sv.ends = make([]float64, len(tasks))
	}
	ends := sv.ends[:len(tasks)]
	for i := range ends {
		ends[i] = 0
	}
	for i := range in.tasks {
		// Mirror buildInto bit-for-bit: aligned tasks (natural completion
		// within Tol of L or beyond) end at L, the rest at c_i.
		end := in.c[i]
		if end >= L-schedule.Tol {
			end = L
		}
		ends[in.pos[i]] = end
	}
	return ends, nil
}

// NaturalCompletion returns the completion time, relative to release,
// that SolveTel's normalization assigns the task when it runs at its
// natural speed under sys: the same bits as the corresponding in.c entry
// of normalizeInto. horizon is the §7 maximal interval max_j (d_j − r_j)
// of the instance the task belongs to (only read in overhead mode on a
// leaky core).
//
// Every scheme picks a busy length L ≤ max_j c_j and every planned
// completion is ≤ max(c_j, L), so release + max_j NaturalCompletion
// bounds all planned execution — the online engine uses this to certify
// that a planning step cannot schedule work past a point without
// running the solve.
func NaturalCompletion(t task.Task, sys power.System, horizon float64) float64 {
	var s float64
	switch {
	case sys.Core.BreakEven > 0 || sys.Memory.BreakEven > 0:
		if overheadMode(sys) == naturalFilled {
			s = t.FilledSpeed()
		} else {
			s = sys.Core.ConstrainedCriticalSpeed(t.FilledSpeed(), t.Workload, horizon)
		}
	case sys.Core.Static > 0:
		s = sys.Core.CriticalSpeed(t.FilledSpeed())
	default:
		s = t.FilledSpeed()
	}
	return t.Workload / s
}
