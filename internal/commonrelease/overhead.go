package commonrelease

import (
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// SolveWithOverhead solves the §7 common-release problem with
// non-negligible mode-transition overhead (ξ ≠ 0 and/or ξ_m ≠ 0).
//
// Tasks not aligned to the memory busy interval run at the constrained
// critical speed s_c of §7; aligned tasks finish together at busy length L.
// The audited energy E(L) is convex between the structural breakpoints —
// the natural completions c_j (where the aligned set changes) and
// d_max − ξ_m, d_max − ξ (where the memory / aligned-core idle tail
// crosses its break-even time, flipping the sleep decision of
// SleepBreakEven accounting) — so the solver minimizes each smooth piece
// by golden-section search and keeps the best. This subsumes every row of
// the paper's Table 3: the candidates Δ = Δ_mi, Δ = ξ and Δ = 0 are all
// piece boundaries or interior minima of some piece.
func SolveWithOverhead(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveWithOverheadTel(tasks, sys, nil)
}

// SolveWithOverheadTel is SolveWithOverhead with telemetry attached; a
// nil recorder is the uninstrumented path. It counts the golden-section
// objective evaluations and the convex pieces minimized.
func SolveWithOverheadTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	// Determine the maximal interval first: s_c depends on it.
	var horizon float64
	for _, t := range tasks {
		horizon = math.Max(horizon, t.Deadline-t.Release)
	}
	//lint:allow hotalloc: the natural-speed closure allocates once per solve and is reused for every task
	natural := func(t task.Task) float64 {
		if numeric.IsZero(sys.Core.Static, 0) {
			// A leak-free core never benefits from finishing early;
			// stretching to the filled speed is individually optimal.
			return t.FilledSpeed()
		}
		return sys.Core.ConstrainedCriticalSpeed(t.FilledSpeed(), t.Workload, horizon)
	}
	in, err := normalize(tasks, sys, natural)
	if err != nil {
		return nil, err
	}
	in.tel = tel
	if len(in.tasks) == 0 {
		return in.empty(), nil
	}
	n := len(in.tasks)

	// Structural breakpoints in busy length L.
	points := make([]float64, 0, n+4)
	points = append(points, in.c...)
	for _, p := range []float64{in.horizon - sys.Memory.BreakEven, in.horizon - sys.Core.BreakEven} {
		if p > 0 && p < in.c[n-1] {
			points = append(points, p)
		}
	}
	sort.Float64s(points)

	// Suffix maxima of workloads for the speed cap: when L ∈
	// (c_{i−1}, c_i], tasks i..n are aligned and need w/L ≤ s_up.
	sufMaxW := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		sufMaxW[i] = math.Max(sufMaxW[i+1], in.tasks[i].Workload)
	}
	//lint:allow hotalloc: capFor allocates once per solve; its captures are amortized over the golden-section probes
	capFor := func(L float64) float64 {
		// Smallest feasible busy length when the aligned set is that of
		// busy length L.
		i := sort.SearchFloat64s(in.c, L) // first c_j ≥ L
		if in.sys.Core.SpeedMax <= 0 {
			return 0
		}
		return sufMaxW[i] / in.sys.Core.SpeedMax
	}

	//lint:allow hotalloc: the objective closure allocates once per solve and is evaluated ~10² times by golden section
	eval := func(L float64) float64 {
		tel.Count("sdem.solver.cr.objective_evals", 1)
		if L <= 0 {
			return math.Inf(1)
		}
		if L < capFor(L)-schedule.Tol {
			return math.Inf(1)
		}
		return in.energyOf(L)
	}

	bestL, bestE := in.c[n-1], eval(in.c[n-1])
	lo := math.Max(capFor(in.c[0]), in.c[0]*relTol)
	prev := lo
	for _, p := range points {
		if p <= prev+schedule.Tol {
			continue
		}
		tel.Count("sdem.solver.cr.pieces", 1)
		x, e := numeric.MinimizeConvex(eval, prev, p, numeric.DefaultTol)
		if e < bestE {
			bestL, bestE = x, e
		}
		prev = p
	}

	// Identify the winning case index for reporting.
	caseIdx := sort.SearchFloat64s(in.c, bestL-schedule.Tol) + 1
	if caseIdx > n {
		caseIdx = n
	}
	sol := in.solution(bestL, caseIdx)
	in.record("overhead", sol)
	return sol, nil
}
