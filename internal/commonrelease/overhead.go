package commonrelease

import (
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// SolveWithOverhead solves the §7 common-release problem with
// non-negligible mode-transition overhead (ξ ≠ 0 and/or ξ_m ≠ 0).
//
// Tasks not aligned to the memory busy interval run at the constrained
// critical speed s_c of §7; aligned tasks finish together at busy length L.
// The audited energy E(L) is convex between the structural breakpoints —
// the natural completions c_j (where the aligned set changes) and
// d_max − ξ_m, d_max − ξ (where the memory / aligned-core idle tail
// crosses its break-even time, flipping the sleep decision of
// SleepBreakEven accounting) — so the solver minimizes each smooth piece
// by golden-section search and keeps the best. This subsumes every row of
// the paper's Table 3: the candidates Δ = Δ_mi, Δ = ξ and Δ = 0 are all
// piece boundaries or interior minima of some piece.
func SolveWithOverhead(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveWithOverheadTel(tasks, sys, nil)
}

// overheadHorizon is the §7 maximal interval max_j (d_j − r_j) over the
// absolute task set; the constrained critical speed s_c depends on it.
func overheadHorizon(tasks task.Set) float64 {
	var horizon float64
	for _, t := range tasks {
		horizon = math.Max(horizon, t.Deadline-t.Release)
	}
	return horizon
}

// overheadMode picks the §7 natural-speed rule: a leak-free core never
// benefits from finishing early, so stretching to the filled speed is
// individually optimal; otherwise tasks run at the horizon-constrained
// critical speed s_c.
func overheadMode(sys power.System) naturalMode {
	if numeric.IsZero(sys.Core.Static, 0) {
		return naturalFilled
	}
	return naturalConstrained
}

// SolveWithOverheadTel is SolveWithOverhead with telemetry attached; a
// nil recorder is the uninstrumented path. It counts the golden-section
// objective evaluations and the convex pieces minimized.
func SolveWithOverheadTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	in, err := normalize(tasks, sys, overheadMode(sys), overheadHorizon(tasks), tel)
	if err != nil {
		return nil, err
	}
	if len(in.tasks) == 0 {
		return in.empty(), nil
	}
	bestL, caseIdx := in.overheadScan()
	sol := in.solution(bestL, caseIdx)
	in.record("overhead", sol)
	return sol, nil
}

// capFor is the smallest feasible busy length when the aligned set is
// that of busy length L: tasks i..n are aligned and need w/L ≤ s_up.
func (in *instance) capFor(L float64) float64 {
	i := sort.SearchFloat64s(in.c, L) // first c_j ≥ L
	if in.sys.Core.SpeedMax <= 0 {
		return 0
	}
	return in.sufMaxW[i] / in.sys.Core.SpeedMax
}

// evalOverhead is the golden-section objective: the audited energy of the
// busy-length-L candidate, +Inf outside the feasible region. It prices
// the candidate in closed form (prepOverheadEval's tables) instead of
// building and auditing a schedule — the audit-based energyOf stays as
// the oracle the overhead tests pin the closed form against.
func (in *instance) evalOverhead(L float64) float64 {
	in.tel.Count("sdem.solver.cr.objective_evals", 1)
	if L <= 0 {
		return math.Inf(1)
	}
	if L < in.capFor(L)-schedule.Tol {
		return math.Inf(1)
	}
	return in.energyClosed(L)
}

// prepOverheadEval fills the prefix/suffix tables energyClosed reads:
// for the first aligned index i, every non-aligned task contributes a
// fixed dynamic + static + idle-tail cost (prefDyn, prefFix), and the
// aligned suffix contributes through Σ w^λ (sufPow). O(n) once per scan,
// into retained buffers.
func (in *instance) prepOverheadEval() {
	n := len(in.tasks)
	core := in.sys.Core
	if cap(in.sufPow) < n+1 {
		//lint:allow hotalloc: the closed-form table backings grow to the high-water instance size once
		in.sufPow = make([]float64, n+1)
		//lint:allow hotalloc: see above
		in.prefDyn = make([]float64, n+1)
		//lint:allow hotalloc: see above
		in.prefFix = make([]float64, n+1)
	}
	in.sufPow, in.prefDyn, in.prefFix = in.sufPow[:n+1], in.prefDyn[:n+1], in.prefFix[:n+1]
	in.sufPow[n] = 0
	for i := n - 1; i >= 0; i-- {
		in.sufPow[i] = in.sufPow[i+1] + math.Pow(in.tasks[i].Workload, core.Lambda)
	}
	in.prefDyn[0], in.prefFix[0] = 0, 0
	for i, t := range in.tasks {
		c := in.c[i]
		in.prefDyn[i+1] = in.prefDyn[i] + core.Beta*math.Pow(t.Workload, core.Lambda)*math.Pow(c, 1-core.Lambda)
		in.prefFix[i+1] = in.prefFix[i] + core.Static*c +
			schedule.SleepBreakEven.GapEnergy(in.horizon-c, core.Static, core.BreakEven)
	}
}

// energyClosed is the audited energy of the busy-length-L candidate in
// closed form: tasks with natural completion ≥ L−Tol align to [0, L]
// (the same boundary buildInto draws), each non-aligned core runs [0,
// c_j] and idles the tail, and the memory is busy exactly [0, L]. Every
// term prices what the Auditor would charge — same gapCost branches,
// same Tol boundary — so it matches energyOf to float rounding.
func (in *instance) energyClosed(L float64) float64 {
	i := sort.SearchFloat64s(in.c, L-schedule.Tol)
	if i == len(in.c) {
		// No aligned task: outside the scan range [c_1·ε, c_n]; fall back
		// to the audited oracle rather than mis-pricing the memory tail.
		return in.energyOf(L)
	}
	core, mem := in.sys.Core, in.sys.Memory
	k := float64(len(in.tasks) - i)
	tail := in.horizon - L
	return in.prefDyn[i] + in.prefFix[i] +
		core.Beta*in.sufPow[i]*math.Pow(L, 1-core.Lambda) +
		k*(core.Static*L+schedule.SleepBreakEven.GapEnergy(tail, core.Static, core.BreakEven)) +
		mem.Static*L + schedule.SleepBreakEven.GapEnergy(tail, mem.Static, mem.BreakEven)
}

// overheadScan runs the piecewise golden-section minimization over busy
// length and returns the winner plus its 1-based case index. All scan
// state lives in the instance's retained buffers, so a reused instance
// scans allocation-free.
//
//sdem:hotpath
func (in *instance) overheadScan() (bestL float64, caseIdx int) {
	n := len(in.tasks)

	// Structural breakpoints in busy length L.
	in.points = in.points[:0]
	//lint:allow hotalloc: appends into the instance's reused breakpoint backing
	in.points = append(in.points, in.c...)
	for _, p := range [2]float64{in.horizon - in.sys.Memory.BreakEven, in.horizon - in.sys.Core.BreakEven} {
		if p > 0 && p < in.c[n-1] {
			//lint:allow hotalloc: appends into the instance's reused breakpoint backing
			in.points = append(in.points, p)
		}
	}
	sort.Float64s(in.points)

	// Suffix maxima of workloads for the speed cap: when L ∈
	// (c_{i−1}, c_i], tasks i..n are aligned and need w/L ≤ s_up.
	if cap(in.sufMaxW) < n+1 {
		//lint:allow hotalloc: the suffix-maxima backing grows to the high-water instance size once
		in.sufMaxW = make([]float64, n+1)
	}
	in.sufMaxW = in.sufMaxW[:n+1]
	in.sufMaxW[n] = 0
	for i := n - 1; i >= 0; i-- {
		in.sufMaxW[i] = math.Max(in.sufMaxW[i+1], in.tasks[i].Workload)
	}

	in.prepOverheadEval()
	if in.evalFn == nil {
		//lint:allow hotalloc: the objective method value is bound once per instance and reused every solve
		in.evalFn = in.evalOverhead
	}

	bestL, bestE := in.c[n-1], in.evalFn(in.c[n-1])
	lo := math.Max(in.capFor(in.c[0]), in.c[0]*relTol)
	prev := lo
	for _, p := range in.points {
		if p <= prev+schedule.Tol {
			continue
		}
		in.tel.Count("sdem.solver.cr.pieces", 1)
		x, e := numeric.MinimizeConvex(in.evalFn, prev, p, numeric.DefaultTol)
		if e < bestE {
			bestL, bestE = x, e
		}
		prev = p
	}

	// Identify the winning case index for reporting.
	caseIdx = sort.SearchFloat64s(in.c, bestL-schedule.Tol) + 1
	if caseIdx > n {
		caseIdx = n
	}
	return bestL, caseIdx
}
