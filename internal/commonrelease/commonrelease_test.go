package commonrelease

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// testSystem returns the paper's default platform with transitions free
// (the §4 model).
func testSystem() power.System {
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	return sys
}

// randomCommonRelease draws n tasks released at 0 with the paper's §8.1.2
// parameters: workloads in [2,5]e6 cycles, deadlines in [10,120] ms.
func randomCommonRelease(r *rand.Rand, n int) task.Set {
	s := make(task.Set, n)
	for i := range s {
		s[i] = task.Task{
			ID:       i,
			Release:  0,
			Deadline: power.Milliseconds(10 + r.Float64()*110),
			Workload: 2e6 + r.Float64()*3e6,
		}
	}
	return s
}

// sweepBest densely sweeps the busy length L of the aligned-structure
// schedule and returns the best audited energy found. It independently
// reimplements the structure (tasks start at release; those whose natural
// completion exceeds L align to L) so it cross-checks the solver's case
// analysis and closed forms.
func sweepBest(t *testing.T, tasks task.Set, sys power.System, natural func(task.Task) float64, samples int) float64 {
	t.Helper()
	release := tasks[0].Release
	var horizon float64
	type item struct {
		id   int
		w, c float64
	}
	var items []item
	for _, tk := range tasks {
		horizon = math.Max(horizon, tk.Deadline-release)
		if tk.Workload == 0 {
			continue
		}
		items = append(items, item{tk.ID, tk.Workload, tk.Workload / natural(tk)})
	}
	var cmax, wmax float64
	for _, it := range items {
		cmax = math.Max(cmax, it.c)
		wmax = math.Max(wmax, it.w)
	}
	lmin := 1e-12
	if sys.Core.SpeedMax > 0 {
		lmin = wmax / sys.Core.SpeedMax
	}
	best := math.Inf(1)
	for i := 0; i <= samples; i++ {
		L := lmin + (cmax-lmin)*float64(i)/float64(samples)
		s := schedule.New(len(items), release, release+horizon)
		feasible := true
		for ci, it := range items {
			end := it.c
			if end >= L {
				end = L
			}
			speed := it.w / end
			if sys.Core.SpeedMax > 0 && speed > sys.Core.SpeedMax*(1+1e-9) {
				feasible = false
				break
			}
			s.Add(ci, schedule.Segment{TaskID: it.id, Start: release, End: release + end, Speed: speed})
		}
		if !feasible {
			continue
		}
		s.Normalize()
		if e := schedule.Audit(s, sys).Total(); e < best {
			best = e
		}
	}
	return best
}

func TestSolveAlphaZeroSingleTask(t *testing.T) {
	sys := testSystem()
	tasks := task.Set{{ID: 1, Release: 0, Deadline: power.Milliseconds(50), Workload: 3e6}}
	sol, err := SolveAlphaZero(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: L* = (β(λ−1)w^λ/α_m)^{1/λ}, clamped to [w/s_up, d].
	lstar := math.Pow(sys.Core.Beta*(sys.Core.Lambda-1)*math.Pow(3e6, 3)/sys.Memory.Static, 1.0/3)
	want := math.Max(lstar, 3e6/sys.Core.SpeedMax)
	if !almost(sol.BusyLen, want, 1e-9) {
		t.Errorf("BusyLen = %g, want %g", sol.BusyLen, want)
	}
	if !almost(sol.Delta, power.Milliseconds(50)-want, 1e-9) {
		t.Errorf("Delta = %g, want %g", sol.Delta, power.Milliseconds(50)-want)
	}
	if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestSolveAlphaZeroMatchesSweep(t *testing.T) {
	sys := testSystem()
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomCommonRelease(r, 1+r.Intn(8))
		sol, err := SolveAlphaZero(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sysZ := sys
		sysZ.Core.Static = 0
		ref := sweepBest(t, tasks, sysZ, func(tk task.Task) float64 { return tk.FilledSpeed() }, 4000)
		if sol.Energy > ref*(1+1e-6) {
			t.Errorf("seed %d: solver %.9g worse than sweep %.9g", seed, sol.Energy, ref)
		}
		if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: sys.Core.SpeedMax}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

func TestSolveWithStaticMatchesSweep(t *testing.T) {
	sys := testSystem()
	for seed := int64(100); seed < 112; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomCommonRelease(r, 1+r.Intn(8))
		sol, err := SolveWithStatic(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := sweepBest(t, tasks, sys, func(tk task.Task) float64 {
			return sys.Core.CriticalSpeed(tk.FilledSpeed())
		}, 4000)
		if sol.Energy > ref*(1+1e-6) {
			t.Errorf("seed %d: solver %.9g worse than sweep %.9g", seed, sol.Energy, ref)
		}
		if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: sys.Core.SpeedMax}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

// TestSolveWithStaticPerturbation checks optimality in a strictly larger
// space than the L-parameterization: every task's completion time is
// individually perturbed around the solution and the audited energy must
// not improve.
func TestSolveWithStaticPerturbation(t *testing.T) {
	sys := testSystem()
	r := rand.New(rand.NewSource(7))
	tasks := randomCommonRelease(r, 6)
	sol, err := SolveWithStatic(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	base := sol.Schedule
	ends := make(map[int]float64) // task ID → completion
	for _, segs := range base.Cores {
		for _, sg := range segs {
			ends[sg.TaskID] = sg.End
		}
	}
	for _, tk := range tasks {
		for _, f := range []float64{0.9, 0.97, 1.03, 1.1} {
			e := ends[tk.ID] * f
			if e > tk.Deadline || tk.Workload/e > sys.Core.SpeedMax {
				continue
			}
			s := schedule.New(len(tasks), base.Start, base.End)
			core := 0
			for _, other := range tasks {
				end := ends[other.ID]
				if other.ID == tk.ID {
					end = e
				}
				s.Add(core, schedule.Segment{TaskID: other.ID, Start: 0, End: end, Speed: other.Workload / end})
				core++
			}
			s.Normalize()
			if got := schedule.Audit(s, sys).Total(); got < sol.Energy*(1-1e-9) {
				t.Errorf("perturbing task %d completion by %g improves energy: %.9g < %.9g",
					tk.ID, f, got, sol.Energy)
			}
		}
	}
}

func TestSolveWithStaticReducesToAlphaZero(t *testing.T) {
	// With α = 0 the critical speed degenerates to the filled speed and
	// §4.2 must coincide with §4.1.
	sys := testSystem()
	sys.Core.Static = 0
	for seed := int64(200); seed < 206; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomCommonRelease(r, 1+r.Intn(6))
		a, err := SolveAlphaZero(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveWithStatic(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(a.Energy, b.Energy, 1e-9) || !almost(a.BusyLen, b.BusyLen, 1e-9) {
			t.Errorf("seed %d: §4.1 (E=%g L=%g) != §4.2 with α=0 (E=%g L=%g)",
				seed, a.Energy, a.BusyLen, b.Energy, b.BusyLen)
		}
	}
}

func TestScansAgreeWithFullScan(t *testing.T) {
	sys := testSystem()
	sys.Core.SpeedMax = 0 // the literal paper scans assume no binding cap
	for seed := int64(300); seed < 330; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomCommonRelease(r, 2+r.Intn(7))
		full, err := SolveAlphaZero(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		c2, l2, err := Theorem2Scan(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: Theorem2Scan: %v", seed, err)
		}
		cb, lb, err := BinarySearchScan(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: BinarySearchScan: %v", seed, err)
		}
		if !almost(l2, full.BusyLen, 1e-9) {
			t.Errorf("seed %d: Theorem2Scan L=%g (case %d), full scan L=%g (case %d)",
				seed, l2, c2, full.BusyLen, full.Case)
		}
		if !almost(lb, l2, 1e-9) || cb != c2 {
			t.Errorf("seed %d: binary search (case %d, L=%g) != linear scan (case %d, L=%g)",
				seed, cb, lb, c2, l2)
		}
	}
}

func TestDeltaMonotoneAcrossCases(t *testing.T) {
	// Eq. (5): Δ_mi strictly increases with the case index, i.e. the
	// unconstrained busy-length minimizer decreases.
	sys := testSystem()
	r := rand.New(rand.NewSource(42))
	tasks := randomCommonRelease(r, 8)
	in, err := normalize(tasks, sys, naturalFilled, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cds := in.cases(0, false)
	for i := 1; i < len(cds); i++ {
		if cds[i].lstar >= cds[i-1].lstar {
			t.Errorf("case %d: L* %g not below case %d's %g", i+1, cds[i].lstar, i, cds[i-1].lstar)
		}
	}
}

func TestClosedFormMatchesAudit(t *testing.T) {
	// The analytic E_i at the winning case must equal the audited energy
	// of the constructed schedule (α=0 and α≠0).
	sysZ := testSystem()
	r := rand.New(rand.NewSource(5))
	tasks := randomCommonRelease(r, 5)

	sol, err := SolveAlphaZero(tasks, sysZ)
	if err != nil {
		t.Fatal(err)
	}
	inZ, _ := normalize(tasks, sysZ, naturalFilled, 0, nil)
	inZ.sys.Core.Static = 0
	cdZ := inZ.cases(0, true)[sol.Case-1]
	if e := inZ.energyAt(cdZ, sol.Case-1, sol.BusyLen, 0); !almost(e, sol.Energy, 1e-9) {
		t.Errorf("α=0: closed form %g != audit %g", e, sol.Energy)
	}

	sol2, err := SolveWithStatic(tasks, sysZ)
	if err != nil {
		t.Fatal(err)
	}
	in2, _ := normalize(tasks, sysZ, naturalCritical, 0, nil)
	cd2 := in2.cases(sysZ.Core.Static, true)[sol2.Case-1]
	if e := in2.energyAt(cd2, sol2.Case-1, sol2.BusyLen, sysZ.Core.Static); !almost(e, sol2.Energy, 1e-9) {
		t.Errorf("α≠0: closed form %g != audit %g", e, sol2.Energy)
	}
}

func TestSpeedCapBinds(t *testing.T) {
	// A heavy task in a long window: without the cap the solver would
	// compress everything into a very short busy interval; the cap must
	// keep every speed within s_up.
	sys := testSystem()
	sys.Memory.Static = 400 // extreme leakage favours maximal compression
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(100), Workload: 1.8e8},
		{ID: 2, Release: 0, Deadline: power.Milliseconds(110), Workload: 5e6},
	}
	sol, err := SolveWithStatic(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Fatalf("capped schedule invalid: %v", err)
	}
	wantL := 1.8e8 / sys.Core.SpeedMax
	if !almost(sol.BusyLen, wantL, 1e-6) {
		t.Errorf("BusyLen = %g, want cap-bound %g", sol.BusyLen, wantL)
	}
}

func TestEdgeCases(t *testing.T) {
	sys := testSystem()
	// Empty set.
	sol, err := SolveAlphaZero(task.Set{}, sys)
	if err != nil || sol.Energy != 0 {
		t.Errorf("empty set: sol=%+v err=%v", sol, err)
	}
	// All-zero workloads.
	zero := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 0}}
	sol, err = SolveWithStatic(zero, sys)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != 0 || sol.Case != 0 {
		t.Errorf("zero workload: E=%g case=%d", sol.Energy, sol.Case)
	}
	// Non-common release is rejected.
	bad := task.Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 1e6},
		{ID: 2, Release: 0.5, Deadline: 1, Workload: 1e6},
	}
	if _, err := SolveAlphaZero(bad, sys); err == nil {
		t.Error("non-common release must be rejected")
	}
	// Infeasible at s_up.
	inf := task.Set{{ID: 1, Release: 0, Deadline: 1e-6, Workload: 1e9}}
	if _, err := SolveWithStatic(inf, sys); err == nil {
		t.Error("infeasible instance must be rejected")
	}
	// α_m = 0: every task at filled speed.
	sysNoMem := sys
	sysNoMem.Memory.Static = 0
	tasks := task.Set{{ID: 1, Release: 0, Deadline: power.Milliseconds(100), Workload: 3e6}}
	sol, err = SolveAlphaZero(tasks, sysNoMem)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.BusyLen, power.Milliseconds(100), 1e-9) {
		t.Errorf("α_m=0: BusyLen = %g, want the full window", sol.BusyLen)
	}
}

func TestSolveDispatch(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0, Deadline: power.Milliseconds(60), Workload: 3e6}}

	sysZ := testSystem()
	sysZ.Core.Static = 0
	a, err := Solve(tasks, sysZ)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SolveAlphaZero(tasks, sysZ)
	if !almost(a.Energy, b.Energy, 1e-12) {
		t.Error("Solve should dispatch to SolveAlphaZero for α=0")
	}

	sysS := testSystem()
	a, err = Solve(tasks, sysS)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := SolveWithStatic(tasks, sysS)
	if !almost(a.Energy, c.Energy, 1e-12) {
		t.Error("Solve should dispatch to SolveWithStatic for α≠0")
	}

	sysO := power.DefaultSystem() // nonzero break-even times
	a, err = Solve(tasks, sysO)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := SolveWithOverhead(tasks, sysO)
	if !almost(a.Energy, d.Energy, 1e-12) {
		t.Error("Solve should dispatch to SolveWithOverhead for ξ≠0")
	}
}

func TestCommonDeadlineSpecialCase(t *testing.T) {
	// §4.2 notes that with one shared feasible region the optimum is case
	// 1 directly: everything aligned.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(80), Workload: 2e6},
		{ID: 2, Release: 0, Deadline: power.Milliseconds(80), Workload: 3e6},
		{ID: 3, Release: 0, Deadline: power.Milliseconds(80), Workload: 5e6},
	}
	sol, err := SolveWithStatic(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	// All three tasks must finish at the same time (aligned) because
	// their critical completions differ but leaving the two light tasks
	// at critical speed... verify against sweep instead of asserting the
	// exact structure.
	ref := sweepBest(t, tasks, sys, func(tk task.Task) float64 {
		return sys.Core.CriticalSpeed(tk.FilledSpeed())
	}, 6000)
	if sol.Energy > ref*(1+1e-6) {
		t.Errorf("common-deadline: solver %g worse than sweep %g", sol.Energy, ref)
	}
}

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestScansHandleDuplicateDeadlines(t *testing.T) {
	// Equal deadlines create empty case domains; the scans must still
	// agree with the full scan (Theorem 2's uniqueness argument).
	sys := testSystem()
	sys.Core.SpeedMax = 0
	d := power.Milliseconds(60)
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: d, Workload: 2e6},
		{ID: 2, Release: 0, Deadline: d, Workload: 3e6},
		{ID: 3, Release: 0, Deadline: d, Workload: 4e6},
		{ID: 4, Release: 0, Deadline: power.Milliseconds(100), Workload: 2.5e6},
		{ID: 5, Release: 0, Deadline: power.Milliseconds(100), Workload: 2.5e6},
	}
	full, err := SolveAlphaZero(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	_, l2, err := Theorem2Scan(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	_, lb, err := BinarySearchScan(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l2, full.BusyLen, 1e-9) || !almost(lb, full.BusyLen, 1e-9) {
		t.Errorf("duplicate deadlines: scans %g/%g != full %g", l2, lb, full.BusyLen)
	}
}

func TestEqualWorkloadsSymmetry(t *testing.T) {
	// Identical tasks: everything aligns to one busy end; all speeds
	// equal and the schedule is symmetric.
	sys := testSystem()
	tasks := make(task.Set, 4)
	for i := range tasks {
		tasks[i] = task.Task{ID: i, Release: 0, Deadline: power.Milliseconds(80), Workload: 3e6}
	}
	sol, err := SolveWithStatic(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	var speeds []float64
	for _, segs := range sol.Schedule.Cores {
		for _, sg := range segs {
			speeds = append(speeds, sg.Speed)
		}
	}
	if len(speeds) != 4 {
		t.Fatalf("want 4 executions, got %d", len(speeds))
	}
	for _, s := range speeds[1:] {
		if !almost(s, speeds[0], 1e-9) {
			t.Errorf("identical tasks must share one speed: %v", speeds)
		}
	}
}
