// Package commonrelease implements the optimal SDEM schemes of §4 of the
// paper for tasks sharing a common release time, and their §7 extension to
// non-negligible mode-transition overhead.
//
// Both §4.1 (α = 0) and §4.2 (α ≠ 0) reduce to the same case structure:
// sort tasks by their natural completion time c_i (the completion when the
// task runs at its individually optimal speed — the filled speed for
// α = 0, the critical speed s_0 for α ≠ 0) and choose the memory busy
// length L. Tasks whose natural completion exceeds L accelerate to finish
// exactly at L ("aligned"); the others keep their natural speed. Within
// Case i (aligned set {T_i..T_n}, L ∈ [c_{i−1}, c_i]) the energy
//
//	E_i(L) = (k·α + α_m)·L + β·S_i·L^{1−λ} + Σ_{j<i}(β·w_j^λ·c_j^{1−λ} + α·c_j)
//
// (k = n−i+1 aligned tasks, S_i = Σ_{j≥i} w_j^λ) is convex with the
// closed-form minimizer of Eq. (8); the global optimum is the best case
// (Theorems 2 and 3).
package commonrelease

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// relTol is the package's relative speed-feasibility tolerance; it matches
// schedule.Tol (1e-9) by value.
const relTol = 1e-9

// Solution is an optimal common-release schedule plus its audit summary.
type Solution struct {
	// Schedule is the constructed schedule (horizon [r, r+d_max]).
	Schedule *schedule.Schedule
	// BusyLen is the memory busy length L: all execution happens in
	// [r, r+BusyLen].
	BusyLen float64
	// Delta is the memory sleep time within the horizon, d_max − L.
	Delta float64
	// Case is the winning 1-based case index (n−Case+1 aligned tasks),
	// or 0 when no task has positive workload.
	Case int
	// Energy is the audited system-wide energy of Schedule.
	Energy float64
}

// ErrNotCommonRelease is returned when the task set has differing release
// times.
var ErrNotCommonRelease = errors.New("commonrelease: tasks do not share a release time")

// naturalMode selects how normalization derives each task's individually
// optimal ("natural") speed: the filled speed for §4.1, the critical speed
// s_0 for §4.2, and the horizon-constrained critical speed s_c for §7.
type naturalMode int

const (
	naturalFilled naturalMode = iota
	naturalCritical
	naturalConstrained
)

// instance is the normalized problem: release shifted to 0, zero-workload
// tasks dropped, tasks sorted by natural completion.
//
// All of its slices are reset-and-reused by normalizeInto, so a retained
// instance (see Solver) re-solves without allocating; the one-shot Solve*
// entry points build a fresh instance per call exactly as before.
type instance struct {
	sys     power.System
	release float64     // original common release time
	horizon float64     // d_max relative to release
	tasks   []task.Task // sorted by natural completion, times relative to release
	c       []float64   // natural completion times, ascending
	pos     []int       // input position of each tasks[i] (zeros excluded)
	zeros   task.Set    // zero-workload tasks (scheduled nowhere)
	tel     *telemetry.Recorder

	// scratch is the reusable candidate schedule of the golden-section
	// objective (overhead.go): the solver audits hundreds of candidate
	// busy lengths per solve, and rebuilding into one schedule keeps those
	// evaluations allocation-free. Solutions handed to callers are always
	// built fresh; the scratch never leaves the instance.
	scratch *schedule.Schedule
	aud     schedule.Auditor

	// Overhead-scan scratch (overhead.go), retained across solves.
	points  []float64
	sufMaxW []float64
	evalFn  func(float64) float64

	// Closed-form objective tables (overhead.go), retained across solves.
	sufPow  []float64
	prefDyn []float64
	prefFix []float64

	// Normalization scratch: the stable completion sort permutes through
	// the alt buffers, which swap with the primary ones each solve.
	idx  []int
	altT []task.Task
	altC []float64
	altP []int
	seen map[int]bool
}

// record charges one completed solve into the recorder: a per-scheme
// counter plus a trace instant at the (virtual) release time carrying the
// chosen case structure.
func (in *instance) record(scheme string, sol *Solution) {
	if in.tel == nil {
		return
	}
	in.tel.CountL("sdem.solver.cr.solves", "scheme="+scheme, 1)
	in.tel.Count("sdem.solver.cr.tasks", int64(len(in.tasks)))
	in.tel.Instant("cr solve "+scheme, "solver", in.release, 0,
		telemetry.Int("case", int64(sol.Case)),
		telemetry.Num("busy_len", sol.BusyLen),
		telemetry.Num("delta", sol.Delta),
		telemetry.Num("energy_j", sol.Energy))
}

// normalize validates the input and produces the sorted instance.
// natural selects how each task's individually optimal ("natural") speed
// is derived; horizon0 is the §7 maximal interval (only read by
// naturalConstrained).
func normalize(tasks task.Set, sys power.System, natural naturalMode, horizon0 float64, tel *telemetry.Recorder) (*instance, error) {
	in := &instance{}
	if err := in.normalizeInto(tasks, sys, natural, horizon0, tel); err != nil {
		return nil, err
	}
	return in, nil
}

// completionSort stably sorts an index permutation by ascending natural
// completion. The pointer receiver keeps sort.Stable from boxing a fresh
// header per solve.
type completionSort struct {
	idx []int
	c   []float64
}

func (s *completionSort) Len() int           { return len(s.idx) }
func (s *completionSort) Less(a, b int) bool { return s.c[s.idx[a]] < s.c[s.idx[b]] }
func (s *completionSort) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// validate mirrors task.Set.Validate through the instance's retained
// duplicate-ID map so re-solving does not allocate. Error behaviour is
// identical: per-task validation first, then duplicate detection in input
// order.
func (in *instance) validate(tasks task.Set) error {
	if in.seen == nil {
		//lint:allow hotalloc: the duplicate-ID map is allocated once per instance and cleared per solve
		in.seen = make(map[int]bool, len(tasks))
	}
	clear(in.seen)
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if in.seen[t.ID] {
			return fmt.Errorf("duplicate task ID %d", t.ID)
		}
		in.seen[t.ID] = true
	}
	return nil
}

// normalizeInto is normalize writing into a reusable instance: every
// slice is reset and refilled in place, so a retained instance re-solves
// allocation-free once its buffers reach the high-water instance size.
//
//sdem:hotpath
func (in *instance) normalizeInto(tasks task.Set, sys power.System, natural naturalMode, horizon0 float64, tel *telemetry.Recorder) error {
	if err := in.validate(tasks); err != nil {
		return err
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	in.sys = sys
	in.tel = tel
	in.release, in.horizon = 0, 0
	in.tasks, in.c, in.pos = in.tasks[:0], in.c[:0], in.pos[:0]
	in.zeros = in.zeros[:0]
	if len(tasks) == 0 {
		return nil
	}
	// Pre-size every backing in one shot: a fresh instance would otherwise
	// pay O(log n) geometric-growth reallocations per slice below, while a
	// reused one (cap already at the high-water size) allocates nothing.
	if n := len(tasks); cap(in.tasks) < n {
		//lint:allow hotalloc: the instance backings grow to the high-water instance size once
		in.tasks = make(task.Set, 0, n)
		//lint:allow hotalloc: see above
		in.pos = make([]int, 0, n)
		//lint:allow hotalloc: see above
		in.c = make([]float64, 0, n)
		//lint:allow hotalloc: see above
		in.idx = make([]int, 0, n)
		//lint:allow hotalloc: see above
		in.altT = make(task.Set, 0, n)
		//lint:allow hotalloc: see above
		in.altC = make([]float64, 0, n)
		//lint:allow hotalloc: see above
		in.altP = make([]int, 0, n)
	}
	if !tasks.IsCommonRelease() {
		return ErrNotCommonRelease
	}
	if !tasks.Feasible(sys.Core.SpeedMax) {
		return fmt.Errorf("commonrelease: some task exceeds s_up even at filled speed: %w", schedule.ErrInfeasible)
	}
	release := tasks[0].Release
	in.release = release
	for i, t := range tasks {
		t.Release -= release
		t.Deadline -= release
		if numeric.IsZero(t.Workload, 0) {
			//lint:allow hotalloc: appends into the instance's reused zeros backing
			in.zeros = append(in.zeros, t)
			continue
		}
		//lint:allow hotalloc: appends into the instance's reused task/pos backings
		in.tasks = append(in.tasks, t)
		in.pos = append(in.pos, i)
		in.horizon = math.Max(in.horizon, t.Deadline)
	}
	in.c = in.c[:0]
	for _, t := range in.tasks {
		var s float64
		switch natural {
		case naturalCritical:
			filled := t.FilledSpeed()
			s = sys.Core.CriticalSpeed(filled)
			if s <= filled*(1+relTol) {
				tel.Count("sdem.solver.cr.critical_clamps", 1)
			}
		case naturalConstrained:
			s = sys.Core.ConstrainedCriticalSpeed(t.FilledSpeed(), t.Workload, horizon0)
		default:
			s = t.FilledSpeed()
		}
		if s <= 0 || math.IsInf(s, 0) {
			return fmt.Errorf("commonrelease: task %d has invalid natural speed %g: %w", t.ID, s, schedule.ErrInfeasible)
		}
		//lint:allow hotalloc: appends into the instance's reused completion backing
		in.c = append(in.c, t.Workload/s)
	}
	// Sort tasks and completions together, ascending by completion.
	in.idx = in.idx[:0]
	for i := range in.tasks {
		//lint:allow hotalloc: appends into the instance's reused index backing
		in.idx = append(in.idx, i)
	}
	srt := completionSort{idx: in.idx, c: in.c}
	sort.Stable(&srt)
	ts, cs, ps := in.altT[:0], in.altC[:0], in.altP[:0]
	for _, j := range in.idx {
		//lint:allow hotalloc: appends into the instance's reused alt backings, swapped with the primaries below
		ts = append(ts, in.tasks[j])
		//lint:allow hotalloc: see above
		cs = append(cs, in.c[j])
		//lint:allow hotalloc: see above
		ps = append(ps, in.pos[j])
	}
	in.altT, in.altC, in.altP = in.tasks[:0], in.c[:0], in.pos[:0]
	in.tasks, in.c, in.pos = ts, cs, ps
	return nil
}

// build constructs the schedule for busy length L: tasks with natural
// completion ≥ L−ε align to [0, L]; the rest run at natural speed. One
// core per positive-workload task (unbounded-core model).
func (in *instance) build(L float64) *schedule.Schedule {
	s := schedule.New(len(in.tasks), in.release, in.release+in.horizon)
	in.buildInto(s, L)
	return s
}

// buildInto fills s with the busy-length-L schedule, reusing s's per-core
// segment backing across calls.
func (in *instance) buildInto(s *schedule.Schedule, L float64) {
	for i := range s.Cores {
		s.Cores[i] = s.Cores[i][:0]
	}
	for i, t := range in.tasks {
		end := in.c[i]
		if end >= L-schedule.Tol {
			end = L
		}
		s.Add(i, schedule.Segment{
			TaskID: t.ID,
			Start:  in.release,
			End:    in.release + end,
			Speed:  t.Workload / end,
		})
	}
	s.Normalize()
}

// energyOf audits the busy-length-L candidate through the instance's
// scratch schedule and auditor: the golden-section objective calls this
// once per evaluation, so nothing here may allocate after the first call.
func (in *instance) energyOf(L float64) float64 {
	if in.scratch == nil {
		in.scratch = schedule.New(len(in.tasks), in.release, in.release+in.horizon)
	} else {
		// A retained instance crosses solves of different shapes: shrink
		// the core list (the audit charges idle energy for every core up
		// to NumCores) and refresh the horizon before rebuilding.
		s := in.scratch
		if len(in.tasks) < len(s.Cores) {
			s.Cores = s.Cores[:len(in.tasks)]
		}
		s.NumCores = len(in.tasks)
		s.Start, s.End = in.release, in.release+in.horizon
	}
	in.buildInto(in.scratch, L)
	return in.aud.Audit(in.scratch, in.sys).Total()
}

// solution audits the schedule for busy length L and wraps it.
func (in *instance) solution(L float64, caseIdx int) *Solution {
	s := in.build(L)
	return &Solution{
		Schedule: s,
		BusyLen:  L,
		Delta:    in.horizon - L,
		Case:     caseIdx,
		Energy:   schedule.Audit(s, in.sys).Total(),
	}
}

// empty returns the solution for an instance with no positive-workload
// tasks.
func (in *instance) empty() *Solution {
	s := schedule.New(0, in.release, in.release+in.horizon)
	return &Solution{
		Schedule: s,
		Delta:    in.horizon,
		Energy:   schedule.Audit(s, in.sys).Total(),
	}
}

// caseData holds the per-case quantities of the closed-form scan.
type caseData struct {
	lo, hi float64 // feasible busy-length interval [c_{i−1} or cap, c_i]
	lstar  float64 // unconstrained minimizer of E_i (Eq. 8 rewritten in L)
	suffix float64 // S_i = Σ_{j≥i} w_j^λ
	prefix float64 // Σ_{j<i} (β w_j^λ c_j^{1−λ} + α c_j)
}

// cases computes the n case descriptors. alphaPerCore is the static power
// charged per aligned core (α for §4.2, 0 for §4.1). applyCap folds the
// s_up feasibility bound into each case's lower busy-length limit; the
// literal Theorem 2 / Lemma 1 scans disable it to match the paper's
// uncapped case semantics.
func (in *instance) cases(alphaPerCore float64, applyCap bool) []caseData {
	n := len(in.tasks)
	core, mem := in.sys.Core, in.sys.Memory
	// Suffix sums of w^λ and suffix maxima of w.
	sufPow := make([]float64, n+1)
	sufMaxW := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		w := in.tasks[i].Workload
		sufPow[i] = sufPow[i+1] + math.Pow(w, core.Lambda)
		sufMaxW[i] = math.Max(sufMaxW[i+1], w)
	}
	out := make([]caseData, n)
	var prefix float64
	for i := 0; i < n; i++ { // case index i+1 in paper terms
		k := float64(n - i)
		denom := k*alphaPerCore + mem.Static
		var lstar float64
		if denom > 0 {
			lstar = math.Pow(core.Beta*(core.Lambda-1)*sufPow[i]/denom, 1/core.Lambda)
		} else {
			// No static power anywhere: stretching is free, run filled.
			lstar = math.Inf(1)
		}
		lo := 0.0
		if i > 0 {
			lo = in.c[i-1]
		}
		if applyCap && core.SpeedMax > 0 {
			lo = math.Max(lo, sufMaxW[i]/core.SpeedMax)
		}
		out[i] = caseData{lo: lo, hi: in.c[i], lstar: lstar, suffix: sufPow[i], prefix: prefix}
		prefix += core.Beta*math.Pow(in.tasks[i].Workload, core.Lambda)*math.Pow(in.c[i], 1-core.Lambda) +
			alphaPerCore*in.c[i]
	}
	return out
}

// energyAt evaluates the closed-form E_i at busy length L for case i
// (0-based), charging alphaPerCore per aligned core.
func (in *instance) energyAt(cd caseData, i int, L float64, alphaPerCore float64) float64 {
	if L <= 0 {
		return math.Inf(1)
	}
	core, mem := in.sys.Core, in.sys.Memory
	k := float64(len(in.tasks) - i)
	return (k*alphaPerCore+mem.Static)*L + core.Beta*cd.suffix*math.Pow(L, 1-core.Lambda) + cd.prefix
}

// scanAll evaluates every case at its clamped minimizer and returns the
// best (0-based case index, busy length). This is the O(n) full scan that
// Theorems 2 and 3 prove optimal.
func (in *instance) scanAll(alphaPerCore float64) (int, float64) {
	best, bestL, bestE := -1, 0.0, math.Inf(1)
	for i, cd := range in.cases(alphaPerCore, true) {
		in.tel.Count("sdem.solver.cr.case_scans", 1)
		if cd.lo > cd.hi+schedule.Tol {
			in.tel.Count("sdem.solver.cr.infeasible_cases", 1)
			continue // speed cap excludes this case entirely
		}
		if cd.lstar < cd.lo || cd.lstar > cd.hi {
			in.tel.Count("sdem.solver.cr.clamps", 1)
		}
		L := numeric.Clamp(cd.lstar, cd.lo, cd.hi)
		if e := in.energyAt(cd, i, L, alphaPerCore); e < bestE {
			best, bestL, bestE = i, L, e
		}
	}
	return best, bestL
}

// SolveAlphaZero solves §4.1: common release time, negligible core static
// power (the solver ignores sys.Core.Static), zero transition overhead.
// The returned schedule is optimal (Theorem 2).
func SolveAlphaZero(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveAlphaZeroTel(tasks, sys, nil)
}

// SolveAlphaZeroTel is SolveAlphaZero with telemetry attached; a nil
// recorder is the uninstrumented path.
func SolveAlphaZeroTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	in, err := normalize(tasks, sys, naturalFilled, 0, tel)
	if err != nil {
		return nil, err
	}
	L, caseIdx := in.alphaZeroPlan()
	if len(in.tasks) == 0 {
		return in.empty(), nil
	}
	sol := in.solution(L, caseIdx)
	in.record("alpha_zero", sol)
	return sol, nil
}

// alphaZeroPlan applies the §4.1 audit-model adjustments and picks the
// optimal busy length; callers with no positive-workload tasks must take
// the empty solution instead. Shared by SolveAlphaZeroTel and
// Solver.PlanEnds so the two can never diverge.
func (in *instance) alphaZeroPlan() (L float64, caseIdx int) {
	// Audit must not charge core static power in the α=0 model.
	in.sys.Core.Static = 0
	in.sys.Core.BreakEven = 0
	in.sys.Memory.BreakEven = 0
	if len(in.tasks) == 0 {
		return 0, 0
	}
	if numeric.IsZero(in.sys.Memory.Static, 0) {
		// Without memory leakage each task independently prefers its
		// filled speed; the busy length is the latest deadline.
		return in.c[len(in.c)-1], 1
	}
	i, L := in.scanAll(0)
	return L, i + 1
}

// SolveWithStatic solves §4.2: common release time, non-negligible core
// static power, zero transition overhead. Tasks not aligned to the memory
// busy interval run at their critical speed s_0; the returned schedule is
// optimal (Theorem 3).
func SolveWithStatic(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveWithStaticTel(tasks, sys, nil)
}

// SolveWithStaticTel is SolveWithStatic with telemetry attached; a nil
// recorder is the uninstrumented path. It additionally counts the tasks
// whose critical speed s_0 was raised to the filled-speed floor
// (sdem.solver.cr.critical_clamps).
func SolveWithStaticTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	in, err := normalize(tasks, sys, naturalCritical, 0, tel)
	if err != nil {
		return nil, err
	}
	L, caseIdx := in.withStaticPlan()
	if len(in.tasks) == 0 {
		return in.empty(), nil
	}
	sol := in.solution(L, caseIdx)
	in.record("with_static", sol)
	return sol, nil
}

// withStaticPlan applies the §4.2 audit-model adjustments and picks the
// optimal busy length; callers with no positive-workload tasks must take
// the empty solution instead. Shared by SolveWithStaticTel and
// Solver.PlanEnds.
func (in *instance) withStaticPlan() (L float64, caseIdx int) {
	in.sys.Core.BreakEven = 0
	in.sys.Memory.BreakEven = 0
	if len(in.tasks) == 0 {
		return 0, 0
	}
	i, L := in.scanAll(in.sys.Core.Static)
	return L, i + 1
}

// Solve dispatches to the right §4 scheme based on the system model:
// SolveWithOverhead when any break-even time is set, otherwise
// SolveWithStatic for α ≠ 0 and SolveAlphaZero for α = 0.
func Solve(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveTel(tasks, sys, nil)
}

// SolveTel is Solve with telemetry attached; a nil recorder is the
// uninstrumented path. SDEM-ON re-plans through here on every arrival,
// making this the module's hottest solver entry point.
//
//sdem:hotpath
func SolveTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	switch {
	case sys.Core.BreakEven > 0 || sys.Memory.BreakEven > 0:
		return SolveWithOverheadTel(tasks, sys, tel)
	case sys.Core.Static > 0:
		return SolveWithStaticTel(tasks, sys, tel)
	default:
		return SolveAlphaZeroTel(tasks, sys, tel)
	}
}

// Theorem2Scan reproduces the literal Theorem 2 procedure for §4.1: walk
// cases from n down to 1 and stop at the first case whose minimizer is
// valid (inside the case interval) or just-fit (below it). It returns the
// same (case, busy length) as the full scan; both are exposed so tests can
// assert the theorem's early-stopping argument.
func Theorem2Scan(tasks task.Set, sys power.System) (int, float64, error) {
	in, err := normalize(tasks, sys, naturalFilled, 0, nil)
	if err != nil {
		return 0, 0, err
	}
	if len(in.tasks) == 0 || numeric.IsZero(in.sys.Memory.Static, 0) {
		return 0, 0, errors.New("commonrelease: Theorem2Scan needs positive work and memory power")
	}
	cds := in.cases(0, false)
	// Case i in paper terms is index i−1 here; walking n→1 means n−1→0.
	// In busy-length terms: Δ_mi invalid (Δ_mi ≥ δ_{i−1}) ⟺ L* ≤ c_{i−1}
	// ⟺ L* ≤ lo, which sends the scan to the next smaller case index.
	for i := len(cds) - 1; i >= 0; i-- {
		cd := cds[i]
		if cd.lo > cd.hi+schedule.Tol {
			continue
		}
		switch {
		case cd.lstar < cd.lo: // paper's "invalid": sleep wants to be longer
			if i == 0 {
				return 1, cd.lo, nil
			}
			continue
		case cd.lstar > cd.hi: // "just-fit": clamp to the case boundary
			return i + 1, cd.hi, nil
		default: // "valid"
			return i + 1, cd.lstar, nil
		}
	}
	return 0, 0, errors.New("commonrelease: no feasible case")
}

// BinarySearchScan is the O(log n) Lemma 1 accelerator for §4.1: binary
// search over cases for the unique valid minimizer, falling back to the
// best just-fit boundary when no case is valid.
func BinarySearchScan(tasks task.Set, sys power.System) (int, float64, error) {
	return BinarySearchScanTel(tasks, sys, nil)
}

// BinarySearchScanTel is BinarySearchScan with telemetry attached: each
// bisection step increments sdem.solver.cr.bsearch_iters, making the
// O(log n) bound observable.
func BinarySearchScanTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (int, float64, error) {
	in, err := normalize(tasks, sys, naturalFilled, 0, tel)
	if err != nil {
		return 0, 0, err
	}
	if len(in.tasks) == 0 || numeric.IsZero(in.sys.Memory.Static, 0) {
		return 0, 0, errors.New("commonrelease: BinarySearchScan needs positive work and memory power")
	}
	cds := in.cases(0, false)
	lo, hi := 0, len(cds)-1
	var lastJustFit = -1
	for lo <= hi {
		in.tel.Count("sdem.solver.cr.bsearch_iters", 1)
		mid := (lo + hi) / 2
		cd := cds[mid]
		switch {
		case cd.lstar < cd.lo:
			// Sleep wants to exceed this case's domain ("invalid"):
			// search smaller case indices (longer sleep / shorter busy).
			hi = mid - 1
		case cd.lstar > cd.hi:
			// "Just-fit": the optimum clamps to this case's upper
			// boundary; a valid case, if any, has a larger index.
			lastJustFit = mid
			lo = mid + 1
		default:
			return mid + 1, cd.lstar, nil
		}
	}
	if lastJustFit >= 0 {
		return lastJustFit + 1, cds[lastJustFit].hi, nil
	}
	// All cases invalid: the global optimum is the boundary of case 1.
	return 1, cds[0].lo, nil
}
