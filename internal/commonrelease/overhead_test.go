package commonrelease

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// sweepOverhead densely sweeps busy lengths for the overhead model using
// the solver's own builder but an independent grid, returning the best
// audited energy. The grid is fine enough to straddle every break-even
// discontinuity.
func sweepOverhead(tasks task.Set, sys power.System, samples int) (float64, error) {
	var horizon float64
	for _, t := range tasks {
		horizon = math.Max(horizon, t.Deadline-t.Release)
	}
	in, err := normalize(tasks, sys, overheadMode(sys), horizon, nil)
	if err != nil {
		return 0, err
	}
	cmax := in.c[len(in.c)-1]
	var wmax float64
	for _, tk := range in.tasks {
		wmax = math.Max(wmax, tk.Workload)
	}
	lmin := cmax * 1e-6
	if sys.Core.SpeedMax > 0 {
		lmin = math.Max(lmin, wmax/sys.Core.SpeedMax)
	}
	best := math.Inf(1)
	for i := 0; i <= samples; i++ {
		L := lmin + (cmax-lmin)*float64(i)/float64(samples)
		if e := schedule.Audit(in.build(L), in.sys).Total(); e < best {
			best = e
		}
	}
	return best, nil
}

func overheadTasks(r *rand.Rand, n int) task.Set {
	s := make(task.Set, n)
	for i := range s {
		s[i] = task.Task{
			ID:       i,
			Release:  0,
			Deadline: power.Milliseconds(10 + r.Float64()*110),
			Workload: 2e6 + r.Float64()*3e6,
		}
	}
	return s
}

func TestOverheadMatchesSweep(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		sys := power.DefaultSystem()
		sys.Memory.BreakEven = power.Milliseconds(15 + r.Float64()*55)
		sys.Core.BreakEven = power.Milliseconds(r.Float64() * 20)
		tasks := overheadTasks(r, 1+r.Intn(7))
		sol, err := SolveWithOverhead(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := sweepOverhead(tasks, sys, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Energy > ref*(1+1e-6) {
			t.Errorf("seed %d: solver %.9g worse than sweep %.9g", seed, sol.Energy, ref)
		}
		if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: sys.Core.SpeedMax}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

func TestOverheadReducesToStaticWhenFree(t *testing.T) {
	// With ξ = ξ_m = 0 the overhead solver must reproduce §4.2 exactly.
	sys := testSystem()
	for seed := int64(50); seed < 56; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := overheadTasks(r, 1+r.Intn(6))
		a, err := SolveWithOverhead(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveWithStatic(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(a.Energy, b.Energy, 1e-6) {
			t.Errorf("seed %d: overhead solver %.9g != §4.2 %.9g", seed, a.Energy, b.Energy)
		}
	}
}

// TestTable3CaseSelection reproduces the behavioural content of the
// paper's Table 3: the optimal memory sleep decision as a function of how
// the unconstrained sleep Δ_m compares with ξ and ξ_m.
func TestTable3CaseSelection(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tasks := overheadTasks(r, 4)

	// Row 1: Δ_m ≥ ξ, ξ_m — memory (and cores) sleep; the audited sleep
	// equals the no-overhead optimum's sleep because transition cost is
	// independent of the sleep length.
	sys := power.DefaultSystem()
	sys.Memory.BreakEven = power.Milliseconds(1)
	sys.Core.BreakEven = power.Milliseconds(0.5)
	sol, err := SolveWithOverhead(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	b := schedule.Audit(sol.Schedule, sys)
	if b.MemorySleeps == 0 {
		t.Error("row 1: memory should sleep when break-even is tiny")
	}
	free, _ := SolveWithStatic(tasks, sys)
	if !almost(sol.BusyLen, free.BusyLen, 1e-6) {
		t.Errorf("row 1: busy length %g, want the ξ=0 optimum %g", sol.BusyLen, free.BusyLen)
	}

	// Row 2/4 (Δ_m < ξ_m): sleeping the memory is never worth it, so the
	// optimum keeps every task at its constrained critical speed and the
	// memory stays active through its idle tail.
	sys = power.DefaultSystem()
	sys.Memory.BreakEven = 10 // far beyond any possible sleep
	sys.Core.BreakEven = power.Milliseconds(1)
	sol, err = SolveWithOverhead(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	b = schedule.Audit(sol.Schedule, sys)
	if b.MemorySleeps != 0 {
		t.Error("row 2: memory must not sleep when ξ_m is prohibitive")
	}
	// No alignment benefit: the busy length is the largest natural
	// completion.
	inNat, _ := normalize(tasks, sys, naturalConstrained, sol.Schedule.End-sol.Schedule.Start, nil)
	if !almost(sol.BusyLen, inNat.c[len(inNat.c)-1], 1e-6) {
		t.Errorf("row 2: busy length %g, want natural max %g", sol.BusyLen, inNat.c[len(inNat.c)-1])
	}

	// Row 3 (ξ_m ≤ Δ_m < ξ): memory sleeps but cores, whose break-even is
	// prohibitive, stay idle-active; the schedule still compresses for the
	// memory's sake.
	sys = power.DefaultSystem()
	sys.Memory.BreakEven = power.Milliseconds(5)
	sys.Core.BreakEven = 10
	sol, err = SolveWithOverhead(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	b = schedule.Audit(sol.Schedule, sys)
	if b.MemorySleeps == 0 {
		t.Error("row 3: memory should still sleep")
	}
	if b.CoreSleeps != 0 {
		t.Error("row 3: cores must not sleep when ξ is prohibitive")
	}
}

func TestOverheadConstrainedSpeedUsed(t *testing.T) {
	// One short task in a long window, core break-even longer than the
	// idle tail left by racing: the task must stretch (s_c = filled) and
	// the core stays active. With a small break-even it races to s_m and
	// sleeps.
	sys := power.DefaultSystem()
	sys.Memory.Static = 0 // remove the memory term: core trade-off only
	sys.Memory.BreakEven = power.Milliseconds(1)
	w := 3e6
	d := power.Milliseconds(12)
	tasks := task.Set{{ID: 1, Release: 0, Deadline: d, Workload: w}}

	sys.Core.BreakEven = power.Milliseconds(100) // cannot sleep: stretch
	sol, err := SolveWithOverhead(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.BusyLen, d, 1e-6) {
		t.Errorf("prohibitive ξ: busy length %g, want full window %g", sol.BusyLen, d)
	}

	sys.Core.BreakEven = power.Milliseconds(1) // can sleep: race to s_m
	sol, err = SolveWithOverhead(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	wantL := w / sys.Core.CriticalSpeedRaw()
	if !almost(sol.BusyLen, wantL, 1e-6) {
		t.Errorf("small ξ: busy length %g, want critical completion %g", sol.BusyLen, wantL)
	}
}

func TestOverheadEmptyAndErrors(t *testing.T) {
	sys := power.DefaultSystem()
	sol, err := SolveWithOverhead(task.Set{}, sys)
	if err != nil || sol.Energy != 0 {
		t.Errorf("empty: sol=%v err=%v", sol, err)
	}
	bad := task.Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 1e6},
		{ID: 2, Release: 0.25, Deadline: 1, Workload: 1e6},
	}
	if _, err := SolveWithOverhead(bad, sys); err == nil {
		t.Error("non-common release must be rejected")
	}
}

// TestEnergyClosedMatchesAudit pins the closed-form golden-section
// objective to the audit-based oracle it replaced: for random instances
// and busy lengths across the scan range, energyClosed must price the
// candidate exactly as building and auditing the schedule would, up to
// float rounding.
func TestEnergyClosedMatchesAudit(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		sys := power.DefaultSystem()
		// Vary the break-evens so both sides of every gapCost branch get hit.
		sys.Core.BreakEven = power.Milliseconds(1 + 20*r.Float64())
		sys.Memory.BreakEven = power.Milliseconds(1 + 30*r.Float64())
		n := 2 + r.Intn(12)
		tasks := make(task.Set, n)
		for i := range tasks {
			tasks[i] = task.Task{
				ID:       i,
				Release:  0,
				Deadline: power.Milliseconds(20 + 100*r.Float64()),
				Workload: 1e6 + 4e6*r.Float64(),
			}
		}
		in, err := normalize(tasks, sys, overheadMode(sys), overheadHorizon(tasks), nil)
		if err != nil {
			t.Fatal(err)
		}
		in.overheadScan() // fills the closed-form tables
		cMax := in.c[len(in.c)-1]
		for trial := 0; trial < 200; trial++ {
			L := cMax * (0.05 + 0.95*r.Float64())
			got, want := in.energyClosed(L), in.energyOf(L)
			if rel := math.Abs(got-want) / math.Max(want, 1e-12); rel > 1e-9 {
				t.Fatalf("seed %d n %d L %g: closed form %g vs audit %g (rel %g)", seed, n, L, got, want, rel)
			}
		}
	}
}
