package commonrelease

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// SolveHetero solves the §4.2 common-release problem on heterogeneous
// cores, the extension noted at the end of §4: task i executes on a core
// with its own power model cores[i] (same λ across cores, different α and
// β allowed). Each task's critical speed derives from its own core, and
// the per-case energy sums the dynamic terms of the aligned cores
// separately:
//
//	E_i(L) = (Σ_{aligned} α_c + α_m)·L + Σ_{aligned} β_c·w_c^λ·L^{1−λ} + const
//
// which stays convex in the busy length L, so the same case scan applies
// with per-case suffix sums.
func SolveHetero(tasks task.Set, cores []power.Core, mem power.Memory) (*Solution, error) {
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	if len(cores) != len(tasks) {
		return nil, fmt.Errorf("commonrelease: %d tasks but %d core models", len(tasks), len(cores))
	}
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		s := schedule.New(0, 0, 0)
		return &Solution{Schedule: s}, nil
	}
	if !tasks.IsCommonRelease() {
		return nil, ErrNotCommonRelease
	}
	lambda := cores[0].Lambda
	for i, c := range cores {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("commonrelease: core %d: %w", i, err)
		}
		//lint:allow floatcmp: the heterogeneous closed form requires a literally common exponent λ
		if c.Lambda != lambda {
			return nil, fmt.Errorf("commonrelease: core %d has λ=%g, want the common %g", i, c.Lambda, lambda)
		}
	}

	release := tasks[0].Release
	type item struct {
		t    task.Task
		core power.Core
		c    float64 // natural completion at the task's own critical speed
	}
	var items []item
	var horizon float64
	for i, t := range tasks {
		t.Release -= release
		t.Deadline -= release
		horizon = math.Max(horizon, t.Deadline)
		if numeric.IsZero(t.Workload, 0) {
			continue
		}
		filled := t.FilledSpeed()
		if cores[i].SpeedMax > 0 && filled > cores[i].SpeedMax*(1+relTol) {
			return nil, fmt.Errorf("commonrelease: task %d infeasible on its core even at s_up: %w", t.ID, schedule.ErrInfeasible)
		}
		s0 := cores[i].CriticalSpeed(filled)
		items = append(items, item{t: t, core: cores[i], c: t.Workload / s0})
	}
	if len(items) == 0 {
		s := schedule.New(0, release, release+horizon)
		return &Solution{Schedule: s, Delta: horizon, Energy: schedule.AuditPerCore(s, cores, mem).Total()}, nil
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].c < items[b].c })
	n := len(items)

	// Suffix sums over the aligned set {i..n}: ΣA = Σ α_c, ΣB = Σ β_c·w^λ,
	// and the binding cap L ≥ max w_c/s_up_c.
	sufA := make([]float64, n+1)
	sufB := make([]float64, n+1)
	sufCap := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		it := items[i]
		sufA[i] = sufA[i+1] + it.core.Static
		sufB[i] = sufB[i+1] + it.core.Beta*math.Pow(it.t.Workload, lambda)
		cap := 0.0
		if it.core.SpeedMax > 0 {
			cap = it.t.Workload / it.core.SpeedMax
		}
		sufCap[i] = math.Max(sufCap[i+1], cap)
	}

	// Prefix constants: tasks before the case run at their own critical
	// speed, costing w·(β·s^{λ−1} + α/s) each.
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		it := items[i]
		s0 := it.t.Workload / it.c
		prefix[i+1] = prefix[i] + it.core.Dynamic(s0)*it.c + it.core.Static*it.c
	}

	bestE, bestL := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		denom := sufA[i] + mem.Static
		var lstar float64
		if denom > 0 {
			lstar = math.Pow((lambda-1)*sufB[i]/denom, 1/lambda)
		} else {
			lstar = items[i].c // free stretching: natural completions
		}
		lo := sufCap[i]
		if i > 0 {
			lo = math.Max(lo, items[i-1].c)
		}
		hi := items[i].c
		if lo > hi+schedule.Tol {
			continue
		}
		L := numeric.Clamp(lstar, lo, hi)
		e := denom*L + sufB[i]*math.Pow(L, 1-lambda) + prefix[i]
		if e < bestE {
			bestE, bestL = e, L
		}
	}

	// Build the schedule: aligned tasks end at L, the rest at their
	// natural completion, one core per task in sorted order.
	s := schedule.New(n, release, release+horizon)
	models := make([]power.Core, n)
	for i, it := range items {
		models[i] = it.core
		end := it.c
		if end >= bestL-schedule.Tol {
			end = bestL
		}
		s.Add(i, schedule.Segment{
			TaskID: it.t.ID,
			Start:  release,
			End:    release + end,
			Speed:  it.t.Workload / end,
		})
	}
	s.Normalize()
	return &Solution{
		Schedule: s,
		BusyLen:  bestL,
		Delta:    horizon - bestL,
		Energy:   schedule.AuditPerCore(s, models, mem).Total(),
	}, nil
}
