package commonrelease

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// randomHetero draws tasks plus per-task core models with varied α and β
// (same λ, as the extension requires).
func randomHetero(r *rand.Rand, n int) (task.Set, []power.Core) {
	tasks := make(task.Set, n)
	cores := make([]power.Core, n)
	for i := range tasks {
		tasks[i] = task.Task{
			ID:       i,
			Release:  0,
			Deadline: power.Milliseconds(20 + r.Float64()*100),
			Workload: 2e6 + r.Float64()*3e6,
		}
		c := power.CortexA57()
		c.Static *= 0.5 + r.Float64()*1.5
		c.Beta *= 0.5 + r.Float64()*1.5
		c.BreakEven = 0
		cores[i] = c
	}
	return tasks, cores
}

// heteroSweep densely sweeps the busy length with the aligned structure
// and per-core audit.
func heteroSweep(tasks task.Set, cores []power.Core, mem power.Memory, samples int) float64 {
	type item struct {
		t    task.Task
		core power.Core
		c    float64
	}
	var items []item
	var horizon, cmax float64
	for i, t := range tasks {
		horizon = math.Max(horizon, t.Deadline)
		s0 := cores[i].CriticalSpeed(t.FilledSpeed())
		c := t.Workload / s0
		items = append(items, item{t, cores[i], c})
		cmax = math.Max(cmax, c)
	}
	best := math.Inf(1)
	for k := 1; k <= samples; k++ {
		L := cmax * float64(k) / float64(samples)
		s := schedule.New(len(items), 0, horizon)
		models := make([]power.Core, len(items))
		ok := true
		for i, it := range items {
			models[i] = it.core
			end := it.c
			if end >= L {
				end = L
			}
			speed := it.t.Workload / end
			if it.core.SpeedMax > 0 && speed > it.core.SpeedMax*(1+1e-9) {
				ok = false
				break
			}
			s.Add(i, schedule.Segment{TaskID: it.t.ID, Start: 0, End: end, Speed: speed})
		}
		if !ok {
			continue
		}
		s.Normalize()
		if e := schedule.AuditPerCore(s, models, mem).Total(); e < best {
			best = e
		}
	}
	return best
}

func TestSolveHeteroMatchesSweep(t *testing.T) {
	mem := power.Memory{Static: 4}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks, cores := randomHetero(r, 1+r.Intn(7))
		sol, err := SolveHetero(tasks, cores, mem)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := heteroSweep(tasks, cores, mem, 4000)
		if sol.Energy > ref*(1+1e-6) {
			t.Errorf("seed %d: solver %.9g worse than sweep %.9g", seed, sol.Energy, ref)
		}
		if err := sol.Schedule.Validate(tasks, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: power.MHz(1900)}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

func TestSolveHeteroReducesToHomogeneous(t *testing.T) {
	// Identical core models must reproduce SolveWithStatic exactly.
	sys := testSystem()
	for seed := int64(20); seed < 26; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomCommonRelease(r, 1+r.Intn(6))
		cores := make([]power.Core, len(tasks))
		for i := range cores {
			cores[i] = sys.Core
			cores[i].BreakEven = 0
		}
		het, err := SolveHetero(tasks, cores, sys.Memory)
		if err != nil {
			t.Fatal(err)
		}
		hom, err := SolveWithStatic(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(het.Energy, hom.Energy, 1e-9) {
			t.Errorf("seed %d: hetero %.9g != homogeneous %.9g", seed, het.Energy, hom.Energy)
		}
		if !almost(het.BusyLen, hom.BusyLen, 1e-9) {
			t.Errorf("seed %d: busy %.9g != %.9g", seed, het.BusyLen, hom.BusyLen)
		}
	}
}

func TestSolveHeteroAssignsCriticalSpeedsPerCore(t *testing.T) {
	// Two identical tasks on a leaky vs an efficient core: the leaky
	// core's task must run faster (its critical speed is higher).
	mem := power.Memory{Static: 0.0001} // negligible memory: pure per-core behaviour
	d := power.Milliseconds(100)
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: d, Workload: 3e6},
		{ID: 2, Release: 0, Deadline: d, Workload: 3e6},
	}
	leaky := power.CortexA57()
	leaky.Static *= 4
	efficient := power.CortexA57()
	sol, err := SolveHetero(tasks, []power.Core{leaky, efficient}, mem)
	if err != nil {
		t.Fatal(err)
	}
	speeds := map[int]float64{}
	for _, segs := range sol.Schedule.Cores {
		for _, sg := range segs {
			speeds[sg.TaskID] = sg.Speed
		}
	}
	if speeds[1] <= speeds[2] {
		t.Errorf("leaky core's task (%.3g) should run faster than efficient core's (%.3g)", speeds[1], speeds[2])
	}
}

func TestSolveHeteroErrors(t *testing.T) {
	mem := power.Memory{Static: 4}
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 1e6}}
	// Mismatched lengths.
	if _, err := SolveHetero(tasks, nil, mem); err == nil {
		t.Error("mismatched core count must be rejected")
	}
	// Mixed λ.
	a, b := power.CortexA57(), power.CortexA57()
	b.Lambda = 2
	two := task.Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 1e6},
		{ID: 2, Release: 0, Deadline: 1, Workload: 1e6},
	}
	if _, err := SolveHetero(two, []power.Core{a, b}, mem); err == nil {
		t.Error("mixed λ must be rejected")
	}
	// Non-common release.
	bad := task.Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 1e6},
		{ID: 2, Release: 0.5, Deadline: 1, Workload: 1e6},
	}
	if _, err := SolveHetero(bad, []power.Core{a, a}, mem); err == nil {
		t.Error("non-common release must be rejected")
	}
	// Infeasible on its core.
	tight := task.Set{{ID: 1, Release: 0, Deadline: 1e-6, Workload: 1e9}}
	if _, err := SolveHetero(tight, []power.Core{a}, mem); err == nil {
		t.Error("infeasible task must be rejected")
	}
	// Empty is fine.
	sol, err := SolveHetero(task.Set{}, nil, mem)
	if err != nil || sol.Energy != 0 {
		t.Errorf("empty: %+v %v", sol, err)
	}
}

func TestSolveHeteroBigLittle(t *testing.T) {
	// big.LITTLE: the same workload split across an A57 and an A7. The
	// LITTLE core's task runs slower (lower critical speed), and moving
	// the heavy task to the big core beats the reverse assignment when
	// deadlines are tight enough to exceed the A7's cap.
	mem := power.Memory{Static: 2}
	d := power.Milliseconds(60)
	big, little := power.CortexA57(), power.CortexA7()
	heavy := task.Task{ID: 1, Release: 0, Deadline: d, Workload: 9e7} // needs 1.5 GHz > A7 cap
	light := task.Task{ID: 2, Release: 0, Deadline: d, Workload: 2e6}

	good, err := SolveHetero(task.Set{heavy, light}, []power.Core{big, little}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Schedule.Validate(task.Set{heavy, light}, schedule.ValidateOptions{NonPreemptive: true, SpeedMax: big.SpeedMax}); err != nil {
		t.Fatalf("big.LITTLE schedule invalid: %v", err)
	}
	// The reverse assignment is infeasible: the heavy task cannot meet
	// its deadline on the A7.
	if _, err := SolveHetero(task.Set{heavy, light}, []power.Core{little, big}, mem); err == nil {
		t.Error("heavy task on the LITTLE core must be rejected as infeasible")
	}
}
