// Package baseline implements the comparison schedulers of the paper's
// evaluation (§8) plus two ablation policies for the title question:
//
//   - MBKP: the memory-oblivious online multi-core DVS scheme attributed
//     to Albers et al. (2007): tasks are assigned to cores round-robin in
//     arrival order (the §8.1.2 convention) and each core runs the
//     Optimal-Available rule of Yao et al. — at every scheduling event the
//     core executes its earliest-deadline job at the maximum remaining
//     work density. Neither the memory nor the cores ever sleep.
//   - MBKPS: the same schedule accounted with the naive sleep scheme of
//     §8: the memory transitions to sleep in every idle gap regardless of
//     length (cores stay idle-active, as MBKP does not manage them).
//   - RaceToIdle: every job races at s_up as soon as possible, then the
//     core and memory sleep — one pole of "race to idle or not".
//   - CriticalSpeed: every job runs at the core-optimal critical speed
//     s_0 (raised to the OA density under deadline pressure) — the other
//     pole, maximizing per-core efficiency with no memory coordination.
package baseline

import (
	"math"
	"sort"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// SpeedRule selects the execution speed for a core's ready queue at time
// t. It receives the queue EDF-sorted.
type SpeedRule func(sys power.System, queue []*sim.Job, t float64) float64

// OASpeed is the Optimal-Available rule: the maximum density
// max_d Σ_{deadline ≤ d} remaining / (d − t) over the queue.
func OASpeed(sys power.System, queue []*sim.Job, t float64) float64 {
	var acc, best float64
	for _, j := range queue {
		acc += j.Remaining
		if d := j.Task.Deadline - t; d > 0 {
			if s := acc / d; s > best {
				best = s
			}
		} else {
			best = math.Inf(1) // past due: flat out
		}
	}
	return clampSpeed(sys, best)
}

// RaceSpeed always runs flat out at s_up.
func RaceSpeed(sys power.System, _ []*sim.Job, _ float64) float64 {
	if sys.Core.SpeedMax > 0 {
		return sys.Core.SpeedMax
	}
	return 0
}

// CriticalSpeedRule runs at the critical speed s_0, raised to the OA
// density when deadlines press harder.
func CriticalSpeedRule(sys power.System, queue []*sim.Job, t float64) float64 {
	s := sys.Core.CriticalSpeedRaw()
	if oa := OASpeed(sys, queue, t); oa > s {
		s = oa
	}
	return clampSpeed(sys, s)
}

func clampSpeed(sys power.System, s float64) float64 {
	if sys.Core.SpeedMax > 0 && s > sys.Core.SpeedMax {
		return sys.Core.SpeedMax
	}
	if math.IsInf(s, 1) {
		return 1e12 // uncapped core racing a past-due job
	}
	return s
}

// run executes the per-core EDF simulation under the given speed rule:
// round-robin assignment in arrival order, independent cores,
// re-evaluation of the speed at every arrival, completion and
// critical-deadline event.
func run(tasks task.Set, sys power.System, cores int, rule SpeedRule) (*sim.Result, error) {
	return runTel(tasks, sys, cores, rule, nil, "")
}

// runTel is run with a telemetry recorder attached to the pool under the
// given scheduler name; a nil recorder is the uninstrumented path.
func runTel(tasks task.Set, sys power.System, cores int, rule SpeedRule, tel *telemetry.Recorder, name string) (*sim.Result, error) {
	pool, err := sim.NewPool(tasks, sys, cores)
	if err != nil {
		return nil, err
	}
	pool.SetTelemetry(tel, name)
	n := pool.Cores()
	// Round-robin assignment in release order (§8.1.2: "the first 8 tasks
	// are assigned to 8 cores separately, the 9th to the first core...").
	perCore := make([][]task.Task, n)
	for i, t := range pool.Tasks() {
		c := i % n
		perCore[c] = append(perCore[c], t)
	}
	for c, assigned := range perCore {
		if err := runCore(pool, c, assigned, rule); err != nil {
			return nil, err
		}
	}
	return pool.Finish()
}

// runCore simulates one core over its assigned tasks.
func runCore(pool *sim.Pool, core int, assigned []task.Task, rule SpeedRule) error {
	sys := pool.System()
	idx := 0 // next arrival in assigned (release-sorted)
	var queue []*sim.Job
	now := math.Inf(-1)
	if len(assigned) > 0 {
		now = assigned[0].Release
	}
	for {
		// Admit arrivals up to now.
		for idx < len(assigned) && assigned[idx].Release <= now+schedule.Tol {
			j := pool.Job(assigned[idx].ID)
			if !j.Done {
				queue = append(queue, j)
			}
			idx++
		}
		// Drop completed jobs.
		live := queue[:0]
		for _, j := range queue {
			if !j.Done {
				live = append(live, j)
			}
		}
		queue = live
		if len(queue) == 0 {
			if idx >= len(assigned) {
				return nil
			}
			now = assigned[idx].Release
			continue
		}
		sort.SliceStable(queue, func(a, b int) bool {
			//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
			if queue[a].Task.Deadline != queue[b].Task.Deadline {
				return queue[a].Task.Deadline < queue[b].Task.Deadline
			}
			return queue[a].Task.ID < queue[b].Task.ID
		})
		speed := rule(sys, queue, now)
		if speed <= 0 {
			speed = queue[0].Task.FilledSpeed()
		}
		head := queue[0]
		// Run until the next event: head completion, next arrival, or the
		// critical deadline where the density regime changes.
		until := now + head.Remaining/speed
		if idx < len(assigned) && assigned[idx].Release < until {
			until = assigned[idx].Release
		}
		if dCrit := criticalDeadline(queue, now, speed); dCrit < until {
			until = dCrit
		}
		if until <= now+schedule.Tol {
			until = now + head.Remaining/speed // degenerate event spacing
		}
		end, err := pool.Run(head.Task.ID, core, now, until, speed)
		if err != nil {
			return err
		}
		now = end
	}
}

// criticalDeadline returns the earliest queue deadline after now — the
// point where the OA density regime can change.
func criticalDeadline(queue []*sim.Job, now, _ float64) float64 {
	best := math.Inf(1)
	for _, j := range queue {
		if d := j.Task.Deadline; d > now+schedule.Tol && d < best {
			best = d
		}
	}
	return best
}

// MBKP schedules with the memory-oblivious OA policy and accounts energy
// with no sleeping anywhere (the paper's MBKP reference).
func MBKP(tasks task.Set, sys power.System, cores int) (*sim.Result, error) {
	return MBKPTel(tasks, sys, cores, nil)
}

// MBKPTel is MBKP with telemetry attached.
func MBKPTel(tasks task.Set, sys power.System, cores int, tel *telemetry.Recorder) (*sim.Result, error) {
	res, err := runTel(tasks, sys, cores, OASpeed, tel, "mbkp")
	if err != nil {
		return nil, err
	}
	return res.Reaudit(sys, schedule.SleepBreakEven, schedule.SleepNever), nil
}

// MBKPS is MBKP with the naive sleep scheme of §8: the memory attempts to
// sleep in every idle gap; cores are still never slept. Under the
// break-even overhead model a sleep attempt in a gap of length g costs
// α_m·min(g, ξ_m) — a gap shorter than the break-even time never
// completes the transition cycle and saves nothing — so the naive scheme
// is audited with SleepBreakEven accounting. This reproduces the paper's
// observation that MBKPS degenerates to MBKP when the system is busy
// (gaps too short to be worth anything) and only profits from long gaps.
func MBKPS(tasks task.Set, sys power.System, cores int) (*sim.Result, error) {
	return MBKPSTel(tasks, sys, cores, nil)
}

// MBKPSTel is MBKPS with telemetry attached.
func MBKPSTel(tasks task.Set, sys power.System, cores int, tel *telemetry.Recorder) (*sim.Result, error) {
	res, err := runTel(tasks, sys, cores, OASpeed, tel, "mbkps")
	if err != nil {
		return nil, err
	}
	return res.Reaudit(sys, schedule.SleepBreakEven, schedule.SleepBreakEven), nil
}

// RaceToIdle schedules every job at s_up and lets cores and memory sleep
// at break-even gaps — the "race" pole of the title question.
func RaceToIdle(tasks task.Set, sys power.System, cores int) (*sim.Result, error) {
	return RaceToIdleTel(tasks, sys, cores, nil)
}

// RaceToIdleTel is RaceToIdle with telemetry attached.
func RaceToIdleTel(tasks task.Set, sys power.System, cores int, tel *telemetry.Recorder) (*sim.Result, error) {
	res, err := runTel(tasks, sys, cores, RaceSpeed, tel, "race")
	if err != nil {
		return nil, err
	}
	return res.Reaudit(sys, schedule.SleepBreakEven, schedule.SleepBreakEven), nil
}

// CriticalSpeed schedules every job at the per-core optimal speed s_0
// with break-even sleeping — per-core optimal but memory-oblivious.
func CriticalSpeed(tasks task.Set, sys power.System, cores int) (*sim.Result, error) {
	return CriticalSpeedTel(tasks, sys, cores, nil)
}

// CriticalSpeedTel is CriticalSpeed with telemetry attached.
func CriticalSpeedTel(tasks task.Set, sys power.System, cores int, tel *telemetry.Recorder) (*sim.Result, error) {
	res, err := runTel(tasks, sys, cores, CriticalSpeedRule, tel, "critical")
	if err != nil {
		return nil, err
	}
	return res.Reaudit(sys, schedule.SleepBreakEven, schedule.SleepBreakEven), nil
}
