package baseline

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
)

func testSystem() power.System {
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	return sys
}

func sporadic(r *rand.Rand, n int, x float64) task.Set {
	s := make(task.Set, n)
	var rel float64
	for i := range s {
		rel += r.Float64() * x
		s[i] = task.Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + power.Milliseconds(10+r.Float64()*110),
			Workload: 2e6 + r.Float64()*3e6,
		}
	}
	return s
}

func TestOASpeedDensity(t *testing.T) {
	sys := testSystem()
	mk := func(id int, rem, d float64) *sim.Job {
		return &sim.Job{Task: task.Task{ID: id, Deadline: d, Workload: rem}, Remaining: rem}
	}
	// Two jobs: {1e6 by t=1}, {3e6 more by t=2}. Densities: 1e6/1 = 1e6
	// and 4e6/2 = 2e6 → OA speed 2e6.
	queue := []*sim.Job{mk(1, 1e6, 1), mk(2, 3e6, 2)}
	if got := OASpeed(sys, queue, 0); math.Abs(got-2e6) > 1 {
		t.Errorf("OA speed = %g, want 2e6", got)
	}
	// Past-due job clamps to s_up.
	late := []*sim.Job{mk(3, 1e6, -1)}
	if got := OASpeed(sys, late, 0); got != sys.Core.SpeedMax {
		t.Errorf("past-due OA speed = %g, want s_up", got)
	}
}

func TestMBKPSchedulesFeasibly(t *testing.T) {
	sys := testSystem()
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := sporadic(r, 30, power.Milliseconds(150))
		res, err := MBKP(tasks, sys, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Misses) != 0 {
			t.Errorf("seed %d: misses %v", seed, res.Misses)
		}
		if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

func TestMBKPNeverSleeps(t *testing.T) {
	sys := testSystem()
	r := rand.New(rand.NewSource(1))
	tasks := sporadic(r, 10, power.Milliseconds(400))
	res, err := MBKP(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.MemorySleep != 0 || res.Breakdown.MemoryTransition != 0 {
		t.Error("MBKP must keep the memory active throughout")
	}
	// Memory static must cover the whole horizon.
	horizon := res.Schedule.End - res.Schedule.Start
	if !almostEq(res.Breakdown.MemoryStatic, sys.Memory.Static*horizon, 1e-9) {
		t.Errorf("MBKP memory static %g, want α_m·horizon %g", res.Breakdown.MemoryStatic, sys.Memory.Static*horizon)
	}
}

func TestMBKPSSleepsInGaps(t *testing.T) {
	sys := testSystem()
	r := rand.New(rand.NewSource(2))
	tasks := sporadic(r, 10, power.Milliseconds(500)) // sparse: real gaps
	mbkp, err := MBKP(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	mbkps, err := MBKPS(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mbkps.Breakdown.MemorySleep <= 0 {
		t.Error("MBKPS should sleep the memory in idle gaps")
	}
	if mbkps.Energy >= mbkp.Energy {
		t.Errorf("MBKPS (%g) should beat MBKP (%g) on a sparse workload with free transitions", mbkps.Energy, mbkp.Energy)
	}
	// Identical execution: core dynamic energies match exactly.
	if !almostEq(mbkp.Breakdown.CoreDynamic, mbkps.Breakdown.CoreDynamic, 1e-12) {
		t.Error("MBKP and MBKPS must share the same execution schedule")
	}
}

func TestMBKPSDegeneratesToMBKPUnderPressure(t *testing.T) {
	// With a large break-even time, the naive sleep scheme cannot profit
	// from short gaps: the break-even accounting charges min(g, ξ_m)·α_m
	// per gap, so MBKPS converges to MBKP from below.
	sys := power.DefaultSystem()
	sys.Memory.BreakEven = 0.5 // 500 ms: no gap completes a transition
	r := rand.New(rand.NewSource(3))
	tasks := sporadic(r, 25, power.Milliseconds(120))
	mbkp, err := MBKP(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	mbkps, err := MBKPS(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mbkps.Energy > mbkp.Energy+1e-9 {
		t.Errorf("MBKPS (%g) must never exceed MBKP (%g) under break-even accounting", mbkps.Energy, mbkp.Energy)
	}
	if !almostEq(mbkps.Energy, mbkp.Energy, 1e-3) {
		t.Errorf("with prohibitive ξ_m MBKPS (%g) should degenerate to MBKP (%g)", mbkps.Energy, mbkp.Energy)
	}

	// The harsher pay-per-attempt semantics remain available via
	// SleepAlways and do backfire.
	harsh := mbkps.Reaudit(sys, schedule.SleepNever, schedule.SleepAlways)
	if harsh.Energy <= mbkp.Energy {
		t.Error("pay-per-attempt sleeping should backfire with prohibitive ξ_m")
	}
}

func TestRaceToIdleVsCriticalSpeed(t *testing.T) {
	// Race-to-idle burns dynamic power (s_up ≫ s_0) but maximizes sleep;
	// critical speed minimizes per-core energy but keeps the memory
	// awake longer. Both must be feasible; with the default platform
	// (λ=3) racing at 1.9 GHz costs far more dynamic energy than s_0.
	sys := testSystem()
	r := rand.New(rand.NewSource(4))
	tasks := sporadic(r, 20, power.Milliseconds(300))
	race, err := RaceToIdle(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := CriticalSpeed(tasks, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(race.Misses) != 0 || len(crit.Misses) != 0 {
		t.Fatalf("misses: %v / %v", race.Misses, crit.Misses)
	}
	if race.Breakdown.CoreDynamic <= crit.Breakdown.CoreDynamic {
		t.Error("racing must burn more dynamic energy than critical speed")
	}
	if race.Breakdown.MemorySleep <= crit.Breakdown.MemorySleep {
		t.Error("racing must yield more memory sleep than critical speed")
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	// Two tasks, two cores: each on its own core per the §8.1.2 rule.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: 0.1, Workload: 3e6},
		{ID: 2, Release: 0.001, Deadline: 0.1, Workload: 3e6},
	}
	res, err := MBKP(tasks, sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Cores[0]) == 0 || len(res.Schedule.Cores[1]) == 0 {
		t.Error("round-robin should use both cores")
	}
}

func TestQueueBacklogOnOneCore(t *testing.T) {
	// Several overlapping tasks forced onto one core: OA raises speed,
	// everything still meets deadlines.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(30), Workload: 3e6},
		{ID: 2, Release: power.Milliseconds(1), Deadline: power.Milliseconds(60), Workload: 3e6},
		{ID: 3, Release: power.Milliseconds(2), Deadline: power.Milliseconds(90), Workload: 3e6},
	}
	res, err := MBKP(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestEmptySet(t *testing.T) {
	for _, f := range []func(task.Set, power.System, int) (*sim.Result, error){MBKP, MBKPS, RaceToIdle, CriticalSpeed} {
		res, err := f(task.Set{}, testSystem(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Misses) != 0 {
			t.Error("empty set must have no misses")
		}
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestOAPreemptsForTighterArrival(t *testing.T) {
	// A loose task is running when a tight task arrives on the same
	// core: the executor must switch to the tighter deadline (EDF) and
	// raise the speed, still meeting both deadlines.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(200), Workload: 1e7},
		{ID: 2, Release: power.Milliseconds(5), Deadline: power.Milliseconds(15), Workload: 5e6},
	}
	res, err := MBKP(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Fatalf("misses: %v", res.Misses)
	}
	// Task 2 must run in [5, 15] ms even though task 1 arrived first.
	segs := res.Schedule.Cores[0]
	var sawTight bool
	for _, sg := range segs {
		if sg.TaskID == 2 {
			sawTight = true
			if sg.Start < power.Milliseconds(5)-1e-9 || sg.End > power.Milliseconds(15)+1e-9 {
				t.Errorf("tight task ran [%g, %g]", sg.Start, sg.End)
			}
		}
	}
	if !sawTight {
		t.Fatal("tight task never ran")
	}
}

func TestOverloadedCoreRecordsMisses(t *testing.T) {
	// Deliberate overload on one core: the executor races at s_up and
	// reports the misses instead of failing.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(2), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: power.Milliseconds(2), Workload: 3e6},
	}
	res, err := MBKP(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) == 0 {
		t.Error("overload must record deadline misses")
	}
}

func TestCriticalSpeedRuleRaisesUnderPressure(t *testing.T) {
	sys := testSystem()
	mk := func(rem, d float64) *sim.Job {
		return &sim.Job{Task: task.Task{ID: 1, Deadline: d, Workload: rem}, Remaining: rem}
	}
	// Loose deadline: the rule picks s_m (≈850 MHz).
	loose := []*sim.Job{mk(1e6, 1)}
	if got := CriticalSpeedRule(sys, loose, 0); almostEq(got, sys.Core.CriticalSpeedRaw(), 1e-9) == false {
		t.Errorf("loose: speed %g, want s_m %g", got, sys.Core.CriticalSpeedRaw())
	}
	// Pressing deadline: OA density dominates.
	tight := []*sim.Job{mk(3e7, 0.02)} // 1.5 GHz needed
	if got := CriticalSpeedRule(sys, tight, 0); got < 1.5e9*(1-1e-9) {
		t.Errorf("tight: speed %g, want ≥ 1.5 GHz", got)
	}
}
