package online

import (
	"testing"

	"sdem/internal/power"
	"sdem/internal/workload"
)

// BenchmarkScheduleStreamMillion pushes one million sporadic arrivals
// through the streaming engine in a single pass. The point is the memory
// shape, not just the wall clock: allocations must track the peak active
// set (reported as max_active), not the arrival count — B/op and
// allocs/op growing with the million would mean the engine materializes
// the stream. Run it with -benchtime 1x; one iteration is the statement.
func BenchmarkScheduleStreamMillion(b *testing.B) {
	sys := power.DefaultSystem()
	var maxActive int
	for i := 0; i < b.N; i++ {
		src, err := workload.SporadicStream(workload.SyntheticConfig{MaxInterArrival: power.Milliseconds(50)}, 7, 0)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := ScheduleStream(src, sys, StreamOptions{Cores: 8, MaxJobs: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Admitted != 1_000_000 {
			b.Fatalf("admitted %d arrivals, want the full million", sum.Admitted)
		}
		if n := sum.UnexplainedMisses(); n > 0 {
			b.Fatalf("%d unexplained misses on a fault-free stream", n)
		}
		maxActive = sum.MaxActive
	}
	b.ReportMetric(float64(maxActive), "max_active")
	b.ReportMetric(1_000_000*float64(b.N)/b.Elapsed().Seconds(), "arrivals/s")
}

// BenchmarkScheduleStream10k is the gate-friendly sibling: the same
// engine over ten thousand arrivals, cheap enough for the CI alloc gate
// to run at a fixed iteration count.
func BenchmarkScheduleStream10k(b *testing.B) {
	sys := power.DefaultSystem()
	for i := 0; i < b.N; i++ {
		src, err := workload.SporadicStream(workload.SyntheticConfig{MaxInterArrival: power.Milliseconds(50)}, 7, 0)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := ScheduleStream(src, sys, StreamOptions{Cores: 8, MaxJobs: 10_000})
		if err != nil {
			b.Fatal(err)
		}
		if n := sum.UnexplainedMisses(); n > 0 {
			b.Fatalf("%d unexplained misses on a fault-free stream", n)
		}
	}
}
