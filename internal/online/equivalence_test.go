package online

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"sdem/internal/faults"
	"sdem/internal/parallel"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
	"sdem/internal/workload"
)

// perturb applies the task-level faults of a plan (workload overruns,
// late releases) to a copy of the task set, so both engines consume the
// same perturbed inputs — the path on which the urgent/race branches and
// deadline misses actually fire.
func perturb(tasks task.Set, plan faults.Plan) task.Set {
	out := tasks.Clone()
	byID := make(map[int]int, len(out))
	for i, t := range out {
		byID[t.ID] = i
	}
	for _, f := range plan.Faults {
		i, ok := byID[f.TaskID]
		if !ok {
			continue
		}
		switch f.Kind {
		case faults.Overrun:
			out[i].Workload *= f.Factor
		case faults.LateRelease:
			out[i].Release += f.Delay
			if out[i].Release >= out[i].Deadline {
				// Keep the task validatable; the shrunken window still
				// exercises the urgent path.
				out[i].Release = out[i].Deadline - 1e-6
			}
		}
	}
	return out
}

// equivalenceWorkloads yields the deterministic workload/system/options
// grid the byte-identity property is checked over: the fig7 sporadic
// synthetic sets, the fig6 DSP benchmark sets, and fault-perturbed
// variants of both, across scheme dispatch and engine options.
func equivalenceWorkloads(t *testing.T) []struct {
	name  string
	tasks task.Set
	sys   power.System
	opts  Options
} {
	t.Helper()
	overhead := power.DefaultSystem() // ξ_m > 0: overhead scheme
	static := power.DefaultSystem()
	static.Core.BreakEven = 0
	static.Memory.BreakEven = 0 // α > 0: with-static scheme
	alphaZero := static
	alphaZero.Core.Static = 0 // α = 0 scheme
	unbounded := static
	unbounded.Core.SpeedMax = 0 // raceSpeed stretch paths

	var out []struct {
		name  string
		tasks task.Set
		sys   power.System
		opts  Options
	}
	add := func(name string, tasks task.Set, sys power.System, opts Options) {
		out = append(out, struct {
			name  string
			tasks task.Set
			sys   power.System
			opts  Options
		}{name, tasks, sys, opts})
	}

	for seed := int64(1); seed <= 6; seed++ {
		// fig7-style sporadic synthetic workload.
		syn, err := workload.Synthetic(workload.SyntheticConfig{N: 40, MaxInterArrival: power.Milliseconds(120)}, seed)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("fig7/seed=%d/overhead", seed), syn, overhead, Options{Cores: 8})
		add(fmt.Sprintf("fig7/seed=%d/static", seed), syn, static, Options{Cores: 4})
		add(fmt.Sprintf("fig7/seed=%d/alpha0", seed), syn, alphaZero, Options{Cores: 8, PlanAlphaZero: true})
		add(fmt.Sprintf("fig7/seed=%d/noproc", seed), syn, overhead, Options{Cores: 8, NoProcrastinate: true})

		// fig6-style DSP benchmark workload.
		bench, err := workload.Benchmark(workload.BenchmarkConfig{N: 30, Kernel: workload.KernelMixed, U: 0.4}, seed)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("fig6/seed=%d/overhead", seed), bench, overhead, Options{Cores: 8})
		add(fmt.Sprintf("fig6/seed=%d/static", seed), bench, static, Options{Cores: 8})

		// Fault-perturbed variants: overruns and late releases push jobs
		// into the urgent/slackless branches and produce misses, under a
		// core shortage to stress the execute queueing path.
		plan := faults.Generate(faults.Config{Intensity: 0.6}, syn, overhead, seed)
		hot := perturb(syn, plan)
		add(fmt.Sprintf("fig7-faulty/seed=%d/overhead", seed), hot, overhead, Options{Cores: 2})
		add(fmt.Sprintf("fig7-faulty/seed=%d/static", seed), hot, static, Options{Cores: 1})
		add(fmt.Sprintf("fig7-faulty/seed=%d/unbounded", seed), hot, unbounded, Options{Cores: 2})
	}
	return out
}

// TestScheduleMatchesRescan is the equivalence property: the incremental
// engine's sim.Result is identical — schedule bits, misses, energy,
// metrics — to the legacy full-rescan oracle on every deterministic
// workload, fault-free and fault-perturbed.
func TestScheduleMatchesRescan(t *testing.T) {
	for _, c := range equivalenceWorkloads(t) {
		inc, err := Schedule(c.tasks, c.sys, c.opts)
		if err != nil {
			t.Fatalf("%s: incremental: %v", c.name, err)
		}
		ref, err := ScheduleRescan(c.tasks, c.sys, c.opts)
		if err != nil {
			t.Fatalf("%s: rescan: %v", c.name, err)
		}
		if !reflect.DeepEqual(inc, ref) {
			t.Errorf("%s: incremental result diverges from rescan oracle\nincremental: energy=%x misses=%v segs=%d\nrescan:      energy=%x misses=%v segs=%d",
				c.name, math.Float64bits(inc.Energy), inc.Misses, countSegs(inc),
				math.Float64bits(ref.Energy), ref.Misses, countSegs(ref))
		}
	}
}

func countSegs(r *sim.Result) int {
	n := 0
	for _, c := range r.Schedule.Cores {
		n += len(c)
	}
	return n
}

// TestScheduleWorkerCountInvariant runs the equivalence grid through
// parallel.Map at several worker counts and requires identical
// fingerprints, so the engines stay deterministic under the sweep pool.
func TestScheduleWorkerCountInvariant(t *testing.T) {
	cases := equivalenceWorkloads(t)
	run := func(workers int) []uint64 {
		out, err := parallel.Map(context.Background(), workers, len(cases), func(_ context.Context, i int) (uint64, error) {
			c := cases[i]
			res, err := Schedule(c.tasks, c.sys, c.opts)
			if err != nil {
				return 0, err
			}
			return math.Float64bits(res.Energy) ^ uint64(len(res.Misses))<<1 ^ uint64(countSegs(res)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, seq) {
			t.Errorf("workers=%d: fingerprints diverge from sequential", workers)
		}
	}
}

// TestPlanReuseAndSkipFire pins the incremental engine's two elision
// paths open on a workload built to hit them: a strictly periodic task
// (identical window/workload bits every period, one job active at a
// time) must reuse the previous solve, and a pair of arrivals closer
// together than the first job's procrastinated wake must skip the solve
// outright. Equivalence on these workloads is covered by the property
// test; this test proves the fast paths actually run.
func TestPlanReuseAndSkipFire(t *testing.T) {
	sys := power.DefaultSystem()

	periodic := make(task.Set, 0, 12)
	for i := 0; i < 12; i++ {
		rel := float64(i) * 0.2
		periodic = append(periodic, task.Task{ID: i, Release: rel, Deadline: rel + 0.1, Workload: 3e6})
	}
	tel := telemetry.New()
	if _, err := Schedule(periodic, sys, Options{Cores: 2, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, "sdem.solver.online.plan_reuse"); got < 5 {
		t.Errorf("periodic workload reused %d plans, want ≥ 5", got)
	}
	if inc, ref := mustRun(t, Schedule, periodic, sys), mustRun(t, ScheduleRescan, periodic, sys); !reflect.DeepEqual(inc, ref) {
		t.Error("periodic workload: memo path diverges from oracle")
	}

	// Two bursts 1 ms apart, each job with a 100 ms window: the first
	// plan procrastinates far past the second arrival.
	burst := task.Set{
		{ID: 0, Release: 0, Deadline: 0.1, Workload: 2e6},
		{ID: 1, Release: 0.001, Deadline: 0.101, Workload: 2e6},
	}
	tel = telemetry.New()
	if _, err := Schedule(burst, sys, Options{Cores: 2, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, "sdem.solver.online.skipped_solves"); got < 1 {
		t.Errorf("burst workload skipped %d solves, want ≥ 1", got)
	}
	if inc, ref := mustRun(t, Schedule, burst, sys), mustRun(t, ScheduleRescan, burst, sys); !reflect.DeepEqual(inc, ref) {
		t.Error("burst workload: skip path diverges from oracle")
	}
}

func mustRun(t *testing.T, f func(task.Set, power.System, Options) (*sim.Result, error), tasks task.Set, sys power.System) *sim.Result {
	t.Helper()
	res, err := f(tasks, sys, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func counter(tel *telemetry.Recorder, name string) int64 {
	var total int64
	for _, c := range tel.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// TestExecuteSlacklessRacesAtMax is the regression test for the late-job
// speed fix: when queueing delay pushes a job's start to or past its
// deadline, execute must race it at s_up instead of keeping the stale
// planned speed (which would stretch the overrun far past the deadline).
func TestExecuteSlacklessRacesAtMax(t *testing.T) {
	sys := power.DefaultSystem()
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 0.05, Workload: 4e6}}
	pool, err := sim.NewPool(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The single core is busy until after the deadline, so the planned
	// (p, speed) pair is stale by the time the job starts.
	busy := []float64{0.06}
	plans := []plan{{job: pool.Job(1), p: 0.04, speed: 1e8}}
	if err := execute(pool, busy, plans, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	segs := segmentsOf(pool, t)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	if got, want := segs[0].Speed, sys.Core.SpeedMax; got != want {
		t.Errorf("slackless start ran at %g, want race speed s_up = %g", got, want)
	}
}

// TestExecuteSlacklessUnboundedSpeed covers the same regression on a
// platform without a speed cap: the race speed must be a finite stretch
// over the job's own window, not the stale plan or a sentinel.
func TestExecuteSlacklessUnboundedSpeed(t *testing.T) {
	sys := power.DefaultSystem()
	sys.Core.SpeedMax = 0
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 0.05, Workload: 4e6}}
	pool, err := sim.NewPool(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	busy := []float64{0.06}
	plans := []plan{{job: pool.Job(1), p: 0.04, speed: 1e8}}
	if err := execute(pool, busy, plans, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	segs := segmentsOf(pool, t)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	want := 4e6 / 0.05 // workload over the full release→deadline window
	if got := segs[0].Speed; got != want {
		t.Errorf("slackless start on uncapped core ran at %g, want window stretch %g", got, want)
	}
}

// TestPlanAtUrgentNoSpeedCap is the regression test for the 1e12
// sentinel leak: with SpeedMax == 0, an urgent job's plan used to carry
// effectiveMax's infinite-cap sentinel as its speed (and a near-zero P).
// The plan must instead race at a finite stretch over the job's window.
func TestPlanAtUrgentNoSpeedCap(t *testing.T) {
	sys := power.DefaultSystem()
	sys.Core.SpeedMax = 0
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 0.01, Workload: 1e6}}
	pool, err := sim.NewPool(tasks, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.02 // past the deadline: the job is urgent with window ≤ 0
	plans, wake, err := PlanAt(pool, pool.Released(now), now, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || !plans[0].Urgent {
		t.Fatalf("want 1 urgent plan, got %+v", plans)
	}
	wantSpeed := 1e6 / 0.01 // workload over the release→deadline window
	if got := plans[0].Speed; got != wantSpeed {
		t.Errorf("urgent plan speed = %g, want %g (sentinel must not leak)", got, wantSpeed)
	}
	if got, want := plans[0].P, 0.01; got != want {
		t.Errorf("urgent plan P = %g, want %g", got, want)
	}
	if wake != now {
		t.Errorf("urgent wake = %g, want now = %g", wake, now)
	}
}

// segmentsOf finalizes the pool and returns all segments across cores.
func segmentsOf(pool *sim.Pool, t *testing.T) []schedule.Segment {
	t.Helper()
	res, err := pool.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var segs []schedule.Segment
	for _, c := range res.Schedule.Cores {
		segs = append(segs, c...)
	}
	return segs
}
