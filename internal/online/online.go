// Package online implements SDEM-ON, the paper's §6 online heuristic for
// general task sets, including the §7 transition-overhead variant.
//
// On every arrival the scheduler re-plans: all unfinished work is treated
// as a common-release instance at the current time (original deadlines,
// remaining workloads) and solved optimally with the §4 schemes. The plan
// yields each task's execution time p_j; the memory (and cores) then stay
// asleep until the first task reaches its latest execution point
// d_j − p_j, at which moment every active task starts executing at its
// planned speed. A new arrival preempts and triggers a fresh plan.
package online

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// Options tunes the SDEM-ON run.
type Options struct {
	// Cores bounds the number of physical cores (0 = one per task). When
	// more tasks are active than cores, the surplus waits EDF-ordered for
	// a core to free up.
	Cores int
	// NoProcrastinate disables the latest-execution-point postponement:
	// tasks start executing immediately after each plan. This is the A2
	// ablation of DESIGN.md; the paper's SDEM-ON procrastinates.
	NoProcrastinate bool
	// PlanAlphaZero makes the per-arrival planning use the §4.1 (α = 0)
	// scheme even on a leaky-core platform: speeds stay near the filled
	// speed instead of racing to the critical speed. Energy is still
	// audited with the full system model. The paper's evaluation behaves
	// like this variant (its Fig. 6b discussion notes SDEM-ON scheduling
	// "at lower speed" when utilization is low, which §4.2 planning never
	// does); the default α ≠ 0 planning is strictly better.
	PlanAlphaZero bool
	// Telemetry, when non-nil, records per-plan metrics and trace events
	// (sdem.solver.online.* plus the pool's sdem.sim.* series).
	Telemetry *telemetry.Recorder
	// Ctx, when non-nil, is polled at every arrival boundary: a cancelled
	// context abandons the run between re-plans with Ctx's error, so a
	// caller-imposed deadline budget bounds even long simulations. The
	// poll is allocation-free and does not perturb the virtual-time
	// result of runs that complete.
	Ctx context.Context
}

// plan is one task's share of a common-release solution.
type plan struct {
	job   *sim.Job
	p     float64 // planned execution time
	speed float64 // planned speed
}

// Schedule runs SDEM-ON over the task set and returns the audited result.
// Deadline misses (possible only under core shortage or infeasible
// inputs) are reported in the result rather than failing the run.
//
// It drives the incremental engine (Runtime); ScheduleRescan is the
// legacy full-rescan reference with bit-identical output, kept as the
// equivalence oracle.
func Schedule(tasks task.Set, sys power.System, opts Options) (*sim.Result, error) {
	var rt Runtime
	return rt.Schedule(tasks, sys, opts)
}

// ScheduleRescan is the reference SDEM-ON implementation: on every
// arrival it rescans the whole pool for released jobs and re-solves the
// common-release instance from scratch. It is O(n²) in arrivals and
// exists as the equivalence oracle for the incremental engine — the
// property tests assert Schedule and ScheduleRescan produce byte-identical
// results on every deterministic workload.
func ScheduleRescan(tasks task.Set, sys power.System, opts Options) (*sim.Result, error) {
	pool, err := sim.NewPool(tasks, sys, opts.Cores)
	if err != nil {
		return nil, err
	}
	who := "sdem-on"
	if opts.PlanAlphaZero {
		who = "sdem-on-z"
	}
	pool.SetTelemetry(opts.Telemetry, who)
	arrivals := pool.ArrivalTimes()
	busyUntil := make([]float64, pool.Cores())
	// Plan backing reused across arrivals: every step rebinds the same
	// slice, so one allocation serves the whole run.
	var scratch []plan

	for k, now := range arrivals {
		// Cooperative cancellation checkpoint, once per arrival: the
		// per-arrival re-plan below is the expensive unit of work.
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("online: cancelled at arrival %d of %d: %w", k, len(arrivals), err)
			}
		}
		next := math.Inf(1)
		if k+1 < len(arrivals) {
			next = arrivals[k+1]
		}
		if err := step(pool, busyUntil, &scratch, now, next, opts); err != nil {
			return nil, err
		}
	}
	return pool.Finish()
}

// step plans at time now and executes until next. It runs once per
// arrival: everything below it is the SDEM-ON hot path.
//
//sdem:hotpath
func step(pool *sim.Pool, busyUntil []float64, scratch *[]plan, now, next float64, opts Options) error {
	active := pool.Released(now)
	if len(active) == 0 {
		return nil
	}
	plans, wake, err := makePlans(pool, active, scratch, now, opts)
	if err != nil {
		return err
	}
	if opts.NoProcrastinate {
		wake = now
	}
	if wake >= next {
		return nil // keep sleeping; the next arrival re-plans
	}
	return execute(pool, busyUntil, plans, wake, next)
}

// Plan is one job's share of a common-release re-plan at some instant:
// execute the job's remaining workload for P seconds at Speed. Urgent
// marks jobs already beyond salvation at a stretched speed, which the plan
// races at s_up immediately.
type Plan struct {
	TaskID int
	// P is the planned execution time in seconds.
	P float64
	// Speed is the planned constant speed in Hz.
	Speed float64
	// Urgent marks a job whose deadline is unreachable without racing.
	Urgent bool
}

// PlanAt solves the common-release instance formed by the given unfinished
// jobs at time now — remaining workloads, original deadlines — with the §4
// schemes, and returns the per-job plans plus the wake time (the earliest
// latest execution point d_j − p_j over the planned jobs; now itself when
// any job is urgent). This is the re-planning step SDEM-ON performs on
// every arrival, exported so the resilient runtime's recovery chain can
// re-plan mid-execution after a fault. Infeasibility surfaces as an error
// wrapping schedule.ErrInfeasible.
//
//sdem:hotpath
func PlanAt(pool *sim.Pool, active []*sim.Job, now float64, opts Options) ([]Plan, float64, error) {
	tel := opts.Telemetry
	tel.Count("sdem.solver.online.plans", 1)
	tel.Observe("sdem.solver.online.active_jobs", float64(len(active)))
	sys := pool.System()
	planSys := sys
	if opts.PlanAlphaZero {
		planSys.Core.Static = 0
		planSys.Core.BreakEven = 0
	}
	virtual := make(task.Set, 0, len(active))
	var urgent []*sim.Job
	for _, j := range active {
		window := j.Task.Deadline - now
		if window <= 0 || (sys.Core.SpeedMax > 0 && j.Remaining/window > sys.Core.SpeedMax) {
			// Already beyond salvation at a stretched speed: race at
			// s_up immediately; the pool records the miss if it is one.
			//lint:allow hotalloc: urgent stays nil on the feasible fast path; preallocating would cost an allocation on every plan
			urgent = append(urgent, j)
			continue
		}
		virtual = append(virtual, task.Task{
			ID:       j.Task.ID,
			Release:  now,
			Deadline: j.Task.Deadline,
			Workload: j.Remaining,
		})
	}
	plans := make([]Plan, 0, len(active))
	wake := math.Inf(1)
	if len(virtual) > 0 {
		sol, err := commonrelease.SolveTel(virtual, planSys, tel)
		if err != nil {
			return nil, 0, fmt.Errorf("online: planning at t=%g: %w", now, err)
		}
		//lint:allow hotalloc: one size-hinted map per re-plan (per arrival), not per objective evaluation
		ends := make(map[int]float64, len(virtual))
		for _, segs := range sol.Schedule.Cores {
			for _, sg := range segs {
				if sg.End > ends[sg.TaskID] {
					ends[sg.TaskID] = sg.End
				}
			}
		}
		for _, vt := range virtual {
			p := ends[vt.ID] - now
			if p <= 0 { // defensive: plan must give every task time
				p = vt.Workload / raceSpeed(vt.Workload, vt.Release, vt.Deadline, now, sys)
			}
			plans = append(plans, Plan{TaskID: vt.ID, P: p, Speed: vt.Workload / p})
			wake = math.Min(wake, vt.Deadline-p)
		}
	}
	for _, j := range urgent {
		s := raceSpeed(j.Remaining, j.Task.Release, j.Task.Deadline, now, sys)
		p := j.Remaining / s
		plans = append(plans, Plan{TaskID: j.Task.ID, P: p, Speed: s, Urgent: true})
		wake = now
	}
	tel.Count("sdem.solver.online.urgent_jobs", int64(len(urgent)))
	if wake < now {
		wake = now
	}
	if tel != nil && !math.IsInf(wake, 1) {
		tel.Observe("sdem.solver.online.procrastination_s", wake-now)
		tel.Instant("plan", "online", now, 0,
			telemetry.Int("active", int64(len(active))),
			telemetry.Int("urgent", int64(len(urgent))),
			telemetry.Num("wake", wake))
	}
	return plans, wake, nil
}

// makePlans binds PlanAt's result back to the pool's job objects for the
// execute step, reusing the caller's scratch backing.
func makePlans(pool *sim.Pool, active []*sim.Job, scratch *[]plan, now float64, opts Options) ([]plan, float64, error) {
	pub, wake, err := PlanAt(pool, active, now, opts)
	if err != nil {
		return nil, 0, err
	}
	plans := (*scratch)[:0]
	for _, pl := range pub {
		//lint:allow hotalloc: appends into the reused scratch backing; it grows only until the run's high-water active count
		plans = append(plans, plan{job: pool.Job(pl.TaskID), p: pl.P, speed: pl.Speed})
	}
	*scratch = plans
	return plans, wake, nil
}

func effectiveMax(sys power.System) float64 {
	if sys.Core.SpeedMax > 0 {
		return sys.Core.SpeedMax
	}
	return 1e12 // effectively unbounded
}

// raceSpeed is the finite racing speed for a job that can no longer meet
// its deadline (or that the plan failed to give time): s_up when the
// platform bounds speed; on an unbounded platform, the remaining work
// stretched over the remaining window — or over the original window when
// even that has closed — so the plan carries a physically meaningful
// speed instead of effectiveMax's 1e12 sentinel (which produced absurd
// audited energy and near-zero P for urgent jobs). The final 1-second
// stretch is unreachable for validated tasks (Deadline > Release) but
// keeps the result finite for perturbed pools.
func raceSpeed(rem, release, deadline, now float64, sys power.System) float64 {
	if sys.Core.SpeedMax > 0 {
		return sys.Core.SpeedMax
	}
	if w := deadline - now; w > 0 {
		return rem / w
	}
	if w := deadline - release; w > 0 {
		return rem / w
	}
	return rem // stretch over one second: every window signal is gone
}

// plansEDF sorts plans by deadline then task ID. The pointer receiver
// avoids boxing a fresh slice header into sort.Interface on every step.
type plansEDF []plan

func (p *plansEDF) Len() int { return len(*p) }
func (p *plansEDF) Less(a, b int) bool {
	s := *p
	//lint:allow floatcmp: sort tie-breaking must be exact to keep the comparator transitive
	if s[a].job.Task.Deadline != s[b].job.Task.Deadline {
		return s[a].job.Task.Deadline < s[b].job.Task.Deadline
	}
	return s[a].job.Task.ID < s[b].job.Task.ID
}
func (p *plansEDF) Swap(a, b int) { (*p)[a], (*p)[b] = (*p)[b], (*p)[a] }

// execute lays the planned executions onto cores from wake until next,
// EDF-ordered, waiting for cores when oversubscribed.
// runner is the execution substrate execute drives: the batch Pool and
// the streaming Stream both satisfy it, so the same executor serves
// bounded runs and the soak engine.
type runner interface {
	Run(taskID, core int, t0, t1, speed float64) (float64, error)
	System() power.System
}

func execute(pool runner, busyUntil []float64, plans []plan, wake, next float64) error {
	sort.Stable((*plansEDF)(&plans))
	sys := pool.System()
	for _, pl := range plans {
		start := wake
		// Respect the no-migration pin and core availability.
		core := pl.job.Core
		if core >= 0 {
			start = math.Max(start, busyUntil[core])
		} else {
			core = 0
			for c := range busyUntil {
				if busyUntil[c] < busyUntil[core] {
					core = c
				}
			}
			start = math.Max(start, busyUntil[core])
		}
		if start >= next {
			pl.job.Squeezed = true
			continue // no core frees before the next re-plan
		}
		speed := pl.speed
		// A delayed start may invalidate the plan: compress to the
		// deadline, capped at s_up (the pool caps further; late
		// completion is recorded as a miss).
		if slack := pl.job.Task.Deadline - start; slack < pl.job.Remaining/speed {
			pl.job.Squeezed = true
			if slack > 0 {
				speed = pl.job.Remaining / slack
				if max := effectiveMax(sys); speed > max {
					speed = max
				}
			} else {
				// The start is already at or past the deadline: the miss
				// is unavoidable, so race at s_up instead of keeping the
				// stale planned speed and running past the deadline slowly.
				speed = raceSpeed(pl.job.Remaining, pl.job.Task.Release, pl.job.Task.Deadline, start, sys)
			}
		}
		end := math.Min(start+pl.job.Remaining/speed, next)
		if end <= start {
			continue
		}
		actual, err := pool.Run(pl.job.Task.ID, core, start, end, speed)
		if err != nil {
			return err
		}
		busyUntil[core] = actual
	}
	return nil
}
