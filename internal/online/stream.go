package online

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"sdem/internal/faults"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
	"sdem/internal/workload"
)

// StreamOptions tunes a streaming SDEM-ON run.
type StreamOptions struct {
	// Cores is the physical core count (required, > 0).
	Cores int
	// MaxVirtual stops admitting new arrivals once the stream has
	// advanced that many seconds of virtual time past the first release
	// (0 = no bound; the source must then be finite).
	MaxVirtual float64
	// MaxJobs stops admitting after that many arrivals (0 = no bound).
	MaxJobs int64
	// Faults, when non-nil, perturbs each arriving job (workload
	// overruns, late releases) and classifies the resulting misses.
	Faults *faults.Streamer
	// NoProcrastinate and PlanAlphaZero select the engine variants of
	// Options.
	NoProcrastinate bool
	PlanAlphaZero   bool
	// Telemetry, when non-nil, records the same sdem.solver.online.* and
	// sdem.sim.* series as the batch engine, plus
	// sdem.solver.online.stream_virtual_s (a gauge of progress a live
	// scrape can watch).
	Telemetry *telemetry.Recorder
	// Ctx, when non-nil, is polled at every arrival boundary.
	Ctx context.Context
}

// arrivalHeap reorders perturbed arrivals by (release, ID): a late-release
// fault can push a job past later upstream arrivals, and the engine must
// still admit in time order. Delays are bounded by each job's window, so
// the heap stays as small as the overlap — O(active), never O(stream).
type arrivalHeap []taskArrival

type taskArrival struct {
	t task.Task
}

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	//lint:allow floatcmp: heap ordering must be exact to stay deterministic
	if h[i].t.Release != h[j].t.Release {
		return h[i].t.Release < h[j].t.Release
	}
	return h[i].t.ID < h[j].t.ID
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(taskArrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ScheduleStream runs the incremental SDEM-ON engine over an unbounded
// arrival source in O(active-set) memory: jobs are admitted from the
// source one arrival at a time, planned with the same per-arrival
// machinery as Schedule, executed into a sim.Stream whose meter accounts
// energy incrementally, and retired on completion. This is the soak
// engine — days of virtual time under fault injection with live
// telemetry, no materialized task set or schedule.
func ScheduleStream(src workload.Source, sys power.System, opts StreamOptions) (*sim.StreamSummary, error) {
	var rt Runtime
	return rt.RunStream(src, sys, opts)
}

// RunStream is ScheduleStream on a retained Runtime (see Schedule vs
// Runtime.Schedule).
func (rt *Runtime) RunStream(src workload.Source, sys power.System, opts StreamOptions) (*sim.StreamSummary, error) {
	st, err := sim.NewStream(sys, opts.Cores)
	if err != nil {
		return nil, err
	}
	who := "sdem-on"
	if opts.PlanAlphaZero {
		who = "sdem-on-z"
	}
	tel := opts.Telemetry
	st.SetTelemetry(tel, who)
	// A miss is explained when the job itself was perturbed (replayed
	// from its deterministic fault draw) or when the executor squeezed it
	// behind a full machine — a queueing consequence of overload bursts
	// or of perturbed jobs hogging cores, possibly chained through clean
	// jobs that absorbed the delay. A sporadic source over enough virtual
	// time will overload any finite machine occasionally, so squeezed
	// misses are expected physics, not bugs. A miss on an undisturbed,
	// never-squeezed job means the planner itself scheduled it wrong: an
	// engine bug, and the soak gate fails on it.
	fs := opts.Faults
	st.SetMissClassifier(func(j *sim.Job) bool {
		if j.Squeezed {
			return true
		}
		return fs != nil && !fs.Sample(j.Task).None()
	})

	rt.reset()
	if cap(rt.busyUntil) < opts.Cores {
		rt.busyUntil = make([]float64, opts.Cores)
	}
	busy := rt.busyUntil[:opts.Cores]
	for i := range busy {
		busy[i] = 0
	}

	stepOpts := Options{
		Cores:           opts.Cores,
		NoProcrastinate: opts.NoProcrastinate,
		PlanAlphaZero:   opts.PlanAlphaZero,
		Telemetry:       tel,
	}

	var (
		pending   arrivalHeap
		upstream  task.Task
		hasUp     bool
		drawn     int64
		started   bool
		first     float64
		maxDL     float64
		exhausted bool
		arrival   int64
	)
	perturb := func(t task.Task) taskArrival {
		if opts.Faults == nil {
			return taskArrival{t: t}
		}
		f := opts.Faults.Sample(t)
		if f.None() {
			return taskArrival{t: t}
		}
		t.Workload *= f.WorkFactor
		t.Release += f.ReleaseDelay
		if t.Release >= t.Deadline {
			// Keep the job admissible (Validate rejects an empty window
			// with work): a sliver-window arrival still exercises the
			// urgent path and counts as an explained miss.
			t.Release = t.Deadline - schedule.Tol
		}
		return taskArrival{t: t}
	}
	pull := func() {
		if exhausted {
			return
		}
		t, ok := src.Next()
		if !ok {
			exhausted = true
			hasUp = false
			return
		}
		upstream, hasUp = t, true
	}
	admissionOver := func(rel float64) bool {
		if opts.MaxJobs > 0 && drawn >= opts.MaxJobs {
			return true
		}
		return started && opts.MaxVirtual > 0 && rel-first > opts.MaxVirtual
	}

	pull()
	for {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("online: stream cancelled at arrival %d: %w", arrival, err)
			}
		}
		// Feed the reorder heap until its minimum is safe to emit: once
		// the upstream release passes the heap minimum, no future task —
		// delays are non-negative — can arrive earlier.
		for hasUp && (len(pending) == 0 || upstream.Release <= pending[0].t.Release) {
			if admissionOver(upstream.Release) {
				hasUp = false
				exhausted = true
				break
			}
			heap.Push(&pending, perturb(upstream))
			drawn++
			pull()
		}
		if len(pending) == 0 && st.Active() == 0 {
			break // drained: no arrivals left and nothing running
		}

		// The next planning instant: the earliest pending arrival, or a
		// final drain pass over whatever is still active.
		now := math.Inf(1)
		if len(pending) > 0 {
			now = pending[0].t.Release
		} else {
			now = st.Now()
		}
		for len(pending) > 0 && pending[0].t.Release <= now+schedule.Tol {
			a := heap.Pop(&pending).(taskArrival)
			j, err := st.Admit(a.t)
			if err != nil {
				return nil, fmt.Errorf("online: admitting task %d: %w", a.t.ID, err)
			}
			arrival++
			if !started {
				started = true
				first = a.t.Release
			}
			if a.t.Deadline > maxDL {
				maxDL = a.t.Deadline
			}
			if !j.Done {
				rt.insertActive(j)
			}
		}
		next := math.Inf(1)
		if len(pending) > 0 {
			next = pending[0].t.Release
		} else if hasUp {
			next = upstream.Release
		}
		rt.sweepDone()
		if len(rt.active) > 0 {
			if err := rt.step(st, busy, now, next, stepOpts); err != nil {
				return nil, err
			}
			rt.sweepDone()
		}
		st.Seal(next)
		if tel != nil {
			tel.Gauge("sdem.solver.online.stream_virtual_s", st.Now()-first)
		}
		if math.IsInf(next, 1) && len(rt.active) > 0 {
			// Final drain executed everything plannable; anything still
			// active is unschedulable (zero window at +Inf horizon) and
			// retires as a miss in Finish.
			break
		}
		if math.IsInf(next, 1) && len(pending) == 0 && !hasUp && st.Active() == 0 {
			break
		}
	}
	end := math.Max(maxDL, st.Now())
	return st.Finish(end), nil
}
