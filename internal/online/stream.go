package online

import (
	"context"
	"fmt"
	"math"

	"sdem/internal/faults"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
	"sdem/internal/telemetry/series"
	"sdem/internal/workload"
)

// StreamOptions tunes a streaming SDEM-ON run.
type StreamOptions struct {
	// Cores is the physical core count (required, > 0).
	Cores int
	// MaxVirtual stops admitting new arrivals once the stream has
	// advanced that many seconds of virtual time past the first release
	// (0 = no bound; the source must then be finite).
	MaxVirtual float64
	// MaxJobs stops admitting after that many arrivals (0 = no bound).
	MaxJobs int64
	// Faults, when non-nil, perturbs each arriving job (workload
	// overruns, late releases) and classifies the resulting misses.
	Faults *faults.Streamer
	// NoProcrastinate and PlanAlphaZero select the engine variants of
	// Options.
	NoProcrastinate bool
	PlanAlphaZero   bool
	// Telemetry, when non-nil, records the same sdem.solver.online.* and
	// sdem.sim.* series as the batch engine, plus
	// sdem.solver.online.stream_virtual_s (a gauge of progress a live
	// scrape can watch).
	Telemetry *telemetry.Recorder
	// Series, when non-nil, is advanced on virtual time at every
	// planning-batch boundary and fed the per-retirement response sketch
	// (sdem.stream.response_s) plus the per-batch mean energy per
	// completed job (sdem.stream.energy_per_job_j). The caller owns the
	// collector and calls Finish on it after the run.
	Series *series.Collector
	// Ctx, when non-nil, is polled at every arrival boundary.
	Ctx context.Context
}

// arrivalHeap reorders perturbed arrivals by (release, ID): a late-release
// fault can push a job past later upstream arrivals, and the engine must
// still admit in time order. Delays are bounded by each job's window, so
// the heap stays as small as the overlap — O(active), never O(stream).
//
// It is a hand-rolled typed binary heap rather than a container/heap
// implementation: heap.Push and heap.Pop traffic in `any`, which boxes
// every taskArrival on push AND on pop — two heap allocations per
// arrival on the engine's hottest path. The typed min-heap keeps the
// identical (release, ID) order with zero allocations past the backing
// array's high-water growth.
type arrivalHeap []taskArrival

type taskArrival struct {
	t task.Task
}

func (h arrivalHeap) less(i, j int) bool {
	//lint:allow floatcmp: heap ordering must be exact to stay deterministic
	if h[i].t.Release != h[j].t.Release {
		return h[i].t.Release < h[j].t.Release
	}
	return h[i].t.ID < h[j].t.ID
}

// push inserts a and restores the heap invariant (sift-up).
func (h *arrivalHeap) push(a taskArrival) {
	//lint:allow hotalloc: appends into the reused heap backing; it grows to the high-water overlap size once
	*h = append(*h, a)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the minimum element (sift-down).
func (h *arrivalHeap) pop() taskArrival {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = taskArrival{}
	*h = s[:n]
	s = s[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// ScheduleStream runs the incremental SDEM-ON engine over an unbounded
// arrival source in O(active-set) memory: jobs are admitted from the
// source one arrival at a time, planned with the same per-arrival
// machinery as Schedule, executed into a sim.Stream whose meter accounts
// energy incrementally, and retired on completion. This is the soak
// engine — days of virtual time under fault injection with live
// telemetry, no materialized task set or schedule.
func ScheduleStream(src workload.Source, sys power.System, opts StreamOptions) (*sim.StreamSummary, error) {
	var rt Runtime
	return rt.RunStream(src, sys, opts)
}

// RunStream is ScheduleStream on a retained Runtime (see Schedule vs
// Runtime.Schedule).
func (rt *Runtime) RunStream(src workload.Source, sys power.System, opts StreamOptions) (*sim.StreamSummary, error) {
	st, err := sim.NewStream(sys, opts.Cores)
	if err != nil {
		return nil, err
	}
	who := "sdem-on"
	if opts.PlanAlphaZero {
		who = "sdem-on-z"
	}
	tel := opts.Telemetry
	st.SetTelemetry(tel, who)
	// A miss is explained when the job itself was perturbed (replayed
	// from its deterministic fault draw) or when the executor squeezed it
	// behind a full machine — a queueing consequence of overload bursts
	// or of perturbed jobs hogging cores, possibly chained through clean
	// jobs that absorbed the delay. A sporadic source over enough virtual
	// time will overload any finite machine occasionally, so squeezed
	// misses are expected physics, not bugs. A miss on an undisturbed,
	// never-squeezed job means the planner itself scheduled it wrong: an
	// engine bug, and the soak gate fails on it.
	fs := opts.Faults
	st.SetMissClassifier(func(j *sim.Job) bool {
		if j.Squeezed {
			return true
		}
		return fs != nil && !fs.Sample(j.Task).None()
	})
	if opts.Series != nil {
		st.SetRetireHook(func(_ *sim.Job, resp float64) {
			opts.Series.Observe("sdem.stream.response_s", resp)
		})
	}
	// Windowed energy-per-job observations accumulate between batch
	// seals: the sketch sees the mean energy of each batch's newly
	// completed jobs.
	var meteredE float64
	var meteredN int64

	rt.reset()
	if cap(rt.busyUntil) < opts.Cores {
		rt.busyUntil = make([]float64, opts.Cores)
	}
	busy := rt.busyUntil[:opts.Cores]
	for i := range busy {
		busy[i] = 0
	}

	stepOpts := Options{
		Cores:           opts.Cores,
		NoProcrastinate: opts.NoProcrastinate,
		PlanAlphaZero:   opts.PlanAlphaZero,
		Telemetry:       tel,
	}

	var (
		pending   arrivalHeap
		upstream  task.Task
		hasUp     bool
		drawn     int64
		started   bool
		first     float64
		maxDL     float64
		exhausted bool
		arrival   int64
	)
	perturb := func(t task.Task) taskArrival {
		if opts.Faults == nil {
			return taskArrival{t: t}
		}
		f := opts.Faults.Sample(t)
		if f.None() {
			return taskArrival{t: t}
		}
		t.Workload *= f.WorkFactor
		t.Release += f.ReleaseDelay
		if t.Release >= t.Deadline {
			// Keep the job admissible (Validate rejects an empty window
			// with work): a sliver-window arrival still exercises the
			// urgent path and counts as an explained miss.
			t.Release = t.Deadline - schedule.Tol
		}
		return taskArrival{t: t}
	}
	pull := func() {
		if exhausted {
			return
		}
		t, ok := src.Next()
		if !ok {
			exhausted = true
			hasUp = false
			return
		}
		upstream, hasUp = t, true
	}
	admissionOver := func(rel float64) bool {
		if opts.MaxJobs > 0 && drawn >= opts.MaxJobs {
			return true
		}
		return started && opts.MaxVirtual > 0 && rel-first > opts.MaxVirtual
	}

	pull()
	for {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("online: stream cancelled at arrival %d: %w", arrival, err)
			}
		}
		// Feed the reorder heap until its minimum is safe to emit: once
		// the upstream release passes the heap minimum, no future task —
		// delays are non-negative — can arrive earlier.
		for hasUp && (len(pending) == 0 || upstream.Release <= pending[0].t.Release) {
			if admissionOver(upstream.Release) {
				hasUp = false
				exhausted = true
				break
			}
			pending.push(perturb(upstream))
			drawn++
			pull()
		}
		if len(pending) == 0 && st.Active() == 0 {
			break // drained: no arrivals left and nothing running
		}

		// The next planning instant: the earliest pending arrival, or a
		// final drain pass over whatever is still active.
		now := math.Inf(1)
		if len(pending) > 0 {
			now = pending[0].t.Release
		} else {
			now = st.Now()
		}
		opts.Series.Advance(now)
		for len(pending) > 0 && pending[0].t.Release <= now+schedule.Tol {
			a := pending.pop()
			j, err := st.Admit(a.t)
			if err != nil {
				return nil, fmt.Errorf("online: admitting task %d: %w", a.t.ID, err)
			}
			arrival++
			if !started {
				started = true
				first = a.t.Release
			}
			if a.t.Deadline > maxDL {
				maxDL = a.t.Deadline
			}
			if !j.Done {
				rt.insertActive(j)
			}
		}
		next := math.Inf(1)
		if len(pending) > 0 {
			next = pending[0].t.Release
		} else if hasUp {
			next = upstream.Release
		}
		rt.sweepDone()
		if len(rt.active) > 0 {
			if err := rt.step(st, busy, now, next, stepOpts); err != nil {
				return nil, err
			}
			rt.sweepDone()
		}
		st.Seal(next)
		if tel != nil {
			tel.Gauge("sdem.solver.online.stream_virtual_s", st.Now()-first)
		}
		if opts.Series != nil {
			if e, n := st.EnergySoFar(), st.Completed(); n > meteredN {
				opts.Series.Observe("sdem.stream.energy_per_job_j", (e-meteredE)/float64(n-meteredN))
				meteredE, meteredN = e, n
			}
		}
		if math.IsInf(next, 1) && len(rt.active) > 0 {
			// Final drain executed everything plannable; anything still
			// active is unschedulable (zero window at +Inf horizon) and
			// retires as a miss in Finish.
			break
		}
		if math.IsInf(next, 1) && len(pending) == 0 && !hasUp && st.Active() == 0 {
			break
		}
	}
	end := math.Max(maxDL, st.Now())
	return st.Finish(end), nil
}
