package online

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/baseline"
	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func testSystem() power.System {
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0
	sys.Memory.BreakEven = 0
	return sys
}

// sporadic draws the §8.1.2 synthetic workload: cycles in [2,5]e6,
// windows in [10,120] ms, inter-arrival uniform in [0, x].
func sporadic(r *rand.Rand, n int, x float64) task.Set {
	s := make(task.Set, n)
	var rel float64
	for i := range s {
		rel += r.Float64() * x
		s[i] = task.Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + power.Milliseconds(10+r.Float64()*110),
			Workload: 2e6 + r.Float64()*3e6,
		}
	}
	return s
}

func TestSingleTaskMatchesOfflineOptimum(t *testing.T) {
	// With one task the online heuristic must reproduce the offline
	// common-release optimum exactly (same busy length, procrastinated to
	// the end of the window instead of the start — equal energy).
	sys := testSystem()
	tasks := task.Set{{ID: 1, Release: 0, Deadline: power.Milliseconds(80), Workload: 4e6}}
	res, err := Schedule(tasks, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Fatalf("misses: %v", res.Misses)
	}
	off, err := commonrelease.Solve(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Energy, off.Energy, 1e-6) {
		t.Errorf("online %.9g != offline optimum %.9g", res.Energy, off.Energy)
	}
	// Procrastination: the execution must end exactly at the deadline.
	segs := res.Schedule.Cores[0]
	if len(segs) == 0 || !almostEq(segs[len(segs)-1].End, power.Milliseconds(80), 1e-9) {
		t.Errorf("single task should be right-aligned to its deadline, segs=%v", segs)
	}
}

func TestCommonReleaseBatchMatchesOffline(t *testing.T) {
	// All tasks arriving together: one plan, offline-optimal energy.
	sys := testSystem()
	r := rand.New(rand.NewSource(3))
	tasks := make(task.Set, 5)
	for i := range tasks {
		tasks[i] = task.Task{
			ID:       i,
			Release:  0.02,
			Deadline: 0.02 + power.Milliseconds(20+r.Float64()*100),
			Workload: 2e6 + r.Float64()*3e6,
		}
	}
	res, err := Schedule(tasks, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := commonrelease.Solve(tasks, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Fatalf("misses: %v", res.Misses)
	}
	if !almostEq(res.Energy, off.Energy, 1e-6) {
		t.Errorf("online %.9g != offline %.9g", res.Energy, off.Energy)
	}
}

func TestSporadicFeasibleAndValid(t *testing.T) {
	sys := testSystem()
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := sporadic(r, 30, power.Milliseconds(100))
		res, err := Schedule(tasks, sys, Options{Cores: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Misses) != 0 {
			t.Errorf("seed %d: deadline misses %v", seed, res.Misses)
		}
		if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
			t.Errorf("seed %d: invalid schedule: %v", seed, err)
		}
	}
}

func TestBeatsBaselinesOnSyntheticWorkload(t *testing.T) {
	// The headline claim: SDEM-ON saves energy against MBKP and MBKPS on
	// the paper's synthetic workload at the default operating point.
	sys := testSystem()
	var on, mbkp, mbkps float64
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := sporadic(r, 40, power.Milliseconds(400))
		a, err := Schedule(tasks, sys, Options{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := baseline.MBKP(tasks, sys, 8)
		if err != nil {
			t.Fatal(err)
		}
		c, err := baseline.MBKPS(tasks, sys, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Misses)+len(b.Misses)+len(c.Misses) != 0 {
			t.Fatalf("seed %d: misses %v/%v/%v", seed, a.Misses, b.Misses, c.Misses)
		}
		on += a.Energy
		mbkp += b.Energy
		mbkps += c.Energy
	}
	if on >= mbkps {
		t.Errorf("SDEM-ON (%g) should beat MBKPS (%g)", on, mbkps)
	}
	if mbkps >= mbkp {
		t.Errorf("MBKPS (%g) should beat MBKP (%g)", mbkps, mbkp)
	}
}

func TestProcrastinationHelps(t *testing.T) {
	// Ablation A2: with the memory model, postponing to the latest
	// execution point consolidates busy time and should not lose to
	// immediate execution on aggregate.
	sys := testSystem()
	var with, without float64
	for seed := int64(20); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := sporadic(r, 30, power.Milliseconds(300))
		a, err := Schedule(tasks, sys, Options{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(tasks, sys, Options{Cores: 8, NoProcrastinate: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Misses) != 0 || len(b.Misses) != 0 {
			t.Fatalf("seed %d: unexpected misses", seed)
		}
		with += a.Energy
		without += b.Energy
	}
	if with > without*1.02 {
		t.Errorf("procrastination (%g) should not lose to immediate start (%g)", with, without)
	}
}

func TestOverheadVariantRuns(t *testing.T) {
	sys := power.DefaultSystem() // ξ_m = 40 ms, break-even accounting
	r := rand.New(rand.NewSource(7))
	tasks := sporadic(r, 20, power.Milliseconds(400))
	res, err := Schedule(tasks, sys, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
	if res.Breakdown.MemoryTransition <= 0 {
		t.Error("sparse workload under ξ_m > 0 should include memory transitions")
	}
}

func TestAlphaZeroModel(t *testing.T) {
	sys := testSystem()
	sys.Core.Static = 0
	r := rand.New(rand.NewSource(11))
	tasks := sporadic(r, 15, power.Milliseconds(200))
	res, err := Schedule(tasks, sys, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if res.Breakdown.CoreStatic != 0 {
		t.Errorf("α=0 run charged core static %g", res.Breakdown.CoreStatic)
	}
}

func TestCoreShortageQueues(t *testing.T) {
	// Two simultaneous tasks, one core: EDF runs first, the second queues
	// and both still meet generous deadlines.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(40), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: power.Milliseconds(120), Workload: 3e6},
	}
	res, err := Schedule(tasks, sys, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if err := res.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestEmptyAndZeroWork(t *testing.T) {
	sys := testSystem()
	res, err := Schedule(task.Set{}, sys, Options{})
	if err != nil || res.Energy != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	res, err = Schedule(task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 0}}, sys, Options{})
	if err != nil || res.Energy != 0 || len(res.Misses) != 0 {
		t.Errorf("zero work: %+v %v", res, err)
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
