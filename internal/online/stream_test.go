package online

import (
	"math"
	"testing"

	"sdem/internal/faults"
	"sdem/internal/power"
	"sdem/internal/telemetry"
	"sdem/internal/workload"
)

// TestScheduleStreamMatchesBatch drives the streaming engine over the
// same instance sequence as the batch engine — SporadicStream with the
// same seed draws the exact same tasks as Synthetic, minus names — and
// requires the same completions and misses, with metered energy within
// float summation-order slack of the audited energy.
func TestScheduleStreamMatchesBatch(t *testing.T) {
	sys := power.DefaultSystem()
	for seed := int64(1); seed <= 4; seed++ {
		cfg := workload.SyntheticConfig{N: 60, MaxInterArrival: power.Milliseconds(80)}
		tasks, err := workload.Synthetic(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tasks {
			tasks[i].Name = "" // SporadicStream leaves names empty
		}
		src, err := workload.SporadicStream(cfg, seed, int64(len(tasks)))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Schedule(tasks, sys, Options{Cores: 4})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := ScheduleStream(src, sys, StreamOptions{Cores: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int(sum.Completed)+int(sum.UnexplainedMisses()), len(tasks); sum.Admitted != int64(len(tasks)) {
			t.Fatalf("seed %d: admitted %d of %d (completed %d, got %d)", seed, sum.Admitted, len(tasks), sum.Completed, got-want)
		}
		if int(sum.Misses) != len(batch.Misses) {
			t.Errorf("seed %d: stream missed %d, batch missed %d", seed, sum.Misses, len(batch.Misses))
		}
		if rel := math.Abs(sum.Energy-batch.Energy) / batch.Energy; rel > 1e-9 {
			t.Errorf("seed %d: stream energy %g vs batch %g (rel %g)", seed, sum.Energy, batch.Energy, rel)
		}
		if sum.Metrics.Completed != batch.Metrics.Completed {
			t.Errorf("seed %d: stream completed %d, batch %d", seed, sum.Metrics.Completed, batch.Metrics.Completed)
		}
		if rel := math.Abs(sum.Metrics.MeanResponse-batch.Metrics.MeanResponse) / math.Max(batch.Metrics.MeanResponse, 1e-12); rel > 1e-9 {
			t.Errorf("seed %d: mean response %g vs %g", seed, sum.Metrics.MeanResponse, batch.Metrics.MeanResponse)
		}
	}
}

// TestScheduleStreamBounds checks the admission bounds and that memory
// stays O(active): a long virtual run must keep the peak active set far
// below the total admitted count.
func TestScheduleStreamBounds(t *testing.T) {
	sys := power.DefaultSystem()
	src, err := workload.SporadicStream(workload.SyntheticConfig{MaxInterArrival: power.Milliseconds(50)}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ScheduleStream(src, sys, StreamOptions{Cores: 4, MaxJobs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 5000 {
		t.Errorf("admitted %d, want 5000", sum.Admitted)
	}
	if sum.MaxActive > 200 {
		t.Errorf("peak active set %d — streaming bookkeeping is not O(active)", sum.MaxActive)
	}
	if sum.UnexplainedMisses() != 0 {
		t.Errorf("%d unexplained misses on a fault-free feasible stream", sum.UnexplainedMisses())
	}

	src, err = workload.SporadicStream(workload.SyntheticConfig{}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = ScheduleStream(src, sys, StreamOptions{Cores: 4, MaxVirtual: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Mean inter-arrival is 200 ms, so one virtual minute admits ~300.
	if sum.Admitted < 150 || sum.Admitted > 600 {
		t.Errorf("admitted %d jobs in 60 virtual seconds, want ≈300", sum.Admitted)
	}
}

// TestScheduleStreamFaulted soaks the engine under fault injection: all
// misses must be explained by the injected perturbations, and the run
// must stay deterministic in the seed.
func TestScheduleStreamFaulted(t *testing.T) {
	sys := power.DefaultSystem()
	run := func() *struct {
		energy                      float64
		misses, explained, admitted int64
	} {
		src, err := workload.SporadicStream(workload.SyntheticConfig{MaxInterArrival: power.Milliseconds(60)}, 11, 0)
		if err != nil {
			t.Fatal(err)
		}
		fs := faults.NewStreamer(faults.Config{Intensity: 0.8}, 23)
		tel := telemetry.New()
		sum, err := ScheduleStream(src, sys, StreamOptions{Cores: 4, MaxJobs: 3000, Faults: fs, Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		return &struct {
			energy                      float64
			misses, explained, admitted int64
		}{sum.Energy, sum.Misses, sum.ExplainedMisses, sum.Admitted}
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("fault-injected stream not deterministic: %+v vs %+v", a, b)
	}
	if a.misses != a.explained {
		t.Errorf("%d of %d misses unexplained under fault injection", a.misses-a.explained, a.misses)
	}
}
