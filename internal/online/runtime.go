package online

import (
	"fmt"
	"math"

	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// Runtime is the incremental SDEM-ON engine. Instead of rescanning the
// pool and re-solving from scratch on every arrival (ScheduleRescan), it
// maintains:
//
//   - an EDF-ordered active set updated by a release cursor over the
//     release-sorted job list (O(log active) insert, O(active) sweep)
//     instead of the O(jobs) rescan + sort per arrival;
//   - a retained commonrelease.Solver whose normalization/scan/audit
//     scratch persists across re-plans, with an ends-only solve that
//     skips building and auditing the per-plan solution schedule;
//   - a plan-delta memo: normalization subtracts the release before any
//     arithmetic, so a re-plan whose (deadline − now, remaining) bit
//     pattern exactly matches the previous solve reuses its relative
//     ends verbatim (periodic workloads hit this every hyperperiod);
//   - a sleep certificate: when a cheap per-job bound already proves
//     every planned start lands at or past the next arrival, the solve
//     is skipped entirely — procrastination would sleep through it.
//
// Every path is bit-compatible with ScheduleRescan: the equivalence
// property tests assert byte-identical sim.Result on fault-free and
// fault-injected deterministic workloads.
//
// A Runtime is not safe for concurrent use, but is reusable: retaining
// one across Schedule calls (as sdemd does via a sync.Pool) re-plans
// allocation-free once its buffers reach the high-water instance size.
type Runtime struct {
	solver commonrelease.Solver

	byRel     []*sim.Job // release-cursor view, (release, deadline, ID) order
	active    []*sim.Job // EDF order: (deadline, ID)
	virtual   task.Set   // common-release instance of the current re-plan
	vjobs     []*sim.Job // vjobs[i] is the job behind virtual[i]
	urgent    []*sim.Job
	plans     []plan
	busyUntil []float64

	// Plan-delta memo: the (window, workload) bit pattern of the last
	// solved instance and its relative ends.
	memoKey  []uint64
	memoEnds []float64
	keyBuf   []uint64
	memoOK   bool
}

// Schedule runs SDEM-ON over the task set with the incremental engine
// and returns the audited result, byte-identical to ScheduleRescan.
func (rt *Runtime) Schedule(tasks task.Set, sys power.System, opts Options) (*sim.Result, error) {
	pool, err := sim.NewPool(tasks, sys, opts.Cores)
	if err != nil {
		return nil, err
	}
	who := "sdem-on"
	if opts.PlanAlphaZero {
		who = "sdem-on-z"
	}
	pool.SetTelemetry(opts.Telemetry, who)
	return rt.run(pool, opts)
}

// run drives the arrival loop over a freshly created pool.
func (rt *Runtime) run(pool *sim.Pool, opts Options) (*sim.Result, error) {
	rt.reset()
	arrivals := pool.ArrivalTimes()
	rt.byRel = pool.JobsByRelease(rt.byRel[:0])
	if cap(rt.busyUntil) < pool.Cores() {
		//lint:allow hotalloc: the per-core backing grows to the high-water core count once per Runtime
		rt.busyUntil = make([]float64, pool.Cores())
	}
	busy := rt.busyUntil[:pool.Cores()]
	for i := range busy {
		busy[i] = 0
	}
	cursor := 0
	for k, now := range arrivals {
		// Cooperative cancellation checkpoint, once per arrival: the
		// per-arrival re-plan below is the expensive unit of work.
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("online: cancelled at arrival %d of %d: %w", k, len(arrivals), err)
			}
		}
		next := math.Inf(1)
		if k+1 < len(arrivals) {
			next = arrivals[k+1]
		}
		// Admit newly released jobs into the EDF active set; Released's
		// predicate is release ≤ now + Tol, which is prefix-closed over
		// the release-sorted view, so a cursor replaces the rescan.
		for cursor < len(rt.byRel) && rt.byRel[cursor].Task.Release <= now+schedule.Tol {
			j := rt.byRel[cursor]
			cursor++
			if !j.Done {
				rt.insertActive(j)
			}
		}
		rt.sweepDone()
		if len(rt.active) == 0 {
			continue
		}
		if err := rt.step(pool, busy, now, next, opts); err != nil {
			return nil, err
		}
	}
	return pool.Finish()
}

// reset clears all per-run state while keeping the backing buffers.
func (rt *Runtime) reset() {
	rt.active = rt.active[:0]
	rt.virtual = rt.virtual[:0]
	rt.vjobs = rt.vjobs[:0]
	rt.urgent = rt.urgent[:0]
	rt.plans = rt.plans[:0]
	rt.memoOK = false
}

// insertActive inserts j into the (deadline, ID)-ordered active set.
// The key is a total order (IDs are unique), so the resulting sequence
// is exactly what Released's stable EDF sort produces.
func (rt *Runtime) insertActive(j *sim.Job) {
	lo, hi := 0, len(rt.active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		a := rt.active[mid]
		//lint:allow floatcmp: order tie-breaking must be exact to keep the comparator transitive
		if a.Task.Deadline < j.Task.Deadline ||
			//lint:allow floatcmp: see above
			(a.Task.Deadline == j.Task.Deadline && a.Task.ID < j.Task.ID) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	//lint:allow hotalloc: appends into the reused active backing; it grows only to the run's high-water active count
	rt.active = append(rt.active, nil)
	copy(rt.active[lo+1:], rt.active[lo:])
	rt.active[lo] = j
}

// sweepDone drops completed jobs from the active set in place.
func (rt *Runtime) sweepDone() {
	w := 0
	for _, j := range rt.active {
		if !j.Done {
			rt.active[w] = j
			w++
		}
	}
	for i := w; i < len(rt.active); i++ {
		rt.active[i] = nil
	}
	rt.active = rt.active[:w]
}

// step re-plans the active set at now and executes until next. It is the
// incremental counterpart of the legacy step + PlanAt pair and mirrors
// their float evaluation order exactly.
//
//sdem:hotpath
func (rt *Runtime) step(pool runner, busy []float64, now, next float64, opts Options) error {
	tel := opts.Telemetry
	tel.Count("sdem.solver.online.plans", 1)
	tel.Observe("sdem.solver.online.active_jobs", float64(len(rt.active)))
	sys := pool.System()
	planSys := sys
	if opts.PlanAlphaZero {
		planSys.Core.Static = 0
		planSys.Core.BreakEven = 0
	}
	rt.virtual = rt.virtual[:0]
	rt.vjobs = rt.vjobs[:0]
	rt.urgent = rt.urgent[:0]
	for _, j := range rt.active {
		window := j.Task.Deadline - now
		if window <= 0 || (sys.Core.SpeedMax > 0 && j.Remaining/window > sys.Core.SpeedMax) {
			// Already beyond salvation at a stretched speed: race
			// immediately; the pool records the miss if it is one.
			//lint:allow hotalloc: appends into the reused urgent backing; it grows only to the run's high-water urgent count
			rt.urgent = append(rt.urgent, j)
			continue
		}
		//lint:allow hotalloc: appends into the reused virtual/vjobs backings
		rt.virtual = append(rt.virtual, task.Task{
			ID:       j.Task.ID,
			Release:  now,
			Deadline: j.Task.Deadline,
			Workload: j.Remaining,
		})
		rt.vjobs = append(rt.vjobs, j)
	}

	if len(rt.urgent) == 0 && !opts.NoProcrastinate && rt.certifySleep(now, next, sys, planSys) {
		// The certificate proves the legacy path would compute
		// wake ≥ next and execute nothing: sleep through to the next
		// arrival without solving.
		tel.Count("sdem.solver.online.skipped_solves", 1)
		if tel != nil {
			tel.Instant("sleep-certificate", "online", now, 0,
				telemetry.Int("active", int64(len(rt.active))),
				telemetry.Num("until", next))
		}
		return nil
	}

	plans := rt.plans[:0]
	wake := math.Inf(1)
	if len(rt.virtual) > 0 {
		ends, err := rt.planEnds(now, planSys, tel)
		if err != nil {
			return err
		}
		for i, vt := range rt.virtual {
			// Replay the legacy build + Normalize + ends-map extraction
			// bit-for-bit: the task's segment is [now, now+endRel], kept
			// only when its float duration exceeds Tol/10, and a task
			// with no kept segment reads 0 from the ends map.
			var endAbs float64
			if endRel := ends[i]; endRel > 0 {
				if abs := now + endRel; abs-now > schedule.Tol/10 {
					endAbs = abs
				}
			}
			p := endAbs - now
			if p <= 0 { // defensive: plan must give every task time
				p = vt.Workload / raceSpeed(vt.Workload, vt.Release, vt.Deadline, now, sys)
			}
			//lint:allow hotalloc: appends into the reused plans backing
			plans = append(plans, plan{job: rt.vjobs[i], p: p, speed: vt.Workload / p})
			wake = math.Min(wake, vt.Deadline-p)
		}
	}
	for _, j := range rt.urgent {
		s := raceSpeed(j.Remaining, j.Task.Release, j.Task.Deadline, now, sys)
		//lint:allow hotalloc: appends into the reused plans backing
		plans = append(plans, plan{job: j, p: j.Remaining / s, speed: s})
		wake = now
	}
	rt.plans = plans
	tel.Count("sdem.solver.online.urgent_jobs", int64(len(rt.urgent)))
	if wake < now {
		wake = now
	}
	if tel != nil && !math.IsInf(wake, 1) {
		tel.Observe("sdem.solver.online.procrastination_s", wake-now)
		tel.Instant("plan", "online", now, 0,
			telemetry.Int("active", int64(len(rt.active))),
			telemetry.Int("urgent", int64(len(rt.urgent))),
			telemetry.Num("wake", wake))
	}
	if opts.NoProcrastinate {
		wake = now
	}
	if wake >= next {
		return nil // keep sleeping; the next arrival re-plans
	}
	return execute(pool, busy, plans, wake, next)
}

// certifySleep reports whether, without solving, every planned start is
// provably at or past next, so the legacy planner would execute nothing
// before the next arrival. Soundness: any plan's execution time p is
// either (now + endRel) − now for some endRel ≤ max natural completion
// (the busy length never exceeds it, and float addition/subtraction of a
// constant is monotone), or — when the segment rounds away — exactly the
// defensive race value, which is recomputed here per job. Both wake
// bounds must clear next. The caller has already excluded urgent jobs
// and NoProcrastinate.
func (rt *Runtime) certifySleep(now, next float64, sys, planSys power.System) bool {
	if math.IsInf(next, 1) || len(rt.virtual) == 0 {
		return false
	}
	var horizon float64
	for _, vt := range rt.virtual {
		horizon = math.Max(horizon, vt.Deadline-vt.Release)
	}
	var cmax float64
	for _, vt := range rt.virtual {
		cmax = math.Max(cmax, commonrelease.NaturalCompletion(vt, planSys, horizon))
	}
	bound := (now + cmax) - now // ≥ any solved plan's p
	for _, vt := range rt.virtual {
		if vt.Deadline-bound < next {
			return false
		}
		pDef := vt.Workload / raceSpeed(vt.Workload, vt.Release, vt.Deadline, now, sys)
		if vt.Deadline-pDef < next {
			return false
		}
	}
	return true
}

// planEnds returns the relative completion ends of the current virtual
// instance, reusing the previous solve when the instance's (window,
// workload) bit pattern is unchanged. Normalization subtracts the
// release before any arithmetic, so an exact key match guarantees
// bit-identical ends at any absolute time — the memo compares the full
// key, never a hash, to rule out collisions.
func (rt *Runtime) planEnds(now float64, planSys power.System, tel *telemetry.Recorder) ([]float64, error) {
	key := rt.keyBuf[:0]
	for _, vt := range rt.virtual {
		//lint:allow hotalloc: appends into the reused key backing
		key = append(key, math.Float64bits(vt.Deadline-vt.Release), math.Float64bits(vt.Workload))
	}
	rt.keyBuf = key
	if rt.memoOK && len(key) == len(rt.memoKey) {
		same := true
		for i := range key {
			if key[i] != rt.memoKey[i] {
				same = false
				break
			}
		}
		if same {
			tel.Count("sdem.solver.online.plan_reuse", 1)
			return rt.memoEnds, nil
		}
	}
	ends, err := rt.solver.PlanEndsRel(rt.virtual, planSys, tel)
	if err != nil {
		rt.memoOK = false
		return nil, fmt.Errorf("online: planning at t=%g: %w", now, err)
	}
	//lint:allow hotalloc: appends into the reused memo backings
	rt.memoKey = append(rt.memoKey[:0], key...)
	//lint:allow hotalloc: appends into the reused memo backings
	rt.memoEnds = append(rt.memoEnds[:0], ends...)
	rt.memoOK = true
	return rt.memoEnds, nil
}
