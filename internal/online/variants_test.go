package online

import (
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func TestPlanAlphaZeroNeverBeatsDefault(t *testing.T) {
	// §4.2 planning is the optimal per-arrival policy on a leaky-core
	// platform, so the α=0-planned variant can match but not beat it on
	// aggregate.
	sys := testSystem()
	var def, z float64
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := sporadic(r, 25, power.Milliseconds(300))
		a, err := Schedule(tasks, sys, Options{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(tasks, sys, Options{Cores: 8, PlanAlphaZero: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Misses) != 0 || len(b.Misses) != 0 {
			t.Fatalf("seed %d: misses", seed)
		}
		def += a.Energy
		z += b.Energy
	}
	if def > z*1.001 {
		t.Errorf("α≠0-planned SDEM-ON (%g) should not lose to the α=0-planned variant (%g)", def, z)
	}
}

func TestPlanAlphaZeroValidAndDistinct(t *testing.T) {
	sys := testSystem()
	r := rand.New(rand.NewSource(3))
	tasks := sporadic(r, 20, power.Milliseconds(400))
	a, err := Schedule(tasks, sys, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(tasks, sys, Options{Cores: 8, PlanAlphaZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule.Validate(tasks, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Fatalf("α=0-planned schedule invalid: %v", err)
	}
	// The two variants must actually differ on a leaky platform with
	// roomy windows (the default races to s₀, the variant stretches).
	if a.Energy == b.Energy {
		t.Error("variants should produce different schedules on this workload")
	}
	if b.Breakdown.CoreDynamic >= a.Breakdown.CoreDynamic {
		t.Errorf("α=0 planning should spend less dynamic energy (%g vs %g)",
			b.Breakdown.CoreDynamic, a.Breakdown.CoreDynamic)
	}
}

func TestOnlineDeterminism(t *testing.T) {
	sys := testSystem()
	r := rand.New(rand.NewSource(5))
	tasks := sporadic(r, 30, power.Milliseconds(200))
	a, err := Schedule(tasks, sys, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(tasks, sys, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Errorf("non-deterministic: %g vs %g", a.Energy, b.Energy)
	}
}

func TestInfeasibleTaskRecordedNotFatal(t *testing.T) {
	// A task that cannot finish even at s_up from its release must be
	// raced and reported as a miss, not crash the scheduler.
	sys := testSystem()
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: power.Milliseconds(1), Workload: 1e8}, // needs 100 GHz
		{ID: 2, Release: 0, Deadline: power.Milliseconds(100), Workload: 3e6},
	}
	res, err := Schedule(tasks, sys, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 1 || res.Misses[0] != 1 {
		t.Errorf("misses = %v, want [1]", res.Misses)
	}
	// The feasible task still completes on time.
	if j := findSeg(res.Schedule, 2); j == nil {
		t.Error("feasible task not scheduled")
	}
}

func findSeg(s *schedule.Schedule, taskID int) *schedule.Segment {
	for _, segs := range s.Cores {
		for i := range segs {
			if segs[i].TaskID == taskID {
				return &segs[i]
			}
		}
	}
	return nil
}

func TestSimultaneousArrivalsShareOnePlan(t *testing.T) {
	// Five tasks arriving at the same instant form one common-release
	// plan; the resulting busy interval must be shared (aligned ends).
	sys := testSystem()
	tasks := make(task.Set, 5)
	for i := range tasks {
		tasks[i] = task.Task{
			ID:       i + 1,
			Release:  power.Milliseconds(10),
			Deadline: power.Milliseconds(10) + power.Milliseconds(60+10*float64(i)),
			Workload: 3e6,
		}
	}
	res, err := Schedule(tasks, sys, Options{Cores: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Fatalf("misses: %v", res.Misses)
	}
	if res.Breakdown.MemorySleeps == 0 {
		t.Error("a single batch with roomy windows should let the memory sleep")
	}
}
