package trace

import (
	"strings"
	"testing"

	"sdem/internal/schedule"
)

func TestSVGStructure(t *testing.T) {
	s := sample()
	out := SVG(s, SVGOptions{Title: "demo <run> & \"quotes\""})
	for _, want := range []string{
		"<svg", "</svg>", "core0", "core1", "MEM",
		"task 1", "task 2", "memory busy",
		"demo &lt;run&gt; &amp; &quot;quotes&quot;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two task rects + one memory rect + background.
	if n := strings.Count(out, "<rect"); n < 4 {
		t.Errorf("expected at least 4 rects, got %d", n)
	}
}

func TestSVGSpeedColouring(t *testing.T) {
	s := schedule.New(1, 0, 1)
	s.Add(0, schedule.Segment{TaskID: 1, Start: 0, End: 0.3, Speed: 1e8})   // slow
	s.Add(0, schedule.Segment{TaskID: 2, Start: 0.5, End: 0.8, Speed: 2e9}) // fast
	s.Normalize()
	out := SVG(s, SVGOptions{})
	if !strings.Contains(out, svgPalette[0]) {
		t.Error("slow segment should use the coolest colour")
	}
	if !strings.Contains(out, svgPalette[len(svgPalette)-1]) {
		t.Error("fast segment should use the hottest colour")
	}
}

func TestSVGDegenerate(t *testing.T) {
	s := schedule.New(0, 0, 0)
	out := SVG(s, SVGOptions{})
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("degenerate schedule must still produce a document")
	}
}
