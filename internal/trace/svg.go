package trace

import (
	"fmt"
	"math"
	"strings"

	"sdem/internal/schedule"
)

// SVGOptions tunes the vector rendering.
type SVGOptions struct {
	// Width is the drawing width in pixels (default 960).
	Width int
	// RowHeight is the height of each core lane (default 28).
	RowHeight int
	// SpeedShading colours segments by speed relative to speedMax; when
	// speedMax is zero the maximum segment speed is used.
	SpeedMax float64
	// Title is drawn above the chart.
	Title string
}

// segment fill palette from cool (slow) to hot (fast); index by relative
// speed.
var svgPalette = []string{
	"#3b6fb6", "#4a8bc2", "#5aa7c9", "#76b9a8", "#a2c178",
	"#ccb94f", "#e3993c", "#e66a33", "#d93a2b",
}

// SVG renders the schedule as a self-contained SVG document: one lane
// per core with speed-coloured execution segments, a memory lane showing
// busy intervals, and a time axis. Pure stdlib string assembly.
func SVG(s *schedule.Schedule, opts SVGOptions) string {
	width := opts.Width
	if width <= 0 {
		width = 960
	}
	rowH := opts.RowHeight
	if rowH <= 0 {
		rowH = 28
	}
	const leftPad, topPad, axisH = 64, 28, 24
	span := s.End - s.Start
	lanes := len(s.Cores) + 1 // + memory lane
	height := topPad + lanes*rowH + axisH

	speedMax := opts.SpeedMax
	if speedMax <= 0 {
		for _, segs := range s.Cores {
			for _, sg := range segs {
				speedMax = math.Max(speedMax, sg.Speed)
			}
		}
	}
	x := func(t float64) float64 {
		if span <= 0 {
			return leftPad
		}
		return leftPad + (t-s.Start)/span*float64(width-leftPad-8)
	}
	colour := func(speed float64) string {
		if speedMax <= 0 {
			return svgPalette[0]
		}
		idx := int(speed / speedMax * float64(len(svgPalette)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(svgPalette) {
			idx = len(svgPalette) - 1
		}
		return svgPalette[idx]
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13">%s</text>`+"\n", leftPad, escape(opts.Title))
	}

	// Core lanes.
	for c, segs := range s.Cores {
		y := topPad + c*rowH
		fmt.Fprintf(&b, `<text x="4" y="%d">core%d</text>`+"\n", y+rowH/2+4, c)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd"/>`+"\n",
			leftPad, y+rowH-4, width-8, y+rowH-4)
		for _, sg := range segs {
			w := math.Max(x(sg.End)-x(sg.Start), 1)
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>task %d: [%.4g, %.4g]s @ %.0f MHz</title></rect>`+"\n",
				x(sg.Start), y+4, w, rowH-10, colour(sg.Speed), sg.TaskID, sg.Start, sg.End, sg.Speed/1e6)
		}
	}

	// Memory lane.
	my := topPad + len(s.Cores)*rowH
	fmt.Fprintf(&b, `<text x="4" y="%d">MEM</text>`+"\n", my+rowH/2+4)
	for _, iv := range s.MemoryBusy() {
		w := math.Max(x(iv.End)-x(iv.Start), 1)
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="#555555"><title>memory busy [%.4g, %.4g]s</title></rect>`+"\n",
			x(iv.Start), my+4, w, rowH-10, iv.Start, iv.End)
	}

	// Time axis with ~8 ticks.
	ay := topPad + lanes*rowH + 12
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#000000"/>`+"\n", leftPad, ay-8, width-8, ay-8)
	for i := 0; i <= 8; i++ {
		t := s.Start + span*float64(i)/8
		fmt.Fprintf(&b, `<text x="%.2f" y="%d" text-anchor="middle">%.3g</text>`+"\n", x(t), ay+6, t)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// escape sanitizes text for inclusion in SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
