package trace

import (
	"strings"
	"testing"

	"sdem/internal/schedule"
)

func sample() *schedule.Schedule {
	s := schedule.New(2, 0, 1)
	s.Add(0, schedule.Segment{TaskID: 1, Start: 0, End: 0.25, Speed: 8e8})
	s.Add(1, schedule.Segment{TaskID: 2, Start: 0.5, End: 0.75, Speed: 9e8})
	s.Normalize()
	return s
}

func TestRenderBasics(t *testing.T) {
	out := Render(sample(), Options{Width: 40})
	if !strings.Contains(out, "core0") || !strings.Contains(out, "core1") {
		t.Error("missing core rows")
	}
	if !strings.Contains(out, "MEM") {
		t.Error("missing memory row")
	}
	if !strings.Contains(out, "common idle 0.5s") {
		t.Errorf("missing common idle summary:\n%s", out)
	}
	// Core 0 executes the first quarter: its row should start busy and
	// end idle.
	lines := strings.Split(out, "\n")
	var core0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "core0") {
			core0 = l
		}
	}
	runes := []rune(strings.TrimSpace(strings.TrimPrefix(core0, "core0")))
	if runes[0] != '█' {
		t.Errorf("core0 should start busy, row %q", core0)
	}
	if runes[len(runes)-1] != '·' {
		t.Errorf("core0 should end idle, row %q", core0)
	}
}

func TestRenderSpeeds(t *testing.T) {
	out := Render(sample(), Options{Width: 40, ShowSpeeds: true})
	if !strings.Contains(out, "task 1") || !strings.Contains(out, "800 MHz") {
		t.Errorf("speed legend missing:\n%s", out)
	}
}

func TestRenderDegenerate(t *testing.T) {
	s := schedule.New(0, 0, 0)
	out := Render(s, Options{})
	if !strings.Contains(out, "horizon") {
		t.Error("degenerate render should still print the horizon")
	}
}
