// Package trace renders schedules as text Gantt charts for the CLI tools
// and examples: one row per core showing execution density, plus a memory
// row showing busy/sleep state.
package trace

import (
	"fmt"
	"math"
	"strings"

	"sdem/internal/schedule"
)

// visTol is the execution mass (speed·seconds per cell) below which a
// trace cell renders as idle; it matches schedule.Tol (1e-9) by value.
const visTol = 1e-9

// Options tunes the rendering.
type Options struct {
	// Width is the number of character columns of the time axis
	// (default 96).
	Width int
	// ShowSpeeds appends a per-core legend with segment speeds.
	ShowSpeeds bool
}

// glyphs maps execution density (fraction of a column that is busy) to a
// shade.
var glyphs = []rune{'·', '░', '▒', '▓', '█'}

// Render draws the schedule. Each core row shows per-column execution
// density; the MEM row shows '█' where at least one core executes and '·'
// where the memory may sleep.
func Render(s *schedule.Schedule, opts Options) string {
	width := opts.Width
	if width <= 0 {
		width = 96
	}
	span := s.End - s.Start
	var b strings.Builder
	fmt.Fprintf(&b, "horizon [%.4gs, %.4gs] (%.4gs)\n", s.Start, s.End, span)
	if span <= 0 {
		return b.String()
	}
	col := span / float64(width)

	density := func(ivs []schedule.Interval) []float64 {
		d := make([]float64, width)
		for _, iv := range ivs {
			lo := int((iv.Start - s.Start) / col)
			hi := int(math.Ceil((iv.End - s.Start) / col))
			for c := max(lo, 0); c < min(hi, width); c++ {
				cs := s.Start + float64(c)*col
				ce := cs + col
				overlap := math.Min(iv.End, ce) - math.Max(iv.Start, cs)
				if overlap > 0 {
					d[c] += overlap / col
				}
			}
		}
		return d
	}
	row := func(d []float64) string {
		var r strings.Builder
		for _, v := range d {
			idx := int(v * float64(len(glyphs)-1))
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			if idx < 0 {
				idx = 0
			}
			// Any execution at all must stay visible, however faint.
			if idx == 0 && v > visTol {
				idx = 1
			}
			r.WriteRune(glyphs[idx])
		}
		return r.String()
	}

	for c, segs := range s.Cores {
		ivs := make([]schedule.Interval, 0, len(segs))
		for _, sg := range segs {
			ivs = append(ivs, schedule.Interval{Start: sg.Start, End: sg.End})
		}
		fmt.Fprintf(&b, "core%-3d %s\n", c, row(density(ivs)))
		if opts.ShowSpeeds {
			for _, sg := range segs {
				fmt.Fprintf(&b, "        task %d: [%.4gs, %.4gs] @ %.3g MHz\n",
					sg.TaskID, sg.Start, sg.End, sg.Speed/1e6)
			}
		}
	}
	fmt.Fprintf(&b, "MEM     %s\n", row(density(s.MemoryBusy())))
	fmt.Fprintf(&b, "        common idle %.4gs of %.4gs (%.1f%%)\n",
		s.CommonIdle(), span, 100*s.CommonIdle()/span)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
