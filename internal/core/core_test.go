package core

import (
	"errors"
	"math"
	"testing"

	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func sys(static bool, overhead bool) power.System {
	s := power.DefaultSystem()
	if !static {
		s.Core.Static = 0
	}
	if !overhead {
		s.Core.BreakEven = 0
		s.Memory.BreakEven = 0
	}
	return s
}

func TestSchemeDispatchTable1(t *testing.T) {
	ms := power.Milliseconds
	common := task.Set{
		{ID: 1, Release: 0, Deadline: ms(60), Workload: 3e6},
		{ID: 2, Release: 0, Deadline: ms(90), Workload: 4e6},
	}
	agreeable := task.Set{
		{ID: 1, Release: 0, Deadline: ms(50), Workload: 3e6},
		{ID: 2, Release: ms(20), Deadline: ms(110), Workload: 4e6},
	}
	cases := []struct {
		name   string
		tasks  task.Set
		sys    power.System
		scheme string
		model  task.Model
	}{
		{"common α=0", common, sys(false, false), "§4.1", task.ModelCommonRelease},
		{"common α≠0", common, sys(true, false), "§4.2", task.ModelCommonRelease},
		{"common overhead", common, sys(true, true), "§4.2+§7", task.ModelCommonRelease},
		{"agreeable α=0", agreeable, sys(false, false), "§5.1", task.ModelAgreeable},
		{"agreeable α≠0", agreeable, sys(true, false), "§5.2", task.ModelAgreeable},
		{"agreeable overhead", agreeable, sys(true, true), "§5.2+§7", task.ModelAgreeable},
	}
	for _, tc := range cases {
		sol, err := Solve(tc.tasks, tc.sys)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sol.Scheme != tc.scheme {
			t.Errorf("%s: scheme = %q, want %q", tc.name, sol.Scheme, tc.scheme)
		}
		if sol.Model != tc.model {
			t.Errorf("%s: model = %v, want %v", tc.name, sol.Model, tc.model)
		}
		if err := sol.Schedule.Validate(tc.tasks, schedule.ValidateOptions{SpeedMax: tc.sys.Core.SpeedMax}); err != nil {
			t.Errorf("%s: invalid schedule: %v", tc.name, err)
		}
		// The declared energy must equal an independent audit.
		if b := schedule.Audit(sol.Schedule, tc.sys); math.Abs(b.Total()-sol.Energy) > 1e-9*math.Max(1, sol.Energy) {
			t.Errorf("%s: audit %g != declared %g", tc.name, b.Total(), sol.Energy)
		}
	}
}

func TestGeneralModelRejectedWithTypedError(t *testing.T) {
	general := task.Set{
		{ID: 1, Release: 0, Deadline: 1, Workload: 1e6},
		{ID: 2, Release: 0.1, Deadline: 0.5, Workload: 1e6},
	}
	_, err := Solve(general, sys(true, false))
	var ge ErrGeneralOffline
	if !errors.As(err, &ge) {
		t.Fatalf("want ErrGeneralOffline, got %v", err)
	}
	if ge.Model != task.ModelGeneral {
		t.Errorf("error model = %v", ge.Model)
	}
	// The same set schedules fine online.
	res, err := ScheduleOnline(general, sys(true, false), online.Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("online misses: %v", res.Misses)
	}
}

func TestOnlineNeverBeatsOfflineOnSolvableModels(t *testing.T) {
	// The online heuristic re-plans optimally at each arrival but commits
	// greedily; on offline-solvable models it must not beat the offline
	// optimum (sanity of both).
	ms := power.Milliseconds
	s := sys(true, false)
	agreeableSets := []task.Set{
		{
			{ID: 1, Release: 0, Deadline: ms(70), Workload: 3e6},
			{ID: 2, Release: ms(10), Deadline: ms(100), Workload: 4e6},
			{ID: 3, Release: ms(40), Deadline: ms(140), Workload: 2e6},
		},
		{
			{ID: 1, Release: 0, Deadline: ms(120), Workload: 5e6},
			{ID: 2, Release: ms(200), Deadline: ms(320), Workload: 5e6},
		},
	}
	for i, tasks := range agreeableSets {
		off, err := Solve(tasks, s)
		if err != nil {
			t.Fatal(err)
		}
		on, err := ScheduleOnline(tasks, s, online.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if on.Energy < off.Energy*(1-1e-6) {
			t.Errorf("set %d: online %.9g beats offline optimum %.9g — one of them is wrong",
				i, on.Energy, off.Energy)
		}
	}
}
