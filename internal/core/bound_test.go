package core

import (
	"math/rand"
	"testing"

	"sdem/internal/baseline"
	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/task"
	"sdem/internal/workload"
)

func TestLowerBoundBelowOfflineOptimum(t *testing.T) {
	s := sys(true, false)
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		tasks := make(task.Set, n)
		for i := range tasks {
			tasks[i] = task.Task{
				ID:       i,
				Release:  0,
				Deadline: power.Milliseconds(10 + r.Float64()*110),
				Workload: 2e6 + r.Float64()*3e6,
			}
		}
		lb := LowerBound(tasks, s)
		if lb <= 0 {
			t.Fatalf("seed %d: bound must be positive, got %g", seed, lb)
		}
		sol, err := Solve(tasks, s)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Energy < lb*(1-1e-9) {
			t.Errorf("seed %d: optimum %.9g below certified bound %.9g", seed, sol.Energy, lb)
		}
	}
}

func TestLowerBoundBelowEverySchedulerOnGeneralSets(t *testing.T) {
	s := sys(true, false)
	for seed := int64(20); seed < 26; seed++ {
		tasks, err := workload.Synthetic(workload.SyntheticConfig{N: 25}, seed)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(tasks, s)
		on, err := online.Schedule(tasks, s, online.Options{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		mbkp, err := baseline.MBKP(tasks, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		race, err := baseline.RaceToIdle(tasks, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		for name, e := range map[string]float64{"SDEM-ON": on.Energy, "MBKP": mbkp.Energy, "race": race.Energy} {
			if e < lb*(1-1e-9) {
				t.Errorf("seed %d: %s energy %.9g below bound %.9g", seed, name, e, lb)
			}
		}
	}
}

func TestLowerBoundTightForSingleTask(t *testing.T) {
	// One task, huge window, no overhead: the optimum runs at the
	// memory-associated critical speed; the bound uses the core critical
	// speed plus the fastest-possible memory occupancy, so it is below
	// but in the same decade.
	s := sys(true, false)
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 5e6}}
	lb := LowerBound(tasks, s)
	sol, err := Solve(tasks, s)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || lb > sol.Energy {
		t.Fatalf("bound %g vs optimum %g", lb, sol.Energy)
	}
	if sol.Energy > lb*10 {
		t.Errorf("bound too loose: optimum %g vs bound %g", sol.Energy, lb)
	}
}

func TestWeightedDisjointWindows(t *testing.T) {
	type iv = window
	cases := []struct {
		name string
		ivs  []iv
		want float64
	}{
		{"empty", nil, 0},
		{"single", []iv{{0, 1, 0.5}}, 0.5},
		{"all overlapping", []iv{{0, 1, 0.3}, {0.2, 0.9, 0.5}, {0.1, 1.1, 0.2}}, 0.5},
		{"two disjoint", []iv{{0, 1, 0.3}, {2, 3, 0.4}}, 0.7},
		{"classic weighted choice", []iv{{0, 3, 0.5}, {0, 1, 0.2}, {1.5, 2.5, 0.2}}, 0.5},
		{"chain beats heavy", []iv{{0, 2, 0.3}, {0, 0.9, 0.25}, {1, 1.9, 0.25}}, 0.5},
		{"touching endpoints disjoint", []iv{{0, 1, 0.2}, {1, 2, 0.2}}, 0.4},
	}
	for _, tc := range cases {
		if got := weightedDisjointWindows(tc.ivs); got != tc.want {
			t.Errorf("%s: WIS = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestLowerBoundZeroWork(t *testing.T) {
	s := sys(true, false)
	if lb := LowerBound(task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 0}}, s); lb != 0 {
		t.Errorf("zero-work bound = %g, want 0", lb)
	}
	if lb := LowerBound(task.Set{}, s); lb != 0 {
		t.Errorf("empty bound = %g, want 0", lb)
	}
}

// TestSolverOrderingChain fuzzes the global energy ordering every theory
// result implies: LowerBound ≤ offline optimal ≤ SDEM-ON ≤ MBKPS ≤ MBKP
// on agreeable sets (offline-solvable and online-schedulable alike).
func TestSolverOrderingChain(t *testing.T) {
	s := sys(true, false)
	for seed := int64(100); seed < 112; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		tasks := make(task.Set, n)
		var rel, dPrev float64
		for i := range tasks {
			rel += r.Float64() * power.Milliseconds(60)
			d := rel + power.Milliseconds(20+r.Float64()*100)
			if d < dPrev {
				d = dPrev
			}
			dPrev = d
			tasks[i] = task.Task{ID: i, Release: rel, Deadline: d, Workload: 2e6 + r.Float64()*3e6}
		}
		lb := LowerBound(tasks, s)
		off, err := Solve(tasks, s)
		if err != nil {
			t.Fatal(err)
		}
		on, err := online.Schedule(tasks, s, online.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mbkps, err := baseline.MBKPS(tasks, s, n)
		if err != nil {
			t.Fatal(err)
		}
		mbkp, err := baseline.MBKP(tasks, s, n)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-6
		chain := []struct {
			name string
			e    float64
		}{
			{"lower bound", lb},
			{"offline optimal", off.Energy},
			{"SDEM-ON", on.Energy},
			{"MBKPS", mbkps.Energy},
			{"MBKP", mbkp.Energy},
		}
		for i := 1; i < len(chain); i++ {
			if chain[i].e < chain[i-1].e*(1-eps) {
				t.Errorf("seed %d: %s (%.9g) below %s (%.9g)",
					seed, chain[i].name, chain[i].e, chain[i-1].name, chain[i-1].e)
			}
		}
	}
}
