package core

import (
	"context"
	"errors"
	"testing"

	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/task"
)

func ctxTasksAgreeable() task.Set {
	return task.Set{
		{ID: 0, Release: 0, Deadline: 0.05, Workload: 2e6},
		{ID: 1, Release: 0.01, Deadline: 0.08, Workload: 3e6},
		{ID: 2, Release: 0.03, Deadline: 0.12, Workload: 1e6},
	}
}

func TestSolveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := power.DefaultSystem()

	if _, err := SolveCtx(ctx, ctxTasksAgreeable(), sys, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("agreeable SolveCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	common := task.Set{
		{ID: 0, Deadline: 0.05, Workload: 2e6},
		{ID: 1, Deadline: 0.08, Workload: 3e6},
	}
	if _, err := SolveCtx(ctx, common, sys, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("common-release SolveCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSolveCtxNilAndLiveMatchSolveTel(t *testing.T) {
	sys := power.DefaultSystem()
	ts := ctxTasksAgreeable()
	want, err := SolveTel(ts, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{"nil": nil, "live": context.Background()} {
		got, err := SolveCtx(ctx, ts, sys, nil)
		if err != nil {
			t.Fatalf("%s ctx: %v", name, err)
		}
		if got.Energy != want.Energy || got.Scheme != want.Scheme {
			t.Fatalf("%s ctx solve diverged: got (%g, %s), want (%g, %s)",
				name, got.Energy, got.Scheme, want.Energy, want.Scheme)
		}
	}
}

func TestScheduleOnlineCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := task.Set{
		{ID: 0, Release: 0, Deadline: 0.05, Workload: 2e6},
		{ID: 1, Release: 0.02, Deadline: 0.07, Workload: 2e6},
	}
	_, err := online.Schedule(ts, power.DefaultSystem(), online.Options{Cores: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("online.Schedule with cancelled ctx: err = %v, want context.Canceled", err)
	}
}
