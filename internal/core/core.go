// Package core is the paper's primary contribution assembled into one
// solver: Sleep- and DVS-aware system-wide Energy Minimization (SDEM).
//
// Given a task set and a platform model it dispatches to the optimal
// scheme of Table 1 — §4 for common-release sets, §5 for
// agreeable-deadline sets, each in its α = 0 / α ≠ 0 / §7
// transition-overhead variant — and to the §6 SDEM-ON heuristic for
// general sets when online scheduling is requested. Every path returns
// the same Schedule IR, independently audited.
package core

import (
	"context"
	"fmt"

	"sdem/internal/agreeable"
	"sdem/internal/commonrelease"
	"sdem/internal/online"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// Solution is an offline optimal SDEM schedule.
type Solution struct {
	// Schedule is the constructed schedule.
	Schedule *schedule.Schedule
	// Energy is the audited system-wide energy in joules.
	Energy float64
	// Model is the task model the solver dispatched on.
	Model task.Model
	// Scheme names the paper section whose algorithm produced the
	// solution (e.g. "§4.2", "§5.1+§7").
	Scheme string
}

// ErrGeneralOffline is returned when an offline optimum is requested for
// a general task set, for which the paper gives no optimal algorithm.
type ErrGeneralOffline struct{ Model task.Model }

// Error implements error.
func (e ErrGeneralOffline) Error() string {
	return fmt.Sprintf("core: no offline optimal scheme for %v task sets; use ScheduleOnline", e.Model)
}

// schemeName maps the dispatch to the paper's section numbering.
func schemeName(model task.Model, sys power.System) string {
	var base string
	switch model {
	case task.ModelEmpty, task.ModelCommonDeadline, task.ModelCommonRelease:
		if sys.Core.Static > 0 {
			base = "§4.2"
		} else {
			base = "§4.1"
		}
	default:
		if sys.Core.Static > 0 {
			base = "§5.2"
		} else {
			base = "§5.1"
		}
	}
	if sys.Core.BreakEven > 0 || sys.Memory.BreakEven > 0 {
		base += "+§7"
	}
	return base
}

// Solve computes the offline optimal SDEM schedule on the unbounded-core
// platform, dispatching per Table 1.
func Solve(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveTel(tasks, sys, nil)
}

// SolveTel is Solve with telemetry attached; a nil recorder is the
// uninstrumented path.
func SolveTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	return SolveCtx(nil, tasks, sys, tel)
}

// SolveCtx is SolveTel with a cooperative-cancellation context threaded
// into the sub-solvers: the agreeable DP polls it at row boundaries, the
// §4 schemes are O(n) and covered by the entry check. A nil ctx never
// cancels. A cancelled solve returns an error wrapping ctx's error
// (context.DeadlineExceeded / context.Canceled).
func SolveCtx(ctx context.Context, tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) { //lint:allow auditcheck: wraps sub-solver solutions whose schedules are normalized by the callee
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	model := tasks.Classify()
	switch model {
	case task.ModelEmpty, task.ModelCommonDeadline, task.ModelCommonRelease:
		sol, err := commonrelease.SolveTel(tasks, sys, tel)
		if err != nil {
			return nil, err
		}
		return &Solution{
			Schedule: sol.Schedule,
			Energy:   sol.Energy,
			Model:    model,
			Scheme:   schemeName(model, sys),
		}, nil
	case task.ModelAgreeable:
		sol, err := agreeable.SolveCtx(ctx, tasks, sys, tel)
		if err != nil {
			return nil, err
		}
		return &Solution{
			Schedule: sol.Schedule,
			Energy:   sol.Energy,
			Model:    model,
			Scheme:   schemeName(model, sys),
		}, nil
	default:
		return nil, ErrGeneralOffline{Model: model}
	}
}

// ScheduleOnline runs the §6 SDEM-ON heuristic (any task model).
func ScheduleOnline(tasks task.Set, sys power.System, opts online.Options) (*sim.Result, error) {
	return online.Schedule(tasks, sys, opts)
}
