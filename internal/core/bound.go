package core

import (
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/task"
)

// LowerBound returns a certified lower bound on the system-wide energy of
// ANY feasible schedule of the task set (unbounded cores, any sleeping
// behaviour). It combines two independently valid bounds:
//
//   - Core bound: task i must spend at least w_i cycles on some core at a
//     speed within [s_fi, s_up]; per-cycle core energy (α + β·s^λ)/s is
//     minimized at the task's critical speed, so
//     E_core ≥ Σ_i w_i·(β·s*^{λ−1} + α/s*) with s* = clamp(s_m, s_fi, s_up).
//
//   - Memory bound: the memory is active whenever any task executes, and
//     task i occupies at least w_i/s_up seconds inside its feasible
//     window. Tasks whose windows are pairwise disjoint can never
//     overlap, so the memory busy time is at least the maximum total
//     minimal execution time over any set of window-disjoint tasks — a
//     weighted interval scheduling problem solved exactly by DP, giving
//     E_mem ≥ α_m·WIS.
//
// Transition energies are non-negative, so they are bounded by zero.
//
//sdem:hotpath
func LowerBound(tasks task.Set, sys power.System) float64 {
	var coreLB float64
	ivs := make([]window, 0, len(tasks))
	for _, t := range tasks {
		if numeric.IsZero(t.Workload, 0) {
			continue
		}
		s := sys.Core.CriticalSpeed(t.FilledSpeed())
		if s <= 0 || math.IsInf(s, 0) {
			continue // degenerate task; contributes nothing to the bound
		}
		coreLB += sys.Core.Dynamic(s) * t.Workload / s
		if sys.Core.Static > 0 {
			coreLB += sys.Core.Static * t.Workload / s
		}
		// Without a speed cap a task's busy time can be arbitrarily
		// small, so only capped platforms contribute to the memory bound.
		if sys.Core.SpeedMax > 0 {
			ivs = append(ivs, window{t.Release, t.Deadline, t.Workload / sys.Core.SpeedMax})
		}
	}
	memLB := sys.Memory.Static * weightedDisjointWindows(ivs)
	return coreLB + memLB
}

// window is a feasible region with its minimal execution time.
type window struct {
	release, deadline, minExec float64
}

// windowsByDeadline sorts windows ascending by deadline. The pointer
// receiver keeps sort.Sort from boxing a fresh slice header per call,
// which matters because LowerBound runs once per sweep point.
type windowsByDeadline []window

func (w *windowsByDeadline) Len() int           { return len(*w) }
func (w *windowsByDeadline) Less(a, b int) bool { return (*w)[a].deadline < (*w)[b].deadline }
func (w *windowsByDeadline) Swap(a, b int)      { (*w)[a], (*w)[b] = (*w)[b], (*w)[a] }

// countEndingBy returns the number of leading windows (sorted by
// deadline) whose deadline is ≤ r: a closure-free binary search standing
// in for sort.Search in the DP below.
func countEndingBy(ivs []window, r float64) int {
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].deadline > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// weightedDisjointWindows solves weighted interval scheduling over the
// feasible windows: the maximum total weight of pairwise-disjoint
// windows. O(n log n).
func weightedDisjointWindows(ivs []window) float64 {
	n := len(ivs)
	if n == 0 {
		return 0
	}
	sort.Sort((*windowsByDeadline)(&ivs))
	opt := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		v := ivs[i-1]
		// p = number of windows ending at or before v.release.
		p := countEndingBy(ivs, v.release)
		take := opt[p] + v.minExec
		opt[i] = math.Max(opt[i-1], take)
	}
	return opt[n]
}
