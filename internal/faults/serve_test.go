package faults

import (
	"reflect"
	"testing"
)

func TestServePlanDeterministic(t *testing.T) {
	cfg := ServeConfig{Rate: 0.3, Kinds: []ServeKind{ServeLatency, ServeError, ServePanic}}
	a := NewServePlan(cfg, 42).Materialize(2000)
	b := NewServePlan(cfg, 42).Materialize(2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different storms")
	}
	if len(a) == 0 {
		t.Fatalf("rate 0.3 over 2000 requests injected nothing")
	}
	c := NewServePlan(cfg, 43).Materialize(2000)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical storms")
	}
}

func TestServePlanRateBounds(t *testing.T) {
	if got := NewServePlan(ServeConfig{Rate: 0}, 1).Materialize(500); len(got) != 0 {
		t.Fatalf("rate 0 injected %d faults", len(got))
	}
	all := NewServePlan(ServeConfig{Rate: 1}, 1).Materialize(500)
	if len(all) != 500 {
		t.Fatalf("rate 1 injected %d of 500", len(all))
	}
	mid := NewServePlan(ServeConfig{Rate: 0.5}, 7).Materialize(2000)
	if len(mid) < 800 || len(mid) > 1200 {
		t.Fatalf("rate 0.5 injected %d of 2000 — badly biased derivation", len(mid))
	}
}

func TestServePlanDefaultsLatencyOnly(t *testing.T) {
	for _, f := range NewServePlan(ServeConfig{Rate: 1}, 3).Materialize(200) {
		if f.Kind != ServeLatency {
			t.Fatalf("default kinds injected %v", f.Kind)
		}
		if f.Delay <= 0 || f.Delay > 0.050 {
			t.Fatalf("latency delay %g outside (0, 50ms]", f.Delay)
		}
	}
}

func TestServePlanAtMatchesMaterialize(t *testing.T) {
	p := NewServePlan(ServeConfig{Rate: 0.4, Kinds: []ServeKind{ServeLatency, ServePanic}, MaxDelay: 0.01}, 11)
	byID := map[int64]ServeFault{}
	for _, f := range p.Materialize(300) {
		byID[f.Request] = f
	}
	for id := int64(1); id <= 300; id++ {
		f, ok := p.At(id)
		mf, want := byID[id]
		if ok != want || (ok && f != mf) {
			t.Fatalf("At(%d) = (%+v, %v) disagrees with Materialize", id, f, ok)
		}
	}
}

func TestParseServeKinds(t *testing.T) {
	kinds, err := ParseServeKinds("latency, error,panic")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kinds, []ServeKind{ServeLatency, ServeError, ServePanic}) {
		t.Fatalf("parsed %v", kinds)
	}
	if _, err := ParseServeKinds("oops"); err == nil {
		t.Fatalf("unknown kind parsed")
	}
	if kinds, err := ParseServeKinds(""); err != nil || kinds != nil {
		t.Fatalf("empty spec: (%v, %v)", kinds, err)
	}
}
