package faults

import (
	"testing"

	"sdem/internal/task"
)

func streamTask(id int) task.Task {
	return task.Task{ID: id, Release: float64(id) * 0.01, Deadline: float64(id)*0.01 + 0.05, Workload: 3e6}
}

// TestStreamerReplayable pins the property the miss classifier leans on:
// re-sampling the same task returns the same fault, bit for bit, in any
// order, from any Streamer with the same (cfg, seed).
func TestStreamerReplayable(t *testing.T) {
	cfg := Config{Intensity: 0.7}
	a := NewStreamer(cfg, 42)
	b := NewStreamer(cfg, 42)
	first := make(map[int]JobFault)
	for id := 0; id < 500; id++ {
		first[id] = a.Sample(streamTask(id))
	}
	// Replay backwards on a fresh Streamer and interleaved on the original.
	for id := 499; id >= 0; id-- {
		if got := b.Sample(streamTask(id)); got != first[id] {
			t.Fatalf("task %d: fresh streamer drew %+v, want %+v", id, got, first[id])
		}
		if got := a.Sample(streamTask(id)); got != first[id] {
			t.Fatalf("task %d: re-sample drew %+v, want %+v", id, got, first[id])
		}
	}
}

// TestStreamerSeedAndIntensity checks that the knobs act: zero intensity
// never perturbs, different seeds draw different storms, and higher
// intensity perturbs more jobs.
func TestStreamerSeedAndIntensity(t *testing.T) {
	quiet := NewStreamer(Config{Intensity: 0}, 1)
	for id := 0; id < 200; id++ {
		if f := quiet.Sample(streamTask(id)); !f.None() {
			t.Fatalf("zero intensity perturbed task %d: %+v", id, f)
		}
	}

	count := func(s *Streamer, n int) int {
		hit := 0
		for id := 0; id < n; id++ {
			if !s.Sample(streamTask(id)).None() {
				hit++
			}
		}
		return hit
	}
	low := count(NewStreamer(Config{Intensity: 0.2}, 1), 2000)
	high := count(NewStreamer(Config{Intensity: 0.9}, 1), 2000)
	if low == 0 || high == 0 {
		t.Fatalf("streamer never fires: low %d, high %d", low, high)
	}
	if high <= low {
		t.Errorf("intensity 0.9 perturbed %d jobs, 0.2 perturbed %d — knob inert", high, low)
	}

	s1 := NewStreamer(Config{Intensity: 0.8}, 1)
	s2 := NewStreamer(Config{Intensity: 0.8}, 2)
	same := 0
	for id := 0; id < 500; id++ {
		if s1.Sample(streamTask(id)) == s2.Sample(streamTask(id)) {
			same++
		}
	}
	if same == 500 {
		t.Error("seeds 1 and 2 drew identical storms")
	}
}

// TestStreamerBounds checks the fault magnitudes honor the config
// ceilings and stay admissible: factors in (1, 1+(OverrunMax−1)·I],
// delays non-negative and within the window.
func TestStreamerBounds(t *testing.T) {
	cfg := Config{Intensity: 0.6, OverrunMax: 2.5}
	s := NewStreamer(cfg, 9)
	maxFactor := 1 + (cfg.OverrunMax-1)*cfg.Intensity
	for id := 0; id < 2000; id++ {
		tk := streamTask(id)
		f := s.Sample(tk)
		if f.WorkFactor < 1 || f.WorkFactor > maxFactor {
			t.Fatalf("task %d: work factor %g outside [1, %g]", id, f.WorkFactor, maxFactor)
		}
		if f.ReleaseDelay < 0 || f.ReleaseDelay > tk.Window() {
			t.Fatalf("task %d: release delay %g outside [0, %g]", id, f.ReleaseDelay, tk.Window())
		}
	}
}

// TestStreamerKindsFilter checks Kinds gating: a streamer restricted to
// overruns must never delay a release, and vice versa.
func TestStreamerKindsFilter(t *testing.T) {
	over := NewStreamer(Config{Intensity: 1, Kinds: []Kind{Overrun}}, 5)
	late := NewStreamer(Config{Intensity: 1, Kinds: []Kind{LateRelease}}, 5)
	overFired, lateFired := false, false
	for id := 0; id < 1000; id++ {
		tk := streamTask(id)
		if f := over.Sample(tk); f.ReleaseDelay != 0 {
			t.Fatalf("overrun-only streamer delayed task %d", id)
		} else if f.WorkFactor > 1 {
			overFired = true
		}
		if f := late.Sample(tk); f.WorkFactor != 1 {
			t.Fatalf("late-only streamer scaled task %d workload", id)
		} else if f.ReleaseDelay > 0 {
			lateFired = true
		}
	}
	if !overFired || !lateFired {
		t.Errorf("kind-filtered streamers never fired (overrun %v, late %v)", overFired, lateFired)
	}
}
