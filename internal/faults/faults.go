// Package faults defines a deterministic, composable fault model for SDEM
// schedules: the ways a real platform deviates from the plan every solver
// in this module assumes executes exactly.
//
// The paper's schedules are maximally fragile by construction —
// procrastination stretches memory sleep right up to each task's latest
// execution point d_j − p_j, leaving zero slack for the model being wrong.
// This package expresses the deviations as typed Fault values with an
// explicit injection schedule, so a run is fully described by (inputs,
// fault plan) and replayable bit-for-bit. Plans are either written by hand
// or drawn by Generate from a seed and an intensity knob.
//
// The faults:
//
//   - Overrun: a task's real workload exceeds (or undercuts) its declared
//     WCET by Factor.
//   - WakeLatency: one memory sleep→active transition takes Delay seconds
//     longer than the ξ_m break-even model assumed, pushing every segment
//     planned at that wake point.
//   - SpeedCap: thermal throttling clamps one core to Factor·s_up during
//     [At, Until]; the core silently delivers fewer cycles than commanded.
//   - SpuriousWake: the memory wakes for Delay seconds at time At during a
//     planned sleep, wasting α_m·Delay plus one transition — pure energy
//     loss, no timing effect.
//   - LateRelease: a task arrives Delay seconds after its declared release
//     (its deadline does not move).
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sdem/internal/power"
	"sdem/internal/task"
)

// minSpan floors the task-set time span that scales Generate's
// time-indexed draws, so degenerate single-instant sets still yield a
// valid plan; it matches schedule.Tol (1e-9) by value.
const minSpan = 1e-9

// Kind classifies a fault.
type Kind int

const (
	// Overrun scales a task's real workload by Factor (WCET misestimation).
	Overrun Kind = iota
	// WakeLatency delays the first memory wake at or after At by Delay.
	WakeLatency
	// SpeedCap clamps Core to Factor·s_up during [At, Until].
	SpeedCap
	// SpuriousWake wakes the memory for Delay seconds at At.
	SpuriousWake
	// LateRelease postpones TaskID's release by Delay.
	LateRelease
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Overrun:
		return "overrun"
	case WakeLatency:
		return "wake-latency"
	case SpeedCap:
		return "speed-cap"
	case SpuriousWake:
		return "spurious-wake"
	case LateRelease:
		return "late-release"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one injected deviation from the plan. Fields not used by the
// kind are zero (TaskID and Core use −1 for "not applicable").
type Fault struct {
	Kind Kind `json:"kind"`
	// TaskID targets a task (Overrun, LateRelease); −1 otherwise.
	TaskID int `json:"task_id"`
	// Core targets a core (SpeedCap); −1 otherwise.
	Core int `json:"core"`
	// Factor is the workload multiplier (Overrun, > 0) or the fraction of
	// s_up the throttled core can still reach (SpeedCap, in (0, 1]).
	Factor float64 `json:"factor,omitempty"`
	// Delay is the extra latency in seconds (WakeLatency, LateRelease) or
	// the spurious active duration (SpuriousWake).
	Delay float64 `json:"delay,omitempty"`
	// At anchors time-located faults: the earliest wake it applies to
	// (WakeLatency), the wake instant (SpuriousWake), or the interval
	// start (SpeedCap).
	At float64 `json:"at,omitempty"`
	// Until ends a SpeedCap interval.
	Until float64 `json:"until,omitempty"`
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f.Kind {
	case Overrun:
		return fmt.Sprintf("overrun: task %d workload ×%.3g", f.TaskID, f.Factor)
	case WakeLatency:
		return fmt.Sprintf("wake-latency: +%.3gs at first wake ≥ %.3gs", f.Delay, f.At)
	case SpeedCap:
		return fmt.Sprintf("speed-cap: core %d at %.3g·s_up in [%.3g, %.3g]s", f.Core, f.Factor, f.At, f.Until)
	case SpuriousWake:
		return fmt.Sprintf("spurious-wake: %.3gs at %.3gs", f.Delay, f.At)
	case LateRelease:
		return fmt.Sprintf("late-release: task %d +%.3gs", f.TaskID, f.Delay)
	default:
		return fmt.Sprintf("%v", f.Kind)
	}
}

// Validate reports whether the fault is well-formed.
func (f Fault) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("faults: %v: "+format, append([]any{f.Kind}, args...)...)
	}
	for _, v := range []float64{f.Factor, f.Delay, f.At, f.Until} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return bad("non-finite field")
		}
	}
	switch f.Kind {
	case Overrun:
		if f.Factor <= 0 {
			return bad("factor %g must be positive", f.Factor)
		}
	case WakeLatency, SpuriousWake:
		if f.Delay < 0 {
			return bad("delay %g must be non-negative", f.Delay)
		}
	case SpeedCap:
		if f.Factor <= 0 || f.Factor > 1 {
			return bad("factor %g must be in (0, 1]", f.Factor)
		}
		if f.Until < f.At {
			return bad("interval [%g, %g] inverted", f.At, f.Until)
		}
		if f.Core < 0 {
			return bad("core must be set")
		}
	case LateRelease:
		if f.Delay < 0 {
			return bad("delay %g must be non-negative", f.Delay)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Plan is a replayable set of faults: everything a perturbed run needs
// beyond its ordinary inputs. The zero value is the empty (fault-free)
// plan.
type Plan struct {
	// Seed records the generator seed (0 for hand-written plans); it is
	// carried for provenance only — the Faults list alone determines the
	// perturbation.
	Seed int64 `json:"seed"`
	// Faults is the injection schedule.
	Faults []Fault `json:"faults"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// Validate checks every fault.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// ByKind returns the faults of one kind, in plan order.
func (p Plan) ByKind(k Kind) []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Config tunes Generate. Intensity is the single headline knob in [0, 1]:
// it scales both how many faults are drawn and how severe each one is.
// The per-kind ceilings below apply at intensity 1; zero values take the
// defaults. Kinds restricts generation to a subset (nil = all kinds).
type Config struct {
	// Intensity in [0, 1] scales fault probability and magnitude.
	Intensity float64
	// Kinds restricts the generated fault kinds (nil = all).
	Kinds []Kind
	// OverrunMax is the workload factor ceiling at intensity 1
	// (default 1.5; each overrun draws a factor in (1, 1+(OverrunMax−1)·I]).
	OverrunMax float64
	// OverrunProb is the per-task overrun probability at intensity 1
	// (default 0.5).
	OverrunProb float64
	// WakeDelayMax is the extra wake latency ceiling at intensity 1 as a
	// multiple of ξ_m (default 2).
	WakeDelayMax float64
	// CapFloor is the deepest throttle at intensity 1: caps draw factors
	// in [1−(1−CapFloor)·I, 1] (default 0.5, i.e. down to half s_up).
	CapFloor float64
	// LateReleaseMax is the release delay ceiling at intensity 1 as a
	// fraction of the task's window (default 0.3).
	LateReleaseMax float64
}

func (c Config) withDefaults() Config {
	if c.OverrunMax <= 0 {
		c.OverrunMax = 1.5
	}
	if c.OverrunProb <= 0 {
		c.OverrunProb = 0.5
	}
	if c.WakeDelayMax <= 0 {
		c.WakeDelayMax = 2
	}
	if c.CapFloor <= 0 {
		c.CapFloor = 0.5
	}
	if c.LateReleaseMax <= 0 {
		c.LateReleaseMax = 0.3
	}
	return c
}

func (c Config) wants(k Kind) bool {
	if len(c.Kinds) == 0 {
		return true
	}
	for _, want := range c.Kinds {
		if want == k {
			return true
		}
	}
	return false
}

// Generate draws a fault plan for the task set on the platform,
// deterministic in the seed. Intensity 0 yields the empty plan; higher
// intensities draw more and harsher faults, bounded by the Config
// ceilings. The same (cfg, tasks, sys, seed) triple always yields the
// same plan — the replayability guarantee the resilient runtime builds on.
func Generate(cfg Config, tasks task.Set, sys power.System, seed int64) Plan {
	cfg = cfg.withDefaults()
	in := cfg.Intensity
	if in <= 0 || len(tasks) == 0 {
		return Plan{Seed: seed}
	}
	if in > 1 {
		in = 1
	}
	r := rand.New(rand.NewSource(seed)) //lint:allow randsource: seeded generator; callers pass a stats.DeriveSeed-derived seed
	plan := Plan{Seed: seed}
	start, end := tasks.Span()
	span := math.Max(end-start, minSpan)
	cores := sys.Cores
	if cores <= 0 {
		cores = len(tasks)
	}

	// Per-task faults, in deterministic (sorted-by-ID) order.
	ids := make([]int, 0, len(tasks))
	byID := make(map[int]task.Task, len(tasks))
	for _, t := range tasks {
		ids = append(ids, t.ID)
		byID[t.ID] = t
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := byID[id]
		if cfg.wants(Overrun) && r.Float64() < cfg.OverrunProb*in {
			plan.Faults = append(plan.Faults, Fault{
				Kind:   Overrun,
				TaskID: id,
				Core:   -1,
				Factor: 1 + (cfg.OverrunMax-1)*in*r.Float64(),
			})
		}
		if cfg.wants(LateRelease) && r.Float64() < 0.2*in {
			plan.Faults = append(plan.Faults, Fault{
				Kind:   LateRelease,
				TaskID: id,
				Core:   -1,
				Delay:  cfg.LateReleaseMax * in * r.Float64() * t.Window(),
			})
		}
	}

	// Platform faults over the span.
	if cfg.wants(WakeLatency) {
		for n := int(math.Round(3 * in)); n > 0; n-- {
			plan.Faults = append(plan.Faults, Fault{
				Kind:   WakeLatency,
				TaskID: -1,
				Core:   -1,
				At:     start + r.Float64()*span,
				Delay:  cfg.WakeDelayMax * in * r.Float64() * sys.Memory.BreakEven,
			})
		}
	}
	if cfg.wants(SpeedCap) && sys.Core.SpeedMax > 0 {
		for n := int(math.Round(float64(cores) / 2 * in)); n > 0; n-- {
			at := start + r.Float64()*span
			plan.Faults = append(plan.Faults, Fault{
				Kind:   SpeedCap,
				TaskID: -1,
				Core:   r.Intn(cores),
				Factor: 1 - (1-cfg.CapFloor)*in*r.Float64(),
				At:     at,
				Until:  at + r.Float64()*span/4,
			})
		}
	}
	if cfg.wants(SpuriousWake) {
		for n := int(math.Round(2 * in)); n > 0; n-- {
			plan.Faults = append(plan.Faults, Fault{
				Kind:   SpuriousWake,
				TaskID: -1,
				Core:   -1,
				At:     start + r.Float64()*span,
				Delay:  r.Float64() * in * math.Max(sys.Memory.BreakEven, span/100),
			})
		}
	}
	return plan
}
