package faults

import (
	"sdem/internal/task"
)

// JobFault is the per-job perturbation a Streamer draws: a workload
// overrun factor (1 = none) and a release delay (0 = none).
type JobFault struct {
	// WorkFactor scales the job's real workload (≥ 1).
	WorkFactor float64
	// ReleaseDelay postpones the job's arrival (≥ 0); the deadline is
	// unchanged, shrinking the feasible window.
	ReleaseDelay float64
}

// None reports whether the job is unperturbed.
//
//lint:allow floatcmp: Sample writes these exact literals when no fault fires; the zero draw round-trips bit-exactly
func (f JobFault) None() bool { return f.WorkFactor == 1 && f.ReleaseDelay == 0 }

// Streamer samples per-job faults for unbounded task streams. Generate
// draws a finite plan over a known task set; a soak run over days of
// virtual time has no such set, so the Streamer instead derives each
// job's perturbation from a hash of (seed, task ID) — O(1) memory,
// deterministic, and replayable per job: re-sampling the same task
// always returns the same fault, which is how the soak harness
// classifies a miss as explained (the job was perturbed) or unexplained
// (an engine bug) without remembering past draws.
//
// Only the task-level kinds apply to a stream: Overrun and LateRelease,
// with the same Config probabilities and ceilings as Generate.
type Streamer struct {
	cfg  Config
	seed uint64
}

// NewStreamer prepares a sampler, deterministic in (cfg, seed).
func NewStreamer(cfg Config, seed int64) *Streamer {
	return &Streamer{cfg: cfg.withDefaults(), seed: uint64(seed)}
}

// Sample draws the perturbation of one job. The draw depends only on the
// Streamer's seed, the task's ID and its window, so it can be replayed
// at classification time.
func (s *Streamer) Sample(t task.Task) JobFault {
	out := JobFault{WorkFactor: 1}
	in := s.cfg.Intensity
	if in <= 0 {
		return out
	}
	if in > 1 {
		in = 1
	}
	h := splitmix64(s.seed ^ (uint64(t.ID)+1)*0x9e3779b97f4a7c15)
	if s.cfg.wants(Overrun) {
		p, mag := unitPair(&h)
		if p < s.cfg.OverrunProb*in {
			out.WorkFactor = 1 + (s.cfg.OverrunMax-1)*in*mag
		}
	}
	if s.cfg.wants(LateRelease) {
		p, mag := unitPair(&h)
		if p < 0.2*in {
			// Cap the delay so the perturbed release stays inside the
			// window — the stream stays admissible, just tighter.
			out.ReleaseDelay = s.cfg.LateReleaseMax * in * mag * t.Window()
		}
	}
	return out
}

// unitPair advances the hash state and returns two independent uniform
// draws in [0, 1).
func unitPair(h *uint64) (a, b float64) {
	x := splitmix64(*h)
	y := splitmix64(x)
	*h = y
	return unitFloat(x), unitFloat(y)
}

// unitFloat maps a hash value to [0, 1) with 53 bits of precision.
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// splitmix64 is the SplitMix64 finalizer — a strong 64-bit mixer whose
// output is equidistributed over the input space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
