// Serve-layer chaos: deterministic fault taps for the HTTP solve fleet.
//
// The schedule-level faults in this package perturb what a platform does
// with a schedule; ServePlan perturbs what a fleet does with a request —
// injected handler latency, injected errors, injected panics — so
// cmd/sdemd's overload machinery (admission control, panic recovery,
// shedding) can be exercised and regression-tested under a replayable
// storm. A plan is a pure function of (seed, config, request ordinal):
// nothing is materialized up front, so it covers an unbounded request
// stream, yet any prefix replays bit-for-bit under the same seed.
package faults

import (
	"fmt"
	"strings"

	"sdem/internal/stats"
)

// ServeKind classifies a serve-layer fault.
type ServeKind int

const (
	// ServeLatency holds the request for Delay seconds before the handler
	// runs (a stalled downstream dependency).
	ServeLatency ServeKind = iota
	// ServeError fails the request with an injected 500 without running
	// the handler (a crashed downstream dependency).
	ServeError
	// ServePanic panics inside the handler chain, exercising the panic
	// recovery middleware.
	ServePanic
)

// String implements fmt.Stringer.
func (k ServeKind) String() string {
	switch k {
	case ServeLatency:
		return "latency"
	case ServeError:
		return "error"
	case ServePanic:
		return "panic"
	default:
		return fmt.Sprintf("ServeKind(%d)", int(k))
	}
}

// ParseServeKinds parses a comma-separated kind list ("latency,panic")
// into kinds for ServeConfig; the empty string selects the default set.
func ParseServeKinds(s string) ([]ServeKind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []ServeKind
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "latency":
			kinds = append(kinds, ServeLatency)
		case "error":
			kinds = append(kinds, ServeError)
		case "panic":
			kinds = append(kinds, ServePanic)
		default:
			return nil, fmt.Errorf("faults: unknown serve fault kind %q (want latency, error or panic)", name)
		}
	}
	return kinds, nil
}

// ServeFault is one injected serve-layer fault, bound to the request it
// perturbs.
type ServeFault struct {
	// Request is the 1-based request ordinal (cmd/sdemd's monotone
	// request ID) the fault fires on.
	Request int64 `json:"request"`
	// Kind selects the perturbation.
	Kind ServeKind `json:"kind"`
	// Delay is the injected handler latency in seconds (ServeLatency).
	Delay float64 `json:"delay,omitempty"`
}

// ServeConfig tunes a ServePlan.
type ServeConfig struct {
	// Rate is the fraction of requests faulted, in [0, 1].
	Rate float64
	// Kinds are the fault kinds drawn from, uniformly. Empty means
	// latency only — the one kind that perturbs no response body, so the
	// default chaos mode cannot break response invariants.
	Kinds []ServeKind
	// MaxDelay bounds injected latency in seconds (default 50 ms);
	// ServeLatency draws uniformly from (0, MaxDelay].
	MaxDelay float64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = []ServeKind{ServeLatency}
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 0.050
	}
	if c.Rate < 0 {
		c.Rate = 0
	}
	if c.Rate > 1 {
		c.Rate = 1
	}
	return c
}

// serveDomain tags the SplitMix64 derivations of this fault family so
// serve-chaos draws can never collide with sweep or workload seed
// streams derived from the same campaign seed.
const serveDomain uint64 = 0x5efa017c4a05

// ServePlan is a deterministic, replayable serve-layer fault plan: a
// pure function of (Seed, Config, request ordinal). The zero value (or
// Rate 0) injects nothing.
type ServePlan struct {
	Seed   int64
	Config ServeConfig
}

// NewServePlan binds a config and seed into a plan.
func NewServePlan(cfg ServeConfig, seed int64) ServePlan {
	return ServePlan{Seed: seed, Config: cfg.withDefaults()}
}

// At returns the fault injected on request ordinal id, if any. It is a
// pure function: the same (plan, id) always returns the same fault, so a
// replayed request stream sees the identical storm.
func (p ServePlan) At(id int64) (ServeFault, bool) {
	cfg := p.Config.withDefaults()
	if cfg.Rate <= 0 {
		return ServeFault{}, false
	}
	if unit(p.Seed, id, 0) >= cfg.Rate {
		return ServeFault{}, false
	}
	f := ServeFault{Request: id}
	f.Kind = cfg.Kinds[int(uint64(stats.DeriveSeed(p.Seed, serveDomain, uint64(id), 1))%uint64(len(cfg.Kinds)))]
	if f.Kind == ServeLatency {
		// (0, MaxDelay]: a zero-delay latency fault would be invisible.
		f.Delay = (1 - unit(p.Seed, id, 2)) * cfg.MaxDelay
	}
	return f, true
}

// Materialize lists the faults the plan injects over the first n request
// ordinals (1..n), in ordinal order — the explicit form used by tests
// and by operators inspecting a storm before replaying it.
func (p ServePlan) Materialize(n int64) []ServeFault {
	var out []ServeFault
	for id := int64(1); id <= n; id++ {
		if f, ok := p.At(id); ok {
			out = append(out, f)
		}
	}
	return out
}

// unit derives a uniform float64 in [0, 1) from the plan seed, the
// request ordinal, and a draw slot.
func unit(seed, id int64, slot uint64) float64 {
	u := uint64(stats.DeriveSeed(seed, serveDomain, uint64(id), slot))
	return float64(u>>11) / (1 << 53)
}
