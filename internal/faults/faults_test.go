package faults

import (
	"reflect"
	"testing"

	"sdem/internal/power"
	"sdem/internal/task"
)

func testTasks() task.Set {
	return task.Set{
		{ID: 0, Release: 0, Deadline: 0.1, Workload: 5e6},
		{ID: 1, Release: 0.02, Deadline: 0.15, Workload: 3e6},
		{ID: 2, Release: 0.05, Deadline: 0.3, Workload: 8e6},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tasks := testTasks()
	sys := power.DefaultSystem()
	cfg := Config{Intensity: 0.8}
	a := Generate(cfg, tasks, sys, 42)
	b := Generate(cfg, tasks, sys, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := Generate(cfg, tasks, sys, 43)
	if reflect.DeepEqual(a.Faults, c.Faults) && len(a.Faults) > 0 {
		t.Fatalf("different seeds produced identical non-empty plans")
	}
}

func TestGenerateZeroIntensityEmpty(t *testing.T) {
	p := Generate(Config{Intensity: 0}, testTasks(), power.DefaultSystem(), 1)
	if !p.Empty() {
		t.Fatalf("intensity 0 generated %d faults", len(p.Faults))
	}
}

func TestGeneratedPlansValidate(t *testing.T) {
	tasks := testTasks()
	sys := power.DefaultSystem()
	for seed := int64(0); seed < 50; seed++ {
		for _, in := range []float64{0.1, 0.5, 1.0, 2.0} {
			p := Generate(Config{Intensity: in}, tasks, sys, seed)
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d intensity %g: invalid plan: %v", seed, in, err)
			}
		}
	}
}

func TestGenerateKindsFilter(t *testing.T) {
	p := Generate(Config{Intensity: 1, Kinds: []Kind{Overrun}}, testTasks(), power.DefaultSystem(), 7)
	for _, f := range p.Faults {
		if f.Kind != Overrun {
			t.Fatalf("kinds filter leaked a %v fault", f.Kind)
		}
	}
	if len(p.ByKind(Overrun)) != len(p.Faults) {
		t.Fatalf("ByKind(Overrun) = %d faults, want %d", len(p.ByKind(Overrun)), len(p.Faults))
	}
}

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"good overrun", Fault{Kind: Overrun, TaskID: 1, Core: -1, Factor: 1.2}, true},
		{"zero-factor overrun", Fault{Kind: Overrun, TaskID: 1, Core: -1, Factor: 0}, false},
		{"good cap", Fault{Kind: SpeedCap, TaskID: -1, Core: 2, Factor: 0.5, At: 1, Until: 2}, true},
		{"cap factor above 1", Fault{Kind: SpeedCap, TaskID: -1, Core: 2, Factor: 1.5, At: 1, Until: 2}, false},
		{"inverted cap interval", Fault{Kind: SpeedCap, TaskID: -1, Core: 2, Factor: 0.5, At: 2, Until: 1}, false},
		{"cap without core", Fault{Kind: SpeedCap, TaskID: -1, Core: -1, Factor: 0.5, At: 1, Until: 2}, false},
		{"negative wake delay", Fault{Kind: WakeLatency, TaskID: -1, Core: -1, Delay: -1}, false},
		{"good late release", Fault{Kind: LateRelease, TaskID: 0, Core: -1, Delay: 0.01}, true},
		{"unknown kind", Fault{Kind: Kind(99)}, false},
	}
	for _, tc := range cases {
		err := tc.f.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}
