// Trace-ring tests: the reserve/seal protocol, atomic eviction 404s,
// trace-ID indexing, and the -race hammering that pins the fix for the
// historical lookup race (a request visible in a response's trace_url
// before its ring entry existed).
package serve

import (
	"strconv"
	"sync"
	"testing"

	"sdem/internal/telemetry"
	"sdem/internal/telemetry/wspan"
)

// TestRingReserveSeal checks a reader that arrives between reserve and
// seal blocks on the done channel and then sees the sealed payload.
func TestRingReserveSeal(t *testing.T) {
	r := newTraceRing(4)
	tr := wspan.New("request")
	e := r.reserve("1", tr.TraceID())

	got, ok := r.get("1")
	if !ok || got != e {
		t.Fatalf("reserved entry not visible: %v %v", got, ok)
	}
	select {
	case <-got.done:
		t.Fatal("entry done before seal")
	default:
	}

	rec := telemetry.New()
	e.seal(rec, tr, nil, "/v1/solve", 200)
	<-got.done
	if got.rec != rec || got.wall != tr || got.route != "/v1/solve" || got.status != 200 {
		t.Errorf("sealed payload wrong: %+v", got)
	}

	// Trace-ID lookup resolves to the same entry.
	if byTrace, ok := r.get(tr.TraceID()); !ok || byTrace != e {
		t.Errorf("trace-ID lookup failed: %v %v", byTrace, ok)
	}
}

// TestRingEvictionAtomic404 fills the ring past capacity: evicted IDs
// (and their trace IDs) must atomically 404 while survivors resolve.
func TestRingEvictionAtomic404(t *testing.T) {
	r := newTraceRing(2)
	traces := make([]*wspan.Trace, 3)
	for i := 0; i < 3; i++ {
		traces[i] = wspan.New("request")
		id := strconv.Itoa(i + 1)
		e := r.reserve(id, traces[i].TraceID())
		e.seal(telemetry.New(), traces[i], nil, "/v1/solve", 200)
	}
	if _, ok := r.get("1"); ok {
		t.Error("evicted request ID still resolves")
	}
	if _, ok := r.get(traces[0].TraceID()); ok {
		t.Error("evicted trace ID still resolves")
	}
	for i := 1; i < 3; i++ {
		if _, ok := r.get(strconv.Itoa(i + 1)); !ok {
			t.Errorf("survivor %d missing", i+1)
		}
	}
}

// TestRingDisabled checks a zero-size ring degrades cleanly: reserve
// returns nil, seal on nil no-ops, get always misses.
func TestRingDisabled(t *testing.T) {
	r := newTraceRing(0)
	e := r.reserve("1", "")
	if e != nil {
		t.Fatalf("zero ring reserved an entry: %+v", e)
	}
	e.seal(telemetry.New(), nil, nil, "/v1/solve", 200) // must not panic
	if _, ok := r.get("1"); ok {
		t.Error("zero ring resolved an ID")
	}
}

// TestRingEvictionRace hammers concurrent reserve/seal cycles against
// readers on a tiny ring; under -race this pins the eviction fix — every
// lookup either misses cleanly or returns an entry whose payload, after
// done, is fully sealed and matches the ID it was stored under.
func TestRingEvictionRace(t *testing.T) {
	r := newTraceRing(4)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := strconv.Itoa(g*perWriter + i)
				tr := wspan.New("request")
				e := r.reserve(id, tr.TraceID())
				sp := tr.Root().Start("solve")
				sp.End()
				e.seal(telemetry.New(), tr, nil, "/v1/solve", 200)
			}
		}(g)
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i = (i + 7) % (writers * perWriter) {
				select {
				case <-stop:
					return
				default:
				}
				id := strconv.Itoa(i)
				e, ok := r.get(id)
				if !ok {
					continue
				}
				<-e.done
				if e.id != id {
					t.Errorf("entry for %q carries id %q", id, e.id)
					return
				}
				if e.rec == nil || e.wall == nil || e.status != 200 {
					t.Errorf("torn payload for %q: %+v", id, e)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(stop)
	readers.Wait()
}
