package serve

import (
	"sync"

	"sdem/internal/telemetry"
)

// traceRing retains the child recorders of the most recent requests so
// /debug/trace/{id} can replay their virtual-time spans after the fact.
// The ring is the sole owner of completed children: the middleware folds
// only metrics into the root recorder, so evicting a ring entry releases
// the request's trace memory and the long-running process stays bounded.
type traceRing struct {
	mu      sync.Mutex
	entries []ringEntry // ring storage, len == capacity
	next    int         // next slot to overwrite
	byID    map[string]*telemetry.Recorder
}

type ringEntry struct {
	id  string
	rec *telemetry.Recorder
}

func newTraceRing(size int) *traceRing {
	return &traceRing{
		entries: make([]ringEntry, size),
		byID:    make(map[string]*telemetry.Recorder, size),
	}
}

// put stores a completed request recorder, evicting the oldest entry
// once the ring is full.
func (t *traceRing) put(id string, rec *telemetry.Recorder) {
	if rec == nil || len(t.entries) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.entries[t.next]; old.id != "" {
		delete(t.byID, old.id)
	}
	t.entries[t.next] = ringEntry{id: id, rec: rec}
	t.byID[id] = rec
	t.next = (t.next + 1) % len(t.entries)
}

// get returns the retained recorder of a request ID.
func (t *traceRing) get(id string) (*telemetry.Recorder, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.byID[id]
	return rec, ok
}
