package serve

import (
	"sync"

	"sdem/internal/telemetry"
	"sdem/internal/telemetry/wspan"
)

// traceRing retains the most recent requests' trace state so
// /debug/trace/{id} can replay them after the fact: the virtual-time
// child recorder, the wall-clock span tree, and the decision provenance.
// The ring is the sole owner of completed children — the middleware
// folds only metrics into the root recorder — so evicting an entry
// releases the request's trace memory and the long-running process
// stays bounded.
//
// Entries follow a reserve/seal protocol that closes the pre-existing
// lookup race: the middleware reserves the ID at request START (so a
// client that reads its trace_url the instant the response arrives never
// sees a 404 for a live request — the ring entry predates the response
// bytes), and seals the entry with the immutable payload at completion.
// Readers that find an unsealed entry wait on its done channel; the
// close publishes the payload fields (happens-before), so a reader can
// never observe a partially written entry. Eviction only unlinks an
// entry from the index maps — a reader already holding the pointer still
// gets the sealed payload, never a torn one, and later lookups of the
// evicted ID atomically 404.
type traceRing struct {
	mu      sync.Mutex
	entries []*traceEntry // ring storage, len == capacity
	next    int           // next slot to overwrite
	byID    map[string]*traceEntry
	// byTrace indexes sealed-or-reserved entries by wall trace ID, so
	// exemplar trace_ids from the OpenMetrics exposition resolve at
	// /debug/trace/{id} too.
	byTrace map[string]*traceEntry
}

// traceEntry is one request's retained trace state. id, traceID and done
// are set at reserve time; the payload fields are written exactly once
// by seal, before done is closed, and are immutable afterwards.
type traceEntry struct {
	id      string
	traceID string // wall trace ID, "" when the request was not sampled
	done    chan struct{}

	// Payload, valid after <-done:
	rec    *telemetry.Recorder
	wall   *wspan.Trace
	prov   *Explanation
	route  string
	status int
}

// seal publishes the entry's payload and wakes every waiting reader.
// Must be called exactly once; nil entries (ring disabled) no-op.
func (e *traceEntry) seal(rec *telemetry.Recorder, wall *wspan.Trace, prov *Explanation, route string, status int) {
	if e == nil {
		return
	}
	e.rec, e.wall, e.prov, e.route, e.status = rec, wall, prov, route, status
	close(e.done)
}

func newTraceRing(size int) *traceRing {
	return &traceRing{
		entries: make([]*traceEntry, size),
		byID:    make(map[string]*traceEntry, size),
		byTrace: make(map[string]*traceEntry, size),
	}
}

// reserve claims a ring slot for a starting request, evicting the oldest
// entry (sealed or not) once the ring is full. traceID may be "" for
// unsampled requests. Returns nil when the ring is disabled (size 0).
func (t *traceRing) reserve(id, traceID string) *traceEntry {
	if len(t.entries) == 0 {
		return nil
	}
	e := &traceEntry{id: id, traceID: traceID, done: make(chan struct{})}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.entries[t.next]; old != nil {
		delete(t.byID, old.id)
		if old.traceID != "" {
			delete(t.byTrace, old.traceID)
		}
	}
	t.entries[t.next] = e
	t.byID[id] = e
	if traceID != "" {
		t.byTrace[traceID] = e
	}
	t.next = (t.next + 1) % len(t.entries)
	return e
}

// get resolves a request ID or a 32-hex wall trace ID to its ring entry.
// The decision is atomic: either the entry is currently linked (the
// caller may then wait on e.done for the sealed payload) or the ID is
// gone and the caller 404s.
func (t *traceRing) get(id string) (*traceEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.byID[id]; ok {
		return e, true
	}
	e, ok := t.byTrace[id]
	return e, ok
}
