// Deadline-aware admission control: per-route bounded queues that shed
// load the instant the service can tell a request will not meet its
// budget, instead of letting it rot in a queue and time out anyway.
//
// Every compute route owns one gate. A gate bounds both concurrency
// (slots) and queue depth, keeps an EWMA of recent service times, and
// admits a request only when the estimated queue wait fits inside the
// request's deadline budget — the serving-layer analogue of the paper's
// feasibility test: admit work only while its deadline is still
// reachable, degrade predictably otherwise. Shed responses carry 429 +
// Retry-After so well-behaved clients (cmd/sdemload) back off instead of
// retry-storming.
//
// The gate itself never reads a clock: service times are fed in by the
// middleware, whose latency measurement is the module's one sanctioned
// wall-clock site, and queue waits are bounded by the request's budget
// context rather than by a second timer.
package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// Shed reasons, the `reason` label of the sdem.serve.shed counter.
const (
	// shedQueueFull: the route's bounded queue was at capacity.
	shedQueueFull = "queue_full"
	// shedDeadline: the admission test predicted the queue wait alone
	// would exceed the request's budget.
	shedDeadline = "deadline"
	// shedTimeout: the request was admitted to the queue but its budget
	// expired before a slot freed up.
	shedTimeout = "timeout"
	// shedBudget: the request won a slot but its budget expired
	// mid-computation; the solver abandoned it at a cancellation
	// checkpoint. Counted by the middleware, not the gate.
	shedBudget = "budget"
)

// gate is one route's admission controller.
type gate struct {
	concurrency int
	depth       int // max waiting requests beyond the executing ones
	// slots is the execution-permit channel: sending acquires, receiving
	// releases; capacity = concurrency.
	slots chan struct{}
	// admitted counts requests past the door — executing or waiting.
	admitted atomic.Int64
	// ewmaNs is the exponentially weighted moving average of recent
	// service times in nanoseconds (α = 1/8), fed by release.
	ewmaNs atomic.Int64
}

func newGate(concurrency, depth int) *gate {
	return &gate{
		concurrency: concurrency,
		depth:       depth,
		slots:       make(chan struct{}, concurrency),
	}
}

// admit decides one request. It returns ok=true once the request holds
// an execution slot (pair with release), or ok=false with the shed
// reason and a Retry-After hint in whole seconds. ctx carries the
// request's deadline as a context (queue waiting is charged against it,
// so a request never waits longer than it could still afford to
// compute); budget is the same deadline as a duration, fresh enough at
// admission time that the gate needs no clock read of its own.
func (g *gate) admit(ctx context.Context, budget time.Duration) (ok bool, reason string, retryAfter int) {
	n := g.admitted.Add(1)
	if n > int64(g.concurrency+g.depth) {
		g.admitted.Add(-1)
		return false, shedQueueFull, g.retryAfterSeconds()
	}

	// Deadline-aware admission test: requests ahead of this one that must
	// drain before a slot frees, times the EWMA service time, spread over
	// the slot width. An optimistic estimate — queued work may finish
	// early — so it sheds only what is already hopeless.
	if wait := g.estimatedWait(n); wait > budget {
		g.admitted.Add(-1)
		return false, shedDeadline, secondsCeil(wait)
	}

	select {
	case g.slots <- struct{}{}: // free slot, no waiting
		return true, "", 0
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return true, "", 0
	case <-ctx.Done():
		g.admitted.Add(-1)
		return false, shedTimeout, g.retryAfterSeconds()
	}
}

// release frees the slot admit acquired and folds the request's observed
// service time into the EWMA.
func (g *gate) release(serviceTime time.Duration) {
	<-g.slots
	g.admitted.Add(-1)
	sample := serviceTime.Nanoseconds()
	for {
		old := g.ewmaNs.Load()
		next := old + (sample-old)/8
		if old == 0 {
			next = sample // first observation seeds the average
		}
		if g.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimatedWait predicts how long the n-th admitted request (this one)
// will wait for a slot.
func (g *gate) estimatedWait(n int64) time.Duration {
	ahead := n - int64(g.concurrency)
	if ahead <= 0 {
		return 0
	}
	return time.Duration(ahead * g.ewmaNs.Load() / int64(g.concurrency))
}

// retryAfterSeconds estimates when retrying is worthwhile: the time for
// the current backlog to drain, at least one second (the header's
// resolution floor).
func (g *gate) retryAfterSeconds() int {
	return secondsCeil(time.Duration(g.admitted.Load() * g.ewmaNs.Load() / int64(g.concurrency)))
}

func secondsCeil(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
