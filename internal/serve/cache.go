// Coalesced schedule cache: identical or hot task sets cost one solve.
//
// Keys are canonical fingerprints (internal/encode.CanonicalKey), so two
// requests that spell the same task multiset in different JSON order
// share an entry. The cache is sharded 16 ways on the key's FNV-1a
// fingerprint to keep lock contention off the request path, evicts FIFO
// per shard, and coalesces concurrent identical requests singleflight-
// style: the first becomes the leader and computes, the rest park on the
// entry's ready channel and reuse the leader's response verbatim.
//
// Cached entries hold the canonical response — request ID and trace URL
// blank — and every return path stamps a fresh shallow copy, so a cache
// hit is byte-identical to an uncached solve everywhere except those two
// inherently per-request fields. Failed computations are never cached:
// solver errors would be deterministic, but budget cancellations are
// not, and distinguishing them here is not worth a poisoned entry.
package serve

import (
	"context"
	"sync"

	"sdem/internal/encode"
)

// cacheOutcome is how a request's solve was satisfied, the `result`
// label of the sdem.serve.cache counter.
type cacheOutcome string

const (
	// cacheMiss: this request led the computation.
	cacheMiss cacheOutcome = "miss"
	// cacheHit: a completed entry answered instantly.
	cacheHit cacheOutcome = "hit"
	// cacheCoalesced: an in-flight leader was computing the same key; the
	// request waited for it instead of solving again.
	cacheCoalesced cacheOutcome = "coalesced"
)

const cacheShards = 16

// cacheEntry is one key's slot. ready is closed once resp/code/err are
// written; the channel close publishes the fields to waiters.
type cacheEntry struct {
	ready chan struct{}
	resp  *TaskResponse
	code  int
	err   error
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// order is the FIFO eviction queue. Keys of error-evicted entries may
	// linger; eviction skips keys no longer in entries.
	order []string
}

// schedCache is the sharded coalescing response cache.
type schedCache struct {
	shards      [cacheShards]*cacheShard
	perShardCap int
}

// newSchedCache sizes a cache for roughly total entries across shards.
func newSchedCache(total int) *schedCache {
	per := total / cacheShards
	if per < 1 {
		per = 1
	}
	c := &schedCache{perShardCap: per}
	for i := range c.shards {
		c.shards[i] = &cacheShard{entries: make(map[string]*cacheEntry)}
	}
	return c
}

// do returns the cached response for key, computing it via compute on a
// miss. Followers of an in-flight leader wait on the entry until the
// leader finishes or their own ctx expires; a follower abandoned by ctx
// reports the ctx error (mapped to a budget shed upstream), never a torn
// response.
func (c *schedCache) do(ctx context.Context, key string, compute func() (*TaskResponse, int, error)) (*TaskResponse, int, error, cacheOutcome) {
	shard := c.shards[encode.Fingerprint(key)%cacheShards]

	shard.mu.Lock()
	if e, ok := shard.entries[key]; ok {
		shard.mu.Unlock()
		select {
		case <-e.ready: // already complete: a plain hit
			return e.resp, e.code, e.err, cacheHit
		default:
		}
		select {
		case <-e.ready:
			return e.resp, e.code, e.err, cacheCoalesced
		case <-ctx.Done():
			return nil, 0, ctx.Err(), cacheCoalesced
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	shard.entries[key] = e
	shard.order = append(shard.order, key)
	for len(shard.entries) > c.perShardCap && len(shard.order) > 0 {
		victim := shard.order[0]
		shard.order = shard.order[1:]
		if victim == key {
			// Never evict the entry being computed right now; re-queue it
			// behind the survivors instead.
			shard.order = append(shard.order, key)
			continue
		}
		delete(shard.entries, victim)
	}
	shard.mu.Unlock()

	resp, code, err := compute()
	e.resp, e.code, e.err = resp, code, err
	if err != nil {
		shard.mu.Lock()
		if shard.entries[key] == e {
			delete(shard.entries, key)
		}
		shard.mu.Unlock()
	}
	close(e.ready)
	return resp, code, err, cacheMiss
}
