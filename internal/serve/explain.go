// Decision provenance: the compact, per-gap record of WHY a schedule
// looks the way it does — the paper's race/sleep/crawl choice replayed
// from the finished schedule against the platform's break-even
// thresholds (ξ for cores, ξ_m for memory) and critical speeds.
//
// An Explanation is computed inside the schedule cache's compute
// closure, so cached responses carry it for free and a cache hit
// explains itself without re-deriving anything. It is stored on the
// canonical TaskResponse in an unexported field (encoding/json skips
// it), keeping the byte-identity contract between cached and fresh
// response bodies intact; /v1/explain and /debug/trace/{id} are the
// surfaces that serialize it.
package serve

import (
	"strconv"

	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/telemetry/wspan"
)

// explainGapCap bounds the per-gap detail of one explanation; schedules
// with more idle gaps report the first explainGapCap and set Truncated.
// The summary counters always cover every gap.
const explainGapCap = 256

// GapDecision is one idle gap's sleep-or-idle record.
type GapDecision struct {
	// Component is "memory" or "core <k>".
	Component string `json:"component"`
	// Start and End delimit the gap in virtual seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// LengthS is the gap length, the quantity compared to break-even.
	LengthS float64 `json:"length_s"`
	// BreakEvenS is the component's break-even time ξ (ξ_m for memory).
	BreakEvenS float64 `json:"break_even_s"`
	// MarginS is LengthS − BreakEvenS: positive means the gap is past
	// break-even and sleeping pays.
	MarginS float64 `json:"margin_s"`
	// Decision is "sleep" or "idle".
	Decision string `json:"decision"`
	// NetGainJ is the energy the decision saved versus idling through
	// the gap (α·(len−ξ) for a break-even sleep; 0 when idling).
	NetGainJ float64 `json:"net_gain_j"`
}

// SpeedDecision is one execution segment's race/crawl/dvs record.
type SpeedDecision struct {
	// Core is the core index running the segment.
	Core int `json:"core"`
	// Task is the task ID of the segment.
	Task int `json:"task"`
	// Start and DurS place the segment in virtual time.
	Start float64 `json:"start"`
	DurS  float64 `json:"dur_s"`
	// Speed is the segment's DVS speed setting.
	Speed float64 `json:"speed"`
	// CriticalSpeed is the platform's clamped critical speed s_m — the
	// crawl floor below which slowing down wastes static energy.
	CriticalSpeed float64 `json:"critical_speed"`
	// Decision is "race" (at s_up), "crawl" (at the critical speed) or
	// "dvs" (an intermediate deadline-driven speed).
	Decision string `json:"decision"`
}

// ExplainSummary aggregates the whole schedule's decisions.
type ExplainSummary struct {
	Gaps        int     `json:"gaps"`
	Sleeps      int     `json:"sleeps"`
	Idles       int     `json:"idles"`
	SleepGainJ  float64 `json:"sleep_gain_j"`
	Segments    int     `json:"segments"`
	Races       int     `json:"races"`
	Crawls      int     `json:"crawls"`
	Dvs         int     `json:"dvs"`
	MemorySleep bool    `json:"memory_sleeps"`
}

// Explanation is the decision-provenance document of one schedule.
type Explanation struct {
	Scheduler    string `json:"scheduler"`
	CorePolicy   string `json:"core_policy"`
	MemoryPolicy string `json:"memory_policy"`
	// CoreBreakEvenS and MemoryBreakEvenS are the platform thresholds
	// every gap below was compared against.
	CoreBreakEvenS   float64         `json:"core_break_even_s"`
	MemoryBreakEvenS float64         `json:"memory_break_even_s"`
	CriticalSpeed    float64         `json:"critical_speed"`
	Summary          ExplainSummary  `json:"summary"`
	Gaps             []GapDecision   `json:"gaps,omitempty"`
	Speeds           []SpeedDecision `json:"speeds,omitempty"`
	// Truncated reports that the per-gap / per-segment detail was capped
	// (the summary still covers everything).
	Truncated bool `json:"truncated,omitempty"`
}

// speedTol classifies a segment speed as race / crawl when it sits
// within this relative tolerance of s_up / s_m.
const speedTol = 1e-9 //lint:allow tolconst: classification tolerance matching schedule.Tol

// explainSchedule replays the per-gap and per-segment decisions of a
// finished schedule. Pure and read-only: it walks the schedule with the
// same interval helpers the audit uses and prices gaps with
// schedule.SleepPolicy.Decide, so the provenance can never disagree
// with the energy accounting.
func explainSchedule(sched string, s *schedule.Schedule, sys power.System) *Explanation {
	if s == nil {
		return nil
	}
	ex := &Explanation{
		Scheduler:        sched,
		CorePolicy:       s.CorePolicy.String(),
		MemoryPolicy:     s.MemoryPolicy.String(),
		CoreBreakEvenS:   sys.Core.BreakEven,
		MemoryBreakEvenS: sys.Memory.BreakEven,
		CriticalSpeed:    sys.Core.CriticalSpeed(0),
	}

	appendGap := func(component string, g schedule.Interval, pol schedule.SleepPolicy, alpha, xi float64) {
		d := pol.Decide(g.Len(), alpha, xi)
		ex.Summary.Gaps++
		decision := "idle"
		if d.Sleeps {
			decision = "sleep"
			ex.Summary.Sleeps++
			ex.Summary.SleepGainJ += d.NetGain
		} else {
			ex.Summary.Idles++
		}
		if len(ex.Gaps) >= explainGapCap {
			ex.Truncated = true
			return
		}
		ex.Gaps = append(ex.Gaps, GapDecision{
			Component:  component,
			Start:      g.Start,
			End:        g.End,
			LengthS:    g.Len(),
			BreakEvenS: xi,
			MarginS:    d.Margin,
			Decision:   decision,
			NetGainJ:   d.NetGain,
		})
	}

	// Memory gaps: the union of all cores' busy time defines when the
	// memory may sleep — the paper's central coupling.
	memBusy := s.MemoryBusy()
	for _, g := range schedule.Gaps(memBusy, s.Start, s.End) {
		appendGap("memory", g, s.MemoryPolicy, sys.Memory.Static, sys.Memory.BreakEven)
		if g.Len() >= sys.Memory.BreakEven && s.MemoryPolicy.Sleeps(g.Len(), sys.Memory.Static, sys.Memory.BreakEven) {
			ex.Summary.MemorySleep = true
		}
	}

	// Per-core gaps and segment speed classes.
	sUp := sys.Core.SpeedMax
	sCrit := ex.CriticalSpeed
	for k, segs := range s.Cores {
		for _, g := range schedule.Gaps(schedule.BusyIntervals(segs), s.Start, s.End) {
			appendGap(coreName(k), g, s.CorePolicy, sys.Core.Static, sys.Core.BreakEven)
		}
		for _, sg := range segs {
			ex.Summary.Segments++
			decision := "dvs"
			switch {
			case sUp > 0 && sg.Speed >= sUp*(1-speedTol):
				decision = "race"
				ex.Summary.Races++
			case sCrit > 0 && sg.Speed <= sCrit*(1+speedTol):
				decision = "crawl"
				ex.Summary.Crawls++
			default:
				ex.Summary.Dvs++
			}
			if len(ex.Speeds) >= explainGapCap {
				ex.Truncated = true
				continue
			}
			ex.Speeds = append(ex.Speeds, SpeedDecision{
				Core:          k,
				Task:          sg.TaskID,
				Start:         sg.Start,
				DurS:          sg.End - sg.Start,
				Speed:         sg.Speed,
				CriticalSpeed: sCrit,
				Decision:      decision,
			})
		}
	}
	return ex
}

// noteProvenance summarizes an explanation onto a solve span, so the
// wall trace alone answers "what did the scheduler decide" without a
// second lookup. Inert on nil spans and nil explanations.
func noteProvenance(sp wspan.Span, ex *Explanation) {
	if ex == nil {
		return
	}
	sp.NoteInt("gaps", int64(ex.Summary.Gaps))
	sp.NoteInt("sleeps", int64(ex.Summary.Sleeps))
	sp.NoteInt("races", int64(ex.Summary.Races))
	sp.NoteInt("crawls", int64(ex.Summary.Crawls))
	sp.Note("memory_sleeps", strconv.FormatBool(ex.Summary.MemorySleep))
}

// coreName interns the "core <k>" component names for small k.
var coreNames = []string{"core 0", "core 1", "core 2", "core 3", "core 4", "core 5", "core 6", "core 7"}

func coreName(k int) string {
	if k >= 0 && k < len(coreNames) {
		return coreNames[k]
	}
	return "core " + strconv.Itoa(k)
}
