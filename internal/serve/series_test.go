package serve

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"sdem/internal/telemetry/series"
)

// TestDebugSeriesWindows drives enough requests to seal ordinal windows
// and checks the /debug/series dump: window layout keyed on the request
// ordinal, per-window request counters, and the latency sketch.
func TestDebugSeriesWindows(t *testing.T) {
	s := New(Config{
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		SeriesWindow: 4,
	})
	for i := 0; i < 9; i++ {
		if w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}); w.Code != http.StatusOK {
			t.Fatalf("solve %d: %d\n%s", i, w.Code, w.Body.String())
		}
	}
	w := get(t, s, "/debug/series")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/series: %d\n%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	ser, err := series.ReadJSONL(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Clock != series.ClockOrdinal || ser.Interval != 4 {
		t.Fatalf("clock=%s interval=%g, want ordinal/4", ser.Clock, ser.Interval)
	}
	// 9 completions at window size 4 seal exactly 2 windows; the 9th
	// completion sits in the still-open third window.
	if len(ser.Windows) != 2 {
		t.Fatalf("windows=%d, want 2", len(ser.Windows))
	}
	for i := range ser.Windows {
		win := &ser.Windows[i]
		var reqs int64
		for k, v := range win.Counters {
			if strings.HasPrefix(k, "sdem.serve.requests") {
				reqs += v
			}
		}
		if reqs != 4 {
			t.Fatalf("window %d: requests=%d, want 4\ncounters: %v", i, reqs, win.Counters)
		}
		sk := win.Sketches["sdem.serve.latency_ms"]
		if sk == nil || sk.Count() != 4 {
			t.Fatalf("window %d: latency sketch missing or wrong count: %+v", i, sk)
		}
	}
}

// TestDebugSeriesDisabled covers the negative-SeriesWindow opt-out.
func TestDebugSeriesDisabled(t *testing.T) {
	s := New(Config{
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		SeriesWindow: -1,
	})
	if w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}); w.Code != http.StatusOK {
		t.Fatalf("solve: %d", w.Code)
	}
	if w := get(t, s, "/debug/series"); w.Code != http.StatusNotFound {
		t.Fatalf("disabled series must 404, got %d", w.Code)
	}
}

// TestMetricsUnchangedBySeries pins the acceptance criterion that the
// /metrics exposition is byte-identical whether the windowed series is
// enabled or not: the collector only reads recorder snapshots, it never
// writes metrics of its own. The latency family is excluded from the
// comparison — it is the exposition's one intentionally wall-clock
// (nondeterministic) family, different between any two runs regardless.
func TestMetricsUnchangedBySeries(t *testing.T) {
	expose := func(window int) string {
		s := New(Config{
			Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
			SeriesWindow: window,
		})
		for i := 0; i < 5; i++ {
			if w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}); w.Code != http.StatusOK {
				t.Fatalf("solve %d: %d", i, w.Code)
			}
		}
		w := get(t, s, "/metrics")
		if w.Code != http.StatusOK {
			t.Fatalf("/metrics: %d", w.Code)
		}
		var kept []string
		for _, line := range strings.Split(w.Body.String(), "\n") {
			if strings.Contains(line, "latency") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	on, off := expose(4), expose(-1)
	if on != off {
		t.Fatalf("exposition differs with series on/off:\n--- on ---\n%s\n--- off ---\n%s", on, off)
	}
}
