// Package serve is the long-running SDEM solve service behind cmd/sdemd:
// an HTTP daemon that accepts solve / simulate / execute requests over
// JSON task sets and answers with schedules and per-component energy
// attributions, while exposing live observability surfaces:
//
//	POST /v1/solve       offline optimal schedule (§4/§5 via sdem core)
//	POST /v1/simulate    online policies (sdem-on, mbkp, mbkps, race, critical)
//	POST /v1/execute     fault-perturbed replay with graceful degradation
//	POST /v1/batch       many solve/simulate requests on the worker pool
//	GET  /metrics        OpenMetrics exposition of the live recorder
//	GET  /debug/series   windowed time series (JSONL) on the request ordinal clock
//	GET  /healthz        liveness (always 200 while the process serves)
//	GET  /readyz         readiness (503 once shutdown has begun)
//	GET  /debug/trace/{id}  Chrome trace_event replay of a recent request
//	GET  /debug/pprof/*  standard pprof surfaces
//
// Observability model: the server owns one root telemetry.Recorder for
// its whole lifetime. Every request computes on a child recorder (pid =
// request ID — the same pattern the sweep engine uses per grid point);
// on completion the middleware folds the child's metrics into the root
// with MergeMetrics and parks the child, trace events and all, in a
// bounded replay ring for /debug/trace. Solver and simulator metrics
// therefore stay pure virtual-time quantities, while the middleware adds
// the only wall-clock series (request latency) — and wall time never
// leaves middleware.go (enforced by the telemetrycheck analyzer).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"sdem/internal/faults"
	"sdem/internal/parallel"
	"sdem/internal/power"
	"sdem/internal/telemetry"
	"sdem/internal/telemetry/export"
	"sdem/internal/telemetry/series"
)

// Config tunes a Server. The zero value serves the paper's default
// platform with sensible bounds.
type Config struct {
	// System is the platform used by requests that do not carry one.
	// Zero-valued means power.DefaultSystem.
	System power.System
	// MaxBody caps request body size in bytes (default 1 MiB).
	MaxBody int64
	// RingSize bounds the /debug/trace replay ring (default 64 requests).
	RingSize int
	// Workers bounds the /v1/batch worker pool (default: one per CPU).
	Workers int
	// MaxBatch caps the number of items per /v1/batch request
	// (default 256).
	MaxBatch int
	// Logger receives the structured request log (default slog.Default).
	Logger *slog.Logger

	// Concurrency caps simultaneously executing requests per compute
	// route (default 2× Workers). Requests beyond it queue.
	Concurrency int
	// QueueDepth bounds requests waiting for an execution slot per
	// compute route, beyond the executing ones (default 8× Concurrency).
	// Requests beyond it shed immediately with 429.
	QueueDepth int
	// DefaultBudget is the deadline budget of requests that send no
	// X-Budget-Ms header (default 5s). The budget covers queue wait and
	// computation; solvers abandon the work at the next cancellation
	// checkpoint once it expires.
	DefaultBudget time.Duration
	// MaxBudget caps client-supplied budgets (default 30s), so a client
	// cannot park work behind an hour-long deadline.
	MaxBudget time.Duration
	// CacheSize bounds the coalescing schedule cache in responses
	// (default 4096); negative disables caching.
	CacheSize int
	// TraceSample selects which requests get a wall-clock span tree:
	// every TraceSample-th request ID is sampled (1 — the default —
	// traces everything; negative disables wall tracing). Virtual-time
	// traces and metrics are unaffected either way, and response bodies
	// are byte-identical with tracing on or off — sampling only adds
	// headers, exemplars and /debug/trace detail.
	TraceSample int
	// Chaos, when non-nil, injects the plan's serve-layer faults
	// (latency, errors, panics) by request ordinal — deterministic and
	// replayable under a fixed plan seed.
	Chaos *faults.ServePlan

	// SeriesWindow sizes the /debug/series windows in completed requests:
	// the window clock is the monotone request-completion ordinal, never
	// wall time, so the series layout is deterministic in the request
	// sequence (the sketched latency values inside are wall measurements).
	// Default 256; negative disables the windowed series.
	SeriesWindow int

	// ReadTimeout, WriteTimeout and IdleTimeout bound the HTTP server's
	// connection phases so slow or stalled clients cannot hold
	// connections open indefinitely. Defaults: 30s read, 2× MaxBudget
	// write (a response is always allowed to outlive the largest
	// admitted budget), 120s idle.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

func (c Config) withDefaults() Config {
	if c.System.Cores == 0 && c.System.Core == (power.Core{}) {
		c.System = power.DefaultSystem()
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = parallel.DefaultWorkers()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.Concurrency
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 5 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.SeriesWindow == 0 {
		c.SeriesWindow = 256
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * c.MaxBudget
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	return c
}

// Server is the HTTP solve service. Create one with New and mount
// Handler on an http.Server.
type Server struct {
	cfg Config
	log *slog.Logger

	// tel is the root recorder of the whole process; request children are
	// folded into it as they complete.
	tel *telemetry.Recorder

	mux      *http.ServeMux
	reqID    atomic.Int64
	inflight atomic.Int64
	ready    atomic.Bool
	ring     *traceRing

	// gates are the per-compute-route admission controllers.
	gates map[string]*gate
	// labels are the per-route interned metric label tables.
	labels map[string]*routeLabels
	// cache is the coalescing schedule cache; nil when disabled.
	cache *schedCache
	// col windows the root recorder on the request-completion ordinal for
	// /debug/series; nil when disabled (every method no-ops on nil).
	col *series.Collector
}

// New builds a Server and its route table.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		log:    cfg.Logger,
		tel:    telemetry.New(),
		mux:    http.NewServeMux(),
		ring:   newTraceRing(cfg.RingSize),
		gates:  make(map[string]*gate),
		labels: make(map[string]*routeLabels),
	}
	if cfg.CacheSize > 0 {
		s.cache = newSchedCache(cfg.CacheSize)
	}
	s.tel.RegisterHistogram(metricLatency, telemetry.BucketsSeconds)
	s.tel.RegisterHistogram(metricEnergy, telemetry.BucketsJoules)
	s.tel.RegisterHistogram(metricTasks, telemetry.BucketsCount)
	if cfg.SeriesWindow > 0 {
		// The error path is unreachable: the interval is a validated
		// positive int and the clock constant is well-formed.
		s.col, _ = series.NewCollector(s.tel, series.ClockOrdinal, float64(cfg.SeriesWindow))
	}
	s.ready.Store(true)

	s.handle("POST /v1/solve", s.handleSolve)
	s.handle("POST /v1/simulate", s.handleSimulate)
	s.handle("POST /v1/execute", s.handleExecute)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/series", s.handleSeries)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// handle mounts an API handler behind the request middleware (ID
// assignment, admission gate, budget context, panic barrier, child
// recorder, structured log, latency metrics). Every compute route gets
// its own bounded admission gate so one saturated route cannot starve
// the others.
func (s *Server) handle(pattern string, h apiHandler) {
	route := pattern
	if _, r, ok := strings.Cut(pattern, " "); ok {
		route = r
	}
	s.gates[route] = newGate(s.cfg.Concurrency, s.cfg.QueueDepth)
	s.labels[route] = newRouteLabels(route)
	s.mux.Handle(pattern, s.middleware(pattern, h))
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Telemetry returns the root recorder (tests and embedders may seed or
// inspect it; the exposition snapshots it).
func (s *Server) Telemetry() *telemetry.Recorder { return s.tel }

// SetReady flips the /readyz state; Run flips it to false when shutdown
// begins so load balancers drain the instance before connections die.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// handleMetrics snapshots the live recorder and renders it as
// OpenMetrics text. The snapshot is taken under the recorder lock, so
// scrapes race neither each other nor in-flight merges; rendering is
// lock-free and byte-deterministic for a fixed metric state.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := export.WriteOpenMetrics(w, s.tel.Snapshot()); err != nil {
		s.log.Error("metrics exposition failed", "err", err)
	}
}

// handleSeries dumps the completed request-ordinal windows as JSONL —
// the format sdemwatch consumes directly (sdemwatch -url .../debug/series
// -profile serve). Only sealed windows are exposed; the partially filled
// current window keeps accumulating until its ordinal boundary.
func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	if s.col == nil {
		http.Error(w, "windowed series disabled (SeriesWindow < 0)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.col.Snapshot().WriteJSONL(w); err != nil {
		s.log.Error("series dump failed", "err", err)
	}
}

// traceDoc is the combined /debug/trace/{id} document: the request's
// identity and outcome, its wall-clock span tree, the schedule's
// decision provenance, and the virtual-time Chrome trace replay (load
// the virtual_trace value in ui.perfetto.dev).
type traceDoc struct {
	Request string `json:"request"`
	Route   string `json:"route"`
	Status  int    `json:"status"`
	TraceID string `json:"trace_id,omitempty"`
	// WallTrace is the wspan span tree (absent when the request was not
	// sampled for wall tracing).
	WallTrace json.RawMessage `json:"wall_trace,omitempty"`
	// Provenance is the per-gap race/sleep/crawl record (absent on
	// requests that produced no schedule).
	Provenance *Explanation `json:"provenance,omitempty"`
	// VirtualTrace is the Chrome trace_event replay of the request's
	// virtual-time solver spans.
	VirtualTrace json.RawMessage `json:"virtual_trace,omitempty"`
}

// handleTrace replays a recent request's trace. The ID is a request ID
// or a 32-hex wall trace ID (the form latency exemplars carry). The ring
// lookup is atomic — a reserved-but-unfinished request blocks until its
// entry seals rather than flapping 404 — and an evicted ID is a clean
// 404, never a torn entry.
//
// Formats: default is the combined traceDoc; ?format=chrome is the bare
// Chrome trace_event document; ?format=wall is the bare wspan JSONL
// record (what cmd/sdemtrace aggregates).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	e, ok := s.ring.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "trace not found (evicted or unknown request id)", http.StatusNotFound)
		return
	}
	select {
	case <-e.done:
	case <-r.Context().Done():
		return // client gave up while the request was still in flight
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := e.rec.WriteChromeTrace(w); err != nil {
			s.log.Error("trace replay failed", "err", err)
		}
	case "wall":
		if e.wall == nil {
			http.Error(w, "request was not sampled for wall tracing", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := e.wall.WriteJSON(w); err != nil {
			s.log.Error("wall trace write failed", "err", err)
		}
	default:
		doc := traceDoc{Request: e.id, Route: e.route, Status: e.status, Provenance: e.prov}
		if e.wall != nil {
			doc.TraceID = e.wall.TraceID()
			doc.WallTrace = e.wall.AppendJSON(nil)
		}
		var buf bytes.Buffer
		if err := e.rec.WriteChromeTrace(&buf); err == nil {
			doc.VirtualTrace = bytes.TrimSpace(buf.Bytes())
		}
		// Compact marshal (not the indented writeJSON) keeps the embedded
		// raw documents byte-exact.
		out, err := json.Marshal(doc)
		if err != nil {
			http.Error(w, "trace encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	}
}

// Run serves s on the listener until ctx is cancelled, then drains
// gracefully: readiness flips to 503 immediately, in-flight requests get
// up to grace to finish, and a clean drain returns nil. The listener is
// always closed on return.
func Run(ctx context.Context, l net.Listener, s *Server, grace time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.SetReady(false)
	s.log.Info("shutting down", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
