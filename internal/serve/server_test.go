package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdem/internal/task"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	return New(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
}

// commonRelease is a small feasible common-release set.
func commonRelease() task.Set {
	return task.Set{
		{ID: 0, Release: 0, Deadline: 0.05, Workload: 2e6},
		{ID: 1, Release: 0, Deadline: 0.06, Workload: 3e6},
		{ID: 2, Release: 0, Deadline: 0.08, Workload: 1e6},
	}
}

// generalSet has overlapping, non-agreeable windows: no offline optimum.
func generalSet() task.Set {
	return task.Set{
		{ID: 0, Release: 0, Deadline: 0.2, Workload: 2e6},
		{ID: 1, Release: 0.01, Deadline: 0.05, Workload: 1e6},
		{ID: 2, Release: 0.02, Deadline: 0.3, Workload: 3e6},
	}
}

// post sends a JSON body through the full handler stack.
func post(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeResponse(t *testing.T, w *httptest.ResponseRecorder) TaskResponse {
	t.Helper()
	var resp TaskResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestSolveEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease(), IncludeSchedule: true})
	if w.Code != http.StatusOK {
		t.Fatalf("solve: %d\n%s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)
	if resp.EnergyJ <= 0 {
		t.Errorf("energy = %g, want > 0", resp.EnergyJ)
	}
	sum := resp.Components.DynamicJ + resp.Components.CoreStaticJ + resp.Components.MemoryStaticJ + resp.Components.TransitionJ
	if math.Abs(sum-resp.EnergyJ) > 1e-9*math.Max(1, resp.EnergyJ) {
		t.Errorf("components sum %g != energy %g", sum, resp.EnergyJ)
	}
	if resp.Schedule == nil {
		t.Error("include_schedule ignored")
	}
	if resp.Model != "common-release" && !strings.Contains(resp.Model, "common") {
		t.Errorf("model = %q", resp.Model)
	}
	if resp.TraceURL != "/debug/trace/1" {
		t.Errorf("trace url = %q", resp.TraceURL)
	}
}

func TestSolveRejectsGeneralModel(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/solve", TaskRequest{Tasks: generalSet()})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("general solve: %d, want 422\n%s", w.Code, w.Body.String())
	}
}

func TestSolveRejectsBadBody(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", w.Code)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := testServer(t)
	for _, sched := range []string{"sdem-on", "mbkp", "mbkps", "race", "critical"} {
		w := post(t, s, "/v1/simulate", TaskRequest{Tasks: generalSet(), Scheduler: sched})
		if w.Code != http.StatusOK {
			t.Fatalf("simulate %s: %d\n%s", sched, w.Code, w.Body.String())
		}
		resp := decodeResponse(t, w)
		if resp.Scheduler != sched || resp.EnergyJ <= 0 {
			t.Errorf("simulate %s: %+v", sched, resp)
		}
	}
	w := post(t, s, "/v1/simulate", TaskRequest{Tasks: generalSet(), Scheduler: "nope"})
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown scheduler: %d, want 400", w.Code)
	}
}

func TestExecuteEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/execute", TaskRequest{
		Tasks:  commonRelease(),
		Faults: &FaultSpec{Seed: 7, Intensity: 0.8},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("execute: %d\n%s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)
	if resp.EnergyJ <= 0 {
		t.Errorf("energy = %g", resp.EnergyJ)
	}
	// Replayability: the same seed must give the identical outcome.
	w2 := post(t, s, "/v1/execute", TaskRequest{
		Tasks:  commonRelease(),
		Faults: &FaultSpec{Seed: 7, Intensity: 0.8},
	})
	resp2 := decodeResponse(t, w2)
	if resp.EnergyJ != resp2.EnergyJ || resp.Recoveries != resp2.Recoveries {
		t.Errorf("same seed, different outcome: %+v vs %+v", resp, resp2)
	}
	// Missing fault spec is a client error.
	if w := post(t, s, "/v1/execute", TaskRequest{Tasks: commonRelease()}); w.Code != http.StatusBadRequest {
		t.Errorf("missing faults: %d, want 400", w.Code)
	}
}

// TestBatchMatchesSingles runs a batch and checks each item reproduces
// the corresponding single-endpoint result exactly, in order.
func TestBatchMatchesSingles(t *testing.T) {
	items := []BatchItemRequest{
		{TaskRequest: TaskRequest{Tasks: commonRelease()}},
		{Op: "simulate", TaskRequest: TaskRequest{Tasks: generalSet()}},
		{Op: "simulate", TaskRequest: TaskRequest{Tasks: generalSet(), Scheduler: "mbkps"}},
		{Op: "solve", TaskRequest: TaskRequest{Tasks: generalSet()}}, // item error, not batch error
	}
	s := testServer(t)
	w := post(t, s, "/v1/batch", BatchRequest{Requests: items})
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d\n%s", w.Code, w.Body.String())
	}
	var batch BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(items) {
		t.Fatalf("results = %d, want %d", len(batch.Results), len(items))
	}

	ref := testServer(t)
	wantSolve := decodeResponse(t, post(t, ref, "/v1/solve", items[0].TaskRequest))
	wantSim := decodeResponse(t, post(t, ref, "/v1/simulate", items[1].TaskRequest))
	if got := batch.Results[0]; got.TaskResponse == nil || got.EnergyJ != wantSolve.EnergyJ {
		t.Errorf("batch solve item = %+v, want energy %g", got, wantSolve.EnergyJ)
	}
	if got := batch.Results[1]; got.TaskResponse == nil || got.EnergyJ != wantSim.EnergyJ {
		t.Errorf("batch simulate item = %+v, want energy %g", got, wantSim.EnergyJ)
	}
	if got := batch.Results[3]; got.TaskResponse != nil || got.Error == "" {
		t.Errorf("infeasible item should carry an error: %+v", got)
	}
}

// TestBatchWorkerCountIndependent checks the sweep-engine determinism
// pattern at the service layer: the same batch on a 1-worker and a
// many-worker pool produces byte-identical response bodies and identical
// merged telemetry.
func TestBatchWorkerCountIndependent(t *testing.T) {
	items := make([]BatchItemRequest, 12)
	for i := range items {
		op := "solve"
		tasks := commonRelease()
		if i%2 == 1 {
			op = "simulate"
			tasks = generalSet()
		}
		items[i] = BatchItemRequest{Op: op, TaskRequest: TaskRequest{Tasks: tasks}}
	}
	run := func(workers int) (string, string) {
		s := New(Config{Workers: workers, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		w := post(t, s, "/v1/batch", BatchRequest{Requests: items})
		if w.Code != http.StatusOK {
			t.Fatalf("batch(workers=%d): %d\n%s", workers, w.Code, w.Body.String())
		}
		var metrics bytes.Buffer
		// Compare only the deterministic families: drop wall latency, and
		// drop the cache-outcome counters — whether a repeated batch item
		// lands as "hit" (leader already finished) or "coalesced" (leader
		// still computing) depends on pool timing. The solve itself runs
		// exactly once either way, which the solver families below verify.
		for _, line := range strings.Split(get(t, s, "/metrics").Body.String(), "\n") {
			if strings.Contains(line, "sdem_serve_latency_s") || strings.Contains(line, "sdem_serve_cache") {
				continue
			}
			metrics.WriteString(line + "\n")
		}
		return w.Body.String(), metrics.String()
	}
	body1, met1 := run(1)
	body8, met8 := run(8)
	if body1 != body8 {
		t.Errorf("batch body differs between 1 and 8 workers:\n%s\n---\n%s", body1, body8)
	}
	if met1 != met8 {
		t.Errorf("merged telemetry differs between 1 and 8 workers:\n%s\n---\n%s", met1, met8)
	}
}

// seriesOf reduces an exposition to its series identities (sample lines
// with the value and any trace-ID exemplar stripped), preserving order.
func seriesOf(exposition string) []string {
	var out []string
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i > 0 {
			line = line[:i] // exemplar suffix carries a per-run trace ID
		}
		if i := strings.LastIndexByte(line, ' '); i > 0 {
			out = append(out, line[:i])
		}
	}
	return out
}

// TestMetricsDeterministicSet replays a fixed request sequence on two
// fresh servers: the exposed metric set must be byte-identical, and
// every family except the wall-latency one must match value-for-value.
func TestMetricsDeterministicSet(t *testing.T) {
	sequence := func(s *Server) string {
		post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
		post(t, s, "/v1/simulate", TaskRequest{Tasks: generalSet()})
		post(t, s, "/v1/execute", TaskRequest{Tasks: commonRelease(), Faults: &FaultSpec{Seed: 3, Intensity: 0.5}})
		post(t, s, "/v1/solve", TaskRequest{Tasks: generalSet()}) // 422, still counted
		w := get(t, s, "/metrics")
		if w.Code != http.StatusOK {
			t.Fatalf("metrics: %d", w.Code)
		}
		if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
			t.Errorf("content type = %q", ct)
		}
		return w.Body.String()
	}
	a, b := sequence(testServer(t)), sequence(testServer(t))

	sa, sb := seriesOf(a), seriesOf(b)
	if strings.Join(sa, "\n") != strings.Join(sb, "\n") {
		t.Errorf("metric set differs across runs:\n%s\n---\n%s", strings.Join(sa, "\n"), strings.Join(sb, "\n"))
	}
	strip := func(exposition string) string {
		var keep []string
		for _, line := range strings.Split(exposition, "\n") {
			if strings.Contains(line, "sdem_serve_latency_s") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(a) != strip(b) {
		t.Errorf("deterministic families differ across runs:\n%s\n---\n%s", strip(a), strip(b))
	}
	for _, want := range []string{
		"sdem_serve_requests_total{code=\"200\",route=\"/v1/solve\"} 1",
		"sdem_serve_requests_total{code=\"422\",route=\"/v1/solve\"} 1",
		"sdem_serve_inflight 0",
		"sdem_sim_energy_j_total{component=\"dynamic\",sched=\"sdem-on\"}",
		"# TYPE sdem_serve_latency_s histogram",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition missing %q:\n%s", want, a)
		}
	}
}

// TestMetricsRace hammers /metrics while solve and batch requests are in
// flight; run under -race this is the exporter's concurrency guarantee.
func TestMetricsRace(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w := get(t, s, "/metrics"); w.Code != http.StatusOK {
					t.Errorf("metrics: %d", w.Code)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
				if w.Code != http.StatusOK {
					t.Errorf("solve: %d", w.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if w := get(t, s, "/metrics"); !strings.Contains(w.Body.String(), `sdem_serve_requests_total{code="200",route="/v1/solve"} 20`) {
		t.Errorf("expected 20 solves in:\n%s", w.Body.String())
	}
}

func TestTraceReplay(t *testing.T) {
	s := testServer(t)
	post(t, s, "/v1/simulate", TaskRequest{Tasks: generalSet()})
	w := get(t, s, "/debug/trace/1")
	if w.Code != http.StatusOK {
		t.Fatalf("trace: %d\n%s", w.Code, w.Body.String())
	}
	if !json.Valid(w.Body.Bytes()) {
		t.Errorf("trace is not valid JSON:\n%.300s", w.Body.String())
	}
	if body := w.Body.String(); !strings.Contains(body, "memory") || !strings.Contains(body, `"ph":"X"`) {
		t.Errorf("trace lacks sim lanes/spans:\n%.300s", body)
	}
	if w := get(t, s, "/debug/trace/999"); w.Code != http.StatusNotFound {
		t.Errorf("unknown trace id: %d, want 404", w.Code)
	}
}

// TestTraceRingEviction fills the ring past capacity and checks old
// traces age out while recent ones survive.
func TestTraceRingEviction(t *testing.T) {
	s := New(Config{RingSize: 2, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	for i := 0; i < 3; i++ {
		post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	}
	if w := get(t, s, "/debug/trace/1"); w.Code != http.StatusNotFound {
		t.Errorf("evicted trace still served: %d", w.Code)
	}
	if w := get(t, s, "/debug/trace/3"); w.Code != http.StatusOK {
		t.Errorf("recent trace missing: %d", w.Code)
	}
}

func TestHealthAndReady(t *testing.T) {
	s := testServer(t)
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz: %d", w.Code)
	}
	if w := get(t, s, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz: %d", w.Code)
	}
	s.SetReady(false)
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: %d, want 503", w.Code)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz must stay live while draining: %d", w.Code)
	}
}

func TestPprofIndex(t *testing.T) {
	s := testServer(t)
	if w := get(t, s, "/debug/pprof/"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d", w.Code)
	}
}

// TestRunGracefulShutdown exercises the real listener path: Run serves
// until the context is cancelled, flips readiness, drains, and returns
// nil; afterwards the port no longer accepts connections.
func TestRunGracefulShutdown(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, l, s, 5*time.Second) }()

	url := fmt.Sprintf("http://%s", addr)
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	data, err := json.Marshal(TaskRequest{Tasks: commonRelease()})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(data))
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("solve over TCP: %v %v", err, sr)
	}
	io.Copy(io.Discard, sr.Body)
	sr.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
