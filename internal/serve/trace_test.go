// Tests for the request-lifecycle tracing surfaces: wall-clock span
// trees, W3C traceparent propagation, Server-Timing stage breakdowns,
// latency exemplars, decision provenance, and the tracing-off
// byte-identity invariant.
package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// wallSpan / wallDoc mirror the wspan JSON shape for assertions.
type wallSpan struct {
	Name    string            `json:"name"`
	Parent  int32             `json:"parent"`
	SpanID  string            `json:"span_id"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Notes   map[string]string `json:"notes"`
}

type wallDoc struct {
	TraceID      string     `json:"trace_id"`
	RemoteParent string     `json:"remote_parent"`
	Spans        []wallSpan `json:"spans"`
}

// debugDoc decodes the combined /debug/trace/{id} document.
type debugDoc struct {
	Request      string          `json:"request"`
	Route        string          `json:"route"`
	Status       int             `json:"status"`
	TraceID      string          `json:"trace_id"`
	WallTrace    *wallDoc        `json:"wall_trace"`
	Provenance   *Explanation    `json:"provenance"`
	VirtualTrace json.RawMessage `json:"virtual_trace"`
}

func fetchTrace(t *testing.T, s *Server, id string) debugDoc {
	t.Helper()
	w := get(t, s, "/debug/trace/"+id)
	if w.Code != http.StatusOK {
		t.Fatalf("trace %s: %d\n%s", id, w.Code, w.Body.String())
	}
	var doc debugDoc
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad trace doc: %v\n%.400s", err, w.Body.String())
	}
	return doc
}

// TestSpanTreeComplete checks the tentpole invariant: every /v1 request
// produces a complete span tree — request root with admission, decode,
// cache (solve nested under it), encode and write children, all ended,
// each child contained in the root.
func TestSpanTreeComplete(t *testing.T) {
	s := testServer(t)
	if w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}); w.Code != http.StatusOK {
		t.Fatalf("solve: %d", w.Code)
	}
	doc := fetchTrace(t, s, "1")
	if doc.Request != "1" || doc.Route != "/v1/solve" || doc.Status != http.StatusOK {
		t.Errorf("doc identity = %q %q %d", doc.Request, doc.Route, doc.Status)
	}
	if doc.WallTrace == nil {
		t.Fatalf("sampled request has no wall trace:\n%+v", doc)
	}
	if doc.TraceID != doc.WallTrace.TraceID || len(doc.TraceID) != 32 {
		t.Errorf("trace id mismatch: %q vs %q", doc.TraceID, doc.WallTrace.TraceID)
	}
	spans := doc.WallTrace.Spans
	if len(spans) == 0 || spans[0].Name != "request" || spans[0].Parent != -1 {
		t.Fatalf("no request root span: %+v", spans)
	}
	root := spans[0]
	byName := map[string]wallSpan{}
	for _, sp := range spans {
		if sp.DurNs < 0 {
			t.Errorf("span %q never ended", sp.Name)
		}
		if sp.Parent >= 0 {
			if int(sp.Parent) >= len(spans) {
				t.Fatalf("span %q has out-of-range parent %d", sp.Name, sp.Parent)
			}
			if sp.StartNs+sp.DurNs > root.StartNs+root.DurNs {
				t.Errorf("span %q (%d+%dns) escapes the root (%dns)", sp.Name, sp.StartNs, sp.DurNs, root.DurNs)
			}
		}
		byName[sp.Name] = sp
	}
	for _, stage := range []string{"admission", "decode", "cache", "encode", "write"} {
		sp, ok := byName[stage]
		if !ok {
			t.Errorf("span tree missing stage %q: %+v", stage, spans)
			continue
		}
		if sp.Parent != 0 {
			t.Errorf("stage %q not a direct child of the root (parent %d)", stage, sp.Parent)
		}
	}
	solve, ok := byName["solve"]
	if !ok {
		t.Fatalf("no solve span: %+v", spans)
	}
	if spans[solve.Parent].Name != "cache" {
		t.Errorf("solve span nests under %q, want cache", spans[solve.Parent].Name)
	}
	// Decision provenance rides on the spans.
	if byName["cache"].Notes["outcome"] != "miss" {
		t.Errorf("cache span outcome = %q, want miss", byName["cache"].Notes["outcome"])
	}
	if solve.Notes["gaps"] == "" || solve.Notes["memory_sleeps"] == "" {
		t.Errorf("solve span lacks provenance notes: %+v", solve.Notes)
	}
	if doc.Provenance == nil || doc.Provenance.Scheduler != "auto" {
		t.Errorf("doc lacks provenance: %+v", doc.Provenance)
	}
	if len(doc.VirtualTrace) == 0 || !json.Valid(doc.VirtualTrace) {
		t.Errorf("doc lacks an embedded virtual trace")
	}
}

// TestServerTimingAndTraceparentHeaders checks the response carries the
// W3C traceparent of the request's trace and a Server-Timing breakdown
// of the stages that ended before the status line.
func TestServerTimingAndTraceparentHeaders(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	tp := w.Header().Get("Traceparent")
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("traceparent header = %q", tp)
	}
	st := w.Header().Get("Server-Timing")
	for _, stage := range []string{"admission;dur=", "decode;dur=", "cache;dur=", "encode;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("Server-Timing %q missing %q", st, stage)
		}
	}
	if strings.Contains(st, "write;dur=") {
		t.Errorf("Server-Timing %q contains the write stage, which cannot have ended before the header", st)
	}
	// The header's trace ID must resolve at /debug/trace.
	doc := fetchTrace(t, s, tp[3:35])
	if doc.Request != "1" {
		t.Errorf("trace-ID lookup resolved request %q, want 1", doc.Request)
	}
}

// TestTraceparentPropagation sends an upstream traceparent: the server
// must adopt the trace ID, remember the remote parent span, and echo the
// trace ID in its own traceparent response header.
func TestTraceparentPropagation(t *testing.T) {
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	s := testServer(t)
	w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()},
		map[string]string{"traceparent": upstream})
	if w.Code != http.StatusOK {
		t.Fatalf("solve: %d", w.Code)
	}
	tp := w.Header().Get("Traceparent")
	if !strings.HasPrefix(tp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("response traceparent %q did not adopt the upstream trace ID", tp)
	}
	doc := fetchTrace(t, s, "1")
	if doc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q, want the upstream one", doc.TraceID)
	}
	if doc.WallTrace.RemoteParent != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q", doc.WallTrace.RemoteParent)
	}
	// A garbled header degrades to a fresh local trace, never an error.
	w = postHdr(t, s, "/v1/solve", TaskRequest{Tasks: generalSet()},
		map[string]string{"traceparent": "00-zzzz-bad-01"})
	if w.Code == http.StatusOK || w.Code == http.StatusUnprocessableEntity {
		if doc := fetchTrace(t, s, "2"); doc.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" || doc.TraceID == "" {
			t.Errorf("garbled traceparent: trace id = %q, want a fresh local one", doc.TraceID)
		}
	} else {
		t.Errorf("garbled traceparent broke the request: %d", w.Code)
	}
}

// TestExemplarsResolve checks the OpenMetrics latency buckets carry
// trace_id exemplars and that those IDs resolve at /debug/trace.
func TestExemplarsResolve(t *testing.T) {
	s := testServer(t)
	post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	m := get(t, s, "/metrics").Body.String()
	re := regexp.MustCompile(`sdem_serve_latency_s_bucket\{[^}]*\} \d+ # \{trace_id="([0-9a-f]{32})"\}`)
	match := re.FindStringSubmatch(m)
	if match == nil {
		t.Fatalf("no latency exemplar in exposition:\n%s", m)
	}
	if doc := fetchTrace(t, s, match[1]); doc.TraceID != match[1] {
		t.Errorf("exemplar trace %s resolved to doc %q", match[1], doc.TraceID)
	}
}

// TestTracingOffByteIdentity is the CI-diffed invariant: with wall
// tracing disabled, response bodies are byte-identical to the sampled
// server's, the trace headers vanish, and the latency family carries no
// exemplars.
func TestTracingOffByteIdentity(t *testing.T) {
	on := testServer(t)
	off := New(Config{TraceSample: -1, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	reqs := []struct {
		path string
		body any
	}{
		{"/v1/solve", TaskRequest{Tasks: commonRelease(), IncludeSchedule: true}},
		{"/v1/simulate", TaskRequest{Tasks: generalSet()}},
		{"/v1/execute", TaskRequest{Tasks: commonRelease(), Faults: &FaultSpec{Seed: 3, Intensity: 0.5}}},
		{"/v1/explain", TaskRequest{Tasks: commonRelease()}},
	}
	for _, rq := range reqs {
		won, woff := post(t, on, rq.path, rq.body), post(t, off, rq.path, rq.body)
		if won.Body.String() != woff.Body.String() {
			t.Errorf("%s body differs with tracing on/off:\n%s\n---\n%s", rq.path, won.Body.String(), woff.Body.String())
		}
		if h := woff.Header().Get("Traceparent"); h != "" {
			t.Errorf("%s: tracing-off response carries traceparent %q", rq.path, h)
		}
		if h := woff.Header().Get("Server-Timing"); h != "" {
			t.Errorf("%s: tracing-off response carries Server-Timing %q", rq.path, h)
		}
	}
	if m := get(t, off, "/metrics").Body.String(); strings.Contains(m, "trace_id") {
		t.Errorf("tracing-off exposition carries exemplars:\n%s", m)
	}
	// The unsampled trace doc still replays the virtual trace, minus the
	// wall tree.
	w := get(t, off, "/debug/trace/1")
	if w.Code != http.StatusOK {
		t.Fatalf("unsampled trace: %d", w.Code)
	}
	var doc debugDoc
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.WallTrace != nil || doc.TraceID != "" {
		t.Errorf("unsampled doc has a wall trace: %+v", doc)
	}
	if len(doc.VirtualTrace) == 0 {
		t.Errorf("unsampled doc lost the virtual trace")
	}
	if w := get(t, off, "/debug/trace/1?format=wall"); w.Code != http.StatusNotFound {
		t.Errorf("format=wall on unsampled request: %d, want 404", w.Code)
	}
}

// TestTraceSampling checks TraceSample=k traces every k-th request only.
func TestTraceSampling(t *testing.T) {
	s := New(Config{TraceSample: 2, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	w1 := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}) // id 1: unsampled
	w2 := post(t, s, "/v1/solve", TaskRequest{Tasks: generalSet()})    // id 2: sampled
	if h := w1.Header().Get("Traceparent"); h != "" {
		t.Errorf("request 1 sampled under TraceSample=2: %q", h)
	}
	if h := w2.Header().Get("Traceparent"); h == "" {
		t.Error("request 2 not sampled under TraceSample=2")
	}
}

// TestExplainEndpoint checks /v1/explain surfaces the paper's per-gap
// decisions: break-even thresholds, margins, and race/sleep/crawl
// classifications consistent with their own summary.
func TestExplainEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/explain", TaskRequest{Tasks: commonRelease()})
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d\n%s", w.Code, w.Body.String())
	}
	var resp ExplainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	ex := resp.Explanation
	if ex == nil {
		t.Fatal("no explanation")
	}
	if ex.Scheduler != "auto" || resp.Scheduler != "auto" {
		t.Errorf("scheduler = %q/%q", ex.Scheduler, resp.Scheduler)
	}
	// The default platform's core break-even is 0 (sleeping always pays);
	// the memory threshold and critical speed must be real.
	if ex.CoreBreakEvenS < 0 || ex.MemoryBreakEvenS <= 0 || ex.CriticalSpeed <= 0 {
		t.Errorf("thresholds not surfaced: %+v", ex)
	}
	if ex.Summary.Segments == 0 || ex.Summary.Segments != ex.Summary.Races+ex.Summary.Crawls+ex.Summary.Dvs {
		t.Errorf("segment classification inconsistent: %+v", ex.Summary)
	}
	if ex.Summary.Gaps != ex.Summary.Sleeps+ex.Summary.Idles {
		t.Errorf("gap classification inconsistent: %+v", ex.Summary)
	}
	if !ex.Truncated && len(ex.Gaps) != ex.Summary.Gaps {
		t.Errorf("gap detail (%d) disagrees with summary (%d)", len(ex.Gaps), ex.Summary.Gaps)
	}
	for _, g := range ex.Gaps {
		if g.Decision != "sleep" && g.Decision != "idle" {
			t.Errorf("gap decision %q", g.Decision)
		}
		if got := g.LengthS - g.BreakEvenS; abs(got-g.MarginS) > 1e-12 {
			t.Errorf("gap margin %g != len-xi %g", g.MarginS, got)
		}
		if g.Decision == "sleep" && g.NetGainJ < 0 {
			t.Errorf("sleeping gap with negative gain: %+v", g)
		}
	}
	for _, sg := range ex.Speeds {
		if sg.Decision != "race" && sg.Decision != "crawl" && sg.Decision != "dvs" {
			t.Errorf("segment decision %q", sg.Decision)
		}
	}

	// An online scheduler explains through the same endpoint.
	w = post(t, s, "/v1/explain", TaskRequest{Tasks: generalSet(), Scheduler: "sdem-on"})
	if w.Code != http.StatusOK {
		t.Fatalf("explain sdem-on: %d\n%s", w.Code, w.Body.String())
	}
	var on ExplainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &on); err != nil {
		t.Fatal(err)
	}
	if on.Explanation == nil || on.Explanation.Scheduler != "sdem-on" {
		t.Errorf("online explanation = %+v", on.Explanation)
	}

	// Explains share the schedule cache with solves: explaining the same
	// set again is a hit.
	post(t, s, "/v1/explain", TaskRequest{Tasks: commonRelease()})
	if m := get(t, s, "/metrics").Body.String(); !strings.Contains(m, `sdem_serve_cache_total{op="solve",result="hit"} 1`) {
		t.Errorf("repeated explain did not hit the cache:\n%s", m)
	}
}

// TestBatchSpanTree checks batch items appear as parallel item spans
// under the batch request root.
func TestBatchSpanTree(t *testing.T) {
	s := testServer(t)
	items := []BatchItemRequest{
		{TaskRequest: TaskRequest{Tasks: commonRelease()}},
		{Op: "simulate", TaskRequest: TaskRequest{Tasks: generalSet()}},
	}
	if w := post(t, s, "/v1/batch", BatchRequest{Requests: items}); w.Code != http.StatusOK {
		t.Fatalf("batch: %d", w.Code)
	}
	doc := fetchTrace(t, s, "1")
	if doc.WallTrace == nil {
		t.Fatal("no wall trace")
	}
	var itemSpans int
	for _, sp := range doc.WallTrace.Spans {
		if sp.Name == "item" {
			itemSpans++
			if sp.Parent != 0 {
				t.Errorf("item span parent = %d, want root", sp.Parent)
			}
		}
	}
	if itemSpans != len(items) {
		t.Errorf("item spans = %d, want %d", itemSpans, len(items))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
