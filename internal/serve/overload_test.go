// Overload and degradation tests: admission control, load shedding,
// deadline budgets, panic containment, the coalescing schedule cache,
// chaos replay, and graceful drain under load. These are the serving
// layer's robustness contract — the counterpart of the solver's
// determinism contract.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdem/internal/faults"
	"sdem/internal/task"
)

func configuredServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg)
}

// postHdr is post with extra request headers.
func postHdr(t *testing.T, s *Server, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// agreeableSet builds a large feasible agreeable task set — big enough
// that its DP crosses many cancellation checkpoints.
func agreeableSet(n int) task.Set {
	ts := make(task.Set, n)
	for i := range ts {
		r := float64(i) * 1e-4
		ts[i] = task.Task{ID: i, Release: r, Deadline: r + 0.05, Workload: 1e4}
	}
	return ts
}

// stampStripped removes the two per-request fields (request ID, trace
// URL) a cached response legitimately differs in.
func stampStripped(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	delete(m, "request")
	delete(m, "trace_url")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestBudgetHeaderValidation(t *testing.T) {
	s := testServer(t)
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}, map[string]string{"X-Budget-Ms": bad})
		if w.Code != http.StatusBadRequest {
			t.Errorf("X-Budget-Ms=%q: %d, want 400", bad, w.Code)
		}
	}
	// A generous budget is capped, not rejected.
	w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}, map[string]string{"X-Budget-Ms": "999999999"})
	if w.Code != http.StatusOK {
		t.Errorf("huge budget: %d, want 200 (capped at MaxBudget)\n%s", w.Code, w.Body.String())
	}
}

// TestShedQueueFull drives the route's gate to capacity and checks the
// overflow request sheds instantly with 429 + Retry-After and the
// queue_full reason — without ever reaching a handler.
func TestShedQueueFull(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.Concurrency = 1; c.QueueDepth = 1 })
	g := s.gates["/v1/solve"]
	// Fill the gate to capacity (1 executing + 1 queued) from the side.
	g.admitted.Store(int64(g.concurrency + g.depth))
	defer g.admitted.Store(0)

	w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429\n%s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	if !strings.Contains(w.Body.String(), shedQueueFull) {
		t.Errorf("shed body lacks reason: %s", w.Body.String())
	}
	if m := get(t, s, "/metrics").Body.String(); !strings.Contains(m, `sdem_serve_shed_total{reason="queue_full",route="/v1/solve"} 1`) {
		t.Errorf("shed counter missing:\n%s", m)
	}
}

// TestShedDeadline seeds the gate with a backlog whose estimated drain
// time dwarfs the request budget: the admission test must refuse
// up-front (reason deadline) with a Retry-After reflecting the backlog.
func TestShedDeadline(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.Concurrency = 1; c.QueueDepth = 64 })
	g := s.gates["/v1/solve"]
	g.ewmaNs.Store(int64(time.Hour)) // each queued request "costs" an hour
	g.admitted.Store(1)              // one executing, so this request must wait
	defer func() { g.admitted.Store(0); g.ewmaNs.Store(0) }()

	w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("doomed request: %d, want 429\n%s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), shedDeadline) {
		t.Errorf("shed body lacks reason: %s", w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "3600" {
		t.Errorf("Retry-After = %q, want %q (one EWMA hour)", ra, "3600")
	}
}

// TestShedTimeout occupies the route's only slot so an admitted request
// queues until its budget runs out, then sheds with reason timeout.
func TestShedTimeout(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.Concurrency = 1; c.QueueDepth = 4 })
	g := s.gates["/v1/solve"]
	g.slots <- struct{}{} // a phantom request holds the slot forever
	defer func() { <-g.slots }()

	w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()}, map[string]string{"X-Budget-Ms": "30"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queued-out request: %d, want 429\n%s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), shedTimeout) {
		t.Errorf("shed body lacks reason: %s", w.Body.String())
	}
}

// TestBudgetExpiryMidSolve sends a solve big enough to outlive a 1 ms
// budget: a cancellation checkpoint must abandon the DP and the request
// must surface as a mid-flight shed — 429 with reason budget, never a
// 500 and never a torn response.
func TestBudgetExpiryMidSolve(t *testing.T) {
	s := testServer(t)
	w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: agreeableSet(12)}, map[string]string{"X-Budget-Ms": "1"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("expired solve: %d, want 429\n%s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("mid-flight shed missing Retry-After")
	}
	if m := get(t, s, "/metrics").Body.String(); !strings.Contains(m, `sdem_serve_shed_total{reason="budget",route="/v1/solve"} 1`) {
		t.Errorf("budget shed counter missing:\n%s", m)
	}
	// The same set with a sane budget must still solve: nothing sticky.
	if w := postHdr(t, s, "/v1/solve", TaskRequest{Tasks: agreeableSet(12)}, map[string]string{"X-Budget-Ms": "25000"}); w.Code != http.StatusOK {
		t.Errorf("follow-up solve: %d\n%s", w.Code, w.Body.String())
	}
}

// TestPanicBecomes500 injects panics via the chaos plan: every request
// must come back as a JSON 500 with the panic counter bumped, and the
// server must keep serving afterwards.
func TestPanicBecomes500(t *testing.T) {
	plan := faults.NewServePlan(faults.ServeConfig{Rate: 1, Kinds: []faults.ServeKind{faults.ServePanic}}, 1)
	s := configuredServer(t, func(c *Config) { c.Chaos = &plan })
	for i := 0; i < 2; i++ {
		w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("panicking request %d: %d, want 500\n%s", i, w.Code, w.Body.String())
		}
		var resp errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || !strings.Contains(resp.Error, "panicked") {
			t.Errorf("panic response not a clean JSON error: %v %q", err, w.Body.String())
		}
	}
	m := get(t, s, "/metrics").Body.String()
	if !strings.Contains(m, `sdem_serve_panics_total{route="/v1/solve"} 2`) {
		t.Errorf("panic counter missing:\n%s", m)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("server unhealthy after panics: %d", w.Code)
	}
}

// TestChaosReplayDeterministic replays the same request sequence on two
// servers with the same chaos plan: the injected-fault pattern (and so
// the status-code sequence) must be identical — same seed, same storm.
func TestChaosReplayDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		plan := faults.NewServePlan(faults.ServeConfig{Rate: 0.5, Kinds: []faults.ServeKind{faults.ServeError}}, seed)
		s := configuredServer(t, func(c *Config) { c.Chaos = &plan })
		codes := make([]int, 0, 20)
		for i := 0; i < 20; i++ {
			codes = append(codes, post(t, s, "/v1/simulate", TaskRequest{Tasks: generalSet()}).Code)
		}
		return codes
	}
	a, b := run(42), run(42)
	var faulted int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %d vs %d under the same chaos seed", i, a[i], b[i])
		}
		if a[i] == http.StatusInternalServerError {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Errorf("chaos at rate 0.5 faulted %d/%d requests; plan looks degenerate", faulted, len(a))
	}
}

// TestCacheHitByteIdentity solves the same task set twice: the second
// response must be byte-identical to the first except the request ID
// and trace URL, and the cache counters must show one miss, one hit.
func TestCacheHitByteIdentity(t *testing.T) {
	s := testServer(t)
	w1 := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease(), IncludeSchedule: true})
	w2 := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease(), IncludeSchedule: true})
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("solves: %d, %d", w1.Code, w2.Code)
	}
	// Strict byte identity modulo the stamp: rewriting the two stamp
	// fields of response 1 must reproduce response 2 exactly.
	rewritten := strings.Replace(w1.Body.String(), `"request": "1"`, `"request": "2"`, 1)
	rewritten = strings.Replace(rewritten, `"trace_url": "/debug/trace/1"`, `"trace_url": "/debug/trace/2"`, 1)
	if rewritten != w2.Body.String() {
		t.Errorf("cached response not byte-identical:\n%s\n---\n%s", w1.Body.String(), w2.Body.String())
	}
	m := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`sdem_serve_cache_total{op="solve",result="miss"} 1`,
		`sdem_serve_cache_total{op="solve",result="hit"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestCachePermutationInvariant sends the same task multiset in a
// different JSON order: the canonical key must match (a hit, not a
// second solve) and the response must be identical modulo the stamp.
func TestCachePermutationInvariant(t *testing.T) {
	tasks := commonRelease()
	reversed := make(task.Set, len(tasks))
	for i, tk := range tasks {
		reversed[len(tasks)-1-i] = tk
	}
	s := testServer(t)
	w1 := post(t, s, "/v1/solve", TaskRequest{Tasks: tasks, IncludeSchedule: true})
	w2 := post(t, s, "/v1/solve", TaskRequest{Tasks: reversed, IncludeSchedule: true})
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("solves: %d, %d", w1.Code, w2.Code)
	}
	if got, want := stampStripped(t, w2.Body.Bytes()), stampStripped(t, w1.Body.Bytes()); got != want {
		t.Errorf("permuted task set produced a different response:\n%s\n---\n%s", want, got)
	}
	if m := get(t, s, "/metrics").Body.String(); !strings.Contains(m, `sdem_serve_cache_total{op="solve",result="hit"} 1`) {
		t.Errorf("permuted request did not hit the cache:\n%s", m)
	}
}

// TestPermutationInvariantUncached is the semantic ground truth under
// the cache: with caching disabled, solving or simulating a permuted
// task set must still produce the identical response. If this breaks,
// serving cached responses for permuted sets would be a lie.
func TestPermutationInvariantUncached(t *testing.T) {
	reverse := func(ts task.Set) task.Set {
		out := make(task.Set, len(ts))
		for i, tk := range ts {
			out[len(ts)-1-i] = tk
		}
		return out
	}
	s := configuredServer(t, func(c *Config) { c.CacheSize = -1 })
	for _, tc := range []struct {
		path  string
		tasks task.Set
	}{
		{"/v1/solve", commonRelease()}, // solve needs a solvable model
		{"/v1/simulate", generalSet()},
	} {
		var bodies []string
		for _, ts := range []task.Set{tc.tasks, reverse(tc.tasks)} {
			w := post(t, s, tc.path, TaskRequest{Tasks: ts, IncludeSchedule: true})
			if w.Code != http.StatusOK {
				t.Fatalf("%s: %d\n%s", tc.path, w.Code, w.Body.String())
			}
			bodies = append(bodies, stampStripped(t, w.Body.Bytes()))
		}
		if bodies[0] != bodies[1] {
			t.Errorf("%s: permuted input changed the uncached response:\n%s\n---\n%s", tc.path, bodies[0], bodies[1])
		}
	}
}

// TestCacheDisabled checks CacheSize < 0 really bypasses the cache: two
// identical solves, no cache metrics at all.
func TestCacheDisabled(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.CacheSize = -1 })
	post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	if m := get(t, s, "/metrics").Body.String(); strings.Contains(m, "sdem_serve_cache") {
		t.Errorf("disabled cache still recorded outcomes:\n%s", m)
	}
}

// TestBodyTooLarge413 posts past MaxBody and expects the dedicated 413
// with the limit spelled out, not a generic 400.
func TestBodyTooLarge413(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.MaxBody = 64 })
	w := post(t, s, "/v1/solve", TaskRequest{Tasks: commonRelease()})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413\n%s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "64-byte") {
		t.Errorf("413 body does not name the limit: %s", w.Body.String())
	}
}

// TestDrainMidBatch is the graceful-drain contract under load: shutdown
// arriving while a batch is mid-flight must never tear the response —
// the client still receives the complete JSON body, and Run returns nil.
func TestDrainMidBatch(t *testing.T) {
	s := configuredServer(t, func(c *Config) {
		c.Workers = 1
		c.DefaultBudget = 25 * time.Second // the batch must finish, not shed
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, l, s, 30*time.Second) }()
	url := "http://" + l.Addr().String()
	waitHealthy(t, url)

	// A batch heavy enough to still be computing when shutdown lands.
	items := make([]BatchItemRequest, 6)
	for i := range items {
		items[i] = BatchItemRequest{TaskRequest: TaskRequest{Tasks: agreeableSet(8)}}
	}
	data, err := json.Marshal(BatchRequest{Requests: items})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(data))
		if err != nil {
			resc <- result{err: err}
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			err = rerr
		}
		resc <- result{code: resp.StatusCode, body: body, err: err}
	}()

	time.Sleep(100 * time.Millisecond) // let the batch start computing
	cancel()                           // SIGTERM-equivalent mid-batch

	res := <-resc
	if res.err != nil {
		t.Fatalf("batch torn by shutdown: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("batch during drain: %d\n%s", res.code, res.body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(res.body, &batch); err != nil {
		t.Fatalf("batch response not complete JSON after drain: %v", err)
	}
	if len(batch.Results) != len(items) {
		t.Errorf("drained batch returned %d results, want %d", len(batch.Results), len(items))
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}

// TestSlowClientReadTimeout dribbles a request body slower than the
// configured ReadTimeout: the server must cut the connection instead of
// letting the slow client pin it.
func TestSlowClientReadTimeout(t *testing.T) {
	s := configuredServer(t, func(c *Config) { c.ReadTimeout = 300 * time.Millisecond })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- Run(ctx, l, s, 5*time.Second) }()
	waitHealthy(t, "http://"+l.Addr().String())

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	header := "POST /v1/solve HTTP/1.1\r\nHost: sdemd\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n"
	if _, err := conn.Write([]byte(header)); err != nil {
		t.Fatal(err)
	}
	// Dribble far slower than ReadTimeout and wait for the cutoff.
	deadline := time.After(5 * time.Second)
	cut := make(chan struct{})
	go func() {
		for {
			if _, err := conn.Write([]byte("{")); err != nil {
				close(cut)
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
	}()
	select {
	case <-cut:
	case <-deadline:
		t.Fatal("server never cut off the slow client")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// waitHealthy polls /healthz until the Run goroutine is serving.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never came up")
}
