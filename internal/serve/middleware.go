// Request middleware: ID assignment, deadline budgets, admission
// control, panic containment, chaos taps, per-request child recorders,
// wall-clock span trees, structured logging, and the service's
// wall-clock series.
//
// This file is the module's ONLY wall-clock site outside the telemetry
// quarantine (internal/telemetry and internal/telemetry/wspan, enforced
// by the telemetrycheck analyzer): request latency and service time are
// inherently wall quantities, and they stay quarantined here — handlers
// and solvers below the middleware see virtual time only (plus the
// deadline context, whose polls are pass/fail and never leak a
// timestamp, and opaque wspan handles whose clock reads live inside the
// quarantine), so every metric they record remains deterministic in the
// request sequence.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdem/internal/faults"
	"sdem/internal/telemetry"
	"sdem/internal/telemetry/wspan"
)

// Metric names of the serving layer.
const (
	// metricRequests counts finished requests by route and status code.
	metricRequests = "sdem.serve.requests"
	// metricLatency is the wall request latency histogram by route — the
	// one nondeterministic metric family of the exposition. Sampled
	// requests attach a trace_id exemplar to the bucket they land in.
	metricLatency = "sdem.serve.latency_s"
	// metricInflight gauges currently executing requests.
	metricInflight = "sdem.serve.inflight"
	// metricEnergy distributes per-request audited virtual-time energy by
	// route (recorded by handlers on the request child).
	metricEnergy = "sdem.serve.request_energy_j"
	// metricTasks distributes request task-set sizes by route.
	metricTasks = "sdem.serve.request_tasks"
	// metricShed counts load-shed requests by route and reason
	// (queue_full, deadline, timeout, budget).
	metricShed = "sdem.serve.shed"
	// metricPanics counts handler panics converted into 500s by route.
	metricPanics = "sdem.serve.panics"
	// metricChaos counts injected serve-layer faults by route and kind.
	metricChaos = "sdem.serve.chaos"
	// metricLatencyMs names the windowed-series latency sketch: the same
	// wall measurement as metricLatency, in milliseconds, sketched per
	// request-ordinal window for /debug/series (see Config.SeriesWindow).
	metricLatencyMs = "sdem.serve.latency_ms"
	// metricCache counts schedule-cache outcomes by op and result
	// (hit, miss, coalesced). The hit/coalesced split depends on request
	// timing; the per-op total and the miss count are deterministic in
	// the request multiset.
	metricCache = "sdem.serve.cache"
)

// requestCtx is the per-request state the middleware hands each API
// handler: the request ID, the child recorder all solver work records
// into, the wall-clock span tree (nil when the request is not sampled —
// wspan no-ops on nil), the route's interned metric labels, and the
// structured-log fields the handler attaches.
type requestCtx struct {
	id     string
	route  string // path part of the route pattern, e.g. "/v1/solve"
	tel    *telemetry.Recorder
	wall   *wspan.Trace
	labels *routeLabels

	mu    sync.Mutex
	attrs []slog.Attr
	prov  *Explanation // decision provenance of the request's schedule
}

// Set attaches a structured-log field to the request's completion line
// (scheduler kind, n, solve status, virtual-time energy, ...).
func (rc *requestCtx) Set(key string, value any) {
	rc.mu.Lock()
	rc.attrs = append(rc.attrs, slog.Any(key, value))
	rc.mu.Unlock()
}

// span opens a direct child of the request's root span; inert when the
// request is unsampled.
func (rc *requestCtx) span(name string) wspan.Span {
	return rc.wall.Root().Start(name)
}

// root returns the request's root span handle (inert when unsampled).
func (rc *requestCtx) root() wspan.Span { return rc.wall.Root() }

// setProv attaches the request's decision provenance for /debug/trace
// and /v1/explain. Handlers call it once the schedule is known.
func (rc *requestCtx) setProv(ex *Explanation) {
	if ex == nil {
		return
	}
	rc.mu.Lock()
	rc.prov = ex
	rc.mu.Unlock()
}

// apiHandler is a request handler running under the middleware.
type apiHandler func(rc *requestCtx, w http.ResponseWriter, r *http.Request)

// statusWriter captures the response status code for the log and the
// request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// budgetOf resolves a request's deadline budget: the client's
// X-Budget-Ms header when present (capped at MaxBudget), the server
// default otherwise.
func (s *Server) budgetOf(r *http.Request) (time.Duration, error) {
	b := s.cfg.DefaultBudget
	if v := r.Header.Get("X-Budget-Ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return 0, fmt.Errorf("bad X-Budget-Ms %q: want a positive integer count of milliseconds", v)
		}
		b = time.Duration(ms) * time.Millisecond
	}
	if b > s.cfg.MaxBudget {
		b = s.cfg.MaxBudget
	}
	return b, nil
}

// middleware wraps an API handler: assigns the monotone request ID,
// starts the wall-clock trace (adopting an incoming W3C traceparent when
// sampled), reserves the request's trace-ring slot, resolves the
// deadline budget, runs the route's admission gate, creates the child
// recorder (pid = request ID, the sweep engine's per-work-item pattern),
// contains handler panics, logs one structured completion line, feeds
// the route latency histogram (with a trace-ID exemplar when sampled)
// and in-flight gauge, folds the child's metrics into the root recorder,
// and seals the ring entry with the child, span tree and provenance.
func (s *Server) middleware(pattern string, h apiHandler) http.Handler {
	route := pattern
	if _, r, ok := strings.Cut(pattern, " "); ok {
		route = r
	}
	lbl := s.labels[route]
	g := s.gates[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		rc := &requestCtx{id: strconv.FormatInt(id, 10), route: route, labels: lbl, tel: s.tel.Child(int(id))}
		if k := s.cfg.TraceSample; k > 0 && id%int64(k) == 0 {
			rc.wall, _ = wspan.ParseTraceparent(r.Header.Get("traceparent"), "request")
		}
		entry := s.ring.reserve(rc.id, rc.wall.TraceID())
		sw := &statusWriter{ResponseWriter: w}
		if rc.wall != nil {
			sw.Header().Set("Traceparent", rc.wall.Traceparent())
		}
		s.tel.Gauge(metricInflight, float64(s.inflight.Add(1)))

		//lint:allow telemetrycheck: request latency is a wall quantity by definition and feeds only the exposition's nondeterministic latency family
		start := time.Now()
		s.serveOne(rc, sw, r, h, g, id)
		//lint:allow telemetrycheck: see start above — the matching end of the wall-latency measurement
		latency := time.Since(start)
		rc.wall.Finish()

		s.tel.Gauge(metricInflight, float64(s.inflight.Add(-1)))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.tel.CountL(metricRequests, lbl.code(sw.code), 1)
		traceID := rc.wall.TraceID()
		if traceID != "" {
			s.tel.ObserveExL(metricLatency, lbl.route, latency.Seconds(), "trace_id="+traceID)
		} else {
			s.tel.ObserveL(metricLatency, lbl.route, latency.Seconds())
		}
		s.tel.MergeMetrics(rc.tel)
		// One atomic tick per completed request: the merged metrics land in
		// the window that was open at this completion ordinal, and the
		// latency observation lands in the same window — the ordinal
		// advances only after both.
		s.col.TickWith(metricLatencyMs, float64(latency.Nanoseconds())/1e6)
		rc.mu.Lock()
		prov := rc.prov
		rc.mu.Unlock()
		entry.seal(rc.tel, rc.wall, prov, route, sw.code)

		rc.mu.Lock()
		attrs := append([]slog.Attr{
			slog.String("id", rc.id),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("code", sw.code),
			slog.Float64("latency_ms", float64(latency.Nanoseconds())/1e6),
		}, rc.attrs...)
		rc.mu.Unlock()
		if traceID != "" {
			attrs = append(attrs, slog.String("trace_id", traceID))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// serveOne runs the admission-controlled, budget-bounded, panic-contained
// part of one request: everything between the latency measurement points.
func (s *Server) serveOne(rc *requestCtx, sw *statusWriter, r *http.Request, h apiHandler, g *gate, id int64) {
	budget, err := s.budgetOf(r)
	if err != nil {
		httpError(rc, sw, http.StatusBadRequest, err)
		return
	}
	rc.Set("budget_ms", budget.Milliseconds())
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	r = r.WithContext(ctx)

	if g != nil {
		asp := rc.span("admission")
		ok, reason, retryAfter := g.admit(ctx, budget)
		if !ok {
			asp.Note("shed", reason)
			asp.End()
			s.shed(rc, sw, reason, retryAfter)
			return
		}
		asp.End()
		//lint:allow telemetrycheck: service time (execution only, queue wait excluded) seeds the admission gate's EWMA and exists only on the wall clock
		execStart := time.Now()
		defer func() {
			//lint:allow telemetrycheck: see execStart above — the matching end of the service-time measurement
			g.release(time.Since(execStart))
		}()
	}

	s.invoke(rc, sw, r, h, id)

	// A 429 after admission means the budget expired mid-computation and
	// a cancellation checkpoint abandoned the solve.
	if sw.code == http.StatusTooManyRequests {
		sw.Header().Set("Retry-After", "1")
		s.tel.CountL(metricShed, rc.labels.shedReason(shedBudget), 1)
		rc.Set("shed", shedBudget)
	}
}

// shed refuses a request at the admission gate: 429, a Retry-After hint,
// and the shed-reason counter. Shedding never reaches a handler, so it
// costs microseconds no matter how overloaded the solvers are.
func (s *Server) shed(rc *requestCtx, sw *statusWriter, reason string, retryAfter int) {
	s.tel.CountL(metricShed, rc.labels.shedReason(reason), 1)
	rc.Set("status", "shed")
	rc.Set("shed", reason)
	sw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	rc.writeJSON(sw, http.StatusTooManyRequests,
		errorResponse{Error: "overloaded: " + reason + "; retry after " + strconv.Itoa(retryAfter) + "s"})
}

// invoke runs the handler under the panic barrier and the chaos tap. A
// panic becomes a 500 plus a counter increment instead of a dead
// connection — and if the handler had already started a response body,
// the status stands but the connection still survives the recover.
func (s *Server) invoke(rc *requestCtx, sw *statusWriter, r *http.Request, h apiHandler, id int64) {
	defer func() {
		if p := recover(); p != nil {
			s.tel.CountL(metricPanics, rc.labels.route, 1)
			rc.Set("status", "panic")
			rc.Set("panic", fmt.Sprint(p))
			if sw.code == 0 {
				rc.writeJSON(sw, http.StatusInternalServerError,
					errorResponse{Error: "internal error: handler panicked"})
			}
		}
	}()
	if s.cfg.Chaos != nil {
		if f, ok := s.cfg.Chaos.At(id); ok {
			s.tel.CountL(metricChaos, "kind="+f.Kind.String()+","+rc.labels.route, 1)
			rc.Set("chaos", f.Kind.String())
			switch f.Kind {
			case faults.ServeLatency:
				time.Sleep(time.Duration(f.Delay * float64(time.Second)))
			case faults.ServeError:
				httpError(rc, sw, http.StatusInternalServerError, errors.New("chaos: injected error"))
				return
			case faults.ServePanic:
				panic("chaos: injected panic (request " + rc.id + ")")
			}
		}
	}
	h(rc, sw, r)
}
