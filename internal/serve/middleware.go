// Request middleware: ID assignment, per-request child recorders,
// structured logging, and the service's wall-clock series.
//
// This file is the module's ONLY wall-clock site outside
// internal/telemetry (enforced by the telemetrycheck analyzer): request
// latency is inherently a wall quantity, and it stays quarantined here —
// handlers and solvers below the middleware see virtual time only, so
// every metric they record remains deterministic in the request
// sequence.
package serve

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdem/internal/telemetry"
)

// Metric names of the serving layer.
const (
	// metricRequests counts finished requests by route and status code.
	metricRequests = "sdem.serve.requests"
	// metricLatency is the wall request latency histogram by route — the
	// one nondeterministic metric family of the exposition.
	metricLatency = "sdem.serve.latency_s"
	// metricInflight gauges currently executing requests.
	metricInflight = "sdem.serve.inflight"
	// metricEnergy distributes per-request audited virtual-time energy by
	// route (recorded by handlers on the request child).
	metricEnergy = "sdem.serve.request_energy_j"
	// metricTasks distributes request task-set sizes by route.
	metricTasks = "sdem.serve.request_tasks"
)

// requestCtx is the per-request state the middleware hands each API
// handler: the request ID, the child recorder all solver work records
// into, and the structured-log fields the handler attaches.
type requestCtx struct {
	id    string
	route string // path part of the route pattern, e.g. "/v1/solve"
	tel   *telemetry.Recorder

	mu    sync.Mutex
	attrs []slog.Attr
}

// Set attaches a structured-log field to the request's completion line
// (scheduler kind, n, solve status, virtual-time energy, ...).
func (rc *requestCtx) Set(key string, value any) {
	rc.mu.Lock()
	rc.attrs = append(rc.attrs, slog.Any(key, value))
	rc.mu.Unlock()
}

// apiHandler is a request handler running under the middleware.
type apiHandler func(rc *requestCtx, w http.ResponseWriter, r *http.Request)

// statusWriter captures the response status code for the log and the
// request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// middleware wraps an API handler: assigns the monotone request ID,
// creates the child recorder (pid = request ID, the sweep engine's
// per-work-item pattern), logs one structured completion line, feeds the
// route latency histogram and in-flight gauge, folds the child's metrics
// into the root recorder, and parks the child in the trace ring.
func (s *Server) middleware(pattern string, h apiHandler) http.Handler {
	route := pattern
	if _, r, ok := strings.Cut(pattern, " "); ok {
		route = r
	}
	routeLabel := "route=" + route
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		rc := &requestCtx{id: strconv.FormatInt(id, 10), route: route, tel: s.tel.Child(int(id))}
		sw := &statusWriter{ResponseWriter: w}
		s.tel.Gauge(metricInflight, float64(s.inflight.Add(1)))

		//lint:allow telemetrycheck: request latency is a wall quantity by definition and feeds only the exposition's nondeterministic latency family
		start := time.Now()
		h(rc, sw, r)
		//lint:allow telemetrycheck: see start above — the matching end of the wall-latency measurement
		latency := time.Since(start)

		s.tel.Gauge(metricInflight, float64(s.inflight.Add(-1)))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.tel.CountL(metricRequests, "code="+strconv.Itoa(sw.code)+","+routeLabel, 1)
		s.tel.ObserveL(metricLatency, routeLabel, latency.Seconds())
		s.tel.MergeMetrics(rc.tel)
		s.ring.put(rc.id, rc.tel)

		rc.mu.Lock()
		attrs := append([]slog.Attr{
			slog.String("id", rc.id),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("code", sw.code),
			slog.Float64("latency_ms", float64(latency.Nanoseconds())/1e6),
		}, rc.attrs...)
		rc.mu.Unlock()
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
