// API handlers of the solve service. Handlers compute exclusively on
// virtual schedule/sim time through the existing solver, simulator and
// resilient-runtime APIs; every metric they record goes to the request's
// child recorder and is therefore deterministic in the request payload.
// Wall-clock stage bracketing (decode → cache → solve → encode → write)
// goes through opaque wspan handles, so no clock reads happen here.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"sdem/internal/baseline"
	"sdem/internal/core"
	"sdem/internal/encode"
	"sdem/internal/faults"
	"sdem/internal/online"
	"sdem/internal/parallel"
	"sdem/internal/power"
	"sdem/internal/resilient"
	"sdem/internal/schedule"
	"sdem/internal/sim"
	"sdem/internal/task"
	"sdem/internal/telemetry"
	"sdem/internal/telemetry/wspan"
)

// Online-policy provenance counters (bumped by internal/online); solve
// spans note their per-request deltas.
const (
	metricSkippedSolves = "sdem.solver.online.skipped_solves"
	metricPlanReuse     = "sdem.solver.online.plan_reuse"
)

// TaskRequest is the request envelope of the compute endpoints. Tasks
// uses the same JSON shape as the encode package's task documents.
type TaskRequest struct {
	// Tasks is the task set to schedule.
	Tasks task.Set `json:"tasks"`
	// System overrides the server's default platform when present.
	System *power.System `json:"system,omitempty"`
	// Cores overrides the platform core count when > 0.
	Cores int `json:"cores,omitempty"`
	// Scheduler selects the algorithm: "auto" (offline optimal; the
	// /v1/solve default) or an online policy — "sdem-on" (the
	// /v1/simulate default), "mbkp", "mbkps", "race", "critical".
	Scheduler string `json:"scheduler,omitempty"`
	// IncludeSchedule returns the full segment schedule in the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// Faults configures fault injection (/v1/execute only).
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec tunes /v1/execute fault injection and recovery.
type FaultSpec struct {
	// Seed makes the fault plan replayable; same request, same faults.
	Seed int64 `json:"seed"`
	// Intensity is the fault generator's headline knob in [0, 1].
	Intensity float64 `json:"intensity"`
	// Recovery selects the degradation policy: "full" (default — boost,
	// replan, race) or "none" (bare replay).
	Recovery string `json:"recovery,omitempty"`
}

// Components is the per-component energy attribution of a response.
type Components struct {
	DynamicJ      float64 `json:"dynamic_j"`
	CoreStaticJ   float64 `json:"core_static_j"`
	MemoryStaticJ float64 `json:"memory_static_j"`
	TransitionJ   float64 `json:"transition_j"`
}

func componentsOf(e sim.EnergyBreakdown) Components {
	return Components{
		DynamicJ:      e.Dynamic,
		CoreStaticJ:   e.CoreStatic,
		MemoryStaticJ: e.MemoryStatic,
		TransitionJ:   e.Transition,
	}
}

// TaskResponse is the result of one solve/simulate/execute request.
type TaskResponse struct {
	Request    string     `json:"request"`
	Scheduler  string     `json:"scheduler"`
	Scheme     string     `json:"scheme,omitempty"`
	Model      string     `json:"model"`
	N          int        `json:"n"`
	EnergyJ    float64    `json:"energy_j"`
	Components Components `json:"components"`
	// Misses lists task IDs that completed late or not at all.
	Misses []int `json:"misses,omitempty"`
	// Recovery statistics (/v1/execute only).
	Recoveries  int `json:"recoveries,omitempty"`
	FaultMisses int `json:"fault_misses,omitempty"`
	Averted     int `json:"averted,omitempty"`
	// Schedule is included when the request asked for it.
	Schedule *schedule.Schedule `json:"schedule,omitempty"`
	// TraceURL replays this request's virtual-time trace while it remains
	// in the replay ring.
	TraceURL string `json:"trace_url"`

	// prov is the schedule's decision provenance, computed inside the
	// cacheable compute closure so cached responses explain themselves.
	// Unexported: encoding/json skips it, which keeps cached and fresh
	// response bodies byte-identical; /v1/explain and /debug/trace are
	// the surfaces that serialize it.
	prov *Explanation
}

// errorResponse is the JSON error shape of every endpoint.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSON encodes and writes one response, bracketing the encode and
// write stages with spans and emitting the Server-Timing stage breakdown
// (every stage ended so far — admission, decode, cache, encode) before
// the status line. MarshalIndent followed by a newline produces exactly
// the bytes json.Encoder with the same indent would, so buffering for
// the write span does not perturb response bodies.
func (rc *requestCtx) writeJSON(w http.ResponseWriter, code int, v any) {
	esp := rc.span("encode")
	buf, err := json.MarshalIndent(v, "", "  ")
	esp.End()
	if err != nil {
		// Responses are plain data structs; reaching this is a bug, but
		// the client still deserves a well-formed error body.
		http.Error(w, `{"error":"internal error: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	if st := rc.wall.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.WriteHeader(code)
	wsp := rc.span("write")
	w.Write(buf)
	wsp.End()
}

func httpError(rc *requestCtx, w http.ResponseWriter, code int, err error) {
	rc.Set("status", "error")
	rc.Set("err", err.Error())
	rc.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// errorCode maps solver errors onto HTTP status codes: model/feasibility
// errors are the client's (422), an expired deadline budget is a
// mid-flight shed (429 — the request was sound, the fleet ran out of
// time for it), everything else is a 500.
func errorCode(err error) int {
	var general core.ErrGeneralOffline
	switch {
	case errors.As(err, &general),
		errors.Is(err, schedule.ErrInfeasible),
		errors.Is(err, schedule.ErrDeadlineMiss),
		errors.Is(err, schedule.ErrSpeedCap):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// decode parses the JSON request body (bounded by MaxBody) into req,
// under the request's decode span. An over-long body is the client's
// size problem (413), not a parse error.
func (s *Server) decode(rc *requestCtx, w http.ResponseWriter, r *http.Request, req any) bool {
	sp := rc.span("decode")
	defer sp.End()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(rc, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return false
		}
		httpError(rc, w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// system resolves the effective platform of a request.
func (s *Server) system(req *TaskRequest) (power.System, error) {
	sys := s.cfg.System
	if req.System != nil {
		sys = *req.System
	}
	if req.Cores > 0 {
		sys.Cores = req.Cores
	}
	if err := sys.Validate(); err != nil {
		return sys, fmt.Errorf("bad system: %w", err)
	}
	return sys, nil
}

// record annotates the request log and child recorder with the outcome
// every compute endpoint shares.
func (rc *requestCtx) record(sched string, n int, energy float64, misses int) {
	rc.Set("sched", sched)
	rc.Set("n", n)
	rc.Set("energy_j", energy)
	if misses > 0 {
		rc.Set("misses", misses)
		rc.Set("status", "misses")
	} else {
		rc.Set("status", "ok")
	}
	rc.tel.ObserveL(metricEnergy, rc.labels.route, energy)
	rc.tel.ObserveL(metricTasks, rc.labels.route, float64(n))
}

// handleSolve answers with the offline optimal schedule (§4/§5 dispatch)
// for common-release and agreeable-deadline task sets.
func (s *Server) handleSolve(rc *requestCtx, w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !s.decode(rc, w, r, &req) {
		return
	}
	resp, code, err := s.solveOne(r.Context(), rc.tel, &req, rc.id, rc.root())
	if err != nil {
		httpError(rc, w, code, err)
		return
	}
	rc.setProv(resp.prov)
	rc.record(resp.Scheduler, resp.N, resp.EnergyJ, len(resp.Misses))
	rc.writeJSON(w, http.StatusOK, resp)
}

// cached satisfies a compute request through the coalescing schedule
// cache when it is enabled: identical canonical requests cost one solve,
// concurrent identical requests coalesce onto one leader. The cache span
// (a child of parent) brackets the lookup and notes its outcome; the
// solve span is opened under it only when this request's own goroutine
// actually computes — a hit or coalesced wait has no solve child.
// compute must build the canonical response — Request and TraceURL
// blank — and the caller stamps its own copy.
func (s *Server) cached(ctx context.Context, tel *telemetry.Recorder, op, scheduler string, req *TaskRequest, sys power.System, parent wspan.Span, compute func(wspan.Span) (*TaskResponse, int, error)) (*TaskResponse, int, error) {
	if s.cache == nil {
		sp := parent.Start("solve")
		defer sp.End()
		return compute(sp)
	}
	csp := parent.Start("cache")
	key := encode.CanonicalKey(op, scheduler, req.IncludeSchedule, req.Tasks, sys)
	resp, code, err, outcome := s.cache.do(ctx, key, func() (*TaskResponse, int, error) {
		sp := csp.Start("solve")
		defer sp.End()
		return compute(sp)
	})
	csp.Note("outcome", string(outcome))
	csp.End()
	tel.CountL(metricCache, cacheLabel(op, outcome), 1)
	return resp, code, err
}

// stamp copies a canonical (cacheable) response and binds it to one
// request: the two per-request fields are the only bytes that may differ
// between a cached and a freshly solved response.
func stamp(resp *TaskResponse, id string) *TaskResponse {
	out := *resp
	out.Request = id
	out.TraceURL = "/debug/trace/" + id
	return &out
}

// solveOne runs one offline solve on the given recorder; shared by
// /v1/solve, /v1/explain and /v1/batch. parent is the wall span the
// cache/solve stages nest under (the request root, or a batch item).
func (s *Server) solveOne(ctx context.Context, tel *telemetry.Recorder, req *TaskRequest, id string, parent wspan.Span) (*TaskResponse, int, error) {
	if req.Scheduler != "" && req.Scheduler != "auto" {
		return nil, http.StatusBadRequest, fmt.Errorf("scheduler %q is not an offline scheme; use /v1/simulate", req.Scheduler)
	}
	sys, err := s.system(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	resp, code, err := s.cached(ctx, tel, "solve", "auto", req, sys, parent, func(sp wspan.Span) (*TaskResponse, int, error) {
		sol, err := core.SolveCtx(ctx, req.Tasks, sys, tel)
		if err != nil {
			return nil, errorCode(err), err
		}
		e := sim.ComponentBreakdown(schedule.Audit(sol.Schedule, sys))
		resp := &TaskResponse{
			Scheduler:  "auto",
			Scheme:     sol.Scheme,
			Model:      sol.Model.String(),
			N:          len(req.Tasks),
			EnergyJ:    e.Total(),
			Components: componentsOf(e),
			prov:       explainSchedule("auto", sol.Schedule, sys),
		}
		sp.Note("scheme", sol.Scheme)
		noteProvenance(sp, resp.prov)
		if req.IncludeSchedule {
			resp.Schedule = sol.Schedule
		}
		return resp, 0, nil
	})
	if err != nil {
		return nil, code, err
	}
	return stamp(resp, id), 0, nil
}

// handleSimulate runs an online policy over the task set.
func (s *Server) handleSimulate(rc *requestCtx, w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !s.decode(rc, w, r, &req) {
		return
	}
	resp, code, err := s.simulateOne(r.Context(), rc.tel, &req, rc.id, rc.root())
	if err != nil {
		httpError(rc, w, code, err)
		return
	}
	rc.setProv(resp.prov)
	rc.record(resp.Scheduler, resp.N, resp.EnergyJ, len(resp.Misses))
	rc.writeJSON(w, http.StatusOK, resp)
}

// runtimes recycles online.Runtime scratch (active set, plan memo, busy
// vector) across requests: concurrent handlers each check out a private
// Runtime, so the retained solver arenas amortize without contention.
var runtimes = sync.Pool{New: func() any { return new(online.Runtime) }}

// scheduleOnline is online.Schedule on pooled Runtime scratch.
func scheduleOnline(tasks task.Set, sys power.System, opts online.Options) (*sim.Result, error) {
	rt := runtimes.Get().(*online.Runtime)
	defer runtimes.Put(rt)
	return rt.Schedule(tasks, sys, opts)
}

// simulateOne runs one online policy on the given recorder; shared by
// /v1/simulate, /v1/explain and /v1/batch.
func (s *Server) simulateOne(ctx context.Context, tel *telemetry.Recorder, req *TaskRequest, id string, parent wspan.Span) (*TaskResponse, int, error) {
	sys, err := s.system(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	sched := req.Scheduler
	if sched == "" {
		sched = "sdem-on"
	}
	switch sched {
	case "sdem-on", "mbkp", "mbkps", "race", "critical":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown scheduler %q (want sdem-on, mbkp, mbkps, race or critical)", sched)
	}
	resp, code, err := s.cached(ctx, tel, "simulate", sched, req, sys, parent, func(sp wspan.Span) (*TaskResponse, int, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, errorCode(err), err
			}
		}
		// The sleep-certificate and plan-delta memo counters accumulate
		// over the recorder's lifetime; the deltas across this run are
		// this request's short-circuit provenance.
		skip0 := tel.CounterValue(metricSkippedSolves, "")
		reuse0 := tel.CounterValue(metricPlanReuse, "")
		cores := sys.Cores
		var (
			res *sim.Result
			err error
		)
		switch sched {
		case "sdem-on":
			res, err = scheduleOnline(req.Tasks, sys, online.Options{Cores: cores, Telemetry: tel, Ctx: ctx})
		case "mbkp":
			res, err = baseline.MBKPTel(req.Tasks, sys, cores, tel)
		case "mbkps":
			res, err = baseline.MBKPSTel(req.Tasks, sys, cores, tel)
		case "race":
			res, err = baseline.RaceToIdleTel(req.Tasks, sys, cores, tel)
		case "critical":
			res, err = baseline.CriticalSpeedTel(req.Tasks, sys, cores, tel)
		}
		if err != nil {
			return nil, errorCode(err), err
		}
		if sched == "sdem-on" {
			sp.NoteInt("skipped_solves", tel.CounterValue(metricSkippedSolves, "")-skip0)
			sp.NoteInt("plan_reuse", tel.CounterValue(metricPlanReuse, "")-reuse0)
		}
		e := res.EnergyBreakdown()
		resp := &TaskResponse{
			Scheduler:  sched,
			Model:      req.Tasks.Classify().String(),
			N:          len(req.Tasks),
			EnergyJ:    e.Total(),
			Components: componentsOf(e),
			Misses:     res.Misses,
			prov:       explainSchedule(sched, res.Schedule, sys),
		}
		noteProvenance(sp, resp.prov)
		if req.IncludeSchedule {
			resp.Schedule = res.Schedule
		}
		return resp, 0, nil
	})
	if err != nil {
		return nil, code, err
	}
	return stamp(resp, id), 0, nil
}

// handleExecute plans a schedule, injects a seeded fault plan, and
// replays it through the graceful-degradation runtime.
func (s *Server) handleExecute(rc *requestCtx, w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !s.decode(rc, w, r, &req) {
		return
	}
	sys, err := s.system(&req)
	if err != nil {
		httpError(rc, w, http.StatusBadRequest, err)
		return
	}
	if req.Faults == nil {
		httpError(rc, w, http.StatusBadRequest, errors.New("execute needs a faults spec (seed, intensity)"))
		return
	}
	pol := resilient.DefaultPolicy()
	if req.Faults.Recovery == "none" {
		pol = resilient.NoRecovery()
	} else if req.Faults.Recovery != "" && req.Faults.Recovery != "full" {
		httpError(rc, w, http.StatusBadRequest, fmt.Errorf("unknown recovery policy %q (want full or none)", req.Faults.Recovery))
		return
	}
	pol.Telemetry = rc.tel

	// Plan: offline optimum when the model has one, SDEM-ON otherwise —
	// the same dispatch cmd/sdem's auto mode uses. The solve span covers
	// planning and the perturbed replay; /v1/execute never caches (the
	// fault plan makes each request its own experiment).
	sp := rc.span("solve")
	plan, planner, code, err := s.planSchedule(r.Context(), rc.tel, &req, sys)
	if err != nil {
		sp.End()
		httpError(rc, w, code, err)
		return
	}
	sp.Note("planner", planner)
	fp := faults.Generate(faults.Config{Intensity: req.Faults.Intensity}, req.Tasks, sys, req.Faults.Seed)
	res, err := resilient.Execute(plan, req.Tasks, sys, fp, pol)
	if err != nil {
		sp.End()
		httpError(rc, w, errorCode(err), err)
		return
	}
	ex := explainSchedule(planner, res.Sim.Schedule, sys)
	noteProvenance(sp, ex)
	sp.End()
	rc.setProv(ex)

	e := res.Sim.EnergyBreakdown()
	resp := &TaskResponse{
		Request:     rc.id,
		Scheduler:   planner,
		Model:       req.Tasks.Classify().String(),
		N:           len(req.Tasks),
		EnergyJ:     res.Energy,
		Components:  componentsOf(e),
		Misses:      res.Sim.Misses,
		Recoveries:  len(res.Recoveries),
		FaultMisses: len(res.FaultMisses),
		Averted:     len(res.Averted),
		TraceURL:    "/debug/trace/" + rc.id,
		prov:        ex,
	}
	if req.IncludeSchedule {
		resp.Schedule = res.Sim.Schedule
	}
	rc.Set("faults", len(fp.Faults))
	rc.Set("recoveries", len(res.Recoveries))
	rc.record(planner, resp.N, resp.EnergyJ, len(resp.Misses))
	rc.writeJSON(w, http.StatusOK, resp)
}

// planSchedule produces the fault-free plan /v1/execute perturbs. The
// budget context bounds the planning phase; the perturbed replay itself
// is bounded by the admission gate's concurrency cap.
func (s *Server) planSchedule(ctx context.Context, tel *telemetry.Recorder, req *TaskRequest, sys power.System) (*schedule.Schedule, string, int, error) {
	sol, err := core.SolveCtx(ctx, req.Tasks, sys, tel)
	if err == nil {
		return sol.Schedule, "auto", 0, nil
	}
	var general core.ErrGeneralOffline
	if !errors.As(err, &general) {
		return nil, "", errorCode(err), err
	}
	res, err := scheduleOnline(req.Tasks, sys, online.Options{Cores: sys.Cores, Telemetry: tel, Ctx: ctx})
	if err != nil {
		return nil, "", errorCode(err), err
	}
	return res.Schedule, "sdem-on", 0, nil
}

// ExplainResponse is the /v1/explain result: the solved request's
// headline numbers plus the full decision provenance.
type ExplainResponse struct {
	Request     string       `json:"request"`
	Scheduler   string       `json:"scheduler"`
	N           int          `json:"n"`
	EnergyJ     float64      `json:"energy_j"`
	Explanation *Explanation `json:"explanation"`
	TraceURL    string       `json:"trace_url"`
}

// handleExplain solves (or simulates, when an online scheduler is named)
// exactly like the compute endpoints — same canonical cache, so asking
// why costs nothing when the schedule is already cached — and answers
// with the per-gap race/sleep/crawl provenance instead of the schedule.
func (s *Server) handleExplain(rc *requestCtx, w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !s.decode(rc, w, r, &req) {
		return
	}
	var (
		resp *TaskResponse
		code int
		err  error
	)
	if req.Scheduler == "" || req.Scheduler == "auto" {
		resp, code, err = s.solveOne(r.Context(), rc.tel, &req, rc.id, rc.root())
	} else {
		resp, code, err = s.simulateOne(r.Context(), rc.tel, &req, rc.id, rc.root())
	}
	if err != nil {
		httpError(rc, w, code, err)
		return
	}
	rc.setProv(resp.prov)
	rc.record(resp.Scheduler, resp.N, resp.EnergyJ, len(resp.Misses))
	rc.writeJSON(w, http.StatusOK, ExplainResponse{
		Request:     rc.id,
		Scheduler:   resp.Scheduler,
		N:           resp.N,
		EnergyJ:     resp.EnergyJ,
		Explanation: resp.prov,
		TraceURL:    resp.TraceURL,
	})
}

// BatchRequest fans many solve/simulate items over the worker pool.
type BatchRequest struct {
	Requests []BatchItemRequest `json:"requests"`
}

// BatchItemRequest is one batch item: Op selects the endpoint semantics.
type BatchItemRequest struct {
	// Op is "solve" (default) or "simulate".
	Op string `json:"op,omitempty"`
	TaskRequest
}

// BatchItemResult is one batch item's outcome: a response or an error.
// Item failures do not fail the batch.
type BatchItemResult struct {
	*TaskResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse returns the item results in request order.
type BatchResponse struct {
	Request string            `json:"request"`
	Results []BatchItemResult `json:"results"`
}

// handleBatch runs the items on the internal/parallel worker pool. Each
// item computes on its own child recorder (pid = item index) and the
// children merge back in index order — the sweep engine's determinism
// pattern — so the batch's telemetry is identical at any pool width.
// Each item also gets its own wall span under the request root (wspan is
// append-safe across the pool's goroutines), so the trace shows the
// pool's real overlap.
func (s *Server) handleBatch(rc *requestCtx, w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(rc, w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		httpError(rc, w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		httpError(rc, w, http.StatusBadRequest, fmt.Errorf("batch of %d items exceeds the cap of %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}

	children := make([]*telemetry.Recorder, len(req.Requests))
	for i := range children {
		children[i] = rc.tel.Child(i)
	}
	results, err := parallel.Map(r.Context(), s.cfg.Workers, len(req.Requests), func(ctx context.Context, i int) (BatchItemResult, error) {
		item := &req.Requests[i]
		id := fmt.Sprintf("%s.%d", rc.id, i)
		isp := rc.span("item")
		isp.NoteInt("index", int64(i))
		defer isp.End()
		var (
			resp *TaskResponse
			rerr error
		)
		switch item.Op {
		case "", "solve":
			resp, _, rerr = s.solveOne(ctx, children[i], &item.TaskRequest, id, isp)
		case "simulate":
			resp, _, rerr = s.simulateOne(ctx, children[i], &item.TaskRequest, id, isp)
		default:
			rerr = fmt.Errorf("unknown op %q (want solve or simulate)", item.Op)
		}
		if rerr != nil {
			isp.Note("error", rerr.Error())
			return BatchItemResult{Error: rerr.Error()}, nil
		}
		resp.TraceURL = "/debug/trace/" + rc.id // items share the batch trace
		return BatchItemResult{TaskResponse: resp}, nil
	})
	if err != nil {
		// Only context cancellation (an expired batch budget — a
		// mid-flight shed) or a handler panic can land here.
		httpError(rc, w, errorCode(err), err)
		return
	}
	for _, c := range children {
		rc.tel.Merge(c)
	}

	var energy float64
	failed := 0
	for _, res := range results {
		if res.TaskResponse != nil {
			energy += res.EnergyJ
		} else {
			failed++
		}
	}
	rc.Set("sched", "batch")
	rc.Set("items", len(results))
	rc.Set("failed", failed)
	rc.Set("energy_j", energy)
	rc.Set("status", "ok")
	rc.tel.ObserveL(metricEnergy, rc.labels.route, energy)
	rc.tel.ObserveL(metricTasks, rc.labels.route, float64(len(results)))
	rc.writeJSON(w, http.StatusOK, BatchResponse{Request: rc.id, Results: results})
}
