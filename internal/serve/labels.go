// Interned label sets for the serve layer's hot metric paths.
//
// Every request used to build its label strings by concatenation
// ("code=" + itoa(code) + ",route=" + route), allocating on each of the
// requests/shed/cache counter bumps — the telemetry miss-path allocation
// ROADMAP's zero-alloc phase 3 tracks. Routes are fixed at construction
// and the code/reason/outcome vocabularies are tiny, so the middleware
// precomputes the full label strings per route once and the request path
// only indexes read-only maps. Unlisted codes (a handler inventing a new
// status) fall back to concatenation — correct, just not free.
package serve

import "strconv"

// commonCodes are the status codes the serve layer can actually produce;
// the interned table covers exactly these.
var commonCodes = []int{200, 400, 404, 408, 413, 422, 429, 500, 503}

// shedReasons mirrors the admission gate's shed vocabulary.
var shedReasons = []string{shedQueueFull, shedDeadline, shedTimeout, shedBudget}

// routeLabels is one route's interned label table, built once per route
// at server construction and read-only afterwards.
type routeLabels struct {
	// route is the bare "route=R" label of the latency histogram.
	route string
	// codes maps status code → "code=NNN,route=R".
	codes map[int]string
	// shed maps reason → "reason=X,route=R".
	shed map[string]string
}

func newRouteLabels(route string) *routeLabels {
	l := &routeLabels{
		route: "route=" + route,
		codes: make(map[int]string, len(commonCodes)),
		shed:  make(map[string]string, len(shedReasons)),
	}
	for _, c := range commonCodes {
		l.codes[c] = "code=" + strconv.Itoa(c) + "," + l.route
	}
	for _, r := range shedReasons {
		l.shed[r] = "reason=" + r + "," + l.route
	}
	return l
}

// code returns the interned "code=NNN,route=R" label, falling back to
// concatenation for codes outside the common set.
//
//sdem:hotpath
func (l *routeLabels) code(code int) string {
	if s, ok := l.codes[code]; ok {
		return s
	}
	// Unlisted status codes are exceptional; the common set is interned.
	return "code=" + strconv.Itoa(code) + "," + l.route
}

// shedReason returns the interned "reason=X,route=R" label.
//
//sdem:hotpath
func (l *routeLabels) shedReason(reason string) string {
	if s, ok := l.shed[reason]; ok {
		return s
	}
	// Unknown reasons cannot occur; the fallback keeps labels well-formed.
	return "reason=" + reason + "," + l.route
}

// cacheLabels interns the "op=O,result=R" labels of the schedule-cache
// counter for the fixed op × outcome vocabulary.
var cacheLabels = func() map[string]map[cacheOutcome]string {
	m := make(map[string]map[cacheOutcome]string)
	for _, op := range []string{"solve", "simulate"} {
		m[op] = make(map[cacheOutcome]string, 3)
		for _, out := range []cacheOutcome{cacheMiss, cacheHit, cacheCoalesced} {
			m[op][out] = "op=" + op + ",result=" + string(out)
		}
	}
	return m
}()

// cacheLabel returns the interned cache-counter label.
//
//sdem:hotpath
func cacheLabel(op string, outcome cacheOutcome) string {
	if byOut, ok := cacheLabels[op]; ok {
		if s, ok := byOut[outcome]; ok {
			return s
		}
	}
	// Only solve/simulate use the cache today; fallback for future ops.
	return "op=" + op + ",result=" + string(outcome)
}
