package schedule

import (
	"math"
	"testing"

	"sdem/internal/power"
)

func TestAuditPerCoreChargesEachModel(t *testing.T) {
	efficient := power.Core{Static: 0.1, Beta: 1e-28, Lambda: 3, SpeedMax: power.MHz(2000)}
	leaky := power.Core{Static: 0.4, Beta: 4e-28, Lambda: 3, SpeedMax: power.MHz(2000)}
	mem := power.Memory{Static: 2}

	s := New(2, 0, 1)
	speed := power.MHz(1000)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.5, Speed: speed})
	s.Add(1, Segment{TaskID: 2, Start: 0, End: 0.5, Speed: speed})
	s.Normalize()

	b := AuditPerCore(s, []power.Core{efficient, leaky}, mem)
	wantDyn := (efficient.Dynamic(speed) + leaky.Dynamic(speed)) * 0.5
	if math.Abs(b.CoreDynamic-wantDyn) > 1e-12 {
		t.Errorf("dynamic = %g, want %g", b.CoreDynamic, wantDyn)
	}
	wantStatic := (efficient.Static + leaky.Static) * 0.5
	if math.Abs(b.CoreStatic-wantStatic) > 1e-12 {
		t.Errorf("static = %g, want %g", b.CoreStatic, wantStatic)
	}
	if math.Abs(b.MemoryStatic-2*0.5) > 1e-12 {
		t.Errorf("memory static = %g, want 1", b.MemoryStatic)
	}

	// Swapping the models must change the total (the cores differ).
	swapped := AuditPerCore(s, []power.Core{leaky, efficient}, mem)
	if math.Abs(swapped.Total()-b.Total()) > 1e-15 {
		// Symmetric segments: totals equal. Make them asymmetric.
		t.Log("symmetric case as expected")
	}
	s2 := New(2, 0, 1)
	s2.Add(0, Segment{TaskID: 1, Start: 0, End: 0.8, Speed: speed})
	s2.Add(1, Segment{TaskID: 2, Start: 0, End: 0.1, Speed: speed})
	s2.Normalize()
	a1 := AuditPerCore(s2, []power.Core{efficient, leaky}, mem)
	a2 := AuditPerCore(s2, []power.Core{leaky, efficient}, mem)
	if a1.Total() >= a2.Total() {
		t.Errorf("long work on the efficient core (%g) should beat long work on the leaky core (%g)",
			a1.Total(), a2.Total())
	}
}

func TestAuditPerCoreModelFallback(t *testing.T) {
	// Fewer models than cores: the last model is reused.
	core := power.Core{Static: 0.2, Beta: 1e-28, Lambda: 3}
	mem := power.Memory{Static: 1}
	s := New(3, 0, 1)
	for c := 0; c < 3; c++ {
		s.Add(c, Segment{TaskID: c + 1, Start: 0, End: 0.2, Speed: 1e9})
	}
	s.Normalize()
	short := AuditPerCore(s, []power.Core{core}, mem)
	full := AuditPerCore(s, []power.Core{core, core, core}, mem)
	if math.Abs(short.Total()-full.Total()) > 1e-12 {
		t.Errorf("fallback audit %g != explicit %g", short.Total(), full.Total())
	}
	// Empty model list must not panic.
	empty := AuditPerCore(s, nil, mem)
	if empty.CoreDynamic != 0 {
		t.Errorf("zero-model audit charged dynamic %g", empty.CoreDynamic)
	}
}

func TestAuditMatchesAuditPerCoreOnHomogeneous(t *testing.T) {
	sys := power.DefaultSystem()
	s := New(2, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0.1, End: 0.4, Speed: power.MHz(900)})
	s.Add(1, Segment{TaskID: 2, Start: 0.3, End: 0.9, Speed: power.MHz(1200)})
	s.Normalize()
	a := Audit(s, sys)
	b := AuditPerCore(s, []power.Core{sys.Core, sys.Core}, sys.Memory)
	if math.Abs(a.Total()-b.Total()) > 1e-15 {
		t.Errorf("Audit %g != AuditPerCore %g", a.Total(), b.Total())
	}
}
