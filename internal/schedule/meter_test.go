package schedule

import (
	"math"
	"math/rand"
	"testing"

	"sdem/internal/power"
)

// feedBatches replays a schedule into a meter the way the streaming
// engine emits it: segments grouped into planning batches, cross-core
// order scrambled inside each batch, Seal at every batch boundary.
func feedBatches(t *testing.T, m *Meter, batches []batch) {
	t.Helper()
	for i, b := range batches {
		for _, cs := range b {
			if err := m.Add(cs.core, cs.seg); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		next := math.Inf(1)
		if i+1 < len(batches) {
			next = batches[i+1].earliest()
		}
		m.Seal(next)
	}
}

type coreSeg struct {
	core int
	seg  Segment
}

type batch []coreSeg

func (b batch) earliest() float64 {
	e := math.Inf(1)
	for _, cs := range b {
		if cs.seg.Start < e {
			e = cs.seg.Start
		}
	}
	return e
}

// randomBatches draws a random multicore execution trace: batches of
// segments separated by random gaps (some short of the break-even, some
// past it), random speeds from a small palette so DVS switches both fire
// and repeat, and per-core starts that never go backwards.
func randomBatches(r *rand.Rand, cores, n int) []batch {
	speeds := []float64{4e8, 7e8, 1e9}
	cur := make([]float64, cores)
	now := 0.0
	var out []batch
	for len(out) < n {
		// Gap to the batch: mix sub-Tol jitter, short idles, and long
		// sleeps so every gapCost branch is exercised.
		switch r.Intn(3) {
		case 0:
			now += Tol / 3
		case 1:
			now += 0.0005 + r.Float64()*0.002
		default:
			now += 0.05 + r.Float64()*0.2
		}
		var b batch
		for _, c := range r.Perm(cores)[:1+r.Intn(cores)] {
			start := math.Max(now, cur[c])
			d := 0.001 + r.Float64()*0.01
			sg := Segment{TaskID: len(out), Start: start, End: start + d, Speed: speeds[r.Intn(len(speeds))]}
			cur[c] = sg.End
			b = append(b, coreSeg{c, sg})
		}
		out = append(out, b)
		now = b.earliest()
	}
	return out
}

func scheduleOf(batches []batch, cores int, start, end float64, corePol, memPol SleepPolicy) *Schedule {
	s := New(cores, start, end)
	s.CorePolicy, s.MemoryPolicy = corePol, memPol
	for _, b := range batches {
		for _, cs := range b {
			s.Add(cs.core, cs.seg)
		}
	}
	return s
}

func compareBreakdowns(t *testing.T, got, want Breakdown) {
	t.Helper()
	if got.CoreSleeps != want.CoreSleeps || got.MemorySleeps != want.MemorySleeps || got.SpeedSwitches != want.SpeedSwitches {
		t.Errorf("count mismatch: meter %+v, audit %+v", got, want)
	}
	fields := []struct {
		name      string
		got, want float64
	}{
		{"CoreDynamic", got.CoreDynamic, want.CoreDynamic},
		{"CoreStatic", got.CoreStatic, want.CoreStatic},
		{"CoreTransition", got.CoreTransition, want.CoreTransition},
		{"CoreSwitch", got.CoreSwitch, want.CoreSwitch},
		{"MemoryStatic", got.MemoryStatic, want.MemoryStatic},
		{"MemoryTransition", got.MemoryTransition, want.MemoryTransition},
		{"MemorySleep", got.MemorySleep, want.MemorySleep},
		{"Total", got.Total(), want.Total()},
	}
	for _, f := range fields {
		if rel := math.Abs(f.got-f.want) / math.Max(math.Abs(f.want), 1e-12); rel > 1e-9 {
			t.Errorf("%s: meter %g vs audit %g (rel %g)", f.name, f.got, f.want, rel)
		}
	}
}

// TestMeterMatchesAudit pins the incremental meter to the batch audit on
// randomized traces: same charging decisions, totals within float
// summation-order slack.
func TestMeterMatchesAudit(t *testing.T) {
	sys := power.DefaultSystem()
	policies := []struct {
		name      string
		core, mem SleepPolicy
	}{
		{"breakeven", SleepBreakEven, SleepBreakEven},
		{"never", SleepNever, SleepNever},
		{"always", SleepAlways, SleepAlways},
		{"mixed", SleepBreakEven, SleepNever},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				r := rand.New(rand.NewSource(seed))
				cores := 1 + r.Intn(4)
				batches := randomBatches(r, cores, 30)
				end := 0.0
				for _, b := range batches {
					for _, cs := range b {
						end = math.Max(end, cs.seg.End)
					}
				}
				end += r.Float64() * 0.3 // trailing idle past the last segment

				m := NewMeter(cores, 0, sys, pol.core, pol.mem)
				feedBatches(t, m, batches)
				got := m.Finish(end)
				want := Audit(scheduleOf(batches, cores, 0, end, pol.core, pol.mem), sys)
				compareBreakdowns(t, got, want)
			}
		})
	}
}

// TestMeterNeverUsedComponents covers the horizon-only charges: a core
// that never runs and a memory that never wakes must cost exactly what
// the audit charges for them.
func TestMeterNeverUsedComponents(t *testing.T) {
	sys := power.DefaultSystem()
	// One busy core out of three: cores 1 and 2 idle the whole horizon.
	batches := []batch{{{0, Segment{TaskID: 1, Start: 0.01, End: 0.02, Speed: 1e9}}}}
	for _, pol := range []SleepPolicy{SleepBreakEven, SleepNever} {
		m := NewMeter(3, 0, sys, pol, pol)
		feedBatches(t, m, batches)
		got := m.Finish(1)
		want := Audit(scheduleOf(batches, 3, 0, 1, pol, pol), sys)
		compareBreakdowns(t, got, want)
	}

	// Empty meter: memory never woke, no core ever ran.
	for _, pol := range []SleepPolicy{SleepBreakEven, SleepNever} {
		m := NewMeter(2, 0, sys, pol, pol)
		got := m.Finish(0.5)
		want := Audit(scheduleOf(nil, 2, 0, 0.5, pol, pol), sys)
		compareBreakdowns(t, got, want)
	}
}

// TestMeterRejectsBadSegments pins the contract violations the engine
// must never commit.
func TestMeterRejectsBadSegments(t *testing.T) {
	sys := power.DefaultSystem()
	m := NewMeter(1, 0, sys, SleepBreakEven, SleepBreakEven)
	if err := m.Add(1, Segment{Start: 0, End: 1, Speed: 1e9}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := m.Add(0, Segment{Start: 1, End: 1, Speed: 1e9}); err == nil {
		t.Error("zero-length segment accepted")
	}
	if err := m.Add(0, Segment{Start: 0.5, End: 0.6, Speed: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, Segment{Start: 0.1, End: 0.2, Speed: 1e9}); err == nil {
		t.Error("backwards segment accepted")
	}
}
