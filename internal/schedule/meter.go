package schedule

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
)

// Meter accumulates the energy breakdown of a schedule incrementally, as
// segments are emitted, in O(cores) memory — the streaming counterpart of
// Audit for runs whose full segment list would not fit in memory (days of
// virtual time in the soak harness).
//
// It makes the same charging decisions as Audit — per-segment dynamic and
// static energy, DVS switches between consecutive per-core segments,
// gapCost on every idle gap between Tol-merged busy intervals, memory
// busy time over the union across cores — but accumulates them in
// arrival order instead of Audit's core-by-core order, so totals can
// differ from Audit's by floating-point summation order (bounded by a
// few ULPs; the meter tests pin the agreement).
//
// Contract: per core, segments must be added in non-decreasing start
// order and must not overlap (the online executor guarantees both — core
// time only moves forward). Across cores, segments of one planning batch
// may arrive in any order; Seal(next) tells the meter no future segment
// will start before next, letting it retire the batch's memory
// intervals. Finish closes the horizon and returns the breakdown.
type Meter struct {
	sys        power.System
	corePolicy SleepPolicy
	memPolicy  SleepPolicy
	start      float64
	end        float64 // high-water segment end

	coreCur   []float64 // per-core merged-busy walk position
	coreSpeed []float64 // last segment speed per core
	coreSegs  []int     // segments seen per core

	b       Breakdown
	busyLen float64 // merged memory busy seconds, finalized intervals

	pending intervalsByStart // open batch: intervals not yet retired
	memCur  float64          // memory gap walk position
	memBusy bool             // any memory interval finalized yet
}

// NewMeter starts a meter over cores physical cores with the audit
// horizon opening at start, charging idle gaps under the given sleep
// policies (SleepBreakEven is the SDEM convention).
func NewMeter(cores int, start float64, sys power.System, corePolicy, memPolicy SleepPolicy) *Meter {
	m := &Meter{
		sys:        sys,
		corePolicy: corePolicy,
		memPolicy:  memPolicy,
		start:      start,
		end:        start,
		coreCur:    make([]float64, cores),
		coreSpeed:  make([]float64, cores),
		coreSegs:   make([]int, cores),
		memCur:     start,
	}
	for i := range m.coreCur {
		m.coreCur[i] = start
	}
	return m
}

// Add charges one execution segment. Per core, calls must come in
// non-decreasing start order without overlap.
//
//sdem:hotpath
func (m *Meter) Add(core int, seg Segment) error {
	if core < 0 || core >= len(m.coreCur) {
		return fmt.Errorf("meter: core %d out of range", core)
	}
	d := seg.End - seg.Start
	if d <= 0 {
		return fmt.Errorf("meter: bad segment [%g,%g] on core %d", seg.Start, seg.End, core)
	}
	cur := m.coreCur[core]
	if seg.Start < cur-Tol {
		return fmt.Errorf("meter: segment [%g,%g] on core %d starts before the core's busy end %g", seg.Start, seg.End, core, cur)
	}
	c := m.sys.Core
	m.b.CoreDynamic += c.Dynamic(seg.Speed) * d
	m.b.CoreStatic += c.Static * d
	if m.coreSegs[core] > 0 && math.Abs(seg.Speed-m.coreSpeed[core]) > Tol*math.Max(1, seg.Speed) {
		m.b.SpeedSwitches++
		m.b.CoreSwitch += c.SwitchEnergy
	}
	if seg.Start > cur+Tol {
		chargeCoreGap(&m.b, seg.Start-cur, c, m.corePolicy)
	}
	if seg.End > cur {
		m.coreCur[core] = seg.End
	}
	m.coreSpeed[core] = seg.Speed
	m.coreSegs[core]++
	if seg.End > m.end {
		m.end = seg.End
	}
	//lint:allow hotalloc: appends into the reused pending backing; it grows to the high-water batch size once
	m.pending = append(m.pending, Interval{seg.Start, seg.End})
	return nil
}

// Seal declares that no future segment will start before next, retiring
// every pending memory interval that can no longer grow. The online
// engine calls it at each planning-batch boundary with the next arrival
// time (+Inf at the end of the run).
func (m *Meter) Seal(next float64) {
	if len(m.pending) == 0 {
		return
	}
	merged := mergeInPlace(&m.pending)
	// The last merged interval may still be extended by a segment
	// starting within Tol of its end; hold it open in that case.
	keep := 0
	if last := merged[len(merged)-1]; last.End >= next-Tol {
		keep = 1
	}
	var aud Auditor // chargeMemGap only touches the breakdown
	for _, iv := range merged[:len(merged)-keep] {
		if iv.Start > m.memCur+Tol {
			aud.chargeMemGap(&m.b, iv.Start-m.memCur, m.sys.Memory, m.memPolicy)
		}
		m.busyLen += iv.Len()
		m.memBusy = true
		if iv.End > m.memCur {
			m.memCur = iv.End
		}
	}
	if keep == 1 {
		m.pending[0] = merged[len(merged)-1]
		m.pending = m.pending[:1]
	} else {
		m.pending = m.pending[:0]
	}
}

// Finish closes the audit horizon at max(end, latest segment end),
// charges the trailing idle gaps and the never-used components, and
// returns the breakdown. The meter is spent afterwards.
func (m *Meter) Finish(end float64) Breakdown {
	m.Seal(math.Inf(1))
	if end < m.end {
		end = m.end
	}
	horizon := math.Max(0, end-m.start)
	for c := range m.coreCur {
		if m.coreSegs[c] == 0 {
			// A never-used core idles the whole horizon under SleepNever
			// and simply stays asleep otherwise (no transition).
			if m.corePolicy == SleepNever {
				m.b.CoreStatic += m.sys.Core.Static * horizon
			}
			continue
		}
		if end > m.coreCur[c]+Tol {
			chargeCoreGap(&m.b, end-m.coreCur[c], m.sys.Core, m.corePolicy)
		}
	}
	if !m.memBusy || numeric.IsZero(m.busyLen, Tol) {
		// Memory never woke: asleep through the whole horizon for free
		// under sleeping policies, idle under SleepNever.
		if m.memPolicy == SleepNever {
			m.b.MemoryStatic += m.sys.Memory.Static * horizon
		} else {
			m.b.MemorySleep += horizon
		}
		return m.b
	}
	var aud Auditor
	if end > m.memCur+Tol {
		aud.chargeMemGap(&m.b, end-m.memCur, m.sys.Memory, m.memPolicy)
	}
	m.b.MemoryStatic += m.sys.Memory.Static * m.busyLen
	return m.b
}

// Running returns the energy accumulated so far: the breakdown's total
// plus the memory static cost of the finalized busy intervals (which
// Finish would otherwise only add at the end of the run). It is
// monotone non-decreasing across Seal calls, so windowed telemetry can
// report per-window energy as Running deltas without closing the meter.
func (m *Meter) Running() float64 {
	return m.b.Total() + m.sys.Memory.Static*m.busyLen
}

// mergeInPlace sorts and Tol-merges the intervals in place, exactly as
// Auditor.merge does, returning the merged prefix. It duplicates the
// Auditor.merge walk on the passed slice instead of wrapping it in a
// temporary Auditor: the temporary's scratch field escapes through its
// sort.Interface conversion, which cost one allocation per Seal on the
// streaming hot path.
//
//sdem:hotpath
func mergeInPlace(ivs *intervalsByStart) []Interval {
	s := *ivs
	if len(s) == 0 {
		return nil
	}
	sorted := true
	for i := 1; i < len(s); i++ {
		if s[i].Start < s[i-1].Start {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Sort(ivs)
	}
	out := s[:1]
	for _, iv := range s[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End+Tol {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			//lint:allow hotalloc: appends into the backing it reads from; len never exceeds the existing cap
			out = append(out, iv)
		}
	}
	return out
}
