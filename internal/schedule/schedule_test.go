package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdem/internal/power"
	"sdem/internal/task"
)

func testSystem() power.System {
	return power.System{
		Core:   power.Core{Static: 0.3, Beta: 1e-27, Lambda: 3, SpeedMax: power.MHz(2000), BreakEven: 0.010},
		Memory: power.Memory{Static: 4, BreakEven: 0.040},
		Cores:  4,
	}
}

func TestMergeIntervals(t *testing.T) {
	got := MergeIntervals([]Interval{{5, 7}, {0, 2}, {1.5, 3}, {7 + Tol/2, 9}})
	want := []Interval{{0, 3}, {5, 9}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i].Start-want[i].Start) > Tol || math.Abs(got[i].End-want[i].End) > Tol {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if MergeIntervals(nil) != nil {
		t.Error("merging nil must stay nil")
	}
}

func TestMemoryBusyAndCommonIdle(t *testing.T) {
	s := New(2, 0, 1.0)
	// Core 0 busy [0.1, 0.4], core 1 busy [0.3, 0.6]: memory busy
	// [0.1, 0.6], common idle = 0.1 + 0.4 = 0.5.
	s.Add(0, Segment{TaskID: 1, Start: 0.1, End: 0.4, Speed: 1e9})
	s.Add(1, Segment{TaskID: 2, Start: 0.3, End: 0.6, Speed: 1e9})
	s.Normalize()
	busy := s.MemoryBusy()
	if len(busy) != 1 || math.Abs(busy[0].Start-0.1) > Tol || math.Abs(busy[0].End-0.6) > Tol {
		t.Errorf("memory busy = %v, want [{0.1 0.6}]", busy)
	}
	if got := s.CommonIdle(); math.Abs(got-0.5) > Tol {
		t.Errorf("common idle = %g, want 0.5", got)
	}
}

func TestValidateHappyPath(t *testing.T) {
	tasks := task.Set{
		{ID: 1, Release: 0, Deadline: 0.5, Workload: 1e8},
		{ID: 2, Release: 0.2, Deadline: 1, Workload: 2e8},
	}
	s := New(2, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.2, Speed: 5e8})
	s.Add(1, Segment{TaskID: 2, Start: 0.2, End: 0.6, Speed: 5e8})
	s.Normalize()
	if err := s.Validate(tasks, ValidateOptions{NonPreemptive: true, SpeedMax: 1e9}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0.1, Deadline: 0.5, Workload: 1e8}}
	mk := func() *Schedule {
		s := New(1, 0, 1)
		s.Add(0, Segment{TaskID: 1, Start: 0.1, End: 0.3, Speed: 5e8})
		return s
	}
	cases := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"early start", func(s *Schedule) { s.Cores[0][0].Start = 0.05 }},
		{"deadline miss", func(s *Schedule) { s.Cores[0][0].End = 0.6 }},
		{"short workload", func(s *Schedule) { s.Cores[0][0].Speed = 1e8 }},
		{"over cap", func(s *Schedule) {
			s.Cores[0][0].Speed = 5e9
			s.Cores[0][0].End = 0.12
		}},
		{"negative speed", func(s *Schedule) { s.Cores[0][0].Speed = -1 }},
		{"unknown task", func(s *Schedule) { s.Cores[0][0].TaskID = 99 }},
		{"outside horizon", func(s *Schedule) { s.End = 0.2 }},
		{"overlap", func(s *Schedule) {
			s.Cores[0][0].Speed = 2.5e8
			s.Add(0, Segment{TaskID: 1, Start: 0.2, End: 0.4, Speed: 2.5e8})
			// Overlapping [0.1,0.3] and [0.2,0.4].
		}},
	}
	for _, tc := range cases {
		s := mk()
		tc.mut(s)
		s.Normalize()
		if err := s.Validate(tasks, ValidateOptions{SpeedMax: 1e9}); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestValidateMigrationAndPreemption(t *testing.T) {
	tasks := task.Set{{ID: 1, Release: 0, Deadline: 1, Workload: 2e8}}
	s := New(2, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.2, Speed: 5e8})
	s.Add(1, Segment{TaskID: 1, Start: 0.2, End: 0.4, Speed: 5e8})
	s.Normalize()
	if err := s.Validate(tasks, ValidateOptions{}); err == nil {
		t.Error("migration across cores must be rejected")
	}

	s = New(1, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.2, Speed: 5e8})
	s.Add(0, Segment{TaskID: 1, Start: 0.5, End: 0.7, Speed: 5e8})
	s.Normalize()
	if err := s.Validate(tasks, ValidateOptions{}); err != nil {
		t.Errorf("preemptive split should pass default validation: %v", err)
	}
	if err := s.Validate(tasks, ValidateOptions{NonPreemptive: true}); err == nil {
		t.Error("preemptive split must fail NonPreemptive validation")
	}

	// Abutting equal segments still count as non-preemptive.
	s = New(1, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.2, Speed: 5e8})
	s.Add(0, Segment{TaskID: 1, Start: 0.2, End: 0.4, Speed: 5e8})
	s.Normalize()
	if err := s.Validate(tasks, ValidateOptions{NonPreemptive: true}); err != nil {
		t.Errorf("abutting segments should pass NonPreemptive validation: %v", err)
	}
}

func TestAuditSingleSegment(t *testing.T) {
	sys := testSystem()
	s := New(1, 0, 1)
	speed := power.MHz(1000)
	s.Add(0, Segment{TaskID: 1, Start: 0.2, End: 0.7, Speed: speed})
	s.Normalize()
	s.CorePolicy = SleepBreakEven
	s.MemoryPolicy = SleepBreakEven

	b := Audit(s, sys)
	wantDyn := sys.Core.Dynamic(speed) * 0.5
	if !almostEqual(b.CoreDynamic, wantDyn, 1e-9) {
		t.Errorf("core dynamic = %g, want %g", b.CoreDynamic, wantDyn)
	}
	// Core static: 0.5 s executing; both gaps (0.2 and 0.3 s) exceed the
	// 10 ms break-even, so they sleep at α·ξ each.
	wantStatic := sys.Core.Static * 0.5
	if !almostEqual(b.CoreStatic, wantStatic, 1e-9) {
		t.Errorf("core static = %g, want %g", b.CoreStatic, wantStatic)
	}
	wantTrans := 2 * sys.Core.Static * sys.Core.BreakEven
	if !almostEqual(b.CoreTransition, wantTrans, 1e-9) {
		t.Errorf("core transition = %g, want %g", b.CoreTransition, wantTrans)
	}
	// Memory: busy 0.5 s, two gaps of 0.2/0.3 s ≥ 40 ms break-even.
	if !almostEqual(b.MemoryStatic, 4*0.5, 1e-9) {
		t.Errorf("memory static = %g, want 2", b.MemoryStatic)
	}
	if !almostEqual(b.MemoryTransition, 2*4*0.040, 1e-9) {
		t.Errorf("memory transition = %g, want %g", b.MemoryTransition, 2*4*0.040)
	}
	if !almostEqual(b.MemorySleep, 0.5, 1e-9) {
		t.Errorf("memory sleep = %g, want 0.5", b.MemorySleep)
	}
	if b.MemorySleeps != 2 || b.CoreSleeps != 2 {
		t.Errorf("sleep counts = (%d cores, %d memory), want (2, 2)", b.CoreSleeps, b.MemorySleeps)
	}
}

func TestAuditSleepPolicies(t *testing.T) {
	sys := testSystem()
	mk := func(cp, mp SleepPolicy) Breakdown {
		s := New(1, 0, 1)
		s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.5, Speed: power.MHz(800)})
		s.Normalize()
		s.CorePolicy, s.MemoryPolicy = cp, mp
		return Audit(s, sys)
	}

	never := mk(SleepNever, SleepNever)
	always := mk(SleepAlways, SleepAlways)
	breakeven := mk(SleepBreakEven, SleepBreakEven)

	// Never: memory static over the whole horizon.
	if !almostEqual(never.MemoryStatic, 4*1.0, 1e-9) {
		t.Errorf("never: memory static = %g, want 4", never.MemoryStatic)
	}
	if never.MemoryTransition != 0 || never.MemorySleep != 0 {
		t.Error("never must not sleep")
	}
	// Always: one trailing gap, one transition, no idle static.
	if !almostEqual(always.MemoryStatic, 4*0.5, 1e-9) {
		t.Errorf("always: memory static = %g, want 2", always.MemoryStatic)
	}
	if !almostEqual(always.MemoryTransition, 4*0.040, 1e-9) {
		t.Errorf("always: memory transition = %g", always.MemoryTransition)
	}
	// Break-even equals always here because the 0.5 s gap exceeds ξ_m.
	if !almostEqual(breakeven.Total(), always.Total(), 1e-9) {
		t.Errorf("break-even (%g) should equal always (%g) for long gaps", breakeven.Total(), always.Total())
	}

	// Short-gap case: gap of 20 ms < ξ_m = 40 ms. Always pays the full
	// transition (worse than idling); break-even idles.
	mkShort := func(mp SleepPolicy) Breakdown {
		s := New(1, 0, 0.52)
		s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.5, Speed: power.MHz(800)})
		s.Normalize()
		s.CorePolicy = SleepNever
		s.MemoryPolicy = mp
		return Audit(s, sys)
	}
	shortAlways := mkShort(SleepAlways)
	shortBE := mkShort(SleepBreakEven)
	if shortAlways.MemoryTransition <= shortBE.MemoryTransition {
		t.Error("always should pay a transition on a short gap")
	}
	if shortBE.Total() >= shortAlways.Total() {
		t.Errorf("break-even (%g) must beat always (%g) on short gaps", shortBE.Total(), shortAlways.Total())
	}
}

func TestAuditUnusedCores(t *testing.T) {
	sys := testSystem()
	s := New(4, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 1, Speed: power.MHz(1000)})
	s.Normalize()

	s.CorePolicy = SleepNever
	idleStatic := Audit(s, sys).CoreStatic
	s.CorePolicy = SleepBreakEven
	sleepStatic := Audit(s, sys).CoreStatic
	// Three unused cores idle for 1 s each under SleepNever.
	if !almostEqual(idleStatic-sleepStatic, 3*sys.Core.Static, 1e-9) {
		t.Errorf("unused-core static difference = %g, want %g", idleStatic-sleepStatic, 3*sys.Core.Static)
	}
}

func TestAuditEmptySchedule(t *testing.T) {
	sys := testSystem()
	s := New(2, 0, 1)
	s.MemoryPolicy = SleepBreakEven
	s.CorePolicy = SleepBreakEven
	b := Audit(s, sys)
	if b.Total() != 0 {
		t.Errorf("empty schedule with sleeping policies must cost 0, got %g", b.Total())
	}
	if !almostEqual(b.MemorySleep, 1, 1e-9) {
		t.Errorf("memory should sleep the whole horizon, got %g", b.MemorySleep)
	}
	s.MemoryPolicy = SleepNever
	s.CorePolicy = SleepNever
	b = Audit(s, sys)
	want := sys.Memory.Static*1 + 2*sys.Core.Static*1
	if !almostEqual(b.Total(), want, 1e-9) {
		t.Errorf("empty never-sleep schedule = %g, want %g", b.Total(), want)
	}
}

func TestAuditAlphaZeroCore(t *testing.T) {
	sys := testSystem()
	sys.Core.Static = 0
	s := New(1, 0, 1)
	s.Add(0, Segment{TaskID: 1, Start: 0, End: 0.3, Speed: power.MHz(900)})
	s.Normalize()
	s.CorePolicy = SleepNever // even never-sleep costs nothing when α=0
	b := Audit(s, sys)
	if b.CoreStatic != 0 || b.CoreTransition != 0 {
		t.Errorf("α=0 core charged static %g transition %g", b.CoreStatic, b.CoreTransition)
	}
}

func TestPropertyAuditNonNegativeAndMonotone(t *testing.T) {
	// Property: audited components are non-negative, and SleepNever is
	// never cheaper than SleepBreakEven (gap-wise optimality).
	sys := testSystem()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(3, 0, 2)
		cur := [3]float64{}
		for i := 0; i < 10; i++ {
			c := r.Intn(3)
			start := cur[c] + r.Float64()*0.2
			end := start + 0.01 + r.Float64()*0.2
			if end > 2 {
				continue
			}
			s.Add(c, Segment{TaskID: i, Start: start, End: end, Speed: power.MHz(700 + r.Float64()*1200)})
			cur[c] = end
		}
		s.Normalize()
		s.CorePolicy, s.MemoryPolicy = SleepBreakEven, SleepBreakEven
		be := Audit(s, sys)
		s.CorePolicy, s.MemoryPolicy = SleepNever, SleepNever
		nv := Audit(s, sys)
		s.CorePolicy, s.MemoryPolicy = SleepAlways, SleepAlways
		al := Audit(s, sys)
		if be.CoreDynamic < 0 || be.CoreStatic < 0 || be.MemoryStatic < 0 || be.MemoryTransition < 0 {
			return false
		}
		// Break-even is gap-wise optimal: no worse than either extreme.
		return be.Total() <= nv.Total()+1e-9 && be.Total() <= al.Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommonIdlePlusBusyEqualsHorizon(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(2, 0, 3)
		for i := 0; i < 6; i++ {
			start := r.Float64() * 2.5
			s.Add(r.Intn(2), Segment{TaskID: i, Start: start, End: start + r.Float64()*0.5, Speed: 1e9})
		}
		s.Normalize()
		var busy float64
		for _, iv := range s.MemoryBusy() {
			busy += iv.Len()
		}
		return math.Abs(busy+s.CommonIdle()-3) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSleepPolicyString(t *testing.T) {
	if SleepNever.String() != "never" || SleepAlways.String() != "always" ||
		SleepBreakEven.String() != "break-even" || SleepPolicy(9).String() != "SleepPolicy(9)" {
		t.Error("SleepPolicy.String mismatch")
	}
}

func TestSegmentCycles(t *testing.T) {
	sg := Segment{Start: 1, End: 3, Speed: 5e8}
	if sg.Cycles() != 1e9 {
		t.Errorf("Cycles = %g, want 1e9", sg.Cycles())
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= tol*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

// TestDecideMatchesGapCharging checks the Decision provenance record
// against the audit's gap charging it claims to replay: for every
// policy and gap class, Sleeps agrees with Sleeps(), NetGain equals the
// idle-active cost minus GapEnergy, and Margin is the break-even
// distance.
func TestDecideMatchesGapCharging(t *testing.T) {
	const alpha, xi = 0.5, 0.02
	for _, pol := range []SleepPolicy{SleepNever, SleepAlways, SleepBreakEven} {
		for _, g := range []float64{0, 1e-12, 0.001, xi, 0.05, 3} {
			d := pol.Decide(g, alpha, xi)
			if got, want := d.Sleeps, pol.Sleeps(g, alpha, xi); got != want {
				t.Errorf("%v Decide(%g).Sleeps = %v, Sleeps() = %v", pol, g, got, want)
			}
			if got, want := d.NetGain, alpha*g-pol.GapEnergy(g, alpha, xi); math.Abs(got-want) > 1e-15 {
				t.Errorf("%v Decide(%g).NetGain = %g, want %g", pol, g, got, want)
			}
			if d.Margin != g-xi {
				t.Errorf("%v Decide(%g).Margin = %g, want %g", pol, g, d.Margin, g-xi)
			}
		}
	}
	// The paper's headline quantities: a break-even sleep past xi saves
	// alpha*(g-xi); an always-sleep below xi loses energy.
	if d := SleepBreakEven.Decide(0.05, alpha, xi); !d.Sleeps || math.Abs(d.NetGain-alpha*(0.05-xi)) > 1e-15 {
		t.Errorf("break-even sleep gain = %+v, want %g", d, alpha*(0.05-xi))
	}
	if d := SleepAlways.Decide(0.001, alpha, xi); !d.Sleeps || d.NetGain >= 0 {
		t.Errorf("always-sleep below break-even should lose energy: %+v", d)
	}
	if d := SleepNever.Decide(1, alpha, xi); d.Sleeps || d.NetGain != 0 {
		t.Errorf("never-sleep should idle at zero gain: %+v", d)
	}
}
