package schedule

import "errors"

// Sentinel failure classes shared by every scheduler and the resilient
// runtime. Solvers wrap them with fmt.Errorf("...: %w", Err...) so the
// human-readable message survives while callers branch with errors.Is:
//
//   - ErrInfeasible: the instance cannot be scheduled at all (a task
//     exceeds s_up even at its filled speed, or an equivalent structural
//     impossibility). The recovery chain treats it as "re-planning cannot
//     help" and escalates to racing.
//   - ErrDeadlineMiss: a schedule runs (or would run) a task past its
//     deadline.
//   - ErrSpeedCap: a schedule demands a speed above the platform's s_up.
var (
	ErrInfeasible   = errors.New("infeasible")
	ErrDeadlineMiss = errors.New("deadline miss")
	ErrSpeedCap     = errors.New("speed cap exceeded")
)
