package schedule

import "fmt"

// MissClass attributes a deadline miss (or a narrowly averted one) to its
// cause, so fault-injection runs can separate "the plan was already late"
// from "a fault pushed us late" from "a fault threatened the deadline but
// the recovery chain absorbed it".
type MissClass int

const (
	// MissPlanned marks a miss already present in the unperturbed input
	// schedule (or unavoidable from the inputs).
	MissPlanned MissClass = iota
	// MissFaultInduced marks a miss caused by injected faults that the
	// runtime could not recover from.
	MissFaultInduced
	// MissAverted marks a fault-threatened deadline that the recovery
	// chain met: recorded for auditability, not a real miss.
	MissAverted
)

// String implements fmt.Stringer.
func (c MissClass) String() string {
	switch c {
	case MissPlanned:
		return "planned"
	case MissFaultInduced:
		return "fault-induced"
	case MissAverted:
		return "averted"
	default:
		return fmt.Sprintf("MissClass(%d)", int(c))
	}
}

// Miss describes one deadline miss in detail: which job, by how much, and
// why. A job that never completed has Remaining > 0 and CompletedAt = 0;
// a late completion has Lateness = CompletedAt − Deadline > 0.
type Miss struct {
	// TaskID identifies the missing job.
	TaskID int
	// Deadline is the job's deadline.
	Deadline float64
	// CompletedAt is the completion time, or 0 if the job never completed.
	CompletedAt float64
	// Lateness is CompletedAt − Deadline for late completions (≤ 0 for
	// averted misses that met the deadline).
	Lateness float64
	// Remaining is the workload (cycles) left unexecuted, 0 if completed.
	Remaining float64
	// Class attributes the miss.
	Class MissClass
}

// String implements fmt.Stringer.
func (m Miss) String() string {
	if m.Remaining > 0 {
		return fmt.Sprintf("task %d: %s, %g cycles undelivered at deadline %g", m.TaskID, m.Class, m.Remaining, m.Deadline)
	}
	return fmt.Sprintf("task %d: %s, completed %+gs relative to deadline %g", m.TaskID, m.Class, m.Lateness, m.Deadline)
}
