// Package schedule defines the schedule intermediate representation shared
// by every SDEM algorithm, plus validation and an independent energy audit.
//
// Algorithms construct a Schedule (per-core execution segments with
// speeds); tests and experiments never trust an algorithm's own energy
// arithmetic but re-derive it with Audit, so the algorithms and the
// accounting cross-check each other.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/task"
)

// Tol is the absolute time/cycle tolerance used by validation and interval
// merging.
const Tol = 1e-9

// Interval is a half-open-ish time interval [Start, End]; zero-length
// intervals are permitted but usually merged away.
type Interval struct {
	Start, End float64
}

// Len returns the interval length (never negative).
func (iv Interval) Len() float64 { return math.Max(0, iv.End-iv.Start) }

// Segment is a contiguous execution of one task on one core at constant
// speed.
type Segment struct {
	TaskID int
	Start  float64
	End    float64
	// Speed in Hz; the segment delivers Speed·(End−Start) cycles.
	Speed float64
}

// Cycles returns the work delivered by the segment.
func (sg Segment) Cycles() float64 { return sg.Speed * (sg.End - sg.Start) }

// SleepPolicy states how a component (core or memory) treats idle gaps.
// It determines static and transition energy in the audit.
type SleepPolicy int

const (
	// SleepNever keeps the component idle-active through every gap,
	// paying static power for the whole gap (the MBKP baseline).
	SleepNever SleepPolicy = iota
	// SleepAlways transitions to sleep in every gap regardless of length,
	// paying one full transition overhead per gap (the naive MBKPS
	// baseline). With zero break-even time this equals free sleeping.
	SleepAlways
	// SleepBreakEven sleeps exactly in the gaps at least as long as the
	// break-even time (gap-wise optimal; what the SDEM schemes assume).
	SleepBreakEven
)

// String implements fmt.Stringer.
func (p SleepPolicy) String() string {
	switch p {
	case SleepNever:
		return "never"
	case SleepAlways:
		return "always"
	case SleepBreakEven:
		return "break-even"
	default:
		return fmt.Sprintf("SleepPolicy(%d)", int(p))
	}
}

// Schedule is a complete multi-core schedule over the accounting horizon
// [Start, End].
type Schedule struct {
	// NumCores is the number of physical cores charged by the audit;
	// cores without segments are idle throughout.
	NumCores int
	// Start and End delimit the accounting horizon. The paper uses
	// [common release, latest deadline] for the offline problems.
	Start, End float64
	// Cores holds the per-core segment lists, indexed by core.
	Cores [][]Segment
	// CorePolicy and MemoryPolicy select idle-gap behaviour for the
	// audit.
	CorePolicy   SleepPolicy
	MemoryPolicy SleepPolicy
}

// New returns an empty schedule for numCores cores over [start, end] with
// break-even sleeping (the model the optimal schemes assume).
//
//lint:allow auditcheck: constructor returns an empty schedule with nothing to normalize yet
func New(numCores int, start, end float64) *Schedule {
	return &Schedule{
		NumCores:     numCores,
		Start:        start,
		End:          end,
		Cores:        make([][]Segment, numCores),
		CorePolicy:   SleepBreakEven,
		MemoryPolicy: SleepBreakEven,
	}
}

// Add appends a segment to the given core, growing the core list if needed.
func (s *Schedule) Add(core int, sg Segment) {
	for core >= len(s.Cores) {
		s.Cores = append(s.Cores, nil)
	}
	if len(s.Cores) > s.NumCores {
		s.NumCores = len(s.Cores)
	}
	s.Cores[core] = append(s.Cores[core], sg)
}

// segmentsByStart sorts segments by start time. Sorting goes through a
// pointer receiver so the sort.Interface conversion stays allocation-free
// on the audit hot path (a slice header boxed by value would escape).
type segmentsByStart []Segment

func (x *segmentsByStart) Len() int           { return len(*x) }
func (x *segmentsByStart) Swap(i, j int)      { (*x)[i], (*x)[j] = (*x)[j], (*x)[i] }
func (x *segmentsByStart) Less(i, j int) bool { return (*x)[i].Start < (*x)[j].Start }

// segmentsSorted reports whether the segments are already ordered by start
// time — the common case when algorithms append in time order, letting
// Normalize skip the sort (and its allocations) entirely.
func segmentsSorted(segs []Segment) bool {
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].Start {
			return false
		}
	}
	return true
}

// Normalize sorts every core's segments by start time and drops empty
// segments. It must be called (or segments added in order) before
// validation or audit.
//
//sdem:hotpath
func (s *Schedule) Normalize() {
	for c := range s.Cores {
		segs := s.Cores[c][:0]
		for _, sg := range s.Cores[c] {
			if sg.End-sg.Start > Tol/10 {
				//lint:allow hotalloc: filters in place into s.Cores[c][:0]; len never exceeds the existing cap
				segs = append(segs, sg)
			}
		}
		s.Cores[c] = segs
		if !segmentsSorted(segs) {
			sort.Sort((*segmentsByStart)(&s.Cores[c]))
		}
	}
}

// Coalesce merges abutting equal-speed segments of the same task on each
// core. The resilient replay executes plans in checkpointed slices; after
// a fault-free replay coalescing restores the exact planned segment list,
// and after a faulty one it keeps the output compact. The schedule must be
// normalized (sorted) first.
func (s *Schedule) Coalesce() {
	for c := range s.Cores {
		segs := s.Cores[c]
		if len(segs) < 2 {
			continue
		}
		out := segs[:1]
		for _, sg := range segs[1:] {
			last := &out[len(out)-1]
			if sg.TaskID == last.TaskID &&
				sg.Start <= last.End+Tol &&
				math.Abs(sg.Speed-last.Speed) <= Tol*math.Max(1, last.Speed) {
				if sg.End > last.End {
					last.End = sg.End
				}
				continue
			}
			out = append(out, sg)
		}
		s.Cores[c] = out
	}
}

// ValidateOptions tunes schedule validation.
type ValidateOptions struct {
	// NonPreemptive additionally requires each task to occupy a single
	// contiguous constant-speed run on one core (§3's offline model).
	NonPreemptive bool
	// SpeedMax caps segment speeds; zero means uncapped.
	SpeedMax float64
}

// Validate checks structural sanity and real-time feasibility: segments
// sorted and non-overlapping per core, within the horizon; every task
// executes within [release, deadline] and receives its full workload; no
// task runs on two cores at once (and never migrates, matching §3).
func (s *Schedule) Validate(tasks task.Set, opts ValidateOptions) error {
	byID := make(map[int]task.Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	delivered := make(map[int]float64, len(tasks))
	taskCores := make(map[int]int)
	taskSegs := make(map[int]int)
	type span struct{ a, b float64 }
	taskSpans := make(map[int][]span)

	for c, segs := range s.Cores {
		var prevEnd = math.Inf(-1)
		for i, sg := range segs {
			if sg.End < sg.Start-Tol {
				return fmt.Errorf("core %d segment %d: end %g before start %g", c, i, sg.End, sg.Start)
			}
			if sg.Start < s.Start-Tol || sg.End > s.End+Tol {
				return fmt.Errorf("core %d segment %d: [%g,%g] outside horizon [%g,%g]", c, i, sg.Start, sg.End, s.Start, s.End)
			}
			if sg.Start < prevEnd-Tol {
				return fmt.Errorf("core %d: segment %d overlaps previous (starts %g before %g)", c, i, sg.Start, prevEnd)
			}
			prevEnd = sg.End
			if sg.Speed < 0 {
				return fmt.Errorf("core %d segment %d: negative speed %g", c, i, sg.Speed)
			}
			if opts.SpeedMax > 0 && sg.Speed > opts.SpeedMax*(1+Tol)+Tol {
				return fmt.Errorf("core %d segment %d: speed %g exceeds cap %g: %w", c, i, sg.Speed, opts.SpeedMax, ErrSpeedCap)
			}
			t, ok := byID[sg.TaskID]
			if !ok {
				return fmt.Errorf("core %d segment %d: unknown task %d", c, i, sg.TaskID)
			}
			if sg.Start < t.Release-Tol {
				return fmt.Errorf("task %d starts at %g before release %g", t.ID, sg.Start, t.Release)
			}
			if sg.End > t.Deadline+Tol {
				return fmt.Errorf("task %d runs until %g past deadline %g: %w", t.ID, sg.End, t.Deadline, ErrDeadlineMiss)
			}
			if prev, seen := taskCores[sg.TaskID]; seen && prev != c {
				return fmt.Errorf("task %d migrates from core %d to core %d", sg.TaskID, prev, c)
			}
			taskCores[sg.TaskID] = c
			taskSegs[sg.TaskID]++
			taskSpans[sg.TaskID] = append(taskSpans[sg.TaskID], span{sg.Start, sg.End})
			delivered[sg.TaskID] += sg.Cycles()
		}
	}

	for _, t := range tasks {
		got := delivered[t.ID]
		// Cycle tolerance scales with workload magnitude.
		tol := Tol * math.Max(1, t.Workload)
		if math.Abs(got-t.Workload) > tol*10 {
			return fmt.Errorf("task %d delivered %g cycles, want %g: %w", t.ID, got, t.Workload, ErrInfeasible)
		}
		if opts.NonPreemptive && taskSegs[t.ID] > 1 {
			// A task may be recorded as several abutting equal-speed
			// segments; require contiguity rather than a literal single
			// segment.
			sp := taskSpans[t.ID]
			sort.Slice(sp, func(i, j int) bool { return sp[i].a < sp[j].a })
			for i := 1; i < len(sp); i++ {
				if sp[i].a > sp[i-1].b+Tol {
					return fmt.Errorf("task %d is preempted (gap at %g)", t.ID, sp[i-1].b)
				}
			}
		}
	}
	return nil
}

// busyIntervals returns the merged busy intervals of one core.
func busyIntervals(segs []Segment) []Interval {
	ivs := make([]Interval, 0, len(segs))
	for _, sg := range segs {
		ivs = append(ivs, Interval{sg.Start, sg.End})
	}
	return MergeIntervals(ivs)
}

// BusyIntervals returns the merged busy intervals of a segment list —
// the exported form of the audit's own merging, so trace emitters
// attribute idle intervals exactly as the audit charges them.
func BusyIntervals(segs []Segment) []Interval { return busyIntervals(segs) }

// Gaps returns the idle intervals of the horizon [start, end] not
// covered by the (merged, sorted) busy intervals.
func Gaps(busy []Interval, start, end float64) []Interval { return gaps(busy, start, end) }

// MergeIntervals sorts and merges overlapping or Tol-adjacent intervals.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End+Tol {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// MemoryBusy returns the merged intervals during which at least one core
// executes — the memory's busy intervals.
func (s *Schedule) MemoryBusy() []Interval {
	var all []Interval
	for _, segs := range s.Cores {
		for _, sg := range segs {
			all = append(all, Interval{sg.Start, sg.End})
		}
	}
	return MergeIntervals(all)
}

// gaps returns the idle intervals of the horizon [start, end] not covered
// by the (merged, sorted) busy intervals, including leading and trailing
// gaps.
func gaps(busy []Interval, start, end float64) []Interval {
	var out []Interval
	cur := start
	for _, iv := range busy {
		if iv.Start > cur+Tol {
			out = append(out, Interval{cur, iv.Start})
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if end > cur+Tol {
		out = append(out, Interval{cur, end})
	}
	return out
}

// CommonIdle returns the total common idle time Δ of the schedule — the
// time within the horizon when no core executes, i.e. the maximum time the
// memory could sleep.
func (s *Schedule) CommonIdle() float64 {
	var total float64
	for _, g := range gaps(s.MemoryBusy(), s.Start, s.End) {
		total += g.Len()
	}
	return total
}

// Breakdown itemizes audited energy in joules.
type Breakdown struct {
	CoreDynamic      float64 // Σ β·s^λ over execution
	CoreStatic       float64 // α over execution + unslept idle
	CoreTransition   float64 // α·ξ per core sleep cycle
	CoreSwitch       float64 // DVS switch energy per speed change
	MemoryStatic     float64 // α_m over busy + unslept idle
	MemoryTransition float64 // α_m·ξ_m per memory sleep cycle
	MemorySleep      float64 // seconds the memory actually sleeps
	CoreSleeps       int     // number of core sleep cycles
	MemorySleeps     int     // number of memory sleep cycles
	SpeedSwitches    int     // number of DVS frequency changes
}

// Total returns the audited system-wide energy.
func (b Breakdown) Total() float64 {
	return b.CoreDynamic + b.CoreStatic + b.CoreTransition + b.CoreSwitch +
		b.MemoryStatic + b.MemoryTransition
}

// Sleeps reports whether a gap of length g puts a component with static
// power alpha and break-even time xi to sleep under policy p — the same
// decision the audit's gap charging makes.
func (p SleepPolicy) Sleeps(g, alpha, xi float64) bool {
	_, _, slept, _ := gapCost(g, alpha, xi, p)
	return slept > 0
}

// GapEnergy returns the total energy (static + transition) the audit
// charges for one idle gap of length g under policy p — the closed-form
// solvers use it to price candidate idle tails without building a
// schedule.
func (p SleepPolicy) GapEnergy(g, alpha, xi float64) float64 {
	st, tr, _, _ := gapCost(g, alpha, xi, p)
	return st + tr
}

// Decision is the compact provenance record of one idle gap's
// sleep-or-idle choice: what the audit's gap charging decided, by what
// margin relative to the break-even time, and what the decision saved
// over staying idle-active. It exists so observability layers can
// replay the paper's per-gap break-even comparison without re-deriving
// gapCost's case analysis.
type Decision struct {
	// Sleeps reports whether the component transitions to sleep.
	Sleeps bool
	// Margin is the gap length minus the break-even time xi: positive
	// past break-even, negative for gaps too short to pay the
	// transition back.
	Margin float64
	// NetGain is the energy saved versus staying idle-active for the
	// whole gap (alpha·g minus what the policy actually charges);
	// alpha·(g−xi) for a break-even sleep, 0 when idling was chosen,
	// negative when SleepAlways sleeps at a loss.
	NetGain float64
}

// Decide returns the decision record of one idle gap of length g for a
// component with static power alpha and break-even time xi under p —
// the same case analysis the audit charges by, exposed for decision
// provenance.
func (p SleepPolicy) Decide(g, alpha, xi float64) Decision {
	st, tr, _, sleeps := gapCost(g, alpha, xi, p)
	return Decision{
		Sleeps:  sleeps,
		Margin:  g - xi,
		NetGain: alpha*g - (st + tr),
	}
}

// gapCost charges one idle gap of length g for a component with static
// power alpha and break-even time xi under the given policy. It returns
// static energy, transition energy, slept seconds and whether a sleep
// happened.
func gapCost(g, alpha, xi float64, p SleepPolicy) (static, transition, slept float64, sleeps bool) {
	if g <= Tol {
		return 0, 0, 0, false
	}
	if numeric.IsZero(alpha, 0) {
		// A leak-free component is indifferent; call it asleep for the
		// sleep-time statistics.
		return 0, 0, g, false
	}
	switch p {
	case SleepNever:
		return alpha * g, 0, 0, false
	case SleepAlways:
		return 0, alpha * xi, g, true
	case SleepBreakEven:
		if g >= xi {
			return 0, alpha * xi, g, true
		}
		return alpha * g, 0, 0, false
	default:
		return alpha * g, 0, 0, false
	}
}

// intervalsByStart sorts intervals by start time through a pointer
// receiver, keeping the sort.Interface conversion allocation-free on the
// audit hot path.
type intervalsByStart []Interval

func (x *intervalsByStart) Len() int           { return len(*x) }
func (x *intervalsByStart) Swap(i, j int)      { (*x)[i], (*x)[j] = (*x)[j], (*x)[i] }
func (x *intervalsByStart) Less(i, j int) bool { return (*x)[i].Start < (*x)[j].Start }

// Auditor audits schedules through a reusable interval scratch buffer.
// The golden-section solver of the overhead scheme audits a fresh
// candidate schedule per objective evaluation — hundreds of times per
// solve — so the audit must not allocate per call. A zero Auditor is
// ready to use; it is not safe for concurrent use.
//
// The package-level Audit and AuditPerCore construct a throwaway Auditor:
// same results, no reuse.
type Auditor struct {
	ivs intervalsByStart
}

// mergedCore fills the scratch with the merged busy intervals of one
// core's segments. The result aliases the scratch: consume it before the
// next merged* call.
func (a *Auditor) mergedCore(segs []Segment) []Interval {
	a.ivs = a.ivs[:0]
	for _, sg := range segs {
		a.ivs = append(a.ivs, Interval{sg.Start, sg.End})
	}
	return a.merge()
}

// mergedAll fills the scratch with the merged busy intervals of every
// core — the memory's busy intervals. Same aliasing rule as mergedCore.
func (a *Auditor) mergedAll(s *Schedule) []Interval {
	a.ivs = a.ivs[:0]
	for _, segs := range s.Cores {
		for _, sg := range segs {
			a.ivs = append(a.ivs, Interval{sg.Start, sg.End})
		}
	}
	return a.merge()
}

// merge sorts (if needed) and merges the scratch in place. Merging is
// order-insensitive among equal starts, so the result is identical to
// MergeIntervals on the same multiset of intervals.
func (a *Auditor) merge() []Interval {
	ivs := a.ivs
	if len(ivs) == 0 {
		return nil
	}
	sorted := true
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].Start {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Sort(&a.ivs)
	}
	// In-place merge: the write index never passes the read index.
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End+Tol {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			//lint:allow hotalloc: appends into the a.ivs backing it reads from; len never exceeds the existing cap
			out = append(out, iv)
		}
	}
	return out
}

// chargeCoreGap charges one core idle gap into the breakdown.
func chargeCoreGap(b *Breakdown, g float64, core power.Core, p SleepPolicy) {
	st, tr, _, slept := gapCost(g, core.Static, core.BreakEven, p)
	b.CoreStatic += st
	b.CoreTransition += tr
	if slept {
		b.CoreSleeps++
	}
}

// auditCore charges one core's execution, idle gaps and DVS switches
// into the breakdown.
func (a *Auditor) auditCore(b *Breakdown, s *Schedule, core power.Core, segs []Segment) {
	horizon := math.Max(0, s.End-s.Start)
	for i, sg := range segs {
		d := sg.End - sg.Start
		b.CoreDynamic += core.Dynamic(sg.Speed) * d
		b.CoreStatic += core.Static * d
		// A DVS switch happens whenever consecutive executions of this
		// core run at different speeds (sleep/wake costs are charged
		// separately via the break-even model).
		if i > 0 && math.Abs(sg.Speed-segs[i-1].Speed) > Tol*math.Max(1, sg.Speed) {
			b.SpeedSwitches++
			b.CoreSwitch += core.SwitchEnergy
		}
	}
	if len(segs) == 0 {
		// A never-used core: under SleepNever it idles the whole
		// horizon; under any sleeping policy it simply stays asleep (no
		// transition — it never woke).
		if s.CorePolicy == SleepNever {
			b.CoreStatic += core.Static * horizon
		}
		return
	}
	// Walk the gaps between merged busy intervals without materializing
	// them: same arithmetic as gaps(), in the same order.
	cur := s.Start
	for _, iv := range a.mergedCore(segs) {
		if iv.Start > cur+Tol {
			chargeCoreGap(b, iv.Start-cur, core, s.CorePolicy)
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if s.End > cur+Tol {
		chargeCoreGap(b, s.End-cur, core, s.CorePolicy)
	}
}

// auditMemory charges memory busy time and idle gaps into the breakdown.
func (a *Auditor) auditMemory(b *Breakdown, s *Schedule, mem power.Memory) {
	horizon := math.Max(0, s.End-s.Start)
	busy := a.mergedAll(s)
	var busyLen float64
	for _, iv := range busy {
		busyLen += iv.Len()
	}
	b.MemoryStatic += mem.Static * busyLen
	if numeric.IsZero(busyLen, Tol) {
		// Memory never woke: it sleeps through the whole horizon for
		// free under sleeping policies, or idles under SleepNever.
		if s.MemoryPolicy == SleepNever {
			b.MemoryStatic += mem.Static * horizon
		} else {
			b.MemorySleep += horizon
		}
		return
	}
	cur := s.Start
	for _, iv := range busy {
		if iv.Start > cur+Tol {
			a.chargeMemGap(b, iv.Start-cur, mem, s.MemoryPolicy)
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if s.End > cur+Tol {
		a.chargeMemGap(b, s.End-cur, mem, s.MemoryPolicy)
	}
}

// chargeMemGap charges one memory idle gap into the breakdown.
func (a *Auditor) chargeMemGap(b *Breakdown, g float64, mem power.Memory, p SleepPolicy) {
	st, tr, slept, sl := gapCost(g, mem.Static, mem.BreakEven, p)
	b.MemoryStatic += st
	b.MemoryTransition += tr
	b.MemorySleep += slept
	if sl {
		b.MemorySleeps++
	}
}

// Audit derives the energy breakdown of the schedule under the given
// (homogeneous-core) system model, reusing the auditor's scratch.
//
//sdem:hotpath
func (a *Auditor) Audit(s *Schedule, sys power.System) Breakdown {
	var b Breakdown
	numCores := s.NumCores
	if len(s.Cores) > numCores {
		numCores = len(s.Cores)
	}
	for c := 0; c < numCores; c++ {
		var segs []Segment
		if c < len(s.Cores) {
			segs = s.Cores[c]
		}
		a.auditCore(&b, s, sys.Core, segs)
	}
	a.auditMemory(&b, s, sys.Memory)
	return b
}

// AuditPerCore audits a schedule on heterogeneous cores, reusing the
// auditor's scratch: cores[i] is the power model of core i (§4's
// heterogeneous-core extension). Cores beyond len(cores) reuse the last
// model.
func (a *Auditor) AuditPerCore(s *Schedule, cores []power.Core, mem power.Memory) Breakdown {
	var b Breakdown
	if len(cores) == 0 {
		cores = defaultCores
	}
	numCores := s.NumCores
	if len(s.Cores) > numCores {
		numCores = len(s.Cores)
	}
	for c := 0; c < numCores; c++ {
		var segs []Segment
		if c < len(s.Cores) {
			segs = s.Cores[c]
		}
		model := cores[len(cores)-1]
		if c < len(cores) {
			model = cores[c]
		}
		a.auditCore(&b, s, model, segs)
	}
	a.auditMemory(&b, s, mem)
	return b
}

// defaultCores is the zero-model fallback for AuditPerCore with no cores.
var defaultCores = []power.Core{{}}

// Audit derives the energy breakdown of the schedule under the given
// system model. It is deliberately independent from every algorithm's
// internal arithmetic.
func Audit(s *Schedule, sys power.System) Breakdown {
	var a Auditor
	return a.Audit(s, sys)
}

// AuditPerCore audits a schedule on heterogeneous cores: cores[i] is the
// power model of core i (§4's heterogeneous-core extension). Cores beyond
// len(cores) reuse the last model.
func AuditPerCore(s *Schedule, cores []power.Core, mem power.Memory) Breakdown {
	var a Auditor
	return a.AuditPerCore(s, cores, mem)
}
