package lint_test

import (
	"go/ast"
	"strings"
	"testing"

	"sdem/internal/lint"
	"sdem/internal/lint/analysis"
)

// TestRunCleanPackage smoke-tests the go list loader and runner end to end
// on a package that must stay lint-clean (the framework itself).
func TestRunCleanPackage(t *testing.T) {
	diags, err := lint.Run(".", []string{"sdem/internal/lint/analysis"}, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDiagnosticOrderingByteStable drives lint.Run across several packages
// with a probe analyzer that reports every function declaration, and
// asserts the rendered diagnostics are byte-identical regardless of the
// pattern order the packages were requested in, and sorted by file, line,
// column. This is the determinism contract CI diffs rely on: reordering
// the build list must never reorder the findings.
func TestDiagnosticOrderingByteStable(t *testing.T) {
	probe := &analysis.Analyzer{
		Name: "orderprobe",
		Doc:  "reports every function declaration; exercises diagnostic ordering only",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	patterns := []string{"sdem/internal/power", "sdem/internal/task", "sdem/internal/numeric"}
	render := func(ps []string) []string {
		diags, err := lint.Run(".", ps, []*analysis.Analyzer{probe})
		if err != nil {
			t.Fatalf("lint.Run(%v): %v", ps, err)
		}
		out := make([]string, len(diags))
		for i, d := range diags {
			out[i] = d.String()
		}
		return out
	}

	forward := render(patterns)
	reversed := render([]string{patterns[2], patterns[1], patterns[0]})

	if len(forward) == 0 {
		t.Fatal("probe reported no diagnostics; the ordering assertion is vacuous")
	}
	if len(forward) != len(reversed) {
		t.Fatalf("diagnostic count depends on pattern order: %d vs %d", len(forward), len(reversed))
	}
	for i := range forward {
		if forward[i] != reversed[i] {
			t.Fatalf("diagnostic %d differs with pattern order:\n  forward:  %s\n  reversed: %s", i, forward[i], reversed[i])
		}
	}
	// The rendered stream must be sorted by file, then line, then column.
	for i := 1; i < len(forward); i++ {
		a, b := forward[i-1], forward[i]
		if fileOf(a) > fileOf(b) {
			t.Fatalf("diagnostics not sorted by file:\n  %s\n  %s", a, b)
		}
	}
}

func fileOf(rendered string) string {
	return rendered[:strings.Index(rendered, ":")]
}
