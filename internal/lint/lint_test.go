package lint_test

import (
	"testing"

	"sdem/internal/lint"
)

// TestRunCleanPackage smoke-tests the go list loader and runner end to end
// on a package that must stay lint-clean (the framework itself).
func TestRunCleanPackage(t *testing.T) {
	diags, err := lint.Run(".", []string{"sdem/internal/lint/analysis"}, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
