// Package analysistest runs analyzers over fixture packages laid out
// under testdata/src/<pkg>, mirroring the x/tools analysistest contract:
// a `// want "regexp"` comment on a source line asserts that the analyzer
// reports a matching diagnostic on that line, and every reported
// diagnostic must be matched by a want comment.
//
// RunAnalyzers drives the full interprocedural pipeline over the fixture
// tree: every fixture package reachable from the named ones is loaded,
// a call graph is built across them, and each analyzer's FactPass runs
// over all of them (dependencies first) before the reporting passes —
// the same protocol the real lint.Run driver uses on the module.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sdem/internal/lint/analysis"
	"sdem/internal/lint/callgraph"
)

// fixtureLoader resolves imports against testdata/src first, so fixtures
// can model cross-package invariants (e.g. a fake schedule package) without
// touching the real module.
type fixtureLoader struct {
	root    string // testdata/src
	fset    *token.FileSet
	checked map[string]*types.Package
	files   map[string][]*ast.File
	infos   map[string]*types.Info
	order   []string // completed loads, dependencies first
	stdlib  types.Importer
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	dir := filepath.Join(l.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, _, err := l.load(path)
		return pkg, err
	}
	return l.stdlib.Import(path)
}

func (l *fixtureLoader) load(path string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, l.files[path], nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l.checked[path] = pkg
	l.files[path] = files
	l.infos[path] = info
	l.order = append(l.order, path)
	return pkg, files, nil
}

// Run applies one analyzer to testdata/src/<pkgPath> under dir and checks
// its diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	RunAnalyzers(t, dir, []*analysis.Analyzer{a}, pkgPath)
}

// RunAnalyzers applies the analyzers to the named fixture packages with
// the full module protocol: all reachable fixture packages are loaded and
// fact passes run over every one of them (dependencies first, exactly as
// lint.Run orders the real module), but diagnostics are asserted only for
// the named packages — dependency fixtures provide context, not findings.
func RunAnalyzers(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &fixtureLoader{
		root:    filepath.Join(dir, "testdata", "src"),
		fset:    token.NewFileSet(),
		checked: make(map[string]*types.Package),
		files:   make(map[string][]*ast.File),
		infos:   make(map[string]*types.Info),
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	for _, pkgPath := range pkgPaths {
		if _, _, err := l.load(pkgPath); err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
	}

	srcs := make([]callgraph.SourcePackage, 0, len(l.order))
	for _, path := range l.order {
		srcs = append(srcs, callgraph.SourcePackage{
			Fset: l.fset, Files: l.files[path], Types: l.checked[path], Info: l.infos[path],
		})
	}
	graph := callgraph.Build(srcs)

	newPass := func(a *analysis.Analyzer, path string, m *analysis.Module) *analysis.Pass {
		return &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     l.files[path],
			Pkg:       l.checked[path],
			TypesInfo: l.infos[path],
			Module:    m,
		}
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		module := analysis.NewModule(l.root, graph)
		if a.FactPass != nil {
			for _, path := range l.order {
				if err := a.FactPass(newPass(a, path, module)); err != nil {
					t.Fatalf("fact pass %s over %s: %v", a.Name, path, err)
				}
			}
		}
		for _, path := range pkgPaths {
			pass := newPass(a, path, module)
			if err := a.Run(pass); err != nil {
				t.Fatalf("running %s over %s: %v", a.Name, path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}

	var wantFiles []*ast.File
	for _, path := range pkgPaths {
		wantFiles = append(wantFiles, l.files[path]...)
	}
	wants := collectWants(t, l.fset, wantFiles)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// collectWants extracts `// want "re"` expectations from fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				quoted, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("bad want comment %q: %v", c.Text, err)
				}
				re, err := regexp.Compile(quoted)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", quoted, err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, want{pos.Filename, pos.Line, re})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
