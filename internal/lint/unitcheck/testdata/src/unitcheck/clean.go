package unitcheck

// Core mimics power.Core's speed fields.
type Core struct {
	SpeedMax float64
	SpeedMin float64
	Count    int
}

// MHz mimics power.MHz.
func MHz(f float64) float64 { return f * 1e6 }

// SetSpeed has a speed-named parameter unitcheck guards.
func SetSpeed(speed float64) {}

const baseSpeedHz = 1.9e9

func clean() Core {
	c := Core{SpeedMax: MHz(1900), SpeedMin: baseSpeedHz, Count: 3}
	c.SpeedMax = 0 // zero is the documented unset/unbounded sentinel
	c.Count = 8    // non-speed field: literals fine
	SetSpeed(MHz(700))
	SetSpeed(baseSpeedHz)
	SetSpeed(0)
	return c
}

func cleanSuppressed() {
	SetSpeed(1.9e9) //lint:allow unitcheck: raw hertz literal under test
}
