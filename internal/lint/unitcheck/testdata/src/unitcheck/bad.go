package unitcheck

func bad() Core {
	c := Core{SpeedMax: 1900} // want "untyped literal for speed/frequency field SpeedMax"
	c.SpeedMin = 700          // want "untyped literal assigned to speed/frequency field SpeedMin"
	SetSpeed(2.5e9)           // want "untyped literal passed as speed/frequency parameter speed"
	return c
}

func badPositional() Core {
	return Core{1900, 0, 3} // want "untyped literal for speed/frequency field SpeedMax"
}

func badNegative() {
	SetSpeed(-1.5) // want "untyped literal passed as speed/frequency parameter speed"
}
