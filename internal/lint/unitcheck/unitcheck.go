// Package unitcheck implements the sdemlint analyzer that forbids raw
// numeric literals flowing into speed/frequency slots.
//
// The power model is SI throughout (hertz, seconds, watts); the paper's
// tables speak MHz. A bare `1900` assigned to a SpeedMax field compiles
// silently and is wrong by six orders of magnitude. Literals must pass
// through power.MHz / power.GHz (or a named constant that did), so the
// unit conversion is visible at the assignment site.
package unitcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"sdem/internal/lint/analysis"
)

// Analyzer is the unitcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc: "flags untyped numeric literals assigned to speed/frequency fields or " +
		"passed as speed/frequency arguments; route them through power.MHz/power.GHz " +
		"or a named constant",
	Run: run,
}

// hzName matches identifiers that denote a speed or frequency in hertz.
var hzName = regexp.MustCompile(`(?i)(speed|freq|hertz|hz)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkCompositeLit(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !hzName.MatchString(sel.Sel.Name) {
						continue
					}
					if isFloat64(pass, lhs) && isBareNonzeroLiteral(pass, n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(), "untyped literal assigned to speed/frequency field %s; use power.MHz/power.GHz or a named constant", sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCompositeLit flags literal values for speed/frequency struct fields,
// in both keyed and positional form.
func checkCompositeLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		var field *types.Var
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					field = st.Field(j)
					break
				}
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
			value = elt
		}
		if field == nil || !hzName.MatchString(field.Name()) || !isFloat64Type(field.Type()) {
			continue
		}
		if isBareNonzeroLiteral(pass, value) {
			pass.Reportf(value.Pos(), "untyped literal for speed/frequency field %s; use power.MHz/power.GHz or a named constant", field.Name())
		}
	}
}

// checkCall flags literal arguments bound to speed/frequency-named
// parameters of the callee.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			break
		}
		p := params.At(idx)
		if !hzName.MatchString(p.Name()) || !isFloat64Type(p.Type()) {
			continue
		}
		if isBareNonzeroLiteral(pass, arg) {
			pass.Reportf(arg.Pos(), "untyped literal passed as speed/frequency parameter %s; use power.MHz/power.GHz or a named constant", p.Name())
		}
	}
}

// isBareNonzeroLiteral reports whether e is a plain numeric literal (or its
// negation) other than zero. Zero is the documented "unset/unbounded"
// sentinel on every speed field, so it stays legal.
func isBareNonzeroLiteral(pass *analysis.Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		tv := pass.TypesInfo.Types[v]
		if tv.Value == nil {
			return false
		}
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return f != 0 //lint:allow floatcmp: literal zero is bit-exact by construction
	case *ast.UnaryExpr:
		return isBareNonzeroLiteral(pass, v.X)
	}
	return false
}

func isFloat64(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isFloat64Type(tv.Type)
}

func isFloat64Type(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
