package unitcheck_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, ".", unitcheck.Analyzer, "unitcheck")
}
