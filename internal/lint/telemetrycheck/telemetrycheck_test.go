package telemetrycheck_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/telemetrycheck"
)

func TestTelemetrycheck(t *testing.T) {
	analysistest.Run(t, ".", telemetrycheck.Analyzer, "telemetrycheck")
}

// TestTelemetrycheckServeMiddleware checks the per-file allowance: in
// sdem/internal/serve, middleware.go may read the wall clock (request
// latency) while every other file in the package is still quarantined.
func TestTelemetrycheckServeMiddleware(t *testing.T) {
	analysistest.Run(t, ".", telemetrycheck.Analyzer, "sdem/internal/serve")
}
