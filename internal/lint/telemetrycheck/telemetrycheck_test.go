package telemetrycheck_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/telemetrycheck"
)

func TestTelemetrycheck(t *testing.T) {
	analysistest.Run(t, ".", telemetrycheck.Analyzer, "telemetrycheck")
}
