// Package telemetrycheck implements the sdemlint analyzer that quarantines
// wall-clock reads to internal/telemetry.
//
// The module's determinism contract — byte-identical experiment output at
// any worker count, with telemetry on or off — holds only because every
// metric and trace timestamp derives from virtual schedule/sim time. A
// time.Now (or Since/Until) anywhere in a solver, simulator or sweep path
// smuggles nondeterminism into that chain. Wall-clock reads are
// legitimate only inside the sanctioned quarantine:
// internal/telemetry's Profiler and internal/telemetry/wspan's
// request-lifecycle span trees, both of whose output is segregated from
// the deterministic dumps. Every other site that genuinely needs wall
// time — such as the serve middleware's request-latency measurement —
// carries a //lint:allow telemetrycheck comment stating why, so the
// justification lives next to the read instead of in a list maintained
// here.
package telemetrycheck

import (
	"go/ast"
	"go/types"

	"sdem/internal/lint/analysis"
)

// Analyzer is the telemetrycheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "telemetrycheck",
	Doc: "flags wall-clock reads (time.Now, time.Since, time.Until) outside internal/telemetry; " +
		"use virtual schedule/sim time, route profiling through telemetry.Profiler, or suppress " +
		"with //lint:allow telemetrycheck where wall time is the point",
	Run: run,
}

// allowedPkgs is the wall-clock quarantine: the telemetry package's
// Profiler and the wspan wall-clock span trees may read real time
// anywhere in their packages; nothing else may.
var allowedPkgs = map[string]bool{
	"sdem/internal/telemetry":       true,
	"sdem/internal/telemetry/wspan": true,
}

// wallClockFuncs are the package time functions that read the real clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && allowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(), "wall-clock time.%s outside internal/telemetry; use virtual schedule/sim time or the telemetry Profiler, or add //lint:allow telemetrycheck explaining why wall time is intended", sel.Sel.Name)
			return true
		})
	}
	return nil
}
