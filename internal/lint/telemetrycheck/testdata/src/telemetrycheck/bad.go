package telemetrycheck

import "time"

// stampBad timestamps a trace event from the wall clock — the exact
// nondeterminism leak the analyzer exists to catch.
func stampBad() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now outside internal/telemetry"
}

// measureBad hand-rolls wall-time profiling instead of going through the
// telemetry Profiler.
func measureBad(f func()) time.Duration {
	t0 := time.Now() // want "wall-clock time.Now outside internal/telemetry"
	f()
	return time.Since(t0) // want "wall-clock time.Since outside internal/telemetry"
}

// deadlineBad converts a wall deadline into a duration.
func deadlineBad(d time.Time) time.Duration {
	return time.Until(d) // want "wall-clock time.Until outside internal/telemetry"
}
