package telemetrycheck

import "time"

// suppressed documents why wall time is intended.
func suppressed() int64 {
	return time.Now().Unix() //lint:allow telemetrycheck: log-file naming wants a wall timestamp, not sim time
}

// durationsOK: time.Duration arithmetic and formatting never read the
// clock; only Now/Since/Until are quarantined.
func durationsOK(d time.Duration) string {
	return (d * 2).Round(time.Microsecond).String()
}

// unrelatedNow is a different Now entirely; only package time's is
// flagged.
func unrelatedNow() float64 {
	return simClock{}.Now()
}

type simClock struct{}

// Now returns virtual simulation time, which is exactly what telemetry
// should be stamped with.
func (simClock) Now() float64 { return 0 }
