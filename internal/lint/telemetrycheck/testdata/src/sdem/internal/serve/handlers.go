package serve

import "time"

// stampResponse shows the allowance is per-file, not per-package: a
// handler reading the wall clock is still flagged even though
// middleware.go in the same package is exempt.
func stampResponse() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now outside internal/telemetry"
}

// handlerLatency hand-rolls what belongs in the middleware.
func handlerLatency(f func()) time.Duration {
	t0 := time.Now() // want "wall-clock time.Now outside internal/telemetry"
	f()
	return time.Since(t0) // want "wall-clock time.Since outside internal/telemetry"
}
