package serve

import "time"

// latency models the middleware's request-latency measurement: this file
// (middleware.go of sdem/internal/serve) is the one sanctioned wall-clock
// site outside internal/telemetry, so none of these calls are flagged.
func latency(h func()) time.Duration {
	start := time.Now()
	h()
	return time.Since(start)
}

// deadlineSlack is likewise allowed here.
func deadlineSlack(t time.Time) time.Duration {
	return time.Until(t)
}
