package serve

import "time"

// latency models the middleware's request-latency measurement: wall-clock
// reads outside internal/telemetry are fine exactly where a //lint:allow
// comment justifies them, and flagged everywhere else — even in this file.
func latency(h func()) time.Duration {
	//lint:allow telemetrycheck: request latency is a wall quantity by definition
	start := time.Now()
	h()
	//lint:allow telemetrycheck: matching end of the wall-latency measurement
	return time.Since(start)
}

// deadlineSlack has no justification comment, so it is flagged.
func deadlineSlack(t time.Time) time.Duration {
	return time.Until(t) // want "wall-clock time\\.Until outside internal/telemetry"
}
