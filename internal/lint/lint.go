// Package lint wires the sdemlint analyzers to the package loader: it
// loads the requested packages, builds the module-wide call graph, runs
// every analyzer's fact pass and then its reporting pass in deterministic
// dependency order, and collects the surviving (non-suppressed)
// diagnostics in a stable order.
package lint

import (
	"sort"

	"sdem/internal/lint/analysis"
	"sdem/internal/lint/auditcheck"
	"sdem/internal/lint/callgraph"
	"sdem/internal/lint/detcheck"
	"sdem/internal/lint/floatcmp"
	"sdem/internal/lint/hotalloc"
	"sdem/internal/lint/load"
	"sdem/internal/lint/randsource"
	"sdem/internal/lint/sharedmut"
	"sdem/internal/lint/telemetrycheck"
	"sdem/internal/lint/tolconst"
	"sdem/internal/lint/unitcheck"
)

// Analyzers returns the full sdemlint suite in display order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatcmp.Analyzer,
		tolconst.Analyzer,
		unitcheck.Analyzer,
		auditcheck.Analyzer,
		randsource.Analyzer,
		telemetrycheck.Analyzer,
		detcheck.Analyzer,
		hotalloc.Analyzer,
		sharedmut.Analyzer,
	}
}

// Run loads the packages matching patterns under dir and applies the given
// analyzers, returning all findings sorted by file, line, column, then
// analyzer name — byte-stable regardless of package walk order.
//
// Analyzers with a FactPass run it over every package first (dependencies
// before dependents), so the reporting Run passes see the complete
// cross-package fact set and the module call graph via Pass.Module.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	ordered := load.DependencyOrder(pkgs)

	srcs := make([]callgraph.SourcePackage, len(ordered))
	for i, pkg := range ordered {
		srcs[i] = callgraph.SourcePackage{Fset: pkg.Fset, Files: pkg.Files, Types: pkg.Types, Info: pkg.Info}
	}
	graph := callgraph.Build(srcs)

	newPass := func(a *analysis.Analyzer, pkg *load.Package, m *analysis.Module) *analysis.Pass {
		return &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Module:    m,
		}
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		module := analysis.NewModule(dir, graph)
		if a.FactPass != nil {
			for _, pkg := range ordered {
				if err := a.FactPass(newPass(a, pkg, module)); err != nil {
					return nil, err
				}
			}
		}
		for _, pkg := range ordered {
			pass := newPass(a, pkg, module)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
