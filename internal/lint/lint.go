// Package lint wires the sdemlint analyzers to the package loader: it runs
// every analyzer over every requested package and collects the surviving
// (non-suppressed) diagnostics in a stable order.
package lint

import (
	"sort"

	"sdem/internal/lint/analysis"
	"sdem/internal/lint/auditcheck"
	"sdem/internal/lint/floatcmp"
	"sdem/internal/lint/load"
	"sdem/internal/lint/randsource"
	"sdem/internal/lint/telemetrycheck"
	"sdem/internal/lint/tolconst"
	"sdem/internal/lint/unitcheck"
)

// Analyzers returns the full sdemlint suite in display order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatcmp.Analyzer,
		tolconst.Analyzer,
		unitcheck.Analyzer,
		auditcheck.Analyzer,
		randsource.Analyzer,
		telemetrycheck.Analyzer,
	}
}

// Run loads the packages matching patterns under dir and applies the given
// analyzers, returning all findings sorted by position then analyzer name.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
