package auditcheck_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/auditcheck"
)

func TestAuditcheck(t *testing.T) {
	analysistest.Run(t, ".", auditcheck.Analyzer, "auditcheck")
}
