package auditcheck

import "schedule"

func Bad() *schedule.Schedule { // want "exported Bad returns a schedule.Schedule but never calls Normalize or Validate"
	return &schedule.Schedule{}
}

func BadValue() (schedule.Schedule, bool) { // want "exported BadValue returns a schedule.Schedule but never calls Normalize or Validate"
	return schedule.Schedule{}, true
}

func GoodNormalize() *schedule.Schedule {
	s := &schedule.Schedule{}
	s.Normalize()
	return s
}

func GoodValidate() (*schedule.Schedule, error) {
	s := &schedule.Schedule{}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func GoodDelegates() *schedule.Schedule {
	return GoodNormalize()
}

func GoodDelegatesTuple() (*schedule.Schedule, error) {
	return GoodValidate()
}

// unexported builders are construction helpers, not package boundaries.
func internalBuilder() *schedule.Schedule {
	return &schedule.Schedule{}
}

func AllowedEmpty() *schedule.Schedule { //lint:allow auditcheck: constructor returns an empty schedule
	return &schedule.Schedule{}
}

// NotSchedule returns something else entirely; out of scope.
func NotSchedule() int {
	_ = internalBuilder()
	return 0
}
