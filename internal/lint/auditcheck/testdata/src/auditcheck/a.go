package auditcheck

import "schedule"

func Bad() *schedule.Schedule { // want "exported Bad returns a schedule.Schedule but never calls Normalize or Validate"
	return &schedule.Schedule{}
}

func BadValue() (schedule.Schedule, bool) { // want "exported BadValue returns a schedule.Schedule but never calls Normalize or Validate"
	return schedule.Schedule{}, true
}

func GoodNormalize() *schedule.Schedule {
	s := &schedule.Schedule{}
	s.Normalize()
	return s
}

func GoodValidate() (*schedule.Schedule, error) {
	s := &schedule.Schedule{}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func GoodDelegates() *schedule.Schedule {
	return GoodNormalize()
}

func GoodDelegatesTuple() (*schedule.Schedule, error) {
	return GoodValidate()
}

// unexported builders are construction helpers, not package boundaries.
func internalBuilder() *schedule.Schedule {
	return &schedule.Schedule{}
}

func AllowedEmpty() *schedule.Schedule { //lint:allow auditcheck: constructor returns an empty schedule
	return &schedule.Schedule{}
}

// NotSchedule returns something else entirely; out of scope.
func NotSchedule() int {
	_ = internalBuilder()
	return 0
}

// Result models a solver Solution / runtime Result: the schedule crosses
// the package boundary inside a struct field.
type Result struct {
	Schedule *schedule.Schedule
	Energy   float64
}

// Outer carries a Result, which carries a Schedule — the obligation is
// transitive.
type Outer struct {
	R *Result
}

func BadCarrier() *Result { // want "exported BadCarrier returns a schedule.Schedule but never calls Normalize or Validate"
	return &Result{Schedule: &schedule.Schedule{}}
}

func BadNestedCarrier() (Outer, error) { // want "exported BadNestedCarrier returns a schedule.Schedule but never calls Normalize or Validate"
	return Outer{R: &Result{Schedule: &schedule.Schedule{}}}, nil
}

func GoodCarrier() *Result {
	s := &schedule.Schedule{}
	s.Normalize()
	return &Result{Schedule: s}
}

func GoodCarrierDelegates() *Result {
	return GoodCarrier()
}

func GoodNestedDelegates() (Outer, error) {
	return wrapOuter(), nil
}

func wrapOuter() Outer { return Outer{R: GoodCarrier()} }
