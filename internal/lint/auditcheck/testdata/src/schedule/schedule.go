// Package schedule is a fixture stand-in for sdem/internal/schedule: the
// auditcheck analyzer matches the Schedule type by name and package
// basename so the contract can be modelled without importing the real
// module into testdata.
package schedule

// Schedule mimics the real schedule IR.
type Schedule struct {
	segs []int
}

// Normalize mimics the real normalization pass.
func (s *Schedule) Normalize() {}

// Validate mimics the real validation pass.
func (s *Schedule) Validate() error { return nil }
