// Package auditcheck implements the sdemlint analyzer that keeps every
// schedule handed across a package boundary normalized and auditable.
//
// The schedule package's contract is that Normalize (or a Validate that
// implies it was called) runs before a Schedule is audited; an exported
// solver entry point that returns a Schedule without either call can leak
// unsorted or empty segments into the energy audit. The analyzer flags any
// exported function whose results include a schedule.Schedule — directly,
// or carried inside a result struct such as a solver Solution, the
// simulator's Result, or the resilient runtime's Result (transitively: a
// struct whose fields carry a Schedule counts too) — unless its body calls
// Normalize/Validate or visibly delegates by returning another
// schedule-producing call.
package auditcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"sdem/internal/lint/analysis"
)

// Analyzer is the auditcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "auditcheck",
	Doc: "flags exported functions returning a schedule.Schedule (directly or " +
		"inside a result struct) whose body neither calls Normalize/Validate " +
		"nor delegates to another schedule-returning call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !returnsSchedule(pass, fn) {
				continue
			}
			if callsNormalizeOrValidate(fn.Body) || delegatesSchedule(pass, fn.Body) {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "exported %s returns a schedule.Schedule but never calls Normalize or Validate; normalize before handing the schedule out, or delegate to a schedule-returning call", fn.Name.Name)
		}
	}
	return nil
}

// isScheduleType reports whether t is schedule.Schedule or *schedule.Schedule
// (matched by type name and package basename, so fixtures can model the
// contract with a local schedule package).
func isScheduleType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Schedule" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "schedule" || strings.HasSuffix(path, "/schedule")
}

// isScheduleCarrier reports whether t is a Schedule, or a (pointer to a)
// named struct that transitively carries one in its fields — a solver
// Solution, the simulator's Result, or the resilient runtime's Result,
// whose embedded schedule crosses the package boundary just the same.
func isScheduleCarrier(t types.Type, seen map[types.Type]bool) bool {
	if isScheduleType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || seen[named] {
		return false
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isScheduleCarrier(st.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

// returnsSchedule reports whether any declared result of fn is a Schedule
// or a struct carrying one.
func returnsSchedule(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && tv.Type != nil && isScheduleCarrier(tv.Type, map[types.Type]bool{}) {
			return true
		}
	}
	return false
}

// callsNormalizeOrValidate reports whether the body contains a call whose
// method name is Normalize or Validate (on any receiver — the schedule
// itself, or a Solution wrapper that forwards).
func callsNormalizeOrValidate(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Normalize" || sel.Sel.Name == "Validate" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// delegatesSchedule reports whether some return statement hands back the
// result of another call that produces a Schedule, moving the
// normalization obligation to the callee.
func delegatesSchedule(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok || tv.Type == nil {
				continue
			}
			switch t := tv.Type.(type) {
			case *types.Tuple:
				for i := 0; i < t.Len(); i++ {
					if isScheduleCarrier(t.At(i).Type(), map[types.Type]bool{}) {
						found = true
					}
				}
			default:
				if isScheduleCarrier(t, map[types.Type]bool{}) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
