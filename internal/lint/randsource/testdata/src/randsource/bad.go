package randsource

import "math/rand"

// sweepBad seeds a grid point with an ad-hoc linear mix — the
// order-dependent, collision-prone pattern the analyzer exists to catch.
func sweepBad(seed int64, u float64) float64 {
	r := rand.New(rand.NewSource(seed*7919 + int64(u))) // want "raw rand.NewSource outside stats/workload"
	return r.Float64()
}

// aliasedBad still resolves through the math/rand package object.
func aliasedBad() int64 {
	src := rand.NewSource(42) // want "raw rand.NewSource outside stats/workload"
	return src.Int63()
}
