package randsource

import "math/rand"

// suppressed documents why direct seeding is intended.
func suppressed(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) //lint:allow randsource: seeded generator takes the already-derived seed as input
	return r.Float64()
}

// unrelatedNewSource is a different NewSource entirely; only math/rand's
// is flagged.
func unrelatedNewSource() int {
	return localrand{}.NewSource(7)
}

type localrand struct{}

func (localrand) NewSource(n int) int { return n }
