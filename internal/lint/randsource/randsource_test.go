package randsource_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/randsource"
)

func TestRandsource(t *testing.T) {
	analysistest.Run(t, ".", randsource.Analyzer, "randsource")
}
