// Package randsource implements the sdemlint analyzer that confines raw
// math/rand seeding to the designated randomness packages
// (internal/stats, internal/workload).
//
// Everywhere else, a literal rand.NewSource(expr) is an order-dependent
// or colliding seed waiting to happen: the parallel sweep engine's
// determinism rests on every grid point's seed being a pure,
// collision-free function of its coordinates, which is exactly what
// stats.DeriveSeed provides and what ad-hoc mixes (seed*7919+coord) do
// not. Sites that genuinely want direct seeding — seeded generators that
// take the derived seed as input, one-off demo instances — carry a
// //lint:allow randsource comment stating why.
package randsource

import (
	"go/ast"
	"go/types"

	"sdem/internal/lint/analysis"
)

// Analyzer is the randsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc: "flags raw math/rand NewSource calls outside internal/stats and internal/workload; " +
		"derive grid-point seeds with stats.DeriveSeed, or suppress with //lint:allow randsource " +
		"where direct seeding is the point",
	Run: run,
}

// allowedPkgs are the packages whose purpose is seeded generation: the
// seed-derivation toolbox itself and the workload generators it feeds.
var allowedPkgs = map[string]bool{
	"sdem/internal/stats":    true,
	"sdem/internal/workload": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && allowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewSource" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pkgName.Imported().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			pass.Reportf(call.Pos(), "raw rand.NewSource outside stats/workload; derive the seed with stats.DeriveSeed, or add //lint:allow randsource explaining why direct seeding is intended")
			return true
		})
	}
	return nil
}
