package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"

	"sdem/internal/lint/callgraph"
)

// Fact is a typed datum an analyzer attaches to a types.Object in one
// package and reads back while analyzing another — the cross-package
// channel of the interprocedural framework. Implementations are pointers
// to structs; the marker method keeps arbitrary values out.
type Fact interface{ AFact() }

// Module is the whole-run view shared by every Pass of one analyzer: the
// module call graph, the analyzer's fact store, and a memo space for
// derived structures (transitive closures) that should be computed once
// per run rather than once per package.
//
// The driver creates one Module per analyzer per Run invocation and
// threads it through all passes, so facts exported while analyzing an
// early package are visible to later packages. Package order is the
// loader's deterministic dependency order.
type Module struct {
	// Dir is the module root directory ("" when the driver has no module
	// on disk, e.g. fixture tests).
	Dir string
	// Graph is the module-wide call graph (nil when the driver did not
	// build one).
	Graph *callgraph.Graph

	facts map[types.Object]map[reflect.Type]Fact
	memo  map[string]any
}

// NewModule returns an empty Module for the given root directory and call
// graph. Drivers call this once per analyzer per run.
func NewModule(dir string, g *callgraph.Graph) *Module {
	return &Module{
		Dir:   dir,
		Graph: g,
		facts: make(map[types.Object]map[reflect.Type]Fact),
		memo:  make(map[string]any),
	}
}

// Memo returns the previously stored value under key, or computes, stores
// and returns it. Analyzers use it for run-wide derived state such as the
// hot-function closure.
func (m *Module) Memo(key string, compute func() any) any {
	if v, ok := m.memo[key]; ok {
		return v
	}
	v := compute()
	m.memo[key] = v
	return v
}

// exportFact records fact for obj, replacing any existing fact of the same
// concrete type.
func (m *Module) exportFact(obj types.Object, f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer", f))
	}
	byType := m.facts[obj]
	if byType == nil {
		byType = make(map[reflect.Type]Fact)
		m.facts[obj] = byType
	}
	byType[t] = f
}

// importFact copies the stored fact of ptr's type for obj into ptr,
// reporting whether one existed.
func (m *Module) importFact(obj types.Object, ptr Fact) bool {
	t := reflect.TypeOf(ptr)
	if t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer", ptr))
	}
	stored, ok := m.facts[obj][t]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ObjectFact pairs an object with one exported fact.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factsOfType returns every (object, fact) pair whose fact has the same
// concrete type as sample, sorted by object position for determinism.
func (m *Module) factsOfType(sample Fact) []ObjectFact {
	t := reflect.TypeOf(sample)
	var out []ObjectFact
	for obj, byType := range m.facts {
		if f, ok := byType[t]; ok {
			out = append(out, ObjectFact{obj, f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Object, out[j].Object
		if a.Pos() != b.Pos() {
			return a.Pos() < b.Pos()
		}
		return objName(a) < objName(b)
	})
	return out
}

func objName(o types.Object) string {
	if p := o.Pkg(); p != nil {
		return p.Path() + "." + o.Name()
	}
	return o.Name()
}

// ExportObjectFact attaches fact to obj for the current analyzer's run.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	p.module().exportFact(obj, f)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one was attached. Facts exported by any earlier pass
// of the same analyzer (any package) are visible.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.module().importFact(obj, ptr)
}

// AllObjectFacts returns every fact of sample's concrete type exported so
// far in this run, sorted by object position.
func (p *Pass) AllObjectFacts(sample Fact) []ObjectFact {
	return p.module().factsOfType(sample)
}

// module returns the pass's Module, lazily creating a pass-local one so
// single-package drivers (old tests) keep working without a driver-built
// Module; facts then live only for that one pass.
func (p *Pass) module() *Module {
	if p.Module == nil {
		p.Module = NewModule("", nil)
	}
	return p.Module
}
