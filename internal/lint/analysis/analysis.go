// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary used by the sdemlint analyzers.
//
// The container this repo builds in has no module proxy access, so the
// canonical x/tools framework cannot be vendored; this package keeps the
// same core shapes (Analyzer, Pass, Diagnostic) so the analyzers read like
// standard go/analysis code and could be ported to the real framework by
// changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments.
	Name string
	// Doc is the one-paragraph help text shown by `sdemlint -help`.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
	// FactPass, when non-nil, makes the analyzer interprocedural: the
	// driver runs FactPass over every package (in dependency order)
	// before any Run, letting the analyzer export Facts — e.g. "this
	// function carries a //sdem:hotpath directive" — that every
	// subsequent Run can read regardless of package order. Diagnostics
	// reported from FactPass are discarded.
	FactPass func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the run-wide state shared by all passes of this analyzer:
	// call graph, fact store, memo space. Single-package drivers may
	// leave it nil; fact methods then degrade to pass-local storage.
	Module *Module

	diagnostics []Diagnostic
}

// Diagnostic is one finding, positioned inside the package being analyzed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, with //lint:allow
// suppressions already filtered out.
func (p *Pass) Diagnostics() []Diagnostic {
	allowed := allowedLines(p.Fset, p.Files, p.Analyzer.Name)
	var out []Diagnostic
	for _, d := range p.diagnostics {
		if allowed[lineKey{d.Pos.Filename, d.Pos.Line}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

type lineKey struct {
	file string
	line int
}

// allowRe matches suppression comments: //lint:allow <name>[,<name>...][: reason]
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,\- ]+?)(?::.*)?$`)

// allowedLines collects the set of (file, line) pairs on which findings of
// the named analyzer are suppressed. A //lint:allow comment suppresses the
// line it sits on; a comment alone on a line suppresses the line below it.
func allowedLines(fset *token.FileSet, files []*ast.File, name string) map[lineKey]bool {
	out := make(map[lineKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				match := false
				for _, n := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' }) {
					if n == name || n == "all" {
						match = true
						break
					}
				}
				if !match {
					continue
				}
				// Suppress the comment's own line (trailing-comment form)
				// and the line below (standalone-comment form).
				pos := fset.Position(c.Pos())
				out[lineKey{pos.Filename, pos.Line}] = true
				out[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
