package floatcmp

// Violations: every comparison here must be reported.

func badEq(a, b float64) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func badNeq(a, b float64) bool {
	return a != b // want "exact != comparison of floating-point values"
}

func badZero(w float64) bool {
	return w == 0 // want "exact == comparison of floating-point values"
}

type wrapped float64

func badNamed(a, b wrapped) bool {
	return a != b // want "exact != comparison of floating-point values"
}

func badSwitch(x float64) int {
	switch x {
	case 1.0: // want "switch-case on a floating-point value"
		return 1
	case 2.0: // want "switch-case on a floating-point value"
		return 2
	}
	return 0
}
