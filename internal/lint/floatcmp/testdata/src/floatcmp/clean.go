package floatcmp

import "math"

const phi = 1.618

// Clean: nothing in this file may be reported.

func cleanInt(n, m int) bool { return n == m }

func cleanOrdered(a, b float64) bool { return a < b || a >= b }

func cleanInf(a float64) bool { return a == math.Inf(1) }

func cleanConst() bool { return phi == 1.618 }

func cleanSuppressed(a, b float64) bool {
	return a == b //lint:allow floatcmp: bit-exact sentinel comparison under test
}

func cleanSuppressedAbove(a, b float64) bool {
	//lint:allow floatcmp: standalone-comment suppression form
	return a != b
}

func cleanDefaultSwitch(x float64) int {
	switch x { // tag-only switch with just a default clause is fine
	default:
		return 0
	}
}
