package floatcmp_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, ".", floatcmp.Analyzer, "floatcmp")
}
