// Package floatcmp implements the sdemlint analyzer that forbids exact
// `==`/`!=` (and switch-case) comparisons between floating-point
// expressions in non-test code.
//
// Every SDEM solver decides case boundaries by comparing accumulated
// float64 seconds, hertz and joules; an exact comparison silently turns a
// rounding ulp into a different schedule. Comparisons must flow through
// numeric.IsZero / numeric.ApproxEqual (or numeric.AlmostEqual) with an
// explicit tolerance, or carry a //lint:allow floatcmp comment explaining
// why bit equality is intended.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdem/internal/lint/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags exact ==/!= and switch-case comparisons between floating-point " +
		"expressions; use numeric.IsZero/numeric.ApproxEqual with an explicit " +
		"tolerance, or suppress with //lint:allow floatcmp when bit equality is intended",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, n.X) || !isFloat(pass, n.Y) {
					return true
				}
				if bothConstant(pass, n.X, n.Y) {
					return true
				}
				if isInfCall(n.X) || isInfCall(n.Y) {
					// Comparing against math.Inf is exact by construction;
					// rounding cannot produce a spurious infinity ulp.
					return true
				}
				pass.Reportf(n.OpPos, "exact %s comparison of floating-point values; use numeric.IsZero or numeric.ApproxEqual with an explicit tolerance", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isFloat(pass, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok || len(cc.List) == 0 {
						continue
					}
					pass.Reportf(cc.Case, "switch-case on a floating-point value compares exactly; restructure with numeric.ApproxEqual guards")
				}
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression has floating-point type.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// bothConstant reports whether both operands are compile-time constants
// (a constant comparison is decided by the compiler, not by runtime
// rounding, so it is out of scope).
func bothConstant(pass *analysis.Pass, x, y ast.Expr) bool {
	return pass.TypesInfo.Types[x].Value != nil && pass.TypesInfo.Types[y].Value != nil
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "math" && sel.Sel.Name == "Inf"
}
