package sharedmut_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/sharedmut"
)

func TestSharedmut(t *testing.T) {
	analysistest.Run(t, ".", sharedmut.Analyzer, "sharedmut")
}
