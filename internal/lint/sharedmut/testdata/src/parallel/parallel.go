// Package parallel is a fixture stand-in for the module's parallel
// package: the analyzer matches Map by name and package-path suffix.
package parallel

import "context"

// Map mirrors the worker contract of the real parallel.Map.
func Map(ctx context.Context, workers, n int, fn func(context.Context, int) (int, error)) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := fn(ctx, i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
