// Package sharedmut is the fixture for the sharedmut analyzer.
package sharedmut

import (
	"context"
	"sync"

	"parallel"
)

type totals struct {
	sum int
}

func capturedScalar(ctx context.Context, xs []int) {
	sum := 0
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		sum += xs[i] // want "parallel.Map worker writes captured variable \"sum\""
		return 0, nil
	})
	_ = sum
}

func capturedCounter(ctx context.Context, xs []int) {
	count := 0
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		count++ // want "parallel.Map worker writes captured variable \"count\""
		return 0, nil
	})
	_ = count
}

func capturedStructField(ctx context.Context, xs []int) {
	var t totals
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		t.sum = xs[i] // want "parallel.Map worker writes captured variable \"t\""
		return 0, nil
	})
	_ = t
}

func fixedIndexWrite(ctx context.Context, xs []int) {
	scratch := make([]int, 1)
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		scratch[0] = xs[i] // want "parallel.Map worker writes captured variable \"scratch\""
		return 0, nil
	})
	_ = scratch
}

func ownedIndexWrite(ctx context.Context, xs []int) {
	out := make([]int, len(xs))
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		out[i] = 2 * xs[i] // worker owns index i: clean
		return out[i], nil
	})
	_ = out
}

func mutexGuardedWrite(ctx context.Context, xs []int) {
	var mu sync.Mutex
	sum := 0
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		mu.Lock()
		sum += xs[i] // lock held: clean
		mu.Unlock()
		return 0, nil
	})
	_ = sum
}

func workerLocalWrite(ctx context.Context, xs []int) {
	parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (int, error) {
		acc := 0
		acc += xs[i] // worker-local: clean
		return acc, nil
	})
}
