// Package sharedmut implements the sdemlint analyzer that checks worker
// closures passed to parallel.Map for shared mutable state.
//
// parallel.Map's contract is that worker i owns exactly the indices it is
// handed: writing out[i] is safe, while writing any other captured
// variable races with sibling workers and — worse for this module —
// makes results depend on worker count and interleaving, breaking the
// determinism contract. The analyzer flags assignments and ++/--
// statements inside a parallel.Map worker whose target is captured from
// the enclosing scope, with two exemptions:
//
//   - indexed writes whose index expression uses a worker parameter
//     (the owned-index idiom: out[i] = v), and
//   - closures that take a sync.Mutex/RWMutex lock anywhere in the body
//     (coarse: the analyzer does not prove the write is inside the
//     critical section, only that the author thought about locking).
package sharedmut

import (
	"go/ast"
	"go/types"
	"strings"

	"sdem/internal/lint/analysis"
)

// Analyzer is the sharedmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedmut",
	Doc: "flags writes to captured variables inside parallel.Map worker closures; " +
		"workers must write only through their own index parameter, hold a mutex, or use " +
		"sync/atomic — anything else races and breaks worker-count determinism",
	Run: run,
}

// isParallelMap reports whether the call is parallel.Map. Matching is by
// package-path suffix so testdata fixture packages exercise the analyzer
// without replicating the module path.
func isParallelMap(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Map" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "parallel" || strings.HasSuffix(path, "/parallel")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelMap(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkWorker(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkWorker inspects one worker closure for captured-variable writes.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit) {
	if takesLock(pass, lit) {
		return
	}
	params := paramObjects(pass, lit)

	report := func(target ast.Expr, idx ast.Expr) {
		base := baseIdent(target)
		if base == nil {
			return
		}
		v, ok := pass.TypesInfo.Uses[base].(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return // the worker's own local or parameter
		}
		if idx != nil && usesAny(pass, idx, params) {
			return // owned-index write: out[i] = v
		}
		pass.Reportf(target.Pos(), "parallel.Map worker writes captured variable %q; write only through the worker's index parameter, or guard with a mutex — unsynchronized writes race and break worker-count determinism", v.Name())
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				target, idx := splitIndex(lhs)
				report(target, idx)
			}
		case *ast.IncDecStmt:
			target, idx := splitIndex(n.X)
			report(target, idx)
		}
		return true
	})
}

// splitIndex peels one indexing layer: for s[i] it returns (s, i); for
// anything else (target, nil).
func splitIndex(e ast.Expr) (ast.Expr, ast.Expr) {
	if ix, ok := e.(*ast.IndexExpr); ok {
		return ix.X, ix.Index
	}
	return e, nil
}

// baseIdent unwraps selectors, stars, parens, and further indexing down to
// the root identifier of an assignment target.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// paramObjects collects the worker closure's parameter objects.
func paramObjects(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// usesAny reports whether the expression references any of the objects.
func usesAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// takesLock reports whether the closure body calls Lock/RLock on a sync
// mutex anywhere.
func takesLock(pass *analysis.Pass, lit *ast.FuncLit) bool {
	locked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if locked {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		locked = true
		return false
	})
	return locked
}
