package escape

import "testing"

const sample = `# sdem/internal/schedule
internal/schedule/schedule.go:10:6: can inline Tolerance
internal/schedule/schedule.go:42:13: s escapes to heap
internal/schedule/schedule.go:42:13: []Segment{...} does not escape
internal/schedule/schedule.go:57:9: moved to heap: total
/abs/path/core.go:3:4: x escapes to heap

not a diagnostic line
`

func TestParse(t *testing.T) {
	r, err := Parse("/root/mod", sample)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 positions", r.Len())
	}

	rel := Pos{File: "/root/mod/internal/schedule/schedule.go", Line: 42, Col: 13}
	if !r.HeapAt(rel) {
		t.Errorf("expected heap diagnostic at %v", rel)
	}
	if got := len(r.Messages(rel)); got != 2 {
		t.Errorf("messages at %v = %d, want 2", rel, got)
	}

	inline := Pos{File: "/root/mod/internal/schedule/schedule.go", Line: 10, Col: 6}
	if r.HeapAt(inline) {
		t.Errorf("inline note must not count as heap allocation")
	}

	moved := Pos{File: "/root/mod/internal/schedule/schedule.go", Line: 57, Col: 9}
	if !r.HeapAt(moved) {
		t.Errorf("moved-to-heap must count as heap allocation")
	}

	abs := Pos{File: "/abs/path/core.go", Line: 3, Col: 4}
	if !r.HeapAt(abs) {
		t.Errorf("absolute paths must be preserved")
	}
}

func TestHeapOnLine(t *testing.T) {
	r, err := Parse("/root/mod", sample)
	if err != nil {
		t.Fatal(err)
	}
	file := "/root/mod/internal/schedule/schedule.go"
	if !r.HeapOnLine(file, 42) {
		t.Errorf("line 42 carries a heap diagnostic")
	}
	if r.HeapOnLine(file, 10) {
		t.Errorf("line 10 carries only an inline note")
	}
	if r.HeapOnLine(file, 999) {
		t.Errorf("line 999 has no diagnostics")
	}
	var nilRep *Report
	if nilRep.HeapOnLine(file, 42) || nilRep.HeapAt(Pos{}) || nilRep.Len() != 0 {
		t.Errorf("nil report must answer negatively everywhere")
	}
}

func TestHeapMsg(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"s escapes to heap", true},
		{"moved to heap: total", true},
		{"[]Segment{...} does not escape", false},
		{"can inline Audit", false},
		{"leaking param: sys to result ~r0 level=0, content escapes to heap", true},
	}
	for _, c := range cases {
		if got := heapMsg(c.msg); got != c.want {
			t.Errorf("heapMsg(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}
