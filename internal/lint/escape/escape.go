// Package escape runs the Go compiler's escape analysis
// (`go build -gcflags=-m`) over module packages and indexes the resulting
// diagnostics by source position.
//
// The hotalloc analyzer cross-checks its syntactic findings against this
// ground truth: a construct that looks like it boxes into an interface is
// only reported when the compiler confirms the value escapes to the heap.
// The build cache replays -m diagnostics on unchanged packages, so
// repeated runs are cheap and byte-stable.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// devNull is the discard target for the probe build's object output.
const devNull = os.DevNull

// Pos is one diagnostic position. File is absolute.
type Pos struct {
	File      string
	Line, Col int
}

// Report holds the indexed escape diagnostics of one analysis run.
type Report struct {
	msgs map[Pos][]string
}

// heapMsg reports whether an -m diagnostic message states that something
// is heap-allocated at its position.
func heapMsg(msg string) bool {
	return strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "does not escape") ||
		strings.HasPrefix(msg, "moved to heap")
}

// Messages returns the compiler messages recorded at the position.
func (r *Report) Messages(p Pos) []string {
	if r == nil {
		return nil
	}
	return r.msgs[p]
}

// HeapAt reports whether the compiler recorded a heap allocation
// ("escapes to heap" / "moved to heap") at the position.
func (r *Report) HeapAt(p Pos) bool {
	for _, m := range r.Messages(p) {
		if heapMsg(m) {
			return true
		}
	}
	return false
}

// HeapOnLine reports whether any position on the given file line carries a
// heap-allocation diagnostic. Column-insensitive: the compiler sometimes
// anchors a diagnostic on the operand rather than the whole expression.
func (r *Report) HeapOnLine(file string, line int) bool {
	if r == nil {
		return false
	}
	for p, msgs := range r.msgs {
		if p.File != file || p.Line != line {
			continue
		}
		for _, m := range msgs {
			if heapMsg(m) {
				return true
			}
		}
	}
	return false
}

// Len returns the number of positions carrying diagnostics.
func (r *Report) Len() int {
	if r == nil {
		return 0
	}
	return len(r.msgs)
}

// Analyze compiles the given packages (import paths or ./dir patterns)
// rooted at dir with -gcflags=-m and parses the diagnostics. The plain -m
// flag applies to exactly the packages named on the command line, so
// dependencies compile quietly.
func Analyze(dir string, pkgs ...string) (*Report, error) {
	if len(pkgs) == 0 {
		return &Report{msgs: map[Pos][]string{}}, nil
	}
	args := append([]string{"build", "-o", devNull, "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags=-m: %v\n%s", err, clip(stderr.String()))
	}
	return Parse(dir, stderr.String())
}

// clip bounds an error excerpt.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

// Parse indexes raw -m output. Relative file paths resolve against dir.
func Parse(dir, out string) (*Report, error) {
	r := &Report{msgs: make(map[Pos][]string)}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pos, msg, ok := splitDiag(strings.TrimSpace(line))
		if !ok {
			continue
		}
		if !filepath.IsAbs(pos.File) {
			pos.File = filepath.Join(dir, pos.File)
		}
		r.msgs[pos] = append(r.msgs[pos], msg)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("escape: scanning -m output: %v", err)
	}
	return r, nil
}

// splitDiag splits "path.go:12:34: message" into position and message.
func splitDiag(line string) (Pos, string, bool) {
	// Find ".go:" to anchor the path end; escapes diagnostics always
	// carry line and column.
	i := strings.Index(line, ".go:")
	if i < 0 {
		return Pos{}, "", false
	}
	file := line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return Pos{}, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return Pos{}, "", false
	}
	return Pos{File: file, Line: ln, Col: col}, strings.TrimSpace(parts[2]), true
}
