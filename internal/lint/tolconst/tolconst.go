// Package tolconst implements the sdemlint analyzer that forbids inline
// tolerance literals (exact powers of ten from 1e-6 down to 1e-15) outside
// named constant declarations in non-test code.
//
// Scattered ad-hoc epsilons drift apart and hide which tolerance a
// comparison is actually calibrated against. Each package gets one named,
// documented tolerance constant (traceable to schedule.Tol or
// numeric.DefaultTol); derived scales are written as expressions over that
// constant, not as fresh literals.
package tolconst

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"

	"sdem/internal/lint/analysis"
)

// Analyzer is the tolconst pass.
var Analyzer = &analysis.Analyzer{
	Name: "tolconst",
	Doc: "flags inline tolerance literals (1e-6 … 1e-15) outside named constant " +
		"declarations; hoist them onto a documented package tolerance constant " +
		"traceable to schedule.Tol",
	Run: run,
}

// tolValues holds the exact float64 values of 1e-6 … 1e-15, built with
// strconv so the analyzer matches literals bit-for-bit without carrying
// tolerance literals of its own.
var tolValues = func() map[float64]string {
	m := make(map[float64]string, 10)
	for k := 6; k <= 15; k++ {
		s := fmt.Sprintf("1e-%d", k)
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			panic(err)
		}
		m[v] = s
	}
	return m
}()

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Literals inside const declarations are the fix, not the hazard.
		var constRanges [][2]token.Pos
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				constRanges = append(constRanges, [2]token.Pos{gd.Pos(), gd.End()})
			}
		}
		inConst := func(pos token.Pos) bool {
			for _, r := range constRanges {
				if pos >= r[0] && pos <= r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok == token.CONST {
					// Local const blocks inside function bodies also count
					// as named-constant declarations.
					constRanges = append(constRanges, [2]token.Pos{n.Pos(), n.End()})
				}
			case *ast.BasicLit:
				if n.Kind != token.FLOAT {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n]
				if !ok || tv.Value == nil {
					return true
				}
				v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
				canon, isTol := tolValues[v]
				if !isTol || inConst(n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(), "inline tolerance literal %s (= %s); hoist it onto the package's named tolerance constant documented against schedule.Tol", n.Value, canon)
			}
			return true
		})
	}
	return nil
}
