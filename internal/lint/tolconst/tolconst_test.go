package tolconst_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/tolconst"
)

func TestTolconst(t *testing.T) {
	analysistest.Run(t, ".", tolconst.Analyzer, "tolconst")
}
