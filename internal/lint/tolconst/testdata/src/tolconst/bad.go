package tolconst

func badComparison(x float64) bool {
	return x < 1e-9 // want "inline tolerance literal 1e-9"
}

func badLocal() float64 {
	eps := 1e-12 // want "inline tolerance literal 1e-12"
	return eps
}

func badArgument(x float64) bool {
	return almost(x, 0.000001) // want "inline tolerance literal 0.000001"
}

func almost(a, tol float64) bool { return a < tol && a > -tol }
