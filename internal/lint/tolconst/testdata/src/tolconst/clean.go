package tolconst

// tol is this package's named tolerance constant: allowed, and the fix
// tolconst steers violations towards.
const tol = 1e-9

const (
	tolTight = 1e-12
	scale    = 2.5
)

func cleanNamed(x float64) bool { return x < tol }

func cleanDerived(x float64) bool { return x < tol/100 }

func cleanLocalConst(x float64) bool {
	const local = 1e-12
	return x < local
}

func cleanOutOfRange(x float64) bool {
	// Neither an exact power of ten in 1e-6…1e-15 nor a tolerance: ignored.
	return x < 5e-7 || x > 1e-5 || x < 1e-16 || x == 0.25
}

func cleanSuppressed(x float64) bool {
	return x < 1e-9 //lint:allow tolconst: suppression under test
}
