// Package detaux is a fixture dependency: Dump writes to stdout (so
// callers of Dump transitively reach an output sink), Pure does not.
package detaux

import "fmt"

// Dump prints the value: a direct emitter the fact pass must record.
func Dump(v int) {
	fmt.Println(v)
}

// Pure computes without output.
func Pure(v int) int {
	return v + 1
}
