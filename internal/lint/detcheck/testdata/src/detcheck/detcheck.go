// Package detcheck is the fixture for the detcheck analyzer.
package detcheck

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"detaux"
)

// helper reaches a sink in two hops: helper -> detaux.Dump -> fmt.Println.
func helper(v int) {
	detaux.Dump(v)
}

func directSinkInRange(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches an output sink: loop body calls fmt.Println, which writes via fmt.Println"
		fmt.Println(k, v)
	}
}

func crossPackageSinkInRange(m map[string]int) {
	for _, v := range m { // want "map iteration order reaches an output sink: loop body calls Dump, which writes via fmt.Println"
		detaux.Dump(v)
	}
}

func twoHopSinkInRange(m map[string]int) {
	for _, v := range m { // want "map iteration order reaches an output sink: loop body calls helper, which writes via fmt.Println"
		helper(v)
	}
}

func pureCallInRange(m map[string]int) int {
	total := 0
	for _, v := range m { // no sink reached: Pure only computes
		total += detaux.Pure(v)
	}
	return total
}

func sortedEmission(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // collecting keys makes no calls: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func wallClockDirect() {
	fmt.Println(time.Now()) // want "nondeterministic value from time.Now reaches output sink fmt.Println"
}

func wallClockViaLocal() {
	t := time.Now()
	fmt.Println(t) // want "nondeterministic value from time.Now reaches output sink fmt.Println"
}

func globalRandToEmitter() {
	detaux.Dump(rand.Int()) // want "nondeterministic value from rand.Int reaches output sink Dump"
}

func allowedWallClock() {
	fmt.Println(time.Now()) //lint:allow detcheck: fixture checks suppression
}

// cacheEvictLogged mirrors a cache shard that picks its eviction victim
// by map order and logs it: the victim choice is nondeterministic.
func cacheEvictLogged(entries map[string]int) {
	for k := range entries { // want "map iteration order reaches an output sink: loop body calls fmt.Println"
		fmt.Println("evict", k)
		delete(entries, k)
		return
	}
}

// cacheEvictFIFO drains in insertion order instead — the serving
// layer's schedule-cache discipline: deterministic, clean.
func cacheEvictFIFO(entries map[string]int, order []string) []string {
	victim := order[0]
	delete(entries, victim)
	fmt.Println("evict", victim)
	return order[1:]
}

// gateRelease mirrors the admission gate: the service-time sample comes
// in as data (the caller owns the clock read), so folding it into the
// EWMA and reporting it is clean.
func gateRelease(ewma *int64, sampleNs int64) {
	*ewma += (sampleNs - *ewma) / 8
	detaux.Dump(int(*ewma))
}

// gateReleaseClocked reads the clock itself and leaks it: flagged.
func gateReleaseClocked(start time.Time) {
	detaux.Dump(int(time.Since(start))) // want "nondeterministic value from time.Since reaches output sink Dump"
}
