package detcheck_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/detcheck"
)

func TestDetcheck(t *testing.T) {
	analysistest.Run(t, ".", detcheck.Analyzer, "detcheck")
}
