// Package detcheck implements the interprocedural sdemlint analyzer that
// guards the module's determinism contract: byte-identical output at any
// worker count, with telemetry on or off.
//
// The analyzer taints nondeterminism sources and reports when they reach
// an output sink:
//
//   - Ordering nondeterminism: a `range` over a map whose loop body calls
//     an output sink — directly (fmt.Fprintf, (*json.Encoder).Encode,
//     io.WriteString, os.Stdout/os.Stderr methods) or transitively through
//     any module function that reaches one (computed over the module call
//     graph from cross-package Facts). Collecting keys for sorting makes
//     no calls, so the sorted-iteration idiom passes untouched.
//   - Value nondeterminism: a value obtained from time.Now/Since/Until or
//     from math/rand's global generator that flows (intra-function, via
//     direct use or a local variable) into an argument of a sink or
//     sink-reaching call.
//
// Sites where nondeterministic output is the point — the telemetry
// Profiler's wall-clock dumps, the serve middleware's request log — carry
// a //lint:allow detcheck comment stating why.
package detcheck

import (
	"go/ast"
	"go/types"

	"sdem/internal/lint/analysis"
	"sdem/internal/lint/callgraph"
)

// Analyzer is the detcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "detcheck",
	Doc: "flags nondeterminism sources (map iteration order, time.Now, global math/rand) " +
		"that reach output sinks, interprocedurally via the module call graph; sort before " +
		"emitting, derive values deterministically, or suppress with //lint:allow detcheck " +
		"where nondeterministic output is the point",
	FactPass: factPass,
	Run:      run,
}

// emitsFact marks a function that directly calls a primitive output sink.
type emitsFact struct {
	Via string // e.g. "fmt.Fprintf"
}

func (*emitsFact) AFact() {}

// fmtSinks are the fmt functions that write to a stream.
var fmtSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// sinkName reports whether the call is a primitive output sink, naming it.
func sinkName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if fmtSinks[fn.Name()] {
			return "fmt." + fn.Name(), true
		}
	case "io":
		if fn.Name() == "WriteString" {
			return "io.WriteString", true
		}
	case "encoding/json":
		if fn.Name() == "Encode" {
			return "(*json.Encoder).Encode", true
		}
	}
	// Any method call on the process-wide standard streams.
	if base, ok := sel.X.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[base.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return "os." + obj.Name() + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// sourceName reports whether the call reads a nondeterminism source,
// naming it. Only the global (unseeded) math/rand generator counts: a
// seeded *rand.Rand is the stats.DeriveSeed discipline's concern.
func sourceName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch pkg.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			return "time." + sel.Sel.Name, true
		}
	case "math/rand", "math/rand/v2":
		return "rand." + sel.Sel.Name, true
	}
	return "", false
}

// factPass records which functions directly write to a primitive sink.
func factPass(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if via, ok := sinkName(pass.TypesInfo, call); ok {
					pass.ExportObjectFact(obj, &emitsFact{Via: via})
					return false
				}
				return true
			})
		}
	}
	return nil
}

// reach holds the memoized sink-reachability view of the call graph.
type reach struct {
	// via maps every function that reaches a sink to the primitive sink
	// name it reaches; direct emitters map to their own sink.
	via map[*types.Func]string
}

func buildReach(pass *analysis.Pass) *reach {
	return pass.Module.Memo("detcheck.reach", func() any {
		r := &reach{via: make(map[*types.Func]string)}
		g := pass.Module.Graph
		if g == nil {
			// No module graph (single-package driver): only direct facts.
			for _, of := range pass.AllObjectFacts(&emitsFact{}) {
				if fn, ok := of.Object.(*types.Func); ok {
					r.via[fn] = of.Fact.(*emitsFact).Via
				}
			}
			return r
		}
		var targets []*callgraph.Node
		byNode := make(map[*callgraph.Node]string)
		for _, of := range pass.AllObjectFacts(&emitsFact{}) {
			fn, ok := of.Object.(*types.Func)
			if !ok {
				continue
			}
			if n := g.Node(fn); n != nil {
				targets = append(targets, n)
				byNode[n] = of.Fact.(*emitsFact).Via
			} else {
				r.via[fn] = of.Fact.(*emitsFact).Via
			}
		}
		target, _ := g.ReachesAny(targets)
		for n, t := range target {
			r.via[n.Func] = byNode[t]
		}
		return r
	}).(*reach)
}

func run(pass *analysis.Pass) error {
	rc := buildReach(pass)

	// calleeSink resolves a call to "writes via <sink>" when the callee is
	// a primitive sink or transitively reaches one.
	calleeSink := func(call *ast.CallExpr) (callee, via string, ok bool) {
		if via, ok := sinkName(pass.TypesInfo, call); ok {
			return via, via, true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return "", "", false
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return "", "", false
		}
		if via, ok := rc.via[fn]; ok {
			return fn.Name(), via, true
		}
		return "", "", false
	}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body, calleeSink)
			checkValueFlow(pass, fd.Body, calleeSink)
		}
	}
	return nil
}

// checkMapRanges reports map-range loops whose body calls into an output
// sink, making the emission order depend on map iteration order.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt, calleeSink func(*ast.CallExpr) (string, string, bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee, via, ok := calleeSink(call); ok {
				pass.Reportf(rng.Pos(), "map iteration order reaches an output sink: loop body calls %s, which writes via %s; collect and sort keys first, or add //lint:allow detcheck explaining why the order cannot matter", callee, via)
				return false
			}
			return true
		})
		return true
	})
}

// checkValueFlow reports nondeterministic values (wall clock, global rand)
// flowing into sink-call arguments, either directly or through a local
// variable assigned earlier in the function.
func checkValueFlow(pass *analysis.Pass, body *ast.BlockStmt, calleeSink func(*ast.CallExpr) (string, string, bool)) {
	// Pass 1: taint local variables assigned from a source call.
	taint := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			src, ok := containsSource(pass.TypesInfo, rhs)
			if !ok {
				continue
			}
			// Conservatively taint every LHS of a multi-value assign.
			for j, lhs := range as.Lhs {
				if len(as.Rhs) == len(as.Lhs) && i != j {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						taint[obj] = src
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						taint[obj] = src
					}
				}
			}
		}
		return true
	})

	// Pass 2: flag sink-call arguments carrying a source or tainted ident.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, via, isSink := calleeSink(call)
		if !isSink {
			return true
		}
		for _, arg := range call.Args {
			if src, ok := containsSource(pass.TypesInfo, arg); ok {
				pass.Reportf(arg.Pos(), "nondeterministic value from %s reaches output sink %s (via %s); derive it from virtual time or a seeded generator, or add //lint:allow detcheck explaining why", src, callee, via)
				continue
			}
			if src, ok := containsTainted(pass.TypesInfo, arg, taint); ok {
				pass.Reportf(arg.Pos(), "nondeterministic value from %s reaches output sink %s (via %s); derive it from virtual time or a seeded generator, or add //lint:allow detcheck explaining why", src, callee, via)
			}
		}
		return true
	})
}

// containsSource reports whether the expression subtree contains a call to
// a nondeterminism source, naming the first one.
func containsSource(info *types.Info, e ast.Expr) (string, bool) {
	var name string
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if s, ok := sourceName(info, call); ok {
				name = s
				return false
			}
		}
		return true
	})
	return name, name != ""
}

// containsTainted reports whether the expression subtree references a
// tainted local, naming the source that tainted it.
func containsTainted(info *types.Info, e ast.Expr, taint map[types.Object]string) (string, bool) {
	var name string
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if src, ok := taint[obj]; ok {
					name = src
					return false
				}
			}
		}
		return true
	})
	return name, name != ""
}
