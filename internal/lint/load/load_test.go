package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modRoot walks up from the working directory to the module root so the
// tests can load real module packages through `go list`.
func modRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestPackagesMissingPattern(t *testing.T) {
	_, err := Packages(modRoot(t), "./internal/no/such/package")
	if err == nil {
		t.Fatal("expected an error for a nonexistent package pattern")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error should surface the go list failure, got: %v", err)
	}
}

// TestStdlibFallback checks that a module package importing only stdlib
// type-checks through the source importer (no export data, no proxy).
func TestStdlibFallback(t *testing.T) {
	pkgs, err := Packages(modRoot(t), "./internal/task")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatal("package not fully type-checked")
	}
	if len(p.Imports) == 0 {
		t.Error("go list imports should be recorded for dependency ordering")
	}
}

func TestDependencyOrder(t *testing.T) {
	mk := func(path string, imports ...string) *Package {
		return &Package{PkgPath: path, Imports: imports}
	}
	// c imports b imports a; d is independent. Input is lexicographic, the
	// order lint.Run receives from Packages.
	a, b, c, d := mk("m/a"), mk("m/b", "m/a"), mk("m/c", "m/b", "fmt"), mk("m/d")
	got := DependencyOrder([]*Package{a, b, c, d})
	idx := make(map[string]int)
	for i, p := range got {
		idx[p.PkgPath] = i
	}
	if !(idx["m/a"] < idx["m/b"] && idx["m/b"] < idx["m/c"]) {
		t.Errorf("dependencies must precede dependents: %v", idx)
	}
	if len(got) != 4 {
		t.Fatalf("got %d packages, want 4", len(got))
	}

	// Same set, same order out — byte-stable across runs.
	again := DependencyOrder([]*Package{a, b, c, d})
	for i := range got {
		if got[i].PkgPath != again[i].PkgPath {
			t.Fatalf("order not deterministic at %d: %s vs %s", i, got[i].PkgPath, again[i].PkgPath)
		}
	}
}
