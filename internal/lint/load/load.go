// Package load type-checks the packages of this module for the sdemlint
// analyzers. It enumerates packages with `go list -json`, parses their
// non-test sources, and type-checks them in dependency order; standard
// library imports resolve through the go/importer source importer, so the
// whole pipeline works without a module proxy or prebuilt export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked module package.
type Package struct {
	PkgPath string
	Dir     string
	// Imports lists the package's direct imports (module and stdlib),
	// as reported by go list; DependencyOrder uses it to drive analyzers
	// dependencies-first.
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg mirrors the subset of `go list -json` output we need.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -deps -json` over the patterns in dir and decodes
// the JSON stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loader type-checks module packages on demand, memoizing results so each
// package is checked once regardless of how many importers reach it.
type loader struct {
	fset    *token.FileSet
	meta    map[string]*listedPkg
	checked map[string]*Package
	pending map[string]bool
	stdlib  types.Importer
}

// Import implements types.Importer: module packages resolve through the
// loader itself, everything else through the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if m, ok := l.meta[path]; ok && !m.Standard {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdlib.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if l.pending[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.pending[path] = true
	defer delete(l.pending, path)

	m, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("package %s not listed", path)
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{PkgPath: path, Dir: m.Dir, Imports: m.Imports, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.checked[path] = p
	return p, nil
}

// Packages loads and type-checks the module packages matching the given go
// list patterns (e.g. "./..."), rooted at dir. Only the packages named by
// the patterns are returned; their intra-module dependencies are checked as
// needed but not analyzed. Test files are excluded: the analyzers enforce
// production-code invariants, and tests keep local assertion tolerances.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		meta:    make(map[string]*listedPkg),
		checked: make(map[string]*Package),
		pending: make(map[string]bool),
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	for _, p := range listed {
		l.meta[p.ImportPath] = p
	}
	var out []*Package
	for _, m := range listed {
		if m.Standard || m.DepOnly || len(m.GoFiles) == 0 {
			continue
		}
		p, err := l.load(m.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// DependencyOrder returns the packages reordered so that every package
// appears after all of its dependencies that are also in the slice —
// the order the multi-pass analyzer driver visits packages in, so Facts
// exported while analyzing a dependency are available to its dependents.
// Ties (independent packages) keep the input's lexicographic-by-path
// order, making the result deterministic for a fixed package set.
func DependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var out []*Package
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.PkgPath] {
		case 2:
			return
		case 1:
			return // cycle: the type checker already rejected real ones
		}
		state[p.PkgPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.PkgPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
