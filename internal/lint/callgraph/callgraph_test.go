package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"sdem/internal/lint/callgraph"
)

// check type-checks one synthetic package and wraps it for Build.
func check(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*types.Package) callgraph.SourcePackage {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: mapImporter(deps)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return callgraph.SourcePackage{Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m[path], nil
}

// fn looks a function up by name in a package scope and returns its node.
func fn(t *testing.T, g *callgraph.Graph, pkg *types.Package, name string) *callgraph.Node {
	t.Helper()
	obj, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path())
	}
	n := g.Node(obj)
	if n == nil {
		t.Fatalf("no node for %s.%s", pkg.Path(), name)
	}
	return n
}

const depSrc = `package dep

func Emit() {}

func Quiet() int { return 0 }
`

const mainSrc = `package main

import "dep"

func A() { B(); C() }

func B() { dep.Emit() }

func C() {
	f := func() { dep.Quiet() }
	f()
}

// D references B without calling it: still an edge.
func D() func() { return wrap(B) }

func wrap(f func()) func() { return f }

func Lone() {}
`

func build(t *testing.T) (*callgraph.Graph, *types.Package, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	dep := check(t, fset, "dep", depSrc, nil)
	main := check(t, fset, "main", mainSrc, map[string]*types.Package{"dep": dep.Types})
	g := callgraph.Build([]callgraph.SourcePackage{dep, main})
	return g, dep.Types, main.Types
}

func names(ns []*callgraph.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Name()
	}
	return out
}

func TestEdges(t *testing.T) {
	g, dep, main := build(t)

	a := fn(t, g, main, "A")
	got := names(a.Callees)
	want := []string{"main.B", "main.C"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("A callees = %v, want %v", got, want)
	}

	// The closure inside C is attributed to C.
	c := fn(t, g, main, "C")
	if got := names(c.Callees); len(got) != 1 || got[0] != "dep.Quiet" {
		t.Fatalf("C callees = %v, want [dep.Quiet]", got)
	}

	// Bare function reference counts as an edge.
	d := fn(t, g, main, "D")
	found := false
	for _, callee := range d.Callees {
		if callee == fn(t, g, main, "B") {
			found = true
		}
	}
	if !found {
		t.Fatalf("D callees = %v, want to include main.B (bare reference)", names(d.Callees))
	}

	// Callers are recorded symmetrically.
	emit := fn(t, g, dep, "Emit")
	if got := names(emit.Callers); len(got) != 1 || got[0] != "main.B" {
		t.Fatalf("Emit callers = %v, want [main.B]", got)
	}
}

func TestReachable(t *testing.T) {
	g, dep, main := build(t)

	a := fn(t, g, main, "A")
	reach := g.Reachable([]*callgraph.Node{a})
	for _, name := range []string{"B", "C"} {
		if reach[fn(t, g, main, name)] != a {
			t.Errorf("%s not attributed to root A", name)
		}
	}
	if reach[fn(t, g, dep, "Emit")] != a {
		t.Errorf("dep.Emit not reachable from A")
	}
	if reach[fn(t, g, main, "Lone")] != nil {
		t.Errorf("Lone should be unreachable from A")
	}
}

func TestReachesAny(t *testing.T) {
	g, dep, main := build(t)

	emit := fn(t, g, dep, "Emit")
	target, next := g.ReachesAny([]*callgraph.Node{emit})

	a, b := fn(t, g, main, "A"), fn(t, g, main, "B")
	if target[b] != emit {
		t.Fatalf("B should reach Emit")
	}
	if target[a] != emit {
		t.Fatalf("A should reach Emit transitively")
	}
	if next[a] != b {
		t.Fatalf("next hop from A should be B, got %v", next[a])
	}
	if target[fn(t, g, main, "C")] != nil {
		t.Fatalf("C reaches no sink, got %v", target[fn(t, g, main, "C")])
	}
	// D references B, so conservatively D reaches the sink too.
	if target[fn(t, g, main, "D")] != emit {
		t.Fatalf("D should reach Emit through the bare reference to B")
	}
}

func TestDeterministicNodeOrder(t *testing.T) {
	g1, _, _ := build(t)
	g2, _, _ := build(t)
	n1, n2 := names(g1.Nodes()), names(g2.Nodes())
	if len(n1) != len(n2) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("node order differs at %d: %s vs %s", i, n1[i], n2[i])
		}
	}
}
