// Package callgraph builds a module-wide static call graph over the
// type-checked packages the sdemlint loader produces. Analyzers use it for
// interprocedural reasoning: propagating //sdem:hotpath hotness down into
// transitive callees (hotalloc) and tracing whether a function's writes
// reach an output sink (detcheck).
//
// The graph is a deliberate over-approximation built from syntax alone:
//
//   - A direct call f() or recv.M() adds an edge to the statically resolved
//     *types.Func.
//   - A bare reference to a function (passing it as a value, e.g. the
//     comparator handed to sort.Slice) also adds an edge, because the
//     receiving code may invoke it.
//   - Function literals are attributed to their enclosing declaration: a
//     call made inside a closure is an edge from the declared function that
//     contains the closure.
//   - Dynamic dispatch through interface methods resolves to the interface
//     method object only; implementations are not linked (analyzers that
//     need soundness across dynamic dispatch must arrange their own
//     discipline, e.g. hotalloc's directive sits on concrete functions).
//
// All node and edge orders are deterministic: nodes sort by package path
// then position, and a node's callee list preserves first-occurrence source
// order within its declaration.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SourcePackage is one type-checked package fed to Build. It mirrors the
// fields of the loader's Package without importing it, so fixture-based
// tests can construct inputs directly.
type SourcePackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Node is one function in the graph.
type Node struct {
	// Func is the type-checker's object for the function or method.
	Func *types.Func
	// Decl is the declaration syntax, nil for functions whose source was
	// not among the built packages (imported module deps analyzed in a
	// different pass still carry syntax; true externals do not).
	Decl *ast.FuncDecl
	// Fset positions Decl (nil iff Decl is nil).
	Fset *token.FileSet
	// Callees lists the distinct functions this node calls or references,
	// in first-occurrence source order.
	Callees []*Node
	// Callers lists the distinct nodes that call or reference this one,
	// sorted by package path then name for determinism.
	Callers []*Node
}

// Name returns the node's fully qualified name, e.g.
// "sdem/internal/online.PlanAt" or "(*sdem/internal/sim.Pool).Run".
func (n *Node) Name() string { return n.Func.FullName() }

// Graph is the module-wide call graph.
type Graph struct {
	nodes map[*types.Func]*Node
	// decls indexes declared functions by the position of their Name
	// identifier, letting analyzers map a FuncDecl back to its node.
	decls map[token.Pos]*Node
}

// Node returns the graph node of fn, or nil if fn was never seen.
func (g *Graph) Node(fn *types.Func) *Node {
	if g == nil {
		return nil
	}
	return g.nodes[fn]
}

// NodeAt returns the node whose declaration name sits at pos, or nil.
func (g *Graph) NodeAt(pos token.Pos) *Node {
	if g == nil {
		return nil
	}
	return g.decls[pos]
}

// Nodes returns every node in deterministic order: package path, then
// file position of the declaration, with declaration-less externals last
// (sorted by full name).
func (g *Graph) Nodes() []*Node {
	if g == nil {
		return nil
	}
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

func nodeLess(a, b *Node) bool {
	ad, bd := a.Decl != nil, b.Decl != nil
	if ad != bd {
		return ad // declared nodes first
	}
	ap, bp := pkgPath(a.Func), pkgPath(b.Func)
	if ap != bp {
		return ap < bp
	}
	if ad {
		return a.Decl.Pos() < b.Decl.Pos()
	}
	return a.Func.FullName() < b.Func.FullName()
}

func pkgPath(f *types.Func) string {
	if p := f.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

// builder accumulates the graph.
type builder struct {
	g *Graph
	// calleeSeen dedupes edges per caller.
	calleeSeen map[*Node]map[*Node]bool
}

func (b *builder) node(fn *types.Func) *Node {
	if n, ok := b.g.nodes[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	b.g.nodes[fn] = n
	return n
}

func (b *builder) edge(from, to *Node) {
	if from == to {
		return // self-recursion adds nothing for reachability
	}
	seen := b.calleeSeen[from]
	if seen == nil {
		seen = make(map[*Node]bool)
		b.calleeSeen[from] = seen
	}
	if seen[to] {
		return
	}
	seen[to] = true
	from.Callees = append(from.Callees, to)
	to.Callers = append(to.Callers, from)
}

// Build constructs the call graph of the given packages. Packages are
// processed in the order given; drive it with a deterministically ordered
// package list (the loader sorts by import path).
func Build(pkgs []SourcePackage) *Graph {
	b := &builder{
		g:          &Graph{nodes: make(map[*types.Func]*Node), decls: make(map[token.Pos]*Node)},
		calleeSeen: make(map[*Node]map[*Node]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := b.node(obj)
				n.Decl = fd
				n.Fset = pkg.Fset
				b.g.decls[fd.Name.Pos()] = n
				b.addBodyEdges(n, fd.Body, pkg.Info)
			}
		}
	}
	for _, n := range b.g.nodes {
		sort.Slice(n.Callers, func(i, j int) bool { return nodeLess(n.Callers[i], n.Callers[j]) })
	}
	return b.g
}

// addBodyEdges walks a declaration body and records an edge for every
// identifier or selector that resolves to a function object — call targets
// and bare references alike.
func (b *builder) addBodyEdges(from *Node, body *ast.BlockStmt, info *types.Info) {
	ast.Inspect(body, func(node ast.Node) bool {
		var id *ast.Ident
		switch e := node.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			// The Sel identifier is visited on its own; nothing extra here.
			return true
		default:
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		b.edge(from, b.node(fn))
		return true
	})
}

// Reachable returns the set of nodes reachable from the given roots by
// following callee edges, including the roots themselves. The companion
// map records, for each reached node, the root it was first reached from
// (roots are processed in the given order; traversal is breadth-first over
// source-ordered callee lists, so the attribution is deterministic).
func (g *Graph) Reachable(roots []*Node) map[*Node]*Node {
	out := make(map[*Node]*Node, len(roots))
	var queue []*Node
	for _, r := range roots {
		if r == nil || out[r] != nil {
			continue
		}
		out[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if out[c] != nil {
				continue
			}
			out[c] = out[n]
			queue = append(queue, c)
		}
	}
	return out
}

// ReachesAny returns, for every node in the graph, the first node of the
// target set reachable from it by callee edges (or itself if it is a
// target), and the next hop toward that target. It is the reverse
// reachability detcheck uses: "does this function's execution reach an
// output sink". Determinism comes from breadth-first traversal of sorted
// caller lists seeded with the targets in the given order.
func (g *Graph) ReachesAny(targets []*Node) (target, next map[*Node]*Node) {
	target = make(map[*Node]*Node)
	next = make(map[*Node]*Node)
	var queue []*Node
	for _, t := range targets {
		if t == nil || target[t] != nil {
			continue
		}
		target[t] = t
		queue = append(queue, t)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callers {
			if target[c] != nil {
				continue
			}
			target[c] = target[n]
			next[c] = n
			queue = append(queue, c)
		}
	}
	return target, next
}
