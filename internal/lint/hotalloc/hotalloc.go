// Package hotalloc implements the sdemlint analyzer that keeps the
// module's hot paths allocation-free.
//
// A function marked with a //sdem:hotpath directive is a hot root; every
// function reachable from a root through the module call graph is hot.
// Inside hot functions the analyzer flags the allocation constructs that
// profiling showed dominate the solver inner loops:
//
//   - fmt.* calls (everything except the cold-error-path fmt.Errorf):
//     the variadic ...any boxes every argument;
//   - container/heap operations: heap.Push and heap.Pop traffic in `any`,
//     boxing every element on the way in AND out — two heap allocations
//     per element; hot heaps must be typed (sift-up/sift-down on a
//     concrete slice);
//   - per-call map creation (make(map...), map literals) and channel
//     creation — hot code should reuse scratch structures;
//   - variable-capturing closures, which allocate per call (non-capturing
//     function literals are static and pass untouched);
//   - append growing a slice inside a loop when the function never
//     preallocates that slice with a make(..., n) / make(..., 0, cap);
//   - interface boxing of a concrete argument, reported only when the
//     compiler's own escape analysis (go build -gcflags=-m, see
//     internal/lint/escape) confirms the value escapes to the heap.
//
// Findings that are deliberate — error paths, one-time setup inside a hot
// entry point, telemetry fast paths already measured at 0 allocs/op —
// carry //lint:allow hotalloc comments stating why.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"sdem/internal/lint/analysis"
	"sdem/internal/lint/callgraph"
	"sdem/internal/lint/escape"
)

// Directive marks a function as a hot-path root for this analyzer.
const Directive = "//sdem:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation constructs (fmt.*, container/heap, per-call maps, capturing closures, " +
		"append without preallocation, escaping interface boxing) in functions reachable " +
		"from a //sdem:hotpath directive; reuse scratch buffers, preallocate, or suppress " +
		"with //lint:allow hotalloc where the allocation is deliberate",
	FactPass: factPass,
	Run:      run,
}

// hotRootFact marks a function carrying the //sdem:hotpath directive.
type hotRootFact struct{}

func (*hotRootFact) AFact() {}

// hasDirective reports whether the doc comment carries //sdem:hotpath.
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// factPass exports a hot-root fact for every directive-marked function.
func factPass(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(obj, &hotRootFact{})
			}
		}
	}
	return nil
}

// hotSet maps every hot function to the name of the root that makes it hot.
type hotSet struct {
	rootOf map[*types.Func]string
}

func buildHotSet(pass *analysis.Pass) *hotSet {
	return pass.Module.Memo("hotalloc.hot", func() any {
		h := &hotSet{rootOf: make(map[*types.Func]string)}
		g := pass.Module.Graph
		var roots []*callgraph.Node
		for _, of := range pass.AllObjectFacts(&hotRootFact{}) {
			fn, ok := of.Object.(*types.Func)
			if !ok {
				continue
			}
			h.rootOf[fn] = fn.Name()
			if g != nil {
				if n := g.Node(fn); n != nil {
					roots = append(roots, n)
				}
			}
		}
		if g != nil {
			for n, root := range g.Reachable(roots) {
				if _, ok := h.rootOf[n.Func]; !ok {
					h.rootOf[n.Func] = root.Func.Name()
				}
			}
		}
		return h
	}).(*hotSet)
}

// escapeReport lazily runs the compiler escape probe over the module, once
// per lint invocation. A nil report (probe unavailable, e.g. fixture
// packages outside a module) disables the boxing check rather than failing
// the run.
func escapeReport(pass *analysis.Pass) *escape.Report {
	return pass.Module.Memo("hotalloc.escape", func() any {
		rep, err := escape.Analyze(pass.Module.Dir, "./...")
		if err != nil {
			return (*escape.Report)(nil)
		}
		return rep
	}).(*escape.Report)
}

func run(pass *analysis.Pass) error {
	if pass.Module == nil {
		return nil // interprocedural analyzer: requires the module driver
	}
	hot := buildHotSet(pass)

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root, isHot := hot.rootOf[obj]
			if !isHot {
				continue
			}
			checkHotBody(pass, fd, root)
		}
	}
	return nil
}

// checkHotBody applies every allocation check to one hot function body.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl, root string) {
	where := "hot path (reachable from //sdem:hotpath root " + root + ")"
	if fd.Name.Name == root && hasDirective(fd.Doc) {
		where = "//sdem:hotpath function"
	}

	prealloc := preallocated(pass, fd.Body)

	// reported dedupes loop-append findings: with nested loops the outer
	// and inner walk would otherwise both land on the same append.
	reported := make(map[*ast.CallExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkFmtCall(pass, n, where)
			checkHeapCall(pass, n, where)
			checkMakeCall(pass, n, where)
			checkBoxing(pass, n, where)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocates per call on %s; hoist it to a package variable or reuse a scratch map", where)
				}
			}
		case *ast.FuncLit:
			if capt, ok := firstCapture(pass, n); ok {
				pass.Reportf(n.Pos(), "closure captures %q and allocates per call on %s; hoist the function or pass state explicitly", capt, where)
			}
		case *ast.RangeStmt:
			checkLoopAppends(pass, n.Body, prealloc, reported, where)
		case *ast.ForStmt:
			checkLoopAppends(pass, n.Body, prealloc, reported, where)
		}
		return true
	})
}

// checkFmtCall flags fmt.* calls except the cold-error-path fmt.Errorf.
func checkFmtCall(pass *analysis.Pass, call *ast.CallExpr, where string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() == "Errorf" {
		return
	}
	pass.Reportf(call.Pos(), "fmt.%s boxes its arguments and allocates on %s; use strconv, a reused buffer, or move formatting off the hot path", fn.Name(), where)
}

// checkHeapCall flags every container/heap operation. heap.Push and
// heap.Pop move each element through `any` — one box going in, another
// coming out — and the remaining operations (Init, Fix, Remove) only
// exist to drive the same boxed Interface, so any use of the package on a
// hot path signals the pattern. The check is syntactic on purpose: the
// boxing happens inside the heap package where the escape probe cannot
// attribute it to the caller's line.
func checkHeapCall(pass *analysis.Pass, call *ast.CallExpr, where string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "container/heap" {
		return
	}
	pass.Reportf(call.Pos(), "container/heap.%s boxes every element through any on %s; use a typed heap (sift-up/sift-down on a concrete slice)", fn.Name(), where)
}

// checkMakeCall flags per-call map and channel creation.
func checkMakeCall(pass *analysis.Pass, call *ast.CallExpr, where string) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(call.Pos(), "make(map) allocates per call on %s; reuse a scratch map (clear() between uses) or restructure around slices", where)
	case *types.Chan:
		pass.Reportf(call.Pos(), "make(chan) allocates per call on %s; create channels once at setup", where)
	}
}

// checkBoxing flags a concrete argument passed as an interface parameter
// when the compiler's escape analysis confirms the boxed value reaches the
// heap. Without compiler confirmation nothing is reported: interfaces that
// stay on the stack are free.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, where string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	// fmt.* and container/heap are already reported wholesale by
	// checkFmtCall and checkHeapCall.
	if fn.Pkg() != nil && (fn.Pkg().Path() == "fmt" || fn.Pkg().Path() == "container/heap") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	var rep *escape.Report
	loaded := false
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if _, argIsIface := at.Type.Underlying().(*types.Interface); argIsIface {
			continue // interface-to-interface: no box
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word: no box
		}
		if !loaded {
			rep, loaded = escapeReport(pass), true
		}
		p := pass.Fset.Position(arg.Pos())
		if rep.HeapOnLine(p.Filename, p.Line) {
			name := "interface"
			if iface.Empty() {
				name = "any"
			}
			pass.Reportf(arg.Pos(), "argument boxes %s into %s and escapes to the heap (compiler -m) on %s; pass a pointer or restructure to avoid the conversion", at.Type.String(), name, where)
		}
	}
}

// firstCapture returns the name of the first outer local variable the
// function literal captures, in source order. Package-level variables and
// the literal's own parameters and locals do not count: only captured
// locals force the closure (and its context record) to allocate.
func firstCapture(pass *analysis.Pass, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own param or local
		}
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true // package-level variable: no capture
		}
		name = v.Name()
		return false
	})
	return name, name != ""
}

// paramType returns the effective parameter type for argument i, expanding
// the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// preallocated collects the local slice variables the function initializes
// with a sized or capacity-carrying make, i.e. make([]T, n) or
// make([]T, 0, cap). Appending to those inside a loop is planned growth.
func preallocated(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		target, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[target]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[target]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkLoopAppends flags `x = append(x, ...)` inside a loop body when x was
// never preallocated in the enclosing function.
func checkLoopAppends(pass *analysis.Pass, body *ast.BlockStmt, prealloc map[types.Object]bool, reported map[*ast.CallExpr]bool, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || reported[call] {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
			return true
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil {
			obj = pass.TypesInfo.Defs[dst]
		}
		if obj == nil || prealloc[obj] {
			return true
		}
		reported[call] = true
		pass.Reportf(call.Pos(), "append grows %q inside a loop without preallocation on %s; size it with make(..., 0, n) before the loop", dst.Name, where)
		return true
	})
}
