// Package hotalloc is the fixture for the hotalloc analyzer.
package hotalloc

import (
	"container/heap"
	"fmt"
)

// Hot is a hot-path root: every allocation construct below is flagged.
//
//sdem:hotpath
func Hot(xs []int) (int, error) {
	total := 0

	m := make(map[int]int)                     // want "make\\(map\\) allocates per call on //sdem:hotpath function"
	weights := map[string]float64{"a": 1}      // want "map literal allocates per call"
	ch := make(chan int, 1)                    // want "make\\(chan\\) allocates per call"
	label := fmt.Sprintf("n=%d", len(xs))      // want "fmt.Sprintf boxes its arguments and allocates"
	add := func(v int) { total += v }          // want "closure captures \"total\" and allocates per call"
	double := func(v int) int { return 2 * v } // non-capturing: static, clean

	var grown []int
	for _, x := range xs {
		grown = append(grown, x) // want "append grows \"grown\" inside a loop without preallocation"
	}
	sized := make([]int, 0, len(xs))
	for _, x := range xs {
		sized = append(sized, x) // preallocated above: clean
	}

	for _, x := range xs {
		m[x] = double(x)
		add(x)
	}
	ch <- total
	_ = label
	_ = weights
	if total < 0 {
		return 0, fmt.Errorf("negative total %d", total) // Errorf is the cold error path: clean
	}
	allowed := make(map[int]int) //lint:allow hotalloc: fixture checks suppression
	_ = allowed
	return total + len(grown) + len(sized) + <-ch, nil
}

// warm is not annotated but is called from Trampoline, so it is
// transitively hot and findings name the root that reaches it.
func warm(v int) {
	fmt.Println(v) // want "fmt.Println boxes its arguments and allocates on hot path \\(reachable from //sdem:hotpath root Trampoline\\)"
}

// Cold is unreachable from any hot root: identical constructs stay clean.
func Cold(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	fmt.Println(len(out))
	_ = map[int]int{1: 2}
	return out
}

// Trampoline keeps warm hot without annotating warm itself.
//
//sdem:hotpath
func Trampoline(v int) {
	warm(v)
}

// AdmitHot mirrors the admission gate's fast path: channel operations
// on a pre-made slots channel and arithmetic on the EWMA allocate
// nothing, so the whole function stays clean.
//
//sdem:hotpath
func AdmitHot(slots chan struct{}, ewma *int64, budgetNs int64) bool {
	if *ewma > budgetNs {
		return false
	}
	select {
	case slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// CacheInsertHot mirrors a naive cache-shard insert: a fresh ready
// channel per call and unbounded growth of the eviction queue are
// exactly the allocations to keep off a per-request fast path.
//
//sdem:hotpath
func CacheInsertHot(entries map[string]chan struct{}, keys []string) []string {
	var order []string
	for _, k := range keys {
		entries[k] = make(chan struct{}) // want "make\\(chan\\) allocates per call"
		order = append(order, k)         // want "append grows \"order\" inside a loop without preallocation"
	}
	return order
}

// HeapHot mirrors the arrival-reorder path before it moved to a typed
// heap: every container/heap operation drives elements through `any`,
// one box per Push and another per Pop — two allocations per element on
// the engine's hottest loop.
//
//sdem:hotpath
func HeapHot(h heap.Interface, v int) int {
	heap.Push(h, v)          // want "container/heap.Push boxes every element through any"
	heap.Fix(h, 0)           // want "container/heap.Fix boxes every element through any"
	return heap.Pop(h).(int) // want "container/heap.Pop boxes every element through any"
}

// LabelsHot mirrors the telemetry label-map miss path before interning:
// a fresh label map (or a formatted label string) per observation is an
// allocation on every request, exactly what per-route interned label
// sets remove. The interned call is the fixed shape and stays clean.
//
//sdem:hotpath
func LabelsHot(observe func(map[string]string), route, code string, interned map[string]string) {
	observe(map[string]string{"route": route}) // want "map literal allocates per call"
	observe(map[string]string{"code": code})   // want "map literal allocates per call"
	observe(interned)                          // interned at construction: clean
}
