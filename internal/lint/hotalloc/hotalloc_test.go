package hotalloc_test

import (
	"testing"

	"sdem/internal/lint/analysistest"
	"sdem/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, ".", hotalloc.Analyzer, "hotalloc")
}
