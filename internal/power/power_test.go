package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestUnitHelpers(t *testing.T) {
	if got := MHz(1900); got != 1.9e9 {
		t.Errorf("MHz(1900) = %g, want 1.9e9", got)
	}
	if got := Milliseconds(40); got != 0.040 {
		t.Errorf("Milliseconds(40) = %g, want 0.04", got)
	}
}

func TestBetaConversion(t *testing.T) {
	// 2.53e-7 mW/MHz^3 must become 2.53e-28 W/Hz^3.
	got := BetaFromMilliwattPerMHzPow(2.53e-7, 3)
	if !almostEqual(got, 2.53e-28, 1e-12) {
		t.Errorf("beta = %g, want 2.53e-28", got)
	}
}

func TestCortexA57Preset(t *testing.T) {
	c := CortexA57()
	if err := c.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	// At the max frequency the A57 core should draw on the order of 1.7 W
	// dynamic power (AnandTech measurements cited by the paper).
	p := c.Dynamic(MHz(1900))
	if p < 1.5 || p > 2.0 {
		t.Errorf("dynamic power at 1.9 GHz = %g W, want ~1.74 W", p)
	}
	if c.Static != 0.310 {
		t.Errorf("static = %g, want 0.310", c.Static)
	}
}

func TestCriticalSpeedMinimizesPerCycleEnergy(t *testing.T) {
	c := CortexA57()
	c.SpeedMax = 0 // unconstrained for this test
	sm := c.CriticalSpeedRaw()
	if sm <= 0 {
		t.Fatal("critical speed must be positive for a leaky core")
	}
	// s_m must be ~850 MHz for the A57 constants.
	if sm < MHz(700) || sm > MHz(1000) {
		t.Errorf("s_m = %g MHz, want ~850 MHz", sm/1e6)
	}
	w := 3e6 // cycles
	best := c.EnergyFor(w, sm)
	for _, f := range []float64{0.25, 0.5, 0.9, 0.99, 1.01, 1.1, 2, 4} {
		if f == 1 {
			continue
		}
		e := c.EnergyFor(w, sm*f)
		if e < best {
			t.Errorf("energy at %.2f·s_m (%g) beats energy at s_m (%g)", f, e, best)
		}
	}
}

func TestMemoryCriticalSpeedOrdering(t *testing.T) {
	c := CortexA57()
	c.SpeedMax = 0
	mem := Memory{Static: 4}
	s0 := c.CriticalSpeedRaw()
	s1 := c.MemoryCriticalSpeedRaw(mem)
	if s1 <= s0 {
		t.Errorf("s_cm (%g) must exceed s_m (%g) when the memory leaks", s1, s0)
	}
	// s_1 minimizes core+memory per-cycle energy.
	w := 2e6
	perCycle := func(s float64) float64 {
		return (c.Power(s) + mem.Static) * w / s
	}
	best := perCycle(s1)
	for _, f := range []float64{0.5, 0.8, 0.95, 1.05, 1.2, 2} {
		if e := perCycle(s1 * f); e < best-1e-12 {
			t.Errorf("per-cycle energy at %.2f·s_cm (%g) beats s_cm (%g)", f, e, best)
		}
	}
}

func TestCriticalSpeedClamping(t *testing.T) {
	c := CortexA57()
	sm := c.CriticalSpeedRaw()

	// Filled speed below s_m: critical speed is s_m.
	if got := c.CriticalSpeed(sm / 2); got != sm {
		t.Errorf("CriticalSpeed(s_m/2) = %g, want s_m = %g", got, sm)
	}
	// Filled speed above s_m: must run at filled speed.
	if got := c.CriticalSpeed(sm * 1.5); got != sm*1.5 {
		t.Errorf("CriticalSpeed(1.5 s_m) = %g, want %g", got, sm*1.5)
	}
	// Filled speed above SpeedMax is returned as-is even though it is
	// infeasible; feasibility is the caller's concern.
	if got := c.CriticalSpeed(c.SpeedMax * 2); got != c.SpeedMax {
		t.Errorf("CriticalSpeed above cap = %g, want cap %g", got, c.SpeedMax)
	}
}

func TestConstrainedCriticalSpeed(t *testing.T) {
	c := CortexA57()
	c.BreakEven = Milliseconds(10)
	w := 2e6 // ~2.35 ms at s_m≈850MHz
	sm := c.CriticalSpeedRaw()
	filled := w / Milliseconds(100)

	// Long horizon: plenty of tail to sleep in, so s_c = s_0.
	if got := c.ConstrainedCriticalSpeed(filled, w, Milliseconds(100)); !almostEqual(got, sm, 1e-12) {
		t.Errorf("long horizon: s_c = %g, want s_m %g", got, sm)
	}
	// Horizon barely longer than the execution: the idle tail is shorter
	// than ξ, so the task should stretch to its filled speed.
	tight := w/sm + Milliseconds(5)
	filledTight := w / tight
	if got := c.ConstrainedCriticalSpeed(filledTight, w, tight); !almostEqual(got, filledTight, 1e-12) {
		t.Errorf("tight horizon: s_c = %g, want filled %g", got, filledTight)
	}
}

func TestSleepGainAndTransitionEnergy(t *testing.T) {
	mem := Memory{Static: 4, BreakEven: Milliseconds(40)}
	if got := mem.TransitionEnergy(); !almostEqual(got, 0.16, 1e-12) {
		t.Errorf("memory transition energy = %g, want 0.16 J", got)
	}
	if gain := mem.SleepGain(Milliseconds(40)); !almostEqual(gain, 0, 1e-12) {
		t.Errorf("sleeping exactly the break-even time should be net zero, got %g", gain)
	}
	if gain := mem.SleepGain(Milliseconds(20)); gain >= 0 {
		t.Errorf("sleeping for less than break-even must lose energy, got %g", gain)
	}
	if gain := mem.SleepGain(Milliseconds(100)); !almostEqual(gain, 0.24, 1e-12) {
		t.Errorf("gain for 100 ms sleep = %g, want 0.24 J", gain)
	}
	core := Core{Static: 0.3, Beta: 1, Lambda: 3, BreakEven: 0.01}
	if got := core.TransitionEnergy(); !almostEqual(got, 0.003, 1e-12) {
		t.Errorf("core transition energy = %g, want 0.003", got)
	}
}

func TestEnergyForEdgeCases(t *testing.T) {
	c := CortexA57()
	if got := c.EnergyFor(0, 0); got != 0 {
		t.Errorf("zero workload must cost zero, got %g", got)
	}
	if got := c.EnergyFor(1e6, 0); !math.IsInf(got, 1) {
		t.Errorf("zero speed with positive work must be +Inf, got %g", got)
	}
	if got := c.Dynamic(-5); got != 0 {
		t.Errorf("negative speed dynamic power = %g, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultSystem()
	if err := good.Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*System)
	}{
		{"zero beta", func(s *System) { s.Core.Beta = 0 }},
		{"lambda 1", func(s *System) { s.Core.Lambda = 1 }},
		{"negative static", func(s *System) { s.Core.Static = -1 }},
		{"min above max", func(s *System) { s.Core.SpeedMin = s.Core.SpeedMax * 2 }},
		{"negative break-even", func(s *System) { s.Core.BreakEven = -1 }},
		{"negative memory static", func(s *System) { s.Memory.Static = -1 }},
		{"negative memory break-even", func(s *System) { s.Memory.BreakEven = -1 }},
		{"negative cores", func(s *System) { s.Cores = -1 }},
	}
	for _, tc := range cases {
		s := DefaultSystem()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestPropertyEnergyConvexInSpeed(t *testing.T) {
	// Property: for any positive workload, E(w, s) is convex in s, so the
	// midpoint energy never exceeds the average of the endpoints.
	c := CortexA57()
	c.SpeedMax = 0
	f := func(wRaw, aRaw, bRaw uint32) bool {
		w := 1e5 + float64(wRaw%1000)*1e4
		a := MHz(100 + float64(aRaw%3000))
		b := MHz(100 + float64(bRaw%3000))
		mid := (a + b) / 2
		return c.EnergyFor(w, mid) <= (c.EnergyFor(w, a)+c.EnergyFor(w, b))/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCriticalSpeedIsArgmin(t *testing.T) {
	// Property: for random leaky cores, no sampled speed beats s_m on
	// per-cycle energy.
	f := func(alphaRaw, betaRaw, sRaw uint32) bool {
		c := Core{
			Static: 0.05 + float64(alphaRaw%1000)/1000,
			Beta:   1e-28 * (1 + float64(betaRaw%100)),
			Lambda: 3,
		}
		sm := c.CriticalSpeedRaw()
		s := sm * (0.1 + float64(sRaw%500)/100) // 0.1·s_m .. 5.1·s_m
		return c.EnergyFor(1e6, s) >= c.EnergyFor(1e6, sm)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCortexA7Preset(t *testing.T) {
	little := CortexA7()
	if err := little.Validate(); err != nil {
		t.Fatal(err)
	}
	big := CortexA57()
	// The LITTLE core leaks and burns less, peaks lower, and has a lower
	// critical speed.
	if little.Static >= big.Static {
		t.Error("A7 must leak less than A57")
	}
	if little.Dynamic(MHz(1300)) >= big.Dynamic(MHz(1300)) {
		t.Error("A7 must burn less dynamic power at the same frequency")
	}
	if little.SpeedMax >= big.SpeedMax {
		t.Error("A7 peaks below the A57")
	}
	if little.CriticalSpeedRaw() >= big.CriticalSpeedRaw() {
		t.Error("lower leakage implies a lower critical speed")
	}
	// Sanity: ~0.4 W dynamic at peak.
	if p := little.Dynamic(MHz(1300)); p < 0.25 || p > 0.6 {
		t.Errorf("A7 peak dynamic power %g W, want ≈0.4", p)
	}
}
