// Package power defines the power, speed and energy model used throughout
// the SDEM library.
//
// The model follows Fu, Chau, Li and Xue, "Race to idle or not: balancing
// the memory sleep time with DVS for energy minimization" (DATE 2015 /
// journal version 2017), section 3:
//
//	P(s) = α + β·s^λ            core power while executing at speed s
//	α                            core static power while idle-active
//	α_m                          memory static power while active
//	ξ, ξ_m                       core / memory break-even times
//
// All quantities are SI: seconds, hertz (cycles per second), watts, joules.
// Helper constructors convert from the paper's mW/MHz³ convention.
package power

import (
	"errors"
	"fmt"
	"math"

	"sdem/internal/numeric"
)

// Core describes one homogeneous DVS core.
type Core struct {
	// Static is the static (leakage) power α in watts. The core draws
	// Static whenever it is in the active state, even if idle. A value of
	// zero selects the paper's "α = 0" model in which idle cores are free
	// and never need to sleep.
	Static float64
	// Beta is the dynamic power coefficient β in W/Hz^λ, so that the
	// dynamic power at speed s (Hz) is Beta·s^Lambda watts.
	Beta float64
	// Lambda is the dynamic power exponent λ > 1 (3 for CMOS).
	Lambda float64
	// SpeedMax is the maximum speed s_up in Hz. Zero means unbounded.
	SpeedMax float64
	// SpeedMin is an optional minimum operating speed in Hz used only by
	// simulators that model real frequency floors. The scheduling theory
	// in the paper assumes speeds continuous in (0, s_up]; leave zero to
	// match it.
	SpeedMin float64
	// BreakEven is the core's mode-transition break-even time ξ in
	// seconds: sleeping is profitable only for idle gaps longer than ξ,
	// and one full sleep/wake cycle costs Static·BreakEven joules.
	BreakEven float64
	// SwitchEnergy is the energy in joules of one DVS frequency change
	// (§3 removes the free-voltage-adjustment assumption in the
	// evaluation). The audit charges it whenever a core's consecutive
	// execution segments run at different speeds. Zero means free
	// switching, the model of the theoretical sections.
	SwitchEnergy float64
}

// Memory describes the shared main memory.
type Memory struct {
	// Static is the memory static (leakage) power α_m in watts, drawn
	// whenever the memory is active.
	Static float64
	// BreakEven is the memory transition break-even time ξ_m in seconds;
	// one full sleep/wake cycle costs Static·BreakEven joules.
	BreakEven float64
}

// System bundles the core model, core count and memory model.
type System struct {
	Core   Core
	Memory Memory
	// Cores is the number of physical cores; the unbounded-core
	// algorithms ignore it, the bounded-core solvers and the simulator
	// honour it.
	Cores int
}

// MHz converts a frequency given in MHz to Hz.
func MHz(f float64) float64 { return f * 1e6 }

// GHz converts a frequency given in GHz to Hz.
func GHz(f float64) float64 { return f * 1e9 }

// Milliseconds converts a duration given in ms to seconds.
func Milliseconds(t float64) float64 { return t * 1e-3 }

// BetaFromMilliwattPerMHzPow converts a dynamic-power coefficient expressed
// in mW/MHz^λ (the convention of the paper's §8.1.3) into W/Hz^λ.
func BetaFromMilliwattPerMHzPow(beta float64, lambda float64) float64 {
	// 1 mW = 1e-3 W; 1 MHz^λ = (1e6)^λ Hz^λ.
	return beta * 1e-3 / math.Pow(1e6, lambda)
}

// CortexA57 returns the core model of §8.1.3: β = 2.53e-7 mW/MHz³,
// α = 310 mW, λ = 3, f ∈ [700, 1900] MHz.
func CortexA57() Core {
	return Core{
		Static:   0.310,
		Beta:     BetaFromMilliwattPerMHzPow(2.53e-7, 3),
		Lambda:   3,
		SpeedMax: MHz(1900),
		SpeedMin: MHz(700),
	}
}

// CortexA7 returns a LITTLE-core companion model for heterogeneous
// experiments: roughly 60 mW static, ~0.4 W dynamic at its 1.3 GHz peak
// (λ = 3), the efficiency-cluster counterpart of the A57 preset.
func CortexA7() Core {
	return Core{
		Static:   0.060,
		Beta:     1.8e-28,
		Lambda:   3,
		SpeedMax: MHz(1300),
		SpeedMin: MHz(200),
	}
}

// DefaultSystem returns the paper's default experimental platform: eight
// Cortex-A57 cores sharing a DRAM with α_m = 4 W and ξ_m = 40 ms
// (the starred defaults of Table 4).
func DefaultSystem() System {
	return System{
		Core:   CortexA57(),
		Memory: Memory{Static: 4, BreakEven: Milliseconds(40)},
		Cores:  8,
	}
}

// Dynamic returns the dynamic power β·s^λ in watts at speed s.
func (c Core) Dynamic(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return c.Beta * math.Pow(s, c.Lambda)
}

// Power returns the total active power α + β·s^λ at speed s.
func (c Core) Power(s float64) float64 { return c.Static + c.Dynamic(s) }

// EnergyFor returns the energy to execute w cycles at constant speed s:
// (α + β·s^λ)·w/s. It returns +Inf for non-positive s and w > 0.
func (c Core) EnergyFor(w, s float64) float64 {
	if numeric.IsZero(w, 0) {
		return 0
	}
	if s <= 0 {
		return math.Inf(1)
	}
	return c.Power(s) * w / s
}

// CriticalSpeedRaw returns s_m = (α/(β(λ−1)))^(1/λ), the unconstrained
// minimizer of per-cycle core energy (α + β·s^λ)/s. It is zero when the
// core has no static power.
func (c Core) CriticalSpeedRaw() float64 {
	if numeric.IsZero(c.Static, 0) {
		return 0
	}
	return math.Pow(c.Static/(c.Beta*(c.Lambda-1)), 1/c.Lambda)
}

// MemoryCriticalSpeedRaw returns s_cm = ((α+α_m)/(β(λ−1)))^(1/λ), the
// unconstrained minimizer of per-cycle energy of one core plus the memory
// (§5.2).
func (c Core) MemoryCriticalSpeedRaw(mem Memory) float64 {
	return math.Pow((c.Static+mem.Static)/(c.Beta*(c.Lambda-1)), 1/c.Lambda)
}

// ClampSpeed restricts s to the feasible band: at least filled (the minimum
// speed that meets the deadline) and at most SpeedMax (when set).
func (c Core) ClampSpeed(s, filled float64) float64 {
	if s < filled {
		s = filled
	}
	if c.SpeedMax > 0 && s > c.SpeedMax {
		s = c.SpeedMax
	}
	return s
}

// CriticalSpeed returns the per-task critical speed of §4.2,
// s_0 = min(max(s_m, s_f), s_up), where s_f is the task's filled speed.
func (c Core) CriticalSpeed(filled float64) float64 {
	return c.ClampSpeed(c.CriticalSpeedRaw(), filled)
}

// MemoryCriticalSpeed returns the memory-associated critical speed of §5.2,
// s_1 = min(max(s_cm, s_f), s_up).
func (c Core) MemoryCriticalSpeed(mem Memory, filled float64) float64 {
	return c.ClampSpeed(c.MemoryCriticalSpeedRaw(mem), filled)
}

// ConstrainedCriticalSpeed returns the constrained critical speed s_c of §7
// for a task with filled speed filled and workload w inside a maximal
// interval of length horizon: s_c equals the ordinary critical speed when
// running at it leaves an idle tail of at least the core break-even time ξ
// (so the core can actually sleep), and the filled speed otherwise.
func (c Core) ConstrainedCriticalSpeed(filled, w, horizon float64) float64 {
	s := c.CriticalSpeedRaw()
	if c.SpeedMax > 0 && s > c.SpeedMax {
		s = c.SpeedMax
	}
	if s > 0 && horizon-w/s >= c.BreakEven {
		return c.ClampSpeed(c.CriticalSpeedRaw(), filled)
	}
	return c.ClampSpeed(filled, filled)
}

// TransitionEnergy returns the energy cost of one full sleep/wake cycle of
// the core, α·ξ.
func (c Core) TransitionEnergy() float64 { return c.Static * c.BreakEven }

// SleepGain returns the net energy saved by sleeping the core through an
// idle gap of the given length rather than staying idle-active. It is
// negative for gaps shorter than the break-even time.
func (c Core) SleepGain(gap float64) float64 {
	return c.Static * (gap - c.BreakEven)
}

// TransitionEnergy returns the energy cost of one full sleep/wake cycle of
// the memory, α_m·ξ_m.
func (m Memory) TransitionEnergy() float64 { return m.Static * m.BreakEven }

// SleepGain returns the net energy saved by sleeping the memory through an
// idle gap of the given length.
func (m Memory) SleepGain(gap float64) float64 {
	return m.Static * (gap - m.BreakEven)
}

// Validate reports whether the core model is physically meaningful.
func (c Core) Validate() error {
	switch {
	case c.Beta <= 0:
		return fmt.Errorf("power: Beta must be positive, got %g", c.Beta)
	case c.Lambda <= 1:
		return fmt.Errorf("power: Lambda must exceed 1, got %g", c.Lambda)
	case c.Static < 0:
		return fmt.Errorf("power: Static must be non-negative, got %g", c.Static)
	case c.SpeedMax < 0 || c.SpeedMin < 0:
		return errors.New("power: speeds must be non-negative")
	case c.SpeedMax > 0 && c.SpeedMin > c.SpeedMax:
		return fmt.Errorf("power: SpeedMin %g exceeds SpeedMax %g", c.SpeedMin, c.SpeedMax)
	case c.BreakEven < 0:
		return fmt.Errorf("power: BreakEven must be non-negative, got %g", c.BreakEven)
	case c.SwitchEnergy < 0:
		return fmt.Errorf("power: SwitchEnergy must be non-negative, got %g", c.SwitchEnergy)
	}
	return nil
}

// Validate reports whether the memory model is physically meaningful.
func (m Memory) Validate() error {
	switch {
	case m.Static < 0:
		return fmt.Errorf("power: memory Static must be non-negative, got %g", m.Static)
	case m.BreakEven < 0:
		return fmt.Errorf("power: memory BreakEven must be non-negative, got %g", m.BreakEven)
	}
	return nil
}

// Validate reports whether the whole system model is meaningful.
func (s System) Validate() error {
	if err := s.Core.Validate(); err != nil {
		return err
	}
	if err := s.Memory.Validate(); err != nil {
		return err
	}
	if s.Cores < 0 {
		return fmt.Errorf("power: Cores must be non-negative, got %d", s.Cores)
	}
	return nil
}
