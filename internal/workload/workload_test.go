package workload

import (
	"math"
	"testing"

	"sdem/internal/dsp"
	"sdem/internal/power"
)

func TestSyntheticDefaults(t *testing.T) {
	set, err := Synthetic(SyntheticConfig{N: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 50 {
		t.Fatalf("len = %d", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, tk := range set {
		if tk.Workload < 2e6 || tk.Workload > 5e6 {
			t.Errorf("workload %g outside [2e6, 5e6]", tk.Workload)
		}
		if w := tk.Window(); w < power.Milliseconds(10) || w > power.Milliseconds(120) {
			t.Errorf("window %g outside [10,120] ms", w)
		}
		if tk.Release < prev {
			t.Error("releases must be nondecreasing")
		}
		prev = tk.Release
	}
	// Feasible at the A57 cap (max filled speed = 5e6/10ms = 500 MHz).
	if !set.Feasible(power.MHz(1900)) {
		t.Error("synthetic sets must be s_up-feasible")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := Synthetic(SyntheticConfig{N: 20}, 42)
	b, _ := Synthetic(SyntheticConfig{N: 20}, 42)
	c, _ := Synthetic(SyntheticConfig{N: 20}, 43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same set")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticUtilizationScaling(t *testing.T) {
	// Larger x must spread the same number of tasks over a longer span.
	tight, _ := Synthetic(SyntheticConfig{N: 100, MaxInterArrival: power.Milliseconds(100)}, 7)
	loose, _ := Synthetic(SyntheticConfig{N: 100, MaxInterArrival: power.Milliseconds(800)}, 7)
	_, tEnd := tight.Span()
	_, lEnd := loose.Span()
	if lEnd <= tEnd {
		t.Errorf("x=800ms span (%g) should exceed x=100ms span (%g)", lEnd, tEnd)
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{N: -1}, 0); err == nil {
		t.Error("negative N must be rejected")
	}
	if _, err := Synthetic(SyntheticConfig{N: 1, WorkMin: 5, WorkMax: 2}, 0); err == nil {
		t.Error("inverted work range must be rejected")
	}
}

func TestBenchmarkFFTWindows(t *testing.T) {
	set, err := Benchmark(BenchmarkConfig{N: 10, Kernel: KernelFFT, U: 4, Batch: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm := dsp.DefaultCostModel()
	wantCycles, _ := dsp.FFTCycles(1024, cm)
	for _, tk := range set {
		if tk.Workload != wantCycles {
			t.Errorf("FFT instance workload %g, want %g", tk.Workload, wantCycles)
		}
		if got, want := tk.Window(), wantCycles/dsp.DSPClockHz; math.Abs(got-want) > 1e-9*want {
			t.Errorf("window %g, want cycles/16.5MHz = %g", got, want)
		}
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarkBatchScalesWork(t *testing.T) {
	one, err := Benchmark(BenchmarkConfig{N: 3, Kernel: KernelFFT, U: 4, Batch: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Benchmark(BenchmarkConfig{N: 3, Kernel: KernelFFT, U: 4}, 3) // default batch 4
	if err != nil {
		t.Fatal(err)
	}
	if four[0].Workload != 4*one[0].Workload {
		t.Errorf("default batch should quadruple the workload: %g vs %g", four[0].Workload, one[0].Workload)
	}
	if _, err := Benchmark(BenchmarkConfig{N: 1, Kernel: KernelFFT, U: 4, Batch: -1}, 0); err == nil {
		t.Error("negative batch must be rejected")
	}
}

func TestBenchmarkUtilizationSpreads(t *testing.T) {
	lo, _ := Benchmark(BenchmarkConfig{N: 40, Kernel: KernelFFT, U: 2}, 9)
	hi, _ := Benchmark(BenchmarkConfig{N: 40, Kernel: KernelFFT, U: 9}, 9)
	_, loEnd := lo.Span()
	_, hiEnd := hi.Span()
	if hiEnd <= loEnd {
		t.Errorf("U=9 span (%g) should exceed U=2 span (%g)", hiEnd, loEnd)
	}
}

func TestBenchmarkMixedAlternates(t *testing.T) {
	set, err := Benchmark(BenchmarkConfig{N: 6, Kernel: KernelMixed, U: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range set {
		wantPrefix := "fft"
		if i%2 == 1 {
			wantPrefix = "mat"
		}
		if tk.Name[:3] != wantPrefix {
			t.Errorf("instance %d named %q, want prefix %q", i, tk.Name, wantPrefix)
		}
	}
}

func TestBenchmarkMatMulVariedSizes(t *testing.T) {
	set, err := Benchmark(BenchmarkConfig{N: 30, Kernel: KernelMatMul, U: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, tk := range set {
		distinct[tk.Workload] = true
	}
	if len(distinct) < 5 {
		t.Errorf("matrix workloads should vary, got %d distinct values", len(distinct))
	}
}

func TestBenchmarkRejectsBadConfig(t *testing.T) {
	if _, err := Benchmark(BenchmarkConfig{N: 1, U: 0}, 0); err == nil {
		t.Error("U=0 must be rejected")
	}
	if _, err := Benchmark(BenchmarkConfig{N: 1, U: 2, FFTPoints: 1000}, 0); err == nil {
		t.Error("non-power-of-two FFT must be rejected")
	}
	if _, err := Benchmark(BenchmarkConfig{N: 1, U: 2, MatDimMin: 5, MatDimMax: 2, Kernel: KernelMatMul}, 0); err == nil {
		t.Error("inverted matrix dims must be rejected")
	}
}

func TestKernelString(t *testing.T) {
	if KernelFFT.String() != "fft" || KernelMatMul.String() != "matmul" ||
		KernelMixed.String() != "mixed" || Kernel(9).String() != "Kernel(9)" {
		t.Error("Kernel.String mismatch")
	}
}

func TestBenchmarkFIRAndIIRKernels(t *testing.T) {
	for _, k := range []Kernel{KernelFIR, KernelIIR} {
		set, err := Benchmark(BenchmarkConfig{N: 12, Kernel: k, U: 4}, 13)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		distinct := map[float64]bool{}
		for _, tk := range set {
			if tk.Workload <= 0 {
				t.Fatalf("%v: non-positive workload", k)
			}
			distinct[tk.Workload] = true
		}
		if len(distinct) < 3 {
			t.Errorf("%v: workloads should vary with random shapes, got %d distinct", k, len(distinct))
		}
	}
	if KernelFIR.String() != "fir" || KernelIIR.String() != "iir" {
		t.Error("kernel names mismatch")
	}
}
