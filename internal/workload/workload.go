// Package workload synthesizes the task sets of the paper's evaluation
// (§8.1): the random synthetic workload of §8.1.2 (workloads in
// [2,5]·10⁶ cycles, feasible regions in [10,120] ms, sporadic arrivals
// with maximum inter-arrival time x) and the DSPstone benchmark workload
// of §8.1.1 (FFT and matrix-multiply instances whose windows derive from
// their cycle counts at the 16.5 MHz reference clock, released with
// period |d−r|·U).
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"

	"sdem/internal/dsp"
	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/task"
)

// SyntheticConfig parameterizes the §8.1.2 generator. Zero fields take
// the paper's values.
type SyntheticConfig struct {
	// N is the number of tasks.
	N int
	// MaxInterArrival is x: successive releases are spaced uniformly in
	// [0, x]. Default 400 ms (the Table 4 starred value).
	MaxInterArrival float64
	// WorkMin and WorkMax bound the workload in cycles. Defaults 2e6 and
	// 5e6.
	WorkMin, WorkMax float64
	// WindowMin and WindowMax bound the feasible region length. Defaults
	// 10 ms and 120 ms.
	WindowMin, WindowMax float64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if numeric.IsZero(c.MaxInterArrival, 0) {
		c.MaxInterArrival = power.Milliseconds(400)
	}
	if numeric.IsZero(c.WorkMin, 0) {
		c.WorkMin = 2e6
	}
	if numeric.IsZero(c.WorkMax, 0) {
		c.WorkMax = 5e6
	}
	if numeric.IsZero(c.WindowMin, 0) {
		c.WindowMin = power.Milliseconds(10)
	}
	if numeric.IsZero(c.WindowMax, 0) {
		c.WindowMax = power.Milliseconds(120)
	}
	return c
}

// Synthetic draws a §8.1.2 task set.
func Synthetic(cfg SyntheticConfig, seed int64) (task.Set, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative task count %d", cfg.N)
	}
	if cfg.WorkMin > cfg.WorkMax || cfg.WindowMin > cfg.WindowMax {
		return nil, fmt.Errorf("workload: inverted ranges in %+v", cfg)
	}
	r := rand.New(rand.NewSource(seed))
	out := make(task.Set, cfg.N)
	var rel float64
	for i := range out {
		rel += r.Float64() * cfg.MaxInterArrival
		window := cfg.WindowMin + r.Float64()*(cfg.WindowMax-cfg.WindowMin)
		out[i] = task.Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + window,
			Workload: cfg.WorkMin + r.Float64()*(cfg.WorkMax-cfg.WorkMin),
			Name:     fmt.Sprintf("syn#%d", i),
		}
	}
	return out, nil
}

// Kernel identifies a DSPstone benchmark kernel.
type Kernel int

const (
	// KernelFFT is the 1024-point FFT benchmark.
	KernelFFT Kernel = iota
	// KernelMatMul is the [X×Y]·[Y×Z] matrix-multiply benchmark.
	KernelMatMul
	// KernelMixed alternates FFT and matrix-multiply instances.
	KernelMixed
	// KernelFIR is a 1024-sample FIR filter frame with a random tap
	// count.
	KernelFIR
	// KernelIIR is a 1024-sample biquad cascade frame with a random
	// depth.
	KernelIIR
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelFFT:
		return "fft"
	case KernelMatMul:
		return "matmul"
	case KernelMixed:
		return "mixed"
	case KernelFIR:
		return "fir"
	case KernelIIR:
		return "iir"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// BenchmarkConfig parameterizes the §8.1.1 generator.
type BenchmarkConfig struct {
	// N is the number of task instances.
	N int
	// Kernel selects the benchmark.
	Kernel Kernel
	// U is the utilization divisor: the release period is |d−r|·U, so
	// larger U means a more lightly loaded system. The paper sweeps
	// U ∈ [2..9].
	U float64
	// FFTPoints is the FFT length (default 1024).
	FFTPoints int
	// MatDimMin and MatDimMax bound the random matrix dimensions
	// (defaults 24 and 48, sized so a multiply costs the same order of
	// cycles as the 1024-point FFT).
	MatDimMin, MatDimMax int
	// Batch is the number of consecutive frames one task instance
	// processes (default 4). The paper leaves the instance granularity
	// unspecified; a small buffer makes the feasible windows (≈13–32 ms)
	// commensurate with the Table 4 break-even grid — with single-frame
	// windows (≈8 ms ≪ ξ_m = 40 ms) no scheme could ever sleep and every
	// comparison would degenerate.
	Batch int
	// Cost is the DSP cycle-cost model (default dsp.DefaultCostModel).
	Cost *dsp.CostModel
}

func (c BenchmarkConfig) withDefaults() BenchmarkConfig {
	if c.FFTPoints == 0 {
		c.FFTPoints = 1024
	}
	if c.MatDimMin == 0 {
		c.MatDimMin = 24
	}
	if c.MatDimMax == 0 {
		c.MatDimMax = 48
	}
	if c.Batch == 0 {
		c.Batch = 4
	}
	if c.Cost == nil {
		cm := dsp.DefaultCostModel()
		c.Cost = &cm
	}
	return c
}

// Benchmark draws a §8.1.1 benchmark task set: each instance's feasible
// region is its cycle count at 16.5 MHz, and instances release
// sporadically with inter-arrival uniform in [0.5, 1]·window·U (sporadic
// around the period |d−r|·U).
func Benchmark(cfg BenchmarkConfig, seed int64) (task.Set, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative task count %d", cfg.N)
	}
	if cfg.U <= 0 {
		return nil, fmt.Errorf("workload: utilization divisor U=%g must be positive", cfg.U)
	}
	if cfg.MatDimMin <= 0 || cfg.MatDimMin > cfg.MatDimMax {
		return nil, fmt.Errorf("workload: bad matrix dims [%d,%d]", cfg.MatDimMin, cfg.MatDimMax)
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("workload: negative batch %d", cfg.Batch)
	}
	r := rand.New(rand.NewSource(seed))
	out := make(task.Set, cfg.N)
	var rel float64
	for i := range out {
		kernel := cfg.Kernel
		if kernel == KernelMixed {
			if i%2 == 0 {
				kernel = KernelFFT
			} else {
				kernel = KernelMatMul
			}
		}
		var cycles float64
		var name string
		var err error
		switch kernel {
		case KernelFFT:
			cycles, err = dsp.FFTCycles(cfg.FFTPoints, *cfg.Cost)
			name = fmt.Sprintf("fft%d#%d", cfg.FFTPoints, i)
		case KernelMatMul:
			dim := func() int { return cfg.MatDimMin + r.Intn(cfg.MatDimMax-cfg.MatDimMin+1) }
			x, y, z := dim(), dim(), dim()
			cycles, err = dsp.MatMulCycles(x, y, z, *cfg.Cost)
			name = fmt.Sprintf("mat%dx%dx%d#%d", x, y, z, i)
		case KernelFIR:
			taps := 32 + r.Intn(97) // 32..128 taps
			cycles, err = dsp.FIRCycles(1024, taps, *cfg.Cost)
			name = fmt.Sprintf("fir%d#%d", taps, i)
		case KernelIIR:
			sections := 4 + r.Intn(13) // 4..16 biquads
			cycles, err = dsp.IIRCycles(1024, sections, *cfg.Cost)
			name = fmt.Sprintf("iir%d#%d", sections, i)
		default:
			err = fmt.Errorf("workload: unknown kernel %v", kernel)
		}
		if err != nil {
			return nil, err
		}
		cycles *= float64(cfg.Batch)
		window := cycles / dsp.DSPClockHz
		out[i] = task.Task{
			ID:       i,
			Release:  rel,
			Deadline: rel + window,
			Workload: cycles,
			Name:     name,
		}
		period := window * cfg.U
		rel += period * (0.5 + 0.5*r.Float64())
	}
	return out, nil
}
