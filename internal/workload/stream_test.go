package workload

import (
	"math"
	"testing"
)

// TestSporadicStreamMatchesSynthetic pins the stream to the batch
// generator: same seed, same draws, so the collected prefix must equal
// the Synthetic set field for field (minus names, which the stream
// leaves empty to keep long runs garbage-free).
func TestSporadicStreamMatchesSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := SyntheticConfig{N: 50}
		want, err := Synthetic(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		src, err := SporadicStream(cfg, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(src, len(want))
		if len(got) != len(want) {
			t.Fatalf("seed %d: collected %d tasks, want %d", seed, len(got), len(want))
		}
		for i := range want {
			w := want[i]
			w.Name = ""
			if got[i] != w {
				t.Fatalf("seed %d task %d: stream %+v, batch %+v", seed, i, got[i], w)
			}
		}
	}
}

// TestSporadicStreamLimit checks the instance bound and exhaustion.
func TestSporadicStreamLimit(t *testing.T) {
	src, err := SporadicStream(SyntheticConfig{}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := Collect(src, 100); len(got) != 7 {
		t.Errorf("limited stream emitted %d tasks, want 7", len(got))
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted stream still emitting")
	}
}

// TestPeriodicBitStable checks that the n-th instance of a periodic
// stream is bit-identical no matter how many instances were drawn before
// it or how long the run is — the property the plan-delta memo leans on.
func TestPeriodicBitStable(t *testing.T) {
	cfg := PeriodicConfig{Period: 0.1, Phase: 0.03, Window: 0.05, Workload: 3e6}
	short, err := Periodic(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Periodic(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Collect(short, 10), Collect(long, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d differs across run lengths: %+v vs %+v", i, a[i], b[i])
		}
		//lint:allow floatcmp: bit-stability is exactly the property under test
		if want := cfg.Phase + float64(i)*cfg.Period; a[i].Release != want {
			t.Errorf("instance %d released at %g, want %g", i, a[i].Release, want)
		}
	}
	// Every instance carries the identical workload bits and a window
	// equal to the configured one up to one rounding of the release sum
	// (deadline − release re-rounds, so only near-bit equality holds).
	for i := 1; i < len(b); i++ {
		//lint:allow floatcmp: workload is copied verbatim from the config
		if b[i].Workload != b[0].Workload {
			t.Fatalf("instance %d workload differs from instance 0", i)
		}
		if w := b[i].Deadline - b[i].Release; math.Abs(w-cfg.Window) > 1e-12 {
			t.Fatalf("instance %d window %g drifted from %g", i, w, cfg.Window)
		}
	}
}

// TestPeriodicRejectsBadConfig covers the validation paths.
func TestPeriodicRejectsBadConfig(t *testing.T) {
	bad := []PeriodicConfig{
		{Period: 0, Window: 1, Workload: 1},
		{Period: 1, Window: 0, Workload: 1},
		{Period: 1, Window: 1, Workload: 0},
		{Period: 1, Window: 1, Workload: 1, Phase: -1},
	}
	for _, cfg := range bad {
		if _, err := Periodic(cfg, 1); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestMergeHyperperiod interleaves periodic streams with rationally
// related periods and checks release order, sequential renumbering, and
// the hyperperiod pattern: task counts per hyperperiod match the ratio
// of the least common multiple to each period.
func TestMergeHyperperiod(t *testing.T) {
	p2, err := Periodic(PeriodicConfig{Period: 0.02, Window: 0.015, Workload: 2e6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := Periodic(PeriodicConfig{Period: 0.05, Window: 0.04, Workload: 4e6}, 20)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(Merge(p2, p5), 100)
	if len(got) != 70 {
		t.Fatalf("merged %d tasks, want 70", len(got))
	}
	prev := math.Inf(-1)
	for i, tk := range got {
		if tk.ID != i {
			t.Fatalf("task %d renumbered to %d, want sequential IDs", i, tk.ID)
		}
		if tk.Release < prev {
			t.Fatalf("task %d released at %g after %g — merge out of order", i, tk.Release, prev)
		}
		prev = tk.Release
	}
	// One hyperperiod is lcm(0.02, 0.05) = 0.1 s: 5 instances of the fast
	// stream, 2 of the slow one.
	fast, slow := 0, 0
	for _, tk := range got {
		if tk.Release >= 0.1-1e-12 {
			break
		}
		//lint:allow floatcmp: workloads are exact stream constants
		if tk.Workload == 2e6 {
			fast++
		} else {
			slow++
		}
	}
	if fast != 5 || slow != 2 {
		t.Errorf("hyperperiod holds %d fast + %d slow instances, want 5 + 2", fast, slow)
	}
}

// TestMergedTasksValidate checks that merged periodic instances pass the
// task validator — the admission path of the streaming engine.
func TestMergedTasksValidate(t *testing.T) {
	p, err := Periodic(PeriodicConfig{Period: 0.03, Window: 0.02, Workload: 1e6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range Collect(p, 10) {
		if err := tk.Validate(); err != nil {
			t.Fatalf("periodic instance %d invalid: %v", tk.ID, err)
		}
	}
}

// TestUtilization sanity-checks the feasibility estimator.
func TestUtilization(t *testing.T) {
	cfgs := []PeriodicConfig{
		{Period: 0.01, Workload: 5e6},
		{Period: 0.02, Workload: 1e7},
	}
	got := Utilization(cfgs, 1e9, 2)
	if rel := math.Abs(got-0.5) / 0.5; rel > 1e-12 {
		t.Errorf("utilization %g, want 0.5", got)
	}
	if Utilization(cfgs, 0, 2) != 0 || Utilization(cfgs, 1e9, 0) != 0 {
		t.Error("degenerate reference or core count must yield zero")
	}
}
