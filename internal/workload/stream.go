package workload

import (
	"container/heap"
	"fmt"
	"math/rand"

	"sdem/internal/task"
)

// Source is a stream of task instances in non-decreasing release order.
// Streaming engines consume one task at a time, so an unbounded source
// costs O(1) memory regardless of how many instances it eventually
// emits.
type Source interface {
	// Next returns the next task instance, or ok=false when the stream
	// is exhausted. Releases never decrease across calls.
	Next() (t task.Task, ok bool)
}

// sporadicSource draws the §8.1.2 synthetic distribution as an
// unbounded stream.
type sporadicSource struct {
	cfg  SyntheticConfig
	r    *rand.Rand
	id   int
	rel  float64
	left int64 // remaining instances; < 0 means unbounded
}

// SporadicStream streams the §8.1.2 synthetic workload: the same
// inter-arrival, window and workload distributions as Synthetic, but
// emitted one instance at a time so a soak run can draw days of virtual
// time without materializing the set. limit bounds the number of
// instances (≤ 0 = unbounded — the consumer decides when to stop). IDs
// are sequential from 0; names are left empty to keep the steady-state
// garbage of long runs at zero.
func SporadicStream(cfg SyntheticConfig, seed int64, limit int64) (Source, error) {
	cfg = cfg.withDefaults()
	if cfg.WorkMin > cfg.WorkMax || cfg.WindowMin > cfg.WindowMax {
		return nil, fmt.Errorf("workload: inverted ranges in %+v", cfg)
	}
	if limit <= 0 {
		limit = -1
	}
	return &sporadicSource{cfg: cfg, r: rand.New(rand.NewSource(seed)), left: limit}, nil
}

func (s *sporadicSource) Next() (task.Task, bool) {
	if s.left == 0 {
		return task.Task{}, false
	}
	if s.left > 0 {
		s.left--
	}
	s.rel += s.r.Float64() * s.cfg.MaxInterArrival
	window := s.cfg.WindowMin + s.r.Float64()*(s.cfg.WindowMax-s.cfg.WindowMin)
	t := task.Task{
		ID:       s.id,
		Release:  s.rel,
		Deadline: s.rel + window,
		Workload: s.cfg.WorkMin + s.r.Float64()*(s.cfg.WorkMax-s.cfg.WorkMin),
	}
	s.id++
	return t, true
}

// PeriodicConfig parameterizes one strictly periodic stream: an instance
// every Period seconds starting at Phase, each with the given Window and
// Workload. Instances repeat the same (window, workload) parameters, so
// the online engine's plan-delta memo hits on most instances (deadline −
// release re-rounds per instance, so window bits can differ by one ULP).
type PeriodicConfig struct {
	// Period between releases (> 0).
	Period float64
	// Phase is the first release time (≥ 0).
	Phase float64
	// Window is the feasible-region length (deadline − release, > 0).
	Window float64
	// Workload in cycles (> 0).
	Workload float64
}

type periodicSource struct {
	cfg  PeriodicConfig
	k    int64
	left int64
}

// Periodic streams a strictly periodic task. limit bounds the number of
// instances (≤ 0 = unbounded). IDs are sequential from 0; Merge
// renumbers when several periodic streams are interleaved.
func Periodic(cfg PeriodicConfig, limit int64) (Source, error) {
	switch {
	case cfg.Period <= 0:
		return nil, fmt.Errorf("workload: period %g must be positive", cfg.Period)
	case cfg.Window <= 0:
		return nil, fmt.Errorf("workload: window %g must be positive", cfg.Window)
	case cfg.Workload <= 0:
		return nil, fmt.Errorf("workload: workload %g must be positive", cfg.Workload)
	case cfg.Phase < 0:
		return nil, fmt.Errorf("workload: phase %g must be non-negative", cfg.Phase)
	}
	if limit <= 0 {
		limit = -1
	}
	return &periodicSource{cfg: cfg, left: limit}, nil
}

func (s *periodicSource) Next() (task.Task, bool) {
	if s.left == 0 {
		return task.Task{}, false
	}
	if s.left > 0 {
		s.left--
	}
	// k·Period + Phase rather than repeated addition: the release of the
	// n-th instance is then independent of how many were drawn before,
	// and bit-identical across runs of any length.
	rel := s.cfg.Phase + float64(s.k)*s.cfg.Period
	t := task.Task{
		ID:       int(s.k),
		Release:  rel,
		Deadline: rel + s.cfg.Window,
		Workload: s.cfg.Workload,
	}
	s.k++
	return t, true
}

// mergeHeap orders pending heads by (release, source index) — the source
// index breaks ties deterministically.
type mergeHeap []mergeHead

type mergeHead struct {
	t   task.Task
	src int
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	//lint:allow floatcmp: heap ordering must be exact to stay deterministic
	if h[i].t.Release != h[j].t.Release {
		return h[i].t.Release < h[j].t.Release
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type mergedSource struct {
	srcs []Source
	h    mergeHeap
	id   int
}

// Merge interleaves several sources into one release-ordered stream via
// a k-way heap merge — the streaming construction of a hyperperiod: the
// merge of Periodic streams with rationally related periods repeats its
// (window, workload) pattern every least common multiple. Emitted tasks
// are renumbered with sequential IDs so instances from different
// sources never collide.
func Merge(srcs ...Source) Source {
	m := &mergedSource{srcs: srcs, h: make(mergeHeap, 0, len(srcs))}
	for i, s := range srcs {
		if t, ok := s.Next(); ok {
			m.h = append(m.h, mergeHead{t, i})
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergedSource) Next() (task.Task, bool) {
	if len(m.h) == 0 {
		return task.Task{}, false
	}
	head := m.h[0]
	if t, ok := m.srcs[head.src].Next(); ok {
		m.h[0] = mergeHead{t, head.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	out := head.t
	out.ID = m.id
	m.id++
	return out, true
}

// Collect drains up to n tasks from the source into a set — the bridge
// from streaming generators to the batch APIs (and the tool tests use it
// to compare a stream against its batch counterpart).
func Collect(src Source, n int) task.Set {
	out := make(task.Set, 0, n)
	for len(out) < n {
		t, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}

// Utilization estimates the long-run per-core utilization of a merged
// periodic system at reference speed ref: Σ workload/(period·ref·cores).
// The soak harness uses it to pick feasible configurations.
func Utilization(cfgs []PeriodicConfig, ref float64, cores int) float64 {
	if ref <= 0 || cores <= 0 {
		return 0
	}
	var u float64
	for _, c := range cfgs {
		if c.Period > 0 {
			u += c.Workload / (c.Period * ref)
		}
	}
	return u / float64(cores)
}
