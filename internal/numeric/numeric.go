// Package numeric provides the small numerical-optimization toolbox used by
// the SDEM schedulers: one-dimensional convex minimization on an interval,
// nested two-dimensional convex minimization on a box, and robust root
// finding. All routines work on plain float64 functions and are
// deterministic.
package numeric

import (
	"math"
)

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// DefaultTol is the relative tolerance used when a caller passes tol <= 0.
const DefaultTol = 1e-12

// MinimizeConvex finds the minimizer of a convex function f on [lo, hi]
// using golden-section search, returning the argmin and the minimum value.
// The result is accurate to tol·max(1, |lo|, |hi|) in the argument. For a
// strictly convex f the minimizer is unique; for merely convex f some
// minimizer is returned. f may return +Inf on sub-intervals as long as the
// finite region is contiguous (an extended-value convex function).
func MinimizeConvex(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	span := hi - lo
	eps := tol * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	if span <= eps {
		mid := (lo + hi) / 2
		return mid, f(mid)
	}
	// Track the best point ever evaluated: near constraint boundaries an
	// extended-value f can return +Inf on re-evaluation of an
	// infinitesimally shifted argument, so trusting a final midpoint
	// probe would discard the converged optimum.
	// The best-so-far tracking is inlined rather than factored into a
	// closure: a closure over bestX/bestF would force them to the heap on
	// every call, and this routine is the inner loop of the 2-D search.
	bestX, bestF := lo, f(lo)
	if fe := f(hi); fe < bestF {
		bestX, bestF = hi, fe
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	if fc < bestF {
		bestX, bestF = c, fc
	}
	if fd < bestF {
		bestX, bestF = d, fd
	}
	// Golden-section needs at most ~log(span/eps)/log(φ) iterations; cap
	// defensively so pathological inputs cannot loop forever.
	for i := 0; i < 400 && b-a > eps; i++ {
		// Treat +Inf plateaus: shrink towards the finite side.
		switch {
		case math.IsInf(fc, 1) && math.IsInf(fd, 1):
			// Both probes are infeasible; the feasible region (if any)
			// is in one of the thirds. Bisect blindly towards centre.
			a, b = c, d
			c = b - invPhi*(b-a)
			d = a + invPhi*(b-a)
			fc, fd = f(c), f(d)
			continue
		case fc <= fd:
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
			if fc < bestF {
				bestX, bestF = c, fc
			}
		default:
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
			if fd < bestF {
				bestX, bestF = d, fd
			}
		}
	}
	mid := (a + b) / 2
	if fm := f(mid); fm < bestF {
		bestX, bestF = mid, fm
	}
	return bestX, bestF
}

// Box is an axis-aligned rectangle [X0,X1]×[Y0,Y1].
type Box struct {
	X0, X1, Y0, Y1 float64
}

// Valid reports whether the box is non-empty.
func (b Box) Valid() bool { return b.X0 <= b.X1 && b.Y0 <= b.Y1 }

// MinimizeConvex2D minimizes a jointly convex function f over the box using
// nested golden-section search: the outer search runs over x, and for each
// x the inner search minimizes over y. The partial minimum
// g(x) = min_y f(x,y) of a jointly convex f is convex, so the nesting is
// exact up to tolerance. Returns the argmin pair and the value.
func MinimizeConvex2D(f func(x, y float64) float64, b Box, tol float64) (x, y, fxy float64) {
	if tol <= 0 {
		// Nested golden-section loses ~2 digits over the 1-D search, so the
		// default is two decades looser than DefaultTol.
		tol = 100 * DefaultTol
	}
	//lint:allow hotalloc: the nested-search closures allocate once per 2-D solve and are amortized over its ~10³ probes
	inner := func(x float64) (float64, float64) {
		//lint:allow hotalloc: the y-slice closure is re-bound per outer probe; threading x explicitly would obscure the nesting
		return MinimizeConvex(func(yy float64) float64 { return f(x, yy) }, b.Y0, b.Y1, tol)
	}
	//lint:allow hotalloc: see inner above — one closure per 2-D solve
	g := func(x float64) float64 {
		_, v := inner(x)
		return v
	}
	x, _ = MinimizeConvex(g, b.X0, b.X1, tol)
	y, fxy = inner(x)
	return x, y, fxy
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) have
// opposite signs (or one of them is zero). It returns the midpoint of the
// final bracket. ok is false when the initial bracket does not straddle a
// sign change.
func Bisect(f func(float64) float64, lo, hi, tol float64) (root float64, ok bool) {
	if tol <= 0 {
		tol = DefaultTol
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 { //lint:allow floatcmp: an exact root short-circuits bracketing; near-roots converge normally
		return lo, true
	}
	if fhi == 0 { //lint:allow floatcmp: see above
		return hi, true
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, false
	}
	eps := tol * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	for i := 0; i < 200 && hi-lo > eps; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 { //lint:allow floatcmp: an exact root ends bisection early; no rounding hazard
			return mid, true
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, true
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b agree to within a relative tolerance
// tol (absolute for magnitudes below 1).
func AlmostEqual(a, b, tol float64) bool {
	if a == b { //lint:allow floatcmp: bit-exact fast path of the comparison helper itself
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// ApproxEqual reports whether a and b agree to within tolerance tol,
// interpreted relatively for magnitudes above 1 and absolutely below
// (the same hybrid rule as AlmostEqual). It is the comparison the
// floatcmp analyzer steers `==`/`!=` on physical quantities towards.
//
// Edge cases follow IEEE-754 intuition rather than bit equality:
// NaN compares unequal to everything including itself; equal-signed
// infinities compare equal; opposite-signed or mixed finite/infinite
// operands compare unequal regardless of tol; denormals compare via
// the absolute branch, so two denormals are equal under any tol ≥ 0
// larger than their difference. A tol <= 0 falls back to DefaultTol.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //lint:allow floatcmp: infinities carry no rounding error
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	return AlmostEqual(a, b, tol)
}

// IsZero reports whether v is zero to within the absolute tolerance tol.
// A tol of exactly 0 requires bit-exact zero (±0), which is the right
// test for "field left at its zero value" sentinels; physical
// quantities accumulated through arithmetic should pass an explicit
// tolerance such as schedule.Tol. NaN is never zero. A negative tol
// falls back to DefaultTol.
func IsZero(v, tol float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if tol < 0 {
		tol = DefaultTol
	}
	return math.Abs(v) <= tol
}

// SumPow returns Σ w_i^λ for the given workloads. Negative workloads are
// invalid inputs and contribute NaN, which callers surface via validation.
func SumPow(ws []float64, lambda float64) float64 {
	var s float64
	for _, w := range ws {
		s += math.Pow(w, lambda)
	}
	return s
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse
// quadratic interpolation with bisection fallback) — faster than Bisect
// on smooth functions, identical bracketing guarantees. ok is false when
// the bracket does not straddle a sign change.
func Brent(f func(float64) float64, lo, hi, tol float64) (root float64, ok bool) {
	if tol <= 0 {
		tol = DefaultTol
	}
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 { //lint:allow floatcmp: an exact root short-circuits bracketing; near-roots converge normally
		return a, true
	}
	if fb == 0 { //lint:allow floatcmp: see above
		return b, true
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, false
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	eps := tol * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	//lint:allow floatcmp: Brent's termination and interpolation-degeneracy guards are exact by construction
	for i := 0; i < 200 && fb != 0 && math.Abs(b-a) > eps; i++ {
		var s float64
		if fa != fc && fb != fc { //lint:allow floatcmp: inverse quadratic interpolation divides by these differences; the guard must be exact
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		bound1 := (3*a + b) / 4
		lo1, hi1 := math.Min(bound1, b), math.Max(bound1, b)
		cond := s < lo1 || s > hi1 ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < eps) ||
			(!mflag && math.Abs(c-d) < eps)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, true
}
