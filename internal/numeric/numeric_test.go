package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinimizeConvexQuadratic(t *testing.T) {
	cases := []struct {
		name       string
		f          func(float64) float64
		lo, hi     float64
		wantX      float64
		wantF      float64
		argTol     float64
		shiftedMin bool
	}{
		{
			name: "interior minimum",
			f:    func(x float64) float64 { return (x - 3) * (x - 3) },
			lo:   -10, hi: 10, wantX: 3, wantF: 0, argTol: 1e-6,
		},
		{
			name: "minimum at left boundary",
			f:    func(x float64) float64 { return x * x },
			lo:   2, hi: 9, wantX: 2, wantF: 4, argTol: 1e-6,
		},
		{
			name: "minimum at right boundary",
			f:    func(x float64) float64 { return -x },
			lo:   0, hi: 5, wantX: 5, wantF: -5, argTol: 1e-6,
		},
		{
			name: "degenerate interval",
			f:    func(x float64) float64 { return x * x },
			lo:   4, hi: 4, wantX: 4, wantF: 16, argTol: 1e-12,
		},
	}
	for _, tc := range cases {
		x, fx := MinimizeConvex(tc.f, tc.lo, tc.hi, 1e-10)
		if math.Abs(x-tc.wantX) > tc.argTol {
			t.Errorf("%s: x = %g, want %g", tc.name, x, tc.wantX)
		}
		if math.Abs(fx-tc.wantF) > 1e-6 {
			t.Errorf("%s: f(x) = %g, want %g", tc.name, fx, tc.wantF)
		}
	}
}

func TestMinimizeConvexSwappedBounds(t *testing.T) {
	x, _ := MinimizeConvex(func(x float64) float64 { return (x - 1) * (x - 1) }, 5, -5, 1e-10)
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("swapped bounds: x = %g, want 1", x)
	}
}

func TestMinimizeConvexEnergyShape(t *testing.T) {
	// The SDEM per-case energy E(Δ) = α_m(L−Δ) + K(L−Δ)^{1−λ} has the
	// closed-form minimizer Δ* = L − (K(λ−1)/α_m)^{1/λ}. Check that the
	// numeric search finds it.
	alphaM, K, L, lambda := 4.0, 2.0e-3, 0.5, 3.0
	f := func(d float64) float64 {
		b := L - d
		if b <= 0 {
			return math.Inf(1)
		}
		return alphaM*b + K*math.Pow(b, 1-lambda)
	}
	want := L - math.Pow(K*(lambda-1)/alphaM, 1/lambda)
	x, _ := MinimizeConvex(f, 0, L, 1e-12)
	if math.Abs(x-want) > 1e-7 {
		t.Errorf("Δ* = %g, want %g", x, want)
	}
}

func TestMinimizeConvexWithInfPlateau(t *testing.T) {
	// Extended-value convex function: +Inf for x < 2, decreasing-then-flat
	// beyond. The feasible minimum is at x = 3.
	f := func(x float64) float64 {
		if x < 2 {
			return math.Inf(1)
		}
		return (x - 3) * (x - 3)
	}
	x, fx := MinimizeConvex(f, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-5 || fx > 1e-9 {
		t.Errorf("inf plateau: x = %g f = %g, want x = 3 f = 0", x, fx)
	}
}

func TestMinimizeConvex2D(t *testing.T) {
	f := func(x, y float64) float64 { return (x-1)*(x-1) + (y+2)*(y+2) + 0.5*(x-1)*(y+2) }
	x, y, v := MinimizeConvex2D(f, Box{X0: -10, X1: 10, Y0: -10, Y1: 10}, 1e-11)
	if math.Abs(x-1) > 1e-4 || math.Abs(y+2) > 1e-4 {
		t.Errorf("argmin = (%g, %g), want (1, -2)", x, y)
	}
	if v > 1e-7 {
		t.Errorf("min value = %g, want 0", v)
	}
}

func TestMinimizeConvex2DBoundary(t *testing.T) {
	// Unconstrained minimum at (−1, −1) lies outside the box; the
	// constrained minimum is the nearest corner (0, 0).
	f := func(x, y float64) float64 { return (x+1)*(x+1) + (y+1)*(y+1) }
	x, y, _ := MinimizeConvex2D(f, Box{X0: 0, X1: 4, Y0: 0, Y1: 4}, 1e-11)
	if math.Abs(x) > 1e-5 || math.Abs(y) > 1e-5 {
		t.Errorf("argmin = (%g, %g), want (0, 0)", x, y)
	}
}

func TestBisect(t *testing.T) {
	root, ok := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 10, 1e-12)
	if !ok || math.Abs(root-2) > 1e-6 {
		t.Errorf("root = %g ok=%v, want 2", root, ok)
	}
	if _, ok := Bisect(func(x float64) float64 { return x*x + 1 }, -5, 5, 1e-12); ok {
		t.Error("Bisect reported success without a sign change")
	}
	root, ok = Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12)
	if !ok || root != 0 {
		t.Errorf("exact-zero endpoint: root = %g ok=%v", root, ok)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestSumPow(t *testing.T) {
	got := SumPow([]float64{1, 2, 3}, 3)
	if got != 36 {
		t.Errorf("SumPow = %g, want 36", got)
	}
	if SumPow(nil, 3) != 0 {
		t.Error("SumPow(nil) must be 0")
	}
}

func TestPropertyMinimizeConvexBeatsSamples(t *testing.T) {
	// Property: for random convex parabolas on random intervals the
	// numeric minimum is no worse than any sampled point.
	f := func(aRaw, cRaw, loRaw, spanRaw uint32) bool {
		a := 0.1 + float64(aRaw%100)/10
		c := -50 + float64(cRaw%1000)/10
		lo := -100 + float64(loRaw%2000)/10
		hi := lo + 0.1 + float64(spanRaw%1000)/10
		fun := func(x float64) float64 { return a * (x - c) * (x - c) }
		_, fx := MinimizeConvex(fun, lo, hi, 1e-10)
		for i := 0; i <= 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			if fun(x) < fx-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBisectFindsRootOfMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := 0.5 + float64(aRaw%100)/10
		b := -20 + float64(bRaw%400)/10
		fun := func(x float64) float64 { return a*x + b }
		want := -b / a
		root, ok := Bisect(fun, -100, 100, 1e-12)
		return ok && math.Abs(root-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxValid(t *testing.T) {
	if !(Box{0, 1, 0, 1}).Valid() {
		t.Error("unit box must be valid")
	}
	if (Box{1, 0, 0, 1}).Valid() {
		t.Error("inverted box must be invalid")
	}
	if !(Box{2, 2, 3, 3}).Valid() {
		t.Error("degenerate point box must be valid")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-9) {
		t.Error("tiny relative difference should be equal")
	}
	if AlmostEqual(1, 1.1, 1e-9) {
		t.Error("10% difference should not be equal")
	}
	if !AlmostEqual(0, 1e-12, 1e-9) {
		t.Error("absolute comparison near zero failed")
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	funcs := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"cubic", func(x float64) float64 { return x*x*x - 8 }, 0, 10, 2},
		{"line", func(x float64) float64 { return 3*x - 6 }, -10, 10, 2},
		{"transcendental", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 5, math.Log(5)},
		{"sdem stationarity", func(x float64) float64 { return 4 - 2*2.53e-4*math.Pow(0.1-x, -3) }, 0, 0.0999, 0.1 - math.Pow(2*2.53e-4/4, 1.0/3)},
	}
	for _, tc := range funcs {
		br, ok := Brent(tc.f, tc.lo, tc.hi, 1e-13)
		if !ok || math.Abs(br-tc.want) > 1e-8*(1+math.Abs(tc.want)) {
			t.Errorf("%s: Brent = %.12g ok=%v, want %.12g", tc.name, br, ok, tc.want)
		}
		bi, ok := Bisect(tc.f, tc.lo, tc.hi, 1e-13)
		if !ok || math.Abs(br-bi) > 1e-7*(1+math.Abs(bi)) {
			t.Errorf("%s: Brent %.12g != Bisect %.12g", tc.name, br, bi)
		}
	}
	if _, ok := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); ok {
		t.Error("Brent must reject a bracket without a sign change")
	}
	if r, ok := Brent(func(x float64) float64 { return x }, 0, 5, 1e-12); !ok || r != 0 {
		t.Errorf("exact endpoint root: %g %v", r, ok)
	}
}

func TestPropertyBrentMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := 0.5 + float64(aRaw%100)/10
		b := -20 + float64(bRaw%400)/10
		fun := func(x float64) float64 { return a*x + b }
		want := -b / a
		root, ok := Brent(fun, -100, 100, 1e-12)
		return ok && math.Abs(root-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	denorm := math.SmallestNonzeroFloat64 // 4.9e-324, denormal
	cases := []struct {
		name      string
		a, b, tol float64
		want      bool
	}{
		{"identical", 1.5, 1.5, 1e-9, true},
		{"within relative tol", 1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{"outside relative tol", 1e12, 1e12 * (1 + 1e-6), 1e-9, false},
		{"within absolute tol below 1", 1e-15, 2e-15, 1e-9, true},
		{"sign difference", 1e-3, -1e-3, 1e-9, false},
		{"nan left", nan, 0, 1e-9, false},
		{"nan right", 0, nan, 1e-9, false},
		{"nan both", nan, nan, 1e-9, false},
		{"inf equal sign", inf, inf, 1e-9, true},
		{"inf opposite sign", inf, -inf, 1e-9, false},
		{"neg inf equal", -inf, -inf, 1e-9, true},
		{"inf vs finite", inf, 1e308, 1e-9, false},
		{"finite vs neg inf", -1e308, -inf, 1e-9, false},
		{"denormal pair", denorm, 2 * denorm, 1e-12, true},
		{"denormal vs zero", denorm, 0, 1e-12, true},
		{"zero tol falls back to default", 1, 1 + 1e-13, 0, true},
		{"negative zero vs zero", math.Copysign(0, -1), 0, 1e-12, true},
	}
	for _, tc := range cases {
		if got := ApproxEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("%s: ApproxEqual(%g, %g, %g) = %v, want %v", tc.name, tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		return ApproxEqual(a, b, 1e-9) == ApproxEqual(b, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	denorm := math.SmallestNonzeroFloat64
	cases := []struct {
		name   string
		v, tol float64
		want   bool
	}{
		{"exact zero exact tol", 0, 0, true},
		{"negative zero exact tol", math.Copysign(0, -1), 0, true},
		{"denormal exact tol", denorm, 0, false},
		{"denormal loose tol", denorm, 1e-12, true},
		{"within tol", 5e-10, 1e-9, true},
		{"at tol boundary", 1e-9, 1e-9, true},
		{"outside tol", 2e-9, 1e-9, false},
		{"negative within tol", -5e-10, 1e-9, true},
		{"nan never zero", math.NaN(), 1e-9, false},
		{"nan never zero exact", math.NaN(), 0, false},
		{"inf never zero", math.Inf(1), 1e-9, false},
		{"negative tol falls back to default", 1e-13, -1, true},
		{"negative tol default rejects large", 1e-3, -1, false},
	}
	for _, tc := range cases {
		if got := IsZero(tc.v, tc.tol); got != tc.want {
			t.Errorf("%s: IsZero(%g, %g) = %v, want %v", tc.name, tc.v, tc.tol, got, tc.want)
		}
	}
}
