package encode

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

func sampleTasks() task.Set {
	return task.Set{
		{ID: 1, Release: 0, Deadline: 0.06, Workload: 3e6, Name: "a"},
		{ID: 2, Release: 0, Deadline: 0.09, Workload: 4e6, Name: "b"},
	}
}

func TestTasksRoundTrip(t *testing.T) {
	ts := sampleTasks()
	data, err := MarshalTasks(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTasks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("len %d != %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("task %d: %+v != %+v", i, got[i], ts[i])
		}
	}
}

func TestSystemRoundTrip(t *testing.T) {
	sys := power.DefaultSystem()
	data, err := MarshalSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != sys {
		t.Errorf("system round trip: %+v != %+v", got, sys)
	}
}

func TestScheduleAndRunRoundTrip(t *testing.T) {
	sys := power.DefaultSystem()
	ts := sampleTasks()
	sol, err := commonrelease.Solve(ts, sys)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSchedule(sol.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(ts, schedule.ValidateOptions{SpeedMax: sys.Core.SpeedMax}); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
	if a, b := schedule.Audit(got, sys).Total(), sol.Energy; a != b {
		t.Errorf("decoded audit %g != original %g", a, b)
	}

	run := Run{Tasks: ts, System: sys, Schedule: sol.Schedule, Breakdown: schedule.Audit(sol.Schedule, sys)}
	rdata, err := MarshalRun(run)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRun(rdata)
	if err != nil {
		t.Fatal(err)
	}
	if back.Breakdown.Total() != run.Breakdown.Total() {
		t.Error("run breakdown changed in round trip")
	}
}

func TestRunTamperDetection(t *testing.T) {
	sys := power.DefaultSystem()
	ts := sampleTasks()
	sol, err := commonrelease.Solve(ts, sys)
	if err != nil {
		t.Fatal(err)
	}
	run := Run{Tasks: ts, System: sys, Schedule: sol.Schedule, Breakdown: schedule.Audit(sol.Schedule, sys)}
	data, err := MarshalRun(run)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the stored energy.
	tampered := bytes.Replace(data, []byte(`"CoreDynamic"`), []byte(`"CoreDynamicX"`), 1)
	if _, err := UnmarshalRun(tampered); err == nil {
		t.Error("tampered run should fail the audit cross-check")
	}
}

func TestKindAndVersionGuards(t *testing.T) {
	ts := sampleTasks()
	data, _ := MarshalTasks(ts)
	// Wrong kind.
	if _, err := UnmarshalSystem(data); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("kind mismatch should fail, got %v", err)
	}
	// Wrong version.
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Version = 99
	bad, _ := json.Marshal(doc)
	if _, err := UnmarshalTasks(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch should fail, got %v", err)
	}
	// Garbage.
	if _, err := UnmarshalTasks([]byte("{")); err == nil {
		t.Error("garbage should fail")
	}
	// Invalid tasks payload.
	badTasks := task.Set{{ID: 1, Release: 1, Deadline: 0, Workload: 1}}
	raw, _ := json.Marshal(badTasks)
	env, _ := json.Marshal(Document{Version: Version, Kind: KindTasks, Payload: raw})
	if _, err := UnmarshalTasks(env); err == nil {
		t.Error("invalid task set should fail validation")
	}
}

func TestWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{}\n" {
		t.Errorf("Write output %q", buf.String())
	}
}
