// Package encode provides stable JSON interchange for the library's data
// types — task sets, system models and schedules — so the CLI tools can
// pipe workloads and results between each other and external tooling
// (plotting, trace viewers) can consume them.
package encode

import (
	"encoding/json"
	"fmt"
	"io"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
)

// auditTol is the relative disagreement allowed between a stored energy
// breakdown and a fresh audit of the decoded schedule; it matches
// schedule.Tol (1e-9) by value.
const auditTol = 1e-9

// Version is embedded in every document to keep future format changes
// detectable.
const Version = 1

// Document is the envelope for any encoded payload.
type Document struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Kinds of payloads.
const (
	KindTasks      = "tasks"
	KindSystem     = "system"
	KindSchedule   = "schedule"
	KindRun        = "run"
	KindFaultSweep = "fault-sweep"
)

// FaultSweepRow is one intensity point of a fault-injection sweep:
// aggregate miss and recovery statistics over the trial fault seeds.
type FaultSweepRow struct {
	// Intensity is the fault generator's headline knob.
	Intensity float64 `json:"intensity"`
	// Trials is the number of fault seeds at this point.
	Trials int `json:"trials"`
	// Faults is the total number of injected faults across trials.
	Faults int `json:"faults"`
	// BareMisses counts fault-induced misses of the no-recovery replay.
	BareMisses int `json:"bare_misses"`
	// RecoveredMisses counts fault-induced misses left by the full
	// recovery chain.
	RecoveredMisses int `json:"recovered_misses"`
	// Averted counts fault-threatened deadlines the chain met.
	Averted int `json:"averted"`
	// Boosts, Replans and Races count the recovery actions taken.
	Boosts  int `json:"boosts"`
	Replans int `json:"replans"`
	Races   int `json:"races"`
	// EnergyOverhead is the mean relative energy of the faulty recovered
	// run against the fault-free schedule, (E − E_clean)/E_clean,
	// averaged over trials. It includes both the recovery actions and
	// the fault energy itself (wake stalls, spurious wakes).
	EnergyOverhead float64 `json:"energy_overhead"`
}

// FaultSweep is the interchange payload of a cmd/faultsim campaign.
type FaultSweep struct {
	// Workload names the generated task set (e.g. "fft").
	Workload string `json:"workload"`
	// N is the number of task instances.
	N int `json:"n"`
	// Seed is the workload seed.
	Seed int64 `json:"seed"`
	// CleanEnergy is the audited energy of the fault-free schedule.
	CleanEnergy float64 `json:"clean_energy"`
	// Rows are the intensity points in sweep order.
	Rows []FaultSweepRow `json:"rows"`
}

// Run bundles a scheduling result for interchange: the inputs, the
// schedule and its audited breakdown.
type Run struct {
	Tasks     task.Set           `json:"tasks"`
	System    power.System       `json:"system"`
	Schedule  *schedule.Schedule `json:"schedule"`
	Breakdown schedule.Breakdown `json:"breakdown"`
}

func wrap(kind string, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("encode: marshal %s: %w", kind, err)
	}
	return json.MarshalIndent(Document{Version: Version, Kind: kind, Payload: raw}, "", "  ")
}

func unwrap(data []byte, kind string, payload any) error {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("encode: bad document: %w", err)
	}
	if doc.Version != Version {
		return fmt.Errorf("encode: unsupported version %d (want %d)", doc.Version, Version)
	}
	if doc.Kind != kind {
		return fmt.Errorf("encode: document kind %q, want %q", doc.Kind, kind)
	}
	if err := json.Unmarshal(doc.Payload, payload); err != nil {
		return fmt.Errorf("encode: bad %s payload: %w", kind, err)
	}
	return nil
}

// MarshalTasks encodes a task set.
func MarshalTasks(ts task.Set) ([]byte, error) { return wrap(KindTasks, ts) }

// UnmarshalTasks decodes and validates a task set.
func UnmarshalTasks(data []byte) (task.Set, error) {
	var ts task.Set
	if err := unwrap(data, KindTasks, &ts); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("encode: invalid tasks: %w", err)
	}
	return ts, nil
}

// MarshalSystem encodes a platform model.
func MarshalSystem(sys power.System) ([]byte, error) { return wrap(KindSystem, sys) }

// UnmarshalSystem decodes and validates a platform model.
func UnmarshalSystem(data []byte) (power.System, error) {
	var sys power.System
	if err := unwrap(data, KindSystem, &sys); err != nil {
		return power.System{}, err
	}
	if err := sys.Validate(); err != nil {
		return power.System{}, fmt.Errorf("encode: invalid system: %w", err)
	}
	return sys, nil
}

// MarshalSchedule encodes a schedule.
func MarshalSchedule(s *schedule.Schedule) ([]byte, error) { return wrap(KindSchedule, s) }

// UnmarshalSchedule decodes a schedule (structural checks only; validate
// against its task set separately).
func UnmarshalSchedule(data []byte) (*schedule.Schedule, error) {
	var s schedule.Schedule
	if err := unwrap(data, KindSchedule, &s); err != nil {
		return nil, err
	}
	s.Normalize()
	return &s, nil
}

// MarshalRun encodes a full scheduling result.
func MarshalRun(r Run) ([]byte, error) { return wrap(KindRun, r) }

// UnmarshalRun decodes a full scheduling result and cross-checks that
// the embedded breakdown matches a fresh audit of the schedule — a
// tamper/skew detector for persisted results.
func UnmarshalRun(data []byte) (Run, error) {
	var r Run
	if err := unwrap(data, KindRun, &r); err != nil {
		return Run{}, err
	}
	if r.Schedule == nil {
		return Run{}, fmt.Errorf("encode: run without schedule")
	}
	r.Schedule.Normalize()
	fresh := schedule.Audit(r.Schedule, r.System)
	if !numeric.AlmostEqual(fresh.Total(), r.Breakdown.Total(), auditTol) {
		return Run{}, fmt.Errorf("encode: stored breakdown (%g J) disagrees with audit (%g J)",
			r.Breakdown.Total(), fresh.Total())
	}
	return r, nil
}

// MarshalFaultSweep encodes a fault-injection sweep result.
func MarshalFaultSweep(s FaultSweep) ([]byte, error) { return wrap(KindFaultSweep, s) }

// UnmarshalFaultSweep decodes a fault-injection sweep result.
func UnmarshalFaultSweep(data []byte) (FaultSweep, error) {
	var s FaultSweep
	if err := unwrap(data, KindFaultSweep, &s); err != nil {
		return FaultSweep{}, err
	}
	return s, nil
}

// Write writes an encoded document to w with a trailing newline.
func Write(w io.Writer, data []byte) error {
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("encode: write: %w", err)
	}
	return nil
}
