package encode

import (
	"testing"

	"sdem/internal/power"
	"sdem/internal/task"
)

func fpTasks() task.Set {
	return task.Set{
		{ID: 0, Release: 0, Deadline: 0.05, Workload: 2e6, Name: "a"},
		{ID: 1, Release: 0.01, Deadline: 0.08, Workload: 3e6, Name: "b"},
		{ID: 2, Release: 0.02, Deadline: 0.12, Workload: 1e6},
	}
}

func TestCanonicalKeyPermutationInvariant(t *testing.T) {
	sys := power.DefaultSystem()
	ts := fpTasks()
	perm := task.Set{ts[2], ts[0], ts[1]}
	k1 := CanonicalKey("solve", "auto", false, ts, sys)
	k2 := CanonicalKey("solve", "auto", false, perm, sys)
	if k1 != k2 {
		t.Fatalf("task order changed the canonical key")
	}
	if Fingerprint(k1) != Fingerprint(k2) {
		t.Fatalf("task order changed the fingerprint")
	}
}

func TestCanonicalKeyFieldSensitivity(t *testing.T) {
	sys := power.DefaultSystem()
	ts := fpTasks()
	base := CanonicalKey("solve", "auto", false, ts, sys)

	cases := map[string]string{
		"op":               CanonicalKey("simulate", "auto", false, ts, sys),
		"scheduler":        CanonicalKey("solve", "sdem-on", false, ts, sys),
		"include_schedule": CanonicalKey("solve", "auto", true, ts, sys),
	}
	bumped := fpTasks()
	bumped[1].Workload++
	cases["workload"] = CanonicalKey("solve", "auto", false, bumped, sys)
	named := fpTasks()
	named[2].Name = "c"
	cases["name"] = CanonicalKey("solve", "auto", false, named, sys)
	sys2 := sys
	sys2.Cores++
	cases["cores"] = CanonicalKey("solve", "auto", false, ts, sys2)
	sys3 := sys
	sys3.Memory.BreakEven += 1e-9
	cases["break_even"] = CanonicalKey("solve", "auto", false, ts, sys3)

	for field, key := range cases {
		if key == base {
			t.Errorf("changing %s did not change the canonical key", field)
		}
	}
}

func TestCanonicalKeyStringFieldsCannotAlias(t *testing.T) {
	sys := power.DefaultSystem()
	k1 := CanonicalKey("so", "lve", false, nil, sys)
	k2 := CanonicalKey("solv", "e", false, nil, sys)
	if k1 == k2 {
		t.Fatalf("length-prefixed string fields aliased")
	}
}

func TestFingerprintSpreadsShards(t *testing.T) {
	// 64 single-task variants must not collapse onto a few of 16 shards.
	sys := power.DefaultSystem()
	shards := make(map[uint64]int)
	for i := 0; i < 64; i++ {
		ts := task.Set{{ID: i, Deadline: 0.05, Workload: float64(1e6 + i)}}
		k := CanonicalKey("solve", "auto", false, ts, sys)
		shards[Fingerprint(k)%16]++
	}
	if len(shards) < 8 {
		t.Fatalf("64 fingerprints landed on only %d of 16 shards", len(shards))
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	sys := power.DefaultSystem()
	ts := fpTasks()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(CanonicalKey("solve", "auto", false, ts, sys))
	}
}
