// Canonical request fingerprints for the serve layer's schedule cache.
//
// Two compute requests that ask the same question — same task multiset,
// same platform, same scheme — must map to the same cache key even when
// their JSON spells the tasks in a different order. CanonicalKey
// therefore normalizes the task order before encoding, and encodes every
// float through its IEEE-754 bit pattern so the key is exact: no
// formatting, no rounding, no locale. The key doubles as the cache map
// key; Fingerprint hashes it (FNV-1a) for shard selection.
package encode

import (
	"encoding/binary"
	"math"
	"sort"

	"sdem/internal/power"
	"sdem/internal/task"
)

// CanonicalKey builds the exact canonical fingerprint material of a
// compute request: the operation ("solve", "simulate"), the scheduler
// name, the include-schedule flag, every field of the platform model,
// and the task set normalized into (Release, Deadline, ID, Workload,
// Name) order. The result is binary (not printable); treat it as an
// opaque map key.
func CanonicalKey(op, scheduler string, includeSchedule bool, tasks task.Set, sys power.System) string {
	sorted := make(task.Set, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(a, b int) bool {
		x, y := sorted[a], sorted[b]
		//lint:allow floatcmp: canonical ordering must be exact — two keys are equal iff every bit agrees, so the comparator may not tolerate
		if x.Release != y.Release {
			return x.Release < y.Release
		}
		//lint:allow floatcmp: see above
		if x.Deadline != y.Deadline {
			return x.Deadline < y.Deadline
		}
		if x.ID != y.ID {
			return x.ID < y.ID
		}
		//lint:allow floatcmp: see above
		if x.Workload != y.Workload {
			return x.Workload < y.Workload
		}
		return x.Name < y.Name
	})

	// 3 strings, 1 flag byte, 9 system floats + core count, and 4 floats
	// + ID + name per task.
	b := make([]byte, 0, 64+len(op)+len(scheduler)+len(sorted)*48)
	b = appendString(b, op)
	b = appendString(b, scheduler)
	if includeSchedule {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendFloat(b, sys.Core.Static)
	b = appendFloat(b, sys.Core.Beta)
	b = appendFloat(b, sys.Core.Lambda)
	b = appendFloat(b, sys.Core.SpeedMax)
	b = appendFloat(b, sys.Core.SpeedMin)
	b = appendFloat(b, sys.Core.BreakEven)
	b = appendFloat(b, sys.Core.SwitchEnergy)
	b = appendFloat(b, sys.Memory.Static)
	b = appendFloat(b, sys.Memory.BreakEven)
	b = binary.BigEndian.AppendUint64(b, uint64(int64(sys.Cores)))
	b = binary.BigEndian.AppendUint64(b, uint64(len(sorted)))
	for _, t := range sorted {
		b = binary.BigEndian.AppendUint64(b, uint64(int64(t.ID)))
		b = appendFloat(b, t.Release)
		b = appendFloat(b, t.Deadline)
		b = appendFloat(b, t.Workload)
		b = appendString(b, t.Name)
	}
	return string(b)
}

// appendString appends a length-prefixed string so concatenated fields
// can never alias each other ("ab"+"c" vs "a"+"bc").
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(len(s)))
	return append(b, s...)
}

// appendFloat appends the exact IEEE-754 bit pattern. NaN payloads and
// signed zeros are distinguished on purpose: the cache must never treat
// two requests as identical unless the solver would see identical bits.
func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint hashes a canonical key with FNV-1a 64. It is stable across
// processes and releases (pure arithmetic, no seed), so fingerprints may
// be logged and compared across runs.
func Fingerprint(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}
