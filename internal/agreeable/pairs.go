package agreeable

import (
	"math"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/task"
)

// BlockCostPairs computes the §5.1 (α = 0) local optimal energy of a task
// subset scheduled in a single busy interval by the paper's literal
// (i, j)-pair enumeration, evaluating Eqs. (12), (13) and (14) directly.
//
// It exists as an independent cross-check of the package's convex
// block solver: both must agree on every agreeable subset. tasks must be
// deadline-sorted with positive workloads.
func BlockCostPairs(tasks task.Set, sys power.System) float64 {
	n := len(tasks)
	if n == 0 {
		return 0
	}
	alphaM := sys.Memory.Static
	beta, lambda := sys.Core.Beta, sys.Core.Lambda
	r := make([]float64, n+2) // 1-based; r[n+1] sentinel
	d := make([]float64, n+1)
	w := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		r[k] = tasks[k-1].Release
		d[k] = tasks[k-1].Deadline
		w[k] = tasks[k-1].Workload
	}
	r[n+1] = math.Inf(1)

	// term is one dynamic-energy term β·w^λ·len^{1−λ}, +Inf when the
	// window is too short for the speed cap.
	term := func(wk, length float64) float64 {
		if length <= 0 {
			return math.Inf(1)
		}
		if sys.Core.SpeedMax > 0 && wk/length > sys.Core.SpeedMax*(1+relTol/1000) {
			return math.Inf(1)
		}
		return beta * math.Pow(wk, lambda) * math.Pow(length, 1-lambda)
	}

	// energy evaluates E_{i,j}(Δ1, Δ2) per Eq. (12)/(13)/(14): busy
	// interval [s', e'] = [Δ1, d_n − Δ2]; tasks 1..i start at s'; tasks
	// n−j+1..n end at e'; the middle runs filled (i < n−j) or spans the
	// whole busy interval (i > n−j).
	energy := func(i, j int, d1, d2 float64) float64 {
		sPrime := d1
		ePrime := d[n] - d2
		if ePrime <= sPrime {
			return math.Inf(1)
		}
		e := alphaM * (ePrime - sPrime)
		switch {
		case i < n-j:
			for k := 1; k <= i; k++ {
				e += term(w[k], d[k]-sPrime)
			}
			for k := i + 1; k <= n-j; k++ {
				e += term(w[k], d[k]-r[k])
			}
			for k := n - j + 1; k <= n; k++ {
				e += term(w[k], ePrime-r[k])
			}
		case i > n-j:
			for k := 1; k <= n-j; k++ {
				e += term(w[k], d[k]-sPrime)
			}
			for k := n - j + 1; k <= i; k++ {
				e += term(w[k], ePrime-sPrime)
			}
			for k := i + 1; k <= n; k++ {
				e += term(w[k], ePrime-r[k])
			}
		default: // i == n−j
			for k := 1; k <= i; k++ {
				e += term(w[k], d[k]-sPrime)
			}
			for k := i + 1; k <= n; k++ {
				e += term(w[k], ePrime-r[k])
			}
		}
		return e
	}

	best := math.Inf(1)
	for i := 1; i <= n; i++ {
		// s' ∈ [r_i, r_{i+1}] capped by d_1 (the busy interval must start
		// no later than the first deadline).
		x0 := r[i]
		x1 := math.Min(r[i+1], d[1])
		if x1 < x0 {
			continue
		}
		for j := 1; j <= n; j++ {
			// Δ2 ∈ [d_n − d_{n−j+1}, d_n − d_{n−j}] (d_0 treated as r_n:
			// the busy interval must end no earlier than the last
			// release).
			y0 := d[n] - d[n-j+1]
			hiEnd := r[n]
			if n-j >= 1 {
				hiEnd = math.Max(d[n-j], r[n])
			}
			y1 := d[n] - hiEnd
			if y1 < y0 {
				continue
			}
			_, _, v := numeric.MinimizeConvex2D(func(x, y float64) float64 {
				return energy(i, j, x, y)
			}, numeric.Box{X0: x0, X1: x1, Y0: y0, Y1: y1}, relTol/1000)
			if v < best {
				best = v
			}
		}
	}
	return best
}
