package agreeable

import (
	"math/rand"
	"testing"

	"sdem/internal/power"
	"sdem/internal/task"
)

// TestAlgorithm1AgreesWithConvexSolver cross-validates the paper's
// literal five-step Algorithm 1 against the package's convex block
// solver: Theorem 4 proves both converge to the same single-block
// optimum (α ≠ 0).
func TestAlgorithm1AgreesWithConvexSolver(t *testing.T) {
	sys := testSystem()
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomAgreeable(r, 1+r.Intn(5))
		s, err := newSolver(tasks, sys, modeStatic)
		if err != nil {
			t.Fatal(err)
		}
		blk := s.blockSolve(0, len(s.tasks)-1)
		ref := BlockCostAlgorithm1(s.tasks, sys)
		// Algorithm 1 follows the paper's per-pair boundary quit rules,
		// which can leave a slightly suboptimal boundary value in a pair
		// the convex solver optimizes exactly — so Algorithm 1 may only
		// match or exceed, within a small tolerance.
		if ref < blk.Cost*(1-1e-6) {
			t.Errorf("seed %d: Algorithm 1 %.9g beats convex solver %.9g — convex solver not optimal",
				seed, ref, blk.Cost)
		}
		if ref > blk.Cost*(1+1e-4) {
			t.Errorf("seed %d: Algorithm 1 %.9g diverges above convex solver %.9g",
				seed, ref, blk.Cost)
		}
	}
}

func TestAlgorithm1CommonReleaseInstances(t *testing.T) {
	// Common-release subsets exercise the case-3 branch (tasks spanning
	// the whole busy interval).
	sys := testSystem()
	for seed := int64(30); seed < 38; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		tasks := make(task.Set, n)
		for i := range tasks {
			tasks[i] = task.Task{
				ID:       i,
				Release:  0,
				Deadline: power.Milliseconds(20 + r.Float64()*100),
				Workload: 2e6 + r.Float64()*3e6,
			}
		}
		s, err := newSolver(tasks, sys, modeStatic)
		if err != nil {
			t.Fatal(err)
		}
		blk := s.blockSolve(0, len(s.tasks)-1)
		ref := BlockCostAlgorithm1(s.tasks, sys)
		if ref < blk.Cost*(1-1e-6) || ref > blk.Cost*(1+1e-4) {
			t.Errorf("seed %d: Algorithm 1 %.9g vs convex %.9g", seed, ref, blk.Cost)
		}
	}
}

func TestAlgorithm1Degenerate(t *testing.T) {
	sys := testSystem()
	if got := BlockCostAlgorithm1(nil, sys); got != 0 {
		t.Errorf("empty block cost = %g, want 0", got)
	}
	// Single tight task: must run near filled speed; both solvers agree.
	tasks := task.Set{{ID: 1, Release: 0, Deadline: power.Milliseconds(3), Workload: 5e6}}
	s, err := newSolver(tasks, sys, modeStatic)
	if err != nil {
		t.Fatal(err)
	}
	blk := s.blockSolve(0, 0)
	ref := BlockCostAlgorithm1(s.tasks, sys)
	if ref < blk.Cost*(1-1e-6) || ref > blk.Cost*(1+1e-4) {
		t.Errorf("tight single task: Algorithm 1 %.9g vs convex %.9g", ref, blk.Cost)
	}
}

// TestTable2Classification validates the structural claims of the
// paper's Table 2 on the single-block optimum: Type-I tasks run exactly
// at their critical speed s₀ with their execution covered by the busy
// interval; Type-II tasks run aligned with it at speeds within [s₀, s₁].
func TestTable2Classification(t *testing.T) {
	sys := testSystem()
	for seed := int64(50); seed < 62; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomAgreeable(r, 1+r.Intn(6))
		cls, err := ClassifyBlock(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		sorted := tasks.Clone()
		sorted.SortByDeadline()
		for k, typ := range cls.Types {
			tk := sorted[k]
			s0 := sys.Core.CriticalSpeed(tk.FilledSpeed())
			s1 := sys.Core.MemoryCriticalSpeed(sys.Memory, tk.FilledSpeed())
			speed := cls.Speeds[k]
			switch typ {
			case TypeI:
				if !almost(speed, s0, 1e-6) {
					t.Errorf("seed %d task %d: Type-I speed %.6g != s₀ %.6g", seed, tk.ID, speed, s0)
				}
				// Covered by the busy interval.
				start := max64(tk.Release, cls.BusyStart)
				if start+tk.Workload/speed > cls.BusyEnd+1e-9 {
					t.Errorf("seed %d task %d: Type-I execution escapes the busy interval", seed, tk.ID)
				}
			case TypeII:
				if speed < s0*(1-1e-6) || speed > s1*(1+1e-6) {
					t.Errorf("seed %d task %d: Type-II speed %.6g outside [s₀ %.6g, s₁ %.6g]",
						seed, tk.ID, speed, s0, s1)
				}
			}
		}
	}
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
