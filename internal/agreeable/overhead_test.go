package agreeable

import (
	"math/rand"
	"testing"

	"sdem/internal/commonrelease"
	"sdem/internal/power"
	"sdem/internal/task"
)

func TestOverheadDPMatchesBruteForce(t *testing.T) {
	// §7 DP (per-block α_m·ξ_m charge) against exhaustive partitions with
	// the same per-block extra.
	sys := power.DefaultSystem()
	sys.Core.BreakEven = 0 // isolate the memory transition term
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		tasks := randomAgreeable(r, 2+r.Intn(4))
		sol, err := SolveWithOverhead(tasks, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := totalCost(sol, sys.Memory.TransitionEnergy())
		ref := bruteForce(tasks, sys, false, 200, sys.Memory.TransitionEnergy())
		if got > ref*(1+1e-6) {
			t.Errorf("seed %d: DP cost %.9g worse than brute force %.9g", seed, got, ref)
		}
		if ref > got*(1+2e-2) {
			t.Errorf("seed %d: brute force %.9g much worse than DP %.9g", seed, ref, got)
		}
	}
}

func TestOverheadAgreesWithCommonReleaseOnSharedInputs(t *testing.T) {
	// Common-release inputs: the §7 agreeable DP and the §7
	// common-release solver must land on comparable energies (the DP may
	// only match or slightly beat it by splitting blocks, and must never
	// be worse than the single-interval structure it subsumes).
	sys := power.DefaultSystem()
	for seed := int64(10); seed < 16; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		tasks := make(task.Set, n)
		for i := range tasks {
			tasks[i] = task.Task{
				ID:       i,
				Release:  0,
				Deadline: power.Milliseconds(20 + r.Float64()*100),
				Workload: 2e6 + r.Float64()*3e6,
			}
		}
		a, err := SolveWithOverhead(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		b, err := commonrelease.SolveWithOverhead(tasks, sys)
		if err != nil {
			t.Fatal(err)
		}
		// Audited energies: the §7 agreeable DP follows the paper's
		// approximation (block objective + α_m·ξ_m per block, with our
		// no-compression fallback), while the common-release §7 solver
		// searches busy lengths against the audit directly — so the DP
		// may trail by a few percent on shared inputs; bound the gap.
		if a.Energy > b.Energy*1.10 {
			t.Errorf("seed %d: agreeable §7 (%.9g) much worse than common-release §7 (%.9g)",
				seed, a.Energy, b.Energy)
		}
		if b.Energy > a.Energy*1.05 {
			t.Errorf("seed %d: common-release §7 (%.9g) much worse than agreeable §7 (%.9g)",
				seed, b.Energy, a.Energy)
		}
	}
}
