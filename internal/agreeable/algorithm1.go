package agreeable

import (
	"math"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/task"
)

// BlockCostAlgorithm1 computes the §5.2 (α ≠ 0) local optimal energy of a
// deadline-sorted, positive-workload task subset scheduled in one busy
// interval by the paper's literal Algorithm 1: for every (i, j) boundary
// pair, iterate the five steps —
//
//	1: minimize Eq. (15) assuming every remaining task aligns with the
//	   busy interval;
//	2: accelerate tasks slower than their critical speed s₀ to s₀;
//	3: evict them and repeat until no task runs below s₀;
//	4: re-minimize over only the tasks faster than the
//	   memory-associated critical speed s₁;
//	5: prolong the others to the new busy interval, evicting any that
//	   fall below s₀; repeat 4–5 until no task exceeds s₁.
//
// It exists as an independent cross-check of the package's convex block
// solver (Theorem 4 proves both converge to the same optimum).
func BlockCostAlgorithm1(tasks task.Set, sys power.System) float64 {
	n := len(tasks)
	if n == 0 {
		return 0
	}
	core, mem := sys.Core, sys.Memory
	r := make([]float64, n+2)
	d := make([]float64, n+1)
	w := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		r[k] = tasks[k-1].Release
		d[k] = tasks[k-1].Deadline
		w[k] = tasks[k-1].Workload
	}
	r[n+1] = math.Inf(1)

	// Per-task critical speeds against the full feasible region.
	s0 := make([]float64, n+1)
	s1 := make([]float64, n+1)
	frozenCost := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		filled := w[k] / (d[k] - r[k])
		s0[k] = core.CriticalSpeed(filled)
		s1[k] = core.MemoryCriticalSpeed(mem, filled)
		frozenCost[k] = core.Dynamic(s0[k])*w[k]/s0[k] + core.Static*w[k]/s0[k]
	}

	// alignedLen is task k's execution length under pair (i, j) at
	// (Δ1, Δ2) when aligned with the busy interval; alignedStart is its
	// execution start.
	alignedLen := func(i, j, k int, d1, d2 float64) float64 {
		switch {
		case k <= i && k <= n-j:
			return d[k] - d1 // case 1: [s', d_k]
		case k > i && k <= n-j:
			return d[k] - r[k] // case 2: [r_k, d_k]
		case k <= i && k > n-j:
			return d[n] - d2 - d1 // case 3: [s', e']
		default:
			return d[n] - d2 - r[k] // case 4: [r_k, e']
		}
	}
	alignedStart := func(i, j, k int, d1 float64) float64 {
		if k <= i {
			return d1 // cases 1 and 3 start at s'
		}
		return r[k] // cases 2 and 4 start at r_k
	}

	best := math.Inf(1)
	for i := 1; i <= n; i++ {
		x0 := r[i]
		x1 := math.Min(r[i+1], d[1])
		if x1 < x0 {
			continue
		}
		for j := 1; j <= n; j++ {
			y0 := d[n] - d[n-j+1]
			hiEnd := r[n]
			if n-j >= 1 {
				hiEnd = math.Max(d[n-j], r[n])
			}
			y1 := d[n] - hiEnd
			if y1 < y0 {
				continue
			}
			if e := algorithm1Pair(core, mem, i, j, n, d[n], w, s0, s1, frozenCost,
				alignedLen, alignedStart,
				numeric.Box{X0: x0, X1: x1, Y0: y0, Y1: y1}); e < best {
				best = e
			}
		}
	}
	return best
}

// algorithm1Pair runs the five-step iteration for one (i, j) pair and
// returns the block energy, or +Inf when no feasible alignment exists.
func algorithm1Pair(
	core power.Core, mem power.Memory,
	i, j, n int, dn float64,
	w, s0, s1, frozenCost []float64,
	alignedLen func(i, j, k int, d1, d2 float64) float64,
	alignedStart func(i, j, k int, d1 float64) float64,
	box numeric.Box,
) float64 {
	const tol = 1e-9
	aligned := make([]bool, n+1)
	for k := 1; k <= n; k++ {
		aligned[k] = true
	}
	var frozen float64 // accumulated cost of evicted tasks

	// objective evaluates Eq. (15) over a chosen subset of the aligned
	// tasks (all of them in steps 1–3, only the fast ones in step 4).
	objective := func(include func(k int) bool) func(d1, d2 float64) float64 {
		return func(d1, d2 float64) float64 {
			busy := dn - d1 - d2 // e' − s', Eq. (15)'s memory span
			if busy <= 0 {
				return math.Inf(1)
			}
			e := mem.Static * busy
			counted := false
			for k := 1; k <= n; k++ {
				if !aligned[k] || !include(k) {
					continue
				}
				length := alignedLen(i, j, k, d1, d2)
				if length <= 0 {
					return math.Inf(1)
				}
				speed := w[k] / length
				if core.SpeedMax > 0 && speed > core.SpeedMax*(1+relTol) {
					return math.Inf(1)
				}
				e += core.Dynamic(speed)*length + core.Static*length
				counted = true
			}
			if !counted {
				return math.Inf(1)
			}
			return e
		}
	}
	all := func(int) bool { return true }

	var d1, d2 float64
	// Steps 1–3: iterate alignment minimization and s₀ eviction.
	for iter := 0; iter <= n; iter++ {
		anyAligned := false
		for k := 1; k <= n; k++ {
			if aligned[k] {
				anyAligned = true
			}
		}
		if !anyAligned {
			// Everything runs at s₀; the memory still covers the union
			// of the frozen executions.
			return frozen + mem.Static*frozenUnion(i, j, n, d1, w, s0, aligned, alignedStart)
		}
		var val float64
		d1, d2, val = numeric.MinimizeConvex2D(objective(all), box, relTol/100)
		if math.IsInf(val, 1) {
			return math.Inf(1)
		}
		evicted := false
		for k := 1; k <= n; k++ {
			if !aligned[k] {
				continue
			}
			speed := w[k] / alignedLen(i, j, k, d1, d2)
			if speed < s0[k]*(1-tol) {
				aligned[k] = false
				frozen += frozenCost[k]
				evicted = true
			}
		}
		if !evicted {
			break
		}
	}

	// Steps 4–5: while some aligned task exceeds s₁, re-optimize for the
	// fast set and prolong the others.
	for iter := 0; iter <= n; iter++ {
		fast := make([]bool, n+1)
		anyFast := false
		for k := 1; k <= n; k++ {
			if !aligned[k] {
				continue
			}
			if w[k]/alignedLen(i, j, k, d1, d2) > s1[k]*(1+tol) {
				fast[k] = true
				anyFast = true
			}
		}
		if !anyFast {
			break
		}
		nd1, nd2, val := numeric.MinimizeConvex2D(objective(func(k int) bool { return fast[k] }), box, relTol/100)
		if math.IsInf(val, 1) {
			break
		}
		if math.Abs(nd1-d1) < relTol/1000 && math.Abs(nd2-d2) < relTol/1000 {
			break // converged at a boundary: Lemma 5's quit condition
		}
		d1, d2 = nd1, nd2
		// Step 5: the prolonged interval may push slow tasks below s₀.
		for k := 1; k <= n; k++ {
			if !aligned[k] {
				continue
			}
			if w[k]/alignedLen(i, j, k, d1, d2) < s0[k]*(1-tol) {
				aligned[k] = false
				frozen += frozenCost[k]
			}
		}
	}

	// Final energy at (d1, d2). The memory must cover the busy interval
	// AND every frozen (Type-I) execution — Lemma 5 guarantees coverage
	// along the paper's iteration, but a fresh per-iteration optimum can
	// shrink below a frozen run, so the union is charged explicitly.
	e := frozen
	ivs := make([]schedIv, 0, n)
	any := false
	for k := 1; k <= n; k++ {
		if aligned[k] {
			any = true
			length := alignedLen(i, j, k, d1, d2)
			if length <= 0 {
				return math.Inf(1)
			}
			speed := w[k] / length
			if core.SpeedMax > 0 && speed > core.SpeedMax*(1+relTol) {
				return math.Inf(1)
			}
			e += core.Dynamic(speed)*length + core.Static*length
			start := alignedStart(i, j, k, d1)
			ivs = append(ivs, schedIv{start, start + length})
		} else {
			start := alignedStart(i, j, k, d1)
			ivs = append(ivs, schedIv{start, start + w[k]/s0[k]})
		}
	}
	_ = any
	e += mem.Static * spanLen(ivs)
	return e
}

// schedIv is a closed execution interval used for block-span accounting.
type schedIv struct{ a, b float64 }

// spanLen returns the length of the smallest interval covering all
// executions — the block's single contiguous memory busy interval.
func spanLen(ivs []schedIv) float64 {
	if len(ivs) == 0 {
		return 0
	}
	lo, hi := ivs[0].a, ivs[0].b
	for _, iv := range ivs[1:] {
		lo = math.Min(lo, iv.a)
		hi = math.Max(hi, iv.b)
	}
	return hi - lo
}

// frozenUnion returns the block span of the frozen executions only.
func frozenUnion(i, j, n int, d1 float64, w, s0 []float64, aligned []bool, alignedStart func(i, j, k int, d1 float64) float64) float64 {
	ivs := make([]schedIv, 0, n)
	for k := 1; k <= n; k++ {
		if aligned[k] {
			continue
		}
		start := alignedStart(i, j, k, d1)
		ivs = append(ivs, schedIv{start, start + w[k]/s0[k]})
	}
	return spanLen(ivs)
}
