// Package agreeable implements the optimal SDEM schemes of §5 of the paper
// for agreeable-deadline task sets (later release ⇒ later-or-equal
// deadline), plus the §7 transition-overhead extension.
//
// Structure (§5.1/§5.2): an optimal schedule partitions the deadline-sorted
// tasks into contiguous blocks (Lemma 4), each block executing inside one
// memory busy interval [s', e']. A dynamic program over prefixes picks the
// partition; a local solver finds each block's optimal busy interval.
//
// Local solver: the paper enumerates (i, j) boundary pairs and runs the
// five-step iterative classification of Algorithm 1. This package exploits
// a strictly stronger observation: once the busy interval [s', e'] is
// fixed, each task independently runs at its window-clamped critical speed
// inside avail_k = min(d_k, e') − max(r_k, s'), and its minimal core
// energy is a convex non-increasing function of avail_k. Since avail_k is
// concave in (s', e'), the total block energy
//
//	E(s', e') = α_m·(e' − s') + Σ_k coreE_k(avail_k)
//
// is jointly convex, so a nested golden-section search over the (s', e')
// box finds the exact optimum that the (i, j)/Algorithm-1 scheme
// converges to. The literal (i, j) enumeration is retained in
// BlockCostPairs as an independent cross-check used by the tests.
package agreeable

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sdem/internal/numeric"
	"sdem/internal/power"
	"sdem/internal/schedule"
	"sdem/internal/task"
	"sdem/internal/telemetry"
)

// relTol is the package's relative speed/feasibility tolerance; it matches
// schedule.Tol (1e-9) by value. The 2-D searches and their convergence
// checks run on the tighter derived scales relTol/100 and relTol/1000.
const relTol = 1e-9

// ErrNotAgreeable is returned when the task set violates the
// agreeable-deadline property.
var ErrNotAgreeable = errors.New("agreeable: task set is not agreeable")

// Block describes one scheduling block of the solution: a contiguous run
// of deadline-ordered tasks sharing a single memory busy interval.
type Block struct {
	// From and To are inclusive indices into the deadline-sorted positive
	// workload task list.
	From, To int
	// BusyStart and BusyEnd delimit the block's memory busy interval.
	BusyStart, BusyEnd float64
	// Cost is the block-local objective value used by the DP.
	Cost float64
}

// Solution is an optimal agreeable-deadline schedule.
type Solution struct {
	// Schedule is the constructed schedule over [min release, max
	// deadline].
	Schedule *schedule.Schedule
	// Blocks is the optimal block partition in time order.
	Blocks []Block
	// Energy is the audited system-wide energy of Schedule.
	Energy float64
}

// mode selects the core model of the block-local objective.
type mode int

const (
	modeAlphaZero mode = iota // §5.1: α = 0
	modeStatic                // §5.2: α ≠ 0, free transitions
	modeOverhead              // §7: α ≠ 0 with break-even times
)

// solver carries the normalized instance.
type solver struct {
	sys   power.System
	tasks []task.Task // deadline-sorted, positive workloads
	zeros task.Set
	start float64 // min release
	end   float64 // max deadline
	mode  mode
	// stretched[k] is true in overhead mode when task k's core cannot
	// profitably sleep (its idle tail would be shorter than ξ), so it
	// stretches to fill its available window (constrained critical speed
	// semantics of §7).
	stretched []bool
	tel       *telemetry.Recorder
	// ctx, when non-nil, is polled at DP row boundaries so a caller's
	// deadline budget can abandon an expensive solve cooperatively.
	ctx context.Context
}

func newSolver(tasks task.Set, sys power.System, m mode) (*solver, error) {
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if !tasks.IsAgreeable() {
		return nil, ErrNotAgreeable
	}
	if !tasks.Feasible(sys.Core.SpeedMax) {
		return nil, fmt.Errorf("agreeable: some task exceeds s_up even at filled speed")
	}
	s := &solver{sys: sys, mode: m}
	if m == modeAlphaZero {
		s.sys.Core.Static = 0
	}
	if m != modeOverhead {
		s.sys.Core.BreakEven = 0
		s.sys.Memory.BreakEven = 0
	}
	if len(tasks) == 0 {
		return s, nil
	}
	sorted := tasks.Clone()
	sorted.SortByDeadline()
	s.start, s.end = sorted.Span()
	for _, t := range sorted {
		if numeric.IsZero(t.Workload, 0) {
			s.zeros = append(s.zeros, t)
			continue
		}
		s.tasks = append(s.tasks, t)
	}
	if m == modeOverhead {
		horizon := s.end - s.start
		s.stretched = make([]bool, len(s.tasks))
		for k, t := range s.tasks {
			sc := s.sys.Core.ConstrainedCriticalSpeed(t.FilledSpeed(), t.Workload, horizon)
			s0 := s.sys.Core.CriticalSpeed(t.FilledSpeed())
			// ConstrainedCriticalSpeed returns the filled speed when the
			// idle tail left by racing is below the core break-even.
			s.stretched[k] = sc < s0-(relTol/1000)*s0
		}
	}
	return s, nil
}

// coreEnergy returns the minimal core energy of task k given an available
// execution window of length avail, together with the chosen speed. It is
// +Inf when avail cannot accommodate the task even at s_up.
func (s *solver) coreEnergy(k int, avail float64) (float64, float64) {
	t := s.tasks[k]
	w := t.Workload
	if avail <= 0 {
		return math.Inf(1), 0
	}
	filled := w / avail
	if s.sys.Core.SpeedMax > 0 {
		if filled > s.sys.Core.SpeedMax*(1+relTol) {
			return math.Inf(1), 0
		}
		// Clamp boundary noise so an optimum sitting exactly on the cap
		// evaluates to a finite, validator-clean speed.
		if filled > s.sys.Core.SpeedMax {
			filled = s.sys.Core.SpeedMax
		}
	}
	core := s.sys.Core
	var speed float64
	switch {
	case s.mode == modeAlphaZero:
		speed = filled
	case s.mode == modeOverhead && s.stretched[k]:
		// The core cannot sleep: its static power is sunk, so only the
		// dynamic term matters and stretching is optimal.
		speed = filled
	default:
		speed = core.CriticalSpeed(filled)
	}
	exec := w / speed
	e := core.Dynamic(speed) * exec
	if s.mode != modeAlphaZero && !(s.mode == modeOverhead && s.stretched[k]) {
		e += core.Static * exec
	}
	return e, speed
}

// blockEnergy evaluates the block-local objective for tasks [from..to]
// with busy interval [bs, be]. It is the innermost kernel of the O(n²)
// block DP: every 2-D golden-section probe lands here.
//
//sdem:hotpath
func (s *solver) blockEnergy(from, to int, bs, be float64) float64 {
	s.tel.Count("sdem.solver.agr.objective_evals", 1)
	if be <= bs {
		return math.Inf(1)
	}
	e := s.sys.Memory.Static * (be - bs)
	for k := from; k <= to; k++ {
		t := s.tasks[k]
		avail := math.Min(t.Deadline, be) - math.Max(t.Release, bs)
		ce, _ := s.coreEnergy(k, avail)
		if math.IsInf(ce, 1) {
			return math.Inf(1)
		}
		e += ce
	}
	return e
}

// blockSolve finds the optimal busy interval for tasks [from..to] by 2-D
// convex minimization over (s', e'). The DP memoizes it per (from, to),
// but that is still O(n²) solves per scheme.
//
//sdem:hotpath
func (s *solver) blockSolve(from, to int) Block {
	s.tel.Count("sdem.solver.agr.block_solves", 1)
	first, last := s.tasks[from], s.tasks[to]
	box := numeric.Box{
		X0: first.Release, X1: first.Deadline,
		Y0: last.Release, Y1: last.Deadline,
	}
	//lint:allow hotalloc: the objective closure allocates once per block solve and is amortized over its ~10³ 2-D probes
	bs, be, cost := numeric.MinimizeConvex2D(func(x, y float64) float64 {
		return s.blockEnergy(from, to, x, y)
	}, box, relTol/1000)
	return Block{From: from, To: to, BusyStart: bs, BusyEnd: be, Cost: cost}
}

// dp runs the prefix dynamic program of §5.1.2/§5.2.2 and returns the
// optimal block partition. blockExtra is added per block (α_m·ξ_m in the
// §7 DP).
func (s *solver) dp(blockExtra float64) []Block {
	n := len(s.tasks)
	if n == 0 {
		return nil
	}
	// Memoized block costs.
	blocks := make([][]Block, n)
	for i := range blocks {
		blocks[i] = make([]Block, n)
		for j := range blocks[i] {
			blocks[i][j].Cost = math.NaN()
		}
	}
	get := func(i, j int) Block {
		if math.IsNaN(blocks[i][j].Cost) {
			blocks[i][j] = s.blockSolve(i, j)
		}
		return blocks[i][j]
	}
	opt := make([]float64, n+1)
	choice := make([]int, n+1)
	for q := 1; q <= n; q++ {
		// Cooperative cancellation checkpoint: one poll per DP row keeps
		// the overhead off the O(n²) cell loop while bounding the work
		// after cancellation to a single row of cheap memo lookups.
		if s.ctx != nil && s.ctx.Err() != nil {
			return nil // solve surfaces the context error
		}
		opt[q] = math.Inf(1)
		for p := 0; p < q; p++ {
			s.tel.Count("sdem.solver.agr.dp_cells", 1)
			if c := opt[p] + get(p, q-1).Cost + blockExtra; c < opt[q] {
				opt[q] = c
				choice[q] = p
			}
		}
	}
	var out []Block
	for q := n; q > 0; q = choice[q] {
		out = append(out, get(choice[q], q-1))
	}
	// Reverse into time order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// buildSchedule lays out the blocks: within a block each task starts at
// the beginning of its available window and runs at its chosen speed.
func (s *solver) buildSchedule(blocks []Block) *schedule.Schedule {
	sched := schedule.New(len(s.tasks), s.start, s.end)
	for _, b := range blocks {
		for k := b.From; k <= b.To; k++ {
			t := s.tasks[k]
			begin := math.Max(t.Release, b.BusyStart)
			avail := math.Min(t.Deadline, b.BusyEnd) - begin
			_, speed := s.coreEnergy(k, avail)
			if speed <= 0 {
				speed = t.Workload / avail
			}
			sched.Add(k, schedule.Segment{
				TaskID: t.ID,
				Start:  begin,
				End:    begin + t.Workload/speed,
				Speed:  speed,
			})
		}
	}
	sched.Normalize()
	return sched
}

func (s *solver) solve(scheme string, blockExtra float64) (*Solution, error) {
	blocks := s.dp(blockExtra)
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, fmt.Errorf("agreeable: solve cancelled: %w", err)
		}
	}
	sched := s.buildSchedule(blocks)
	energy := schedule.Audit(sched, s.sys).Total()
	if s.mode == modeOverhead {
		// The DP's block objective values memory compression as if the
		// freed time always slept, but gaps below ξ_m save nothing
		// (Table 3's Δ = 0 row). Audit the no-compression alternative —
		// every task at its constrained natural speed from its window
		// start — and keep the cheaper schedule. Blocks still report the
		// DP's partition.
		if fb := s.buildNaturalFallback(); fb != nil {
			if e := schedule.Audit(fb, s.sys).Total(); e < energy {
				sched, energy = fb, e
				s.tel.Count("sdem.solver.agr.fallback_used", 1)
			}
		}
	}
	if s.tel != nil {
		s.tel.CountL("sdem.solver.agr.solves", "scheme="+scheme, 1)
		s.tel.Count("sdem.solver.agr.blocks", int64(len(blocks)))
		s.tel.Instant("agr solve "+scheme, "solver", s.start, 0,
			telemetry.Int("blocks", int64(len(blocks))),
			telemetry.Int("tasks", int64(len(s.tasks))),
			telemetry.Num("energy_j", energy))
	}
	return &Solution{
		Schedule: sched,
		Blocks:   blocks,
		Energy:   energy,
	}, nil
}

// buildNaturalFallback places every task at its window start running at
// the speed coreEnergy would choose for the full window (the constrained
// critical speed in overhead mode).
func (s *solver) buildNaturalFallback() *schedule.Schedule {
	sched := schedule.New(len(s.tasks), s.start, s.end)
	for k, t := range s.tasks {
		_, speed := s.coreEnergy(k, t.Window())
		if speed <= 0 {
			return nil
		}
		sched.Add(k, schedule.Segment{
			TaskID: t.ID,
			Start:  t.Release,
			End:    t.Release + t.Workload/speed,
			Speed:  speed,
		})
	}
	sched.Normalize()
	return sched
}

// SolveAlphaZero solves §5.1: agreeable deadlines, negligible core static
// power, free transitions. The returned schedule is optimal.
func SolveAlphaZero(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveAlphaZeroTel(tasks, sys, nil)
}

// SolveAlphaZeroTel is SolveAlphaZero with telemetry attached; a nil
// recorder is the uninstrumented path.
func SolveAlphaZeroTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	s, err := newSolver(tasks, sys, modeAlphaZero)
	if err != nil {
		return nil, err
	}
	s.tel = tel
	return s.solve("alpha_zero", 0)
}

// SolveWithStatic solves §5.2: agreeable deadlines, non-negligible core
// static power, free transitions. The returned schedule is optimal.
func SolveWithStatic(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveWithStaticTel(tasks, sys, nil)
}

// SolveWithStaticTel is SolveWithStatic with telemetry attached; a nil
// recorder is the uninstrumented path.
func SolveWithStaticTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	s, err := newSolver(tasks, sys, modeStatic)
	if err != nil {
		return nil, err
	}
	s.tel = tel
	return s.solve("static", 0)
}

// SolveWithOverhead solves the §7 agreeable-deadline problem with mode
// transition overhead: the block-local solver keeps the §5 structure with
// constrained critical speeds, and the DP charges one memory transition
// α_m·ξ_m per block.
func SolveWithOverhead(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveWithOverheadTel(tasks, sys, nil)
}

// SolveWithOverheadTel is SolveWithOverhead with telemetry attached; a
// nil recorder is the uninstrumented path.
func SolveWithOverheadTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	s, err := newSolver(tasks, sys, modeOverhead)
	if err != nil {
		return nil, err
	}
	s.tel = tel
	return s.solve("overhead", sys.Memory.TransitionEnergy())
}

// Solve dispatches to the appropriate §5/§7 scheme based on the system
// model, mirroring Table 1.
func Solve(tasks task.Set, sys power.System) (*Solution, error) {
	return SolveTel(tasks, sys, nil)
}

// SolveTel is Solve with telemetry attached; a nil recorder is the
// uninstrumented path.
func SolveTel(tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	return SolveCtx(nil, tasks, sys, tel)
}

// SolveCtx is SolveTel with a cooperative-cancellation context: the DP
// polls ctx at row boundaries and abandons the solve with ctx's error
// once it is done. A nil ctx never cancels — SolveTel delegates here
// with one.
func SolveCtx(ctx context.Context, tasks task.Set, sys power.System, tel *telemetry.Recorder) (*Solution, error) {
	var (
		m      mode
		scheme string
		extra  float64
	)
	switch {
	case sys.Core.BreakEven > 0 || sys.Memory.BreakEven > 0:
		m, scheme, extra = modeOverhead, "overhead", sys.Memory.TransitionEnergy()
	case sys.Core.Static > 0:
		m, scheme = modeStatic, "static"
	default:
		m, scheme = modeAlphaZero, "alpha_zero"
	}
	s, err := newSolver(tasks, sys, m)
	if err != nil {
		return nil, err
	}
	s.tel = tel
	s.ctx = ctx
	return s.solve(scheme, extra)
}

// TaskType is the §5.2 classification of Table 2.
type TaskType int

const (
	// TypeI tasks execute at their critical speed s₀, strictly inside
	// the busy interval.
	TypeI TaskType = iota
	// TypeII tasks are aligned with the busy interval and execute within
	// [s₀, s₁].
	TypeII
)

// Classification reports the Table 2 structure of a single-block optimum.
type Classification struct {
	// Types[k] classifies the k-th deadline-sorted positive-workload
	// task.
	Types []TaskType
	// Speeds[k] is its execution speed.
	Speeds []float64
	// BusyStart and BusyEnd delimit the block's busy interval.
	BusyStart, BusyEnd float64
}

// ClassifyBlock solves the single-block §5.2 problem for the whole task
// set and classifies every task per Table 2: Type-I tasks run at s₀
// inside the interval, Type-II tasks align with it at speeds within
// [s₀, s₁]. It exists to make the paper's structural claim checkable.
func ClassifyBlock(tasks task.Set, sys power.System) (*Classification, error) {
	s, err := newSolver(tasks, sys, modeStatic)
	if err != nil {
		return nil, err
	}
	if len(s.tasks) == 0 {
		return &Classification{}, nil
	}
	blk := s.blockSolve(0, len(s.tasks)-1)
	out := &Classification{
		Types:     make([]TaskType, len(s.tasks)),
		Speeds:    make([]float64, len(s.tasks)),
		BusyStart: blk.BusyStart,
		BusyEnd:   blk.BusyEnd,
	}
	for k, t := range s.tasks {
		avail := math.Min(t.Deadline, blk.BusyEnd) - math.Max(t.Release, blk.BusyStart)
		_, speed := s.coreEnergy(k, avail)
		out.Speeds[k] = speed
		exec := t.Workload / speed
		if exec < avail*(1-relTol) {
			out.Types[k] = TypeI // shorter than its aligned span: runs at s₀
		} else {
			out.Types[k] = TypeII
		}
	}
	return out, nil
}
